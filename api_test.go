package laxgpu

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// These tests pin the API-unification contract: every deprecated entry
// point is a thin wrapper over Run(ctx, Options), so for any options the
// old name and the new spelling must return bit-identical Results. Result
// is a comparable struct, so == is the strongest possible check.

// apiTraceCSV is a small fixed trace reused by the wrapper-equivalence
// tests below.
const apiTraceCSV = "arrival_us,deadline_us,kernels\n" +
	"0,1000,IPV6Kernel\n" +
	"10,1000,STEMKernel\n" +
	"20,5000,GMMKernel\n" +
	"30,10000,rocBLASGEMMKernel1*4;ActivationKernel5*4\n"

// equivalencePolicies spans the policy families: round-robin baseline,
// deadline-driven, laxity (the paper's LAX), slack-rate, and the
// preemptive-multitasking extension.
var equivalencePolicies = []string{"RR", "EDF", "LAX", "SRF", "PREMA"}

// TestDeprecatedRunWrappersMatchRun: per policy, RunContext / RunVerified /
// RunVerifiedContext / RunProbed return exactly what the unified Run
// returns with the corresponding Options fields set.
func TestDeprecatedRunWrappersMatchRun(t *testing.T) {
	ctx := context.Background()
	for _, pol := range equivalencePolicies {
		o := Options{Scheduler: pol, Benchmark: "IPV6", Rate: "medium", Jobs: 16}

		want, err := Run(ctx, o)
		if err != nil {
			t.Fatalf("%s: Run: %v", pol, err)
		}
		if got, err := RunContext(ctx, o); err != nil || got != want {
			t.Fatalf("%s: RunContext diverged: %+v vs %+v (err %v)", pol, got, want, err)
		}

		vo := o
		vo.Verify = true
		wantV, err := Run(ctx, vo)
		if err != nil {
			t.Fatalf("%s: Run{Verify}: %v", pol, err)
		}
		if wantV != want {
			t.Fatalf("%s: verified run diverged from plain run", pol)
		}
		if got, err := RunVerified(o); err != nil || got != wantV {
			t.Fatalf("%s: RunVerified diverged: %+v vs %+v (err %v)", pol, got, wantV, err)
		}
		if got, err := RunVerifiedContext(ctx, o); err != nil || got != wantV {
			t.Fatalf("%s: RunVerifiedContext diverged: %+v vs %+v (err %v)", pol, got, wantV, err)
		}

		po := o
		po.Probe = true
		wantP, err := Run(ctx, po)
		if err != nil {
			t.Fatalf("%s: Run{Probe}: %v", pol, err)
		}
		if wantP != want {
			t.Fatalf("%s: probed run diverged from plain run", pol)
		}
		if got, err := RunProbed(o); err != nil || got != wantP {
			t.Fatalf("%s: RunProbed diverged: %+v vs %+v (err %v)", pol, got, wantP, err)
		}
	}
}

// TestDeprecatedSessionWrappersMatchRun: the Session-level deprecated
// methods agree with Session.Run on a private session, including under
// fault injection.
func TestDeprecatedSessionWrappersMatchRun(t *testing.T) {
	ctx := context.Background()
	s := NewSession(SessionOptions{})
	defer s.Close()
	for _, o := range []Options{
		{Scheduler: "LAX", Benchmark: "CUCKOO", Rate: "high", Jobs: 16},
		{Scheduler: "RR", Benchmark: "LSTM", Rate: "medium", Jobs: 16,
			Faults: "hang=0.1,recover=on"},
	} {
		want, err := s.Run(ctx, o)
		if err != nil {
			t.Fatalf("Run(%+v): %v", o, err)
		}
		if got, err := s.RunContext(ctx, o); err != nil || got != want {
			t.Fatalf("Session.RunContext diverged: %+v vs %+v (err %v)", got, want, err)
		}
		if got, err := s.RunVerified(o); err != nil || got != want {
			t.Fatalf("Session.RunVerified diverged: %+v vs %+v (err %v)", got, want, err)
		}
		if got, err := s.RunVerifiedContext(ctx, o); err != nil || got != want {
			t.Fatalf("Session.RunVerifiedContext diverged: %+v vs %+v (err %v)", got, want, err)
		}
		if got, err := s.RunProbed(o); err != nil || got != want {
			t.Fatalf("Session.RunProbed diverged: %+v vs %+v (err %v)", got, want, err)
		}
		if got, err := s.RunProbedContext(ctx, o); err != nil || got != want {
			t.Fatalf("Session.RunProbedContext diverged: %+v vs %+v (err %v)", got, want, err)
		}
	}
}

// TestDeprecatedTraceWrappersMatchRun: RunTrace / RunTraceOptions /
// RunTraceContext agree with Run{Trace: ...} for plain, faulted, and
// custom-device replays.
func TestDeprecatedTraceWrappersMatchRun(t *testing.T) {
	ctx := context.Background()

	want, err := Run(ctx, Options{Scheduler: "LAX", Trace: strings.NewReader(apiTraceCSV)})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := RunTrace(strings.NewReader(apiTraceCSV), "LAX"); err != nil || got != want {
		t.Fatalf("RunTrace diverged: %+v vs %+v (err %v)", got, want, err)
	}
	if got, err := RunTraceOptions(strings.NewReader(apiTraceCSV),
		TraceOptions{Scheduler: "LAX"}); err != nil || got != want {
		t.Fatalf("RunTraceOptions diverged: %+v vs %+v (err %v)", got, want, err)
	}

	// Fault injection maps field for field.
	fo := Options{Scheduler: "EDF", Trace: strings.NewReader(apiTraceCSV),
		Faults: "hang=0.5,recover=on", Seed: 7}
	wantF, err := Run(ctx, fo)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := RunTraceContext(ctx, strings.NewReader(apiTraceCSV),
		TraceOptions{Scheduler: "EDF", Faults: "hang=0.5,recover=on", Seed: 7}); err != nil || got != wantF {
		t.Fatalf("faulted RunTraceContext diverged: %+v vs %+v (err %v)", got, wantF, err)
	}

	// Custom device maps field for field.
	so := Options{Scheduler: "FCFS", Trace: strings.NewReader(apiTraceCSV),
		System: &SystemConfig{NumCUs: 4, NumQueues: 8}}
	wantS, err := Run(ctx, so)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := RunTraceOptions(strings.NewReader(apiTraceCSV),
		TraceOptions{Scheduler: "FCFS", System: &SystemConfig{NumCUs: 4, NumQueues: 8}}); err != nil || got != wantS {
		t.Fatalf("custom-device RunTraceOptions diverged: %+v vs %+v (err %v)", got, wantS, err)
	}
}

// TestTraceTelemetryWritersMatch: the Metrics and Perfetto exports of a
// trace replay are byte-identical between the deprecated TraceOptions
// spelling and the unified Options spelling — the wrappers forward the
// writers untouched and the simulation is deterministic.
func TestTraceTelemetryWritersMatch(t *testing.T) {
	var oldM, newM, oldP, newP bytes.Buffer

	oldRes, err := RunTraceOptions(strings.NewReader(apiTraceCSV),
		TraceOptions{Scheduler: "LAX", Metrics: &oldM, Perfetto: &oldP})
	if err != nil {
		t.Fatal(err)
	}
	newRes, err := Run(context.Background(), Options{Scheduler: "LAX",
		Trace: strings.NewReader(apiTraceCSV), Metrics: &newM, Perfetto: &newP})
	if err != nil {
		t.Fatal(err)
	}
	if oldRes != newRes {
		t.Fatalf("results diverged: %+v vs %+v", oldRes, newRes)
	}
	if oldM.Len() == 0 || oldP.Len() == 0 {
		t.Fatal("telemetry writers received nothing")
	}
	if !bytes.Equal(oldM.Bytes(), newM.Bytes()) {
		t.Fatalf("metrics exports differ:\nold %d bytes\nnew %d bytes", oldM.Len(), newM.Len())
	}
	if !bytes.Equal(oldP.Bytes(), newP.Bytes()) {
		t.Fatalf("perfetto exports differ:\nold %d bytes\nnew %d bytes", oldP.Len(), newP.Len())
	}
}

// TestUnifiedRunCustomSystemOnBenchmarks: a capability the old API never
// had — Options.System now applies to benchmark cells, not just trace
// replays, and distinct devices get distinct memoized runners.
func TestUnifiedRunCustomSystemOnBenchmarks(t *testing.T) {
	ctx := context.Background()
	small, err := Run(ctx, Options{Scheduler: "FCFS", Benchmark: "GMM", Rate: "high", Jobs: 32,
		System: &SystemConfig{NumCUs: 1}})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(ctx, Options{Scheduler: "FCFS", Benchmark: "GMM", Rate: "high", Jobs: 32,
		System: &SystemConfig{NumCUs: 32}})
	if err != nil {
		t.Fatal(err)
	}
	if small.Makespan <= big.Makespan {
		t.Fatalf("1-CU makespan %v <= 32-CU makespan %v: System ignored on benchmark cell",
			small.Makespan, big.Makespan)
	}
	// Repeat runs hit the per-device memo and stay bit-identical.
	again, err := Run(ctx, Options{Scheduler: "FCFS", Benchmark: "GMM", Rate: "high", Jobs: 32,
		System: &SystemConfig{NumCUs: 32}})
	if err != nil {
		t.Fatal(err)
	}
	if again != big {
		t.Fatalf("memoized custom-device run diverged: %+v vs %+v", again, big)
	}
}

// TestUnifiedRunVerifiedTrace: another unified-only capability — the
// invariant checker now attaches to trace replays.
func TestUnifiedRunVerifiedTrace(t *testing.T) {
	plain, err := Run(context.Background(),
		Options{Scheduler: "LAX", Trace: strings.NewReader(apiTraceCSV)})
	if err != nil {
		t.Fatal(err)
	}
	checked, err := Run(context.Background(),
		Options{Scheduler: "LAX", Trace: strings.NewReader(apiTraceCSV), Verify: true})
	if err != nil {
		t.Fatal(err) // an invariant violation would surface here
	}
	if checked != plain {
		t.Fatalf("verified trace replay diverged: %+v vs %+v", checked, plain)
	}
}
