package laxgpu

// One testing.B benchmark per table and figure of the paper's evaluation:
// each bench regenerates its experiment end to end (all simulation runs the
// artifact needs) and reports the artifact's headline number as a custom
// metric, so `go test -bench=. -benchmem` both times the harness and
// re-derives the paper's results. Micro-benchmarks for the hot simulation
// paths follow.

import (
	"bytes"
	"context"
	"io"
	"os"
	"testing"

	"laxgpu/internal/cp"
	"laxgpu/internal/gpu"
	"laxgpu/internal/harness"
	"laxgpu/internal/metrics"
	"laxgpu/internal/obs"
	"laxgpu/internal/sched"
	"laxgpu/internal/sim"
	"laxgpu/internal/workload"
	"laxgpu/internal/workload/scenario"
)

// benchRunner builds a fresh memoization-free runner per iteration so the
// bench measures real simulation work.
func benchRunner() *harness.Runner {
	r := harness.NewRunner()
	r.JobCount = workload.DefaultJobCount
	return r
}

func runExperiment(b *testing.B, id string) *harness.Report {
	b.Helper()
	var rep *harness.Report
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		var err error
		rep, err = harness.RunExperiment(context.Background(), r, id)
		if err != nil {
			b.Fatal(err)
		}
		rep.Render(io.Discard)
	}
	return rep
}

// BenchmarkTable1 regenerates the kernel characterization table (isolated
// execution times on the Table 2 device).
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFigure1 regenerates the many-kernel vs few-kernel workload
// characterization.
func BenchmarkFigure1(b *testing.B) { runExperiment(b, "figure1") }

// BenchmarkFigure3 regenerates the RR-vs-LAX worked example and reports how
// many of the three primary jobs each scheduler saved.
func BenchmarkFigure3(b *testing.B) {
	var res harness.Figure3Result
	for i := 0; i < b.N; i++ {
		res = harness.RunFigure3(context.Background())
	}
	b.ReportMetric(float64(res.LAXMet), "lax-met")
	b.ReportMetric(float64(res.RRMet), "rr-met")
}

// BenchmarkFigure4 regenerates the batching-vs-streams response-time sweep.
func BenchmarkFigure4(b *testing.B) { runExperiment(b, "figure4") }

// BenchmarkFigure6 regenerates the CPU-side scheduler comparison across all
// three arrival rates and reports LAX's geomean advantage over RR at the
// high rate.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		rep := harness.Figure6(context.Background(), r)
		rep.Render(io.Discard)
		counts := harness.DeadlineCounts(r, []string{"RR", "LAX"}, workload.HighRate)
		b.ReportMetric(metrics.Ratio(float64(counts["LAX"]), float64(counts["RR"])), "lax/rr")
	}
}

// BenchmarkFigure7 regenerates the CP-scheduler comparison at the high rate
// and reports LAX's total deadline-met advantage over the best non-LAX CP
// scheduler.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		rep := harness.Figure7(context.Background(), r)
		rep.Render(io.Discard)
		counts := harness.DeadlineCounts(r,
			[]string{"MLFQ", "EDF", "SJF", "SRF", "LJF", "PREMA", "LAX"}, workload.HighRate)
		best := 0
		for s, c := range counts {
			if s != "LAX" && c > best {
				best = c
			}
		}
		b.ReportMetric(metrics.Ratio(float64(counts["LAX"]), float64(best)), "lax/best-cp")
	}
}

// BenchmarkFigure8 regenerates the laxity-variant comparison.
func BenchmarkFigure8(b *testing.B) { runExperiment(b, "figure8") }

// BenchmarkFigure9 regenerates the wasted-work comparison and reports LAX's
// useful-work fraction across benchmarks at the high rate.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		rep := harness.Figure9(context.Background(), r)
		rep.Render(io.Discard)
		var fracs []float64
		for _, bench := range workload.BenchmarkNames() {
			fracs = append(fracs, r.MustRun("LAX", bench, workload.HighRate).UsefulWorkFrac)
		}
		b.ReportMetric(metrics.Geomean(fracs), "lax-useful-frac")
	}
}

// BenchmarkFigure10 regenerates the prediction/priority traces and reports
// the LSTM sample job's prediction error (the paper reports 8% MAE).
func BenchmarkFigure10(b *testing.B) {
	var mae float64
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		tr, err := harness.RunFigure10(context.Background(), r, "LSTM")
		if err != nil {
			b.Fatal(err)
		}
		mae = tr.MeanAbsErrPct
		rep := harness.Figure10(context.Background(), r)
		rep.Render(io.Discard)
	}
	b.ReportMetric(mae, "pred-mae-%")
}

// BenchmarkTable5 regenerates the throughput/latency/energy grid.
func BenchmarkTable5(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkAblation regenerates the LAX design-choice ablation study.
func BenchmarkAblation(b *testing.B) { runExperiment(b, "ablation") }

// BenchmarkAnalysis regenerates the load-sensitivity sweep, oracle-gap and
// utilization extension study, reporting LAX's fraction of the
// perfect-information oracle's deadline-met total.
func BenchmarkAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		rep := harness.Sensitivity(context.Background(), r)
		rep.Render(io.Discard)
		counts := harness.DeadlineCounts(r, []string{"LAX", "ORACLE"}, workload.HighRate)
		b.ReportMetric(metrics.Ratio(float64(counts["LAX"]), float64(counts["ORACLE"])), "lax/oracle")
	}
}

// BenchmarkSeeds regenerates the cross-seed robustness study.
func BenchmarkSeeds(b *testing.B) { runExperiment(b, "seeds") }

// BenchmarkScaling regenerates the device-size sweep and multi-tenant mix.
func BenchmarkScaling(b *testing.B) { runExperiment(b, "scaling") }

// benchSweepTable5 times the full table5 cell grid (13 schedulers x 8
// benchmarks at the high rate) through the sweep engine at a fixed pool
// width. Comparing the Serial and Parallel variants measures the speedup
// the worker pool buys on the machine at hand; the rendered results are
// byte-identical at every width (see TestParallelSerialGoldenEquivalence).
//
// The effective pool width is reported as a metric because it is the number
// that makes the comparison interpretable: NewPool(0) resolves to GOMAXPROCS,
// and inside a 1-CPU cgroup that is width 1 — Pool.Do then takes the serial
// in-caller path by design, so Parallel ≈ Serial is the pool *not running*,
// not the pool failing to scale. TestParallelSweepScales asserts real
// speedup on machines with enough cores to show one.
func benchSweepTable5(b *testing.B, workers int) {
	width := harness.NewPool(workers).Workers()
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		r.Workers = workers
		if err := r.Sweep(context.Background(), harness.GridCells(sched.Table5Schedulers, workload.HighRate)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(width), "pool-width")
}

// BenchmarkSweepTable5Serial is the single-worker reference path.
func BenchmarkSweepTable5Serial(b *testing.B) { benchSweepTable5(b, 1) }

// BenchmarkSweepTable5Parallel runs one worker per CPU.
func BenchmarkSweepTable5Parallel(b *testing.B) { benchSweepTable5(b, 0) }

// --- Micro-benchmarks for the simulation substrate ---

// BenchmarkEngineEventChurn measures raw discrete-event throughput.
func BenchmarkEngineEventChurn(b *testing.B) {
	eng := sim.NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			eng.After(10, tick)
		}
	}
	b.ResetTimer()
	eng.Schedule(0, tick)
	eng.Run()
}

// BenchmarkDeviceWGThroughput measures WG dispatch+completion cost on a
// saturated device.
func BenchmarkDeviceWGThroughput(b *testing.B) {
	eng := sim.NewEngine()
	dev := gpu.New(gpu.DefaultConfig(), eng)
	desc := &gpu.KernelDesc{
		Name: "bench", NumWGs: b.N, ThreadsPerWG: 256,
		BaseWGTime: sim.Microsecond, MemIntensity: 0.5, InstPerThread: 100,
	}
	inst := gpu.NewKernelInstance(desc, 0, 0, 0)
	inst.MarkReady(0)
	dev.OnWGComplete(func(*gpu.KernelInstance) { dev.TryDispatch(inst, -1) })
	b.ResetTimer()
	dev.TryDispatch(inst, -1)
	eng.Run()
}

// BenchmarkLAXReprioritize measures one Algorithm 2 pass over a full
// 128-queue system.
func BenchmarkLAXReprioritize(b *testing.B) {
	lib := workload.NewLibrary(gpu.DefaultConfig())
	bench, err := workload.FindBenchmark("LSTM")
	if err != nil {
		b.Fatal(err)
	}
	set := bench.Generate(lib, workload.HighRate, 128, 1)
	pol := sched.NewLAX()
	sys := cp.NewSystem(cp.DefaultSystemConfig(), set, pol)
	// Populate the system mid-flight, then measure pure reprioritization.
	sys.Engine().Schedule(2*sim.Millisecond, func() {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pol.Reprioritize()
		}
		b.StopTimer()
	})
	sys.Run()
}

// BenchmarkFullRun measures one complete 128-job LSTM simulation under LAX.
func BenchmarkFullRun(b *testing.B) {
	lib := workload.NewLibrary(gpu.DefaultConfig())
	bench, err := workload.FindBenchmark("LSTM")
	if err != nil {
		b.Fatal(err)
	}
	set := bench.Generate(lib, workload.HighRate, 128, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := cp.NewSystem(cp.DefaultSystemConfig(), set, sched.NewLAX())
		sys.Run()
	}
}

// BenchmarkFullRunProbed is BenchmarkFullRun with the full telemetry fan-out
// attached (metrics registry, estimate pairing, and Perfetto trace events);
// the delta against BenchmarkFullRun is the end-to-end cost of observing a
// run, and running both under -benchmem shows the unprobed path allocating
// nothing for telemetry.
func BenchmarkFullRunProbed(b *testing.B) {
	lib := workload.NewLibrary(gpu.DefaultConfig())
	bench, err := workload.FindBenchmark("LSTM")
	if err != nil {
		b.Fatal(err)
	}
	set := bench.Generate(lib, workload.HighRate, 128, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := cp.NewSystem(cp.DefaultSystemConfig(), set, sched.NewLAX())
		sys.SetProbe(obs.Multi(obs.NewMetrics(), obs.NewPerfetto()))
		sys.Run()
	}
}

// BenchmarkScenarioGenerate measures parsing a committed scenario file and
// expanding it to its full job stream (diurnal: 463 jobs over three phases),
// the cost every -scenario invocation pays before the first simulated event.
func BenchmarkScenarioGenerate(b *testing.B) {
	raw, err := os.ReadFile("examples/scenarios/diurnal.json")
	if err != nil {
		b.Fatal(err)
	}
	lib := workload.NewLibrary(gpu.DefaultConfig())
	var jobs int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec, err := scenario.Parse(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		set, err := spec.Generate(lib, 0)
		if err != nil {
			b.Fatal(err)
		}
		jobs = len(set.Jobs)
	}
	b.ReportMetric(float64(jobs), "jobs")
}

// TestNoProbeHotPathAllocationFree pins the observer-off guarantee at the
// public surface: with no probe attached, every emission site reduces to the
// nil check below, so a plain run heap-allocates nothing for telemetry.
// (internal/cp and internal/obs pin the same property on their unexported
// helpers and on the registry instruments.)
func TestNoProbeHotPathAllocationFree(t *testing.T) {
	lib := workload.NewLibrary(gpu.DefaultConfig())
	bench, err := workload.FindBenchmark("LSTM")
	if err != nil {
		t.Fatal(err)
	}
	set := bench.Generate(lib, workload.HighRate, 8, 1)
	sys := cp.NewSystem(cp.DefaultSystemConfig(), set, sched.NewLAX())
	if n := testing.AllocsPerRun(1000, func() {
		if p := sys.Probe(); p != nil {
			panic("no probe attached")
		}
	}); n != 0 {
		t.Errorf("unprobed guard allocates %v per check, want 0", n)
	}
}

// TestUntracedFullRunAllocationGuard pins the tracing plane's cost-when-off
// guarantee end to end: a complete 128-job LSTM run with no probe (and hence
// no TraceRecorder) attached must stay within noise of the FullRun
// allocs_per_run recorded in BENCH_7.json before the tracing plane existed.
// A regression here means span recording leaked into the untraced path.
func TestUntracedFullRunAllocationGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	lib := workload.NewLibrary(gpu.DefaultConfig())
	bench, err := workload.FindBenchmark("LSTM")
	if err != nil {
		t.Fatal(err)
	}
	set := bench.Generate(lib, workload.HighRate, 128, 1)
	allocs := testing.AllocsPerRun(3, func() {
		sys := cp.NewSystem(cp.DefaultSystemConfig(), set, sched.NewLAX())
		sys.Run()
	})
	const baseline = 23812 // BENCH_7.json FullRun allocs_per_run
	if allocs > baseline*1.10 {
		t.Errorf("untraced full run allocates %.0f, want <= %.0f (baseline %d +10%%)",
			allocs, baseline*1.10, int(baseline))
	}
}

// TestLAXReprioritizeAllocationFree pins the incremental-laxity epoch: with
// a warm job table, an Algorithm 2 pass — the first pass drains the dirty
// set, every subsequent pass at the same instant is the all-clean epoch —
// heap-allocates nothing. This is the steady-state guarantee behind the
// LAXReprioritize numbers in BENCH_*.json.
func TestLAXReprioritizeAllocationFree(t *testing.T) {
	lib := workload.NewLibrary(gpu.DefaultConfig())
	bench, err := workload.FindBenchmark("LSTM")
	if err != nil {
		t.Fatal(err)
	}
	set := bench.Generate(lib, workload.HighRate, 64, 1)
	pol := sched.NewLAX()
	sys := cp.NewSystem(cp.DefaultSystemConfig(), set, pol)
	allocs := -1.0
	sys.Engine().Schedule(2*sim.Millisecond, func() {
		allocs = testing.AllocsPerRun(1000, func() { pol.Reprioritize() })
	})
	sys.Run()
	if allocs != 0 {
		t.Errorf("mid-flight Reprioritize allocates %v per pass, want 0", allocs)
	}
}
