package laxgpu

import (
	"fmt"
	"os"

	"laxgpu/internal/cp"
	"laxgpu/internal/faults"
	"laxgpu/internal/sched"
	"laxgpu/internal/workload"
	"laxgpu/internal/workload/scenario"
)

// CapacityOptions parameterize FindCapacity.
type CapacityOptions struct {
	// Scheduler and Benchmark name the cell under test.
	Scheduler string
	Benchmark string // workload trace name, e.g. "CUCKOO"

	// TargetMetFrac is the SLO: the fraction of jobs that must meet their
	// deadline (default 0.95).
	TargetMetFrac float64

	// Jobs per probe trace (default 96) and Seed (default 42).
	Jobs int
	Seed int64 // arrival-trace seed for every probe

	// Faults optionally injects a fault plan into every probe (same syntax
	// as Options.Faults), answering "what rate can a degraded device
	// sustain". Empty means a healthy device.
	Faults string

	// Scenario optionally names a workload scenario — a builtin from
	// examples/scenarios ("diurnal", "burst-storm", "three-tenant") or a
	// path to a scenario JSON file. When set, every probe replays the
	// scenario's peak-phase tenant mix scaled to the probed aggregate rate
	// (see scenario.PeakPhase), so the search answers "what total arrival
	// rate does this scenario's worst phase allow". Benchmark is ignored.
	Scenario string
}

// CapacityResult is the outcome of a capacity search.
type CapacityResult struct {
	// JobsPerSecond is the highest probed Poisson arrival rate at which
	// the target fraction of jobs met their deadline (0 if even the
	// lightest probe missed the target).
	JobsPerSecond int

	// MetFracAtCapacity is the measured SLO attainment at that rate.
	MetFracAtCapacity float64
}

// FindCapacity binary-searches the highest sustainable Poisson arrival rate
// for a scheduler/benchmark pair under a deadline-SLO — the operator
// question behind the paper's motivation ("which work can be offloaded and
// completed in time"). Deterministic for a given seed.
func FindCapacity(o CapacityOptions) (CapacityResult, error) {
	if o.TargetMetFrac <= 0 || o.TargetMetFrac > 1 {
		o.TargetMetFrac = 0.95
	}
	if o.Jobs <= 0 {
		o.Jobs = 96
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	var bench *workload.Benchmark
	var peak *scenario.Spec
	if o.Scenario != "" {
		sc, err := loadScenario(o.Scenario)
		if err != nil {
			return CapacityResult{}, err
		}
		peak = sc
	} else {
		b, err := workload.FindBenchmark(o.Benchmark)
		if err != nil {
			return CapacityResult{}, err
		}
		bench = b
	}
	if _, err := sched.New(o.Scheduler); err != nil {
		return CapacityResult{}, err
	}
	spec, err := faults.ParseSpec(o.Faults)
	if err != nil {
		return CapacityResult{}, err
	}

	cfg := cp.DefaultSystemConfig()
	if !spec.Zero() && spec.Recover {
		cfg.Recovery = cp.DefaultRecoveryConfig()
	}
	lib := workload.NewLibrary(cfg.GPU)
	probe := func(rate int) (float64, error) {
		pol, err := sched.New(o.Scheduler)
		if err != nil {
			return 0, err
		}
		var set *workload.JobSet
		if peak != nil {
			// Horizon sized for ~o.Jobs arrivals at the probed aggregate
			// rate; the realized count varies with the arrival draws, so
			// the met fraction is over the generated jobs.
			durUs := int64(float64(o.Jobs)/float64(rate)*1e6) + 1
			set, err = peak.PeakPhase(float64(rate), durUs).Generate(lib, o.Seed)
			if err != nil {
				return 0, err
			}
		} else {
			set = bench.GenerateCustom(lib, rate, o.Jobs, o.Seed)
		}
		sys := cp.NewSystem(cfg, set, pol)
		if !spec.Zero() {
			sys.InstallFaults(faults.NewPlan(spec, o.Seed+int64(rate)), spec.Retirements)
		}
		sys.Run()
		met := 0
		for _, j := range sys.Jobs() {
			if j.MetDeadline() {
				met++
			}
		}
		return float64(met) / float64(len(set.Jobs)), nil
	}

	lo, hi := 50, 256000
	frac, err := probe(lo)
	if err != nil {
		return CapacityResult{}, err
	}
	if frac < o.TargetMetFrac {
		return CapacityResult{JobsPerSecond: 0, MetFracAtCapacity: frac}, nil
	}
	for hi-lo > 50 {
		mid := (lo + hi) / 2
		f, err := probe(mid)
		if err != nil {
			return CapacityResult{}, err
		}
		if f >= o.TargetMetFrac {
			lo = mid
		} else {
			hi = mid
		}
	}
	// Re-probe the converged rate; if binary search landed in a
	// non-monotonic pocket the measured fraction is reported honestly
	// rather than clamped to the target.
	final, err := probe(lo)
	if err != nil {
		return CapacityResult{}, err
	}
	return CapacityResult{JobsPerSecond: lo, MetFracAtCapacity: final}, nil
}

// loadScenario resolves CapacityOptions.Scenario: a builtin scenario name
// first, then a path to a scenario JSON file.
func loadScenario(name string) (*scenario.Spec, error) {
	if sc, err := scenario.Builtin(name); err == nil {
		return sc, nil
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, fmt.Errorf("laxgpu: scenario %q is neither a builtin (%v) nor a readable file: %w",
			name, scenario.BuiltinNames(), err)
	}
	defer f.Close()
	return scenario.Parse(f)
}

// String renders the result for logs.
func (r CapacityResult) String() string {
	return fmt.Sprintf("%d jobs/s at %.0f%% SLO attainment", r.JobsPerSecond, 100*r.MetFracAtCapacity)
}
