package laxgpu

import (
	"fmt"

	"laxgpu/internal/cp"
	"laxgpu/internal/faults"
	"laxgpu/internal/sched"
	"laxgpu/internal/workload"
)

// CapacityOptions parameterize FindCapacity.
type CapacityOptions struct {
	// Scheduler and Benchmark name the cell under test.
	Scheduler string
	Benchmark string // workload trace name, e.g. "CUCKOO"

	// TargetMetFrac is the SLO: the fraction of jobs that must meet their
	// deadline (default 0.95).
	TargetMetFrac float64

	// Jobs per probe trace (default 96) and Seed (default 42).
	Jobs int
	Seed int64 // arrival-trace seed for every probe

	// Faults optionally injects a fault plan into every probe (same syntax
	// as Options.Faults), answering "what rate can a degraded device
	// sustain". Empty means a healthy device.
	Faults string
}

// CapacityResult is the outcome of a capacity search.
type CapacityResult struct {
	// JobsPerSecond is the highest probed Poisson arrival rate at which
	// the target fraction of jobs met their deadline (0 if even the
	// lightest probe missed the target).
	JobsPerSecond int

	// MetFracAtCapacity is the measured SLO attainment at that rate.
	MetFracAtCapacity float64
}

// FindCapacity binary-searches the highest sustainable Poisson arrival rate
// for a scheduler/benchmark pair under a deadline-SLO — the operator
// question behind the paper's motivation ("which work can be offloaded and
// completed in time"). Deterministic for a given seed.
func FindCapacity(o CapacityOptions) (CapacityResult, error) {
	if o.TargetMetFrac <= 0 || o.TargetMetFrac > 1 {
		o.TargetMetFrac = 0.95
	}
	if o.Jobs <= 0 {
		o.Jobs = 96
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	bench, err := workload.FindBenchmark(o.Benchmark)
	if err != nil {
		return CapacityResult{}, err
	}
	if _, err := sched.New(o.Scheduler); err != nil {
		return CapacityResult{}, err
	}
	spec, err := faults.ParseSpec(o.Faults)
	if err != nil {
		return CapacityResult{}, err
	}

	cfg := cp.DefaultSystemConfig()
	if !spec.Zero() && spec.Recover {
		cfg.Recovery = cp.DefaultRecoveryConfig()
	}
	lib := workload.NewLibrary(cfg.GPU)
	probe := func(rate int) (float64, error) {
		pol, err := sched.New(o.Scheduler)
		if err != nil {
			return 0, err
		}
		set := bench.GenerateCustom(lib, rate, o.Jobs, o.Seed)
		sys := cp.NewSystem(cfg, set, pol)
		if !spec.Zero() {
			sys.InstallFaults(faults.NewPlan(spec, o.Seed+int64(rate)), spec.Retirements)
		}
		sys.Run()
		met := 0
		for _, j := range sys.Jobs() {
			if j.MetDeadline() {
				met++
			}
		}
		return float64(met) / float64(o.Jobs), nil
	}

	lo, hi := 50, 256000
	frac, err := probe(lo)
	if err != nil {
		return CapacityResult{}, err
	}
	if frac < o.TargetMetFrac {
		return CapacityResult{JobsPerSecond: 0, MetFracAtCapacity: frac}, nil
	}
	for hi-lo > 50 {
		mid := (lo + hi) / 2
		f, err := probe(mid)
		if err != nil {
			return CapacityResult{}, err
		}
		if f >= o.TargetMetFrac {
			lo = mid
		} else {
			hi = mid
		}
	}
	// Re-probe the converged rate; if binary search landed in a
	// non-monotonic pocket the measured fraction is reported honestly
	// rather than clamped to the target.
	final, err := probe(lo)
	if err != nil {
		return CapacityResult{}, err
	}
	return CapacityResult{JobsPerSecond: lo, MetFracAtCapacity: final}, nil
}

// String renders the result for logs.
func (r CapacityResult) String() string {
	return fmt.Sprintf("%d jobs/s at %.0f%% SLO attainment", r.JobsPerSecond, 100*r.MetFracAtCapacity)
}
