// Command laxd serves the paper's deadline-aware offloading stack over HTTP:
// wall-clock arrivals run through Algorithm 1 admission on live queue state
// (202 admitted, 429 rejected-to-CPU with a Retry-After drain estimate) and
// admitted jobs execute on real-time-paced simulated GPUs under the chosen
// scheduler.
//
// Usage:
//
//	laxd                                   # LAX on one device at :8080
//	laxd -addr :9000 -scheduler EDF        # another port and policy
//	laxd -gpus 4 -routing least-loaded     # multi-device fleet
//	laxd -speed 100                        # compress time 100x for demos
//	laxd -faults "retire=4@2s;abort=0.05"  # per-device fault specs, ';'-separated
//	laxd -queue 256 -drain 10s             # accept-queue depth, shutdown grace
//
// Endpoints: POST /v1/jobs (?wait=1 blocks until terminal), GET /v1/jobs/{id},
// GET /v1/jobs/{id}/trace (per-job timeline + slack attribution),
// GET /v1/traces, GET /v1/events (SSE), GET /v1/benchmarks,
// GET /metrics (Prometheus), GET /healthz.
//
// SIGINT/SIGTERM triggers a graceful drain: new submissions get 503, in-flight
// jobs finish (or fall back to the CPU once the grace expires), then the
// process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"laxgpu"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		scheduler = flag.String("scheduler", "LAX", "queue scheduling policy (see laxsim -list or GET /v1/benchmarks)")
		gpus      = flag.Int("gpus", 1, "simulated GPU count behind the frontend")
		routing   = flag.String("routing", "least-loaded", "device routing: round-robin, least-loaded or job-hash")
		speed     = flag.Float64("speed", 1, "simulated seconds per wall second (1 = real time)")
		queue     = flag.Int("queue", 64, "per-device accept queue depth (full = HTTP 503)")
		perClient = flag.Int("max-per-client", 64, "max in-flight jobs per client address (exceeded = HTTP 429)")
		drain     = flag.Duration("drain", 5*time.Second, "graceful-shutdown grace before forcing CPU fallback")
		faults    = flag.String("faults", "", "per-device fault specs, ';'-separated (e.g. \"retire=4@2s;abort=0.05\")")
		seed      = flag.Int64("seed", 1, "seed for fault plans and the benchmark sampler")
		name      = flag.String("name", "laxd", "node name stamped on trace spans (distinct per daemon behind laxgw)")
		traceDeep = flag.Int("trace-depth", 0, "finished-trace ring depth per device (0 = 256, negative disables tracing)")
	)
	flag.Parse()

	var specs []string
	if *faults != "" {
		specs = strings.Split(*faults, ";")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv, err := laxgpu.StartServer(laxgpu.ServerOptions{
		Addr:         *addr,
		Scheduler:    *scheduler,
		Devices:      *gpus,
		Routing:      *routing,
		Speed:        *speed,
		AcceptQueue:  *queue,
		MaxPerClient: *perClient,
		DrainGrace:   *drain,
		Faults:       specs,
		Seed:         *seed,
		Name:         *name,
		TraceDepth:   *traceDeep,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "laxd:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "laxd: serving on %s (%s, %d device(s), %s routing, speed %gx)\n",
		srv.Addr(), *scheduler, *gpus, *routing, *speed)

	<-ctx.Done()
	stop() // restore default signal handling: a second signal kills hard
	fmt.Fprintln(os.Stderr, "laxd: draining...")

	sctx, cancel := context.WithTimeout(context.Background(), *drain+10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		fmt.Fprintln(os.Stderr, "laxd: shutdown:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "laxd: drained, bye")
}
