// Command laxgw runs the fleet gateway: one HTTP front tier multiplexing
// arrivals across N serving nodes, routing each job to the node reporting
// the most laxity headroom, health-checking nodes with per-node circuit
// breakers, and journaling every accepted job so node death never loses one
// (unfinished jobs of a dead node re-dispatch to survivors or finish on the
// CPU fallback).
//
// Usage:
//
//	laxgw                                   # in-process fleet of 3 nodes
//	laxgw -gpus 5 -scheduler EDF            # bigger in-process fleet
//	laxgw -nodes http://a:8080,http://b:8080  # front real laxd daemons
//	laxgw -chaos "crash@5s;;netdrop=0.1"    # per-node chaos, ';'-separated
//	laxgw -probe-interval 50ms -fail-threshold 3
//	laxgw -perfetto fleet.json              # export fleet events + traces at shutdown
//
// Endpoints: POST /v1/jobs (?wait=1 blocks until terminal; body takes an
// optional "criticality": best-effort | standard | critical), GET
// /v1/jobs/{id}, GET /v1/jobs/{id}/trace (stitched cross-process trace +
// slack attribution), GET /v1/fleet (per-node breaker states and the live
// no-lost-jobs verdict), GET /metrics, GET /healthz.
//
// SIGINT/SIGTERM drains: new submissions get 503, in-process nodes finish
// their in-flight jobs (CPU fallback after the grace), then the process
// exits 0. Remote nodes are left running — they drain themselves.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"laxgpu/internal/faults"
	"laxgpu/internal/gateway"
	"laxgpu/internal/obs"
	"laxgpu/internal/serve"
	"laxgpu/internal/sim"
)

func main() {
	var (
		addr      = flag.String("addr", ":8090", "HTTP listen address")
		nodes     = flag.String("nodes", "", "comma-separated laxd base URLs to front (empty = in-process fleet)")
		gpus      = flag.Int("gpus", 3, "in-process node count (one simulated GPU each; ignored with -nodes)")
		scheduler = flag.String("scheduler", "LAX", "queue policy for in-process nodes")
		speed     = flag.Float64("speed", 1, "simulated seconds per wall second for in-process nodes")
		queue     = flag.Int("queue", 64, "per-node accept queue depth (in-process)")
		chaos     = flag.String("chaos", "", "per-node chaos specs, ';'-separated (crash@D, freeze@D+W, netdelay=D, netdrop=P)")
		probeIv   = flag.Duration("probe-interval", 50*time.Millisecond, "wall interval between health-probe rounds")
		failThr   = flag.Int("fail-threshold", 3, "consecutive probe failures that open a node's breaker")
		backoff   = flag.Duration("probe-backoff", 100*time.Millisecond, "initial breaker backoff between recovery probes (simulated)")
		drain     = flag.Duration("drain", 5*time.Second, "graceful-shutdown grace before forcing CPU fallback (in-process)")
		seed      = flag.Int64("seed", 1, "seed for chaos plans and the benchmark sampler")
		perfetto  = flag.String("perfetto", "", "write fleet events and recent job traces as Perfetto JSON to this file at shutdown")
	)
	flag.Parse()

	clock := serve.NewWallClock(*speed)
	reg := obs.NewRegistry()

	var specs []string
	if *chaos != "" {
		specs = strings.Split(*chaos, ";")
	}

	var backends []gateway.Backend
	var closers []func()
	if *nodes != "" {
		for i, u := range strings.Split(*nodes, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			rb := gateway.NewRemoteBackend(fmt.Sprintf("node%d", i), u, nil)
			closers = append(closers, rb.Close)
			backends = append(backends, rb)
		}
	} else {
		if *gpus < 1 {
			*gpus = 1
		}
		for g := 0; g < *gpus; g++ {
			ib, err := gateway.NewInprocBackend(gateway.InprocConfig{
				Name:        fmt.Sprintf("node%d", g),
				Node:        serve.NodeConfig{Scheduler: *scheduler, Seed: *seed + int64(g)},
				Clock:       clock,
				AcceptQueue: *queue,
				Registry:    reg,
			})
			if err != nil {
				fatal(err)
			}
			backends = append(backends, ib)
		}
	}
	if len(specs) > len(backends) {
		fatal(fmt.Errorf("%d chaos specs for %d nodes", len(specs), len(backends)))
	}
	for g, spec := range specs {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		ns, err := faults.ParseNodeSpec(spec)
		if err != nil {
			fatal(err)
		}
		backends[g] = gateway.NewChaosBackend(backends[g], faults.NewNodePlan(ns, *seed+int64(g)), clock)
	}

	gw, err := gateway.New(gateway.Options{
		Backends:      backends,
		Clock:         clock,
		Registry:      reg,
		FailThreshold: *failThr,
		ProbeBackoff:  sim.FromDuration(time.Duration(float64(*backoff) * *speed)),
		Seed:          *seed,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: gw.Handler()}
	go func() { _ = hs.Serve(ln) }()

	// Prime the health view before announcing readiness, so the first
	// arrival routes on real headroom instead of zeros.
	gw.TickProbes(clock.Now())
	stopProber := gw.StartProber(*probeIv)

	mode := "in-process"
	if *nodes != "" {
		mode = "remote"
	}
	fmt.Fprintf(os.Stderr, "laxgw: serving on %s (%d %s node(s), %s, speed %gx, probe %v, threshold %d)\n",
		ln.Addr(), len(backends), mode, *scheduler, *speed, *probeIv, *failThr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	fmt.Fprintln(os.Stderr, "laxgw: draining...")

	stopProber()
	sctx, cancel := context.WithTimeout(context.Background(), *drain+10*time.Second)
	defer cancel()
	if err := gw.Shutdown(sctx, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "laxgw: shutdown:", err)
		os.Exit(1)
	}
	_ = hs.Shutdown(sctx)
	for _, c := range closers {
		c()
	}
	if *perfetto != "" {
		if err := writePerfetto(gw, *perfetto); err != nil {
			fmt.Fprintln(os.Stderr, "laxgw: perfetto export:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "laxgw: wrote Perfetto trace to %s\n", *perfetto)
	}
	fmt.Fprintln(os.Stderr, "laxgw: drained, bye")
}

// writePerfetto exports the gateway's fleet events (breaker transitions,
// failover re-dispatches, CPU fallbacks) and the stitched traces of the most
// recent terminal jobs as Chrome trace-event JSON for ui.perfetto.dev.
func writePerfetto(gw *gateway.Gateway, path string) error {
	p := obs.NewPerfetto()
	p.AddFleetEvents(gw.FleetEvents())
	jobs := gw.FleetJobs()
	const maxTraces = 64
	if len(jobs) > maxTraces {
		jobs = jobs[len(jobs)-maxTraces:]
	}
	for _, fj := range jobs {
		if fj.Terminal == "" {
			continue
		}
		if doc, ok := gw.StitchedTrace(fj.ID); ok {
			p.AddWireTrace(doc.Trace)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return p.Write(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "laxgw:", err)
	os.Exit(1)
}
