// Command laxgw runs the fleet gateway: one HTTP front tier multiplexing
// arrivals across N serving nodes, routing each job to the node reporting
// the most laxity headroom, health-checking nodes with per-node circuit
// breakers, and journaling every accepted job so node death never loses one
// (unfinished jobs of a dead node re-dispatch to survivors or finish on the
// CPU fallback).
//
// Usage:
//
//	laxgw                                   # in-process fleet of 3 nodes
//	laxgw -gpus 5 -scheduler EDF            # bigger in-process fleet
//	laxgw -nodes http://a:8080,http://b:8080  # front real laxd daemons
//	laxgw -chaos "crash@5s;;netdrop=0.1"    # per-node chaos, ';'-separated
//	laxgw -probe-interval 50ms -fail-threshold 3
//	laxgw -perfetto fleet.json              # export fleet events + traces at shutdown
//	laxgw -autoscale reactive -min-nodes 1 -max-nodes 4 -node-rate 2000
//	laxgw -autoscale predictive -scale-forecast examples/scenarios/diurnal.json
//
// Endpoints: POST /v1/jobs (?wait=1 blocks until terminal; body takes an
// optional "criticality": best-effort | standard | critical), GET
// /v1/jobs/{id}, GET /v1/jobs/{id}/trace (stitched cross-process trace +
// slack attribution), GET /v1/fleet (per-node breaker states and the live
// no-lost-jobs verdict), GET /metrics, GET /healthz.
//
// -autoscale turns the in-process fleet elastic: a control loop analyzes
// saturation every -scale-interval and grows or drains nodes between
// -min-nodes and -max-nodes, with -scale-lag of modeled provisioning delay
// before a new node turns routable. The reactive policy scales on observed
// damage (admission rejects, deadline misses); predictive sizes the fleet
// from the observed rate — and, with -scale-forecast, from a scenario's
// published rate schedule one lag ahead. Progress is visible as the
// laxgw_autoscale_* metric family and scale-up/drain instants on the fleet
// timeline.
//
// SIGINT/SIGTERM drains: new submissions get 503, in-process nodes finish
// their in-flight jobs (CPU fallback after the grace), then the process
// exits 0. Remote nodes are left running — they drain themselves.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"laxgpu/internal/autoscale"
	"laxgpu/internal/faults"
	"laxgpu/internal/gateway"
	"laxgpu/internal/obs"
	"laxgpu/internal/serve"
	"laxgpu/internal/sim"
	"laxgpu/internal/workload/scenario"
)

func main() {
	var (
		addr      = flag.String("addr", ":8090", "HTTP listen address")
		nodes     = flag.String("nodes", "", "comma-separated laxd base URLs to front (empty = in-process fleet)")
		gpus      = flag.Int("gpus", 3, "in-process node count (one simulated GPU each; ignored with -nodes)")
		scheduler = flag.String("scheduler", "LAX", "queue policy for in-process nodes")
		speed     = flag.Float64("speed", 1, "simulated seconds per wall second for in-process nodes")
		queue     = flag.Int("queue", 64, "per-node accept queue depth (in-process)")
		chaos     = flag.String("chaos", "", "per-node chaos specs, ';'-separated (crash@D, freeze@D+W, netdelay=D, netdrop=P)")
		probeIv   = flag.Duration("probe-interval", 50*time.Millisecond, "wall interval between health-probe rounds")
		failThr   = flag.Int("fail-threshold", 3, "consecutive probe failures that open a node's breaker")
		backoff   = flag.Duration("probe-backoff", 100*time.Millisecond, "initial breaker backoff between recovery probes (simulated)")
		drain     = flag.Duration("drain", 5*time.Second, "graceful-shutdown grace before forcing CPU fallback (in-process)")
		seed      = flag.Int64("seed", 1, "seed for chaos plans and the benchmark sampler")
		perfetto  = flag.String("perfetto", "", "write fleet events and recent job traces as Perfetto JSON to this file at shutdown")

		autoPol  = flag.String("autoscale", "", "fleet autoscaling policy: reactive | predictive (empty = fixed fleet; in-process nodes only)")
		scaleLag = flag.Duration("scale-lag", 500*time.Millisecond, "modeled provisioning lag before a scale-up turns routable (wall; scaled by -speed like the clock)")
		scaleIv  = flag.Duration("scale-interval", 50*time.Millisecond, "wall interval between autoscaler control ticks")
		minNodes = flag.Int("min-nodes", 1, "autoscaler floor: drains never shrink the fleet below this")
		maxNodes = flag.Int("max-nodes", 8, "autoscaler ceiling: scale-ups never grow active+pending nodes beyond this")
		nodeRate = flag.Float64("node-rate", 2000, "calibrated per-node sustainable throughput for the saturation analyzer (jobs per simulated second)")
		scaleFc  = flag.String("scale-forecast", "", "scenario file whose rate schedule the predictive policy reads one provisioning lag ahead")
	)
	flag.Parse()

	clock := serve.NewWallClock(*speed)
	reg := obs.NewRegistry()

	var specs []string
	if *chaos != "" {
		specs = strings.Split(*chaos, ";")
	}

	var backends []gateway.Backend
	var closers []func()
	if *nodes != "" {
		for i, u := range strings.Split(*nodes, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			rb := gateway.NewRemoteBackend(fmt.Sprintf("node%d", i), u, nil)
			closers = append(closers, rb.Close)
			backends = append(backends, rb)
		}
	} else {
		if *gpus < 1 {
			*gpus = 1
		}
		for g := 0; g < *gpus; g++ {
			ib, err := gateway.NewInprocBackend(gateway.InprocConfig{
				Name:        fmt.Sprintf("node%d", g),
				Node:        serve.NodeConfig{Scheduler: *scheduler, Seed: *seed + int64(g)},
				Clock:       clock,
				AcceptQueue: *queue,
				Registry:    reg,
			})
			if err != nil {
				fatal(err)
			}
			backends = append(backends, ib)
		}
	}
	if len(specs) > len(backends) {
		fatal(fmt.Errorf("%d chaos specs for %d nodes", len(specs), len(backends)))
	}
	for g, spec := range specs {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		ns, err := faults.ParseNodeSpec(spec)
		if err != nil {
			fatal(err)
		}
		backends[g] = gateway.NewChaosBackend(backends[g], faults.NewNodePlan(ns, *seed+int64(g)), clock)
	}

	gw, err := gateway.New(gateway.Options{
		Backends:      backends,
		Clock:         clock,
		Registry:      reg,
		FailThreshold: *failThr,
		ProbeBackoff:  sim.FromDuration(time.Duration(float64(*backoff) * *speed)),
		Seed:          *seed,
	})
	if err != nil {
		fatal(err)
	}

	// Elastic fleet: the controller analyzes saturation on a wall ticker and
	// grows/drains in-process nodes. The node factory mints simulated nodes,
	// so autoscaling and remote -nodes don't combine.
	var ctrl *autoscale.Controller
	if *autoPol != "" {
		if *nodes != "" {
			fatal(fmt.Errorf("-autoscale scales in-process nodes only and does not combine with -nodes"))
		}
		var pol autoscale.Policy
		switch *autoPol {
		case "reactive":
			pol = &autoscale.Reactive{}
		case "predictive":
			pol = &autoscale.Predictive{}
		default:
			fatal(fmt.Errorf("unknown -autoscale policy %q (want reactive or predictive)", *autoPol))
		}
		var fc autoscale.Forecast
		if *scaleFc != "" {
			f, err := os.Open(*scaleFc)
			if err != nil {
				fatal(err)
			}
			spec, err := scenario.Parse(f)
			f.Close()
			if err != nil {
				fatal(fmt.Errorf("-scale-forecast %s: %w", *scaleFc, err))
			}
			fc = spec
		}
		grown := len(backends)
		ctrl, err = autoscale.New(autoscale.Options{
			Gateway:  gw,
			Policy:   pol,
			Forecast: fc,
			Config: autoscale.Config{
				NodeRate: *nodeRate,
				Lag:      sim.FromDuration(time.Duration(float64(*scaleLag) * *speed)),
				MinNodes: *minNodes,
				MaxNodes: *maxNodes,
			},
			Factory: func(name string) (gateway.Backend, error) {
				grown++
				return gateway.NewInprocBackend(gateway.InprocConfig{
					Name:        name,
					Node:        serve.NodeConfig{Scheduler: *scheduler, Seed: *seed + int64(grown)},
					Clock:       clock,
					AcceptQueue: *queue,
					Registry:    reg,
				})
			},
			OnRetire: func(name string, be gateway.Backend) {
				// A drained node's simulation can stop as soon as the
				// gateway retires it; don't stall the control tick on it.
				if ib, ok := be.(*gateway.InprocBackend); ok {
					go ib.Shutdown(time.Second)
				}
			},
		})
		if err != nil {
			fatal(err)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: gw.Handler()}
	go func() { _ = hs.Serve(ln) }()

	// Prime the health view before announcing readiness, so the first
	// arrival routes on real headroom instead of zeros.
	gw.TickProbes(clock.Now())
	stopProber := gw.StartProber(*probeIv)

	// The autoscaler shares the prober's pattern: one goroutine, one ticker,
	// explicit Tick instants off the shared clock.
	stopScale := func() {}
	if ctrl != nil {
		ctrl.Tick(clock.Now())
		tick := time.NewTicker(*scaleIv)
		done := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				case <-tick.C:
					ctrl.Tick(clock.Now())
				}
			}
		}()
		stopScale = func() { tick.Stop(); close(done); wg.Wait() }
	}

	mode := "in-process"
	if *nodes != "" {
		mode = "remote"
	}
	fmt.Fprintf(os.Stderr, "laxgw: serving on %s (%d %s node(s), %s, speed %gx, probe %v, threshold %d)\n",
		ln.Addr(), len(backends), mode, *scheduler, *speed, *probeIv, *failThr)
	if ctrl != nil {
		fmt.Fprintf(os.Stderr, "laxgw: autoscale %s (%d..%d nodes, lag %v, tick %v, node-rate %g jobs/s)\n",
			*autoPol, *minNodes, *maxNodes, *scaleLag, *scaleIv, *nodeRate)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	fmt.Fprintln(os.Stderr, "laxgw: draining...")

	stopScale()
	stopProber()
	sctx, cancel := context.WithTimeout(context.Background(), *drain+10*time.Second)
	defer cancel()
	if err := gw.Shutdown(sctx, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "laxgw: shutdown:", err)
		os.Exit(1)
	}
	_ = hs.Shutdown(sctx)
	for _, c := range closers {
		c()
	}
	if *perfetto != "" {
		if err := writePerfetto(gw, *perfetto); err != nil {
			fmt.Fprintln(os.Stderr, "laxgw: perfetto export:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "laxgw: wrote Perfetto trace to %s\n", *perfetto)
	}
	fmt.Fprintln(os.Stderr, "laxgw: drained, bye")
}

// writePerfetto exports the gateway's fleet events (breaker transitions,
// failover re-dispatches, CPU fallbacks) and the stitched traces of the most
// recent terminal jobs as Chrome trace-event JSON for ui.perfetto.dev.
func writePerfetto(gw *gateway.Gateway, path string) error {
	p := obs.NewPerfetto()
	p.AddFleetEvents(gw.FleetEvents())
	jobs := gw.FleetJobs()
	const maxTraces = 64
	if len(jobs) > maxTraces {
		jobs = jobs[len(jobs)-maxTraces:]
	}
	for _, fj := range jobs {
		if fj.Terminal == "" {
			continue
		}
		if doc, ok := gw.StitchedTrace(fj.ID); ok {
			p.AddWireTrace(doc.Trace)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return p.Write(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "laxgw:", err)
	os.Exit(1)
}
