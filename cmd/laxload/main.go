// Command laxload drives a running laxd with open- or closed-loop load and
// reports the admission split and latency distribution — the serving-mode
// analogue of the simulator's arrival-rate sweep.
//
// Usage:
//
//	laxload -duration 5s                      # 8 closed-loop workers, STEM
//	laxload -mode closed -c 16 -benchmark GMM # more workers, another workload
//	laxload -mode open -rate 4000             # open loop at 4000 jobs/s
//	laxload -x 2.0                            # 2x the server's estimated capacity
//	laxload -addr http://host:8080            # a remote laxd
//	laxload -scenario examples/scenarios/three-tenant.json  # replay a scenario file
//	laxload -scenario f.json -speed 0.25      # replay at quarter speed
//	laxload -scenario f.json -plan            # print the submission plan, no server
//
// Closed-loop workers submit with ?wait=1 and hold one job in flight each,
// so offered load adapts to completions (optionally capped by -rate or -x).
// Open-loop mode fires submissions at a fixed rate regardless of outcomes,
// which is how overload is demonstrated: past the device's capacity,
// Algorithm 1 starts answering 429 with a Retry-After drain estimate.
//
// -x scales against the server's own capacity estimate from
// GET /v1/benchmarks, so "laxload -mode open -x 2" means 2x the sustainable
// rate for the chosen benchmark whatever the device configuration is.
//
// -scenario replays a versioned scenario document (SCENARIOS.md) against the
// server in wall-clock time: the file expands to the same deterministic job
// trace the simulator uses (identical seed → identical fingerprint), each
// job is submitted at its scaled arrival instant, and every cohort's
// criticality rides along so the gateway's shedding classes see the mix the
// scenario declares. -plan prints the expanded submission plan without
// contacting a server — two runs of -plan on the same file and seed are
// byte-identical, which is the replay determinism check scripts rely on.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"laxgpu/internal/cp"
	"laxgpu/internal/workload"
	"laxgpu/internal/workload/scenario"
)

// jobStatus mirrors the server's JobStatus JSON (the fields laxload reads).
type jobStatus struct {
	State        string `json:"state"`
	MetDeadline  bool   `json:"met_deadline"`
	LatencyUs    int64  `json:"latency_us"`
	RetryAfterUs int64  `json:"retry_after_us"`
	Reason       string `json:"reason"`
	MissCause    string `json:"miss_cause"`
	Error        string `json:"error"`
}

// tally accumulates outcomes across workers.
type tally struct {
	submitted, admitted, rejected int64
	limited, overflow, errors     int64
	met                           int64

	mu         sync.Mutex
	latencies  []float64        // server-reported, milliseconds, completed jobs only
	walls      []float64        // wall-clock request round trips, milliseconds
	reasons    map[string]int64 // server-stated reason per non-2xx answer
	missCauses map[string]int64 // server-stated dominant miss cause per missed job
	cohorts    map[string]*cohortCounts
}

// cohortCounts splits scenario-replay outcomes by tenant cohort.
type cohortCounts struct {
	submitted, admitted, completed, met int64
}

// recordCohort attributes one outcome to the job's cohort (scenario replays).
func (t *tally) recordCohort(cohort string, code int, st jobStatus) {
	if cohort == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cohorts == nil {
		t.cohorts = make(map[string]*cohortCounts)
	}
	c := t.cohorts[cohort]
	if c == nil {
		c = &cohortCounts{}
		t.cohorts[cohort] = c
	}
	c.submitted++
	if code == http.StatusOK || code == http.StatusAccepted {
		c.admitted++
		if st.State == "done" {
			c.completed++
			if st.MetDeadline {
				c.met++
			}
		}
	}
}

func (t *tally) record(code int, st jobStatus, wall time.Duration) {
	atomic.AddInt64(&t.submitted, 1)
	t.mu.Lock()
	t.walls = append(t.walls, float64(wall.Microseconds())/1000)
	if st.MissCause != "" {
		if t.missCauses == nil {
			t.missCauses = make(map[string]int64)
		}
		t.missCauses[st.MissCause]++
	}
	t.mu.Unlock()
	switch {
	case code == http.StatusOK || code == http.StatusAccepted:
		atomic.AddInt64(&t.admitted, 1)
		if st.State == "done" {
			if st.MetDeadline {
				atomic.AddInt64(&t.met, 1)
			}
			t.mu.Lock()
			t.latencies = append(t.latencies, float64(st.LatencyUs)/1000)
			t.mu.Unlock()
		}
		return
	case code == http.StatusTooManyRequests && st.State == "rejected":
		atomic.AddInt64(&t.rejected, 1)
	case code == http.StatusTooManyRequests:
		atomic.AddInt64(&t.limited, 1)
	case code == http.StatusServiceUnavailable:
		atomic.AddInt64(&t.overflow, 1)
	default:
		atomic.AddInt64(&t.errors, 1)
	}
	reason := st.Reason
	if reason == "" {
		reason = "unknown"
	}
	t.mu.Lock()
	if t.reasons == nil {
		t.reasons = make(map[string]int64)
	}
	t.reasons[reason]++
	t.mu.Unlock()
}

func main() {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:8080", "laxd base URL")
		benchmark = flag.String("benchmark", "STEM", "benchmark to submit")
		mode      = flag.String("mode", "closed", "load mode: closed (workers wait for completion) or open (fixed rate)")
		workers   = flag.Int("c", 8, "closed-loop worker count")
		rate      = flag.Float64("rate", 0, "offered jobs/second (open mode; optional cap in closed mode)")
		mult      = flag.Float64("x", 0, "rate as a multiple of the server's capacity estimate (overrides -rate)")
		duration  = flag.Duration("duration", 5*time.Second, "how long to offer load")
		seed      = flag.Int64("seed", 1, "seed for the Poisson arrival gaps (open mode)")
		crit      = flag.String("criticality", "", "job criticality: best-effort, standard, or critical (gateway shedding order)")
		deadline  = flag.Int64("deadline-us", 0, "override the benchmark's relative deadline (µs; 0 keeps the default)")
		scenPath  = flag.String("scenario", "", "replay a scenario file (SCENARIOS.md) instead of synthetic load; cohort criticalities map to shedding classes")
		planOnly  = flag.Bool("plan", false, "with -scenario: print the deterministic submission plan and exit without contacting a server")
		speed     = flag.Float64("speed", 1, "with -scenario: wall-clock speedup (2 replays simulated time twice as fast, 0.5 half)")
	)
	flag.Parse()

	base := strings.TrimRight(*addr, "/")
	if *scenPath != "" {
		// The scenario file owns the workload shape, so the synthetic-load
		// flags are contradictions, not modifiers.
		var conflict string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "mode", "benchmark", "rate", "x", "c", "criticality", "deadline-us", "duration":
				conflict = f.Name
			}
		})
		if conflict != "" {
			fatal(fmt.Errorf("-%s does not combine with -scenario (the scenario file defines the workload)", conflict))
		}
		if *speed <= 0 {
			fatal(fmt.Errorf("-speed must be positive"))
		}
		seedOverride := int64(0)
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "seed" {
				seedOverride = *seed
			}
		})
		if err := replayScenario(base, *scenPath, seedOverride, *speed, *planOnly); err != nil {
			fatal(err)
		}
		return
	}
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "plan" || f.Name == "speed" {
			fatal(fmt.Errorf("-%s requires -scenario", f.Name))
		}
	})
	if *mode != "closed" && *mode != "open" {
		fatal(fmt.Errorf("unknown -mode %q (want closed or open)", *mode))
	}
	offered := *rate
	if *mult > 0 {
		capacity, err := fetchCapacity(base, *benchmark)
		if err != nil {
			fatal(err)
		}
		offered = *mult * capacity
		fmt.Fprintf(os.Stderr, "laxload: capacity estimate %.0f jobs/s, offering %.1fx = %.0f jobs/s\n",
			capacity, *mult, offered)
	}
	if *mode == "open" && offered <= 0 {
		fatal(fmt.Errorf("open mode needs -rate or -x"))
	}

	fields := []string{fmt.Sprintf("\"benchmark\":%q", *benchmark)}
	if *crit != "" {
		fields = append(fields, fmt.Sprintf("\"criticality\":%q", *crit))
	}
	if *deadline > 0 {
		fields = append(fields, fmt.Sprintf("\"deadline_us\":%d", *deadline))
	}
	body := "{" + strings.Join(fields, ",") + "}"
	t := &tally{}
	stopAt := time.Now().Add(*duration)

	// In open mode (or a rate-capped closed loop) tokens pace submissions
	// as a Poisson process — exponential inter-arrival gaps at the offered
	// rate, the same arrival model the paper's traces use. Bursts are the
	// point: they are what pushes the live queue past a deadline and makes
	// Algorithm 1 reject.
	var tokens chan struct{}
	if offered > 0 {
		tokens = make(chan struct{}, 64)
		go func() {
			rng := rand.New(rand.NewSource(*seed))
			next := time.Now()
			for time.Now().Before(stopAt) {
				next = next.Add(time.Duration(rng.ExpFloat64() * float64(time.Second) / offered))
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
				select {
				case tokens <- struct{}{}:
				default: // submission side is saturated; shed the token
				}
			}
			close(tokens)
		}()
	}

	var wg sync.WaitGroup
	switch *mode {
	case "closed":
		for w := 0; w < *workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(stopAt) {
					if tokens != nil {
						if _, ok := <-tokens; !ok {
							return
						}
					}
					start := time.Now()
					code, st := post(base+"/v1/jobs?wait=1", body)
					t.record(code, st, time.Since(start))
				}
			}()
		}
	case "open":
		// One dispatcher fires a goroutine per token; a semaphore bounds
		// the in-flight request count so an unresponsive server cannot
		// accumulate unbounded goroutines.
		sem := make(chan struct{}, 512)
		for range tokens {
			sem <- struct{}{}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				start := time.Now()
				code, st := post(base+"/v1/jobs", body)
				t.record(code, st, time.Since(start))
			}()
		}
	}
	wg.Wait()

	report(os.Stdout, t, *mode, *benchmark, *duration)
	// The per-criticality SLO burn lives in the server's miss-cause counters
	// (laxgw labels them by class; laxd reports one unlabeled class). Scrape
	// failures are non-fatal: the run's own tally was already printed.
	if byClass, err := fetchMissCauses(base); err == nil {
		reportMissCauses(os.Stdout, byClass)
	}
	if t.errors > 0 {
		os.Exit(1)
	}
}

// replayScenario expands a scenario file into its deterministic job trace
// and either prints the submission plan (planOnly) or submits every job to
// the server at its scaled arrival instant. Each submission carries the
// job's benchmark, relative deadline, and cohort criticality, so a gateway
// sheds exactly the classes the scenario declares. seedOverride, when
// non-zero, replaces the file's committed seed.
func replayScenario(base, path string, seedOverride int64, speed float64, planOnly bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	spec, err := scenario.Parse(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	// The trace must match the simulator's expansion bit for bit, so the
	// kernel library is calibrated for the same default device.
	lib := workload.NewLibrary(cp.DefaultSystemConfig().GPU)
	set, err := spec.Generate(lib, seedOverride)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	effSeed := seedOverride
	if effSeed == 0 {
		effSeed = spec.SeedOrDefault()
	}
	fmt.Printf("scenario %s: %d cohorts, %d jobs over %dµs, seed %d, fingerprint %s\n",
		spec.Name, len(spec.Cohorts), len(set.Jobs), spec.DurationUs, effSeed, scenario.Fingerprint(set))

	if planOnly {
		fmt.Printf("%-6s %12s %-14s %-10s %12s %s\n", "job", "arrival_ns", "cohort", "benchmark", "deadline_us", "criticality")
		for _, j := range set.Jobs {
			fmt.Printf("%-6d %12d %-14s %-10s %12d %s\n",
				j.ID, int64(j.Arrival), j.Cohort, j.Benchmark, int64(j.Deadline)/1000, j.Criticality)
		}
		return nil
	}

	// Pace submissions on the single dispatch goroutine (arrivals are
	// sorted), firing each request asynchronously with ?wait=1 so completed
	// jobs report deadline outcomes; the semaphore bounds in-flight requests.
	t := &tally{}
	sem := make(chan struct{}, 256)
	var wg sync.WaitGroup
	start := time.Now()
	for _, j := range set.Jobs {
		target := start.Add(time.Duration(float64(j.Arrival) / speed))
		if d := time.Until(target); d > 0 {
			time.Sleep(d)
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(j *workload.Job) {
			defer wg.Done()
			defer func() { <-sem }()
			reqStart := time.Now()
			code, st := post(base+"/v1/jobs?wait=1", jobBody(j))
			t.record(code, st, time.Since(reqStart))
			t.recordCohort(j.Cohort, code, st)
		}(j)
	}
	wg.Wait()
	elapsed := time.Since(start)

	report(os.Stdout, t, "scenario", spec.Name, elapsed)
	reportCohorts(os.Stdout, t, spec.CohortNames())
	if byClass, err := fetchMissCauses(base); err == nil {
		reportMissCauses(os.Stdout, byClass)
	}
	if t.errors > 0 {
		return fmt.Errorf("%d transport errors", t.errors)
	}
	return nil
}

// jobBody renders one scenario job as the POST /v1/jobs payload: benchmark,
// relative deadline in µs, and the cohort's criticality class.
func jobBody(j *workload.Job) string {
	fields := []string{fmt.Sprintf("%q:%q", "benchmark", j.Benchmark)}
	if us := int64(j.Deadline) / 1000; us > 0 {
		fields = append(fields, fmt.Sprintf("%q:%d", "deadline_us", us))
	}
	if j.Criticality != "" {
		fields = append(fields, fmt.Sprintf("%q:%q", "criticality", j.Criticality))
	}
	return "{" + strings.Join(fields, ",") + "}"
}

// reportCohorts prints per-cohort outcomes in scenario declaration order.
func reportCohorts(w io.Writer, t *tally, cohorts []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.cohorts) == 0 {
		return
	}
	fmt.Fprintln(w, "per-cohort outcomes:")
	for _, name := range cohorts {
		c := t.cohorts[name]
		if c == nil {
			continue
		}
		pctMet := 0.0
		if c.completed > 0 {
			pctMet = 100 * float64(c.met) / float64(c.completed)
		}
		fmt.Fprintf(w, "  %-14s submitted %4d, admitted %4d, completed %4d, met %4d (%.1f%%)\n",
			name, c.submitted, c.admitted, c.completed, c.met, pctMet)
	}
}

// fetchMissCauses scrapes the target's /metrics for the miss-cause counters.
func fetchMissCauses(base string) (map[string]map[string]int64, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, err
	}
	return parseMissCauses(string(raw)), nil
}

// parseMissCauses extracts the non-zero laxgw_miss_cause_total{class,cause}
// and laxd_miss_cause_total{cause} series from Prometheus exposition text.
// laxd's unlabeled-class series land under class "all".
func parseMissCauses(text string) map[string]map[string]int64 {
	out := map[string]map[string]int64{}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "laxgw_miss_cause_total{") &&
			!strings.HasPrefix(line, "laxd_miss_cause_total{") {
			continue
		}
		open := strings.IndexByte(line, '{')
		closing := strings.IndexByte(line, '}')
		if closing < open {
			continue
		}
		labels := map[string]string{}
		for _, kv := range strings.Split(line[open+1:closing], ",") {
			if k, v, ok := strings.Cut(kv, "="); ok {
				labels[strings.TrimSpace(k)] = strings.Trim(strings.TrimSpace(v), `"`)
			}
		}
		var n int64
		if _, err := fmt.Sscanf(strings.TrimSpace(line[closing+1:]), "%d", &n); err != nil || n == 0 {
			continue
		}
		cause := labels["cause"]
		if cause == "" {
			continue
		}
		class := labels["class"]
		if class == "" {
			class = "all"
		}
		if out[class] == nil {
			out[class] = map[string]int64{}
		}
		out[class][cause] += n
	}
	return out
}

// reportMissCauses prints the per-criticality miss-cause breakdown table.
func reportMissCauses(w io.Writer, byClass map[string]map[string]int64) {
	if len(byClass) == 0 {
		return
	}
	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	fmt.Fprintln(w, "server miss causes by criticality (cumulative):")
	for _, class := range classes {
		causes := byClass[class]
		keys := make([]string, 0, len(causes))
		var total int64
		for k, v := range causes {
			keys = append(keys, k)
			total += v
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s %d", k, causes[k]))
		}
		fmt.Fprintf(w, "  %-12s %5d: %s\n", class, total, strings.Join(parts, ", "))
	}
}

// post submits one job and decodes the outcome; transport failures count as
// errors via code 0.
func post(url, body string) (int, jobStatus) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, jobStatus{}
	}
	defer resp.Body.Close()
	var st jobStatus
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err == nil {
		_ = json.Unmarshal(bytes.TrimSpace(raw), &st)
	}
	return resp.StatusCode, st
}

// fetchCapacity asks the server for its own sustainable-rate estimate.
func fetchCapacity(base, benchmark string) (float64, error) {
	resp, err := http.Get(base + "/v1/benchmarks")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var infos []struct {
		Name               string  `json:"name"`
		CapacityJobsPerSec float64 `json:"capacity_jobs_per_sec"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return 0, err
	}
	for _, bi := range infos {
		if bi.Name == benchmark && bi.CapacityJobsPerSec > 0 {
			return bi.CapacityJobsPerSec, nil
		}
	}
	return 0, fmt.Errorf("server reported no capacity for %q", benchmark)
}

// report prints the final split and the latency distribution.
func report(w io.Writer, t *tally, mode, benchmark string, d time.Duration) {
	fmt.Fprintf(w, "laxload: %s-loop, %s for %v\n", mode, benchmark, d)
	fmt.Fprintf(w, "submitted %d: admitted %d, rejected %d (admission), limited %d (client cap), unavailable %d, errors %d\n",
		t.submitted, t.admitted, t.rejected, t.limited, t.overflow, t.errors)
	if t.submitted > 0 {
		fmt.Fprintf(w, "admission rate %.1f%%, offered %.0f jobs/s\n",
			100*float64(t.admitted)/float64(t.submitted),
			float64(t.submitted)/d.Seconds())
	}
	if n := len(t.latencies); n > 0 {
		fmt.Fprintf(w, "completed %d, met deadline %d (%.1f%%)\n",
			n, t.met, 100*float64(t.met)/float64(n))
		sort.Float64s(t.latencies)
		fmt.Fprintf(w, "latency ms (simulated): p50 %.3f, p95 %.3f, p99 %.3f, max %.3f\n",
			pct(t.latencies, 50), pct(t.latencies, 95), pct(t.latencies, 99), t.latencies[n-1])
	}
	if n := len(t.walls); n > 0 {
		sort.Float64s(t.walls)
		fmt.Fprintf(w, "e2e ms (wall): p50 %.3f, p95 %.3f, p99 %.3f, max %.3f\n",
			pct(t.walls, 50), pct(t.walls, 95), pct(t.walls, 99), t.walls[n-1])
	}
	if len(t.reasons) > 0 {
		keys := make([]string, 0, len(t.reasons))
		for k := range t.reasons {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s %d", k, t.reasons[k]))
		}
		fmt.Fprintf(w, "reject reasons: %s\n", strings.Join(parts, ", "))
	}
	if len(t.missCauses) > 0 {
		keys := make([]string, 0, len(t.missCauses))
		for k := range t.missCauses {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s %d", k, t.missCauses[k]))
		}
		fmt.Fprintf(w, "miss causes (this run): %s\n", strings.Join(parts, ", "))
	}
}

// pct reads the p-th percentile from a sorted slice.
func pct(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p / 100 * float64(len(sorted)-1))
	return sorted[i]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "laxload:", err)
	os.Exit(1)
}
