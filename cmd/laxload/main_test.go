package main

import (
	"bytes"
	"context"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"laxgpu"
)

func TestParseMissCauses(t *testing.T) {
	text := strings.Join([]string{
		"# HELP laxgw_miss_cause_total Dominant miss cause per criticality.",
		"# TYPE laxgw_miss_cause_total counter",
		`laxgw_miss_cause_total{class="critical",cause="queued"} 3`,
		`laxgw_miss_cause_total{class="critical",cause="rejected"} 0`,
		`laxgw_miss_cause_total{class="standard",cause="faulted"} 1`,
		`laxd_miss_cause_total{cause="contended"} 7`,
		`laxd_requests_total{code="200"} 99`,
		"not a metric line",
	}, "\n")
	got := parseMissCauses(text)
	if n := got["critical"]["queued"]; n != 3 {
		t.Errorf("critical/queued = %d, want 3", n)
	}
	if _, ok := got["critical"]["rejected"]; ok {
		t.Error("zero-valued series should be dropped")
	}
	if n := got["standard"]["faulted"]; n != 1 {
		t.Errorf("standard/faulted = %d, want 1", n)
	}
	if n := got["all"]["contended"]; n != 7 {
		t.Errorf("unlabeled-class laxd series should land under \"all\", got %v", got)
	}
	if len(got) != 3 {
		t.Errorf("classes = %v, want critical, standard, all", got)
	}
}

func TestReportMissCauses(t *testing.T) {
	var out bytes.Buffer
	reportMissCauses(&out, map[string]map[string]int64{
		"critical": {"queued": 3, "rejected": 2},
		"all":      {"contended": 7},
	})
	got := out.String()
	for _, want := range []string{
		"server miss causes by criticality (cumulative):",
		"critical", "queued 3", "rejected 2",
		"all", "contended 7",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("breakdown missing %q:\n%s", want, got)
		}
	}
	// Empty input prints nothing.
	out.Reset()
	reportMissCauses(&out, nil)
	if out.Len() != 0 {
		t.Errorf("empty breakdown printed %q", out.String())
	}
}

func TestReportThisRunMissCauses(t *testing.T) {
	var out bytes.Buffer
	tl := &tally{submitted: 4, admitted: 2, rejected: 2,
		missCauses: map[string]int64{"rejected": 2, "queued": 1}}
	report(&out, tl, "closed", "LSTM", time.Second)
	got := out.String()
	if !strings.Contains(got, "miss causes (this run): queued 1, rejected 2") {
		t.Errorf("per-run miss causes missing:\n%s", got)
	}
}

// buildLaxload compiles the binary once per test.
func buildLaxload(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "laxload")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build failed: %v\n%s", err, out)
	}
	return bin
}

// TestCLIScenarioPlan: -plan prints the full deterministic submission plan
// without a server — two invocations must be byte-identical, and the plan
// must carry the fingerprint plus every cohort's criticality mapping.
func TestCLIScenarioPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	bin := buildLaxload(t)
	scen := "../../examples/scenarios/three-tenant.json"
	one, err := exec.Command(bin, "-scenario", scen, "-plan").CombinedOutput()
	if err != nil {
		t.Fatalf("laxload -plan failed: %v\n%s", err, one)
	}
	got := string(one)
	for _, want := range []string{"fingerprint f2d361b5e410e25e", "interactive", "critical",
		"batch", "best-effort", "arrival_ns", "deadline_us"} {
		if !strings.Contains(got, want) {
			t.Errorf("plan missing %q:\n%.400s", want, got)
		}
	}
	two, err := exec.Command(bin, "-scenario", scen, "-plan").CombinedOutput()
	if err != nil {
		t.Fatalf("second -plan failed: %v\n%s", err, two)
	}
	if !bytes.Equal(one, two) {
		t.Error("-plan output not byte-identical across runs")
	}
}

// TestCLIScenarioFlagValidation: the scenario file owns the workload, so the
// synthetic-load flags must be rejected, and -plan/-speed need -scenario.
func TestCLIScenarioFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	bin := buildLaxload(t)
	scen := "../../examples/scenarios/steady.json"
	bad := [][]string{
		{"-scenario", scen, "-mode", "open"},
		{"-scenario", scen, "-benchmark", "GMM"},
		{"-scenario", scen, "-rate", "100"},
		{"-scenario", scen, "-criticality", "critical"},
		{"-scenario", scen, "-deadline-us", "100"},
		{"-scenario", scen, "-duration", "1s"},
		{"-scenario", scen, "-speed", "0"},
		{"-scenario", "no-such-file.json", "-plan"},
		{"-plan"},
		{"-speed", "2"},
	}
	for _, args := range bad {
		if out, err := exec.Command(bin, args...).CombinedOutput(); err == nil {
			t.Errorf("contradictory flags %v accepted:\n%s", args, out)
		}
	}
}

// TestCLIScenarioReplay drives a scenario replay against a live in-process
// server and checks the per-cohort outcome table appears.
func TestCLIScenarioReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	bin := buildLaxload(t)
	srv, err := laxgpu.StartServer(laxgpu.ServerOptions{Addr: "127.0.0.1:0", Speed: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	out, err := exec.Command(bin, "-addr", srv.URL(),
		"-scenario", "../../examples/scenarios/three-tenant.json", "-speed", "0.05").CombinedOutput()
	if err != nil {
		t.Fatalf("laxload -scenario failed: %v\n%s", err, out)
	}
	got := string(out)
	for _, want := range []string{"scenario three-tenant", "fingerprint f2d361b5e410e25e",
		"per-cohort outcomes:", "interactive", "analytics", "batch", "submitted"} {
		if !strings.Contains(got, want) {
			t.Errorf("replay output missing %q:\n%s", want, got)
		}
	}
}

// TestCLIMissCauseBreakdown drives the built binary against a live in-process
// laxd: an unmeetable deadline forces admission rejections, and both the
// client-side tally and the scraped server breakdown must name the cause.
func TestCLIMissCauseBreakdown(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	bin := filepath.Join(t.TempDir(), "laxload")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build failed: %v\n%s", err, out)
	}

	srv, err := laxgpu.StartServer(laxgpu.ServerOptions{Addr: "127.0.0.1:0", Speed: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	out, err := exec.Command(bin, "-addr", srv.URL(), "-c", "2",
		"-duration", "300ms", "-deadline-us", "1").CombinedOutput()
	if err != nil {
		t.Fatalf("laxload failed: %v\n%s", err, out)
	}
	got := string(out)
	for _, want := range []string{
		"miss causes (this run):", "rejected",
		"server miss causes by criticality (cumulative):",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
