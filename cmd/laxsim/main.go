// Command laxsim regenerates the paper's evaluation tables and figures on
// the simulated Table 2 system.
//
// Usage:
//
//	laxsim                          # run every experiment
//	laxsim -experiment figure7      # one experiment
//	laxsim -list                    # list experiment IDs
//	laxsim -run LAX,LSTM,high       # one raw (scheduler,benchmark,rate) cell
//	laxsim -run LAX,LSTM,high -trace run.jsonl   # + structured event trace
//	laxsim -run LAX,STEM,high -timeline          # ASCII schedule timeline
//	laxsim -run LAX,LSTM,high -metrics m.prom    # Prometheus telemetry snapshot
//	laxsim -run LAX,LSTM,high -perfetto t.json   # Perfetto/Chrome trace export
//	laxsim -run LAX,LSTM,high -probe             # estimate-accuracy digest
//	laxsim -run LAX,LSTM,high -verify            # runtime invariant checker
//	laxsim -experiment figure7 -verify           # checked experiment grid
//	laxsim -pprof localhost:6060 -experiment table5  # live pprof/expvar server
//	laxsim -run LAX,LSTM,high -gpus 4            # multi-GPU fleet run
//	laxsim -sweep high -csv out.csv # every scheduler x benchmark at one rate
//	laxsim -run LAX,LSTM,high -faults hang=0.05,abort=0.1  # fault injection
//	laxsim -experiment table5 -parallel 4        # 4 sweep workers
//	laxsim -jobs 128 -seed 1 -v     # trace size, seed, progress logging
//	laxsim -scenario examples/scenarios/diurnal.json       # scheduler sweep over a scenario file
//	laxsim -scenario f.json -run LAX -verify     # one scheduler, invariant-checked
//	laxsim -scenario f.json -record trace.csv    # record the expanded trace (replayable)
//
// Independent simulation cells fan out across -parallel workers (0 means
// one per CPU); reports are byte-identical at every width. Ctrl-C cancels
// cleanly: in-flight simulations stop mid-event-loop.
package main

import (
	"bytes"
	"context"
	_ "expvar" // registers /debug/vars on DefaultServeMux for -pprof
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for -pprof
	"os"
	"os/signal"
	"strings"
	"time"

	"laxgpu"
	"laxgpu/internal/cluster"
	"laxgpu/internal/cp"
	"laxgpu/internal/harness"
	"laxgpu/internal/metrics"
	"laxgpu/internal/obs"
	"laxgpu/internal/sched"
	"laxgpu/internal/verify"
	"laxgpu/internal/viz"
	"laxgpu/internal/workload"
	"laxgpu/internal/workload/scenario"
)

func main() {
	var (
		experiment  = flag.String("experiment", "", "experiment ID to run (default: all); see -list")
		list        = flag.Bool("list", false, "list experiment IDs and exit")
		rawRun      = flag.String("run", "", "run one cell: scheduler,benchmark,rate (e.g. LAX,LSTM,high)")
		jobs        = flag.Int("jobs", workload.DefaultJobCount, "jobs per benchmark trace")
		seed        = flag.Int64("seed", 1, "random seed for arrival traces")
		verbose     = flag.Bool("v", false, "log each simulation run")
		traceOut    = flag.String("trace", "", "with -run: write a JSON-lines event trace to this file")
		timeline    = flag.Bool("timeline", false, "with -run: render an ASCII schedule timeline")
		sweepRate   = flag.String("sweep", "", "run every Table 3 scheduler x Table 4 benchmark at this rate")
		csvOut      = flag.String("csv", "", "with -sweep: write summaries as CSV to this file (default stdout)")
		format      = flag.String("format", "text", "report format for experiments: text or markdown")
		gpus        = flag.Int("gpus", 1, "with -run: route the trace over this many GPUs (least-loaded)")
		faults      = flag.String("faults", "", "with -run/-sweep: inject deterministic device faults, e.g. hang=0.05,abort=0.1,slow=0.1x6,retire=2@2ms,recover=on")
		parallel    = flag.Int("parallel", 0, "sweep worker pool width: 0 = one per CPU, 1 = serial")
		metricsOut  = flag.String("metrics", "", "with -run: write scheduler telemetry in Prometheus text format to this file")
		perfettoOut = flag.String("perfetto", "", "with -run: write a Chrome trace-event JSON (ui.perfetto.dev) to this file")
		probe       = flag.Bool("probe", false, "with -run: print per-run telemetry (decision counts, estimate accuracy) to stdout")
		verifyRuns  = flag.Bool("verify", false, "attach the runtime invariant checker to every simulation; any violated guarantee (DESIGN.md section 9) aborts the run with a diagnostic")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060) for the process lifetime")
		scenarioIn  = flag.String("scenario", "", "run a scenario file (SCENARIOS.md): alone sweeps every Table 5 scheduler; with -run SCHED runs one")
		recordOut   = flag.String("record", "", "with -scenario: record the expanded job trace as replayable CSV to this file")
	)
	flag.Parse()

	// -seed overrides a scenario file's committed seed only when the flag
	// was given explicitly; the flag's default must not shadow the file.
	seedExplicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedExplicit = true
		}
	})

	if *list {
		for _, id := range harness.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	if err := validateFlags(*experiment, *rawRun, *sweepRate, *csvOut, *traceOut, *timeline, *gpus, *faults, *parallel, *metricsOut, *perfettoOut, *probe, *verifyRuns, *scenarioIn, *recordOut); err != nil {
		fatal(err)
	}

	if *pprofAddr != "" {
		if err := servePprof(*pprofAddr); err != nil {
			fatal(err)
		}
	}

	// Ctrl-C cancels the context; in-flight simulations notice within a
	// few event batches and the run exits with the cancellation error.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	r := harness.NewRunner()
	r.Seed = *seed
	r.JobCount = *jobs
	r.Faults = *faults
	r.Workers = *parallel
	r.Verify = *verifyRuns
	if *verbose {
		r.Progress = os.Stderr
	}

	if *scenarioIn != "" {
		var seedOverride int64
		if seedExplicit {
			seedOverride = *seed
		}
		if err := runScenario(ctx, r, *scenarioIn, *rawRun, seedOverride, scenarioOpts{
			record:       *recordOut,
			csvPath:      *csvOut,
			metricsPath:  *metricsOut,
			perfettoPath: *perfettoOut,
			verify:       *verifyRuns,
		}); err != nil {
			fatal(err)
		}
		return
	}

	if *sweepRate != "" {
		rate, err := workload.ParseRate(*sweepRate)
		if err != nil {
			fatal(err)
		}
		// Fan the grid out across the pool, then collect summaries from
		// the warm cache in deterministic order.
		if err := r.Sweep(ctx, harness.GridCells(sched.Table5Schedulers, rate)); err != nil {
			fatal(err)
		}
		var summaries []metrics.Summary
		for _, s := range sched.Table5Schedulers {
			for _, b := range workload.BenchmarkNames() {
				sum, err := r.Run(s, b, rate)
				if err != nil {
					fatal(err)
				}
				summaries = append(summaries, sum)
			}
		}
		out := os.Stdout
		if *csvOut != "" {
			f, err := os.Create(*csvOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := metrics.WriteCSV(out, summaries); err != nil {
			fatal(err)
		}
		if *csvOut != "" {
			fmt.Printf("wrote %d rows to %s\n", len(summaries), *csvOut)
		}
		return
	}

	if *rawRun != "" {
		parts := strings.Split(*rawRun, ",")
		if len(parts) != 3 {
			fatal(fmt.Errorf("-run wants scheduler,benchmark,rate; got %q", *rawRun))
		}
		rate, err := workload.ParseRate(parts[2])
		if err != nil {
			fatal(err)
		}
		if *gpus > 1 {
			if err := runFleet(r, parts[0], parts[1], rate, *gpus); err != nil {
				fatal(err)
			}
			return
		}
		if *traceOut != "" || *timeline || *probe {
			// The structured tracer, ASCII timeline and -probe stdout digest
			// need internal observer access; everything else flows through
			// the public unified API below.
			err := runTraced(ctx, r, parts[0], parts[1], rate, obsOptions{
				tracePath:    *traceOut,
				timeline:     *timeline,
				metricsPath:  *metricsOut,
				perfettoPath: *perfettoOut,
				probeSummary: *probe,
				verify:       *verifyRuns,
			})
			if err != nil {
				fatal(err)
			}
			return
		}
		// Every flag folds into one Options value for the unified public
		// Run — the same surface library callers use; the session's memo is
		// released via Close on the way out.
		o := laxgpu.Options{
			Scheduler: parts[0], Benchmark: parts[1], Rate: parts[2],
			Jobs: *jobs, Seed: *seed, Faults: *faults,
			Verify: *verifyRuns,
		}
		var outFiles []*os.File
		closeOuts := func() {
			for _, f := range outFiles {
				if err := f.Close(); err != nil {
					fatal(err)
				}
			}
		}
		if *metricsOut != "" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				fatal(err)
			}
			outFiles = append(outFiles, f)
			o.Metrics = f
		}
		if *perfettoOut != "" {
			f, err := os.Create(*perfettoOut)
			if err != nil {
				fatal(err)
			}
			outFiles = append(outFiles, f)
			o.Perfetto = f
		}
		ses := laxgpu.NewSession(laxgpu.SessionOptions{Parallel: *parallel})
		defer ses.Close()
		s, err := ses.Run(ctx, o)
		if err != nil {
			closeOuts()
			fatal(err)
		}
		closeOuts()
		fmt.Printf("%s on %s (%s rate): %d/%d met deadline, %d rejected\n",
			s.Scheduler, s.Benchmark, s.Rate, s.MetDeadline, s.TotalJobs, s.Rejected)
		fmt.Printf("  throughput %.0f successful jobs/s, p99 latency %.3f ms, useful work %.1f%%\n",
			s.Throughput, float64(s.P99Latency)/float64(time.Millisecond), 100*s.UsefulWorkFrac)
		if s.MetDeadline > 0 {
			fmt.Printf("  energy %.2f mJ per successful job\n", s.EnergyPerSuccessMJ)
		}
		if *metricsOut != "" {
			fmt.Printf("wrote metrics to %s\n", *metricsOut)
		}
		if *perfettoOut != "" {
			fmt.Printf("wrote Perfetto trace to %s\n", *perfettoOut)
		}
		if *faults != "" {
			fmt.Printf("  recovery: %d watchdog kills, %d aborts, %d retries, %d CPU fallbacks, %d CUs retired\n",
				s.WatchdogKills, s.Aborts, s.Retries, s.Fallbacks, s.RetiredCUs)
		}
		return
	}

	render := func(rep *harness.Report) {
		switch *format {
		case "markdown", "md":
			rep.RenderMarkdown(os.Stdout)
		default:
			rep.Render(os.Stdout)
		}
	}

	if *experiment != "" {
		rep, err := harness.RunExperiment(ctx, r, *experiment)
		if err != nil {
			fatal(err)
		}
		render(rep)
		return
	}

	for _, id := range harness.ExperimentIDs() {
		rep, err := harness.RunExperiment(ctx, r, id)
		if err != nil {
			fatal(err)
		}
		render(rep)
	}
}

// obsOptions selects the observability artifacts of one -run invocation.
type obsOptions struct {
	tracePath    string
	timeline     bool
	metricsPath  string
	perfettoPath string
	probeSummary bool
	verify       bool
}

// runTraced executes one cell with the requested observers attached: the
// structured JSONL event trace and/or ASCII timeline, the Prometheus metrics
// snapshot, the Perfetto trace-event export, and the -probe stdout summary.
func runTraced(ctx context.Context, r *harness.Runner, schedName, benchName string, rate workload.Rate, o obsOptions) error {
	pol, err := sched.New(schedName)
	if err != nil {
		return err
	}
	set, err := r.JobSet(benchName, rate)
	if err != nil {
		return err
	}

	sys := cp.NewSystem(r.Cfg, set, pol)

	var buf bytes.Buffer
	var tracer *cp.Tracer
	if o.tracePath != "" || o.timeline {
		sinks := []io.Writer{&buf}
		if o.tracePath != "" {
			f, err := os.Create(o.tracePath)
			if err != nil {
				return err
			}
			defer f.Close()
			sinks = append(sinks, f)
		}
		tracer = cp.NewTracer(io.MultiWriter(sinks...))
		sys.SetTracer(tracer)
	}

	var (
		m      *obs.Metrics
		pf     *obs.Perfetto
		probes []obs.Probe
	)
	if o.metricsPath != "" || o.probeSummary {
		m = obs.NewMetrics()
		probes = append(probes, m)
	}
	if o.perfettoPath != "" {
		pf = obs.NewPerfetto()
		probes = append(probes, pf)
	}
	var ck *verify.Checker
	if o.verify {
		ck = verify.New(verify.OptionsFor(schedName, pol, r.Cfg, false))
		ck.Attach(sys)
		probes = append(probes, ck)
	}
	if len(probes) > 0 {
		sys.SetProbe(obs.Multi(probes...))
	}

	if err := sys.RunContext(ctx); err != nil {
		return err
	}
	if err := tracer.Err(); err != nil {
		return err
	}
	if ck != nil {
		if err := ck.Finalize(); err != nil {
			return fmt.Errorf("invariant violation: %w", err)
		}
	}
	s := metrics.Summarize(sys, schedName, benchName, rate.String())
	fmt.Printf("%s on %s (%s rate): %d/%d met deadline, %d rejected, %d cancelled\n",
		s.Scheduler, s.Benchmark, s.Rate, s.MetDeadline, s.TotalJobs, s.Rejected, s.Cancelled)
	if o.tracePath != "" {
		fmt.Printf("wrote %d trace events to %s\n", tracer.Events(), o.tracePath)
	}
	if m != nil && o.metricsPath != "" {
		if err := writeMetricsFile(o.metricsPath, m); err != nil {
			return err
		}
		fmt.Printf("wrote metrics to %s\n", o.metricsPath)
	}
	if pf != nil {
		f, err := os.Create(o.perfettoPath)
		if err != nil {
			return err
		}
		if err := pf.Write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d Perfetto events to %s\n", pf.Events(), o.perfettoPath)
	}
	if o.probeSummary {
		printProbeSummary(m)
	}
	if ck != nil {
		fmt.Printf("  verify: %d invariant checks, no violations\n", ck.Checks())
	}
	if o.timeline {
		events, err := viz.ParseEvents(&buf)
		if err != nil {
			return err
		}
		fmt.Println()
		return viz.RenderTimeline(os.Stdout, events, viz.Options{})
	}
	return nil
}

// scenarioOpts selects the artifacts of one -scenario invocation.
type scenarioOpts struct {
	record       string
	csvPath      string
	metricsPath  string
	perfettoPath string
	verify       bool
}

// runScenario expands a scenario file into the runner's trace memo, prints
// the determinism header (job count, effective seed, trace fingerprint), and
// either sweeps every Table 5 scheduler over it (schedName == "") or runs one
// scheduler with the single-run observers and a per-cohort breakdown.
// seedOverride, when non-zero, replaces the file's committed seed.
func runScenario(ctx context.Context, r *harness.Runner, path, schedName string, seedOverride int64, o scenarioOpts) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	spec, err := scenario.Parse(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	label, err := r.InstallScenario(spec, seedOverride)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	set, err := r.JobSet(label, workload.ScenarioRate)
	if err != nil {
		return err
	}
	effSeed := seedOverride
	if effSeed == 0 {
		effSeed = spec.SeedOrDefault()
	}
	fmt.Printf("scenario %s: %d cohorts, %d jobs over %dµs, seed %d, fingerprint %s\n",
		spec.Name, len(spec.Cohorts), len(set.Jobs), spec.DurationUs, effSeed, scenario.Fingerprint(set))
	if o.record != "" {
		rf, err := os.Create(o.record)
		if err != nil {
			return err
		}
		if err := workload.WriteTrace(rf, set); err != nil {
			rf.Close()
			return err
		}
		if err := rf.Close(); err != nil {
			return err
		}
		fmt.Printf("recorded %d jobs to %s (replayable with laxgpu.Options.Trace)\n", len(set.Jobs), o.record)
	}
	if schedName != "" {
		return runScenarioOne(ctx, r, spec, label, schedName, o)
	}

	// Scheduler sweep: the scenario cell behaves exactly like a benchmark
	// cell, so the grid fans out across the worker pool and summaries are
	// collected from the warm cache in Table 5 order.
	var cells []harness.Cell
	for _, s := range sched.Table5Schedulers {
		cells = append(cells, harness.Cell{Sched: s, Bench: label, Rate: workload.ScenarioRate})
	}
	if err := r.Sweep(ctx, cells); err != nil {
		return err
	}
	var summaries []metrics.Summary
	for _, s := range sched.Table5Schedulers {
		sum, err := r.RunContext(ctx, s, label, workload.ScenarioRate)
		if err != nil {
			return err
		}
		summaries = append(summaries, sum)
	}
	if o.csvPath != "" {
		cf, err := os.Create(o.csvPath)
		if err != nil {
			return err
		}
		if err := metrics.WriteCSV(cf, summaries); err != nil {
			cf.Close()
			return err
		}
		if err := cf.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d rows to %s\n", len(summaries), o.csvPath)
		return nil
	}
	fmt.Printf("%-8s %6s %6s %6s %10s %12s\n", "sched", "met", "total", "rej", "p99_ms", "goodput/s")
	for _, s := range summaries {
		fmt.Printf("%-8s %6d %6d %6d %10.3f %12.0f\n",
			s.Scheduler, s.MetDeadline, s.TotalJobs, s.Rejected, s.P99LatencyMs, s.ThroughputJobsPerSec)
	}
	return nil
}

// runScenarioOne executes the installed scenario cell under one scheduler
// with the optional single-run observers attached, then prints a per-cohort
// deadline breakdown in the scenario's declaration order.
func runScenarioOne(ctx context.Context, r *harness.Runner, spec *scenario.Spec, label, schedName string, o scenarioOpts) error {
	pol, err := sched.New(schedName)
	if err != nil {
		return err
	}
	set, err := r.JobSet(label, workload.ScenarioRate)
	if err != nil {
		return err
	}
	sys := cp.NewSystem(r.Cfg, set, pol)
	var (
		m      *obs.Metrics
		pf     *obs.Perfetto
		probes []obs.Probe
	)
	if o.metricsPath != "" {
		m = obs.NewMetrics()
		probes = append(probes, m)
	}
	if o.perfettoPath != "" {
		pf = obs.NewPerfetto()
		probes = append(probes, pf)
	}
	var ck *verify.Checker
	if o.verify {
		ck = verify.New(verify.OptionsFor(schedName, pol, r.Cfg, false))
		ck.Attach(sys)
		probes = append(probes, ck)
	}
	if len(probes) > 0 {
		sys.SetProbe(obs.Multi(probes...))
	}
	if err := sys.RunContext(ctx); err != nil {
		return err
	}
	if ck != nil {
		if err := ck.Finalize(); err != nil {
			return fmt.Errorf("invariant violation: %w", err)
		}
	}
	s := metrics.Summarize(sys, schedName, label, "scenario")
	fmt.Printf("%s on %s: %d/%d met deadline, %d rejected, %d cancelled\n",
		s.Scheduler, s.Benchmark, s.MetDeadline, s.TotalJobs, s.Rejected, s.Cancelled)
	printCohortBreakdown(sys, spec.CohortNames())
	if m != nil {
		if err := writeMetricsFile(o.metricsPath, m); err != nil {
			return err
		}
		fmt.Printf("wrote metrics to %s\n", o.metricsPath)
	}
	if pf != nil {
		pff, err := os.Create(o.perfettoPath)
		if err != nil {
			return err
		}
		if err := pf.Write(pff); err != nil {
			pff.Close()
			return err
		}
		if err := pff.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d Perfetto events to %s\n", pf.Events(), o.perfettoPath)
	}
	if ck != nil {
		fmt.Printf("  verify: %d invariant checks, no violations\n", ck.Checks())
	}
	return nil
}

// printCohortBreakdown prints per-cohort deadline outcomes in the order the
// cohorts were declared in the scenario file.
func printCohortBreakdown(sys *cp.System, cohorts []string) {
	type tally struct{ total, met, rejected int }
	byCohort := make(map[string]*tally)
	for _, jr := range sys.Jobs() {
		t := byCohort[jr.Job.Cohort]
		if t == nil {
			t = &tally{}
			byCohort[jr.Job.Cohort] = t
		}
		t.total++
		if jr.MetDeadline() {
			t.met++
		}
		if jr.Rejected() {
			t.rejected++
		}
	}
	for _, name := range cohorts {
		t := byCohort[name]
		if t == nil {
			continue
		}
		fmt.Printf("  cohort %-14s %4d/%-4d met (%5.1f%%), %d rejected\n",
			name, t.met, t.total, 100*float64(t.met)/float64(t.total), t.rejected)
	}
}

// writeMetricsFile snapshots the probe's registry to path in Prometheus
// text exposition format.
func writeMetricsFile(path string, m *obs.Metrics) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Registry().WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printProbeSummary renders the -probe stdout digest: decision counts and
// estimate accuracy.
func printProbeSummary(m *obs.Metrics) {
	fmt.Printf("  probe: %d accepted, %d rejected\n", m.Accepted(), m.Rejected())
	if ks := m.KernelEstimates(); ks.Count > 0 {
		fmt.Printf("  kernel estimates: %d pairs, MAE %.1f%%, bias %+.1fµs, p50 |err| %.1fµs, p99 |err| %.1fµs\n",
			ks.Count, ks.MAEPct, ks.MeanErrUs, ks.P50AbsUs, ks.P99AbsUs)
	}
	if cs := m.ChainEstimates(); cs.Count > 0 {
		fmt.Printf("  chain estimates:  %d pairs, MAE %.1f%%, bias %+.1fµs, p50 |err| %.1fµs, p99 |err| %.1fµs\n",
			cs.Count, cs.MAEPct, cs.MeanErrUs, cs.P50AbsUs, cs.P99AbsUs)
	}
}

// servePprof starts the opt-in diagnostics server: net/http/pprof and expvar
// on addr, for the process lifetime. The listener is bound synchronously so
// a bad address fails loudly before any simulation starts.
func servePprof(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("-pprof: %w", err)
	}
	fmt.Fprintf(os.Stderr, "laxsim: pprof/expvar on http://%s/debug/pprof/\n", ln.Addr())
	go func() {
		// DefaultServeMux carries the net/http/pprof and expvar handlers
		// registered by their imports.
		if err := http.Serve(ln, nil); err != nil {
			fmt.Fprintln(os.Stderr, "laxsim: pprof server:", err)
		}
	}()
	return nil
}

// runFleet routes the cell's trace over a multi-GPU cluster with
// least-loaded front-end routing.
func runFleet(r *harness.Runner, schedName, benchName string, rate workload.Rate, gpus int) error {
	set, err := r.JobSet(benchName, rate)
	if err != nil {
		return err
	}
	res, err := cluster.Run(cluster.Config{
		GPUs:      gpus,
		System:    r.Cfg,
		Routing:   cluster.RouteLeastLoaded,
		Scheduler: schedName,
	}, set)
	if err != nil {
		return err
	}
	fmt.Printf("%s on %s (%s rate) over %d GPUs: %d/%d met deadline (%.0f%%), %d rejected, imbalance %.2f\n",
		schedName, benchName, rate, gpus,
		res.MetDeadline, res.TotalJobs, 100*res.DeadlineFrac(), res.Rejected, res.Imbalance)
	for g, s := range res.PerGPU {
		fmt.Printf("  gpu%d: %3d jobs, %3d met, %3d rejected\n", g, s.TotalJobs, s.MetDeadline, s.Rejected)
	}
	return nil
}

// validateFlags rejects contradictory flag combinations up front, so a
// misplaced mode flag fails loudly instead of being silently ignored.
func validateFlags(experiment, rawRun, sweepRate, csvOut, traceOut string, timeline bool, gpus int, faults string, parallel int, metricsOut, perfettoOut string, probe, verifyRuns bool, scenarioIn, recordOut string) error {
	if gpus < 1 {
		return fmt.Errorf("-gpus must be at least 1")
	}
	if parallel < 0 {
		return fmt.Errorf("-parallel must be at least 0 (0 = one worker per CPU)")
	}
	if scenarioIn != "" {
		// Scenario mode has its own flag grammar: -run names a single
		// scheduler (not a cell), -csv applies to the sweep form, and the
		// observers that assume a benchmark cell are rejected.
		if experiment != "" || sweepRate != "" {
			return fmt.Errorf("-scenario does not combine with -experiment or -sweep")
		}
		if strings.Contains(rawRun, ",") {
			return fmt.Errorf("with -scenario, -run names a single scheduler (e.g. -run LAX); got %q", rawRun)
		}
		if faults != "" || traceOut != "" || timeline || probe || gpus != 1 {
			return fmt.Errorf("-scenario does not combine with -faults, -trace, -timeline, -probe or -gpus")
		}
		if (metricsOut != "" || perfettoOut != "") && rawRun == "" {
			return fmt.Errorf("-metrics and -perfetto with -scenario require -run SCHED (single-run observers)")
		}
		if csvOut != "" && rawRun != "" {
			return fmt.Errorf("-csv applies to the -scenario scheduler sweep; drop -run")
		}
		return nil
	}
	if recordOut != "" {
		return fmt.Errorf("-record requires -scenario")
	}
	modes := 0
	for _, set := range []bool{experiment != "", rawRun != "", sweepRate != ""} {
		if set {
			modes++
		}
	}
	if modes > 1 {
		return fmt.Errorf("-experiment, -run and -sweep are mutually exclusive")
	}
	if rawRun == "" {
		switch {
		case traceOut != "":
			return fmt.Errorf("-trace requires -run")
		case timeline:
			return fmt.Errorf("-timeline requires -run")
		case gpus != 1:
			return fmt.Errorf("-gpus requires -run")
		case metricsOut != "":
			return fmt.Errorf("-metrics requires -run")
		case perfettoOut != "":
			return fmt.Errorf("-perfetto requires -run")
		case probe:
			return fmt.Errorf("-probe requires -run")
		}
	}
	if gpus > 1 && (metricsOut != "" || perfettoOut != "" || probe || traceOut != "" || timeline || verifyRuns) {
		return fmt.Errorf("-gpus does not combine with the single-GPU observers (-trace, -timeline, -metrics, -perfetto, -probe, -verify)")
	}
	if csvOut != "" && sweepRate == "" {
		return fmt.Errorf("-csv requires -sweep")
	}
	if faults != "" {
		if rawRun == "" && sweepRate == "" {
			return fmt.Errorf("-faults requires -run or -sweep")
		}
		// -metrics and -perfetto ride the unified Run path, which installs
		// faults; the internal tracer/timeline/probe-digest path does not.
		if traceOut != "" || timeline || gpus != 1 || probe {
			return fmt.Errorf("-faults does not combine with -trace, -timeline, -gpus or -probe")
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "laxsim:", err)
	os.Exit(1)
}
