package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLI compiles the laxsim binary once per test run.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "laxsim")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build failed: %v\n%s", err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	return string(out), err
}

func TestCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	bin := buildCLI(t)

	t.Run("list", func(t *testing.T) {
		out, err := run(t, bin, "-list")
		if err != nil {
			t.Fatal(err, out)
		}
		for _, id := range []string{"table1", "figure7", "table5", "ablation", "analysis"} {
			if !strings.Contains(out, id) {
				t.Errorf("-list missing %q:\n%s", id, out)
			}
		}
	})

	t.Run("run-cell", func(t *testing.T) {
		out, err := run(t, bin, "-run", "LAX,IPV6,high", "-jobs", "32")
		if err != nil {
			t.Fatal(err, out)
		}
		if !strings.Contains(out, "LAX on IPV6") || !strings.Contains(out, "met deadline") {
			t.Errorf("unexpected -run output:\n%s", out)
		}
	})

	t.Run("experiment-markdown", func(t *testing.T) {
		out, err := run(t, bin, "-experiment", "figure3", "-format", "markdown")
		if err != nil {
			t.Fatal(err, out)
		}
		if !strings.Contains(out, "## Figure3:") || !strings.Contains(out, "| --- |") {
			t.Errorf("markdown output wrong:\n%s", out)
		}
	})

	t.Run("trace-and-timeline", func(t *testing.T) {
		tracePath := filepath.Join(t.TempDir(), "t.jsonl")
		out, err := run(t, bin, "-run", "RR,STEM,high", "-jobs", "16", "-trace", tracePath, "-timeline")
		if err != nil {
			t.Fatal(err, out)
		}
		if !strings.Contains(out, "trace events") || !strings.Contains(out, "legend:") {
			t.Errorf("trace/timeline output wrong:\n%s", out)
		}
		data, err := os.ReadFile(tracePath)
		if err != nil || len(data) == 0 {
			t.Fatalf("trace file empty: %v", err)
		}
	})

	t.Run("sweep-csv", func(t *testing.T) {
		csvPath := filepath.Join(t.TempDir(), "s.csv")
		out, err := run(t, bin, "-sweep", "low", "-jobs", "8", "-csv", csvPath)
		if err != nil {
			t.Fatal(err, out)
		}
		data, err := os.ReadFile(csvPath)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(data), "scheduler,benchmark,rate") {
			t.Errorf("csv header wrong:\n%.120s", data)
		}
		// 11 Table 5 schedulers x 8 benchmarks + header.
		if lines := strings.Count(strings.TrimSpace(string(data)), "\n") + 1; lines != 89 {
			t.Errorf("csv has %d lines, want 89", lines)
		}
	})

	t.Run("metrics-perfetto-probe", func(t *testing.T) {
		dir := t.TempDir()
		metricsPath := filepath.Join(dir, "m.prom")
		perfettoPath := filepath.Join(dir, "t.json")
		out, err := run(t, bin, "-run", "LAX,LSTM,high", "-jobs", "24",
			"-metrics", metricsPath, "-perfetto", perfettoPath, "-probe")
		if err != nil {
			t.Fatal(err, out)
		}
		for _, want := range []string{"wrote metrics to", "Perfetto events", "probe:", "kernel estimates:"} {
			if !strings.Contains(out, want) {
				t.Errorf("probed -run output missing %q:\n%s", want, out)
			}
		}
		prom, err := os.ReadFile(metricsPath)
		if err != nil {
			t.Fatal(err)
		}
		for _, fam := range []string{"laxsim_admissions_accepted_total", "laxsim_estimate_kernel_error_us"} {
			if !strings.Contains(string(prom), fam) {
				t.Errorf("metrics file missing %q:\n%.300s", fam, prom)
			}
		}
		raw, err := os.ReadFile(perfettoPath)
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("perfetto file is not valid JSON: %v", err)
		}
		if len(doc.TraceEvents) == 0 {
			t.Error("perfetto traceEvents is empty")
		}
	})

	t.Run("verify", func(t *testing.T) {
		// Plain checked run: the checker is invisible on success.
		out, err := run(t, bin, "-run", "LAX,IPV6,high", "-jobs", "16", "-verify")
		if err != nil {
			t.Fatal(err, out)
		}
		if !strings.Contains(out, "met deadline") {
			t.Errorf("unexpected checked -run output:\n%s", out)
		}
		// Checked observer run reports the check count.
		out, err = run(t, bin, "-run", "LAX,IPV6,high", "-jobs", "16", "-verify", "-probe")
		if err != nil {
			t.Fatal(err, out)
		}
		if !strings.Contains(out, "invariant checks, no violations") {
			t.Errorf("checked -probe run missing verify summary:\n%s", out)
		}
		// Checked fault-injected run: relaxed rules still pass.
		out, err = run(t, bin, "-run", "EDF,CUCKOO,high", "-jobs", "16", "-verify",
			"-faults", "hang=0.1,abort=0.1")
		if err != nil {
			t.Fatal(err, out)
		}
		if !strings.Contains(out, "recovery:") {
			t.Errorf("checked faulted run missing recovery counters:\n%s", out)
		}
	})

	t.Run("run-faults", func(t *testing.T) {
		out, err := run(t, bin, "-run", "LAX,LSTM,medium", "-jobs", "32", "-faults", "hang=0.1,abort=0.1")
		if err != nil {
			t.Fatal(err, out)
		}
		if !strings.Contains(out, "recovery:") || !strings.Contains(out, "watchdog kills") {
			t.Errorf("faulted -run missing recovery counters:\n%s", out)
		}
	})

	t.Run("errors", func(t *testing.T) {
		if out, err := run(t, bin, "-run", "NOPE,IPV6,high"); err == nil {
			t.Errorf("unknown scheduler accepted:\n%s", out)
		}
		if out, err := run(t, bin, "-run", "malformed"); err == nil {
			t.Errorf("malformed -run accepted:\n%s", out)
		}
		if out, err := run(t, bin, "-experiment", "figure99"); err == nil {
			t.Errorf("unknown experiment accepted:\n%s", out)
		}
		if out, err := run(t, bin, "-sweep", "ultra"); err == nil {
			t.Errorf("unknown sweep rate accepted:\n%s", out)
		}
		if out, err := run(t, bin, "-run", "LAX,IPV6,high", "-faults", "hang=2"); err == nil {
			t.Errorf("invalid fault spec accepted:\n%s", out)
		}
	})

	t.Run("scenario-sweep", func(t *testing.T) {
		out, err := run(t, bin, "-scenario", "../../examples/scenarios/three-tenant.json")
		if err != nil {
			t.Fatal(err, out)
		}
		for _, want := range []string{"scenario three-tenant: 3 cohorts", "fingerprint", "sched", "LAX", "EDF", "PREMA"} {
			if !strings.Contains(out, want) {
				t.Errorf("scenario sweep missing %q:\n%s", want, out)
			}
		}
		// Determinism is the headline contract: two invocations must print
		// byte-identical reports.
		again, err := run(t, bin, "-scenario", "../../examples/scenarios/three-tenant.json")
		if err != nil {
			t.Fatal(err, again)
		}
		if out != again {
			t.Errorf("scenario sweep not deterministic:\n%s\nvs\n%s", out, again)
		}
	})

	t.Run("scenario-run", func(t *testing.T) {
		out, err := run(t, bin, "-scenario", "../../examples/scenarios/three-tenant.json", "-run", "LAX", "-verify")
		if err != nil {
			t.Fatal(err, out)
		}
		for _, want := range []string{"LAX on scenario:three-tenant", "cohort interactive",
			"cohort analytics", "cohort batch", "invariant checks, no violations"} {
			if !strings.Contains(out, want) {
				t.Errorf("scenario run missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("scenario-record", func(t *testing.T) {
		rec := filepath.Join(t.TempDir(), "trace.csv")
		out, err := run(t, bin, "-scenario", "../../examples/scenarios/steady.json", "-run", "EDF", "-record", rec)
		if err != nil {
			t.Fatal(err, out)
		}
		data, err := os.ReadFile(rec)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(data), "arrival_ns,deadline_ns,kernels,benchmark,cohort,criticality") {
			t.Errorf("recorded trace is not v2:\n%.120s", data)
		}
	})

	t.Run("scenario-seed-override", func(t *testing.T) {
		base, err := run(t, bin, "-scenario", "../../examples/scenarios/steady.json", "-run", "EDF")
		if err != nil {
			t.Fatal(err, base)
		}
		over, err := run(t, bin, "-scenario", "../../examples/scenarios/steady.json", "-run", "EDF", "-seed", "9")
		if err != nil {
			t.Fatal(err, over)
		}
		if base == over {
			t.Error("-seed did not override the scenario file's seed")
		}
		if !strings.Contains(over, "seed 9") {
			t.Errorf("override seed not reported:\n%s", over)
		}
	})

	t.Run("scenario-flag-validation", func(t *testing.T) {
		scen := "../../examples/scenarios/steady.json"
		bad := [][]string{
			{"-scenario", scen, "-experiment", "figure3"},
			{"-scenario", scen, "-sweep", "low"},
			{"-scenario", scen, "-run", "LAX,IPV6,high"},
			{"-scenario", scen, "-faults", "hang=0.1"},
			{"-scenario", scen, "-run", "LAX", "-timeline"},
			{"-scenario", scen, "-run", "LAX", "-probe"},
			{"-scenario", scen, "-gpus", "2"},
			{"-scenario", scen, "-metrics", "m.prom"},
			{"-scenario", scen, "-run", "LAX", "-csv", "out.csv"},
			{"-record", "trace.csv"},
			{"-scenario", "no-such-file.json"},
		}
		for _, args := range bad {
			if out, err := run(t, bin, args...); err == nil {
				t.Errorf("contradictory flags %v accepted:\n%s", args, out)
			}
		}
	})

	t.Run("flag-validation", func(t *testing.T) {
		bad := [][]string{
			{"-run", "LAX,IPV6,high", "-sweep", "low"},
			{"-run", "LAX,IPV6,high", "-experiment", "figure3"},
			{"-sweep", "low", "-experiment", "figure3"},
			{"-trace", "t.jsonl"},
			{"-timeline"},
			{"-gpus", "2"},
			{"-gpus", "0", "-run", "LAX,IPV6,high"},
			{"-csv", "out.csv"},
			{"-csv", "out.csv", "-run", "LAX,IPV6,high"},
			{"-faults", "hang=0.1"},
			{"-faults", "hang=0.1", "-experiment", "figure3"},
			{"-faults", "hang=0.1", "-run", "LAX,IPV6,high", "-timeline"},
			{"-faults", "hang=0.1", "-run", "LAX,IPV6,high", "-gpus", "2"},
			{"-metrics", "m.prom"},
			{"-perfetto", "t.json"},
			{"-probe"},
			{"-metrics", "m.prom", "-run", "LAX,IPV6,high", "-gpus", "2"},
			{"-perfetto", "t.json", "-run", "LAX,IPV6,high", "-gpus", "2"},
			{"-faults", "hang=0.1", "-run", "LAX,IPV6,high", "-probe"},
			{"-verify", "-run", "LAX,IPV6,high", "-gpus", "2"},
		}
		for _, args := range bad {
			if out, err := run(t, bin, args...); err == nil {
				t.Errorf("contradictory flags %v accepted:\n%s", args, out)
			}
		}
	})
}

func TestCLIFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	bin := buildCLI(t)
	out, err := run(t, bin, "-run", "LAX,IPV6,high", "-jobs", "24", "-gpus", "2")
	if err != nil {
		t.Fatal(err, out)
	}
	if !strings.Contains(out, "over 2 GPUs") || !strings.Contains(out, "gpu1:") {
		t.Errorf("fleet output wrong:\n%s", out)
	}
}
