// Command laxtrace renders per-job trace waterfalls and fleet-wide slack
// attribution from a live laxd/laxgw daemon or a recorded trace file.
//
// Usage:
//
//	laxtrace                          # recent traces from :8080: miss causes + slack thieves
//	laxtrace -job 7                   # one job's waterfall + attribution
//	laxtrace -addr http://gw:8090 -n 50 -top 10
//	laxtrace -o traces.json           # record the fetched docs for later
//	laxtrace -file traces.json        # analyze a recording offline
//	laxtrace -job 7 -perfetto out.json  # also export the waterfall for ui.perfetto.dev
//
// A waterfall is the job's phase partition (parse | queue | exec) plus its
// kernel spans and instant events, drawn against the job's latency; the
// attribution table below it shows each phase's share of the slack budget
// (deadline − arrival) and, for misses, the dominant-cause verdict. The
// multi-trace report aggregates the same data: a miss-cause breakdown and
// the top-K "slack thieves" — the phases that consumed the most slack across
// missed jobs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"

	"laxgpu/internal/obs"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout)) }

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("laxtrace", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		addr     = fs.String("addr", "http://127.0.0.1:8080", "laxd or laxgw base URL")
		job      = fs.Int64("job", -1, "render one job's waterfall (default: analyze recent traces)")
		n        = fs.Int("n", 20, "recent traces to fetch")
		top      = fs.Int("top", 5, "top-K slack thieves to list")
		file     = fs.String("file", "", "read recorded trace docs (JSON) instead of HTTP")
		record   = fs.String("o", "", "write the fetched trace docs to this JSON file")
		width    = fs.Int("width", 48, "waterfall bar width in columns")
		perfetto = fs.String("perfetto", "", "export the analyzed traces as Perfetto JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	docs, err := load(*file, strings.TrimRight(*addr, "/"), *job, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "laxtrace:", err)
		return 1
	}
	if len(docs) == 0 {
		fmt.Fprintln(os.Stderr, "laxtrace: no traces (is tracing enabled and has a job finished?)")
		return 1
	}
	if *record != "" {
		if err := writeDocs(*record, docs); err != nil {
			fmt.Fprintln(os.Stderr, "laxtrace:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "laxtrace: recorded %d trace(s) to %s\n", len(docs), *record)
	}

	if *job >= 0 || len(docs) == 1 {
		waterfall(out, docs[0], *width)
	} else {
		summarize(out, docs, *top)
	}

	if *perfetto != "" {
		p := obs.NewPerfetto()
		for _, d := range docs {
			p.AddWireTrace(d.Trace)
		}
		f, err := os.Create(*perfetto)
		if err != nil {
			fmt.Fprintln(os.Stderr, "laxtrace:", err)
			return 1
		}
		werr := p.Write(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "laxtrace:", werr)
			return 1
		}
		fmt.Fprintf(os.Stderr, "laxtrace: wrote Perfetto trace to %s\n", *perfetto)
	}
	return 0
}

// load gathers trace docs from a recording, a single job endpoint, or the
// recent-traces listing.
func load(file, base string, job int64, n int) ([]obs.TraceDoc, error) {
	if file != "" {
		raw, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return parseDocs(raw)
	}
	if job >= 0 {
		raw, err := httpGet(fmt.Sprintf("%s/v1/jobs/%d/trace", base, job))
		if err != nil {
			return nil, err
		}
		var doc obs.TraceDoc
		if err := json.Unmarshal(raw, &doc); err != nil {
			return nil, err
		}
		return []obs.TraceDoc{doc}, nil
	}
	raw, err := httpGet(fmt.Sprintf("%s/v1/traces?n=%d", base, n))
	if err != nil {
		return nil, err
	}
	return parseDocs(raw)
}

// parseDocs accepts either a JSON array of trace docs or a single doc.
func parseDocs(raw []byte) ([]obs.TraceDoc, error) {
	var docs []obs.TraceDoc
	if err := json.Unmarshal(raw, &docs); err == nil {
		return docs, nil
	}
	var one obs.TraceDoc
	if err := json.Unmarshal(raw, &one); err != nil {
		return nil, fmt.Errorf("not a trace doc or array of trace docs: %w", err)
	}
	return []obs.TraceDoc{one}, nil
}

func httpGet(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	return raw, nil
}

func writeDocs(path string, docs []obs.TraceDoc) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	werr := enc.Encode(docs)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// waterfall renders one trace as an ASCII timeline: every span gets a bar
// positioned against the job's latency, instants get a '|' marker, followed
// by the slack-budget attribution table.
func waterfall(out io.Writer, doc obs.TraceDoc, width int) {
	t := doc.Trace
	if width < 10 {
		width = 10
	}
	verdict := "MET"
	if !t.Met {
		verdict = "MISS"
	}
	if t.State != "done" {
		verdict = strings.ToUpper(t.State)
	}
	fmt.Fprintf(out, "job %s (%s) trace %s — %s, slack %.0fus, latency %.0fus\n",
		t.Job, t.Benchmark, t.TraceID, verdict, t.SlackUs, t.LatencyUs)
	span := t.LatencyUs
	for _, s := range t.Spans {
		if s.EndUs > span {
			span = s.EndUs
		}
	}
	if span <= 0 {
		span = 1
	}
	scale := float64(width) / span
	for _, s := range t.Spans {
		bar := make([]byte, width+1)
		for i := range bar {
			bar[i] = ' '
		}
		from, to := int(s.StartUs*scale), int(s.EndUs*scale)
		if to > width {
			to = width
		}
		if s.EndUs > s.StartUs {
			for i := from; i <= to && i <= width; i++ {
				bar[i] = '='
			}
			fmt.Fprintf(out, "  [%s] %-8s %-14s %9.1f..%-9.1fus %-8s %s\n",
				string(bar), s.Kind, s.Name, s.StartUs, s.EndUs, s.Node, s.Detail)
			continue
		}
		if from >= 0 && from <= width {
			bar[from] = '|'
		}
		fmt.Fprintf(out, "  [%s] %-8s %-14s %9.1fus           %-8s %s\n",
			string(bar), s.Kind, s.Name, s.StartUs, s.Node, s.Detail)
	}
	fmt.Fprintln(out, "slack attribution:")
	for _, p := range doc.Attribution.Phases {
		fmt.Fprintf(out, "  %-10s %10.1fus  %5.1f%% of slack\n", p.Name, p.DurUs, p.PctOfSlack)
	}
	if doc.Attribution.Cause != "" {
		fmt.Fprintf(out, "  verdict: %s — %s\n", doc.Attribution.Cause, doc.Attribution.Detail)
	}
}

// summarize prints the multi-trace report: outcome counts, the miss-cause
// breakdown, and the top-K slack thieves across missed jobs.
func summarize(out io.Writer, docs []obs.TraceDoc, top int) {
	met, missed := 0, 0
	causes := map[string]int{}
	thief := map[string]float64{} // phase name -> slack-µs consumed across misses
	for _, d := range docs {
		if d.Trace.Met {
			met++
			continue
		}
		missed++
		if d.Attribution.Cause != "" {
			causes[d.Attribution.Cause]++
		}
		for _, p := range d.Attribution.Phases {
			thief[p.Name] += p.DurUs
		}
	}
	fmt.Fprintf(out, "laxtrace: %d trace(s): %d met, %d missed\n", len(docs), met, missed)
	if len(causes) > 0 {
		fmt.Fprintln(out, "miss causes:")
		for _, k := range sortedKeys(causes) {
			fmt.Fprintf(out, "  %-10s %4d  (%.0f%% of misses)\n",
				k, causes[k], 100*float64(causes[k])/float64(missed))
		}
	}
	if len(thief) > 0 {
		type row struct {
			name string
			us   float64
		}
		rows := make([]row, 0, len(thief))
		for k, v := range thief {
			rows = append(rows, row{k, v})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].us != rows[j].us {
				return rows[i].us > rows[j].us
			}
			return rows[i].name < rows[j].name
		})
		if top > 0 && len(rows) > top {
			rows = rows[:top]
		}
		fmt.Fprintf(out, "top %d slack thieves (phase-µs across missed jobs):\n", len(rows))
		for _, r := range rows {
			fmt.Fprintf(out, "  %-10s %12.1fus\n", r.name, r.us)
		}
	}
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
