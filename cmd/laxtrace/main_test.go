package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"laxgpu"
	"laxgpu/internal/obs"
)

// fixture builds a recorded trace file: one met job and two misses (one
// queued, one faulted).
func fixture(t *testing.T) string {
	t.Helper()
	phases := func(parse, queue, exec float64) []obs.WireSpan {
		return []obs.WireSpan{
			{Kind: obs.SpanPhase, Name: obs.PhaseParse, Node: "node-a", StartUs: 0, EndUs: parse},
			{Kind: obs.SpanPhase, Name: obs.PhaseQueue, Node: "node-a", StartUs: parse, EndUs: parse + queue,
				Detail: "behind 3 admitted jobs"},
			{Kind: obs.SpanPhase, Name: obs.PhaseExec, Node: "node-a", StartUs: parse + queue, EndUs: parse + queue + exec},
		}
	}
	mk := func(job string, met, fellBack bool, slack float64, spans []obs.WireSpan) obs.TraceDoc {
		last := spans[len(spans)-1].EndUs
		tr := obs.WireTrace{
			TraceID: strings.Repeat("ab", 16), Job: job, Benchmark: "LSTM",
			Node: "node-a", State: "done", Met: met, FellBack: fellBack,
			SlackUs: slack, LatencyUs: last, Spans: spans,
		}
		return obs.TraceDoc{Trace: tr, Attribution: obs.Attribute(tr)}
	}
	docs := []obs.TraceDoc{
		mk("1", true, false, 1000, phases(5, 20, 100)),
		mk("2", false, false, 100, phases(5, 71, 40)), // queued: wait > exec
		mk("3", false, true, 100, phases(5, 10, 200)), // faulted: CPU fallback
	}
	path := filepath.Join(t.TempDir(), "traces.json")
	raw, err := json.Marshal(docs)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSummarizeFromFile(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-file", fixture(t)}, &out); code != 0 {
		t.Fatalf("exit %d:\n%s", code, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"3 trace(s): 1 met, 2 missed",
		"queued", "faulted",
		"slack thieves",
		obs.PhaseExec,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
}

func TestWaterfallSingleDoc(t *testing.T) {
	// A one-doc file renders the waterfall directly.
	path := fixture(t)
	raw, _ := os.ReadFile(path)
	var docs []obs.TraceDoc
	if err := json.Unmarshal(raw, &docs); err != nil {
		t.Fatal(err)
	}
	one, _ := json.Marshal(docs[1])
	single := filepath.Join(t.TempDir(), "one.json")
	if err := os.WriteFile(single, one, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code := run([]string{"-file", single}, &out); code != 0 {
		t.Fatalf("exit %d:\n%s", code, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"MISS", "====", "slack attribution:",
		"verdict: queued", "behind 3 admitted jobs",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("waterfall missing %q:\n%s", want, got)
		}
	}
}

func TestPerfettoExport(t *testing.T) {
	pf := filepath.Join(t.TempDir(), "out.json")
	var out bytes.Buffer
	if code := run([]string{"-file", fixture(t), "-perfetto", pf}, &out); code != 0 {
		t.Fatalf("exit %d:\n%s", code, out.String())
	}
	raw, err := os.ReadFile(pf)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("perfetto export is empty")
	}
}

// TestLiveDaemon drives a real laxd in-process: submit one job, then render
// its waterfall over HTTP the way the CI smoke stage does.
func TestLiveDaemon(t *testing.T) {
	srv, err := laxgpu.StartServer(laxgpu.ServerOptions{
		Addr: "127.0.0.1:0", Speed: 1000, Name: "live-node",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	resp, err := http.Post(srv.URL()+"/v1/jobs?wait=1", "application/json",
		strings.NewReader(`{"benchmark":"LSTM","deadline_us":1000000}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st struct {
		ID int64 `json:"id"`
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("decode %s: %v", raw, err)
	}

	var out bytes.Buffer
	if code := run([]string{"-addr", srv.URL(), "-job", fmt.Sprint(st.ID)}, &out); code != 0 {
		t.Fatalf("exit %d:\n%s", code, out.String())
	}
	got := out.String()
	for _, want := range []string{"live-node", obs.PhaseExec, "slack attribution:"} {
		if !strings.Contains(got, want) {
			t.Errorf("live waterfall missing %q:\n%s", want, got)
		}
	}
}
