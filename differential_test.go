package laxgpu

import (
	"math/rand"
	"slices"
	"testing"

	"laxgpu/internal/cp"
	"laxgpu/internal/gpu"
	"laxgpu/internal/obs"
	"laxgpu/internal/sched"
	"laxgpu/internal/sim"
	"laxgpu/internal/workload"
)

// dispatchRecorder is a pure-observer Probe that records the run's dispatch
// order — every kernel start and completion plus every job lifecycle
// transition, in emission order. Two runs with equal recordings made the
// same scheduling decisions at the same instants.
type dispatchRecorder struct {
	starts []obs.KernelStart
	dones  []obs.KernelDone
	jobs   []obs.JobEvent
}

func (r *dispatchRecorder) Job(e obs.JobEvent)              { r.jobs = append(r.jobs, e) }
func (r *dispatchRecorder) Admission(obs.AdmissionDecision) {}
func (r *dispatchRecorder) Epoch(obs.EpochSnapshot)         {}
func (r *dispatchRecorder) Sample(obs.JobSample)            {}
func (r *dispatchRecorder) TableRefresh(obs.TableRefresh)   {}
func (r *dispatchRecorder) KernelStart(e obs.KernelStart)   { r.starts = append(r.starts, e) }
func (r *dispatchRecorder) KernelDone(e obs.KernelDone)     { r.dones = append(r.dones, e) }

// TestIncrementalLAXDifferential is the dirty-set correctness oracle: on 500
// random workloads (benchmark, arrival rate, trace length and seed all
// drawn from a fixed-seed RNG), the incremental LAX hot path and the
// full-recompute reference (LAXConfig.DisableIncremental) must make
// bit-identical scheduling decisions — same kernel dispatch order, same
// completion order, same job lifecycle stream, same event count and final
// clock. Any divergence means a stale laxity escaped the dirty set.
func TestIncrementalLAXDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 1000 small simulations")
	}
	lib := workload.NewLibrary(gpu.DefaultConfig())
	rng := rand.New(rand.NewSource(20260808))
	names := workload.BenchmarkNames()
	rates := []workload.Rate{workload.LowRate, workload.MediumRate, workload.HighRate}

	for i := 0; i < 500; i++ {
		name := names[rng.Intn(len(names))]
		bench, err := workload.FindBenchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		rate := rates[rng.Intn(len(rates))]
		jobs := 8 + rng.Intn(25)
		seed := 1 + rng.Int63n(1<<30)
		set := bench.Generate(lib, rate, jobs, seed)

		run := func(disable bool) (*dispatchRecorder, uint64, sim.Time) {
			rec := &dispatchRecorder{}
			pol := sched.NewLAXWithConfig(sched.LAXConfig{
				Variant:            sched.VariantCP,
				DisableIncremental: disable,
			})
			sys := cp.NewSystem(cp.DefaultSystemConfig(), set, pol)
			sys.SetProbe(rec)
			sys.Run()
			return rec, sys.Engine().Fired(), sys.Engine().Now()
		}
		inc, incFired, incNow := run(false)
		full, fullFired, fullNow := run(true)

		desc := func() string {
			return name + " rate=" + rate.String()
		}
		if !slices.Equal(inc.starts, full.starts) {
			t.Fatalf("case %d (%s jobs=%d seed=%d): kernel dispatch order diverged (%d vs %d starts)",
				i, desc(), jobs, seed, len(inc.starts), len(full.starts))
		}
		if !slices.Equal(inc.dones, full.dones) {
			t.Fatalf("case %d (%s jobs=%d seed=%d): kernel completion order diverged",
				i, desc(), jobs, seed)
		}
		if !slices.Equal(inc.jobs, full.jobs) {
			t.Fatalf("case %d (%s jobs=%d seed=%d): job lifecycle stream diverged",
				i, desc(), jobs, seed)
		}
		if incFired != fullFired || incNow != fullNow {
			t.Fatalf("case %d (%s jobs=%d seed=%d): event count/clock diverged: %d@%v vs %d@%v",
				i, desc(), jobs, seed, incFired, incNow, fullFired, fullNow)
		}
	}
}
