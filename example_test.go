package laxgpu_test

import (
	"context"
	"fmt"
	"log"
	"strings"

	"laxgpu"
)

// The headline comparison: deadline-blind round robin versus the
// laxity-aware scheduler on LSTM inference serving at the paper's high
// arrival rate.
func ExampleRun() {
	ctx := context.Background()
	rr, err := laxgpu.Run(ctx, laxgpu.Options{Scheduler: "RR", Benchmark: "LSTM", Rate: "high"})
	if err != nil {
		log.Fatal(err)
	}
	lax, err := laxgpu.Run(ctx, laxgpu.Options{Scheduler: "LAX", Benchmark: "LSTM", Rate: "high"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("LAX meets more deadlines than RR:", lax.MetDeadline > rr.MetDeadline)
	fmt.Println("LAX wastes less work than RR:", lax.UsefulWorkFrac > rr.UsefulWorkFrac)
	fmt.Println("LAX sheds load via admission control:", lax.Rejected > 0 && rr.Rejected == 0)
	// Output:
	// LAX meets more deadlines than RR: true
	// LAX wastes less work than RR: true
	// LAX sheds load via admission control: true
}

// Replaying an external arrival trace (e.g. a production request log)
// against any scheduler in the zoo: set Options.Trace instead of naming a
// benchmark.
func ExampleRun_trace() {
	trace := strings.NewReader(strings.Join([]string{
		"arrival_us,deadline_us,kernels",
		"0,40,IPV6Kernel",
		"15,40,IPV6Kernel",
		"200,600,cuckooKernel",
	}, "\n"))
	res, err := laxgpu.Run(context.Background(), laxgpu.Options{Scheduler: "LAX", Trace: trace})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("jobs offered:", res.TotalJobs)
	fmt.Println("all accounted for:", res.Completed+res.Rejected+res.Cancelled == res.TotalJobs)
	// Output:
	// jobs offered: 3
	// all accounted for: true
}

// Enumerating what the library can simulate.
func ExampleBenchmarks() {
	fmt.Println(strings.Join(laxgpu.Benchmarks(), " "))
	// Output:
	// LSTM GRU VAN HYBRID IPV6 CUCKOO GMM STEM
}

// The telemetry probe is a pure observer: a probed run (Options.Probe)
// returns exactly the same Result as a plain run while folding
// scheduler-decision metrics into the session registry.
func ExampleRun_probe() {
	ctx := context.Background()
	o := laxgpu.Options{Scheduler: "LAX", Benchmark: "CUCKOO", Rate: "high"}
	plain, err := laxgpu.Run(ctx, o)
	if err != nil {
		log.Fatal(err)
	}
	o.Probe = true
	probed, err := laxgpu.Run(ctx, o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("probe changes nothing:", probed == plain)
	// Output:
	// probe changes nothing: true
}

// Snapshotting the telemetry a session accumulated across probed runs, in
// Prometheus text exposition format.
func ExampleSession_WriteMetrics() {
	s := laxgpu.NewSession(laxgpu.SessionOptions{})
	o := laxgpu.Options{Scheduler: "LAX", Benchmark: "LSTM", Rate: "high", Probe: true}
	if _, err := s.Run(context.Background(), o); err != nil {
		log.Fatal(err)
	}
	var buf strings.Builder
	if err := s.WriteMetrics(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Println("has admission counters:", strings.Contains(buf.String(), "laxsim_admissions_accepted_total"))

	// Snapshots of a quiet session are deterministic and byte-identical.
	var again strings.Builder
	if err := s.WriteMetrics(&again); err != nil {
		log.Fatal(err)
	}
	fmt.Println("repeatable snapshot:", again.String() == buf.String())
	// Output:
	// has admission counters: true
	// repeatable snapshot: true
}

// The runtime invariant checker (DESIGN.md section 9) rides along as a pure
// observer: a verified run (Options.Verify) yields the same Result as a
// plain run, or an error naming the first violated guarantee.
func ExampleRun_verify() {
	ctx := context.Background()
	o := laxgpu.Options{Scheduler: "EDF", Benchmark: "IPV6", Rate: "medium"}
	plain, err := laxgpu.Run(ctx, o)
	if err != nil {
		log.Fatal(err)
	}
	o.Verify = true
	checked, err := laxgpu.Run(ctx, o)
	if err != nil {
		log.Fatal(err) // an invariant violation would surface here
	}
	fmt.Println("checker changes nothing:", checked == plain)
	// Output:
	// checker changes nothing: true
}
