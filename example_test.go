package laxgpu_test

import (
	"fmt"
	"log"
	"strings"

	"laxgpu"
)

// The headline comparison: deadline-blind round robin versus the
// laxity-aware scheduler on LSTM inference serving at the paper's high
// arrival rate.
func ExampleRun() {
	rr, err := laxgpu.Run(laxgpu.Options{Scheduler: "RR", Benchmark: "LSTM", Rate: "high"})
	if err != nil {
		log.Fatal(err)
	}
	lax, err := laxgpu.Run(laxgpu.Options{Scheduler: "LAX", Benchmark: "LSTM", Rate: "high"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("LAX meets more deadlines than RR:", lax.MetDeadline > rr.MetDeadline)
	fmt.Println("LAX wastes less work than RR:", lax.UsefulWorkFrac > rr.UsefulWorkFrac)
	fmt.Println("LAX sheds load via admission control:", lax.Rejected > 0 && rr.Rejected == 0)
	// Output:
	// LAX meets more deadlines than RR: true
	// LAX wastes less work than RR: true
	// LAX sheds load via admission control: true
}

// Replaying an external arrival trace (e.g. a production request log)
// against any scheduler in the zoo.
func ExampleRunTrace() {
	trace := strings.NewReader(strings.Join([]string{
		"arrival_us,deadline_us,kernels",
		"0,40,IPV6Kernel",
		"15,40,IPV6Kernel",
		"200,600,cuckooKernel",
	}, "\n"))
	res, err := laxgpu.RunTrace(trace, "LAX")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("jobs offered:", res.TotalJobs)
	fmt.Println("all accounted for:", res.Completed+res.Rejected+res.Cancelled == res.TotalJobs)
	// Output:
	// jobs offered: 3
	// all accounted for: true
}

// Enumerating what the library can simulate.
func ExampleBenchmarks() {
	fmt.Println(strings.Join(laxgpu.Benchmarks(), " "))
	// Output:
	// LSTM GRU VAN HYBRID IPV6 CUCKOO GMM STEM
}
