// capacityplanning answers the operator question the paper's motivation
// implies: how much latency-sensitive load can one GPU absorb before
// deadlines start slipping, and how much more does a deadline-aware
// scheduler buy?
//
// It uses the parameterized RNN builder (beyond the paper's fixed
// benchmarks) to provision a translation service at several model sizes,
// sweeping offered load for RR and LAX and reporting the highest rate at
// which ≥95% of requests meet a 7 ms SLO.
//
//	go run ./examples/capacityplanning
package main

import (
	"fmt"

	"laxgpu/internal/cp"
	"laxgpu/internal/sched"
	"laxgpu/internal/sim"
	"laxgpu/internal/workload"
)

const (
	slo       = 7 * sim.Millisecond
	targetMet = 0.95
	jobs      = 96
)

func main() {
	cfg := cp.DefaultSystemConfig()
	lib := workload.NewLibrary(cfg.GPU)
	builder := workload.NewRNNBuilder(lib)

	fmt.Println("GPU capacity planning: max sustainable load at ≥95% of 7ms SLO")
	fmt.Printf("%-22s %14s %14s %8s\n", "model", "RR (jobs/s)", "LAX (jobs/s)", "gain")

	for _, spec := range []workload.RNNSpec{
		{Cell: workload.LSTMCell, Hidden: 128, SeqLen: 8, BatchSize: 1},
		{Cell: workload.LSTMCell, Hidden: 128, SeqLen: 16, BatchSize: 1},
		{Cell: workload.GRUCell, Hidden: 128, SeqLen: 16, BatchSize: 1},
		{Cell: workload.VanillaCell, Hidden: 256, SeqLen: 16, BatchSize: 1},
	} {
		rr := maxRate(cfg, builder, spec, "RR")
		lax := maxRate(cfg, builder, spec, "LAX")
		gain := "-"
		if rr > 0 {
			gain = fmt.Sprintf("%.1fx", float64(lax)/float64(rr))
		}
		fmt.Printf("%-22s %14d %14d %8s\n",
			fmt.Sprintf("%s h=%d L=%d", spec.Cell, spec.Hidden, spec.SeqLen), rr, lax, gain)
	}

	fmt.Println()
	fmt.Println("Method: binary search over Poisson arrival rates; each probe simulates")
	fmt.Printf("%d requests and checks the fraction meeting the SLO. LAX sustains more\n", jobs)
	fmt.Println("load because admission control sheds excess demand before it poisons the")
	fmt.Println("queue, and laxity ordering spends the machine on requests that can still win.")
}

// metFrac simulates the spec at the given rate and returns the SLO-met
// fraction.
func metFrac(cfg cp.SystemConfig, b *workload.RNNBuilder, spec workload.RNNSpec, schedName string, rate int) float64 {
	rng := sim.NewRNG(42)
	meanGap := sim.Time(int64(sim.Second) / int64(rate))
	set := &workload.JobSet{Benchmark: "plan"}
	var t sim.Time
	for i := 0; i < jobs; i++ {
		if i > 0 {
			t += rng.Exp(meanGap)
		}
		j := b.Job(i, spec, t, slo)
		j.Benchmark = "plan"
		set.Jobs = append(set.Jobs, j)
	}
	pol, err := sched.New(schedName)
	if err != nil {
		panic(err)
	}
	sys := cp.NewSystem(cfg, set, pol)
	sys.Run()
	met := 0
	for _, jr := range sys.Jobs() {
		if jr.MetDeadline() {
			met++
		}
	}
	return float64(met) / float64(jobs)
}

// maxRate binary-searches the highest arrival rate meeting the target.
func maxRate(cfg cp.SystemConfig, b *workload.RNNBuilder, spec workload.RNNSpec, schedName string) int {
	lo, hi := 50, 64000
	if metFrac(cfg, b, spec, schedName, lo) < targetMet {
		return 0
	}
	for hi-lo > 50 {
		mid := (lo + hi) / 2
		if metFrac(cfg, b, spec, schedName, mid) >= targetMet {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
