// ipa simulates the intelligent-personal-assistant backend of the paper's
// §3.1.3: an automatic-speech-recognition pipeline whose two dominant GPU
// stages — GMM scoring (3 ms deadline) and word stemming (300 µs deadline)
// — arrive as separate request streams on one accelerator.
//
// Beyond the headline deadline counts, it uses the LAX policy object
// directly to expose the paper's Figure 10-style introspection: the Kernel
// Profiling Table's learned rates and a sample job's laxity trajectory.
//
//	go run ./examples/ipa
package main

import (
	"fmt"
	"math"

	"laxgpu/internal/cp"
	"laxgpu/internal/sched"
	"laxgpu/internal/sim"
	"laxgpu/internal/viz"
	"laxgpu/internal/workload"
)

func main() {
	cfg := cp.DefaultSystemConfig()
	lib := workload.NewLibrary(cfg.GPU)

	fmt.Println("IPA / speech-recognition pipeline: GMM scoring + STEM stemming")
	fmt.Println()

	for _, benchName := range []string{"GMM", "STEM"} {
		bench, err := workload.FindBenchmark(benchName)
		if err != nil {
			panic(err)
		}
		set := bench.Generate(lib, workload.HighRate, 128, 7)

		fmt.Printf("--- %s: %d jobs, %v deadline, %d jobs/s ---\n",
			benchName, set.Len(), bench.Deadline, bench.JobsPerSecond(workload.HighRate))
		for _, schedName := range []string{"RR", "PREMA", "LAX"} {
			pol, err := sched.New(schedName)
			if err != nil {
				panic(err)
			}
			sys := cp.NewSystem(cfg, set, pol)
			sys.Run()
			met, rejected := 0, sys.RejectedCount()
			for _, j := range sys.Jobs() {
				if j.MetDeadline() {
					met++
				}
			}
			fmt.Printf("  %-6s met %3d/128, rejected %3d\n", schedName, met, rejected)
		}
		fmt.Println()
	}

	// Introspect LAX on a fresh GMM run: learned rates, a traced job, and
	// a device-occupancy sparkline. A scout run picks an admitted,
	// deadline-meeting job to trace (admission control rejects much of
	// this load).
	bench, _ := workload.FindBenchmark("GMM")
	set := bench.Generate(lib, workload.HighRate, 128, 7)
	scout := cp.NewSystem(cfg, set, sched.NewLAX())
	scout.Run()
	sample := 0
	for _, jr := range scout.Jobs() {
		if jr.MetDeadline() && jr.Job.ID > sample {
			sample = jr.Job.ID
		}
	}
	lax := sched.NewLAX()
	lax.EnableTrace(sample)
	sys := cp.NewSystem(cfg, set, lax)
	var occupancy []float64
	for at := sim.Time(0); at < 8*sim.Millisecond; at += 100 * sim.Microsecond {
		at := at
		sys.Engine().Schedule(at, func() {
			occupancy = append(occupancy, sys.Device().Utilization())
		})
	}
	sys.Run()

	fmt.Println("LAX introspection (GMM run):")
	fmt.Printf("  device occupancy over the first 8ms: %s\n", viz.Sparkline(occupancy))
	if rate, ok := lax.ProfilingTable().Rate("GMMKernel"); ok {
		fmt.Printf("  profiled GMMKernel delivery: %.1f WGs/ms (device aggregate)\n", rate*1e6)
	}
	j := sys.Job(sample)
	fmt.Printf("  sample job %d: %s, finish=%v, deadline met=%v\n",
		sample, j.State(), j.FinishTime, j.MetDeadline())
	pts := lax.TracePoints()
	if len(pts) > 0 {
		fmt.Println("  laxity trajectory (durTime → predicted total, priority):")
		step := len(pts)/6 + 1
		for i := 0; i < len(pts); i += step {
			p := pts[i]
			prio := "INF"
			if p.Priority != math.MaxInt64 {
				prio = sim.Time(p.Priority).String()
			}
			fmt.Printf("    %8v → %8v  prio %s (%s)\n",
				p.DurTime, p.DurTime+p.PredictedRem, prio, p.State)
		}
	} else {
		fmt.Println("  sample job was rejected by admission control — its deadline was")
		fmt.Println("  foreclosed by queued work, so LAX never offloaded it.")
	}
}
