// Online serving: run the paper's admission controller (Algorithm 1) and
// laxity scheduler (Algorithm 2) against wall-clock HTTP traffic instead of a
// pre-scheduled trace.
//
// The example starts an in-process laxd frontend on an ephemeral port, warms
// the profiling table with one job, then fires a burst far beyond what one
// device can drain before the deadlines expire. Algorithm 1 evaluates each
// arrival against the live queue: jobs whose predicted completion would blow
// the deadline are rejected up front with a Retry-After drain estimate (the
// paper's reject-to-CPU path) so the admitted jobs still meet theirs.
//
//	go run ./examples/onlineserving
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"laxgpu"
)

func main() {
	fmt.Println("Deadline-aware online serving — admission control under a burst")

	// Speed 0.001 nearly freezes the simulated clock relative to wall time,
	// so the whole burst lands "at once" on the admission controller — the
	// serving equivalent of the paper's overload operating point.
	srv, err := laxgpu.StartServer(laxgpu.ServerOptions{
		Addr:         "127.0.0.1:0",
		Scheduler:    "LAX",
		Speed:        0.001,
		MaxPerClient: 1024,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("laxd frontend on %s (LAX, 1 device)\n\n", srv.URL())

	// The first submission always admits: an empty queue means zero hold
	// time, so any feasible deadline passes the test.
	post(srv.URL()+"/v1/jobs", `{"benchmark":"STEM"}`)

	const burst = 24
	admitted, rejected := 0, 0
	for i := 1; i < burst; i++ {
		st := post(srv.URL()+"/v1/jobs", `{"benchmark":"STEM"}`)
		switch st.State {
		case "rejected":
			rejected++
			if rejected == 1 {
				fmt.Printf("first rejection at job %d: predicted drain %v, deadline %v\n",
					i, time.Duration(st.RetryAfterUs)*time.Microsecond, 300*time.Microsecond)
			}
		default:
			admitted++
		}
	}

	fmt.Printf("\nburst of %d STEM jobs (300 µs deadline each):\n", burst-1)
	fmt.Printf("  admitted %d — queue drains before their deadlines\n", admitted)
	fmt.Printf("  rejected %d — Algorithm 1 refused them up front (HTTP 429 + Retry-After)\n", rejected)
	if admitted == 0 || rejected == 0 {
		log.Fatalf("expected a split verdict under overload, got %d/%d", admitted, rejected)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nserver drained cleanly")
}

// jobStatus is the slice of the server's job JSON the example reads.
type jobStatus struct {
	State        string `json:"state"`
	RetryAfterUs int64  `json:"retry_after_us"`
}

func post(url, body string) jobStatus {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	return st
}
