// packetpipeline simulates GPU-offloaded network packet processing — the
// paper's IPV6 longest-prefix-match (40 µs deadline) and Cuckoo-hash MAC
// lookup (600 µs deadline) workloads — using the library's lower-level
// simulation API to build a custom mixed pipeline: both packet classes
// share one GPU, arriving on independent Poisson processes.
//
// It compares deadline-blind RR, deadline-only EDF, and LAX on the mixed
// trace, showing per-class deadline-met fractions: exactly the situation
// where a scheduler must spend the GPU on lookups that can still make line
// rate and shed the rest.
//
//	go run ./examples/packetpipeline
package main

import (
	"fmt"
	"sort"

	"laxgpu/internal/cp"
	"laxgpu/internal/gpu"
	"laxgpu/internal/metrics"
	"laxgpu/internal/sched"
	"laxgpu/internal/sim"
	"laxgpu/internal/workload"
)

func main() {
	cfg := cp.DefaultSystemConfig()
	lib := workload.NewLibrary(cfg.GPU)

	// Build a mixed trace: 96 IPV6 lookups at 48k/s interleaved with 32
	// Cuckoo lookups at 6k/s, merged by arrival time.
	set := buildMixedTrace(lib, 1)

	fmt.Println("GPU packet-processing pipeline: IPV6 (40µs deadline) + CUCKOO (600µs deadline)")
	fmt.Printf("%d mixed lookups; shared 8-CU GPU\n\n", set.Len())
	fmt.Printf("%-6s %10s %10s %10s %12s %10s\n",
		"sched", "IPV6 met", "CUCKOO met", "rejected", "p99", "useful%")

	for _, name := range []string{"RR", "EDF", "LAX"} {
		pol, err := sched.New(name)
		if err != nil {
			panic(err)
		}
		sys := cp.NewSystem(cfg, set, pol)
		sys.Run()

		met := map[string]int{}
		total := map[string]int{}
		var latencies []float64
		for _, j := range sys.Jobs() {
			total[j.Job.Benchmark]++
			if j.MetDeadline() {
				met[j.Job.Benchmark]++
			}
			if j.Done() {
				latencies = append(latencies, j.Latency().Milliseconds())
			}
		}
		s := metrics.Summarize(sys, name, "mixed", "custom")
		fmt.Printf("%-6s %6d/%-3d %6d/%-3d %10d %12.3fms %9.1f%%\n",
			name,
			met["IPV6"], total["IPV6"],
			met["CUCKOO"], total["CUCKOO"],
			sys.RejectedCount(),
			metrics.Percentile(latencies, 99),
			100*s.UsefulWorkFrac)
	}

	fmt.Println("\nIPV6's 40µs budget leaves no room for queueing: a lookup either starts")
	fmt.Println("almost immediately or is already dead. LAX's queueing-delay estimate")
	fmt.Println("rejects the dead ones at the host, so the GPU serves packets that still")
	fmt.Println("make line rate; CUCKOO's looser budget absorbs the displaced load.")
}

// buildMixedTrace merges IPV6 and CUCKOO Poisson arrivals into one job set
// with dense IDs sorted by arrival time.
func buildMixedTrace(lib *workload.Library, seed int64) *workload.JobSet {
	rng := sim.NewRNG(seed)
	type proto struct {
		bench    string
		kernel   string
		deadline sim.Time
		count    int
		meanGap  sim.Time
	}
	protos := []proto{
		{"IPV6", "IPV6Kernel", 40 * sim.Microsecond, 96, sim.Second / 48000},
		{"CUCKOO", "cuckooKernel", 600 * sim.Microsecond, 32, sim.Second / 6000},
	}
	var jobs []*workload.Job
	for _, p := range protos {
		var t sim.Time
		for i := 0; i < p.count; i++ {
			if i > 0 {
				t += rng.Exp(p.meanGap)
			}
			jobs = append(jobs, &workload.Job{
				Benchmark: p.bench,
				Arrival:   t,
				Deadline:  p.deadline,
				Kernels:   []*gpu.KernelDesc{lib.Kernel(p.kernel)},
			})
		}
	}
	sort.SliceStable(jobs, func(a, b int) bool { return jobs[a].Arrival < jobs[b].Arrival })
	for i, j := range jobs {
		j.ID = i
	}
	return &workload.JobSet{Benchmark: "mixed", Seed: seed, Jobs: jobs}
}
