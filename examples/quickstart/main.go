// Quickstart: compare the contemporary round-robin GPU scheduler against
// the paper's laxity-aware LAX on LSTM inference serving at the high
// arrival rate (Table 4), using only the public facade.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"laxgpu"
)

func main() {
	fmt.Println("Deadline-aware GPU offloading — quickstart")
	fmt.Println("Workload: 128 LSTM inference jobs, 7 ms deadline, 8000 jobs/s Poisson arrivals")
	fmt.Println()

	for _, scheduler := range []string{"RR", "LAX"} {
		res, err := laxgpu.Run(context.Background(), laxgpu.Options{
			Scheduler: scheduler,
			Benchmark: "LSTM",
			Rate:      "high",
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s met %3d/%d deadlines (%.0f%%)  rejected %3d  "+
			"p99 %8v  useful work %4.1f%%  %.1f mJ/success\n",
			res.Scheduler, res.MetDeadline, res.TotalJobs, 100*res.DeadlineFrac(),
			res.Rejected, res.P99Latency, 100*res.UsefulWorkFrac, res.EnergyPerSuccessMJ)
	}

	fmt.Println()
	fmt.Println("LAX inspects each stream's kernel queue, estimates remaining work from")
	fmt.Println("profiled workgroup completion rates, rejects jobs its Little's-Law queueing")
	fmt.Println("model predicts will miss, and re-ranks the rest by laxity every 100 µs.")
}
