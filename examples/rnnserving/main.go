// rnnserving simulates a datacenter RNN-inference serving tier — the
// scenario that motivates the paper's introduction: translation/speech jobs
// with 7 ms deadlines and sequence-length-dependent work arrive faster than
// the GPU can drain them, and the scheduler decides who makes their
// deadline.
//
// It sweeps the RNN benchmarks (LSTM, GRU, VAN, HYBRID) across arrival
// rates and scheduler families, printing deadline-met fractions and tail
// latencies, then drills into how LAX's admission controller shapes the
// accepted load.
//
//	go run ./examples/rnnserving
package main

import (
	"context"
	"fmt"
	"log"

	"laxgpu"
)

var schedulers = []string{"RR", "BAY", "SJF", "PREMA", "LAX"}
var rnns = []string{"LSTM", "GRU", "VAN", "HYBRID"}

func main() {
	fmt.Println("RNN inference serving: deadline-met fraction by scheduler")
	fmt.Println("(128 jobs per cell, 7 ms deadlines, WMT'15-style sequence lengths)")

	for _, rate := range []string{"low", "medium", "high"} {
		fmt.Printf("\n--- %s arrival rate ---\n", rate)
		fmt.Printf("%-8s", "")
		for _, b := range rnns {
			fmt.Printf("%10s", b)
		}
		fmt.Println()
		for _, s := range schedulers {
			fmt.Printf("%-8s", s)
			for _, b := range rnns {
				res, err := laxgpu.Run(context.Background(), laxgpu.Options{Scheduler: s, Benchmark: b, Rate: rate})
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%9.0f%%", 100*res.DeadlineFrac())
			}
			fmt.Println()
		}
	}

	fmt.Println("\nTail latency and admission behavior at the high rate (LSTM):")
	fmt.Printf("%-8s %12s %12s %10s %10s\n", "sched", "p99", "mean", "rejected", "useful%")
	for _, s := range schedulers {
		res, err := laxgpu.Run(context.Background(), laxgpu.Options{Scheduler: s, Benchmark: "LSTM", Rate: "high"})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %12v %12v %10d %9.1f%%\n",
			s, res.P99Latency, res.MeanLatency, res.Rejected, 100*res.UsefulWorkFrac)
	}

	fmt.Println("\nReading the table: deadline-blind RR wastes most of the GPU on jobs that")
	fmt.Println("will miss anyway; SJF saves short sequences but starves long ones; LAX")
	fmt.Println("rejects what cannot finish and spends the machine on jobs that can.")
}
