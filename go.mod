module laxgpu

go 1.22
