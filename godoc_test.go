package laxgpu

import (
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

// TestGodocComplete is the documentation gate for the public surface: every
// exported symbol of the root laxgpu package and of cmd/laxsim — package
// clause, types, funcs, methods, consts, vars, and exported struct fields —
// must carry a doc comment. The public API is the contract DESIGN.md's
// guarantees hang off; an undocumented export is an undocumented guarantee.
func TestGodocComplete(t *testing.T) {
	for _, dir := range []string{".", "cmd/laxsim", "internal/workload/scenario"} {
		t.Run(dir, func(t *testing.T) {
			checkPackageDocs(t, dir)
		})
	}
}

func checkPackageDocs(t *testing.T, dir string) {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	for name, pkg := range pkgs {
		p := doc.New(pkg, dir, 0)
		missing := func(kind, sym string) {
			t.Errorf("%s: %s %s has no doc comment", name, kind, sym)
		}
		if strings.TrimSpace(p.Doc) == "" {
			missing("package", name)
		}
		checkValues := func(vals []*doc.Value, kind string) {
			for _, v := range vals {
				if strings.TrimSpace(v.Doc) != "" {
					continue
				}
				for _, n := range v.Names {
					if token.IsExported(n) {
						missing(kind, n)
					}
				}
			}
		}
		checkFuncs := func(fns []*doc.Func, recv string) {
			for _, f := range fns {
				if strings.TrimSpace(f.Doc) == "" {
					missing("func", recv+f.Name)
				}
			}
		}
		checkValues(p.Consts, "const")
		checkValues(p.Vars, "var")
		checkFuncs(p.Funcs, "")
		for _, tp := range p.Types {
			if strings.TrimSpace(tp.Doc) == "" {
				missing("type", tp.Name)
			}
			checkValues(tp.Consts, "const")
			checkValues(tp.Vars, "var")
			checkFuncs(tp.Funcs, "")
			checkFuncs(tp.Methods, tp.Name+".")
			checkFieldDocs(t, name, tp)
		}
	}
}

// checkFieldDocs requires a doc or line comment on every exported field of
// an exported struct type.
func checkFieldDocs(t *testing.T, pkgName string, tp *doc.Type) {
	t.Helper()
	for _, spec := range tp.Decl.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, f := range st.Fields.List {
			if f.Doc.Text() != "" || f.Comment.Text() != "" {
				continue
			}
			for _, n := range f.Names {
				if n.IsExported() {
					t.Errorf("%s: field %s.%s has no doc comment", pkgName, tp.Name, n.Name)
				}
			}
		}
	}
}
