// Package autoscale grows and drains the gateway's fleet mid-run. It pairs
// a saturation analyzer — live per-node utilization and laxity headroom
// folded into the M/M/k model from internal/queueing — with a policy loop
// that issues ScaleUp/Drain decisions under a modeled provisioning lag, so
// a late scale decision visibly costs deadline misses.
//
// The three policies bracket the design space the autoscale experiment
// measures: Static holds the fleet fixed (the baseline), Reactive scales on
// observed damage (rejects and SLO burn — it cannot act sooner than the
// damage), and Predictive reads the scenario's published rate schedule and
// provisions one lag ahead of each step, which is the only way a scale-up
// can be ready when the step arrives.
//
// Everything is driven by explicit Tick(now) calls, so under a
// serve.ManualClock the whole control loop is deterministic and unit
// testable; laxgw drives the same Tick from a wall-clock ticker.
package autoscale

import (
	"laxgpu/internal/gateway"
	"laxgpu/internal/queueing"
	"laxgpu/internal/sim"
)

// Config tunes the analyzer and the controller. The zero value of every
// field has a usable default except NodeRate, which is required.
type Config struct {
	// NodeRate is one healthy node's sustainable throughput in jobs/second
	// — the calibration constant bridging FindCapacity (which measures it
	// for a scenario's peak phase) to the fleet model. Required > 0.
	NodeRate float64

	// TargetMet is the deadline-met objective the knee is computed against
	// (default 0.95).
	TargetMet float64

	// Lag is the modeled provisioning delay: a ScaleUp decided at t serves
	// its first job at t+Lag (default 10ms of simulated time).
	Lag sim.Time

	// MinNodes/MaxNodes bound the fleet (defaults 1 and 8). Draining nodes
	// count toward neither.
	MinNodes, MaxNodes int

	// Alpha is the EMA smoothing factor for the observed arrival rate in
	// (0, 1]; higher tracks faster (default 0.5).
	Alpha float64

	// DrainPatience is how many consecutive ticks the analyzer must deem a
	// smaller fleet sufficient before a policy drains a node (default 3) —
	// the anti-flap guard.
	DrainPatience int

	// NamePrefix names nodes the controller grows (default "scale", so
	// nodes are "scale0", "scale1", ...).
	NamePrefix string
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.TargetMet <= 0 || c.TargetMet >= 1 {
		c.TargetMet = 0.95
	}
	if c.Lag <= 0 {
		c.Lag = 10 * sim.Millisecond
	}
	if c.MinNodes < 1 {
		c.MinNodes = 1
	}
	if c.MaxNodes < c.MinNodes {
		c.MaxNodes = c.MinNodes + 7
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.5
	}
	if c.DrainPatience < 1 {
		c.DrainPatience = 3
	}
	if c.NamePrefix == "" {
		c.NamePrefix = "scale"
	}
	return c
}

// Forecast publishes the offered arrival rate the workload will present at
// a future instant. *scenario.Spec implements it via RateAt; a nil forecast
// leaves the predictive signal empty (ForecastRate mirrors the observed
// rate).
type Forecast interface {
	RateAt(t sim.Time) float64
}

// Analysis is one tick's saturation picture: what the analyzer hands the
// policy. All predictions come from the M/M/k model with K = active nodes
// and per-server rate NodeRate, degraded by each node's surviving capacity
// fraction.
type Analysis struct {
	// At is the tick instant.
	At sim.Time

	// Active / Draining / Pending count routable fleet members, members
	// finishing their admitted work, and scale-ups still inside the
	// provisioning lag.
	Active, Draining, Pending int

	// Rate is the EMA-smoothed observed arrival rate (jobs/s).
	Rate float64

	// ForecastRate is the schedule's offered rate one provisioning lag
	// ahead (what the fleet must be sized for by the time a scale-up
	// decided now becomes ready). Mirrors Rate when no forecast is wired.
	ForecastRate float64

	// Service is the mean per-job serial-time estimate of the offered
	// workload; Deadline is its mean relative deadline. Tightest is the
	// smallest relative deadline ever journaled — the deadline the model
	// sizes for, because a mixed-criticality mean hides the tight cohort
	// (a fleet sized for the average deadline sheds exactly the jobs the
	// paper's laxity scheduling exists to protect).
	Service, Deadline, Tightest sim.Time

	// Utilization is offered load over fleet capacity: rate / (NodeRate ×
	// Σ capacity fractions of active nodes). > 1 means the backlog grows.
	Utilization float64

	// MetNow / MetAhead are the predicted deadline-met fractions for the
	// current fleet at the observed rate and at the forecast rate; MetDown
	// is the prediction for one fewer node at whichever of the two rates
	// is higher (the drain-safety check).
	MetNow, MetAhead, MetDown float64

	// KneeRate is the highest arrival rate the current fleet is predicted
	// to sustain at the target met fraction — the saturation knee.
	KneeRate float64

	// KneeNodes is the smallest healthy-node count predicted to sustain
	// max(Rate, ForecastRate) at the target met fraction (clamped to
	// MaxNodes; MaxNodes+1 means even the full fleet is predicted short).
	KneeNodes int

	// RejectDelta / MissDelta are the new rejects (admission + shed +
	// unhealthy) and new deadline misses since the previous tick — the
	// reactive policy's damage signals.
	RejectDelta, MissDelta int64

	// MinDrain is the lowest per-node drain estimate among routable nodes:
	// the fleet's laxity headroom (how soon any node could start new
	// work).
	MinDrain sim.Time
}

// analyzer turns gateway snapshots into Analysis rows, keeping the EMA and
// the previous stats between ticks.
type analyzer struct {
	cfg      Config
	forecast Forecast

	prev     gateway.Stats
	prevAt   sim.Time
	havePrev bool
	rate     float64  // EMA
	latency  sim.Time // observed mean serial estimate (deadline-slack term)
}

// analyze computes one tick's Analysis from the gateway's cumulative stats
// and node table.
func (a *analyzer) analyze(now sim.Time, st gateway.Stats, loads []gateway.NodeLoad, pending int) Analysis {
	an := Analysis{At: now, Pending: pending}

	// Fleet shape and live capacity (CU retirements shrink a node's
	// fraction; a dead node's breaker removes it from Active entirely).
	fracSum := 0.0
	minDrain := sim.Time(-1)
	for _, l := range loads {
		switch {
		case l.Retired:
		case l.Draining:
			an.Draining++
		case l.Breaker == gateway.BreakerOpen:
		default:
			an.Active++
			fracSum += l.CapacityFrac
			if minDrain < 0 || l.Drain < minDrain {
				minDrain = l.Drain
			}
		}
	}
	if minDrain > 0 {
		an.MinDrain = minDrain
	}

	// Observed arrival rate: EMA over per-tick deltas of the submit
	// counter.
	if a.havePrev && now > a.prevAt {
		dt := (now - a.prevAt).Seconds()
		inst := float64(st.Submitted-a.prev.Submitted) / dt
		a.rate = a.cfg.Alpha*inst + (1-a.cfg.Alpha)*a.rate
		an.RejectDelta = (st.Rejected + st.Shed + st.Unhealthy) -
			(a.prev.Rejected + a.prev.Shed + a.prev.Unhealthy)
		an.MissDelta = st.Missed - a.prev.Missed
	}
	a.prev, a.prevAt, a.havePrev = st, now, true
	an.Rate = a.rate

	// Offered workload shape from the cumulative sums. The mean serial
	// estimate doubles as the model's latency term: deadline slack is
	// measured against how long one job takes, not against the node's
	// throughput interval (a node overlaps many jobs, so its 1/NodeRate
	// occupancy is far longer than any single job's latency).
	if st.Journaled > 0 {
		an.Service = sim.Time(st.EstUs/st.Journaled) * sim.Microsecond
		an.Deadline = sim.Time(st.DeadlineUs/st.Journaled) * sim.Microsecond
		an.Tightest = sim.Time(st.TightestUs) * sim.Microsecond
		a.latency = an.Service
	}

	// Forecast: the rate one provisioning lag ahead. Without a schedule
	// the best forecast is persistence (the observed rate).
	an.ForecastRate = an.Rate
	if a.forecast != nil {
		an.ForecastRate = a.forecast.RateAt(now + a.cfg.Lag)
	}

	// Model predictions.
	if fracSum > 0 {
		an.Utilization = an.Rate / (a.cfg.NodeRate * fracSum)
	} else if an.Rate > 0 {
		an.Utilization = 1e9 // no live capacity at all
	}
	// The model sizes for the tightest journaled deadline: under a
	// mixed-criticality mix the mean is dominated by loose best-effort
	// deadlines while the misses land on the tight cohort.
	modelD := an.Tightest
	if modelD <= 0 {
		modelD = an.Deadline
	}
	an.MetNow = a.predictMet(an.Rate, fracSum, modelD)
	an.MetAhead = a.predictMet(an.ForecastRate, fracSum, modelD)
	planRate := an.Rate
	if an.ForecastRate > planRate {
		planRate = an.ForecastRate
	}
	downFrac := fracSum
	if an.Active > 0 {
		downFrac = fracSum * float64(an.Active-1) / float64(an.Active)
	}
	an.MetDown = a.predictMet(planRate, downFrac, modelD)
	an.KneeRate = a.kneeRate(fracSum, modelD)
	an.KneeNodes = a.kneeNodes(planRate, modelD)
	return an
}

// predictMet is the M/M/k deadline-met prediction for an offered rate on a
// fleet with the given capacity-fraction sum: K servers (one per whole
// healthy-node equivalent) whose aggregate service rate is NodeRate ×
// fracSum. The waiting dynamics come from that throughput model, but the
// deadline slack is measured against the observed per-job latency (a node
// overlaps many jobs, so one job finishes much sooner than the node's
// 1/NodeRate occupancy interval); with no latency signal yet, the occupancy
// itself is the conservative stand-in. Unstable or capacity-less fleets
// predict 0; an idle stream predicts 1.
func (a *analyzer) predictMet(rate, fracSum float64, deadline sim.Time) float64 {
	if rate <= 0 {
		return 1
	}
	if fracSum <= 0 {
		return 0
	}
	k := int(fracSum + 1e-9)
	if k < 1 {
		k = 1
	}
	// Aggregate service rate NodeRate×fracSum split over k servers: each
	// server's mean occupancy is k/(NodeRate×fracSum).
	svc := sim.Time(float64(k) / (a.cfg.NodeRate * fracSum) * float64(sim.Second))
	q := queueing.MMK{Lambda: rate, ServiceTime: svc, K: k}
	if !q.Stable() {
		return 0
	}
	lat := a.latency
	if lat <= 0 {
		lat = svc
	}
	d := deadline
	if d <= 0 {
		// No deadline signal yet (no traffic journaled): assume jobs carry
		// a 10× laxity over their latency, the loose end of the paper's
		// deadline multipliers, so pre-traffic knees aren't absurdly tight.
		d = 10 * lat
	}
	slack := d - lat
	if slack < 0 {
		return 0
	}
	pLate, err := q.WaitExceeds(slack)
	if err != nil {
		return 0
	}
	return 1 - pLate
}

// kneeRate binary-searches the saturation knee: the highest arrival rate
// the current fleet sustains at the target met fraction.
func (a *analyzer) kneeRate(fracSum float64, deadline sim.Time) float64 {
	if fracSum <= 0 {
		return 0
	}
	lo, hi := 0.0, a.cfg.NodeRate*fracSum // capacity bounds the stable region
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if a.predictMet(mid, fracSum, deadline) >= a.cfg.TargetMet {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// kneeNodes is the smallest healthy-node count whose predicted met fraction
// for the rate clears the target. Returns MaxNodes+1 when even the full
// fleet is predicted short (the policy then pins at MaxNodes). A negligible
// rate — under 1% of one node's throughput — needs no capacity regardless
// of deadline feasibility, so it clamps to MinNodes instead of letting an
// unservable deadline pin an idle fleet at MaxNodes.
func (a *analyzer) kneeNodes(rate float64, deadline sim.Time) int {
	if rate < 0.01*a.cfg.NodeRate {
		return a.cfg.MinNodes
	}
	for n := a.cfg.MinNodes; n <= a.cfg.MaxNodes; n++ {
		if a.predictMet(rate, float64(n), deadline) >= a.cfg.TargetMet {
			return n
		}
	}
	return a.cfg.MaxNodes + 1
}
