package autoscale

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"laxgpu/internal/gateway"
	"laxgpu/internal/serve"
	"laxgpu/internal/sim"
	"laxgpu/internal/workload"
)

// --- analyzer unit tests -------------------------------------------------

func testAnalyzer(nodeRate float64) *analyzer {
	return &analyzer{cfg: Config{NodeRate: nodeRate}.withDefaults()}
}

func TestPredictMetEdges(t *testing.T) {
	a := testAnalyzer(1000)
	if met := a.predictMet(0, 3, sim.Millisecond); met != 1 {
		t.Errorf("idle stream met = %g, want 1", met)
	}
	if met := a.predictMet(500, 0, sim.Millisecond); met != 0 {
		t.Errorf("capacity-less fleet met = %g, want 0", met)
	}
	// Offered 1500 jobs/s on one 1000 jobs/s node: unstable.
	if met := a.predictMet(1500, 1, sim.Second); met != 0 {
		t.Errorf("unstable fleet met = %g, want 0", met)
	}
}

func TestPredictMetMonotoneInNodes(t *testing.T) {
	a := testAnalyzer(1000)
	prev := -1.0
	for n := 1; n <= 8; n++ {
		met := a.predictMet(1900, float64(n), 5*sim.Millisecond)
		if met < prev-1e-12 {
			t.Fatalf("met(%d nodes) = %g < met(%d nodes) = %g — more capacity must not hurt",
				n, met, n-1, prev)
		}
		prev = met
	}
	if prev < 0.99 {
		t.Errorf("met(8 nodes, 1900 jobs/s) = %g, want ≈ 1", prev)
	}
}

func TestKneeRateWithinCapacity(t *testing.T) {
	a := testAnalyzer(1000)
	knee := a.kneeRate(4, 5*sim.Millisecond)
	if knee <= 0 || knee >= 4000 {
		t.Fatalf("kneeRate = %g, want in (0, 4000)", knee)
	}
	// At the knee the target is met; 10%% past it, it is not.
	if met := a.predictMet(knee*0.999, 4, 5*sim.Millisecond); met < a.cfg.TargetMet-1e-6 {
		t.Errorf("met just below knee = %g < target %g", met, a.cfg.TargetMet)
	}
	if met := a.predictMet(knee*1.1, 4, 5*sim.Millisecond); met >= a.cfg.TargetMet {
		t.Errorf("met 10%% past knee = %g, want < target %g", met, a.cfg.TargetMet)
	}
}

func TestKneeNodesCoversRateSteps(t *testing.T) {
	a := testAnalyzer(1000)
	lo := a.kneeNodes(100, 5*sim.Millisecond)
	hi := a.kneeNodes(2500, 5*sim.Millisecond)
	if lo < 1 || hi <= lo {
		t.Fatalf("kneeNodes(100) = %d, kneeNodes(2500) = %d — higher rate must need more nodes", lo, hi)
	}
	if over := a.kneeNodes(1e9, 5*sim.Millisecond); over != a.cfg.MaxNodes+1 {
		t.Errorf("kneeNodes(impossible rate) = %d, want MaxNodes+1 = %d", over, a.cfg.MaxNodes+1)
	}
}

// --- policy unit tests ---------------------------------------------------

func TestStaticNeverScales(t *testing.T) {
	var p Static
	for _, a := range []Analysis{
		{Active: 1, RejectDelta: 100, MissDelta: 50, MetNow: 0},
		{Active: 8, MetDown: 1, Rate: 0},
	} {
		if d := p.Decide(a); d.Action != Hold {
			t.Fatalf("static decided %v on %+v", d.Action, a)
		}
	}
}

func TestReactiveScalesOnDamage(t *testing.T) {
	p := &Reactive{Patience: 2}
	healthy := Analysis{Active: 2, Utilization: 0.6, MetNow: 0.99, MetDown: 0.5, KneeNodes: 2}
	if d := p.Decide(healthy); d.Action != Hold {
		t.Fatalf("decided %v on a healthy tick", d.Action)
	}
	hurt := Analysis{Active: 2, Utilization: 0.6, MetNow: 0.99, MetDown: 0.5, KneeNodes: 4, RejectDelta: 3}
	d := p.Decide(hurt)
	if d.Action != ScaleUp || d.Nodes != 2 {
		t.Fatalf("decided %v (+%d) on rejects, want scale-up to the knee (+2)", d.Action, d.Nodes)
	}
	// SLO burn alone also triggers, even with zero rejects.
	p2 := &Reactive{}
	if d := p2.Decide(Analysis{Active: 1, MetNow: 0.99, MissDelta: 1, KneeNodes: 1}); d.Action != ScaleUp {
		t.Fatalf("decided %v on deadline misses, want scale-up", d.Action)
	}
}

func TestReactiveDrainNeedsPatience(t *testing.T) {
	p := &Reactive{Patience: 3}
	// Utilization sits above the idle low-water so the drain countdown is
	// driven by MetDown alone.
	calm := Analysis{Active: 3, Utilization: 0.6, MetNow: 0.99, MetDown: 0.99}
	for i := 0; i < 2; i++ {
		if d := p.Decide(calm); d.Action != Hold {
			t.Fatalf("tick %d: decided %v before patience elapsed", i, d.Action)
		}
	}
	// An interruption resets the count.
	if d := p.Decide(Analysis{Active: 3, Utilization: 0.6, MetNow: 0.99, MetDown: 0.2}); d.Action != Hold {
		t.Fatalf("decided %v on the interrupting tick, want hold", d.Action)
	}
	for i := 0; i < 2; i++ {
		if d := p.Decide(calm); d.Action != Hold {
			t.Fatalf("post-reset tick %d: decided %v", i, d.Action)
		}
	}
	if d := p.Decide(calm); d.Action != Drain {
		t.Fatalf("decided %v after full patience, want drain", d.Action)
	}
	// A pending scale-up blocks scale-in entirely.
	pend := calm
	pend.Pending = 1
	for i := 0; i < 5; i++ {
		if d := p.Decide(pend); d.Action != Hold {
			t.Fatalf("decided %v with a pending scale-up", d.Action)
		}
	}
}

func TestPredictiveProvisionsAheadOfKnee(t *testing.T) {
	p := &Predictive{Patience: 2}
	d := p.Decide(Analysis{Active: 1, Utilization: 0.6, Pending: 0, KneeNodes: 3})
	if d.Action != ScaleUp || d.Nodes != 2 {
		t.Fatalf("decided %v (+%d), want scale-up +2 to the knee", d.Action, d.Nodes)
	}
	// Pending nodes count as provisioned — no double-ordering.
	if d := p.Decide(Analysis{Active: 1, Utilization: 0.6, Pending: 2, KneeNodes: 3}); d.Action != Hold {
		t.Fatalf("decided %v with the knee already covered by pending nodes", d.Action)
	}
	// Oversized fleet drains only after patience.
	over := Analysis{Active: 3, Utilization: 0.6, KneeNodes: 1}
	if d := p.Decide(over); d.Action != Hold {
		t.Fatalf("decided %v on first oversized tick", d.Action)
	}
	if d := p.Decide(over); d.Action != Drain {
		t.Fatalf("decided %v after patience, want drain", d.Action)
	}
}

// TestIdleLowWaterDrain pins the escape hatch: when one accepted job's
// deadline is below its own latency, the deadline model predicts met = 0 at
// every fleet size and the knee pins past MaxNodes — but an idle fleet must
// still shrink on the utilization low-water.
func TestIdleLowWaterDrain(t *testing.T) {
	// Knee pinned (MaxNodes+1 style), met predictions all zero, yet the
	// fleet is nearly idle.
	idle := Analysis{Active: 3, Utilization: 0.02, MetNow: 0, MetDown: 0, KneeNodes: 9}
	re := &Reactive{Patience: 2}
	if d := re.Decide(idle); d.Action != Hold {
		t.Fatalf("reactive decided %v before patience", d.Action)
	}
	if d := re.Decide(idle); d.Action != Drain {
		t.Fatalf("reactive decided %v on an idle fleet, want drain", d.Action)
	}
	// Predictive would otherwise scale UP toward the pinned knee — the
	// idle fleet must not grow, and must drain once patience elapses.
	pr := &Predictive{Patience: 2}
	busy := idle
	busy.Utilization = 0.5
	if d := pr.Decide(busy); d.Action != ScaleUp {
		t.Fatalf("predictive decided %v under a pinned knee with real load, want scale-up", d.Action)
	}
}

// --- controller integration (ManualClock, deterministic) -----------------

// stepForecast is a rate schedule with one high window — the synthetic
// "diurnal peak" the lifecycle tests choreograph against.
type stepForecast struct {
	from, to  sim.Time
	low, high float64
}

func (f stepForecast) RateAt(t sim.Time) float64 {
	if t >= f.from && t < f.to {
		return f.high
	}
	return f.low
}

// lifecycleRun is one deterministic predictive-controller run's summary.
type lifecycleRun struct {
	ScaleUps, Drains int
	ActiveEnd        int
	Retired          []string
	Drained          []string
	NodeSeconds      float64
}

// runLifecycle choreographs: 1-node fleet, forecast steps 50→900 jobs/s in
// [20ms, 50ms), predictive policy with 10ms lag. Ticks every 1ms to 60ms.
func runLifecycle(t *testing.T) lifecycleRun {
	t.Helper()
	clock := serve.NewManualClock()
	ib, err := gateway.NewInprocBackend(gateway.InprocConfig{
		Name: "node0", Node: serve.NodeConfig{Scheduler: "LAX"}, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ib.Shutdown(time.Second) })
	gw, err := gateway.New(gateway.Options{
		Backends: []gateway.Backend{ib}, Clock: clock, Seed: 7, FailThreshold: 3,
	})
	if err != nil {
		t.Fatal(err)
	}

	var retired []string
	ctrl, err := New(Options{
		Gateway: gw,
		Policy:  &Predictive{Patience: 2},
		Config: Config{
			NodeRate: 500,
			Lag:      10 * sim.Millisecond,
			MinNodes: 1,
			MaxNodes: 4,
		},
		Forecast: stepForecast{from: 20 * sim.Millisecond, to: 50 * sim.Millisecond, low: 50, high: 900},
		Factory: func(name string) (gateway.Backend, error) {
			nb, err := gateway.NewInprocBackend(gateway.InprocConfig{
				Name: name, Node: serve.NodeConfig{Scheduler: "LAX"}, Clock: clock,
			})
			if err != nil {
				return nil, err
			}
			t.Cleanup(func() { nb.Shutdown(time.Second) })
			return nb, nil
		},
		OnRetire: func(name string, be gateway.Backend) { retired = append(retired, name) },
	})
	if err != nil {
		t.Fatal(err)
	}

	for ms := sim.Time(0); ms <= 60*sim.Millisecond; ms += sim.Millisecond {
		clock.Set(ms)
		gw.TickProbes(ms)
		ctrl.Tick(ms)

		// The provisioning lag must be visible: the step begins at 20ms and
		// the forecast sees it at 10ms, so between those instants the new
		// capacity exists only as pending nodes.
		if ms > 10*sim.Millisecond && ms < 20*sim.Millisecond {
			if n := gw.ActiveNodes(); n != 1 {
				t.Fatalf("t=%v: ActiveNodes = %d during the provisioning lag, want 1", ms, n)
			}
			if p := ctrl.LastAnalysis().Pending; p == 0 {
				t.Fatalf("t=%v: no pending nodes inside the lag window", ms)
			}
		}
	}

	if vs := gw.Check(60 * sim.Millisecond); len(vs) != 0 {
		t.Fatalf("journal violations after scale churn: %v", vs)
	}
	return lifecycleRun{
		ScaleUps:    ctrl.ScaleUps(),
		Drains:      ctrl.Drains(),
		ActiveEnd:   gw.ActiveNodes(),
		Retired:     retired,
		Drained:     gw.DrainedNodes(),
		NodeSeconds: ctrl.NodeSeconds(),
	}
}

func TestControllerLagLifecycle(t *testing.T) {
	r := runLifecycle(t)
	if r.ScaleUps == 0 {
		t.Fatal("predictive controller never scaled up for the forecast step")
	}
	if r.Drains == 0 {
		t.Fatal("controller never drained after the peak passed")
	}
	if r.ActiveEnd >= 4 {
		t.Fatalf("fleet still at %d nodes after the peak, want scaled back below 4", r.ActiveEnd)
	}
	if r.ActiveEnd < 1 {
		t.Fatalf("fleet fell below MinNodes: %d", r.ActiveEnd)
	}
	if len(r.Retired) == 0 || len(r.Retired) != len(r.Drained) {
		t.Fatalf("OnRetire fired for %v but gateway drained %v", r.Retired, r.Drained)
	}
	for _, name := range r.Retired {
		if len(name) < 5 || name[:5] != "scale" {
			t.Fatalf("drained the seed node %q — LIFO scale-in must retire grown nodes first", name)
		}
	}
	if r.NodeSeconds <= 0 {
		t.Fatal("no node-seconds accumulated")
	}
	// Cost sanity: 60ms with ≤ 4+pending nodes bounds node-seconds.
	if r.NodeSeconds > 0.060*6 {
		t.Fatalf("node-seconds = %g, impossibly high for a 60ms run", r.NodeSeconds)
	}
}

func TestControllerDeterministic(t *testing.T) {
	a, b := runLifecycle(t), runLifecycle(t)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs diverged:\n  %+v\n  %+v", a, b)
	}
}

func TestControllerReactiveWithTrafficLossless(t *testing.T) {
	clock := serve.NewManualClock()
	ib, err := gateway.NewInprocBackend(gateway.InprocConfig{
		Name: "node0", Node: serve.NodeConfig{Scheduler: "LAX"}, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ib.Shutdown(time.Second) })
	gw, err := gateway.New(gateway.Options{
		Backends: []gateway.Backend{ib}, Clock: clock, Seed: 9, FailThreshold: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(Options{
		Gateway: gw,
		Policy:  &Reactive{Patience: 2},
		Config:  Config{NodeRate: 50, Lag: 5 * sim.Millisecond, MinNodes: 1, MaxNodes: 3},
		Factory: func(name string) (gateway.Backend, error) {
			nb, err := gateway.NewInprocBackend(gateway.InprocConfig{
				Name: name, Node: serve.NodeConfig{Scheduler: "LAX"}, Clock: clock,
			})
			if err != nil {
				return nil, err
			}
			t.Cleanup(func() { nb.Shutdown(time.Second) })
			return nb, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	gw.TickProbes(0)
	ctrl.Tick(0)

	// A 10-job burst inside 1ms, half of it with hopeless 1µs deadlines:
	// the node's admission control rejects those on the spot, so by the
	// next tick the reactive policy sees RejectDelta damage (the generous
	// half is accepted and keeps the fleet busy through the drain phase).
	bench, err := workload.FindBenchmark("LSTM")
	if err != nil {
		t.Fatal(err)
	}
	rejected := 0
	deadline := sim.Second
	for i := 0; i < 10; i++ {
		d := deadline
		if i%2 == 0 {
			d = sim.Microsecond
		} else {
			deadline *= 2
		}
		if _, _, reason := gw.Submit(bench, d, gateway.Standard); reason != "" {
			rejected++
		}
	}
	if rejected == 0 {
		t.Fatal("no 1µs-deadline submission was rejected; the burst carries no damage signal")
	}
	clock.Set(sim.Millisecond)
	gw.TickProbes(sim.Millisecond)
	ctrl.Tick(sim.Millisecond)
	if ctrl.ScaleUps() == 0 {
		t.Fatalf("no scale-up under a burst; analysis: %+v", ctrl.LastAnalysis())
	}

	// Lag elapses; the fleet grows to MaxNodes.
	clock.Set(7 * sim.Millisecond)
	gw.TickProbes(7 * sim.Millisecond)
	ctrl.Tick(7 * sim.Millisecond)
	if n := gw.ActiveNodes(); n != 3 {
		t.Fatalf("ActiveNodes = %d after the lag, want 3", n)
	}

	// The burst drains; the observed EMA decays to zero and the controller
	// scales back to one node, retiring the grown ones losslessly.
	clock.Set(10 * sim.Second)
	gw.TickProbes(10 * sim.Second)
	for i := 0; i < 30; i++ {
		at := 10*sim.Second + sim.Time(i+1)*sim.Millisecond
		clock.Set(at)
		gw.TickProbes(at)
		ctrl.Tick(at)
	}
	if n := gw.Inflight(); n != 0 {
		t.Fatalf("%d jobs still in flight", n)
	}
	if n := gw.ActiveNodes(); n != 1 {
		t.Fatalf("ActiveNodes = %d after the burst passed, want 1", n)
	}
	if got := len(gw.DrainedNodes()); got != 2 {
		t.Fatalf("DrainedNodes = %v, want the 2 grown nodes", gw.DrainedNodes())
	}
	end := 10*sim.Second + 31*sim.Millisecond
	if vs := gw.Check(end); len(vs) != 0 {
		t.Fatalf("journal violations after scale churn: %v", vs)
	}
	for _, j := range gw.FleetJobs() {
		if j.Accepted && j.Terminal == "" {
			t.Fatalf("job %d lost across the scale-down", j.ID)
		}
	}
}

func TestControllerMetricsRegistered(t *testing.T) {
	clock := serve.NewManualClock()
	ib, err := gateway.NewInprocBackend(gateway.InprocConfig{
		Name: "node0", Node: serve.NodeConfig{Scheduler: "LAX"}, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ib.Shutdown(time.Second) })
	gw, err := gateway.New(gateway.Options{
		Backends: []gateway.Backend{ib}, Clock: clock, Seed: 1, FailThreshold: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Gateway: gw, Config: Config{NodeRate: 100}}); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"laxgw_autoscale_active_nodes":    false,
		"laxgw_autoscale_node_seconds":    false,
		"laxgw_autoscale_predicted_met":   false,
		"laxgw_autoscale_scale_ups_total": false,
		"laxgw_autoscale_drains_total":    false,
	}
	// Registry keys fold the policy label in, so match on the name prefix.
	for _, key := range gw.Registry().Names() {
		for name := range want {
			if strings.HasPrefix(key, name) {
				want[name] = true
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("metric %s not registered", name)
		}
	}
}

func TestNewRejectsMisconfiguration(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("New accepted a nil gateway")
	}
	clock := serve.NewManualClock()
	ib, err := gateway.NewInprocBackend(gateway.InprocConfig{
		Name: "node0", Node: serve.NodeConfig{Scheduler: "LAX"}, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ib.Shutdown(time.Second) })
	gw, err := gateway.New(gateway.Options{
		Backends: []gateway.Backend{ib}, Clock: clock, Seed: 1, FailThreshold: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Gateway: gw}); err == nil {
		t.Error("New accepted a zero NodeRate")
	}
}
