package autoscale

import (
	"errors"
	"fmt"

	"laxgpu/internal/gateway"
	"laxgpu/internal/obs"
	"laxgpu/internal/sim"
)

// Factory provisions one new serving node when a scale-up's lag elapses.
// It returns the backend the gateway should start routing to; an error
// cancels that scale-up (the controller logs it as a failed provision and
// the policy will re-request if still short).
type Factory func(name string) (gateway.Backend, error)

// Options wires a Controller to its gateway.
type Options struct {
	// Gateway is the fleet front tier being scaled (required).
	Gateway *gateway.Gateway

	// Policy decides; defaults to Static (never scales) so a miswired
	// controller is inert rather than surprising.
	Policy Policy

	// Config tunes the analyzer and the scaling bounds.
	Config Config

	// Forecast optionally publishes the workload's future offered rate
	// (wire the run's *scenario.Spec here for the predictive policy).
	Forecast Forecast

	// Factory builds nodes for scale-ups (required unless the policy can
	// never scale up).
	Factory Factory

	// OnRetire fires once per node the controller drained, when the
	// gateway retires it (all its work finished or re-dispatched) — the
	// hook to Shutdown an InprocBackend's driver. Called from Tick.
	OnRetire func(name string, be gateway.Backend)
}

// pendingNode is a scale-up inside its provisioning lag.
type pendingNode struct {
	name    string
	readyAt sim.Time
}

// Controller is the autoscaling loop: each Tick it analyzes saturation,
// asks the policy, and applies the decision under the modeled provisioning
// lag. It is not goroutine-safe — drive it from one goroutine (the harness
// loop or laxgw's ticker), which also serializes policy state.
type Controller struct {
	gw       *gateway.Gateway
	policy   Policy
	cfg      Config
	an       analyzer
	factory  Factory
	onRetire func(string, gateway.Backend)

	pending []pendingNode
	grown   int                        // names minted so far
	owned   map[string]gateway.Backend // nodes this controller added, by name
	retired map[string]bool            // owned nodes already handed to OnRetire

	lastTick    sim.Time
	haveTick    bool
	nodeSeconds float64
	scaleUps    int
	drains      int
	last        Analysis

	// metrics
	gActive, gPending, gNodeSeconds *obs.Gauge
	gMet, gUtil, gRate, gForecast   *obs.Gauge
	cUps, cDrains, cFailedProvision *obs.Counter
}

// New builds a Controller. The gateway's registry receives the
// laxgw_autoscale_* metric family.
func New(opt Options) (*Controller, error) {
	if opt.Gateway == nil {
		return nil, errors.New("autoscale: Options.Gateway is required")
	}
	cfg := opt.Config.withDefaults()
	if cfg.NodeRate <= 0 {
		return nil, errors.New("autoscale: Config.NodeRate (jobs/s per node) is required")
	}
	pol := opt.Policy
	if pol == nil {
		pol = Static{}
	}
	c := &Controller{
		gw:       opt.Gateway,
		policy:   pol,
		cfg:      cfg,
		an:       analyzer{cfg: cfg, forecast: opt.Forecast},
		factory:  opt.Factory,
		onRetire: opt.OnRetire,
		owned:    make(map[string]gateway.Backend),
		retired:  make(map[string]bool),
	}
	reg := opt.Gateway.Registry()
	labels := map[string]string{"policy": pol.Name()}
	c.gActive = reg.GaugeWith("laxgw_autoscale_active_nodes",
		"Routable fleet nodes as seen by the autoscaler.", labels)
	c.gPending = reg.GaugeWith("laxgw_autoscale_pending_nodes",
		"Scale-ups still inside the provisioning lag.", labels)
	c.gNodeSeconds = reg.GaugeWith("laxgw_autoscale_node_seconds",
		"Accumulated provisioned-node time (cost) in simulated seconds.", labels)
	c.gMet = reg.GaugeWith("laxgw_autoscale_predicted_met",
		"Predicted deadline-met fraction for the current fleet at the observed rate.", labels)
	c.gUtil = reg.GaugeWith("laxgw_autoscale_utilization",
		"Offered load over modeled fleet capacity.", labels)
	c.gRate = reg.GaugeWith("laxgw_autoscale_observed_rate",
		"EMA-smoothed observed arrival rate (jobs/s).", labels)
	c.gForecast = reg.GaugeWith("laxgw_autoscale_forecast_rate",
		"Scheduled offered rate one provisioning lag ahead (jobs/s).", labels)
	c.cUps = reg.CounterWith("laxgw_autoscale_scale_ups_total",
		"Scale-up decisions applied.", labels)
	c.cDrains = reg.CounterWith("laxgw_autoscale_drains_total",
		"Drain decisions applied.", labels)
	c.cFailedProvision = reg.CounterWith("laxgw_autoscale_failed_provisions_total",
		"Scale-ups whose node factory failed at activation.", labels)
	return c, nil
}

// Policy exposes the controller's policy (experiment labeling).
func (c *Controller) Policy() Policy { return c.policy }

// NodeSeconds is the accumulated provisioned-node time in simulated
// seconds: every tick each active, draining or pending node bills the tick
// interval. This is the cost axis of the autoscale experiment.
func (c *Controller) NodeSeconds() float64 { return c.nodeSeconds }

// ScaleUps and Drains count applied decisions.
func (c *Controller) ScaleUps() int { return c.scaleUps }

// Drains counts applied drain decisions.
func (c *Controller) Drains() int { return c.drains }

// LastAnalysis returns the most recent tick's saturation picture.
func (c *Controller) LastAnalysis() Analysis { return c.last }

// Tick runs one control iteration at the given instant: activate pending
// nodes whose lag elapsed, hand retired drains to OnRetire, analyze, decide
// and apply. Call with non-decreasing instants; a repeated instant only
// re-runs activation (no new analysis, so no duplicate policy decision).
func (c *Controller) Tick(now sim.Time) {
	c.activate(now)
	c.reapRetired()

	if c.haveTick && now <= c.lastTick {
		return
	}

	// Cost accounting: bill the interval just elapsed for every node that
	// was provisioned (or being provisioned) during it.
	provisioned := 0
	loads := c.gw.Loads()
	for _, l := range loads {
		if !l.Retired {
			provisioned++
		}
	}
	if c.haveTick {
		c.nodeSeconds += float64(provisioned+len(c.pending)) * (now - c.lastTick).Seconds()
	}
	c.lastTick, c.haveTick = now, true

	a := c.an.analyze(now, c.gw.Stats(), loads, len(c.pending))
	c.last = a
	c.gActive.Set(float64(a.Active))
	c.gPending.Set(float64(a.Pending))
	c.gNodeSeconds.Set(c.nodeSeconds)
	c.gMet.Set(a.MetNow)
	c.gUtil.Set(a.Utilization)
	c.gRate.Set(a.Rate)
	c.gForecast.Set(a.ForecastRate)

	d := c.policy.Decide(a)
	switch d.Action {
	case ScaleUp:
		c.scaleUp(now, a, d)
	case Drain:
		c.drain(now, a, d)
	}
}

// scaleUp queues new pending nodes, clamped so active+pending never exceeds
// MaxNodes. Each becomes routable at now+Lag.
func (c *Controller) scaleUp(now sim.Time, a Analysis, d Decision) {
	want := d.Nodes
	if want < 1 {
		want = 1
	}
	room := c.cfg.MaxNodes - a.Active - a.Pending
	if want > room {
		want = room
	}
	if want <= 0 {
		return
	}
	for i := 0; i < want; i++ {
		name := fmt.Sprintf("%s%d", c.cfg.NamePrefix, c.grown)
		c.grown++
		c.pending = append(c.pending, pendingNode{name: name, readyAt: now + c.cfg.Lag})
	}
	c.scaleUps++
	c.cUps.Inc()
	c.gw.RecordEvent(now, obs.EventScaleUp, "autoscale",
		fmt.Sprintf("%s: +%d node(s), ready in %v: %s", c.policy.Name(), want, c.cfg.Lag, d.Reason))
}

// drain picks the newest active node (LIFO scale-in keeps the original
// fleet stable) and starts its graceful drain, respecting MinNodes.
func (c *Controller) drain(now sim.Time, a Analysis, d Decision) {
	if a.Active+a.Pending-1 < c.cfg.MinNodes {
		return
	}
	loads := c.gw.Loads()
	victim := -1
	for _, l := range loads {
		if l.Retired || l.Draining || l.Breaker == gateway.BreakerOpen {
			continue
		}
		victim = l.Index // highest index wins: newest node drains first
	}
	if victim < 0 {
		return
	}
	inflight, err := c.gw.DrainBackend(victim)
	if err != nil {
		return
	}
	c.drains++
	c.cDrains.Inc()
	c.gw.RecordEvent(now, obs.EventScaleDrain, "autoscale",
		fmt.Sprintf("%s: drain node %d (%d inflight): %s", c.policy.Name(), victim, inflight, d.Reason))
}

// activate turns pending nodes whose provisioning lag has elapsed into live
// gateway backends, in decision order.
func (c *Controller) activate(now sim.Time) {
	keep := c.pending[:0]
	for _, p := range c.pending {
		if p.readyAt > now {
			keep = append(keep, p)
			continue
		}
		if c.factory == nil {
			c.cFailedProvision.Inc()
			c.gw.RecordEvent(now, obs.EventScaleUp, "autoscale",
				fmt.Sprintf("provision %s failed: no node factory", p.name))
			continue
		}
		be, err := c.factory(p.name)
		if err != nil {
			c.cFailedProvision.Inc()
			c.gw.RecordEvent(now, obs.EventScaleUp, "autoscale",
				fmt.Sprintf("provision %s failed: %v", p.name, err))
			continue
		}
		c.owned[be.Name()] = be
		c.gw.AddBackend(be)
	}
	c.pending = keep
}

// reapRetired hands each controller-grown node to OnRetire once the gateway
// retires it (drain complete), so the caller can stop its driver.
func (c *Controller) reapRetired() {
	if c.onRetire == nil {
		return
	}
	for _, name := range c.gw.DrainedNodes() {
		be, mine := c.owned[name]
		if !mine || c.retired[name] {
			continue
		}
		c.retired[name] = true
		c.onRetire(name, be)
	}
}
