package autoscale

import "fmt"

// Action is what a policy wants done to the fleet this tick.
type Action int

const (
	// Hold leaves the fleet as it is.
	Hold Action = iota

	// ScaleUp provisions Decision.Nodes new nodes; each becomes routable
	// one provisioning lag after the decision.
	ScaleUp

	// Drain gracefully removes one node: it stops receiving work
	// immediately and retires when its admitted jobs finish.
	Drain
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case Hold:
		return "hold"
	case ScaleUp:
		return "scale-up"
	case Drain:
		return "drain"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// Decision is one tick's verdict with the evidence that produced it; the
// controller clamps it to the configured fleet bounds before acting.
type Decision struct {
	Action Action

	// Nodes is how many nodes a ScaleUp asks for (≥ 1); ignored otherwise.
	Nodes int

	// Reason is the one-line evidence trail recorded on the trace timeline.
	Reason string
}

// Policy turns one Analysis into one Decision. Implementations must be
// deterministic functions of the Analysis stream — all their state lives in
// fields they mutate during Decide — so a replayed run reproduces the exact
// decision sequence.
type Policy interface {
	// Name labels the policy in metrics, traces and experiment tables.
	Name() string

	// Decide inspects one tick's saturation analysis.
	Decide(a Analysis) Decision
}

// idleLowWater is the drain escape hatch shared by Reactive and Predictive:
// when the one-node-smaller fleet would still sit below this utilization,
// the capacity is idle and a node drains even if the deadline model predicts
// a met fraction below target. Without it a single accepted job whose
// deadline is below its own latency — unfixable by horizontal scaling —
// would pin the predicted met at 0 and strand a grown fleet forever.
const idleLowWater = 0.10

// downUtil is the fleet utilization with one node removed; +Inf when the
// fleet cannot shrink.
func downUtil(a Analysis) float64 {
	if a.Active <= 1 {
		return 1e18
	}
	return a.Utilization * float64(a.Active) / float64(a.Active-1)
}

// Static never scales: the fixed-fleet baseline every autoscaling policy
// must beat on cost (node-seconds) without losing deadlines.
type Static struct{}

// Name implements Policy.
func (Static) Name() string { return "static" }

// Decide implements Policy.
func (Static) Decide(Analysis) Decision { return Decision{Action: Hold} }

// Reactive scales on observed damage only: admission rejects and SLO burn
// (deadline misses) since the previous tick — the fleet equivalent of
// alert-driven autoscaling. It never consults the model's predicted met
// fraction and cannot see the schedule, so every scale-up starts one
// provisioning lag AFTER the overload began; the deadline misses
// accumulated inside that window are the policy's structural cost. Drains
// wait for Patience consecutive ticks in which the model says one fewer
// node still clears the target.
type Reactive struct {
	// Target is the met-fraction floor a one-node-smaller fleet must clear
	// before a drain (zero means 0.95).
	Target float64

	// Patience overrides Config.DrainPatience when > 0.
	Patience int

	calm int // consecutive ticks the smaller fleet looked sufficient
}

// Name implements Policy.
func (*Reactive) Name() string { return "reactive" }

// Decide implements Policy.
func (p *Reactive) Decide(a Analysis) Decision {
	target := p.Target
	if target <= 0 || target >= 1 {
		target = 0.95
	}
	patience := p.Patience
	if patience <= 0 {
		patience = 3
	}

	hurting := a.RejectDelta > 0 || a.MissDelta > 0
	if hurting && a.Active > 0 {
		p.calm = 0
		// Damage control: ask for enough nodes to clear the knee for the
		// observed rate, at least one.
		want := a.KneeNodes - a.Active - a.Pending
		if want < 1 {
			want = 1
		}
		return Decision{Action: ScaleUp, Nodes: want,
			Reason: fmt.Sprintf("rejects=%d misses=%d at %.0f jobs/s",
				a.RejectDelta, a.MissDelta, a.Rate)}
	}

	// Scale-in: only when the model says a one-node-smaller fleet still
	// clears the target (or would sit idle), sustained for Patience ticks,
	// with no pending scale-up in flight (a pending node means we recently
	// thought we were short — shrinking now would flap).
	if a.Pending == 0 && a.Active > 1 && (a.MetDown >= target || downUtil(a) <= idleLowWater) {
		p.calm++
		if p.calm >= patience {
			p.calm = 0
			return Decision{Action: Drain,
				Reason: fmt.Sprintf("met(n-1)=%.3f≥%.2f for %d ticks at %.0f jobs/s",
					a.MetDown, target, patience, a.Rate)}
		}
	} else {
		p.calm = 0
	}
	return Decision{Action: Hold}
}

// Predictive sizes the fleet for the schedule one provisioning lag ahead:
// KneeNodes is computed against max(observed, forecast) rate, so a step-up
// in the scenario triggers provisioning exactly Lag early and the new node
// turns routable as the step arrives. Drains need the same patience as
// Reactive, but because the forecast is folded into MetDown, a fleet never
// shrinks into an upcoming step.
type Predictive struct {
	// Patience overrides Config.DrainPatience when > 0.
	Patience int

	calm int
}

// Name implements Policy.
func (*Predictive) Name() string { return "predictive" }

// Decide implements Policy.
func (p *Predictive) Decide(a Analysis) Decision {
	patience := p.Patience
	if patience <= 0 {
		patience = 3
	}

	have := a.Active + a.Pending
	if a.KneeNodes > have {
		p.calm = 0
		return Decision{Action: ScaleUp, Nodes: a.KneeNodes - have,
			Reason: fmt.Sprintf("knee=%d nodes for %.0f jobs/s ahead, have %d+%d pending",
				a.KneeNodes, maxf(a.Rate, a.ForecastRate), a.Active, a.Pending)}
	}

	// The knee already folds the forecast in, so a fleet above the knee is
	// provably oversized for both now and one lag ahead; patience guards
	// against EMA wobble around a step edge. The idle low-water escape
	// covers the knee pinning past MaxNodes on an unservable deadline.
	if a.Pending == 0 && a.Active > 1 &&
		(a.Active > a.KneeNodes || downUtil(a) <= idleLowWater) {
		p.calm++
		if p.calm >= patience {
			p.calm = 0
			return Decision{Action: Drain,
				Reason: fmt.Sprintf("knee=%d nodes < active=%d for %d ticks",
					a.KneeNodes, a.Active, patience)}
		}
	} else {
		p.calm = 0
	}
	return Decision{Action: Hold}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
