// Package cluster scales the single-GPU system of the paper out to a
// multi-accelerator server: a front-end router assigns each arriving job to
// one GPU, then every GPU runs the paper's machinery (command processor,
// scheduler, admission) independently. This is the datacenter setting the
// paper's introduction motivates — the pull-based overload handling of its
// SRE citation — extended from one device to a fleet.
//
// Routing happens at arrival with front-end knowledge only (static job
// size estimates and the router's own bookkeeping of what it already sent
// where), exactly what a real load balancer has; the per-GPU schedulers
// then see ordinary single-device traffic.
package cluster

import (
	"fmt"
	"sort"

	"laxgpu/internal/cp"
	"laxgpu/internal/faults"
	"laxgpu/internal/gpu"
	"laxgpu/internal/metrics"
	"laxgpu/internal/sched"
	"laxgpu/internal/sim"
	"laxgpu/internal/workload"
)

// RoutingPolicy selects how the front end spreads jobs over GPUs.
type RoutingPolicy int

const (
	// RouteRoundRobin cycles GPUs per arrival.
	RouteRoundRobin RoutingPolicy = iota
	// RouteLeastLoaded sends each job to the GPU with the least estimated
	// outstanding work (static isolated-time estimates, decayed by
	// arrival-time progress — what a front end can actually know).
	RouteLeastLoaded
	// RouteJobHash pins jobs to GPUs by job ID (session affinity).
	RouteJobHash
	// RouteHeadroom routes on live laxity headroom the nodes themselves
	// report (Router.SetHeadroom): each pick scores a node by its last
	// reported queue-drain estimate plus the work routed there since that
	// report, weighted by health — the gateway tier's policy, where nodes
	// answer probes with their own Algorithm 1 drain estimates instead of
	// the front end guessing from static job sizes.
	RouteHeadroom
)

func (p RoutingPolicy) String() string {
	switch p {
	case RouteRoundRobin:
		return "round-robin"
	case RouteLeastLoaded:
		return "least-loaded"
	case RouteJobHash:
		return "job-hash"
	case RouteHeadroom:
		return "headroom"
	default:
		return fmt.Sprintf("RoutingPolicy(%d)", int(p))
	}
}

// Config describes the cluster.
type Config struct {
	// GPUs is the accelerator count (≥ 1).
	GPUs int

	// System configures each GPU (the paper's Table 2 by default).
	System cp.SystemConfig

	// Routing selects the front-end policy.
	Routing RoutingPolicy

	// Scheduler names the per-GPU queue scheduler.
	Scheduler string

	// Faults optionally degrades individual GPUs: entry g is a
	// faults.ParseSpec string applied to GPU g (empty entries and GPUs
	// beyond the slice stay healthy). Scheduled CU retirements feed the
	// router's health signal, so least-loaded routing steers work away from
	// degraded devices at the arrival times the capacity is actually lost.
	Faults []string

	// Seed derives each GPU's fault plan (GPU g draws from Seed+g), keeping
	// fleet runs reproducible.
	Seed int64
}

// faultSpecs parses the per-GPU fault strings, padding to the fleet size.
func (c Config) faultSpecs() ([]faults.Spec, error) {
	specs := make([]faults.Spec, c.GPUs)
	for g := range specs {
		if g >= len(c.Faults) {
			specs[g] = faults.Spec{Recover: true}
			continue
		}
		sp, err := faults.ParseSpec(c.Faults[g])
		if err != nil {
			return nil, fmt.Errorf("cluster: gpu%d: %w", g, err)
		}
		specs[g] = sp
	}
	return specs, nil
}

// Result aggregates the fleet outcome.
type Result struct {
	// PerGPU holds each device's summary.
	PerGPU []metrics.Summary

	// MetDeadline, Rejected, Cancelled and TotalJobs aggregate the fleet.
	MetDeadline int
	Rejected    int
	Cancelled   int
	TotalJobs   int

	// Imbalance is max/min jobs routed per GPU (1.0 = perfectly even).
	Imbalance float64
}

// DeadlineFrac is the fleet-wide deadline-met fraction.
func (r Result) DeadlineFrac() float64 {
	if r.TotalJobs == 0 {
		return 0
	}
	return float64(r.MetDeadline) / float64(r.TotalJobs)
}

// Run routes the job set across the fleet and simulates every GPU.
func Run(cfg Config, set *workload.JobSet) (Result, error) {
	if cfg.GPUs < 1 {
		return Result{}, fmt.Errorf("cluster: GPUs = %d, must be >= 1", cfg.GPUs)
	}
	if _, err := sched.New(cfg.Scheduler); err != nil {
		return Result{}, err
	}
	specs, err := cfg.faultSpecs()
	if err != nil {
		return Result{}, err
	}
	subsets, err := route(cfg, specs, set)
	if err != nil {
		return Result{}, err
	}

	res := Result{TotalJobs: set.Len()}
	minJobs, maxJobs := set.Len()+1, 0
	for g, sub := range subsets {
		if sub.Len() < minJobs {
			minJobs = sub.Len()
		}
		if sub.Len() > maxJobs {
			maxJobs = sub.Len()
		}
		pol, err := sched.New(cfg.Scheduler)
		if err != nil {
			return Result{}, err
		}
		sysCfg := cfg.System
		if !specs[g].Zero() && specs[g].Recover {
			sysCfg.Recovery = cp.DefaultRecoveryConfig()
		}
		sys := cp.NewSystem(sysCfg, sub, pol)
		if !specs[g].Zero() {
			plan := faults.NewPlan(specs[g], cfg.Seed+int64(g))
			sys.InstallFaults(plan, plan.Retirements())
		}
		sys.Run()
		sum := metrics.Summarize(sys, cfg.Scheduler, set.Benchmark, fmt.Sprintf("gpu%d", g))
		res.PerGPU = append(res.PerGPU, sum)
		res.MetDeadline += sum.MetDeadline
		res.Rejected += sum.Rejected
		res.Cancelled += sum.Cancelled
	}
	if minJobs > 0 {
		res.Imbalance = float64(maxJobs) / float64(minJobs)
	}
	return res, nil
}

// route splits the trace into per-GPU job sets with dense per-GPU IDs,
// preserving arrival times. Scheduled CU retirements from the fault specs
// are replayed into the router's health signal as arrivals pass them.
func route(cfg Config, specs []faults.Spec, set *workload.JobSet) ([]*workload.JobSet, error) {
	subsets := make([]*workload.JobSet, cfg.GPUs)
	for g := range subsets {
		subsets[g] = &workload.JobSet{
			Benchmark: set.Benchmark,
			Seed:      set.Seed,
		}
	}

	router := NewRouter(cfg.Routing, cfg.GPUs)
	health := NewHealthSchedule(cfg.System.GPU.NumCUs, specs)

	// Jobs are already arrival-sorted in generated sets; keep that order.
	jobs := append([]*workload.Job(nil), set.Jobs...)
	sort.SliceStable(jobs, func(a, b int) bool { return jobs[a].Arrival < jobs[b].Arrival })
	for _, j := range jobs {
		health.Apply(router, j.Arrival)
		g := router.Pick(j.Arrival, j.SerialTime(cfg.System.GPU), j.ID)
		clone := *j
		clone.ID = subsets[g].Len()
		subsets[g].Jobs = append(subsets[g].Jobs, &clone)
	}
	return subsets, nil
}

// healthEvent is one scheduled capacity loss the front end knows about.
type healthEvent struct {
	at   sim.Time
	gpu  int
	frac float64 // surviving capacity fraction after the loss
}

// HealthSchedule replays fault-plan CU retirements into Router.SetHealth as
// simulated time passes — the front-end analogue of a health checker that
// learns about degraded devices with no latency. Retirement times are known
// upfront (the plans are deterministic), so the schedule is a sorted list
// consumed by arrival time. Shared by the offline trace splitter and the
// online serving frontend.
type HealthSchedule struct {
	events []healthEvent
	next   int
}

// NewHealthSchedule builds the schedule for a fleet of numCUs-CU devices,
// one fault spec per device.
func NewHealthSchedule(numCUs int, specs []faults.Spec) *HealthSchedule {
	h := &HealthSchedule{}
	for g, sp := range specs {
		retired := 0
		for _, r := range sp.Retirements {
			retired += r.CUs
			frac := 0.0
			if numCUs > 0 && retired < numCUs {
				frac = float64(numCUs-retired) / float64(numCUs)
			}
			h.events = append(h.events, healthEvent{at: r.At, gpu: g, frac: frac})
		}
	}
	sort.SliceStable(h.events, func(a, b int) bool { return h.events[a].at < h.events[b].at })
	return h
}

// Apply pushes every event at or before now into the router.
func (h *HealthSchedule) Apply(r *Router, now sim.Time) {
	for h.next < len(h.events) && h.events[h.next].at <= now {
		e := h.events[h.next]
		r.SetHealth(e.gpu, e.frac)
		h.next++
	}
}

// Capacity estimates the per-GPU device-time capacity consumed by the set,
// a quick feasibility check for sizing fleets.
func Capacity(cfg gpu.Config, set *workload.JobSet) sim.Time {
	var total sim.Time
	for _, j := range set.Jobs {
		total += j.SerialTime(cfg)
	}
	return total
}
