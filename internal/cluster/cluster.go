// Package cluster scales the single-GPU system of the paper out to a
// multi-accelerator server: a front-end router assigns each arriving job to
// one GPU, then every GPU runs the paper's machinery (command processor,
// scheduler, admission) independently. This is the datacenter setting the
// paper's introduction motivates — the pull-based overload handling of its
// SRE citation — extended from one device to a fleet.
//
// Routing happens at arrival with front-end knowledge only (static job
// size estimates and the router's own bookkeeping of what it already sent
// where), exactly what a real load balancer has; the per-GPU schedulers
// then see ordinary single-device traffic.
package cluster

import (
	"fmt"
	"sort"

	"laxgpu/internal/cp"
	"laxgpu/internal/gpu"
	"laxgpu/internal/metrics"
	"laxgpu/internal/sched"
	"laxgpu/internal/sim"
	"laxgpu/internal/workload"
)

// RoutingPolicy selects how the front end spreads jobs over GPUs.
type RoutingPolicy int

const (
	// RouteRoundRobin cycles GPUs per arrival.
	RouteRoundRobin RoutingPolicy = iota
	// RouteLeastLoaded sends each job to the GPU with the least estimated
	// outstanding work (static isolated-time estimates, decayed by
	// arrival-time progress — what a front end can actually know).
	RouteLeastLoaded
	// RouteJobHash pins jobs to GPUs by job ID (session affinity).
	RouteJobHash
)

func (p RoutingPolicy) String() string {
	switch p {
	case RouteRoundRobin:
		return "round-robin"
	case RouteLeastLoaded:
		return "least-loaded"
	case RouteJobHash:
		return "job-hash"
	default:
		return fmt.Sprintf("RoutingPolicy(%d)", int(p))
	}
}

// Config describes the cluster.
type Config struct {
	// GPUs is the accelerator count (≥ 1).
	GPUs int

	// System configures each GPU (the paper's Table 2 by default).
	System cp.SystemConfig

	// Routing selects the front-end policy.
	Routing RoutingPolicy

	// Scheduler names the per-GPU queue scheduler.
	Scheduler string
}

// Result aggregates the fleet outcome.
type Result struct {
	// PerGPU holds each device's summary.
	PerGPU []metrics.Summary

	// MetDeadline, Rejected, Cancelled and TotalJobs aggregate the fleet.
	MetDeadline int
	Rejected    int
	Cancelled   int
	TotalJobs   int

	// Imbalance is max/min jobs routed per GPU (1.0 = perfectly even).
	Imbalance float64
}

// DeadlineFrac is the fleet-wide deadline-met fraction.
func (r Result) DeadlineFrac() float64 {
	if r.TotalJobs == 0 {
		return 0
	}
	return float64(r.MetDeadline) / float64(r.TotalJobs)
}

// Run routes the job set across the fleet and simulates every GPU.
func Run(cfg Config, set *workload.JobSet) (Result, error) {
	if cfg.GPUs < 1 {
		return Result{}, fmt.Errorf("cluster: GPUs = %d, must be >= 1", cfg.GPUs)
	}
	if _, err := sched.New(cfg.Scheduler); err != nil {
		return Result{}, err
	}
	subsets, err := route(cfg, set)
	if err != nil {
		return Result{}, err
	}

	res := Result{TotalJobs: set.Len()}
	minJobs, maxJobs := set.Len()+1, 0
	for g, sub := range subsets {
		if sub.Len() < minJobs {
			minJobs = sub.Len()
		}
		if sub.Len() > maxJobs {
			maxJobs = sub.Len()
		}
		pol, err := sched.New(cfg.Scheduler)
		if err != nil {
			return Result{}, err
		}
		sys := cp.NewSystem(cfg.System, sub, pol)
		sys.Run()
		sum := metrics.Summarize(sys, cfg.Scheduler, set.Benchmark, fmt.Sprintf("gpu%d", g))
		res.PerGPU = append(res.PerGPU, sum)
		res.MetDeadline += sum.MetDeadline
		res.Rejected += sum.Rejected
		res.Cancelled += sum.Cancelled
	}
	if minJobs > 0 {
		res.Imbalance = float64(maxJobs) / float64(minJobs)
	}
	return res, nil
}

// route splits the trace into per-GPU job sets with dense per-GPU IDs,
// preserving arrival times.
func route(cfg Config, set *workload.JobSet) ([]*workload.JobSet, error) {
	subsets := make([]*workload.JobSet, cfg.GPUs)
	for g := range subsets {
		subsets[g] = &workload.JobSet{
			Benchmark: set.Benchmark,
			Seed:      set.Seed,
		}
	}

	// Front-end load estimates for least-loaded routing: outstanding
	// estimated work per GPU, decayed by wall-clock progress between
	// arrivals (work drains at ~1 device-second per second).
	outstanding := make([]sim.Time, cfg.GPUs)
	var lastArrival sim.Time

	pick := func(i int, j *workload.Job) int {
		switch cfg.Routing {
		case RouteLeastLoaded:
			elapsed := j.Arrival - lastArrival
			for g := range outstanding {
				outstanding[g] -= elapsed
				if outstanding[g] < 0 {
					outstanding[g] = 0
				}
			}
			lastArrival = j.Arrival
			best := 0
			for g := 1; g < cfg.GPUs; g++ {
				if outstanding[g] < outstanding[best] {
					best = g
				}
			}
			outstanding[best] += j.SerialTime(cfg.System.GPU)
			return best
		case RouteJobHash:
			return j.ID % cfg.GPUs
		default:
			return i % cfg.GPUs
		}
	}

	// Jobs are already arrival-sorted in generated sets; keep that order.
	jobs := append([]*workload.Job(nil), set.Jobs...)
	sort.SliceStable(jobs, func(a, b int) bool { return jobs[a].Arrival < jobs[b].Arrival })
	for i, j := range jobs {
		g := pick(i, j)
		clone := *j
		clone.ID = subsets[g].Len()
		subsets[g].Jobs = append(subsets[g].Jobs, &clone)
	}
	return subsets, nil
}

// Capacity estimates the per-GPU device-time capacity consumed by the set,
// a quick feasibility check for sizing fleets.
func Capacity(cfg gpu.Config, set *workload.JobSet) sim.Time {
	var total sim.Time
	for _, j := range set.Jobs {
		total += j.SerialTime(cfg)
	}
	return total
}
