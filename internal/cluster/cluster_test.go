package cluster

import (
	"testing"

	"laxgpu/internal/cp"
	"laxgpu/internal/gpu"
	"laxgpu/internal/sched"
	"laxgpu/internal/workload"
)

func testSet(t *testing.T, n int) *workload.JobSet {
	t.Helper()
	lib := workload.NewLibrary(gpu.DefaultConfig())
	bench, err := workload.FindBenchmark("LSTM")
	if err != nil {
		t.Fatal(err)
	}
	return bench.Generate(lib, workload.HighRate, n, 3)
}

func baseConfig(gpus int, routing RoutingPolicy) Config {
	return Config{
		GPUs:      gpus,
		System:    cp.DefaultSystemConfig(),
		Routing:   routing,
		Scheduler: "LAX",
	}
}

func TestClusterValidation(t *testing.T) {
	set := testSet(t, 8)
	if _, err := Run(Config{GPUs: 0, System: cp.DefaultSystemConfig(), Scheduler: "LAX"}, set); err == nil {
		t.Fatal("zero GPUs accepted")
	}
	if _, err := Run(Config{GPUs: 1, System: cp.DefaultSystemConfig(), Scheduler: "NOPE"}, set); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestClusterSingleGPUMatchesSystem(t *testing.T) {
	// A 1-GPU cluster must reproduce the plain single-system result.
	set := testSet(t, 48)
	res, err := Run(baseConfig(1, RouteRoundRobin), set)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := sched.New("LAX")
	if err != nil {
		t.Fatal(err)
	}
	sys := cp.NewSystem(cp.DefaultSystemConfig(), set, pol)
	sys.Run()
	met := 0
	for _, j := range sys.Jobs() {
		if j.MetDeadline() {
			met++
		}
	}
	if res.MetDeadline != met {
		t.Fatalf("1-GPU cluster met %d, plain system met %d", res.MetDeadline, met)
	}
	if len(res.PerGPU) != 1 || res.TotalJobs != 48 {
		t.Fatalf("result shape wrong: %+v", res)
	}
}

func TestClusterConservesJobs(t *testing.T) {
	set := testSet(t, 64)
	for _, routing := range []RoutingPolicy{RouteRoundRobin, RouteLeastLoaded, RouteJobHash} {
		res, err := Run(baseConfig(4, routing), set)
		if err != nil {
			t.Fatal(err)
		}
		perGPUTotal := 0
		for _, s := range res.PerGPU {
			perGPUTotal += s.TotalJobs
		}
		if perGPUTotal != set.Len() {
			t.Fatalf("%v: routed %d jobs of %d", routing, perGPUTotal, set.Len())
		}
		if res.MetDeadline > res.TotalJobs {
			t.Fatalf("%v: met more than offered", routing)
		}
		if res.DeadlineFrac() < 0 || res.DeadlineFrac() > 1 {
			t.Fatalf("%v: frac %v", routing, res.DeadlineFrac())
		}
	}
}

func TestClusterScalingHelps(t *testing.T) {
	// The same overloaded trace on 1 vs 4 GPUs: more machines must meet
	// (weakly) more deadlines.
	set := testSet(t, 96)
	one, err := Run(baseConfig(1, RouteLeastLoaded), set)
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(baseConfig(4, RouteLeastLoaded), set)
	if err != nil {
		t.Fatal(err)
	}
	if four.MetDeadline <= one.MetDeadline {
		t.Fatalf("4 GPUs met %d <= 1 GPU met %d", four.MetDeadline, one.MetDeadline)
	}
}

func TestRoundRobinRoutingIsBalanced(t *testing.T) {
	set := testSet(t, 64)
	res, err := Run(baseConfig(4, RouteRoundRobin), set)
	if err != nil {
		t.Fatal(err)
	}
	if res.Imbalance != 1.0 {
		t.Fatalf("round-robin imbalance %v, want 1.0", res.Imbalance)
	}
}

func TestLeastLoadedBeatsHashOnSkewedSizes(t *testing.T) {
	// LSTM jobs vary in sequence length, so hash routing lands unlucky
	// long-job clusters; least-loaded smooths estimated work. At minimum,
	// least-loaded must not do worse.
	set := testSet(t, 96)
	hash, err := Run(baseConfig(2, RouteJobHash), set)
	if err != nil {
		t.Fatal(err)
	}
	least, err := Run(baseConfig(2, RouteLeastLoaded), set)
	if err != nil {
		t.Fatal(err)
	}
	if least.MetDeadline < hash.MetDeadline {
		t.Fatalf("least-loaded met %d < hash %d", least.MetDeadline, hash.MetDeadline)
	}
}

func TestRoutingPolicyString(t *testing.T) {
	if RouteRoundRobin.String() != "round-robin" ||
		RouteLeastLoaded.String() != "least-loaded" ||
		RouteJobHash.String() != "job-hash" ||
		RoutingPolicy(9).String() != "RoutingPolicy(9)" {
		t.Fatal("routing names wrong")
	}
}

func TestCapacityEstimate(t *testing.T) {
	set := testSet(t, 16)
	if Capacity(gpu.DefaultConfig(), set) <= 0 {
		t.Fatal("capacity estimate not positive")
	}
}
