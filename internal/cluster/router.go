package cluster

import (
	"fmt"

	"laxgpu/internal/sim"
)

// ParseRoutingPolicy converts the canonical policy names ("round-robin",
// "least-loaded", "job-hash") to a RoutingPolicy.
func ParseRoutingPolicy(s string) (RoutingPolicy, error) {
	switch s {
	case "round-robin", "rr":
		return RouteRoundRobin, nil
	case "least-loaded", "ll":
		return RouteLeastLoaded, nil
	case "job-hash", "hash":
		return RouteJobHash, nil
	case "headroom", "hr":
		return RouteHeadroom, nil
	}
	return 0, fmt.Errorf("cluster: unknown routing policy %q (want round-robin|least-loaded|job-hash|headroom)", s)
}

// Router makes front-end placement decisions one arrival at a time with
// front-end knowledge only: static job-size estimates, its own bookkeeping
// of what it already sent where, and coarse per-device health (the fraction
// of compute capacity still alive after CU retirements). It is the routing
// core shared by the offline trace splitter (route) and the online serving
// frontend, which cannot see the whole trace and must decide per arrival.
//
// Router is not safe for concurrent use; callers serialize Pick/SetHealth.
type Router struct {
	policy RoutingPolicy

	// outstanding estimates the device-time each GPU still owes for jobs
	// already routed to it, decayed between arrivals: a healthy device
	// drains one device-second per second, a degraded one proportionally
	// less.
	outstanding []sim.Time
	capacity    []float64
	lastArrival sim.Time
	rr          int

	// reported is each device's last self-reported queue-drain estimate
	// (RouteHeadroom only); sinceReport is the estimated device-time routed
	// there after that report, so headroom stays honest between probes.
	reported    []sim.Time
	sinceReport []sim.Time
}

// NewRouter returns a router over gpus devices, all initially healthy.
func NewRouter(policy RoutingPolicy, gpus int) *Router {
	if gpus < 1 {
		panic(fmt.Sprintf("cluster: NewRouter with %d GPUs", gpus))
	}
	r := &Router{
		policy:      policy,
		outstanding: make([]sim.Time, gpus),
		capacity:    make([]float64, gpus),
		reported:    make([]sim.Time, gpus),
		sinceReport: make([]sim.Time, gpus),
	}
	for g := range r.capacity {
		r.capacity[g] = 1
	}
	return r
}

// GPUs returns the device count.
func (r *Router) GPUs() int { return len(r.outstanding) }

// Add grows the fleet by one device (initially healthy and idle) and returns
// its index. The gateway calls it when the autoscaler admits a new node
// mid-run; existing devices' bookkeeping is untouched, so routing history
// stays valid across the growth.
func (r *Router) Add() int {
	g := len(r.outstanding)
	r.outstanding = append(r.outstanding, 0)
	r.capacity = append(r.capacity, 1)
	r.reported = append(r.reported, 0)
	r.sinceReport = append(r.sinceReport, 0)
	return g
}

// SetHealth records device g's surviving capacity fraction in [0,1] (1 =
// fully healthy, 0 = dead). Least-loaded and headroom routing drain and
// weigh the device by it — a fraction of 0 excludes the device from picks
// entirely until health recovers; round-robin and job-hash ignore health by
// design — they are stateless spreading/affinity policies a front end uses
// precisely when it has no load signal.
func (r *Router) SetHealth(g int, frac float64) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	r.capacity[g] = frac
}

// SetHeadroom records device g's live self-reported queue-drain estimate —
// how long the node says it needs to finish everything it has admitted. The
// headroom policy scores on it; the bookkeeping of work routed since the
// report resets here, because the next report already includes that work.
func (r *Router) SetHeadroom(g int, drain sim.Time) {
	if drain < 0 {
		drain = 0
	}
	r.reported[g] = drain
	r.sinceReport[g] = 0
}

// Pick chooses the device for a job arriving at arrival with estimated
// serial device-time est. jobID feeds the job-hash policy. Arrivals must be
// presented in non-decreasing time order.
func (r *Router) Pick(arrival, est sim.Time, jobID int) int {
	switch r.policy {
	case RouteHeadroom:
		best := -1
		var bestLoad float64
		for g := range r.reported {
			if r.capacity[g] <= 0 {
				continue
			}
			// Drain time after placement, from the node's own estimate plus
			// what we routed there since it reported. Ties break toward the
			// lowest index, deterministically.
			load := float64(r.reported[g]+r.sinceReport[g]+est) / r.capacity[g]
			if best < 0 || load < bestLoad {
				best, bestLoad = g, load
			}
		}
		if best < 0 {
			// Every device is dead; round-robin rather than blackhole one.
			best = r.rr % len(r.reported)
			r.rr++
		}
		r.sinceReport[best] += est
		return best
	case RouteLeastLoaded:
		elapsed := arrival - r.lastArrival
		if elapsed < 0 {
			elapsed = 0
		}
		for g := range r.outstanding {
			r.outstanding[g] -= sim.Time(float64(elapsed) * r.capacity[g])
			if r.outstanding[g] < 0 {
				r.outstanding[g] = 0
			}
		}
		r.lastArrival = arrival
		best := -1
		var bestLoad float64
		for g := range r.outstanding {
			if r.capacity[g] <= 0 {
				continue
			}
			// Score the drain time *after* placement: a degraded device
			// then loses ties against a healthy one even when both idle.
			load := float64(r.outstanding[g]+est) / r.capacity[g]
			if best < 0 || load < bestLoad {
				best, bestLoad = g, load
			}
		}
		if best < 0 {
			// Every device is dead; round-robin rather than blackhole one.
			best = r.rr % len(r.outstanding)
			r.rr++
		}
		r.outstanding[best] += est
		return best
	case RouteJobHash:
		return jobID % len(r.outstanding)
	default:
		g := r.rr % len(r.outstanding)
		r.rr++
		return g
	}
}
