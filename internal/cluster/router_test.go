package cluster

import (
	"testing"

	"laxgpu/internal/faults"
	"laxgpu/internal/sim"
)

func TestParseRoutingPolicy(t *testing.T) {
	cases := map[string]RoutingPolicy{
		"round-robin": RouteRoundRobin, "rr": RouteRoundRobin,
		"least-loaded": RouteLeastLoaded, "ll": RouteLeastLoaded,
		"job-hash": RouteJobHash, "hash": RouteJobHash,
		"headroom": RouteHeadroom, "hr": RouteHeadroom,
	}
	for in, want := range cases {
		got, err := ParseRoutingPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseRoutingPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseRoutingPolicy("nope"); err == nil {
		t.Error("unknown routing name accepted")
	}
}

func TestRouterRoundRobinCycles(t *testing.T) {
	r := NewRouter(RouteRoundRobin, 3)
	for i := 0; i < 9; i++ {
		if g := r.Pick(0, sim.Microsecond, i); g != i%3 {
			t.Fatalf("pick %d routed to %d, want %d", i, g, i%3)
		}
	}
}

func TestRouterJobHashPins(t *testing.T) {
	r := NewRouter(RouteJobHash, 4)
	for id := 0; id < 16; id++ {
		if g := r.Pick(0, sim.Microsecond, id); g != id%4 {
			t.Fatalf("job %d routed to %d, want %d", id, g, id%4)
		}
	}
}

func TestRouterLeastLoadedTracksOutstandingWork(t *testing.T) {
	r := NewRouter(RouteLeastLoaded, 2)
	// First job lands somewhere; the second, arriving at the same instant,
	// must go to the other device because the first one's estimate is still
	// outstanding.
	a := r.Pick(0, 10*sim.Millisecond, 0)
	b := r.Pick(0, 10*sim.Millisecond, 1)
	if a == b {
		t.Fatalf("both simultaneous jobs routed to device %d", a)
	}
	// After far more than the outstanding estimate has elapsed, the decayed
	// load is zero everywhere and placement follows the tie-break again.
	c := r.Pick(sim.Second, sim.Microsecond, 2)
	d := r.Pick(sim.Second, 0, 3)
	if c == d {
		t.Fatalf("post-decay jobs both routed to device %d (load should have drained)", c)
	}
}

func TestRouterLeastLoadedAvoidsDegradedGPU(t *testing.T) {
	r := NewRouter(RouteLeastLoaded, 2)
	// Equal standing load on both devices, but device 0 lost half its CUs:
	// its normalized drain time doubles, so new work must go to device 1.
	r.SetHealth(0, 0.5)
	first := r.Pick(0, sim.Millisecond, 0)
	if first != 1 {
		t.Fatalf("degraded device 0 still preferred (got %d)", first)
	}
	// Keep offering simultaneous equal jobs: the healthy device absorbs
	// proportionally more of them.
	counts := [2]int{0: 0, 1: 1} // first pick recorded above
	for id := 1; id < 30; id++ {
		counts[r.Pick(0, sim.Millisecond, id)]++
	}
	if counts[1] <= counts[0] {
		t.Fatalf("healthy device got %d jobs, degraded got %d", counts[1], counts[0])
	}
}

func TestRouterSkipsDeadGPU(t *testing.T) {
	r := NewRouter(RouteLeastLoaded, 3)
	r.SetHealth(1, 0)
	for id := 0; id < 12; id++ {
		if g := r.Pick(0, sim.Microsecond, id); g == 1 {
			t.Fatalf("job %d routed to a dead device", id)
		}
	}
	// Everything dead: fall back to round-robin rather than refusing.
	r.SetHealth(0, 0)
	r.SetHealth(2, 0)
	seen := map[int]bool{}
	for id := 0; id < 6; id++ {
		seen[r.Pick(0, sim.Microsecond, id)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("all-dead fallback used only devices %v", seen)
	}
}

func TestNewRouterPanicsOnEmptyFleet(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRouter(_, 0) did not panic")
		}
	}()
	NewRouter(RouteRoundRobin, 0)
}

// TestHealthScheduleShiftsRouting pins the satellite requirement: a fault
// plan's scheduled CU retirements must change least-loaded routing decisions
// once arrivals pass the retirement time.
func TestHealthScheduleShiftsRouting(t *testing.T) {
	spec, err := faults.ParseSpec("retire=8@1ms")
	if err != nil {
		t.Fatal(err)
	}
	specs := []faults.Spec{spec, {Recover: true}}
	h := NewHealthSchedule(8, specs)

	r := NewRouter(RouteLeastLoaded, 2)
	// Before the retirement both devices are candidates.
	h.Apply(r, 0)
	before := map[int]bool{}
	for id := 0; id < 4; id++ {
		before[r.Pick(0, sim.Microsecond, id)] = true
	}
	if !before[0] || !before[1] {
		t.Fatalf("pre-fault routing used only %v", before)
	}
	// After all 8 CUs retire, device 0 is dead and every pick lands on 1.
	h.Apply(r, 2*sim.Millisecond)
	for id := 4; id < 12; id++ {
		if g := r.Pick(2*sim.Millisecond, sim.Microsecond, id); g != 0 {
			continue
		}
		t.Fatalf("job %d routed to the fully retired device", id)
	}
}

// TestHealthBlindPoliciesIgnoreFaults pins the complementary invariant:
// round-robin and job-hash deliberately ignore health, so their decisions
// are identical with and without a fault plan.
func TestHealthBlindPoliciesIgnoreFaults(t *testing.T) {
	spec, err := faults.ParseSpec("retire=8@0s")
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []RoutingPolicy{RouteRoundRobin, RouteJobHash} {
		clean := NewRouter(policy, 3)
		faulted := NewRouter(policy, 3)
		h := NewHealthSchedule(8, []faults.Spec{spec, {Recover: true}, {Recover: true}})
		for id := 0; id < 12; id++ {
			h.Apply(faulted, sim.Millisecond)
			a := clean.Pick(sim.Millisecond, sim.Microsecond, id)
			b := faulted.Pick(sim.Millisecond, sim.Microsecond, id)
			if a != b {
				t.Fatalf("%v: health changed decision for job %d (%d vs %d)", policy, id, a, b)
			}
		}
	}
}

// TestClusterRunUnderFaults exercises the full Run path with a per-GPU fault
// plan for every routing policy: the fleet must finish, conserve jobs, and
// still meet some deadlines on the healthy devices.
func TestClusterRunUnderFaults(t *testing.T) {
	set := testSet(t, 48)
	for _, routing := range []RoutingPolicy{RouteRoundRobin, RouteLeastLoaded, RouteJobHash} {
		cfg := baseConfig(3, routing)
		cfg.Faults = []string{"retire=4@2ms", "abort=0.05"}
		cfg.Seed = 42
		res, err := Run(cfg, set)
		if err != nil {
			t.Fatalf("%v: %v", routing, err)
		}
		total := 0
		for _, s := range res.PerGPU {
			total += s.TotalJobs
		}
		if total != set.Len() {
			t.Fatalf("%v: routed %d of %d jobs", routing, total, set.Len())
		}
		if res.MetDeadline <= 0 {
			t.Fatalf("%v: no deadlines met under partial faults", routing)
		}
	}
}

// TestClusterFaultValidation covers the error paths of fault-spec parsing at
// the cluster level.
func TestClusterFaultValidation(t *testing.T) {
	set := testSet(t, 8)
	cfg := baseConfig(2, RouteRoundRobin)
	cfg.Faults = []string{"bogus=1"}
	if _, err := Run(cfg, set); err == nil {
		t.Fatal("invalid fault spec accepted")
	}
}

// TestRouterHealthRecovery pins the SetHealth round trip: a device marked
// fully dead receives nothing, and restoring health 1.0 makes it a candidate
// again on equal terms.
func TestRouterHealthRecovery(t *testing.T) {
	for _, policy := range []RoutingPolicy{RouteLeastLoaded, RouteHeadroom} {
		r := NewRouter(policy, 2)
		r.SetHealth(0, 0)
		for id := 0; id < 8; id++ {
			if g := r.Pick(0, sim.Microsecond, id); g != 1 {
				t.Fatalf("%v: job %d routed to the dead device", policy, id)
			}
		}
		// Recovery: back to full health, with no backlog bookkeeping — the
		// recovered device must win the next pick (device 1 is loaded).
		r.SetHealth(0, 1)
		if g := r.Pick(0, sim.Microsecond, 100); g != 0 {
			t.Fatalf("%v: recovered device not picked (got %d)", policy, g)
		}
	}
}

// TestRouterTieBreakEquallyDegraded pins deterministic tie-breaking: two
// equally degraded, equally loaded devices must yield the lowest index, and
// repeated picks must alternate as the bookkeeping accrues — never flap on
// map order or randomness.
func TestRouterTieBreakEquallyDegraded(t *testing.T) {
	for _, policy := range []RoutingPolicy{RouteLeastLoaded, RouteHeadroom} {
		r := NewRouter(policy, 3)
		r.SetHealth(0, 0.5)
		r.SetHealth(1, 0.5)
		r.SetHealth(2, 0) // dead: must never appear
		var got []int
		for id := 0; id < 6; id++ {
			got = append(got, r.Pick(0, sim.Microsecond, id))
		}
		want := []int{0, 1, 0, 1, 0, 1}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: pick sequence %v, want %v", policy, got, want)
			}
		}
	}
}

// TestRouterHeadroomRoutesOnReports pins the gateway policy: picks follow
// the nodes' self-reported drain estimates, the work routed since a report
// counts against a node until its next report resets it.
func TestRouterHeadroomRoutesOnReports(t *testing.T) {
	r := NewRouter(RouteHeadroom, 2)
	r.SetHeadroom(0, 10*sim.Millisecond)
	r.SetHeadroom(1, sim.Millisecond)
	if g := r.Pick(0, sim.Microsecond, 0); g != 1 {
		t.Fatalf("pick = %d, want the node reporting less drain", g)
	}
	// Pile work onto node 1 between reports: the bookkeeping must
	// eventually push picks back to node 0.
	saw0 := false
	for id := 1; id < 20 && !saw0; id++ {
		saw0 = r.Pick(0, sim.Millisecond, id) == 0
	}
	if !saw0 {
		t.Fatal("sinceReport bookkeeping never redirected load to node 0")
	}
	// A fresh report wipes the bookkeeping: node 1 reporting empty wins.
	r.SetHeadroom(1, 0)
	if g := r.Pick(0, sim.Microsecond, 99); g != 1 {
		t.Fatalf("after fresh empty report, pick = %d, want 1", g)
	}
	// All dead: round-robin fallback rather than a blackhole.
	r.SetHealth(0, 0)
	r.SetHealth(1, 0)
	seen := map[int]bool{}
	for id := 0; id < 4; id++ {
		seen[r.Pick(0, sim.Microsecond, id)] = true
	}
	if len(seen) != 2 {
		t.Fatalf("all-dead fallback used only devices %v", seen)
	}
}

// TestHealthScheduleApplyEdges pins Apply's consumption semantics: events
// fire once (idempotent re-Apply), events at time zero apply immediately,
// stacked retirements accumulate, and retiring every CU clamps the fraction
// to exactly 0.
func TestHealthScheduleApplyEdges(t *testing.T) {
	spec, err := faults.ParseSpec("retire=4@0s,retire=4@2ms")
	if err != nil {
		t.Fatal(err)
	}
	h := NewHealthSchedule(8, []faults.Spec{spec, {Recover: true}})
	r := NewRouter(RouteLeastLoaded, 2)

	h.Apply(r, 0) // the t=0 event fires immediately: health 0.5
	got := map[int]bool{}
	for id := 0; id < 4; id++ {
		got[r.Pick(0, sim.Microsecond, id)] = true
	}
	if !got[1] {
		t.Fatalf("healthy device unused after partial retirement: %v", got)
	}

	// Re-applying at the same instant must not double-consume or rewind.
	h.Apply(r, 0)
	h.Apply(r, sim.Millisecond)

	// The second retirement kills the device outright (8 of 8 CUs gone).
	h.Apply(r, 2*sim.Millisecond)
	for id := 0; id < 8; id++ {
		if g := r.Pick(2*sim.Millisecond, sim.Microsecond, id); g == 0 {
			t.Fatal("fully retired device still picked")
		}
	}
}
