package core

import (
	"testing"

	"laxgpu/internal/gpu"
	"laxgpu/internal/sim"
)

// runUniform drives n concurrent single-WG launches of a kernel to build
// counter state.
func runUniform(t *testing.T, desc *gpu.KernelDesc, launches int) (*gpu.Device, sim.Time) {
	t.Helper()
	eng := sim.NewEngine()
	dev := gpu.New(gpu.DefaultConfig(), eng)
	insts := make([]*gpu.KernelInstance, launches)
	for i := range insts {
		insts[i] = gpu.NewKernelInstance(desc, i, i, 0)
		insts[i].MarkReady(0)
	}
	dev.OnWGComplete(func(*gpu.KernelInstance) {
		for _, in := range insts {
			dev.TryDispatch(in, -1)
		}
	})
	for _, in := range insts {
		dev.TryDispatch(in, -1)
	}
	eng.Run()
	return dev, eng.Now()
}

func TestCapacityNormalizedRate(t *testing.T) {
	// One 8-WG launch on a device that could host 80 such WGs: the
	// measured occupancy is 10%, but the delivery-capacity rate must
	// report what a full device would sustain.
	desc := &gpu.KernelDesc{
		Name: "k", NumWGs: 8, ThreadsPerWG: 256,
		BaseWGTime: 100 * sim.Microsecond, MemIntensity: 0, InstPerThread: 1,
	}
	dev, now := runUniform(t, desc, 1)

	cap := gpu.MaxConcurrentWGs(gpu.DefaultConfig(), desc)
	if cap != 80 {
		t.Fatalf("capacity = %d, want 80", cap)
	}

	pt := NewProfilingTable(1)
	pt.SetCapacity("k", cap)
	pt.Update(dev.Counters(), now)
	rate, ok := pt.Rate("k")
	if !ok {
		t.Fatal("no rate learned")
	}
	// Mean latency 100µs → delivery capacity 80/100µs = 0.8 WGs/µs.
	want := 80.0 / float64(100*sim.Microsecond)
	if rate < 0.99*want || rate > 1.01*want {
		t.Fatalf("capacity rate %v, want ≈%v", rate, want)
	}
}

func TestBusyRateFallbackWithoutCapacity(t *testing.T) {
	desc := &gpu.KernelDesc{
		Name: "k", NumWGs: 8, ThreadsPerWG: 256,
		BaseWGTime: 100 * sim.Microsecond, MemIntensity: 0, InstPerThread: 1,
	}
	dev, now := runUniform(t, desc, 1)
	pt := NewProfilingTable(1)
	pt.Update(dev.Counters(), now)
	rate, ok := pt.Rate("k")
	if !ok {
		t.Fatal("no rate learned")
	}
	// Busy-rate view: 8 WGs over 100µs busy = 0.08 WGs/µs.
	want := 8.0 / float64(100*sim.Microsecond)
	if rate < 0.99*want || rate > 1.01*want {
		t.Fatalf("busy rate %v, want ≈%v", rate, want)
	}
}

func TestKernelTimeClampsToLaunchConcurrency(t *testing.T) {
	pt := NewProfilingTable(1)
	pt.SetCapacity("k", 80)
	// Delivery capacity 0.8 WGs/µs ⇒ mean WG latency 100µs.
	pt.ObserveRate("k", 80.0/float64(100*sim.Microsecond))

	// A 1-WG launch takes one WG latency, not 1/80th of it.
	if got := pt.KernelTime("k", 1); got != 100*sim.Microsecond {
		t.Fatalf("1-WG launch estimate %v, want 100µs", got)
	}
	// An 8-WG launch still fits one wave.
	if got := pt.KernelTime("k", 8); got != 100*sim.Microsecond {
		t.Fatalf("8-WG launch estimate %v, want 100µs", got)
	}
	// A capacity-sized launch matches the drain view.
	if got := pt.KernelTime("k", 80); got != 100*sim.Microsecond {
		t.Fatalf("80-WG launch estimate %v, want 100µs", got)
	}
	// Beyond capacity the estimate scales with waves.
	if got := pt.KernelTime("k", 160); got != 200*sim.Microsecond {
		t.Fatalf("160-WG launch estimate %v, want 200µs", got)
	}
}

func TestDrainTimeUsesFullCapacity(t *testing.T) {
	pt := NewProfilingTable(1)
	pt.SetCapacity("k", 80)
	pt.ObserveRate("k", 80.0/float64(100*sim.Microsecond))

	// Drain view: 8 WGs of fleet work occupy 1/10th of a wave.
	if got := pt.DrainTime("k", 8); got != 10*sim.Microsecond {
		t.Fatalf("drain of 8 WGs = %v, want 10µs", got)
	}
	// Ten 8-WG jobs drain in one wave.
	list := make([]WGEntry, 10)
	for i := range list {
		list[i] = WGEntry{Kernel: "k", WGs: 8}
	}
	if got := pt.RemainingDrain(list); got != 100*sim.Microsecond {
		t.Fatalf("fleet drain %v, want 100µs", got)
	}
	// Per-job remaining for the same job is a full wave.
	if got := pt.RemainingTime([]WGEntry{{Kernel: "k", WGs: 8}}); got != 100*sim.Microsecond {
		t.Fatalf("per-job remaining %v, want 100µs", got)
	}
}

func TestDrainTimeZeroCases(t *testing.T) {
	pt := NewProfilingTable(1)
	if pt.DrainTime("ghost", 10) != 0 {
		t.Fatal("unknown kernel drain must be 0 (optimism)")
	}
	pt.ObserveRate("k", 0.001)
	if pt.DrainTime("k", 0) != 0 || pt.DrainTime("k", -1) != 0 {
		t.Fatal("non-positive WG count drain must be 0")
	}
	if pt.RemainingDrain(nil) != 0 {
		t.Fatal("empty drain must be 0")
	}
}

func TestSetCapacityIgnoresNonPositive(t *testing.T) {
	pt := NewProfilingTable(1)
	pt.SetCapacity("k", 0)
	pt.SetCapacity("k", -5)
	pt.ObserveRate("k", 0.001)
	// Without a capacity, KernelTime must not clamp.
	if got := pt.KernelTime("k", 1); got != sim.Time(1000) {
		t.Fatalf("KernelTime = %v, want 1µs (no clamp without capacity)", got)
	}
}

func TestSnapshotCopiesCapacityState(t *testing.T) {
	desc := &gpu.KernelDesc{
		Name: "k", NumWGs: 4, ThreadsPerWG: 64,
		BaseWGTime: 10 * sim.Microsecond, MemIntensity: 0, InstPerThread: 1,
	}
	dev, now := runUniform(t, desc, 1)
	pt := NewProfilingTable(1)
	pt.SetCapacity("k", 320)
	pt.Update(dev.Counters(), now)

	snap := pt.Snapshot()
	r1, _ := pt.Rate("k")
	r2, ok := snap.Rate("k")
	if !ok || r1 != r2 {
		t.Fatalf("snapshot rate %v, want %v", r2, r1)
	}
	// The snapshot's clamping behavior must match (capacity copied).
	if pt.KernelTime("k", 1) != snap.KernelTime("k", 1) {
		t.Fatal("snapshot lost capacity information")
	}
	// And the snapshot's window bookkeeping must be independent but
	// consistent: updating the snapshot with the same counters is a no-op
	// window (no new completions).
	snap.Update(dev.Counters(), now+sim.Microsecond)
	r3, _ := snap.Rate("k")
	if r3 != r2 {
		t.Fatalf("quiet snapshot update changed rate: %v -> %v", r2, r3)
	}
}

func TestRateReflectsContention(t *testing.T) {
	// Memory-bound WGs under saturation complete slower; the profiled rate
	// must drop accordingly (this is the signal laxity scheduling needs).
	fast := &gpu.KernelDesc{
		Name: "k", NumWGs: 8, ThreadsPerWG: 2048,
		BaseWGTime: 100 * sim.Microsecond, MemIntensity: 1.0, InstPerThread: 1,
	}
	devLight, nowLight := runUniform(t, fast, 1)
	devHeavy, nowHeavy := runUniform(t, fast, 4)

	ptLight := NewProfilingTable(1)
	ptLight.Update(devLight.Counters(), nowLight)
	ptHeavy := NewProfilingTable(1)
	ptHeavy.Update(devHeavy.Counters(), nowHeavy)

	rl, _ := ptLight.Rate("k")
	rh, _ := ptHeavy.Rate("k")
	// Heavy run saturates memory bandwidth: per-busy-ns delivery cannot
	// exceed the light run's (same kernel, more contention), even though
	// more WGs are in flight.
	if rh > rl*4.01 {
		t.Fatalf("contended rate %v implausibly above 4x uncontended %v", rh, rl)
	}
	if rl <= 0 || rh <= 0 {
		t.Fatal("rates must be positive")
	}
}
