package core

import (
	"testing"
	"testing/quick"

	"laxgpu/internal/gpu"
	"laxgpu/internal/sim"
)

func TestLaxityEquation1(t *testing.T) {
	// Deadline 7ms, 2ms remaining, 3ms elapsed → 2ms of slack.
	if got := Laxity(7*sim.Millisecond, 2*sim.Millisecond, 3*sim.Millisecond); got != 2*sim.Millisecond {
		t.Fatalf("laxity = %v, want 2ms", got)
	}
	// Over-committed job: negative laxity.
	if got := Laxity(sim.Millisecond, sim.Millisecond, sim.Millisecond); got >= 0 {
		t.Fatalf("laxity = %v, want negative", got)
	}
}

func TestPriorityAlgorithm2(t *testing.T) {
	d := 7 * sim.Millisecond

	// Feasible job: priority equals its laxity.
	p := Priority(d, 2*sim.Millisecond, 3*sim.Millisecond)
	if p != int64(2*sim.Millisecond) {
		t.Fatalf("feasible priority = %d, want laxity %d", p, int64(2*sim.Millisecond))
	}

	// Zero laxity is the most urgent feasible job.
	if got := Priority(d, 4*sim.Millisecond, 3*sim.Millisecond-1); got != 1 {
		t.Fatalf("near-zero-laxity priority = %d, want 1", got)
	}

	// Predicted miss (complTime > deadline but not yet past deadline):
	// priority = complTime, which exceeds the deadline and hence any
	// feasible job's laxity (Algorithm 2 line 14 guarantee).
	missP := Priority(d, 6*sim.Millisecond, 2*sim.Millisecond)
	if missP != int64(8*sim.Millisecond) {
		t.Fatalf("miss priority = %d, want complTime %d", missP, int64(8*sim.Millisecond))
	}
	if missP <= int64(d) {
		t.Fatal("missed-job priority must exceed the deadline")
	}

	// Already past deadline: INF (line 18).
	if got := Priority(d, 0, 7*sim.Millisecond+1); got != PriorityINF {
		t.Fatalf("expired priority = %d, want INF", got)
	}
}

// Property: a job predicted to make its deadline always outranks (has lower
// priority value than) a same-deadline job predicted to miss.
func TestPriorityOrderingProperty(t *testing.T) {
	f := func(remA, durA, remB, durB uint32) bool {
		d := 7 * sim.Millisecond
		a := Priority(d, sim.Time(remA), sim.Time(durA))
		b := Priority(d, sim.Time(remB), sim.Time(durB))
		laxA := Laxity(d, sim.Time(remA), sim.Time(durA))
		laxB := Laxity(d, sim.Time(remB), sim.Time(durB))
		if laxA >= 0 && laxB < 0 && sim.Time(durA) <= d {
			return a < b
		}
		// Both feasible: less laxity → more urgent.
		if laxA >= 0 && laxB >= 0 && sim.Time(durA) <= d && sim.Time(durB) <= d {
			return (laxA < laxB) == (a < b) || laxA == laxB
		}
		return true
	}
	// uint32 keeps rem/dur within ~4.3ms, well inside the 7ms deadline
	// range while still exercising every branch.
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestAdmitAlgorithm1(t *testing.T) {
	// 3ms queue + 2ms job + 0 waited < 7ms deadline → accept.
	if !Admit(3*sim.Millisecond, 2*sim.Millisecond, 0, 7*sim.Millisecond) {
		t.Fatal("feasible job rejected")
	}
	// 6ms queue + 2ms job > 7ms → reject.
	if Admit(6*sim.Millisecond, 2*sim.Millisecond, 0, 7*sim.Millisecond) {
		t.Fatal("infeasible job accepted")
	}
	// Boundary: exactly equal is a reject (strict <, Algorithm 1 line 15).
	if Admit(5*sim.Millisecond, 2*sim.Millisecond, 0, 7*sim.Millisecond) {
		t.Fatal("boundary job accepted; Algorithm 1 uses strict <")
	}
	// Time already waited counts against the job.
	if Admit(3*sim.Millisecond, 2*sim.Millisecond, 2*sim.Millisecond, 7*sim.Millisecond) {
		t.Fatal("stale job accepted")
	}
}

func TestProfilingTableUnknownKernelOptimistic(t *testing.T) {
	pt := NewProfilingTable(1)
	// "If no estimate exists yet for a given kernel, LAX optimistically
	// assumes it takes no time" (§4.3).
	if got := pt.KernelTime("never-seen", 100); got != 0 {
		t.Fatalf("unknown kernel estimate = %v, want 0", got)
	}
	if _, ok := pt.Rate("never-seen"); ok {
		t.Fatal("rate reported for unknown kernel")
	}
}

func TestProfilingTableLearnsFromCounters(t *testing.T) {
	eng := sim.NewEngine()
	cfg := gpu.DefaultConfig()
	dev := gpu.New(cfg, eng)
	desc := &gpu.KernelDesc{
		Name: "k", NumWGs: 50, ThreadsPerWG: 64,
		BaseWGTime: 10 * sim.Microsecond, MemIntensity: 0, InstPerThread: 1,
	}
	inst := gpu.NewKernelInstance(desc, 0, 0, 0)
	inst.MarkReady(0)
	dev.OnWGComplete(func(*gpu.KernelInstance) { dev.TryDispatch(inst, -1) })
	dev.TryDispatch(inst, -1)
	eng.Run()

	pt := NewProfilingTable(1)
	pt.Update(dev.Counters(), eng.Now())
	rate, ok := pt.Rate("k")
	if !ok {
		t.Fatal("no rate learned")
	}
	// 50 WGs in 10µs (all concurrent) → 5 WGs/µs = 0.005 WGs/ns.
	if rate < 0.004 || rate > 0.006 {
		t.Fatalf("rate = %v WGs/ns, want ≈0.005", rate)
	}
	// Estimate for 50 more WGs ≈ 10µs.
	est := pt.KernelTime("k", 50)
	if est < 8*sim.Microsecond || est > 12*sim.Microsecond {
		t.Fatalf("estimate = %v, want ≈10µs", est)
	}
}

func TestProfilingTableQuietWindowKeepsRate(t *testing.T) {
	pt := NewProfilingTable(1)
	pt.ObserveRate("k", 0.01)

	eng := sim.NewEngine()
	dev := gpu.New(gpu.DefaultConfig(), eng)
	// No completions happen; update over an empty window.
	pt.Update(dev.Counters(), 100*sim.Microsecond)
	rate, ok := pt.Rate("k")
	if !ok || rate != 0.01 {
		t.Fatalf("quiet window clobbered rate: %v %v", rate, ok)
	}
}

func TestProfilingTableEWMA(t *testing.T) {
	pt := NewProfilingTable(0.5)
	pt.ObserveRate("k", 0.02)

	eng := sim.NewEngine()
	dev := gpu.New(gpu.DefaultConfig(), eng)
	desc := &gpu.KernelDesc{Name: "k", NumWGs: 10, ThreadsPerWG: 64,
		BaseWGTime: sim.Microsecond, MemIntensity: 0, InstPerThread: 1}
	inst := gpu.NewKernelInstance(desc, 0, 0, 0)
	inst.MarkReady(0)
	dev.OnWGComplete(func(*gpu.KernelInstance) { dev.TryDispatch(inst, -1) })
	dev.TryDispatch(inst, -1)
	eng.Run() // 10 WGs complete by 1µs

	pt.Update(dev.Counters(), 1000) // window rate = 10/1000 = 0.01
	rate, _ := pt.Rate("k")
	if rate != 0.5*0.01+0.5*0.02 {
		t.Fatalf("EWMA rate = %v, want 0.015", rate)
	}
}

func TestProfilingTableZeroWindowNoop(t *testing.T) {
	pt := NewProfilingTable(1)
	eng := sim.NewEngine()
	dev := gpu.New(gpu.DefaultConfig(), eng)
	pt.Update(dev.Counters(), 0) // window 0: must not divide by zero
	if _, ok := pt.Rate("anything"); ok {
		t.Fatal("phantom rate appeared")
	}
}

func TestRemainingTimeSumsChain(t *testing.T) {
	pt := NewProfilingTable(1)
	pt.ObserveRate("a", 0.001) // 1 WG per µs
	pt.ObserveRate("b", 0.002)
	list := []WGEntry{{"a", 10}, {"b", 10}, {"a", 5}}
	// 10/0.001 + 10/0.002 + 5/0.001 = 10000+5000+5000 ns.
	if got := pt.RemainingTime(list); got != 20*sim.Microsecond {
		t.Fatalf("remaining = %v, want 20µs", got)
	}
	// Unknown kernels contribute zero (optimism).
	list = append(list, WGEntry{"mystery", 1000})
	if got := pt.RemainingTime(list); got != 20*sim.Microsecond {
		t.Fatalf("remaining with unknown = %v, want 20µs", got)
	}
	if pt.RemainingTime(nil) != 0 {
		t.Fatal("empty list must estimate 0")
	}
}

func TestQueueDelay(t *testing.T) {
	pt := NewProfilingTable(1)
	pt.ObserveRate("k", 0.001)
	admitted := [][]WGEntry{
		{{"k", 10}}, // 10µs
		{{"k", 20}}, // 20µs
	}
	if got := QueueDelay(pt, admitted); got != 30*sim.Microsecond {
		t.Fatalf("queue delay = %v, want 30µs", got)
	}
	if QueueDelay(pt, nil) != 0 {
		t.Fatal("empty system must have zero queue delay")
	}
}

func TestSnapshotIsIndependent(t *testing.T) {
	pt := NewProfilingTable(1)
	pt.ObserveRate("k", 0.001)
	snap := pt.Snapshot()
	pt.ObserveRate("k", 0.999)
	if r, _ := snap.Rate("k"); r != 0.001 {
		t.Fatalf("snapshot mutated: %v", r)
	}
	if r, _ := pt.Rate("k"); r != 0.999 {
		t.Fatalf("original lost update: %v", r)
	}
}

func TestNewProfilingTableValidation(t *testing.T) {
	for _, alpha := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha=%v accepted", alpha)
				}
			}()
			NewProfilingTable(alpha)
		}()
	}
}

func TestObserveRateIgnoresNonPositive(t *testing.T) {
	pt := NewProfilingTable(1)
	pt.ObserveRate("k", 0)
	pt.ObserveRate("k", -3)
	if _, ok := pt.Rate("k"); ok {
		t.Fatal("non-positive rate stored")
	}
}

func TestKernelTimeZeroWGs(t *testing.T) {
	pt := NewProfilingTable(1)
	pt.ObserveRate("k", 0.001)
	if pt.KernelTime("k", 0) != 0 || pt.KernelTime("k", -5) != 0 {
		t.Fatal("non-positive WG count must estimate 0")
	}
}

// Worked example from Figure 3: three jobs, two concurrent slots. J3 is the
// longest; a laxity scheduler must rank it most urgent once its laxity is
// smallest, which is what saves all three deadlines in the paper's example.
func TestFigure3Ranking(t *testing.T) {
	// All times in µs. J1: 30 remaining, deadline 100, waited 10.
	// J2: 30 remaining, deadline 100, waited 10. J3: 80 remaining, deadline
	// 100, waited 0 → laxity 20 (smallest).
	us := sim.Microsecond
	p1 := Priority(100*us, 30*us, 10*us) // laxity 60
	p2 := Priority(100*us, 30*us, 10*us)
	p3 := Priority(100*us, 80*us, 0)
	if !(p3 < p1 && p3 < p2) {
		t.Fatalf("J3 not prioritized: p1=%d p2=%d p3=%d", p1, p2, p3)
	}
}
