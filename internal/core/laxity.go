package core

import (
	"math"

	"laxgpu/internal/sim"
)

// PriorityINF is the priority assigned to jobs already past their deadline
// (Algorithm 2 line 18): they are serviced only when nothing else can use
// the resources.
const PriorityINF = int64(math.MaxInt64)

// HighestPriority is priority level zero — assigned to newly admitted jobs
// ("for all LAX variants we initialize the job priority to the highest
// priority, as this empirically gave the best results", §5.1).
const HighestPriority = int64(0)

// Laxity computes Equation 1: LaxityTime = Deadline − (TimeRemaining +
// DurationTime), all relative to the job's enqueue time. A negative result
// means the job is predicted to miss its deadline.
func Laxity(deadline, remTime, durTime sim.Time) sim.Time {
	return deadline - (remTime + durTime)
}

// Priority implements the per-job body of Algorithm 2 (lines 8-19):
//
//   - jobs predicted to finish in time get their laxity as priority, so the
//     job with the least laxity is most urgent (priority grows with slack);
//   - jobs predicted to miss get priority = complTime, which exceeds the
//     deadline and therefore any live job's laxity;
//   - jobs already past their deadline get PriorityINF.
//
// deadline and durTime are relative to the job's enqueue (Job Table
// StartTime); remTime comes from ProfilingTable.RemainingTime.
func Priority(deadline, remTime, durTime sim.Time) int64 {
	if durTime > deadline {
		return PriorityINF
	}
	complTime := remTime + durTime
	if deadline > complTime {
		return int64(deadline - complTime) // laxity
	}
	return int64(complTime)
}

// Admit implements the acceptance test of Algorithm 1 (line 15): a new job
// is offloaded only if the total predicted remaining time of jobs already
// in the system (Little's-Law queuing delay), plus the new job's own
// estimated execution time, plus the time it has already waited, fits
// before its deadline.
func Admit(queueDelay, holdJobTime, durTime, deadline sim.Time) bool {
	return queueDelay+holdJobTime+durTime < deadline
}

// QueueDelay computes the Little's-Law queuing-delay term of Algorithm 1
// (lines 8-10): the summed predicted remaining time of every job currently
// accepted by the system (ready or running — "including jobs that are ready
// but not running", §4.3).
func QueueDelay(t *ProfilingTable, admitted [][]WGEntry) sim.Time {
	var total sim.Time
	for _, list := range admitted {
		total += t.RemainingTime(list)
	}
	return total
}
