// Package core implements the paper's primary contribution: the LAX
// laxity-aware scheduling machinery. It contains the Kernel Profiling Table
// (dynamic per-kernel workgroup completion rates, §4.2), the job
// remaining-time estimator driven by stream-inspected WGLists, the
// Little's-Law queuing-delay admission test (Algorithm 1, §4.3), and the
// laxity priority function (Algorithm 2, §4.4).
//
// The package is deliberately free of simulator plumbing: everything
// operates on plain values and the device's performance counters, so each
// algorithm is testable in isolation and reusable by the LAX, LAX-SW,
// LAX-CPU and SRF policies.
package core

import (
	"laxgpu/internal/gpu"
	"laxgpu/internal/sim"
)

// WGEntry is one element of a job's WGList: a kernel type and the number of
// its workgroups that have not completed. Stream inspection produces the
// initial list; entries are decremented as WGs finish (§4.2).
type WGEntry struct {
	Kernel string
	WGs    int
}

// DefaultUpdateInterval is how often the Kernel Profiling Table is
// refreshed and priorities are recomputed — "empirically set at 100 µs"
// (§4.2, §4.4).
const DefaultUpdateInterval = 100 * sim.Microsecond

// ptKernel is one kernel type's row in the profiling table.
type ptKernel struct {
	name       string
	rate       float64 // WGs per nanosecond of device delivery
	hasRate    bool
	lastCount  uint64
	lastBusy   sim.Time
	lastLatSum sim.Time
	capacity   int // max concurrently resident WGs; 0 = unregistered
}

// ProfilingTable is the Kernel Profiling Table: per-kernel-type workgroup
// completion rates, periodically refreshed from device counters so
// estimates "adapt quickly and effectively to changing contention levels"
// (§4.3).
//
// Rates are device-aggregate (WGs per nanosecond across all CUs), so
// dividing a WG count by the rate directly yields wall-clock time under the
// current contention and parallelism — the quantity Algorithms 1 and 2
// consume.
//
// Kernel names are interned to dense IDs (IDFor) and the table keeps a
// version counter that bumps whenever any rate or capacity changes, so
// schedulers can cache derived estimates and revalidate them with one
// integer compare per epoch instead of recomputing every job's chain.
type ProfilingTable struct {
	// alpha is the EWMA weight given to the newest window's rate. 1 means
	// "use only the latest window".
	alpha float64

	ids        map[string]int // kernel name → dense ID into ks
	ks         []ptKernel
	lastSample sim.Time

	// version counts rate/capacity changes; any cached KernelTime/DrainTime
	// derivation stamped with an older version must be recomputed.
	version uint64

	// ctrIDs maps device counter IDs to table IDs so Update never touches
	// the name map in steady state.
	ctrIDs []int
}

// NewProfilingTable returns an empty table. alpha in (0,1] controls
// smoothing across 100 µs windows; the paper's description implies fast
// adaptation, so values near 1 are appropriate.
func NewProfilingTable(alpha float64) *ProfilingTable {
	if alpha <= 0 || alpha > 1 {
		panic("core: ProfilingTable alpha must be in (0,1]")
	}
	return &ProfilingTable{
		alpha: alpha,
		ids:   make(map[string]int),
	}
}

// IDFor interns a kernel name and returns its dense table ID. IDs are
// stable for the life of the table (snapshots preserve them) and index the
// ID-suffixed fast-path methods.
func (t *ProfilingTable) IDFor(name string) int {
	if id, ok := t.ids[name]; ok {
		return id
	}
	id := len(t.ks)
	t.ids[name] = id
	t.ks = append(t.ks, ptKernel{name: name})
	return id
}

// Version returns the table's change counter: it advances whenever any
// kernel's rate or capacity changes, so an estimate cached at version v is
// still exact while Version() == v.
func (t *ProfilingTable) Version() uint64 { return t.version }

// SetCapacity records how many WGs of the kernel type the device can host
// concurrently (from the kernel packet's thread/register/LDS fields). With
// a known capacity, the profiled rate is the device's delivery capacity for
// the kernel — capacity / mean observed WG latency — rather than the rate
// at whatever occupancy happened to occur. The distinction matters at low
// load: an arriving job should not be rejected because the lone job in
// flight is using a tenth of the machine.
func (t *ProfilingTable) SetCapacity(name string, maxConcurrentWGs int) {
	if maxConcurrentWGs > 0 {
		k := &t.ks[t.IDFor(name)]
		if k.capacity != maxConcurrentWGs {
			k.capacity = maxConcurrentWGs
			t.version++
		}
	}
}

// Update samples the device counters at time now and refreshes each
// kernel's completion rate from the window's observations.
//
// With a registered capacity, the rate is capacity / mean-WG-latency, where
// the mean latency averages the actual dispatch-to-completion latencies of
// the WGs that finished in the window — the device's delivery capacity for
// the kernel under the contention actually experienced. Without one, the
// rate falls back to completions per busy nanosecond (time with ≥1 WG in
// flight).
//
// Either way the denominator is never wall time: an idle window says
// nothing about how fast a kernel completes when scheduled, and dividing by
// wall time would collapse the rate whenever admission control empties the
// device (reject → lower rate → larger estimates → more rejects — a death
// spiral). Windows with no completions leave the last rate in place.
func (t *ProfilingTable) Update(c *gpu.Counters, now sim.Time) {
	window := now - t.lastSample
	if window <= 0 {
		return
	}
	changed := false
	for ci, kc := range c.All() {
		for len(t.ctrIDs) <= ci {
			t.ctrIDs = append(t.ctrIDs, -1)
		}
		id := t.ctrIDs[ci]
		if id < 0 {
			id = t.IDFor(kc.Name)
			t.ctrIDs[ci] = id
		}
		k := &t.ks[id]
		cum := kc.WGsCompleted
		busy := kc.BusyTime(now)
		latSum := kc.LatencySum()
		delta := cum - k.lastCount
		busyDelta := busy - k.lastBusy
		latDelta := latSum - k.lastLatSum
		k.lastCount = cum
		k.lastBusy = busy
		k.lastLatSum = latSum
		if delta == 0 {
			continue
		}
		var rate float64
		if k.capacity > 0 && latDelta > 0 {
			meanLatency := float64(latDelta) / float64(delta)
			rate = float64(k.capacity) / meanLatency
		} else if busyDelta > 0 {
			rate = float64(delta) / float64(busyDelta)
		} else {
			continue
		}
		if k.hasRate {
			k.rate = t.alpha*rate + (1-t.alpha)*k.rate
		} else {
			k.rate = rate
			k.hasRate = true
		}
		changed = true
	}
	if changed {
		t.version++
	}
	t.lastSample = now
}

// ObserveRate force-sets a kernel's rate (WGs/ns). Used by tests and by
// policies seeding tables from offline profiles (Prophet-style).
func (t *ProfilingTable) ObserveRate(name string, wgsPerNs float64) {
	if wgsPerNs > 0 {
		k := &t.ks[t.IDFor(name)]
		if !k.hasRate || k.rate != wgsPerNs {
			k.rate = wgsPerNs
			k.hasRate = true
			t.version++
		}
	}
}

// Len returns the number of kernel types with a profiled completion rate —
// the table's population, reported by the telemetry layer at each refresh.
func (t *ProfilingTable) Len() int {
	n := 0
	for i := range t.ks {
		if t.ks[i].hasRate {
			n++
		}
	}
	return n
}

// Rate returns the profiled completion rate for the kernel type and whether
// one exists yet.
func (t *ProfilingTable) Rate(name string) (float64, bool) {
	if id, ok := t.ids[name]; ok && t.ks[id].hasRate {
		return t.ks[id].rate, true
	}
	return 0, false
}

// Snapshot returns a deep copy of the table's current rates. CPU-side LAX
// variants schedule from snapshots that lag the live table by a host-device
// round trip (the paper's fidelity argument for extending the CP). IDs are
// preserved, so estimates resolved against the live table index the
// snapshot identically; the copy starts a fresh version history.
func (t *ProfilingTable) Snapshot() *ProfilingTable {
	c := NewProfilingTable(t.alpha)
	c.ks = append(c.ks, t.ks...)
	for k, v := range t.ids {
		c.ids[k] = v
	}
	c.ctrIDs = append(c.ctrIDs, t.ctrIDs...)
	c.lastSample = t.lastSample
	return c
}

// KernelTime estimates how long one launch of wgs workgroups of the kernel
// type will take under current conditions: the measured per-WG latency
// times the number of waves the launch itself needs. The launch's effective
// concurrency is bounded by its own WG count — a single-workgroup kernel
// takes one WG latency no matter how many WGs of its type the device could
// co-host. With no profiled rate yet, LAX "optimistically assumes it takes
// no time, to avoid rejecting work it could potentially complete" (§4.3) —
// it returns 0.
func (t *ProfilingTable) KernelTime(name string, wgs int) sim.Time {
	id, ok := t.ids[name]
	if !ok {
		return 0
	}
	return t.KernelTimeID(id, wgs)
}

// KernelTimeID is KernelTime addressed by dense table ID.
func (t *ProfilingTable) KernelTimeID(id, wgs int) sim.Time {
	if wgs <= 0 {
		return 0
	}
	k := &t.ks[id]
	if !k.hasRate || k.rate <= 0 {
		return 0
	}
	if k.capacity > 0 && wgs < k.capacity {
		// rate is capacity/meanLatency; re-derive the launch-local rate
		// wgs/meanLatency.
		return sim.Time(float64(k.capacity) / k.rate)
	}
	return sim.Time(float64(wgs) / k.rate)
}

// DrainTime estimates the kernel type's contribution to draining the whole
// queue: wgs divided by the device's delivery capacity for the kernel. This
// is the Little's-Law view — many jobs' identical kernels drain in
// parallel — and feeds Algorithm 1's queuing-delay sum.
func (t *ProfilingTable) DrainTime(name string, wgs int) sim.Time {
	id, ok := t.ids[name]
	if !ok {
		return 0
	}
	return t.DrainTimeID(id, wgs)
}

// DrainTimeID is DrainTime addressed by dense table ID.
func (t *ProfilingTable) DrainTimeID(id, wgs int) sim.Time {
	if wgs <= 0 {
		return 0
	}
	k := &t.ks[id]
	if !k.hasRate || k.rate <= 0 {
		return 0
	}
	return sim.Time(float64(wgs) / k.rate)
}

// RemainingTime estimates the time for one job to finish its WGList:
// kernels in a job are sequentially dependent, so per-kernel launch
// estimates sum (§4.2). Used by Algorithm 2's laxity and by SRF.
func (t *ProfilingTable) RemainingTime(list []WGEntry) sim.Time {
	var total sim.Time
	for _, e := range list {
		total += t.KernelTime(e.Kernel, e.WGs)
	}
	return total
}

// RemainingDrain estimates a job's contribution to the system-wide queuing
// delay (Algorithm 1 lines 8-10).
func (t *ProfilingTable) RemainingDrain(list []WGEntry) sim.Time {
	var total sim.Time
	for _, e := range list {
		total += t.DrainTime(e.Kernel, e.WGs)
	}
	return total
}
