// Package core implements the paper's primary contribution: the LAX
// laxity-aware scheduling machinery. It contains the Kernel Profiling Table
// (dynamic per-kernel workgroup completion rates, §4.2), the job
// remaining-time estimator driven by stream-inspected WGLists, the
// Little's-Law queuing-delay admission test (Algorithm 1, §4.3), and the
// laxity priority function (Algorithm 2, §4.4).
//
// The package is deliberately free of simulator plumbing: everything
// operates on plain values and the device's performance counters, so each
// algorithm is testable in isolation and reusable by the LAX, LAX-SW,
// LAX-CPU and SRF policies.
package core

import (
	"laxgpu/internal/gpu"
	"laxgpu/internal/sim"
)

// WGEntry is one element of a job's WGList: a kernel type and the number of
// its workgroups that have not completed. Stream inspection produces the
// initial list; entries are decremented as WGs finish (§4.2).
type WGEntry struct {
	Kernel string
	WGs    int
}

// DefaultUpdateInterval is how often the Kernel Profiling Table is
// refreshed and priorities are recomputed — "empirically set at 100 µs"
// (§4.2, §4.4).
const DefaultUpdateInterval = 100 * sim.Microsecond

// ProfilingTable is the Kernel Profiling Table: per-kernel-type workgroup
// completion rates, periodically refreshed from device counters so
// estimates "adapt quickly and effectively to changing contention levels"
// (§4.3).
//
// Rates are device-aggregate (WGs per nanosecond across all CUs), so
// dividing a WG count by the rate directly yields wall-clock time under the
// current contention and parallelism — the quantity Algorithms 1 and 2
// consume.
type ProfilingTable struct {
	// alpha is the EWMA weight given to the newest window's rate. 1 means
	// "use only the latest window".
	alpha float64

	rates      map[string]float64 // WGs per nanosecond of device delivery
	lastCounts map[string]uint64
	lastBusy   map[string]sim.Time
	lastLatSum map[string]sim.Time
	capacity   map[string]int // max concurrently resident WGs per kernel
	lastSample sim.Time
}

// NewProfilingTable returns an empty table. alpha in (0,1] controls
// smoothing across 100 µs windows; the paper's description implies fast
// adaptation, so values near 1 are appropriate.
func NewProfilingTable(alpha float64) *ProfilingTable {
	if alpha <= 0 || alpha > 1 {
		panic("core: ProfilingTable alpha must be in (0,1]")
	}
	return &ProfilingTable{
		alpha:      alpha,
		rates:      make(map[string]float64),
		lastCounts: make(map[string]uint64),
		lastBusy:   make(map[string]sim.Time),
		lastLatSum: make(map[string]sim.Time),
		capacity:   make(map[string]int),
	}
}

// SetCapacity records how many WGs of the kernel type the device can host
// concurrently (from the kernel packet's thread/register/LDS fields). With
// a known capacity, the profiled rate is the device's delivery capacity for
// the kernel — capacity / mean observed WG latency — rather than the rate
// at whatever occupancy happened to occur. The distinction matters at low
// load: an arriving job should not be rejected because the lone job in
// flight is using a tenth of the machine.
func (t *ProfilingTable) SetCapacity(name string, maxConcurrentWGs int) {
	if maxConcurrentWGs > 0 {
		t.capacity[name] = maxConcurrentWGs
	}
}

// Update samples the device counters at time now and refreshes each
// kernel's completion rate from the window's observations.
//
// With a registered capacity, the rate is capacity / mean-WG-latency, where
// the mean latency averages the actual dispatch-to-completion latencies of
// the WGs that finished in the window — the device's delivery capacity for
// the kernel under the contention actually experienced. Without one, the
// rate falls back to completions per busy nanosecond (time with ≥1 WG in
// flight).
//
// Either way the denominator is never wall time: an idle window says
// nothing about how fast a kernel completes when scheduled, and dividing by
// wall time would collapse the rate whenever admission control empties the
// device (reject → lower rate → larger estimates → more rejects — a death
// spiral). Windows with no completions leave the last rate in place.
func (t *ProfilingTable) Update(c *gpu.Counters, now sim.Time) {
	window := now - t.lastSample
	if window <= 0 {
		return
	}
	for _, name := range c.KernelNames() {
		cum := c.Completed(name)
		busy := c.Busy(name, now)
		latSum := c.LatencySum(name)
		delta := cum - t.lastCounts[name]
		busyDelta := busy - t.lastBusy[name]
		latDelta := latSum - t.lastLatSum[name]
		t.lastCounts[name] = cum
		t.lastBusy[name] = busy
		t.lastLatSum[name] = latSum
		if delta == 0 {
			continue
		}
		var rate float64
		if cap, ok := t.capacity[name]; ok && latDelta > 0 {
			meanLatency := float64(latDelta) / float64(delta)
			rate = float64(cap) / meanLatency
		} else if busyDelta > 0 {
			rate = float64(delta) / float64(busyDelta)
		} else {
			continue
		}
		if old, ok := t.rates[name]; ok {
			t.rates[name] = t.alpha*rate + (1-t.alpha)*old
		} else {
			t.rates[name] = rate
		}
	}
	t.lastSample = now
}

// ObserveRate force-sets a kernel's rate (WGs/ns). Used by tests and by
// policies seeding tables from offline profiles (Prophet-style).
func (t *ProfilingTable) ObserveRate(name string, wgsPerNs float64) {
	if wgsPerNs > 0 {
		t.rates[name] = wgsPerNs
	}
}

// Len returns the number of kernel types with a profiled completion rate —
// the table's population, reported by the telemetry layer at each refresh.
func (t *ProfilingTable) Len() int { return len(t.rates) }

// Rate returns the profiled completion rate for the kernel type and whether
// one exists yet.
func (t *ProfilingTable) Rate(name string) (float64, bool) {
	r, ok := t.rates[name]
	return r, ok
}

// Snapshot returns a deep copy of the table's current rates. CPU-side LAX
// variants schedule from snapshots that lag the live table by a host-device
// round trip (the paper's fidelity argument for extending the CP).
func (t *ProfilingTable) Snapshot() *ProfilingTable {
	c := NewProfilingTable(t.alpha)
	for k, v := range t.rates {
		c.rates[k] = v
	}
	for k, v := range t.lastCounts {
		c.lastCounts[k] = v
	}
	for k, v := range t.lastBusy {
		c.lastBusy[k] = v
	}
	for k, v := range t.lastLatSum {
		c.lastLatSum[k] = v
	}
	for k, v := range t.capacity {
		c.capacity[k] = v
	}
	c.lastSample = t.lastSample
	return c
}

// KernelTime estimates how long one launch of wgs workgroups of the kernel
// type will take under current conditions: the measured per-WG latency
// times the number of waves the launch itself needs. The launch's effective
// concurrency is bounded by its own WG count — a single-workgroup kernel
// takes one WG latency no matter how many WGs of its type the device could
// co-host. With no profiled rate yet, LAX "optimistically assumes it takes
// no time, to avoid rejecting work it could potentially complete" (§4.3) —
// it returns 0.
func (t *ProfilingTable) KernelTime(name string, wgs int) sim.Time {
	if wgs <= 0 {
		return 0
	}
	rate, ok := t.rates[name]
	if !ok || rate <= 0 {
		return 0
	}
	if cap, ok := t.capacity[name]; ok && wgs < cap {
		// rate is capacity/meanLatency; re-derive the launch-local rate
		// wgs/meanLatency.
		return sim.Time(float64(cap) / rate)
	}
	return sim.Time(float64(wgs) / rate)
}

// DrainTime estimates the kernel type's contribution to draining the whole
// queue: wgs divided by the device's delivery capacity for the kernel. This
// is the Little's-Law view — many jobs' identical kernels drain in
// parallel — and feeds Algorithm 1's queuing-delay sum.
func (t *ProfilingTable) DrainTime(name string, wgs int) sim.Time {
	if wgs <= 0 {
		return 0
	}
	rate, ok := t.rates[name]
	if !ok || rate <= 0 {
		return 0
	}
	return sim.Time(float64(wgs) / rate)
}

// RemainingTime estimates the time for one job to finish its WGList:
// kernels in a job are sequentially dependent, so per-kernel launch
// estimates sum (§4.2). Used by Algorithm 2's laxity and by SRF.
func (t *ProfilingTable) RemainingTime(list []WGEntry) sim.Time {
	var total sim.Time
	for _, e := range list {
		total += t.KernelTime(e.Kernel, e.WGs)
	}
	return total
}

// RemainingDrain estimates a job's contribution to the system-wide queuing
// delay (Algorithm 1 lines 8-10).
func (t *ProfilingTable) RemainingDrain(list []WGEntry) sim.Time {
	var total sim.Time
	for _, e := range list {
		total += t.DrainTime(e.Kernel, e.WGs)
	}
	return total
}
