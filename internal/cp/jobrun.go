// Package cp models the GPU command processor (CP) and the host↔device
// offload path: compute queues holding kernel chains, packet parsing
// (stream inspection bandwidth), per-queue priority registers, the WG
// dispatch loop, and the hooks scheduling policies attach to.
//
// The paper's entire design space lives in which Policy is attached and
// which overheads it pays: CPU-side schedulers pay a host↔device round
// trip per kernel launch, CP-side schedulers act on fresh device counters
// with no communication cost.
package cp

import (
	"fmt"

	"laxgpu/internal/core"
	"laxgpu/internal/gpu"
	"laxgpu/internal/sim"
	"laxgpu/internal/workload"
)

// JobState tracks a job through the offload pipeline. It mirrors the paper's
// Job Table State field (init → ready → running) with terminal states added.
type JobState int

const (
	// JobPending: arrived at the host, not yet through admission.
	JobPending JobState = iota
	// JobInit: admitted, packets being parsed/inspected ("init" in Alg. 1).
	JobInit
	// JobReady: first kernel eligible for dispatch ("ready").
	JobReady
	// JobRunning: at least one WG has been dispatched ("running").
	JobRunning
	// JobDone: every kernel completed.
	JobDone
	// JobRejected: admission control refused to offload the job.
	JobRejected
	// JobCancelled: preempted mid-flight and dropped (its deadline had
	// passed and a policy reclaimed its remaining capacity). In-flight WGs
	// drain; queued kernels never run.
	JobCancelled
)

func (s JobState) String() string {
	switch s {
	case JobPending:
		return "pending"
	case JobInit:
		return "init"
	case JobReady:
		return "ready"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobRejected:
		return "rejected"
	case JobCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("JobState(%d)", int(s))
	}
}

// JobRun is the runtime state of one offloaded job: the compute-queue entry
// the CP schedules. One job maps to one stream/queue (§5.3).
type JobRun struct {
	Job     *workload.Job
	QueueID int

	// Instances are the job's kernel launches in dependency order.
	Instances []*gpu.KernelInstance

	// cur indexes the kernel currently eligible to run (all earlier ones
	// are done).
	cur int

	// Priority is the queue's priority register: lower values are more
	// urgent (priority 0 is the highest level, as in Algorithm 2). Ties
	// break FIFO on SubmitTime.
	Priority int64

	// state transitions are owned by the System.
	state JobState

	// SubmitTime is when the job was accepted for offload (the Job Table
	// StartTime; durTime in the paper's algorithms is now − SubmitTime).
	SubmitTime sim.Time

	// ReadyTime is when stream inspection finished and the first kernel
	// became dispatchable.
	ReadyTime sim.Time

	// FinishTime is when the last WG of the last kernel completed.
	FinishTime sim.Time

	// FirstDispatch is when the job's first WG started executing (time in
	// "running" begins here — used by Figure 10).
	FirstDispatch sim.Time

	// FellBack records that recovery gave up on the GPU and completed the
	// job on the host CPU (the paper's LAX-CPU path). The job counts as
	// completed, almost always past its deadline.
	FellBack bool

	// wgsCompleted counts WGs finished across all kernels (Figure 9).
	wgsCompleted int
}

func newJobRun(job *workload.Job, queueID int) *JobRun {
	jr := &JobRun{Job: job, QueueID: queueID, state: JobPending, FirstDispatch: -1}
	jr.Instances = make([]*gpu.KernelInstance, len(job.Kernels))
	for i, kd := range job.Kernels {
		jr.Instances[i] = gpu.NewKernelInstance(kd, job.ID, queueID, i)
	}
	return jr
}

// State returns the job's pipeline state.
func (j *JobRun) State() JobState { return j.state }

// Current returns the kernel instance at the head of the chain (the only
// dispatchable one, since kernels are sequentially dependent), or nil when
// the job is done.
func (j *JobRun) Current() *gpu.KernelInstance {
	if j.cur >= len(j.Instances) {
		return nil
	}
	return j.Instances[j.cur]
}

// CurrentIndex returns the index of the current kernel.
func (j *JobRun) CurrentIndex() int { return j.cur }

// Done reports whether every kernel has completed.
func (j *JobRun) Done() bool { return j.state == JobDone }

// Rejected reports whether admission control refused the job.
func (j *JobRun) Rejected() bool { return j.state == JobRejected }

// Cancelled reports whether the job was preempted and dropped mid-flight.
func (j *JobRun) Cancelled() bool { return j.state == JobCancelled }

// MetDeadline reports whether the job completed by its absolute deadline.
func (j *JobRun) MetDeadline() bool {
	return j.state == JobDone && j.FinishTime <= j.Job.AbsoluteDeadline()
}

// Latency returns finish − arrival for completed jobs and 0 otherwise.
func (j *JobRun) Latency() sim.Time {
	if j.state != JobDone {
		return 0
	}
	return j.FinishTime - j.Job.Arrival
}

// WGsCompleted returns the number of workgroups the job has finished.
func (j *JobRun) WGsCompleted() int { return j.wgsCompleted }

// RemainingWGList returns the job's uncompleted work as (kernel name, WG
// count) entries — the WGList of the paper's Job Table, kept current as WGs
// complete (§4.2: "As WGs complete, the WGCount entry ... is decremented").
func (j *JobRun) RemainingWGList() []core.WGEntry {
	var out []core.WGEntry
	for i := j.cur; i < len(j.Instances); i++ {
		inst := j.Instances[i]
		if n := inst.UncompletedWGs(); n > 0 {
			out = append(out, core.WGEntry{Kernel: inst.Desc.Name, WGs: n})
		}
	}
	return out
}

// TotalWGList returns the full stream-inspection result: every kernel in
// the queue with its total WG count (what LAX parses before execution).
func (j *JobRun) TotalWGList() []core.WGEntry {
	out := make([]core.WGEntry, 0, len(j.Instances))
	for _, inst := range j.Instances {
		out = append(out, core.WGEntry{Kernel: inst.Desc.Name, WGs: inst.Desc.NumWGs})
	}
	return out
}

// Pause marks every unfinished kernel of the job non-dispatchable
// (preemption-style descheduling; in-flight WGs drain naturally).
func (j *JobRun) Pause() {
	for i := j.cur; i < len(j.Instances); i++ {
		j.Instances[i].Paused = true
	}
}

// Resume clears the paused flag set by Pause.
func (j *JobRun) Resume() {
	for i := j.cur; i < len(j.Instances); i++ {
		j.Instances[i].Paused = false
	}
}

// Paused reports whether the job's current kernel is paused.
func (j *JobRun) Paused() bool {
	k := j.Current()
	return k != nil && k.Paused
}

// String summarizes the job for logs and test failures.
func (j *JobRun) String() string {
	return fmt.Sprintf("job%d(%s q%d %s k%d/%d prio=%d)",
		j.Job.ID, j.Job.Benchmark, j.QueueID, j.state, j.cur, len(j.Instances), j.Priority)
}
