package cp

import (
	"fmt"

	"laxgpu/internal/workload"
)

// Online mode drives a System from the outside — a serving frontend injects
// jobs as they arrive over the network instead of replaying a pre-scheduled
// trace. The contract mirrors sim mode exactly:
//
//   - the caller advances the engine with Engine().RunBefore(t) so events
//     strictly before an injection fire first, and an arrival injected at t
//     precedes device events AT t (the same order sim mode guarantees via
//     arrival events holding the lowest seq numbers);
//   - SubmitNow runs the identical arrive() path (admission, queue binding,
//     stream inspection) at the current engine time;
//   - the reprioritization timer ticks on the sim-mode grid (see armTimer),
//     with a catch-up tick injected when an arrival lands exactly on a grid
//     point the lazily-armed online timer had slept through.
//
// Under that contract, replaying a trace through AdvanceTo+SubmitNow yields
// bit-identical job outcomes to a sim-mode Run of the same trace — the
// property the serve equivalence test pins.

// StartOnline switches the system into externally driven mode: no arrivals
// are pre-scheduled, the fault retirement schedule (if installed) is armed,
// and jobs enter via SubmitNow. Like RunContext it latches runStarted, so
// observers must already be attached. The caller owns the event loop: it
// advances time with Engine().RunBefore / RunUntil between submissions, from
// a single goroutine.
func (s *System) StartOnline() {
	if s.runStarted {
		panic("cp: StartOnline after the run has started")
	}
	if len(s.jobs) != 0 {
		panic("cp: StartOnline needs an empty job set (jobs enter via SubmitNow)")
	}
	s.runStarted = true
	s.online = true
	s.scheduleRetirements()
}

// SubmitNow injects one job at the current engine time and runs the
// host-side offload decision inline — Algorithm 1 admission, queue binding
// and stream inspection all happen before it returns, so the caller can read
// the verdict off the returned JobRun (State() == JobRejected means the
// admission test refused it). IDs must be dense and Arrival must equal the
// engine's now: both are the submission-order invariants sim mode gets from
// its pre-scheduled trace, and the panics catch frontends that drift.
func (s *System) SubmitNow(job *workload.Job) *JobRun {
	if !s.online {
		panic("cp: SubmitNow on a system not started with StartOnline")
	}
	if job.ID != len(s.jobs) {
		panic(fmt.Sprintf("cp: online job IDs must be dense: got %d, want %d", job.ID, len(s.jobs)))
	}
	if job.Arrival != s.eng.Now() {
		panic(fmt.Sprintf("cp: online arrival %v != engine now %v", job.Arrival, s.eng.Now()))
	}
	jr := newJobRun(job, -1)
	s.jobs = append(s.jobs, jr)

	// If this arrival lands exactly on a reprioritization grid point while
	// the online timer is disarmed, sim mode — whose timer stays armed for
	// the whole trace — would fire a tick at this very instant, after the
	// arrival. Schedule the tick body at now to replicate it; the ordinary
	// re-arm (for the next grid point) happens inside arrive→bindQueue.
	iv := s.pol.Interval()
	catchup := iv > 0 && !s.timerArmed && s.eng.Now() >= iv && s.eng.Now()%iv == 0

	s.arrivalsLeft++ // arrive() decrements; net zero for injected jobs
	s.arrive(jr)

	if catchup {
		s.eng.Schedule(s.eng.Now(), func() {
			lat := s.pol.Overheads().PriorityUpdateLatency
			if lat > 0 {
				s.eng.After(lat, func() {
					s.pol.Reprioritize()
					s.recheckBlocked()
					s.Dispatch()
				})
				return
			}
			s.pol.Reprioritize()
			s.recheckBlocked()
			s.Dispatch()
		})
	}
	return jr
}

// Unfinished returns the jobs that are neither done, rejected nor cancelled,
// in submission order. A serving frontend drains until this is empty.
func (s *System) Unfinished() []*JobRun {
	var out []*JobRun
	for _, jr := range s.jobs {
		switch jr.state {
		case JobDone, JobRejected, JobCancelled:
		default:
			out = append(out, jr)
		}
	}
	return out
}

// FallBackToCPU gives up on executing the job on the GPU and completes its
// remaining kernels on the host CPU — the recovery fallback (recovery.go)
// exposed for graceful drain: a serving frontend shutting down falls back
// every in-flight job rather than dropping it, so each one still reaches a
// terminal state and is accounted for. The GPU queue is released
// immediately; the job finishes (late) after its remaining work runs
// serially at the configured CPUSlowdown, or the default recovery slowdown
// when recovery is not configured. Terminal and not-yet-admitted jobs are
// unaffected.
func (s *System) FallBackToCPU(jr *JobRun) {
	switch jr.state {
	case JobDone, JobRejected, JobCancelled:
		return
	}
	// A JobPending job here is admitted but host-queued (online submission
	// runs arrive inline, so no job stays pre-admission): it falls back like
	// any other — it has no queue to release and no watchdog to disarm.
	if s.cfg.Recovery.CPUSlowdown <= 0 {
		saved := s.cfg.Recovery.CPUSlowdown
		s.cfg.Recovery.CPUSlowdown = DefaultRecoveryConfig().CPUSlowdown
		defer func() { s.cfg.Recovery.CPUSlowdown = saved }()
	}
	if cur := jr.Current(); cur != nil {
		s.disarmWatchdog(cur)
	}
	// A job still waiting for a compute queue must leave the host queue, or
	// a later releaseQueue would bind a job that already fell back.
	for i, h := range s.hostQ {
		if h == jr {
			s.hostQ = append(s.hostQ[:i], s.hostQ[i+1:]...)
			break
		}
	}
	s.fallbackToCPU(jr)
}
