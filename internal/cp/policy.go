package cp

import "laxgpu/internal/sim"

// Overheads captures where a policy runs and what it pays for communication
// (§5.1 of the paper).
type Overheads struct {
	// PerKernelLaunch is the host↔device round trip added before each
	// kernel of a job becomes ready. CPU-side schedulers (BAT, BAY, PRO,
	// LAX-SW) pay 4 µs; CP-side schedulers pay nothing; LAX-CPU pre-enqueues
	// kernels on streams and pays nothing per kernel.
	PerKernelLaunch sim.Time

	// PerJobAdmission is a one-time cost charged before the job's first
	// kernel becomes ready (BAY pays 50 µs for its regression model).
	PerJobAdmission sim.Time

	// PriorityUpdateLatency delays the effect of Reprioritize decisions:
	// CPU-side policies act on device state sampled this much in the past
	// and their priority writes land this much in the future.
	PriorityUpdateLatency sim.Time
}

// Policy is a queue-scheduling policy: the subject of the paper's
// evaluation. The System consults it at job arrival (admission), on a
// periodic timer (reprioritization) and, for policies that implement the
// optional interfaces below, at dispatch-ordering and kernel-advance
// decisions.
type Policy interface {
	// Name is the scheduler's short name as used in the paper's figures
	// (RR, BAT, BAY, PRO, MLFQ, EDF, SJF, SRF, LJF, PREMA, LAX, LAX-SW,
	// LAX-CPU).
	Name() string

	// Attach wires the policy to a System before any job arrives. Policies
	// typically stash the *System and subscribe to counters here.
	Attach(sys *System)

	// Admit decides whether to offload an arriving job. Returning false
	// rejects the job (it never occupies a queue and completes no WGs).
	// Deadline-blind policies simply return true.
	Admit(j *JobRun) bool

	// Reprioritize runs every Interval while jobs are active. It mutates
	// JobRun.Priority (and may pause/resume jobs). The System re-runs the
	// dispatch loop afterwards.
	Reprioritize()

	// Interval is the reprioritization period (0 disables the timer).
	Interval() sim.Time

	// Overheads reports the policy's communication costs.
	Overheads() Overheads
}

// Orderer is an optional Policy extension that takes over dispatch
// ordering. Without it, the System dispatches active jobs by ascending
// Priority with FIFO tie-break. RR implements Orderer to rotate cyclically.
type Orderer interface {
	// Order returns the jobs in the sequence the CP should offer them to
	// the device this dispatch round. It must return a permutation of
	// active (the System does not verify, but dropping jobs starves them).
	Order(active []*JobRun) []*JobRun
}

// AdvanceGate is an optional Policy extension consulted before a job's next
// kernel becomes ready. BatchMaker implements it to hold jobs in lock-step
// with their batch group. Gated jobs are re-checked after every kernel
// completion and every reprioritization.
type AdvanceGate interface {
	CanAdvance(j *JobRun) bool
}

// KernelEstimator is an optional Policy extension for policies that can
// predict how long a job's current kernel will take to execute (LAX's
// profiling table, SRF, the statically profiled schedulers). The System
// calls it at each kernel's first WG dispatch — when a probe is attached —
// and pairs the prediction with the kernel's actual completion to measure
// estimate accuracy. Implementations must be pure: estimating must not
// change any scheduling state, or probed and unprobed runs would diverge.
type KernelEstimator interface {
	// EstimateKernelTime predicts the execution time of j's current
	// kernel. ok is false when no estimate exists yet (e.g. the kernel
	// type has produced no profiling signal).
	EstimateKernelTime(j *JobRun) (t sim.Time, ok bool)
}

// DrainEstimator is an optional Policy extension for policies that can
// predict how long the device needs to drain every admitted unfinished job
// — the queueDelay term of Algorithm 1 evaluated on demand. The serving
// frontend turns it into the Retry-After hint on a 429 rejection: a client
// that waits that long meets an (estimated) empty queue. Implementations
// must be pure reads of scheduling state.
type DrainEstimator interface {
	// EstimateDrain predicts the time until the currently admitted work
	// drains, under the policy's own estimation machinery.
	EstimateDrain() sim.Time
}

// ServeObserver is an optional Policy extension notified when a job's
// kernel actually receives workgroup slots in a dispatch round. Cyclic
// policies (RR, MLFQ's high queue) use it to advance their grant pointer
// past the queue that was just serviced, as a hardware queue scheduler
// would.
type ServeObserver interface {
	Served(j *JobRun)
}
