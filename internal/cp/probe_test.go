package cp

import (
	"strings"
	"testing"

	"laxgpu/internal/obs"
	"laxgpu/internal/sim"
)

// recordingProbe counts events by hook and remembers job lifecycle kinds.
type recordingProbe struct {
	jobKinds map[obs.JobEventKind]int
	starts   []obs.KernelStart
	dones    []obs.KernelDone
}

func newRecordingProbe() *recordingProbe {
	return &recordingProbe{jobKinds: make(map[obs.JobEventKind]int)}
}

func (r *recordingProbe) Job(e obs.JobEvent)              { r.jobKinds[e.Kind]++ }
func (r *recordingProbe) Admission(obs.AdmissionDecision) {}
func (r *recordingProbe) Epoch(obs.EpochSnapshot)         {}
func (r *recordingProbe) Sample(obs.JobSample)            {}
func (r *recordingProbe) TableRefresh(obs.TableRefresh)   {}
func (r *recordingProbe) KernelStart(e obs.KernelStart)   { r.starts = append(r.starts, e) }
func (r *recordingProbe) KernelDone(e obs.KernelDone)     { r.dones = append(r.dones, e) }

// estimatingPolicy is a fifoPolicy that predicts a fixed kernel time.
type estimatingPolicy struct {
	fifoPolicy
	estimate sim.Time
}

func (p *estimatingPolicy) EstimateKernelTime(j *JobRun) (sim.Time, bool) {
	return p.estimate, true
}

func TestProbeObservesLifecycleAndKernels(t *testing.T) {
	desc := testDesc("k", 2, 64, 10*sim.Microsecond)
	set := makeSet(3, 2, desc, 20*sim.Microsecond, sim.Millisecond)
	pol := &estimatingPolicy{estimate: 10 * sim.Microsecond}
	pr := newRecordingProbe()
	sys := NewSystem(smallConfig(), set, pol)
	sys.SetProbe(pr)
	sys.Run()

	if pr.jobKinds[obs.JobArrive] != 3 || pr.jobKinds[obs.JobReady] != 3 || pr.jobKinds[obs.JobFinish] != 3 {
		t.Fatalf("lifecycle counts wrong: %v", pr.jobKinds)
	}
	if len(pr.starts) != 6 || len(pr.dones) != 6 {
		t.Fatalf("kernel events: %d starts, %d dones, want 6/6", len(pr.starts), len(pr.dones))
	}
	for _, e := range pr.starts {
		if !e.HasPrediction || e.Predicted != 10*sim.Microsecond {
			t.Fatalf("KernelEstimator prediction not threaded: %+v", e)
		}
	}
	for _, e := range pr.dones {
		if e.At <= e.Start {
			t.Fatalf("kernel done with non-positive duration: %+v", e)
		}
	}
}

func TestProbeObservesRejectAndCancel(t *testing.T) {
	pol := &fifoPolicy{admitFn: func(j *JobRun) bool { return j.Job.ID != 0 }}
	desc := testDesc("k", 2, 64, 100*sim.Microsecond)
	set := makeSet(3, 2, desc, 0, sim.Millisecond)
	pr := newRecordingProbe()
	sys := NewSystem(smallConfig(), set, pol)
	sys.SetProbe(pr)
	sys.Engine().Schedule(50*sim.Microsecond, func() { sys.Cancel(sys.Job(2)) })
	sys.Run()
	if pr.jobKinds[obs.JobReject] != 1 {
		t.Fatalf("reject events = %d, want 1", pr.jobKinds[obs.JobReject])
	}
	if pr.jobKinds[obs.JobCancel] != 1 {
		t.Fatalf("cancel events = %d, want 1", pr.jobKinds[obs.JobCancel])
	}
}

// TestObserverAttachMidRunPanics pins the documented SetTracer/SetProbe
// semantics: attachment after Run has started is rejected (panic), because
// a mid-run observer would record a trace with no arrivals for in-flight
// jobs — silently unusable rather than loudly wrong.
func TestObserverAttachMidRunPanics(t *testing.T) {
	attach := []struct {
		name string
		do   func(*System)
	}{
		{"SetTracer", func(s *System) { s.SetTracer(NewTracer(&strings.Builder{})) }},
		{"SetProbe", func(s *System) { s.SetProbe(newRecordingProbe()) }},
	}
	for _, tc := range attach {
		t.Run(tc.name, func(t *testing.T) {
			desc := testDesc("k", 1, 64, 10*sim.Microsecond)
			set := makeSet(2, 1, desc, 5*sim.Microsecond, sim.Millisecond)
			sys := NewSystem(smallConfig(), set, &fifoPolicy{})
			panicked := false
			sys.Engine().Schedule(sim.Microsecond, func() {
				defer func() {
					if recover() != nil {
						panicked = true
					}
				}()
				tc.do(sys)
			})
			sys.Run()
			if !panicked {
				t.Fatalf("%s mid-run did not panic", tc.name)
			}
			// The run itself must complete unharmed.
			for _, j := range sys.Jobs() {
				if !j.Done() {
					t.Fatalf("run corrupted by rejected %s", tc.name)
				}
			}
		})
	}
}

// TestProbeHotPathAllocs verifies the no-probe dispatch path allocates
// nothing for observability: probeJob and probeKernelStart construct their
// event structs only inside the nil guard.
func TestProbeHotPathAllocs(t *testing.T) {
	desc := testDesc("k", 1, 64, sim.Microsecond)
	set := makeSet(1, 1, desc, 0, sim.Millisecond)
	sys := NewSystem(smallConfig(), set, &fifoPolicy{})
	jr := sys.Job(0)
	if n := testing.AllocsPerRun(1000, func() { sys.probeJob(obs.JobArrive, jr) }); n != 0 {
		t.Errorf("probeJob with nil probe allocates %v per op", n)
	}
	inst := jr.Instances[0]
	if n := testing.AllocsPerRun(1000, func() { sys.probeKernelStart(jr, inst) }); n != 0 {
		t.Errorf("probeKernelStart with nil probe allocates %v per op", n)
	}
}
