package cp

import (
	"laxgpu/internal/gpu"
	"laxgpu/internal/obs"
	"laxgpu/internal/sim"
)

// RecoveryConfig controls the CP's fault-recovery machinery: a per-kernel
// watchdog armed from the Kernel Profiling Table's predicted completion
// time, capped-exponential-backoff retries, and a CPU fallback (the paper's
// LAX-CPU path — the job still completes, just late). The zero value
// disables recovery entirely, which keeps healthy runs byte-identical to a
// build without this subsystem.
type RecoveryConfig struct {
	// Watchdog master-switches recovery: per-kernel timeout detection,
	// retries and CPU fallback. Off (zero value) means faults are fatal:
	// aborted jobs are cancelled and hung jobs strand forever.
	Watchdog bool

	// TimeoutMult scales the predicted kernel completion time into the
	// watchdog timeout. The prediction comes from a recovery-owned Kernel
	// Profiling Table (capacity-normalized WG completion rates, §4.2),
	// falling back to the analytic isolated kernel time before any rate
	// has been profiled.
	TimeoutMult float64

	// MinTimeout floors the watchdog timeout so short kernels under heavy
	// contention are not killed spuriously.
	MinTimeout sim.Time

	// MaxRetries is how many GPU re-dispatches a kernel gets after its
	// first failed attempt before the job falls back to the CPU.
	MaxRetries int

	// BackoffBase is the pause before the first retry; each further retry
	// doubles it, capped at BackoffCap.
	BackoffBase sim.Time
	BackoffCap  sim.Time

	// CPUSlowdown is how much slower the host CPU executes a kernel than
	// the isolated GPU (the paper's Table 1 shows one to two orders of
	// magnitude; LAX-CPU embodies the path).
	CPUSlowdown float64
}

// DefaultRecoveryConfig returns recovery enabled with the defaults used by
// the fault-sweep experiment.
func DefaultRecoveryConfig() RecoveryConfig {
	return RecoveryConfig{
		Watchdog:    true,
		TimeoutMult: 4,
		MinTimeout:  20 * sim.Microsecond,
		MaxRetries:  3,
		BackoffBase: 5 * sim.Microsecond,
		BackoffCap:  40 * sim.Microsecond,
		CPUSlowdown: 10,
	}
}

// RecoveryStats counts what the recovery machinery did during a run.
type RecoveryStats struct {
	// WatchdogKills is the number of kernel attempts the watchdog killed
	// for making no progress within their timeout.
	WatchdogKills int

	// Aborts is the number of device-detected transient aborts.
	Aborts int

	// WGsKilled is the number of in-flight WGs reclaimed by kills.
	WGsKilled int

	// Retries is the number of kernel re-dispatches after a kill/abort.
	Retries int

	// Fallbacks is the number of jobs completed on the CPU path.
	Fallbacks int

	// RetiredCUs is the number of compute units lost to scheduled
	// retirements.
	RetiredCUs int
}

// wdEntry is one armed watchdog: the timer, the attempt it guards, and the
// progress watermark that distinguishes a hang from slow-but-alive.
type wdEntry struct {
	ev             sim.Handle
	attempt        int
	completedAtArm int
}

// retirementNoter is implemented by fault plans that record fired CU
// retirements in their event trace (faults.Plan). Checked by type assertion
// so cp does not depend on the faults package.
type retirementNoter interface {
	NoteRetirement(now sim.Time, cus int)
}

// InstallFaults attaches a fault injector and a CU-retirement schedule to
// the system. Must be called before Run. A nil injector with a non-empty
// retirement schedule is valid (pure capacity-degradation experiments).
func (s *System) InstallFaults(inj gpu.FaultInjector, retirements []gpu.Retirement) {
	if inj != nil {
		s.dev.SetFaultInjector(inj)
		s.dev.OnKernelAbort(s.onKernelAbort)
	}
	s.injector = inj
	s.retirements = retirements
	s.faultsInstalled = true
}

// Recovery returns the run's recovery statistics.
func (s *System) Recovery() RecoveryStats { return s.recStats }

// scheduleRetirements arms the CU-loss schedule at Run time.
func (s *System) scheduleRetirements() {
	for _, r := range s.retirements {
		r := r
		s.eng.Schedule(r.At, func() {
			n := s.dev.RetireCUs(r.CUs)
			if n == 0 {
				return
			}
			s.recStats.RetiredCUs += n
			if noter, ok := s.injector.(retirementNoter); ok {
				noter.NoteRetirement(s.eng.Now(), n)
			}
			// Capacity-normalized watchdog predictions must see the
			// shrunken device, or timeouts come out too tight.
			for name, desc := range s.wdKernels {
				s.wdTable.SetCapacity(name, s.dev.MaxConcurrentWGs(desc))
			}
		})
	}
}

// faultRunHorizon bounds a faulty run's duration: with recovery disabled a
// hung kernel strands its job forever (holding its queue, keeping the
// reprioritization timer alive), so the engine would never drain. Jobs
// still unfinished at the horizon are already deadline misses; cutting the
// run there changes no metric (Makespan derives from job finish times, not
// the final clock).
func (s *System) faultRunHorizon() sim.Time {
	var latest sim.Time
	for _, jr := range s.jobs {
		if d := jr.Job.AbsoluteDeadline(); d > latest {
			latest = d
		}
	}
	if latest <= 0 || latest >= sim.Forever/2 {
		return 0
	}
	return latest + 250*sim.Millisecond
}

// armWatchdog starts (or restarts) the timeout guarding the instance's
// current attempt. Called when a kernel first receives WG slots and when a
// fired watchdog observes progress and re-arms.
func (s *System) armWatchdog(jr *JobRun, inst *gpu.KernelInstance) {
	rc := s.cfg.Recovery
	if !rc.Watchdog {
		return
	}
	now := s.eng.Now()
	name := inst.Desc.Name
	if _, ok := s.wdKernels[name]; !ok {
		s.wdKernels[name] = inst.Desc
		s.wdTable.SetCapacity(name, s.dev.MaxConcurrentWGs(inst.Desc))
	}
	s.wdTable.Update(s.dev.Counters(), now)
	predicted := s.wdTable.KernelTime(name, inst.UncompletedWGs())
	if predicted <= 0 {
		// Nothing profiled yet: analytic isolated time on the current
		// (possibly degraded) device.
		cfg := s.cfg.GPU
		cfg.NumCUs = s.dev.ActiveCUs()
		if cfg.NumCUs > 0 {
			predicted = gpu.IsolatedKernelTime(cfg, inst.Desc)
		}
	}
	timeout := sim.Time(float64(predicted) * rc.TimeoutMult)
	if timeout < rc.MinTimeout {
		timeout = rc.MinTimeout
	}
	if prev := s.wdTimers[inst]; prev != nil {
		prev.ev.Cancel()
	}
	entry := &wdEntry{attempt: inst.Attempt, completedAtArm: inst.CompletedWGs()}
	entry.ev = s.eng.Schedule(now+timeout, func() { s.watchdogFire(jr, inst, entry) })
	s.wdTimers[inst] = entry
}

// disarmWatchdog cancels the instance's pending timeout, if any.
func (s *System) disarmWatchdog(inst *gpu.KernelInstance) {
	if e := s.wdTimers[inst]; e != nil {
		e.ev.Cancel()
		delete(s.wdTimers, inst)
	}
}

// watchdogFire is the timeout handler: distinguish done/stale/progressing
// from hung, and kill only the hung.
func (s *System) watchdogFire(jr *JobRun, inst *gpu.KernelInstance, entry *wdEntry) {
	if s.wdTimers[inst] != entry {
		return // superseded by a newer arm
	}
	delete(s.wdTimers, inst)
	switch jr.state {
	case JobDone, JobRejected, JobCancelled:
		return
	}
	if inst.Done() || jr.Current() != inst || inst.Attempt != entry.attempt {
		return
	}
	if inst.CompletedWGs() > entry.completedAtArm {
		// Progress since arming: slow (contention, injected slowdown) but
		// alive. Re-arm against the remaining work.
		s.armWatchdog(jr, inst)
		return
	}
	killed := s.dev.Kill(inst)
	s.recStats.WatchdogKills++
	s.recStats.WGsKilled += killed
	s.tracer.kernelEvent("kernel_kill", s.eng.Now(), jr, inst.Desc.Name, inst.Seq)
	s.recoverKernel(jr, inst)
}

// onKernelAbort handles a device-detected transient abort. The device has
// already killed the attempt; with recovery on the kernel retries, with
// recovery off the fault is fatal to the offload.
func (s *System) onKernelAbort(inst *gpu.KernelInstance) {
	jr := s.jobs[inst.JobID]
	switch jr.state {
	case JobDone, JobRejected, JobCancelled:
		return
	}
	s.recStats.Aborts++
	s.tracer.kernelEvent("kernel_abort", s.eng.Now(), jr, inst.Desc.Name, inst.Seq)
	s.disarmWatchdog(inst)
	if !s.cfg.Recovery.Watchdog {
		s.Cancel(jr)
		return
	}
	s.recoverKernel(jr, inst)
}

// recoverKernel decides what happens after a killed attempt: retry on the
// GPU with capped exponential backoff, or fall back to the CPU once the
// retry budget is spent. inst.Attempt counts completed (failed) attempts at
// this point — Device.Kill already incremented it.
func (s *System) recoverKernel(jr *JobRun, inst *gpu.KernelInstance) {
	rc := s.cfg.Recovery
	if inst.Attempt > rc.MaxRetries {
		s.fallbackToCPU(jr)
		return
	}
	s.recStats.Retries++
	shift := uint(inst.Attempt - 1)
	if shift > 16 {
		shift = 16
	}
	backoff := rc.BackoffBase << shift
	if backoff > rc.BackoffCap {
		backoff = rc.BackoffCap
	}
	inst.Paused = true
	s.eng.After(backoff, func() {
		switch jr.state {
		case JobDone, JobRejected, JobCancelled:
			return
		}
		if jr.Current() != inst {
			return
		}
		inst.Paused = false
		s.Dispatch()
	})
}

// fallbackToCPU completes the job's remaining kernels on the host CPU: the
// GPU queue is released immediately (another job can bind), and the job
// finishes — late — after executing its remaining work serially at
// CPUSlowdown × the isolated-GPU time.
func (s *System) fallbackToCPU(jr *JobRun) {
	s.recStats.Fallbacks++
	jr.FellBack = true
	jr.Pause()
	for i, a := range s.active {
		if a == jr {
			s.active = append(s.active[:i], s.active[i+1:]...)
			s.invalidateOrder()
			break
		}
	}
	for i, b := range s.blocked {
		if b == jr {
			s.blocked = append(s.blocked[:i], s.blocked[i+1:]...)
			break
		}
	}
	s.tracer.jobEvent("fallback", s.eng.Now(), jr)
	s.probeJob(obs.JobFallback, jr)
	s.releaseQueue(jr)

	// CPU time is proportional to the work left, using the nominal device
	// as the unit of work (host speed does not degrade with retired CUs).
	var remaining sim.Time
	for i := jr.cur; i < len(jr.Instances); i++ {
		inst := jr.Instances[i]
		t := gpu.IsolatedKernelTime(s.cfg.GPU, inst.Desc)
		if n := inst.Desc.NumWGs; n > 0 {
			t = sim.Time(float64(t) * float64(inst.UncompletedWGs()) / float64(n))
		}
		remaining += t
	}
	cpuTime := sim.Time(float64(remaining) * s.cfg.Recovery.CPUSlowdown)
	s.eng.After(cpuTime, func() {
		jr.state = JobDone
		jr.FinishTime = s.eng.Now()
		s.completed++
		s.tracer.jobEvent("finish", s.eng.Now(), jr)
		s.probeJob(obs.JobFinish, jr)
	})
	s.Dispatch()
}
