package cp

import (
	"testing"

	"laxgpu/internal/gpu"
	"laxgpu/internal/sim"
)

// scriptInjector injects a fixed fault for chosen (jobID, seq, attempt)
// triples — the cp-side twin of the gpu package's test injector.
type scriptInjector struct {
	faults map[[3]int]gpu.KernelFault
}

func (si *scriptInjector) KernelLaunch(now sim.Time, jobID, seq, attempt int) gpu.KernelFault {
	return si.faults[[3]int{jobID, seq, attempt}]
}

func TestWatchdogKillsHangAndRetries(t *testing.T) {
	desc := testDesc("k", 2, 64, 10*sim.Microsecond)
	set := makeSet(1, 2, desc, 0, sim.Millisecond)
	cfg := smallConfig()
	cfg.Recovery = DefaultRecoveryConfig()
	sys := NewSystem(cfg, set, &fifoPolicy{})
	// First attempt of the job's first kernel hangs; every retry is clean.
	sys.InstallFaults(&scriptInjector{faults: map[[3]int]gpu.KernelFault{
		{0, 0, 0}: {Outcome: gpu.FaultHang},
	}}, nil)
	sys.Run()

	jr := sys.Job(0)
	if !jr.Done() {
		t.Fatalf("job did not complete: %v", jr)
	}
	st := sys.Recovery()
	if st.WatchdogKills != 1 {
		t.Fatalf("WatchdogKills = %d, want 1", st.WatchdogKills)
	}
	if st.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", st.Retries)
	}
	if st.Fallbacks != 0 {
		t.Fatalf("Fallbacks = %d, want 0", st.Fallbacks)
	}
	if st.WGsKilled == 0 {
		t.Fatal("no WGs reclaimed by the kill")
	}
	// The hang cost at least the watchdog timeout.
	if jr.FinishTime < cfg.Recovery.MinTimeout {
		t.Fatalf("finished suspiciously early: %v", jr.FinishTime)
	}
}

func TestHangWithoutRecoveryStrandsJob(t *testing.T) {
	desc := testDesc("k", 2, 64, 10*sim.Microsecond)
	set := makeSet(1, 2, desc, 0, sim.Millisecond)
	cfg := smallConfig() // zero Recovery: disabled
	sys := NewSystem(cfg, set, &fifoPolicy{})
	sys.InstallFaults(&scriptInjector{faults: map[[3]int]gpu.KernelFault{
		{0, 0, 0}: {Outcome: gpu.FaultHang},
	}}, nil)
	sys.Run() // must terminate despite the stranded job (bounded horizon)

	jr := sys.Job(0)
	if jr.Done() || jr.MetDeadline() {
		t.Fatalf("unrecovered hang should strand the job, got %v", jr)
	}
	if sys.Recovery().WatchdogKills != 0 {
		t.Fatal("watchdog fired with recovery disabled")
	}
}

func TestTransientAbortRetries(t *testing.T) {
	desc := testDesc("k", 2, 64, 10*sim.Microsecond)
	set := makeSet(1, 1, desc, 0, sim.Millisecond)
	cfg := smallConfig()
	cfg.Recovery = DefaultRecoveryConfig()
	sys := NewSystem(cfg, set, &fifoPolicy{})
	sys.InstallFaults(&scriptInjector{faults: map[[3]int]gpu.KernelFault{
		{0, 0, 0}: {Outcome: gpu.FaultAbort},
		{0, 0, 1}: {Outcome: gpu.FaultAbort},
	}}, nil)
	sys.Run()

	jr := sys.Job(0)
	if !jr.Done() {
		t.Fatalf("job did not complete: %v", jr)
	}
	st := sys.Recovery()
	if st.Aborts != 2 || st.Retries != 2 {
		t.Fatalf("aborts=%d retries=%d, want 2/2", st.Aborts, st.Retries)
	}
	if jr.FellBack {
		t.Fatal("job fell back despite retries succeeding")
	}
}

func TestAbortWithoutRecoveryCancelsJob(t *testing.T) {
	desc := testDesc("k", 2, 64, 10*sim.Microsecond)
	set := makeSet(1, 1, desc, 0, sim.Millisecond)
	sys := NewSystem(smallConfig(), set, &fifoPolicy{})
	sys.InstallFaults(&scriptInjector{faults: map[[3]int]gpu.KernelFault{
		{0, 0, 0}: {Outcome: gpu.FaultAbort},
	}}, nil)
	sys.Run()

	if jr := sys.Job(0); !jr.Cancelled() {
		t.Fatalf("unrecovered abort should cancel the job, got %v", jr)
	}
}

func TestPersistentHangFallsBackToCPU(t *testing.T) {
	desc := testDesc("k", 2, 64, 10*sim.Microsecond)
	set := makeSet(1, 2, desc, 0, sim.Millisecond)
	cfg := smallConfig()
	cfg.Recovery = DefaultRecoveryConfig()
	sys := NewSystem(cfg, set, &fifoPolicy{})
	// Kernel 0 hangs on every attempt: retries exhaust, CPU completes.
	faults := map[[3]int]gpu.KernelFault{}
	for att := 0; att <= cfg.Recovery.MaxRetries; att++ {
		faults[[3]int{0, 0, att}] = gpu.KernelFault{Outcome: gpu.FaultHang}
	}
	sys.InstallFaults(&scriptInjector{faults: faults}, nil)
	sys.Run()

	jr := sys.Job(0)
	if !jr.Done() {
		t.Fatalf("job did not complete via CPU fallback: %v", jr)
	}
	if !jr.FellBack {
		t.Fatal("FellBack not set")
	}
	st := sys.Recovery()
	if st.Fallbacks != 1 {
		t.Fatalf("Fallbacks = %d, want 1", st.Fallbacks)
	}
	if st.Retries != cfg.Recovery.MaxRetries {
		t.Fatalf("Retries = %d, want %d", st.Retries, cfg.Recovery.MaxRetries)
	}
	if st.WatchdogKills != cfg.Recovery.MaxRetries+1 {
		t.Fatalf("WatchdogKills = %d, want %d", st.WatchdogKills, cfg.Recovery.MaxRetries+1)
	}
	// CPU is slow: the job must finish later than the GPU would have.
	if gpuTime := 2 * 10 * sim.Microsecond; jr.FinishTime <= gpuTime {
		t.Fatalf("fallback finished at %v, implausibly fast", jr.FinishTime)
	}
}

func TestFallbackFreesQueueForWaiters(t *testing.T) {
	desc := testDesc("k", 2, 64, 10*sim.Microsecond)
	set := makeSet(2, 1, desc, 0, sim.Millisecond)
	cfg := smallConfig()
	cfg.NumQueues = 1 // job 1 must wait for job 0's queue
	cfg.Recovery = DefaultRecoveryConfig()
	sys := NewSystem(cfg, set, &fifoPolicy{})
	faults := map[[3]int]gpu.KernelFault{}
	for att := 0; att <= cfg.Recovery.MaxRetries; att++ {
		faults[[3]int{0, 0, att}] = gpu.KernelFault{Outcome: gpu.FaultHang}
	}
	sys.InstallFaults(&scriptInjector{faults: faults}, nil)
	sys.Run()

	j0, j1 := sys.Job(0), sys.Job(1)
	if !j0.Done() || !j0.FellBack {
		t.Fatalf("job 0 should fall back, got %v", j0)
	}
	if !j1.Done() || j1.FellBack {
		t.Fatalf("job 1 should run cleanly on the freed queue, got %v", j1)
	}
	// Job 1 could only bind after job 0 released the single queue, which
	// happens at fallback time, before job 0's (late) CPU completion.
	if j1.FinishTime >= j0.FinishTime {
		t.Fatalf("waiter finished at %v, after the fallback job's %v", j1.FinishTime, j0.FinishTime)
	}
}

func TestSlowFaultRecoversViaProgressAwareWatchdog(t *testing.T) {
	// One WG per CU (full-LDS footprint) × 8 CUs × 4 waves: WG completions
	// land inside every watchdog window even at 8× slowdown, so the
	// progress check must keep re-arming instead of killing.
	cfg := smallConfig()
	cfg.Recovery = DefaultRecoveryConfig()
	desc := testDesc("k", 4*cfg.GPU.NumCUs, 64, 10*sim.Microsecond)
	desc.LDSBytesPerWG = cfg.GPU.LDSBytesPerCU
	set := makeSet(1, 1, desc, 0, 10*sim.Millisecond)
	sys := NewSystem(cfg, set, &fifoPolicy{})
	sys.InstallFaults(&scriptInjector{faults: map[[3]int]gpu.KernelFault{
		{0, 0, 0}: {Outcome: gpu.FaultSlow, SlowFactor: 8},
	}}, nil)
	sys.Run()

	jr := sys.Job(0)
	if !jr.Done() {
		t.Fatalf("slowed job did not complete: %v", jr)
	}
	// 8× slower but progressing: the watchdog must not kill it.
	if st := sys.Recovery(); st.WatchdogKills != 0 {
		t.Fatalf("watchdog killed a progressing kernel (%d kills)", st.WatchdogKills)
	}
	// 4 waves × 80µs each: anything under 320µs means the slowdown was lost.
	if jr.FinishTime < 320*sim.Microsecond {
		t.Fatalf("finished at %v, too fast for an 8× slowdown", jr.FinishTime)
	}
}

func TestScheduledRetirementDegradesDevice(t *testing.T) {
	desc := testDesc("k", 4, 64, 10*sim.Microsecond)
	set := makeSet(1, 1, desc, 0, sim.Millisecond)
	cfg := smallConfig()
	cfg.Recovery = DefaultRecoveryConfig()
	sys := NewSystem(cfg, set, &fifoPolicy{})
	half := cfg.GPU.NumCUs / 2
	sys.InstallFaults(nil, []gpu.Retirement{{At: 0, CUs: half}})
	sys.Run()

	if got := sys.Device().ActiveCUs(); got != cfg.GPU.NumCUs-half {
		t.Fatalf("ActiveCUs = %d, want %d", got, cfg.GPU.NumCUs-half)
	}
	if st := sys.Recovery(); st.RetiredCUs != half {
		t.Fatalf("RetiredCUs = %d, want %d", st.RetiredCUs, half)
	}
	if !sys.Job(0).Done() {
		t.Fatal("job did not complete on the degraded device")
	}
}

func TestHealthyRunUnchangedByRecoveryConfig(t *testing.T) {
	// Recovery armed but no faults injected: job timings must be identical
	// to a plain run — the watchdog must never fire on healthy kernels.
	desc := testDesc("k", 4, 64, 10*sim.Microsecond)
	run := func(recovery bool) sim.Time {
		set := makeSet(3, 3, desc, 5*sim.Microsecond, sim.Millisecond)
		cfg := smallConfig()
		if recovery {
			cfg.Recovery = DefaultRecoveryConfig()
		}
		sys := NewSystem(cfg, set, &fifoPolicy{interval: 100 * sim.Microsecond})
		sys.Run()
		var last sim.Time
		for _, jr := range sys.Jobs() {
			if !jr.Done() {
				t.Fatalf("job stuck: %v", jr)
			}
			if jr.FinishTime > last {
				last = jr.FinishTime
			}
		}
		return last
	}
	if plain, rec := run(false), run(true); plain != rec {
		t.Fatalf("recovery config changed a healthy run: %v vs %v", plain, rec)
	}
}
