package cp

import (
	"context"
	"fmt"
	"sort"

	"laxgpu/internal/core"
	"laxgpu/internal/gpu"
	"laxgpu/internal/obs"
	"laxgpu/internal/sim"
	"laxgpu/internal/workload"
)

// SystemConfig holds the offload-path parameters from §5 of the paper.
type SystemConfig struct {
	GPU gpu.Config

	// NumQueues is the number of hardware compute queues (Table 2: 128).
	// If more jobs are admitted than queues exist, the excess waits on the
	// host until a queue frees.
	NumQueues int

	// ParseStreams and ParseLatency model stream inspection bandwidth: the
	// CP "can parse four streams in parallel every 2 µs" (§5).
	ParseStreams int
	ParseLatency sim.Time

	// PriorityLevels, when positive, quantizes job priorities into that
	// many hardware levels at dispatch time — contemporary GPUs expose
	// only "a limited number of priorities (e.g., high and low)" (§2.2),
	// whereas the paper's proposal assumes the CP can order queues by full
	// laxity values. 0 means unlimited (the paper's design).
	PriorityLevels int

	// Recovery configures the fault watchdog / retry / CPU-fallback
	// machinery. The zero value disables it.
	Recovery RecoveryConfig
}

// DefaultSystemConfig returns the paper's simulated system.
func DefaultSystemConfig() SystemConfig {
	return SystemConfig{
		GPU:          gpu.DefaultConfig(),
		NumQueues:    128,
		ParseStreams: 4,
		ParseLatency: 2 * sim.Microsecond,
	}
}

// System wires a device, a command processor, a policy and a job trace into
// a runnable simulation. It owns all job state transitions.
type System struct {
	cfg SystemConfig
	eng *sim.Engine
	dev *gpu.Device
	pol Policy

	jobs    []*JobRun // by Job.ID
	active  []*JobRun // admitted, unfinished, holding a queue
	hostQ   []*JobRun // admitted, waiting for a free queue
	blocked []*JobRun // waiting on the policy's AdvanceGate

	// orderer is the policy's Orderer interface, type-asserted once at
	// construction so the per-dispatch hot path does no interface probing.
	orderer Orderer

	// orderCache memoizes dispatchOrder for non-Orderer policies. The sort's
	// comparator is a total order (Job.ID tie-break), so its output is a pure
	// function of (active set, priorities, SubmitTimes); SubmitTime and ID
	// are immutable once a job is active, so the cache revalidates by
	// checking membership (orderValid, cleared on every active-set mutation)
	// and comparing each job's Priority against the stamp taken at sort time
	// — O(n) compares instead of an O(n log n) sort per WG completion,
	// robust against priority writes from any policy hook.
	orderCache []*JobRun
	orderPrios []int64
	orderValid bool

	freeQueues []int

	// parserFreeAt models ParseStreams parallel inspection slots.
	parserFreeAt []sim.Time

	// hostFreeAt models the host-side launch pipe for CPU-side policies: a
	// single driver thread issues kernel launches one PerKernelLaunch
	// round trip at a time, shared across every job. This is what caps
	// CPU-side schedulers on many-kernel workloads — the aggregate launch
	// demand can exceed the pipe's bandwidth.
	hostFreeAt sim.Time

	arrivalsLeft   int
	timerArmed     bool
	stallKickArmed bool

	tracer *Tracer

	// probe observes scheduler decisions and kernel lifecycle events. It
	// never influences the simulation: every call site is a pure read of
	// state the run already computed, and a nil probe costs one pointer
	// compare (see the harness golden-equivalence test).
	probe obs.Probe

	// runStarted latches once RunContext begins so observer attachment
	// after the fact is rejected (a tracer or probe attached mid-run would
	// produce a silently truncated record).
	runStarted bool

	// online marks a system driven by StartOnline/SubmitNow instead of a
	// pre-scheduled trace (see online.go). The reprioritization timer then
	// self-arms on the same k·Interval grid sim mode ticks on, so both
	// modes make identical scheduling decisions for identical submissions.
	online bool

	completed int
	rejected  int

	// Fault-recovery state (see recovery.go). wdTable is the recovery-owned
	// Kernel Profiling Table the watchdog derives its timeouts from;
	// wdKernels remembers each kernel desc so capacities can be
	// re-registered after a CU retirement.
	injector        gpu.FaultInjector
	retirements     []gpu.Retirement
	faultsInstalled bool
	recStats        RecoveryStats
	wdTimers        map[*gpu.KernelInstance]*wdEntry
	wdTable         *core.ProfilingTable
	wdKernels       map[string]*gpu.KernelDesc
}

// NewSystem builds a system for the job set under the policy. The job set
// is not mutated; a JobRun is created per job.
func NewSystem(cfg SystemConfig, set *workload.JobSet, pol Policy) *System {
	if cfg.NumQueues <= 0 || cfg.ParseStreams <= 0 {
		panic(fmt.Sprintf("cp: invalid system config %+v", cfg))
	}
	s := &System{
		cfg: cfg,
		eng: sim.NewEngine(),
		pol: pol,
	}
	s.dev = gpu.New(cfg.GPU, s.eng)
	s.dev.OnWGComplete(s.onWGComplete)
	s.dev.OnKernelDone(s.onKernelDone)
	if cfg.Recovery.Watchdog {
		s.dev.EnableWGTracking()
		s.wdTimers = make(map[*gpu.KernelInstance]*wdEntry)
		s.wdTable = core.NewProfilingTable(1)
		s.wdKernels = make(map[string]*gpu.KernelDesc)
	}
	s.parserFreeAt = make([]sim.Time, cfg.ParseStreams)
	s.freeQueues = make([]int, cfg.NumQueues)
	for i := range s.freeQueues {
		s.freeQueues[i] = cfg.NumQueues - 1 - i // pop from the back → queue 0 first
	}
	s.jobs = make([]*JobRun, len(set.Jobs))
	for i, job := range set.Jobs {
		if job.ID != i {
			panic(fmt.Sprintf("cp: job IDs must be dense, got %d at %d", job.ID, i))
		}
		s.jobs[i] = newJobRun(job, -1)
	}
	pol.Attach(s)
	s.orderer, _ = pol.(Orderer)
	return s
}

// Engine returns the simulation engine (policies schedule their own events
// through it).
func (s *System) Engine() *sim.Engine { return s.eng }

// Device returns the GPU model.
func (s *System) Device() *gpu.Device { return s.dev }

// Config returns the system configuration the run was built with.
func (s *System) Config() SystemConfig { return s.cfg }

// Now returns the current simulated time.
func (s *System) Now() sim.Time { return s.eng.Now() }

// Jobs returns every job in the trace (indexed by job ID).
func (s *System) Jobs() []*JobRun { return s.jobs }

// Active returns the jobs currently admitted and unfinished, in arrival
// order. The caller must not retain or mutate the slice across events.
func (s *System) Active() []*JobRun { return s.active }

// Job returns the JobRun for a job ID.
func (s *System) Job(id int) *JobRun { return s.jobs[id] }

// SetTracer installs a structured run tracer (JSON lines). Pass nil to
// disable. Must be called before Run: attaching a tracer to a run already
// in progress would record a trace with no arrivals for in-flight jobs —
// unusable for timeline reconstruction — so it panics instead of producing
// a silently truncated record.
func (s *System) SetTracer(t *Tracer) {
	if s.runStarted {
		panic("cp: SetTracer after Run has started (attach observers before running)")
	}
	s.tracer = t
}

// SetProbe installs a decision probe (see obs.Probe); obs.Multi combines
// several. Pass nil to disable. Like SetTracer, it must be called before
// Run and panics afterwards.
func (s *System) SetProbe(p obs.Probe) {
	if s.runStarted {
		panic("cp: SetProbe after Run has started (attach observers before running)")
	}
	s.probe = p
}

// Probe returns the attached decision probe (nil when none). Policies call
// this from their Admit/Reprioritize hooks to emit decision events.
func (s *System) Probe() obs.Probe { return s.probe }

// Run schedules all arrivals and drives the simulation until every job has
// either completed or been rejected. Runs with faults installed are bounded
// by a horizon well past the last deadline, because an unrecovered hang
// strands its job forever and the event queue would never drain.
func (s *System) Run() {
	s.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: the event loop polls the
// context and stops mid-simulation when it is cancelled, returning the
// context's error. A run that completes naturally returns nil even if the
// context was cancelled at the finish line; a cancelled run leaves the
// system in a consistent but incomplete state and its metrics must be
// discarded.
func (s *System) RunContext(ctx context.Context) error {
	s.runStarted = true
	s.arrivalsLeft = len(s.jobs)
	for _, jr := range s.jobs {
		jr := jr
		s.eng.Schedule(jr.Job.Arrival, func() { s.arrive(jr) })
	}
	s.scheduleRetirements()
	s.armTimer()
	if ctx.Done() != nil {
		s.eng.SetInterrupt(func() bool { return ctx.Err() != nil })
		defer s.eng.SetInterrupt(nil)
	}
	if s.faultsInstalled {
		if horizon := s.faultRunHorizon(); horizon > 0 {
			s.eng.RunUntil(horizon)
			if s.eng.Interrupted() {
				return ctx.Err()
			}
			return nil
		}
	}
	s.eng.Run()
	if s.eng.Interrupted() {
		return ctx.Err()
	}
	return nil
}

// arrive runs the host-side offload decision for a newly arrived job.
func (s *System) arrive(jr *JobRun) {
	s.arrivalsLeft--
	s.tracer.jobEvent("arrive", s.eng.Now(), jr)
	s.probeJob(obs.JobArrive, jr)
	if !s.pol.Admit(jr) {
		jr.state = JobRejected
		s.rejected++
		s.tracer.jobEvent("reject", s.eng.Now(), jr)
		s.probeJob(obs.JobReject, jr)
		return
	}
	jr.SubmitTime = s.eng.Now()
	if len(s.freeQueues) == 0 {
		s.hostQ = append(s.hostQ, jr)
		return
	}
	s.bindQueue(jr)
}

// bindQueue assigns a compute queue and starts stream inspection.
func (s *System) bindQueue(jr *JobRun) {
	n := len(s.freeQueues)
	qid := s.freeQueues[n-1]
	s.freeQueues = s.freeQueues[:n-1]
	jr.QueueID = qid
	for _, inst := range jr.Instances {
		inst.QueueID = qid
	}
	jr.state = JobInit
	s.active = append(s.active, jr)
	s.invalidateOrder()
	s.armTimer()

	// Stream inspection: claim the earliest parser slot.
	slot := 0
	for i, t := range s.parserFreeAt {
		if t < s.parserFreeAt[slot] {
			slot = i
		}
	}
	start := s.eng.Now()
	if s.parserFreeAt[slot] > start {
		start = s.parserFreeAt[slot]
	}
	done := start + s.cfg.ParseLatency
	s.parserFreeAt[slot] = done

	ov := s.pol.Overheads()
	s.eng.Schedule(done+ov.PerJobAdmission, func() {
		s.afterLaunch(func() {
			if jr.state != JobInit { // defensive: policy may have mutated state
				return
			}
			// The policy's AdvanceGate also guards the first kernel
			// (BatchMaker holds new jobs until a batch forms around them).
			if gate, ok := s.pol.(AdvanceGate); ok && !gate.CanAdvance(jr) {
				s.blocked = append(s.blocked, jr)
				return
			}
			s.makeFirstReady(jr)
		})
	})
}

// afterLaunch runs fn once the host launch pipe has issued one kernel
// launch for this policy. CP-side policies (zero PerKernelLaunch) proceed
// immediately; CPU-side policies wait for the shared pipe.
func (s *System) afterLaunch(fn func()) {
	d := s.pol.Overheads().PerKernelLaunch
	if d <= 0 {
		fn()
		return
	}
	start := s.eng.Now()
	if s.hostFreeAt > start {
		start = s.hostFreeAt
	}
	s.hostFreeAt = start + d
	s.eng.Schedule(s.hostFreeAt, fn)
}

// makeFirstReady transitions an inspected job to ready and dispatches.
func (s *System) makeFirstReady(jr *JobRun) {
	jr.state = JobReady
	jr.ReadyTime = s.eng.Now()
	jr.Current().MarkReady(s.eng.Now())
	s.tracer.jobEvent("ready", s.eng.Now(), jr)
	s.probeJob(obs.JobReady, jr)
	s.Dispatch()
}

// onWGComplete refills the device after every workgroup completion.
func (s *System) onWGComplete(inst *gpu.KernelInstance) {
	jr := s.jobs[inst.JobID]
	jr.wgsCompleted++
	if jr.state == JobReady && inst.CompletedWGs() > 0 {
		jr.state = JobRunning
	}
	s.Dispatch()
}

// Cancel preempts an offloaded job and drops its remaining work: in-flight
// WGs drain (their context save is the caller's concern), queued kernels
// never execute, and the compute queue is reclaimed immediately. Terminal
// and rejected jobs are unaffected. Policies use this to stop spending the
// device on jobs that have already missed their deadline.
func (s *System) Cancel(jr *JobRun) {
	switch jr.state {
	case JobDone, JobRejected, JobCancelled, JobPending:
		return
	}
	if cur := jr.Current(); cur != nil {
		s.disarmWatchdog(cur)
	}
	jr.state = JobCancelled
	jr.FinishTime = s.eng.Now()
	s.tracer.jobEvent("cancel", s.eng.Now(), jr)
	s.probeJob(obs.JobCancel, jr)
	jr.Pause() // no further WG dispatch from any of its kernels
	for i, a := range s.active {
		if a == jr {
			s.active = append(s.active[:i], s.active[i+1:]...)
			s.invalidateOrder()
			break
		}
	}
	for i, b := range s.blocked {
		if b == jr {
			s.blocked = append(s.blocked[:i], s.blocked[i+1:]...)
			break
		}
	}
	s.releaseQueue(jr)
	s.Dispatch()
}

// onKernelDone advances the job's kernel chain.
func (s *System) onKernelDone(inst *gpu.KernelInstance) {
	jr := s.jobs[inst.JobID]
	if jr.state == JobCancelled {
		return // draining WGs of a dropped job
	}
	if jr.Current() != inst {
		panic(fmt.Sprintf("cp: out-of-order kernel completion for %v", jr))
	}
	s.tracer.kernelEvent("kernel_done", s.eng.Now(), jr, inst.Desc.Name, inst.Seq)
	if s.probe != nil {
		s.probe.KernelDone(obs.KernelDone{
			At: s.eng.Now(), Job: jr.Job.ID, Queue: jr.QueueID,
			Seq: inst.Seq, Kernel: inst.Desc.Name, Start: inst.StartedAt,
		})
	}
	s.disarmWatchdog(inst)
	jr.cur++
	if jr.Current() == nil {
		s.finish(jr)
		return
	}
	s.tryAdvance(jr)
	s.recheckBlocked()
}

// tryAdvance makes the job's next kernel ready, subject to the policy's
// AdvanceGate and per-kernel launch overhead.
func (s *System) tryAdvance(jr *JobRun) {
	if gate, ok := s.pol.(AdvanceGate); ok && !gate.CanAdvance(jr) {
		s.blocked = append(s.blocked, jr)
		return
	}
	next := jr.Current()
	s.afterLaunch(func() {
		next.MarkReady(s.eng.Now())
		s.Dispatch()
	})
}

// recheckBlocked re-tests gate-blocked jobs (batch groups may have caught
// up).
func (s *System) recheckBlocked() {
	if len(s.blocked) == 0 {
		return
	}
	gate, _ := s.pol.(AdvanceGate)
	still := s.blocked[:0]
	for _, jr := range s.blocked {
		if jr.Done() || jr.Current() == nil {
			continue
		}
		if gate != nil && !gate.CanAdvance(jr) {
			still = append(still, jr)
			continue
		}
		if jr.state == JobInit {
			// First kernel was gated at inspection time (its launch was
			// already issued before the gate blocked it).
			s.makeFirstReady(jr)
			continue
		}
		next := jr.Current()
		s.afterLaunch(func() {
			next.MarkReady(s.eng.Now())
			s.Dispatch()
		})
	}
	s.blocked = still
	s.Dispatch()
}

// finish retires a completed job, frees its queue, and pulls the next
// host-queued job in.
func (s *System) finish(jr *JobRun) {
	jr.state = JobDone
	jr.FinishTime = s.eng.Now()
	s.completed++
	s.tracer.jobEvent("finish", s.eng.Now(), jr)
	s.probeJob(obs.JobFinish, jr)
	for i, a := range s.active {
		if a == jr {
			s.active = append(s.active[:i], s.active[i+1:]...)
			s.invalidateOrder()
			break
		}
	}
	s.releaseQueue(jr)
	s.Dispatch()
}

// releaseQueue returns the job's compute queue to the free pool and binds
// the longest-waiting host-queued job, if any. Safe to call once per job
// (QueueID is cleared).
func (s *System) releaseQueue(jr *JobRun) {
	if jr.QueueID < 0 {
		return
	}
	s.freeQueues = append(s.freeQueues, jr.QueueID)
	jr.QueueID = -1
	if len(s.hostQ) > 0 {
		next := s.hostQ[0]
		s.hostQ = s.hostQ[1:]
		s.bindQueue(next)
	}
}

// Dispatch runs one CP scheduling round: offer active jobs' current kernels
// to the device in policy order, filling WG slots greedily ("LAX issues all
// WGs from the highest priority job[, then] moves on to the next highest
// priority ready job ... until all WG slots are filled", §4.4).
func (s *System) Dispatch() {
	if s.dev.Stalled() {
		if !s.stallKickArmed {
			s.stallKickArmed = true
			s.eng.Schedule(s.dev.StallEndsAt(), func() {
				s.stallKickArmed = false
				s.Dispatch()
			})
		}
		return
	}
	observer, _ := s.pol.(ServeObserver)
	order := s.dispatchOrder()
	for _, jr := range order {
		inst := jr.Current()
		if inst == nil || !inst.Dispatchable() {
			continue
		}
		wasRunning := inst.State() == gpu.KernelRunning
		if s.dev.TryDispatch(inst, -1) > 0 {
			jr.state = JobRunning
			if jr.FirstDispatch < 0 {
				jr.FirstDispatch = s.eng.Now()
			}
			if !wasRunning {
				s.tracer.kernelEvent("kernel_start", s.eng.Now(), jr, inst.Desc.Name, inst.Seq)
				s.probeKernelStart(jr, inst)
				s.armWatchdog(jr, inst)
			}
			if observer != nil {
				observer.Served(jr)
			}
		}
	}
}

// dispatchOrder returns active jobs in dispatch order: the policy's Orderer
// if implemented, else ascending Priority with FIFO (SubmitTime, ID)
// tie-break. With PriorityLevels set, priorities are first quantized into
// that many hardware levels, so fine-grained laxity distinctions collapse
// within a level and FIFO decides — the limitation of contemporary
// priority APIs (§2.2).
func (s *System) dispatchOrder() []*JobRun {
	if s.orderer != nil {
		return s.orderer.Order(s.active)
	}
	if s.orderValid {
		for i, jr := range s.orderCache {
			if jr.Priority != s.orderPrios[i] {
				s.orderValid = false
				break
			}
		}
		if s.orderValid {
			return s.orderCache
		}
	}
	prio := func(j *JobRun) int64 { return j.Priority }
	if s.cfg.PriorityLevels > 0 {
		prio = s.quantizedPriority()
	}
	order := append(s.orderCache[:0], s.active...)
	sort.SliceStable(order, func(a, b int) bool {
		ja, jb := order[a], order[b]
		pa, pb := prio(ja), prio(jb)
		if pa != pb {
			return pa < pb
		}
		if ja.SubmitTime != jb.SubmitTime {
			return ja.SubmitTime < jb.SubmitTime
		}
		return ja.Job.ID < jb.Job.ID
	})
	s.orderCache = order
	s.orderPrios = s.orderPrios[:0]
	for _, jr := range order {
		s.orderPrios = append(s.orderPrios, jr.Priority)
	}
	s.orderValid = true
	return order
}

// invalidateOrder drops the memoized dispatch order. Called on every
// active-set mutation; priority-only changes are caught by the stamp check
// in dispatchOrder instead.
func (s *System) invalidateOrder() { s.orderValid = false }

// quantizedPriority maps the active jobs' raw priorities onto the
// configured number of hardware levels by rank: the most urgent 1/N of the
// span per level. Expired (INF) jobs always land in the lowest level.
func (s *System) quantizedPriority() func(*JobRun) int64 {
	levels := int64(s.cfg.PriorityLevels)
	var lo, hi int64 = 1 << 62, -(1 << 62)
	for _, j := range s.active {
		p := j.Priority
		if p >= int64(sim.Forever)/2 {
			continue // expired jobs pin to the bottom level
		}
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	span := hi - lo
	return func(j *JobRun) int64 {
		if j.Priority >= int64(sim.Forever)/2 {
			return levels // below every real level
		}
		if span <= 0 {
			return 0
		}
		q := (j.Priority - lo) * (levels - 1) / span
		return q
	}
}

// armTimer (re)schedules the policy's reprioritization tick. The timer
// self-disarms when no work remains so the event queue can drain.
//
// In sim mode the timer is armed at t=0 and every re-arm happens inside a
// tick, so ticks always land on the grid iv, 2·iv, 3·iv, …. Online mode must
// tick on the same grid — the profiling-table windows and priority updates
// of the two modes line up only then — but the timer there disarms during
// idle stretches (no trace end is known) and re-arms from SubmitNow at
// arbitrary times, so the online re-arm rounds up to the next grid point
// instead of adding a full interval. Ticks sim mode fires during stretches
// online mode slept through touch no scheduler state: with no completions in
// a window the profiling table keeps its last rates (delta == 0) and there
// are no active jobs to re-rank, so skipping them preserves equivalence.
func (s *System) armTimer() {
	iv := s.pol.Interval()
	if iv <= 0 || s.timerArmed {
		return
	}
	if len(s.active) == 0 && len(s.hostQ) == 0 && s.arrivalsLeft == 0 {
		return
	}
	s.timerArmed = true
	at := s.eng.Now() + iv
	if s.online {
		at = (s.eng.Now()/iv + 1) * iv // next strict grid point
	}
	s.eng.Schedule(at, s.tick)
}

// tick is the reprioritization timer body: run the policy's Algorithm 2 pass
// (a host round trip later for CPU-side policies), re-test gate-blocked
// jobs, dispatch, and re-arm.
func (s *System) tick() {
	s.timerArmed = false
	lat := s.pol.Overheads().PriorityUpdateLatency
	if lat > 0 {
		// CPU-side policies: the decision lands a round trip later.
		s.eng.After(lat, func() {
			s.pol.Reprioritize()
			s.recheckBlocked()
			s.Dispatch()
		})
	} else {
		s.pol.Reprioritize()
		s.recheckBlocked()
		s.Dispatch()
	}
	s.armTimer()
}

// Completed returns the number of jobs that finished (regardless of
// deadline).
func (s *System) Completed() int { return s.completed }

// RejectedCount returns the number of jobs refused by admission control.
func (s *System) RejectedCount() int { return s.rejected }

// HostQueueLen returns the number of admitted jobs waiting for a queue.
func (s *System) HostQueueLen() int { return len(s.hostQ) }

// probeJob emits one job lifecycle event. The event struct is built inside
// the nil guard, so runs without a probe allocate nothing here.
func (s *System) probeJob(kind obs.JobEventKind, jr *JobRun) {
	if s.probe == nil {
		return
	}
	e := obs.JobEvent{
		At: s.eng.Now(), Kind: kind,
		Job: jr.Job.ID, Queue: jr.QueueID, Benchmark: jr.Job.Benchmark,
	}
	switch kind {
	case obs.JobArrive:
		e.Deadline = jr.Job.AbsoluteDeadline()
	case obs.JobFinish:
		e.Met = jr.MetDeadline()
	}
	s.probe.Job(e)
}

// probeKernelStart emits a kernel's first WG dispatch, attaching the
// policy's execution-time prediction when it implements KernelEstimator —
// the pairing half of estimate-accuracy tracking.
func (s *System) probeKernelStart(jr *JobRun, inst *gpu.KernelInstance) {
	if s.probe == nil {
		return
	}
	e := obs.KernelStart{
		At: s.eng.Now(), Job: jr.Job.ID, Queue: jr.QueueID,
		Seq: inst.Seq, Kernel: inst.Desc.Name,
	}
	if est, ok := s.pol.(KernelEstimator); ok {
		if pred, ok := est.EstimateKernelTime(jr); ok {
			e.Predicted, e.HasPrediction = pred, true
		}
	}
	s.probe.KernelStart(e)
}
