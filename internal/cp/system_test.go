package cp

import (
	"context"
	"errors"
	"testing"

	"laxgpu/internal/gpu"
	"laxgpu/internal/sim"
	"laxgpu/internal/workload"
)

// fifoPolicy admits everything at a single priority: pure FIFO.
type fifoPolicy struct {
	sys      *System
	ov       Overheads
	interval sim.Time
	admitFn  func(*JobRun) bool
	reprioFn func()
	ticks    int
}

func (p *fifoPolicy) Name() string         { return "FIFO" }
func (p *fifoPolicy) Attach(s *System)     { p.sys = s }
func (p *fifoPolicy) Interval() sim.Time   { return p.interval }
func (p *fifoPolicy) Overheads() Overheads { return p.ov }
func (p *fifoPolicy) Admit(j *JobRun) bool {
	if p.admitFn != nil {
		return p.admitFn(j)
	}
	return true
}
func (p *fifoPolicy) Reprioritize() {
	p.ticks++
	if p.reprioFn != nil {
		p.reprioFn()
	}
}

func testDesc(name string, wgs, threads int, base sim.Time) *gpu.KernelDesc {
	return &gpu.KernelDesc{
		Name: name, NumWGs: wgs, ThreadsPerWG: threads,
		BaseWGTime: base, MemIntensity: 0, InstPerThread: 10,
	}
}

// makeSet builds a synthetic trace: n jobs, each `chain` kernels of the
// given descriptor, arriving gap apart with the given relative deadline.
func makeSet(n, chain int, desc *gpu.KernelDesc, gap, deadline sim.Time) *workload.JobSet {
	set := &workload.JobSet{Benchmark: "synthetic"}
	for i := 0; i < n; i++ {
		ks := make([]*gpu.KernelDesc, chain)
		for c := range ks {
			ks[c] = desc
		}
		set.Jobs = append(set.Jobs, &workload.Job{
			ID: i, Benchmark: "synthetic",
			Arrival: sim.Time(i) * gap, Deadline: deadline, Kernels: ks,
		})
	}
	return set
}

func smallConfig() SystemConfig {
	cfg := DefaultSystemConfig()
	return cfg
}

func TestSingleJobLifecycle(t *testing.T) {
	desc := testDesc("k", 2, 64, 10*sim.Microsecond)
	set := makeSet(1, 3, desc, 0, sim.Millisecond)
	sys := NewSystem(smallConfig(), set, &fifoPolicy{})
	sys.Run()

	jr := sys.Job(0)
	if !jr.Done() {
		t.Fatalf("job not done: %v", jr)
	}
	// Parse 2µs, then 3 kernels × 10µs (2 WGs run concurrently).
	if want := 32 * sim.Microsecond; jr.FinishTime != want {
		t.Fatalf("finish at %v, want %v", jr.FinishTime, want)
	}
	if !jr.MetDeadline() {
		t.Fatal("deadline missed")
	}
	if jr.Latency() != jr.FinishTime {
		t.Fatalf("latency %v", jr.Latency())
	}
	if jr.WGsCompleted() != 6 {
		t.Fatalf("WGs completed %d, want 6", jr.WGsCompleted())
	}
	if sys.Completed() != 1 || sys.RejectedCount() != 0 {
		t.Fatalf("counts: completed=%d rejected=%d", sys.Completed(), sys.RejectedCount())
	}
}

func TestKernelChainIsSequential(t *testing.T) {
	desc := testDesc("k", 1, 64, 10*sim.Microsecond)
	set := makeSet(1, 5, desc, 0, sim.Millisecond)
	sys := NewSystem(smallConfig(), set, &fifoPolicy{})
	sys.Run()
	jr := sys.Job(0)
	// 5 dependent kernels cannot overlap: 2µs parse + 5×10µs.
	if want := 52 * sim.Microsecond; jr.FinishTime != want {
		t.Fatalf("finish at %v, want %v (kernels must serialize)", jr.FinishTime, want)
	}
	for i := 1; i < len(jr.Instances); i++ {
		if jr.Instances[i].StartedAt < jr.Instances[i-1].FinishedAt {
			t.Fatalf("kernel %d started before %d finished", i, i-1)
		}
	}
}

func TestIndependentJobsOverlap(t *testing.T) {
	desc := testDesc("k", 1, 64, 100*sim.Microsecond)
	set := makeSet(4, 1, desc, 0, sim.Millisecond)
	sys := NewSystem(smallConfig(), set, &fifoPolicy{})
	sys.Run()
	// All four 1-WG kernels fit simultaneously: finish ≈ parse + 100µs,
	// not 400µs. (Arrivals at t=0 share 4 parser slots.)
	for i := 0; i < 4; i++ {
		jr := sys.Job(i)
		if jr.FinishTime > 110*sim.Microsecond {
			t.Fatalf("job %d finished at %v; concurrent jobs should overlap", i, jr.FinishTime)
		}
	}
}

func TestRejectedJobNeverRuns(t *testing.T) {
	desc := testDesc("k", 1, 64, 10*sim.Microsecond)
	set := makeSet(2, 1, desc, 0, sim.Millisecond)
	pol := &fifoPolicy{admitFn: func(j *JobRun) bool { return j.Job.ID != 0 }}
	sys := NewSystem(smallConfig(), set, pol)
	sys.Run()
	if !sys.Job(0).Rejected() {
		t.Fatal("job 0 not rejected")
	}
	if sys.Job(0).WGsCompleted() != 0 {
		t.Fatal("rejected job completed WGs")
	}
	if sys.Job(0).MetDeadline() {
		t.Fatal("rejected job counted as meeting deadline")
	}
	if !sys.Job(1).Done() {
		t.Fatal("admitted job did not finish")
	}
	if sys.RejectedCount() != 1 || sys.Completed() != 1 {
		t.Fatalf("counts wrong: %d/%d", sys.RejectedCount(), sys.Completed())
	}
}

func TestParserBandwidthSerializesInspection(t *testing.T) {
	desc := testDesc("k", 1, 64, sim.Microsecond)
	// 8 simultaneous arrivals through 4 parser slots of 2µs each: jobs 5-8
	// wait for a slot, so their ready times are ≥ 4µs.
	set := makeSet(8, 1, desc, 0, sim.Millisecond)
	sys := NewSystem(smallConfig(), set, &fifoPolicy{})
	sys.Run()
	early, late := 0, 0
	for _, jr := range sys.Jobs() {
		switch jr.ReadyTime {
		case 2 * sim.Microsecond:
			early++
		case 4 * sim.Microsecond:
			late++
		}
	}
	if early != 4 || late != 4 {
		t.Fatalf("parser slots: %d ready at 2µs, %d at 4µs (want 4/4)", early, late)
	}
}

func TestHostQueueWhenQueuesExhausted(t *testing.T) {
	cfg := smallConfig()
	cfg.NumQueues = 2
	desc := testDesc("k", 1, 64, 50*sim.Microsecond)
	set := makeSet(5, 1, desc, 0, 10*sim.Millisecond)
	sys := NewSystem(cfg, set, &fifoPolicy{})
	done := false
	sys.Engine().Schedule(10*sim.Microsecond, func() {
		if sys.HostQueueLen() != 3 {
			t.Errorf("host queue length %d at 10µs, want 3", sys.HostQueueLen())
		}
		done = true
	})
	sys.Run()
	if !done {
		t.Fatal("probe event did not fire")
	}
	for _, jr := range sys.Jobs() {
		if !jr.Done() {
			t.Fatalf("job %d stuck: %v", jr.Job.ID, jr)
		}
	}
	if sys.HostQueueLen() != 0 {
		t.Fatal("host queue not drained")
	}
}

func TestPriorityOrderControlsDispatch(t *testing.T) {
	// One CU-filling kernel per job: strict priority order is observable
	// in completion order.
	cfg := smallConfig()
	cfg.GPU.NumCUs = 1
	desc := testDesc("k", 1, 2560, 100*sim.Microsecond)
	set := makeSet(3, 1, desc, 0, 10*sim.Millisecond)
	pol := &fifoPolicy{}
	sys := NewSystem(cfg, set, pol)
	// Invert priorities at attach time via a scheduled event before any
	// kernel is ready (parse takes 2µs).
	sys.Engine().Schedule(sim.Microsecond, func() {
		for _, jr := range sys.Active() {
			jr.Priority = int64(-jr.Job.ID) // job 2 most urgent
		}
	})
	sys.Run()
	// Job 0 inevitably dispatches first (its ready event fires first), but
	// the freed slot must go to job 2 (most urgent), not job 1 (FIFO).
	j1, j2 := sys.Job(1), sys.Job(2)
	if j2.FinishTime >= j1.FinishTime {
		t.Fatalf("priority ignored: job2 at %v, job1 at %v", j2.FinishTime, j1.FinishTime)
	}
}

func TestPerKernelLaunchOverhead(t *testing.T) {
	desc := testDesc("k", 1, 64, 10*sim.Microsecond)
	set := makeSet(1, 3, desc, 0, sim.Millisecond)
	ov := Overheads{PerKernelLaunch: 4 * sim.Microsecond}
	sys := NewSystem(smallConfig(), set, &fifoPolicy{ov: ov})
	sys.Run()
	// 2µs parse + 3×(4µs launch + 10µs kernel) = 44µs.
	if want := 44 * sim.Microsecond; sys.Job(0).FinishTime != want {
		t.Fatalf("finish at %v, want %v", sys.Job(0).FinishTime, want)
	}
}

func TestPerJobAdmissionOverhead(t *testing.T) {
	desc := testDesc("k", 1, 64, 10*sim.Microsecond)
	set := makeSet(1, 1, desc, 0, sim.Millisecond)
	ov := Overheads{PerJobAdmission: 50 * sim.Microsecond}
	sys := NewSystem(smallConfig(), set, &fifoPolicy{ov: ov})
	sys.Run()
	// 2µs parse + 50µs model + 10µs kernel = 62µs. A 40µs-deadline IPV6
	// job could never make it — the paper's BAY pathology.
	if want := 62 * sim.Microsecond; sys.Job(0).FinishTime != want {
		t.Fatalf("finish at %v, want %v", sys.Job(0).FinishTime, want)
	}
}

func TestReprioritizeTimerRunsAndStops(t *testing.T) {
	desc := testDesc("k", 1, 64, 250*sim.Microsecond)
	set := makeSet(1, 2, desc, 0, 10*sim.Millisecond)
	pol := &fifoPolicy{interval: 100 * sim.Microsecond}
	sys := NewSystem(smallConfig(), set, pol)
	sys.Run()
	// Job runs ~502µs; the timer must tick a handful of times and then
	// stop (Run returned, so the event queue drained).
	if pol.ticks < 4 || pol.ticks > 8 {
		t.Fatalf("timer ticked %d times, want ≈5", pol.ticks)
	}
}

func TestPriorityUpdateLatencyDelaysReprioritize(t *testing.T) {
	desc := testDesc("k", 1, 64, 300*sim.Microsecond)
	set := makeSet(1, 1, desc, 0, 10*sim.Millisecond)
	var fireTimes []sim.Time
	pol := &fifoPolicy{
		interval: 100 * sim.Microsecond,
		ov:       Overheads{PriorityUpdateLatency: 8 * sim.Microsecond},
	}
	var sys *System
	pol.reprioFn = func() { fireTimes = append(fireTimes, sys.Now()) }
	sys = NewSystem(smallConfig(), set, pol)
	sys.Run()
	if len(fireTimes) == 0 {
		t.Fatal("reprioritize never fired")
	}
	if fireTimes[0] != 108*sim.Microsecond {
		t.Fatalf("first reprioritize at %v, want 108µs (100µs tick + 8µs latency)", fireTimes[0])
	}
}

// gatedPolicy blocks job advancement until released — exercises the
// AdvanceGate path BatchMaker uses.
type gatedPolicy struct {
	fifoPolicy
	open bool
}

func (p *gatedPolicy) CanAdvance(j *JobRun) bool { return p.open }

func TestAdvanceGateHoldsKernelChain(t *testing.T) {
	desc := testDesc("k", 1, 64, 10*sim.Microsecond)
	set := makeSet(1, 2, desc, 0, 10*sim.Millisecond)
	pol := &gatedPolicy{fifoPolicy: fifoPolicy{interval: 100 * sim.Microsecond}}
	pol.reprioFn = func() { pol.open = true } // open the gate at first tick
	sys := NewSystem(smallConfig(), set, pol)
	sys.Run()
	jr := sys.Job(0)
	// The gate holds even the first kernel: both kernels wait for the gate
	// to open at the 100µs tick, then run back to back (100→110→120µs).
	if want := 120 * sim.Microsecond; jr.FinishTime != want {
		t.Fatalf("finish at %v, want %v (gate must hold the chain)", jr.FinishTime, want)
	}
}

// rotPolicy implements Orderer with a fixed reversed order.
type rotPolicy struct{ fifoPolicy }

func (p *rotPolicy) Order(active []*JobRun) []*JobRun {
	out := make([]*JobRun, len(active))
	for i, j := range active {
		out[len(active)-1-i] = j
	}
	return out
}

func TestOrdererOverridesPrioritySort(t *testing.T) {
	cfg := smallConfig()
	cfg.GPU.NumCUs = 1
	desc := testDesc("k", 1, 2560, 100*sim.Microsecond)
	set := makeSet(3, 1, desc, 0, 10*sim.Millisecond)
	sys := NewSystem(cfg, set, &rotPolicy{})
	sys.Run()
	// Job 0 wins the initial slot (ready-event order), but reversal must
	// put job 2 ahead of job 1 for the next slot despite equal priorities.
	if sys.Job(2).FinishTime >= sys.Job(1).FinishTime {
		t.Fatalf("orderer ignored: job2 at %v, job1 at %v",
			sys.Job(2).FinishTime, sys.Job(1).FinishTime)
	}
}

func TestPauseResume(t *testing.T) {
	cfg := smallConfig()
	desc := testDesc("k", 4, 64, 50*sim.Microsecond)
	set := makeSet(1, 2, desc, 0, 10*sim.Millisecond)
	pol := &fifoPolicy{}
	sys := NewSystem(cfg, set, pol)
	sys.Engine().Schedule(sim.Microsecond, func() {
		sys.Job(0).Pause()
		if !sys.Job(0).Paused() {
			t.Error("job not paused")
		}
	})
	sys.Engine().Schedule(200*sim.Microsecond, func() {
		sys.Job(0).Resume()
		sys.Dispatch()
	})
	sys.Run()
	jr := sys.Job(0)
	if jr.FinishTime < 300*sim.Microsecond {
		t.Fatalf("finish at %v; pause was not honored", jr.FinishTime)
	}
	if !jr.Done() {
		t.Fatal("job never finished after resume")
	}
}

func TestDeviceStallDefersDispatch(t *testing.T) {
	desc := testDesc("k", 1, 64, 10*sim.Microsecond)
	set := makeSet(1, 1, desc, 0, 10*sim.Millisecond)
	sys := NewSystem(smallConfig(), set, &fifoPolicy{})
	sys.Engine().Schedule(0, func() { sys.Device().Stall(100 * sim.Microsecond) })
	sys.Run()
	// Parse at 2µs, but dispatch blocked until 100µs.
	if want := 110 * sim.Microsecond; sys.Job(0).FinishTime != want {
		t.Fatalf("finish at %v, want %v", sys.Job(0).FinishTime, want)
	}
}

func TestWGListViews(t *testing.T) {
	desc := testDesc("k", 3, 64, 10*sim.Microsecond)
	set := makeSet(1, 2, desc, 0, 10*sim.Millisecond)
	sys := NewSystem(smallConfig(), set, &fifoPolicy{})
	jr := sys.Job(0)
	total := jr.TotalWGList()
	if len(total) != 2 || total[0].WGs != 3 || total[0].Kernel != "k" {
		t.Fatalf("TotalWGList = %v", total)
	}
	probed := false
	sys.Engine().Schedule(7*sim.Microsecond, func() {
		// At 7µs: kernel 0 dispatched at 2µs, finishes at 12µs; remaining
		// list must still show all 6 WGs (none completed yet).
		rem := jr.RemainingWGList()
		n := 0
		for _, e := range rem {
			n += e.WGs
		}
		if n != 6 {
			t.Errorf("remaining WGs = %d at 7µs, want 6", n)
		}
		probed = true
	})
	sys.Run()
	if !probed {
		t.Fatal("probe did not fire")
	}
	if len(jr.RemainingWGList()) != 0 {
		t.Fatal("remaining WGList non-empty after completion")
	}
}

func TestJobStateStrings(t *testing.T) {
	want := map[JobState]string{
		JobPending: "pending", JobInit: "init", JobReady: "ready",
		JobRunning: "running", JobDone: "done", JobRejected: "rejected",
		JobCancelled: "cancelled", JobState(17): "JobState(17)",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), w)
		}
	}
}

func TestLateArrivalRearmsTimer(t *testing.T) {
	desc := testDesc("k", 1, 64, 10*sim.Microsecond)
	set := &workload.JobSet{Benchmark: "synthetic"}
	set.Jobs = append(set.Jobs,
		&workload.Job{ID: 0, Arrival: 0, Deadline: sim.Millisecond, Kernels: []*gpu.KernelDesc{desc}},
		// Arrives long after job 0 finished and the timer disarmed.
		&workload.Job{ID: 1, Arrival: 5 * sim.Millisecond, Deadline: sim.Millisecond, Kernels: []*gpu.KernelDesc{desc}},
	)
	pol := &fifoPolicy{interval: 100 * sim.Microsecond}
	sys := NewSystem(smallConfig(), set, pol)
	sys.Run()
	if !sys.Job(1).Done() {
		t.Fatal("late job did not finish")
	}
}

func TestPriorityQuantizationCollapsesLevels(t *testing.T) {
	// One CU; three jobs with priorities 10, 20, 1000. With 2 hardware
	// levels, 10 and 20 fall into the same level so FIFO decides between
	// them, while 1000 stays behind.
	cfg := smallConfig()
	cfg.GPU.NumCUs = 1
	cfg.PriorityLevels = 2
	desc := testDesc("k", 1, 2560, 100*sim.Microsecond)
	set := makeSet(3, 1, desc, 0, 10*sim.Millisecond)
	sys := NewSystem(cfg, set, &fifoPolicy{})
	sys.Engine().Schedule(sim.Microsecond, func() {
		prios := []int64{20, 10, 1000}
		for i, jr := range sys.Active() {
			jr.Priority = prios[i]
		}
	})
	sys.Run()
	// Unquantized, job 1 (prio 10) would beat job 0 (prio 20) for the slot
	// freed at 102µs. Quantized to 2 levels they tie, so FIFO runs job 1
	// after job 0... job 0 was dispatched first anyway; the observable
	// contract: job 2 (prio 1000, lowest level) runs LAST.
	j2 := sys.Job(2)
	for i := 0; i < 2; i++ {
		if sys.Job(i).FinishTime >= j2.FinishTime {
			t.Fatalf("low-priority job 2 (at %v) did not run last (job %d at %v)",
				j2.FinishTime, i, sys.Job(i).FinishTime)
		}
	}
	// And within the top level, FIFO order rules despite job 1's better
	// raw priority: job 1 (submitted later... same time, ID order) — the
	// key assertion is ordering by ID among quantized ties:
	if sys.Job(1).FinishTime < sys.Job(0).FinishTime {
		t.Fatalf("quantized tie broke by raw priority, not FIFO")
	}
}

func TestPriorityQuantizationExpiredJobsBottom(t *testing.T) {
	cfg := smallConfig()
	cfg.GPU.NumCUs = 1
	cfg.PriorityLevels = 4
	desc := testDesc("k", 1, 2560, 50*sim.Microsecond)
	set := makeSet(2, 1, desc, 0, 10*sim.Millisecond)
	sys := NewSystem(cfg, set, &fifoPolicy{})
	sys.Engine().Schedule(sim.Microsecond, func() {
		if len(sys.Active()) == 2 {
			sys.Active()[0].Priority = int64(sim.Forever) // expired
			sys.Active()[1].Priority = 5
		}
	})
	sys.Run()
	// Job 0 grabbed the device at 2µs (before priorities were set); the
	// expired marking affects the next grant: job 1 must not be delayed
	// beyond one service time.
	if sys.Job(1).FinishTime > 110*sim.Microsecond {
		t.Fatalf("live job starved behind expired job: %v", sys.Job(1).FinishTime)
	}
}

func TestHostLaunchPipeSerializesAcrossJobs(t *testing.T) {
	// Two jobs, chains of 3 kernels, CPU-side policy: 6 launches share one
	// 4µs pipe. The last kernel launch cannot have been issued before
	// 6×4µs of pipe time has elapsed (plus parse), observable as a minimum
	// finish time for the second job.
	desc := testDesc("k", 1, 64, sim.Microsecond)
	set := makeSet(2, 3, desc, 0, 10*sim.Millisecond)
	ov := Overheads{PerKernelLaunch: 4 * sim.Microsecond}
	sys := NewSystem(smallConfig(), set, &fifoPolicy{ov: ov})
	sys.Run()
	// Serial pipe: launches at 6,10,14,18,22,26µs (parse ends 2µs);
	// kernels take 1µs after their launch. Last finish ≥ 27µs. A parallel
	// (per-job) model would finish both by ~2+3×5=17µs.
	latest := sys.Job(0).FinishTime
	if sys.Job(1).FinishTime > latest {
		latest = sys.Job(1).FinishTime
	}
	if latest < 27*sim.Microsecond {
		t.Fatalf("last finish %v; host launch pipe not serialized across jobs", latest)
	}
}

func TestHostQueueRequeueBindsWaitersInFIFOOrder(t *testing.T) {
	// One hardware queue, four jobs: each waiter must bind the queue only
	// after the previous holder released it, in arrival (FIFO) order, and
	// the single queue ID must be recycled through every job.
	cfg := smallConfig()
	cfg.NumQueues = 1
	desc := testDesc("k", 1, 64, 50*sim.Microsecond)
	set := makeSet(4, 2, desc, sim.Microsecond, 10*sim.Millisecond)
	sys := NewSystem(cfg, set, &fifoPolicy{})
	sys.Run()

	var prevFinish sim.Time
	for i, jr := range sys.Jobs() {
		if !jr.Done() {
			t.Fatalf("job %d stuck: %v", i, jr)
		}
		if i > 0 {
			// The waiter could not even begin inspection before its
			// predecessor finished and released the queue.
			if jr.ReadyTime < prevFinish {
				t.Fatalf("job %d ready at %v, before job %d finished at %v",
					i, jr.ReadyTime, i-1, prevFinish)
			}
		}
		prevFinish = jr.FinishTime
	}
	if sys.HostQueueLen() != 0 {
		t.Fatalf("host queue length %d after run, want 0", sys.HostQueueLen())
	}
}

func TestHostQueueRequeueAfterCancel(t *testing.T) {
	// A cancelled job must release its queue to the host-queued waiter just
	// like a finished one: cancel the long-running queue holder mid-flight
	// and check the waiter binds, runs and completes.
	cfg := smallConfig()
	cfg.NumQueues = 1
	long := testDesc("long", 4, 64, 500*sim.Microsecond)
	short := testDesc("short", 1, 64, 10*sim.Microsecond)
	set := makeSet(2, 1, long, 0, 10*sim.Millisecond)
	set.Jobs[1].Kernels = []*gpu.KernelDesc{short}
	sys := NewSystem(cfg, set, &fifoPolicy{})
	sys.Engine().Schedule(100*sim.Microsecond, func() {
		if sys.HostQueueLen() != 1 {
			t.Errorf("host queue length %d at 100µs, want 1", sys.HostQueueLen())
		}
		sys.Cancel(sys.Job(0))
	})
	sys.Run()

	j0, j1 := sys.Job(0), sys.Job(1)
	if !j0.Cancelled() {
		t.Fatalf("job 0 not cancelled: %v", j0)
	}
	if !j1.Done() {
		t.Fatalf("waiter never ran after cancel freed the queue: %v", j1)
	}
	// The waiter bound at cancel time (100µs), parsed 2µs, ran 10µs.
	if j1.FinishTime < 112*sim.Microsecond || j1.FinishTime > 200*sim.Microsecond {
		t.Fatalf("waiter finished at %v, want shortly after the 100µs cancel", j1.FinishTime)
	}
	if sys.HostQueueLen() != 0 {
		t.Fatal("host queue not drained")
	}
}

func TestRunContextCancellation(t *testing.T) {
	desc := testDesc("k", 4, 64, 10*sim.Microsecond)
	set := makeSet(64, 4, desc, 5*sim.Microsecond, 10*sim.Millisecond)
	retired := func(s *System) int {
		n := 0
		for _, jr := range s.Jobs() {
			if jr.Done() || jr.Rejected() || jr.Cancelled() {
				n++
			}
		}
		return n
	}

	// A cancelled context stops the run mid-simulation with ctx.Err().
	sys := NewSystem(DefaultSystemConfig(), set, &fifoPolicy{interval: sim.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sys.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if retired(sys) == len(sys.Jobs()) {
		t.Fatal("cancelled run still retired every job")
	}

	// A run that completes naturally returns nil even with a cancellable
	// context attached, and matches the plain Run path job for job.
	sys2 := NewSystem(DefaultSystemConfig(), set, &fifoPolicy{interval: sim.Millisecond})
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	if err := sys2.RunContext(ctx2); err != nil {
		t.Fatalf("live-context run returned %v", err)
	}
	sys3 := NewSystem(DefaultSystemConfig(), set, &fifoPolicy{interval: sim.Millisecond})
	sys3.Run()
	if retired(sys2) != len(set.Jobs) || retired(sys3) != len(set.Jobs) {
		t.Fatalf("complete runs retired %d and %d of %d jobs",
			retired(sys2), retired(sys3), len(set.Jobs))
	}
	for i, jr := range sys2.Jobs() {
		other := sys3.Jobs()[i]
		if jr.State() != other.State() || jr.MetDeadline() != other.MetDeadline() {
			t.Fatalf("job %d diverged between RunContext and Run: %v vs %v", i, jr, other)
		}
	}
}
