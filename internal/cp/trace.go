package cp

import (
	"encoding/json"
	"fmt"
	"io"

	"laxgpu/internal/obs"
	"laxgpu/internal/sim"
)

// TraceEvent is one line of a structured run trace: the job-level schedule
// a simulation produced, suitable for timeline visualization or offline
// analysis. Events are encoded as JSON lines.
type TraceEvent struct {
	// At is the event time in nanoseconds from simulation start.
	At int64 `json:"at_ns"`

	// Kind is one of "arrive", "reject", "ready", "kernel_start",
	// "kernel_done", "finish", "cancel".
	Kind string `json:"kind"`

	JobID     int    `json:"job"`
	Benchmark string `json:"benchmark,omitempty"`
	QueueID   int    `json:"queue,omitempty"`

	// Kernel and KernelIdx identify the kernel for kernel_* events.
	Kernel    string `json:"kernel,omitempty"`
	KernelIdx int    `json:"kernel_idx,omitempty"`

	// Deadline is the job's absolute deadline (arrive events).
	Deadline int64 `json:"deadline_ns,omitempty"`

	// Met reports deadline success (finish events).
	Met bool `json:"met,omitempty"`
}

// Tracer collects TraceEvents during a run. A nil Tracer is inert, so call
// sites need no guards.
//
// The first write error latches (Err) and stops further writes, but the
// tracer keeps counting the events it could not record (Dropped), so a
// truncated trace is detectable: a run is fully recorded iff Err() == nil,
// and Events()+Dropped() is the number the run emitted either way.
type Tracer struct {
	w      io.Writer
	enc    *json.Encoder
	events int
	latch  obs.ErrorLatch
}

// NewTracer returns a tracer writing JSON lines to w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, enc: json.NewEncoder(w)}
}

// Events returns the number of events emitted.
func (t *Tracer) Events() int {
	if t == nil {
		return 0
	}
	return t.events
}

// Err returns the first write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	return t.latch.Err()
}

// Dropped returns the number of events lost after the first write error.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	return t.latch.Dropped()
}

func (t *Tracer) emit(e TraceEvent) {
	if t == nil {
		return
	}
	if t.latch.Failed() {
		t.latch.CountDropped()
		return
	}
	if err := t.enc.Encode(e); err != nil {
		t.latch.Latch(fmt.Errorf("cp: trace write: %w", err))
		t.latch.CountDropped()
		return
	}
	t.events++
}

// jobEvent emits a job-level event.
func (t *Tracer) jobEvent(kind string, now sim.Time, jr *JobRun) {
	if t == nil {
		return
	}
	e := TraceEvent{
		At: int64(now), Kind: kind,
		JobID: jr.Job.ID, Benchmark: jr.Job.Benchmark, QueueID: jr.QueueID,
	}
	switch kind {
	case "arrive":
		e.Deadline = int64(jr.Job.AbsoluteDeadline())
	case "finish":
		e.Met = jr.MetDeadline()
	}
	t.emit(e)
}

// kernelEvent emits a kernel-level event.
func (t *Tracer) kernelEvent(kind string, now sim.Time, jr *JobRun, kernel string, idx int) {
	if t == nil {
		return
	}
	t.emit(TraceEvent{
		At: int64(now), Kind: kind,
		JobID: jr.Job.ID, QueueID: jr.QueueID,
		Kernel: kernel, KernelIdx: idx,
	})
}
