package cp

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"laxgpu/internal/sim"
)

func runTracedSystem(t *testing.T, pol Policy, n, chain int) (*System, []TraceEvent) {
	t.Helper()
	desc := testDesc("k", 2, 64, 10*sim.Microsecond)
	set := makeSet(n, chain, desc, 20*sim.Microsecond, sim.Millisecond)
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	sys := NewSystem(smallConfig(), set, pol)
	sys.SetTracer(tr)
	sys.Run()
	if tr.Err() != nil {
		t.Fatal(tr.Err())
	}
	var events []TraceEvent
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if tr.Events() != len(events) {
		t.Fatalf("tracer counted %d events, decoded %d", tr.Events(), len(events))
	}
	return sys, events
}

func TestTraceCoversJobLifecycle(t *testing.T) {
	_, events := runTracedSystem(t, &fifoPolicy{}, 3, 2)
	counts := map[string]int{}
	for _, e := range events {
		counts[e.Kind]++
	}
	if counts["arrive"] != 3 || counts["ready"] != 3 || counts["finish"] != 3 {
		t.Fatalf("lifecycle counts wrong: %v", counts)
	}
	if counts["kernel_start"] != 6 || counts["kernel_done"] != 6 {
		t.Fatalf("kernel counts wrong: %v", counts)
	}
}

func TestTraceEventsOrderedAndConsistent(t *testing.T) {
	_, events := runTracedSystem(t, &fifoPolicy{}, 4, 3)
	var last int64 = -1
	starts := map[int]int{} // job → kernel_start count
	dones := map[int]int{}
	for _, e := range events {
		if e.At < last {
			t.Fatalf("trace times regressed: %d after %d", e.At, last)
		}
		last = e.At
		switch e.Kind {
		case "kernel_start":
			starts[e.JobID]++
			// A kernel can only start after at least as many dones as its
			// index (sequential chain).
			if e.KernelIdx > dones[e.JobID] {
				t.Fatalf("kernel %d of job %d started before predecessor finished", e.KernelIdx, e.JobID)
			}
		case "kernel_done":
			dones[e.JobID]++
		}
	}
	for job, n := range starts {
		if n != 3 || dones[job] != 3 {
			t.Fatalf("job %d: %d starts, %d dones (want 3/3)", job, n, dones[job])
		}
	}
}

func TestTraceRejectAndCancelEvents(t *testing.T) {
	pol := &fifoPolicy{admitFn: func(j *JobRun) bool { return j.Job.ID != 0 }}
	desc := testDesc("k", 2, 64, 100*sim.Microsecond)
	set := makeSet(3, 2, desc, 0, sim.Millisecond)
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	sys := NewSystem(smallConfig(), set, pol)
	sys.SetTracer(tr)
	// Cancel job 2 mid-flight.
	sys.Engine().Schedule(50*sim.Microsecond, func() { sys.Cancel(sys.Job(2)) })
	sys.Run()
	out := buf.String()
	if !strings.Contains(out, `"kind":"reject"`) {
		t.Fatal("no reject event")
	}
	if !strings.Contains(out, `"kind":"cancel"`) {
		t.Fatal("no cancel event")
	}
	if !sys.Job(2).Cancelled() {
		t.Fatal("job 2 not cancelled")
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Events() != 0 || tr.Err() != nil {
		t.Fatal("nil tracer not inert")
	}
	// A system without a tracer must run normally (implicitly covered by
	// every other test, but make the nil-dispatch path explicit).
	desc := testDesc("k", 1, 64, sim.Microsecond)
	sys := NewSystem(smallConfig(), makeSet(1, 1, desc, 0, sim.Millisecond), &fifoPolicy{})
	sys.SetTracer(nil)
	sys.Run()
	if !sys.Job(0).Done() {
		t.Fatal("run without tracer failed")
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > 2 {
		return 0, bytes.ErrTooLarge
	}
	return len(p), nil
}

func TestTracerSurfacesWriteErrors(t *testing.T) {
	tr := NewTracer(&failWriter{})
	desc := testDesc("k", 1, 64, sim.Microsecond)
	sys := NewSystem(smallConfig(), makeSet(3, 1, desc, 0, sim.Millisecond), &fifoPolicy{})
	sys.SetTracer(tr)
	sys.Run()
	if tr.Err() == nil {
		t.Fatal("write error not surfaced")
	}
	// The simulation itself must be unaffected.
	for _, j := range sys.Jobs() {
		if !j.Done() {
			t.Fatal("run corrupted by tracer failure")
		}
	}
}

// TestTracerCountsDroppedEvents pins the truncation contract: after the
// first write error the tracer stops writing but keeps counting, so
// Events()+Dropped() equals what an unbroken writer would have recorded.
func TestTracerCountsDroppedEvents(t *testing.T) {
	run := func(tr *Tracer) {
		desc := testDesc("k", 1, 64, sim.Microsecond)
		sys := NewSystem(smallConfig(), makeSet(3, 1, desc, 0, sim.Millisecond), &fifoPolicy{})
		sys.SetTracer(tr)
		sys.Run()
	}
	var buf bytes.Buffer
	healthy := NewTracer(&buf)
	run(healthy)
	if healthy.Dropped() != 0 {
		t.Fatalf("healthy tracer dropped %d events", healthy.Dropped())
	}

	// The failing writer accepts 2 events, then errors forever.
	broken := NewTracer(&failWriter{})
	run(broken)
	if broken.Err() == nil {
		t.Fatal("write error not latched")
	}
	if broken.Events() != 2 {
		t.Fatalf("broken tracer recorded %d events, want 2", broken.Events())
	}
	if want := healthy.Events() - broken.Events(); broken.Dropped() != want {
		t.Fatalf("dropped = %d, want %d (total %d − recorded %d)",
			broken.Dropped(), want, healthy.Events(), broken.Events())
	}
	var nilTr *Tracer
	if nilTr.Dropped() != 0 {
		t.Fatal("nil tracer must report zero dropped events")
	}
}

func TestCancelLifecycle(t *testing.T) {
	desc := testDesc("k", 2, 64, 100*sim.Microsecond)
	set := makeSet(2, 3, desc, 0, 10*sim.Millisecond)
	sys := NewSystem(smallConfig(), set, &fifoPolicy{})
	sys.Engine().Schedule(150*sim.Microsecond, func() {
		sys.Cancel(sys.Job(0))
		// Cancelling twice is a no-op.
		sys.Cancel(sys.Job(0))
	})
	sys.Run()
	j0, j1 := sys.Job(0), sys.Job(1)
	if !j0.Cancelled() {
		t.Fatalf("job 0 state %v, want cancelled", j0.State())
	}
	if j0.MetDeadline() {
		t.Fatal("cancelled job counted as meeting deadline")
	}
	if j0.WGsCompleted() >= 6 {
		t.Fatalf("cancelled job completed all %d WGs", j0.WGsCompleted())
	}
	if !j1.Done() {
		t.Fatal("surviving job did not finish")
	}
	// The cancelled job's queue must have been reclaimed (system drains).
	if len(sys.Active()) != 0 {
		t.Fatal("active list not drained")
	}
	// Cancelling terminal jobs is a no-op.
	sys.Cancel(j1)
	if !j1.Done() {
		t.Fatal("Cancel clobbered a done job")
	}
}

func TestCancelReleasesQueueToHostQueue(t *testing.T) {
	cfg := smallConfig()
	cfg.NumQueues = 1
	desc := testDesc("k", 1, 64, 500*sim.Microsecond)
	set := makeSet(2, 1, desc, 0, 10*sim.Millisecond)
	sys := NewSystem(cfg, set, &fifoPolicy{})
	sys.Engine().Schedule(100*sim.Microsecond, func() {
		if sys.HostQueueLen() != 1 {
			t.Errorf("host queue %d, want 1", sys.HostQueueLen())
		}
		sys.Cancel(sys.Job(0))
	})
	sys.Run()
	if !sys.Job(1).Done() {
		t.Fatal("queued job never got the reclaimed queue")
	}
}
