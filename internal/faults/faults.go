// Package faults defines deterministic fault plans for the offload path: a
// seeded, order-independent assignment of hang / transient-abort / slowdown
// outcomes to kernel execution attempts, plus scheduled compute-unit
// retirements. Plans plug into the GPU model through gpu.FaultInjector; the
// command processor's watchdog and CPU fallback (internal/cp) provide the
// recovery half.
//
// Determinism is the point: a Plan draws each attempt's fate from a hash of
// (seed, jobID, seq, attempt), never from a shared mutable RNG stream, so the
// same seed and spec yield byte-identical fault decisions regardless of the
// order in which the simulator asks — and every scheduler compared in a sweep
// faces exactly the same adversity.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"laxgpu/internal/gpu"
	"laxgpu/internal/sim"
)

// Spec is a parsed fault specification.
type Spec struct {
	// HangProb, AbortProb, SlowProb are per-kernel-attempt probabilities of
	// each outcome; they must sum to at most 1. A single uniform draw per
	// attempt is partitioned between them, so the outcomes are mutually
	// exclusive by construction.
	HangProb  float64
	AbortProb float64
	SlowProb  float64

	// SlowFactor is the WG-latency multiplier applied to FaultSlow attempts
	// (> 1; default 4 when a slow probability is given without a factor).
	SlowFactor float64

	// Retirements are scheduled permanent CU losses.
	Retirements []gpu.Retirement

	// Recover enables the CP watchdog + retry + CPU-fallback machinery.
	// Defaults to true; "recover=off" measures raw fault damage.
	Recover bool
}

// Zero reports whether the spec injects nothing at all.
func (s Spec) Zero() bool {
	return s.HangProb == 0 && s.AbortProb == 0 && s.SlowProb == 0 && len(s.Retirements) == 0
}

// String renders the spec in the canonical parseable form.
func (s Spec) String() string {
	var parts []string
	if s.HangProb > 0 {
		parts = append(parts, fmt.Sprintf("hang=%g", s.HangProb))
	}
	if s.AbortProb > 0 {
		parts = append(parts, fmt.Sprintf("abort=%g", s.AbortProb))
	}
	if s.SlowProb > 0 {
		parts = append(parts, fmt.Sprintf("slow=%gx%g", s.SlowProb, s.SlowFactor))
	}
	for _, r := range s.Retirements {
		parts = append(parts, fmt.Sprintf("retire=%d@%s", r.CUs, r.At.Duration()))
	}
	if !s.Recover {
		parts = append(parts, "recover=off")
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses a comma-separated fault specification:
//
//	hang=P        per-attempt hang probability in [0,1]
//	abort=P       per-attempt transient-abort probability in [0,1]
//	slow=P or     per-attempt slowdown probability, latency ×4
//	slow=PxF      ... with an explicit factor F > 1
//	retire=N@D    N CUs retire at simulated time D (e.g. 4@2ms); repeatable
//	recover=on|off  enable/disable CP recovery (default on)
//
// The empty string parses to the zero Spec (recovery on, nothing injected).
func ParseSpec(s string) (Spec, error) {
	spec := Spec{Recover: true}
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Spec{}, fmt.Errorf("faults: %q is not key=value", field)
		}
		switch key {
		case "hang":
			p, err := parseProb(val)
			if err != nil {
				return Spec{}, fmt.Errorf("faults: hang: %v", err)
			}
			spec.HangProb = p
		case "abort":
			p, err := parseProb(val)
			if err != nil {
				return Spec{}, fmt.Errorf("faults: abort: %v", err)
			}
			spec.AbortProb = p
		case "slow":
			probStr, factorStr, hasFactor := strings.Cut(val, "x")
			p, err := parseProb(probStr)
			if err != nil {
				return Spec{}, fmt.Errorf("faults: slow: %v", err)
			}
			spec.SlowProb = p
			spec.SlowFactor = 4
			if hasFactor {
				f, err := strconv.ParseFloat(factorStr, 64)
				if err != nil || f <= 1 {
					return Spec{}, fmt.Errorf("faults: slow factor %q must be a number > 1", factorStr)
				}
				spec.SlowFactor = f
			}
		case "retire":
			cuStr, atStr, ok := strings.Cut(val, "@")
			if !ok {
				return Spec{}, fmt.Errorf("faults: retire %q is not N@duration", val)
			}
			n, err := strconv.Atoi(cuStr)
			if err != nil || n <= 0 {
				return Spec{}, fmt.Errorf("faults: retire count %q must be a positive integer", cuStr)
			}
			d, err := time.ParseDuration(atStr)
			if err != nil || d < 0 {
				return Spec{}, fmt.Errorf("faults: retire time %q must be a non-negative duration", atStr)
			}
			spec.Retirements = append(spec.Retirements, gpu.Retirement{At: sim.FromDuration(d), CUs: n})
		case "recover":
			switch val {
			case "on":
				spec.Recover = true
			case "off":
				spec.Recover = false
			default:
				return Spec{}, fmt.Errorf("faults: recover=%q must be on or off", val)
			}
		default:
			return Spec{}, fmt.Errorf("faults: unknown key %q (want hang/abort/slow/retire/recover)", key)
		}
	}
	if sum := spec.HangProb + spec.AbortProb + spec.SlowProb; sum > 1 {
		return Spec{}, fmt.Errorf("faults: probabilities sum to %g > 1", sum)
	}
	sort.SliceStable(spec.Retirements, func(i, j int) bool {
		return spec.Retirements[i].At < spec.Retirements[j].At
	})
	return spec, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil || p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %q must be in [0,1]", s)
	}
	return p, nil
}

// Plan is a concrete, seeded instance of a Spec. It implements
// gpu.FaultInjector and records an event trace for reproducibility checks.
type Plan struct {
	spec Spec
	seed int64

	trace []string
}

// NewPlan seeds a plan. Two plans with the same spec and seed make
// identical decisions for every (jobID, seq, attempt).
func NewPlan(spec Spec, seed int64) *Plan {
	return &Plan{spec: spec, seed: seed}
}

// Spec returns the plan's specification.
func (p *Plan) Spec() Spec { return p.spec }

// KernelLaunch implements gpu.FaultInjector. One uniform draw per attempt,
// hashed from (seed, jobID, seq, attempt), is partitioned into
// [0,hang) → hang, [hang,hang+abort) → abort, […,+slow) → slow, else none.
func (p *Plan) KernelLaunch(now sim.Time, jobID, seq, attempt int) gpu.KernelFault {
	u := p.uniform(jobID, seq, attempt)
	var f gpu.KernelFault
	switch {
	case u < p.spec.HangProb:
		f = gpu.KernelFault{Outcome: gpu.FaultHang}
	case u < p.spec.HangProb+p.spec.AbortProb:
		f = gpu.KernelFault{Outcome: gpu.FaultAbort}
	case u < p.spec.HangProb+p.spec.AbortProb+p.spec.SlowProb:
		f = gpu.KernelFault{Outcome: gpu.FaultSlow, SlowFactor: p.spec.SlowFactor}
	default:
		return gpu.KernelFault{}
	}
	p.trace = append(p.trace, fmt.Sprintf("%s J%d:K%d.%d %s", now, jobID, seq, attempt, f.Outcome))
	return f
}

// NoteRetirement records a CU retirement in the event trace. The CP calls
// it when a scheduled retirement fires.
func (p *Plan) NoteRetirement(now sim.Time, cus int) {
	p.trace = append(p.trace, fmt.Sprintf("%s retire %d CUs", now, cus))
}

// Retirements returns the scheduled CU losses, earliest first.
func (p *Plan) Retirements() []gpu.Retirement { return p.spec.Retirements }

// Trace returns the injected-event log in injection order: one line per
// non-none kernel fault and per fired retirement. Identical seeds and specs
// produce byte-identical traces.
func (p *Plan) Trace() []string { return p.trace }

// uniform hashes (seed, jobID, seq, attempt) to [0,1) with a
// splitmix64-style finalizer. No shared state: the draw for one attempt
// cannot perturb any other, so injection is independent of event order.
func (p *Plan) uniform(jobID, seq, attempt int) float64 {
	x := uint64(p.seed)
	x = mix(x ^ uint64(jobID)*0x9e3779b97f4a7c15)
	x = mix(x ^ uint64(seq)*0xbf58476d1ce4e5b9)
	x = mix(x ^ uint64(attempt)*0x94d049bb133111eb)
	return float64(x>>11) / float64(1<<53)
}

func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
