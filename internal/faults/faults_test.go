package faults

import (
	"math"
	"reflect"
	"testing"

	"laxgpu/internal/gpu"
	"laxgpu/internal/sim"
)

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("hang=0.05,abort=0.1,slow=0.2x8,retire=4@2ms,recover=off")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{
		HangProb: 0.05, AbortProb: 0.1, SlowProb: 0.2, SlowFactor: 8,
		Retirements: []gpu.Retirement{{At: 2 * sim.Millisecond, CUs: 4}},
		Recover:     false,
	}
	if !reflect.DeepEqual(spec, want) {
		t.Fatalf("parsed %+v, want %+v", spec, want)
	}
}

func TestParseSpecDefaults(t *testing.T) {
	spec, err := ParseSpec("")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Zero() || !spec.Recover {
		t.Fatalf("empty spec = %+v, want zero with recovery on", spec)
	}
	spec, err = ParseSpec("slow=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if spec.SlowFactor != 4 {
		t.Fatalf("default slow factor = %g, want 4", spec.SlowFactor)
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	in := "hang=0.05,slow=0.2x8,retire=4@2ms,recover=off"
	spec, err := ParseSpec(in)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", spec.String(), err)
	}
	if !reflect.DeepEqual(spec, again) {
		t.Fatalf("round trip %+v != %+v", spec, again)
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"hang",              // no value
		"hang=2",            // probability out of range
		"hang=-0.1",         // negative
		"slow=0.1x0.5",      // factor ≤ 1
		"retire=4",          // missing @time
		"retire=0@1ms",      // zero CUs
		"retire=4@-1ms",     // negative time
		"recover=maybe",     // bad enum
		"explode=0.5",       // unknown key
		"hang=0.6,slow=0.6", // sums > 1
	}
	for _, s := range bad {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want error", s)
		}
	}
}

func TestPlanDeterministicAndOrderIndependent(t *testing.T) {
	spec, err := ParseSpec("hang=0.2,abort=0.2,slow=0.2x4")
	if err != nil {
		t.Fatal(err)
	}
	a := NewPlan(spec, 42)
	b := NewPlan(spec, 42)

	type key struct{ job, seq, attempt int }
	keys := []key{}
	for job := 0; job < 20; job++ {
		for seq := 0; seq < 5; seq++ {
			for att := 0; att < 3; att++ {
				keys = append(keys, key{job, seq, att})
			}
		}
	}
	got := map[key]gpu.KernelFault{}
	for _, k := range keys {
		got[k] = a.KernelLaunch(0, k.job, k.seq, k.attempt)
	}
	// Query b in reverse order: decisions must match anyway.
	for i := len(keys) - 1; i >= 0; i-- {
		k := keys[i]
		if f := b.KernelLaunch(0, k.job, k.seq, k.attempt); f != got[k] {
			t.Fatalf("plan b disagrees at %+v: %v vs %v", k, f, got[k])
		}
	}
}

func TestPlanSeedsDiffer(t *testing.T) {
	spec, _ := ParseSpec("hang=0.5")
	a, b := NewPlan(spec, 1), NewPlan(spec, 2)
	same := 0
	const n = 200
	for i := 0; i < n; i++ {
		if a.KernelLaunch(0, i, 0, 0) == b.KernelLaunch(0, i, 0, 0) {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical fault decisions")
	}
}

func TestPlanRatesApproximateSpec(t *testing.T) {
	spec, _ := ParseSpec("hang=0.1,abort=0.2,slow=0.3")
	p := NewPlan(spec, 7)
	counts := map[gpu.FaultOutcome]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[p.KernelLaunch(0, i, i%7, 0).Outcome]++
	}
	check := func(o gpu.FaultOutcome, want float64) {
		got := float64(counts[o]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("%v rate %.3f, want ≈%.2f", o, got, want)
		}
	}
	check(gpu.FaultHang, 0.1)
	check(gpu.FaultAbort, 0.2)
	check(gpu.FaultSlow, 0.3)
	check(gpu.FaultNone, 0.4)
}

func TestPlanTraceDeterministic(t *testing.T) {
	spec, _ := ParseSpec("hang=0.3,abort=0.3")
	a, b := NewPlan(spec, 99), NewPlan(spec, 99)
	for i := 0; i < 50; i++ {
		a.KernelLaunch(sim.Time(i)*sim.Microsecond, i, 0, 0)
		b.KernelLaunch(sim.Time(i)*sim.Microsecond, i, 0, 0)
	}
	a.NoteRetirement(sim.Millisecond, 4)
	b.NoteRetirement(sim.Millisecond, 4)
	if !reflect.DeepEqual(a.Trace(), b.Trace()) {
		t.Fatalf("traces differ:\n%v\n%v", a.Trace(), b.Trace())
	}
	if len(a.Trace()) == 0 {
		t.Fatal("trace is empty despite injected faults")
	}
}
