package faults

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"laxgpu/internal/sim"
)

// Node-level chaos: whole-node failure modes injected at the gateway↔node
// boundary, as opposed to the kernel-level Spec injected inside a device.
// A NodeSpec describes what happens to every call (submit, probe) a front
// end makes against one backend node; a NodePlan is the seeded, deterministic
// instance the gateway consults per call.

// Sentinel errors a NodePlan surfaces at the gateway↔node boundary. They are
// distinct so tests can assert on the failure mode, but a health prober must
// treat them uniformly: from the outside, a crashed node, a frozen node and a
// dropped packet all look like "the call did not come back".
var (
	// ErrNodeDown is returned for every call to a node past its crash point.
	ErrNodeDown = errors.New("faults: node crashed")

	// ErrNodeFrozen is returned for calls landing inside a freeze window —
	// the deterministic stand-in for a call that would block until timeout.
	ErrNodeFrozen = errors.New("faults: node frozen (call timed out)")

	// ErrNetDrop is returned for calls the network plan dropped.
	ErrNetDrop = errors.New("faults: network dropped call")
)

// NodeSpec is a parsed node-level chaos specification.
type NodeSpec struct {
	// Crash kills the node permanently at CrashAt: every later call fails
	// with ErrNodeDown and completions after the crash instant are lost.
	Crash   bool
	CrashAt sim.Time

	// Freeze makes the node unresponsive during [FreezeAt, FreezeAt+FreezeDur):
	// calls inside the window fail with ErrNodeFrozen (a modeled timeout),
	// but the node resumes afterwards — the SIGSTOP/GC-pause failure mode.
	Freeze    bool
	FreezeAt  sim.Time
	FreezeDur sim.Time

	// NetDelay is added to every call's observed latency.
	NetDelay sim.Time

	// NetDrop is the per-call probability of losing the call entirely
	// (ErrNetDrop); the job may or may not have reached the node.
	NetDrop float64
}

// Zero reports whether the spec injects nothing.
func (s NodeSpec) Zero() bool {
	return !s.Crash && !s.Freeze && s.NetDelay == 0 && s.NetDrop == 0
}

// String renders the spec in the canonical parseable form.
func (s NodeSpec) String() string {
	var parts []string
	if s.Crash {
		parts = append(parts, fmt.Sprintf("crash@%s", s.CrashAt.Duration()))
	}
	if s.Freeze {
		parts = append(parts, fmt.Sprintf("freeze@%s+%s", s.FreezeAt.Duration(), s.FreezeDur.Duration()))
	}
	if s.NetDelay > 0 {
		parts = append(parts, fmt.Sprintf("netdelay=%s", s.NetDelay.Duration()))
	}
	if s.NetDrop > 0 {
		parts = append(parts, fmt.Sprintf("netdrop=%g", s.NetDrop))
	}
	return strings.Join(parts, ",")
}

// ParseNodeSpec parses a comma-separated node-level chaos specification:
//
//	crash@D         the node dies permanently at simulated time D (e.g. 5ms)
//	freeze@D+W      the node is unresponsive for window W starting at D
//	netdelay=D      every gateway↔node call gains latency D
//	netdrop=P       each call is lost with probability P in [0,1]
//
// The empty string parses to the zero NodeSpec (no chaos).
func ParseNodeSpec(s string) (NodeSpec, error) {
	var spec NodeSpec
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		switch {
		case strings.HasPrefix(field, "crash@"):
			d, err := time.ParseDuration(strings.TrimPrefix(field, "crash@"))
			if err != nil || d < 0 {
				return NodeSpec{}, fmt.Errorf("faults: crash time %q must be a non-negative duration", strings.TrimPrefix(field, "crash@"))
			}
			spec.Crash, spec.CrashAt = true, sim.FromDuration(d)
		case strings.HasPrefix(field, "freeze@"):
			at, dur, ok := strings.Cut(strings.TrimPrefix(field, "freeze@"), "+")
			if !ok {
				return NodeSpec{}, fmt.Errorf("faults: freeze %q is not start+window", field)
			}
			a, err := time.ParseDuration(at)
			if err != nil || a < 0 {
				return NodeSpec{}, fmt.Errorf("faults: freeze start %q must be a non-negative duration", at)
			}
			w, err := time.ParseDuration(dur)
			if err != nil || w <= 0 {
				return NodeSpec{}, fmt.Errorf("faults: freeze window %q must be a positive duration", dur)
			}
			spec.Freeze, spec.FreezeAt, spec.FreezeDur = true, sim.FromDuration(a), sim.FromDuration(w)
		default:
			key, val, ok := strings.Cut(field, "=")
			if !ok {
				return NodeSpec{}, fmt.Errorf("faults: %q is not crash@D, freeze@D+W or key=value", field)
			}
			switch key {
			case "netdelay":
				d, err := time.ParseDuration(val)
				if err != nil || d < 0 {
					return NodeSpec{}, fmt.Errorf("faults: netdelay %q must be a non-negative duration", val)
				}
				spec.NetDelay = sim.FromDuration(d)
			case "netdrop":
				p, err := strconv.ParseFloat(val, 64)
				if err != nil || p < 0 || p > 1 {
					return NodeSpec{}, fmt.Errorf("faults: netdrop %q must be a probability in [0,1]", val)
				}
				spec.NetDrop = p
			default:
				return NodeSpec{}, fmt.Errorf("faults: unknown node fault %q (want crash@D/freeze@D+W/netdelay=D/netdrop=P)", key)
			}
		}
	}
	return spec, nil
}

// NodePlan is a seeded instance of a NodeSpec. Crash and freeze decisions
// are pure functions of the queried time; netdrop draws are hashed from
// (seed, call index), so a serialized caller replaying the same call sequence
// gets byte-identical drop decisions.
type NodePlan struct {
	spec  NodeSpec
	seed  int64
	calls atomic.Int64
}

// NewNodePlan seeds a plan for one node.
func NewNodePlan(spec NodeSpec, seed int64) *NodePlan {
	return &NodePlan{spec: spec, seed: seed}
}

// Spec returns the plan's specification.
func (p *NodePlan) Spec() NodeSpec { return p.spec }

// Crashed reports whether the node is permanently dead at now.
func (p *NodePlan) Crashed(now sim.Time) bool {
	return p.spec.Crash && now >= p.spec.CrashAt
}

// Frozen reports whether now falls inside the freeze window.
func (p *NodePlan) Frozen(now sim.Time) bool {
	return p.spec.Freeze && now >= p.spec.FreezeAt && now < p.spec.FreezeAt+p.spec.FreezeDur
}

// Delay returns the injected per-call network latency.
func (p *NodePlan) Delay() sim.Time { return p.spec.NetDelay }

// Gate decides one call's fate at now: nil means the call goes through
// (after Delay), otherwise ErrNodeDown, ErrNodeFrozen or ErrNetDrop. Each
// invocation consumes one drop draw.
func (p *NodePlan) Gate(now sim.Time) error {
	call := p.calls.Add(1)
	if p.Crashed(now) {
		return ErrNodeDown
	}
	if p.Frozen(now) {
		return ErrNodeFrozen
	}
	if p.spec.NetDrop > 0 && p.uniform(call) < p.spec.NetDrop {
		return ErrNetDrop
	}
	return nil
}

// uniform hashes (seed, call) to [0,1) with the same splitmix64-style
// finalizer kernel faults use — no shared RNG stream, so one call's draw
// cannot perturb another's.
func (p *NodePlan) uniform(call int64) float64 {
	x := mix(uint64(p.seed) ^ uint64(call)*0x9e3779b97f4a7c15)
	return float64(x>>11) / float64(1<<53)
}
