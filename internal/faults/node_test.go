package faults

import (
	"errors"
	"testing"

	"laxgpu/internal/sim"
)

func TestParseNodeSpec(t *testing.T) {
	cases := []struct {
		in   string
		want NodeSpec
	}{
		{"", NodeSpec{}},
		{"crash@5ms", NodeSpec{Crash: true, CrashAt: 5 * sim.Millisecond}},
		{"freeze@1s+500ms", NodeSpec{Freeze: true, FreezeAt: sim.Second, FreezeDur: 500 * sim.Millisecond}},
		{"netdelay=2ms", NodeSpec{NetDelay: 2 * sim.Millisecond}},
		{"netdrop=0.25", NodeSpec{NetDrop: 0.25}},
		{
			"crash@10ms,netdrop=0.1,netdelay=1ms",
			NodeSpec{Crash: true, CrashAt: 10 * sim.Millisecond, NetDrop: 0.1, NetDelay: sim.Millisecond},
		},
	}
	for _, tc := range cases {
		got, err := ParseNodeSpec(tc.in)
		if err != nil {
			t.Fatalf("ParseNodeSpec(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Errorf("ParseNodeSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		// Round-trip through String.
		back, err := ParseNodeSpec(got.String())
		if err != nil || back != got {
			t.Errorf("round trip %q -> %q -> %+v (err %v)", tc.in, got.String(), back, err)
		}
	}
}

func TestParseNodeSpecErrors(t *testing.T) {
	for _, in := range []string{
		"crash@-1s", "crash@nope", "freeze@1s", "freeze@1s+0s", "freeze@x+1s",
		"netdelay=-1ms", "netdrop=1.5", "netdrop=x", "explode=1", "crash",
	} {
		if _, err := ParseNodeSpec(in); err == nil {
			t.Errorf("ParseNodeSpec(%q) succeeded, want error", in)
		}
	}
}

func TestNodePlanCrashAndFreeze(t *testing.T) {
	spec, err := ParseNodeSpec("crash@10ms")
	if err != nil {
		t.Fatal(err)
	}
	p := NewNodePlan(spec, 1)
	if err := p.Gate(9 * sim.Millisecond); err != nil {
		t.Fatalf("pre-crash call failed: %v", err)
	}
	if err := p.Gate(10 * sim.Millisecond); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("at crash: got %v, want ErrNodeDown", err)
	}
	if err := p.Gate(sim.Second); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("crash is not permanent: %v", err)
	}

	fspec, err := ParseNodeSpec("freeze@1ms+2ms")
	if err != nil {
		t.Fatal(err)
	}
	f := NewNodePlan(fspec, 1)
	if err := f.Gate(0); err != nil {
		t.Fatalf("pre-freeze call failed: %v", err)
	}
	if err := f.Gate(2 * sim.Millisecond); !errors.Is(err, ErrNodeFrozen) {
		t.Fatalf("inside window: got %v, want ErrNodeFrozen", err)
	}
	if err := f.Gate(3 * sim.Millisecond); err != nil {
		t.Fatalf("node did not thaw: %v", err)
	}
}

func TestNodePlanDropDeterminism(t *testing.T) {
	spec := NodeSpec{NetDrop: 0.3}
	run := func(seed int64) []bool {
		p := NewNodePlan(spec, seed)
		out := make([]bool, 200)
		for i := range out {
			out[i] = errors.Is(p.Gate(0), ErrNetDrop)
		}
		return out
	}
	a, b := run(7), run(7)
	drops := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: drop decisions diverge across identical seeds", i)
		}
		if a[i] {
			drops++
		}
	}
	if drops == 0 || drops == len(a) {
		t.Fatalf("netdrop=0.3 dropped %d/%d calls; want a nontrivial fraction", drops, len(a))
	}
	c := run(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical drop sequences")
	}
}
