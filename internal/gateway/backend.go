// Package gateway is the fleet front tier: one HTTP frontend multiplexing
// arrivals across N serving nodes, routing each job to the node reporting
// the most laxity headroom, health-checking every node with per-node circuit
// breakers, and journaling every accepted job so node death never loses one.
//
// The layering mirrors serve's: Backend abstracts "one node" (an in-process
// serve.Driver or a remote laxd daemon — the gateway cannot tell them
// apart), ChaosBackend injects node-level faults at exactly the boundary a
// real network failure would hit, Breaker turns probe outcomes into a
// health state machine, and Gateway owns the journal, the router and the
// failover logic. Every guarantee the gateway makes is checked by
// verify.CheckFleet.
package gateway

import (
	"errors"

	"laxgpu/internal/cp"
	"laxgpu/internal/gpu"
	"laxgpu/internal/metrics"
	"laxgpu/internal/obs"
	"laxgpu/internal/serve"
	"laxgpu/internal/sim"
	"laxgpu/internal/verify"
	"laxgpu/internal/workload"
)

// ErrBackendUnavailable is returned by a backend whose accept queue is full
// or whose driver has stopped — the gateway treats it like any other failed
// call: a strike against the node's breaker.
var ErrBackendUnavailable = errors.New("gateway: backend not accepting work")

// Headroom is one node's self-reported capacity to absorb work, as returned
// by a probe. The router scores placement on Drain: the node's own
// Algorithm 1 estimate of how long it needs to finish everything already
// admitted.
type Headroom struct {
	// Drain is the predicted time to finish all admitted unfinished work.
	Drain sim.Time

	// Unfinished counts admitted, non-terminal jobs on the node.
	Unfinished int

	// Capacity is the node's device count (routing weight).
	Capacity int

	// CapacityFrac is the fraction of the node's compute capacity still
	// alive after CU retirements, in (0, 1]. Values ≤ 0 mean the node did
	// not report one (older backends) and the gateway assumes full health.
	// The router weighs placement by it, and the autoscaler treats a
	// shrinking fraction as a capacity-loss signal.
	CapacityFrac float64

	// Draining marks a node refusing new work (graceful shutdown).
	Draining bool
}

// Verdict is a node's admission answer for one submitted job.
type Verdict struct {
	// Accepted reports Algorithm 1's verdict on the node.
	Accepted bool

	// Retry is the node's drain estimate handed back with a rejection.
	Retry sim.Time

	// RemoteID is the node-local identifier of an accepted job — the handle
	// the gateway needs to fetch the node's side of the job's trace.
	RemoteID int64
}

// Outcome is the terminal report a backend delivers through the done
// callback exactly once per successful Submit (unless the node dies first).
type Outcome struct {
	// Terminal is the verify.Fleet* state: "done", "fallback" or
	// "cancelled".
	Terminal string

	// Met reports whether the job met its deadline.
	Met bool

	// FellBack reports completion on the CPU fallback path.
	FellBack bool

	// Latency is arrival-to-finish in simulated time.
	Latency sim.Time

	// Cause is the node's dominant-cause verdict for a missed deadline (the
	// metrics.ClassifyMiss taxonomy); empty when the deadline was met or the
	// node did not classify.
	Cause string
}

// Job is the gateway's view of one submission: the sampled kernel chain
// plus the routing estimate, ready to hand to whichever node (or nodes,
// after failover) ends up running it.
type Job struct {
	// ID is the gateway-wide identifier.
	ID int64

	// Benchmark names the workload.
	Benchmark string

	// Deadline is the relative deadline.
	Deadline sim.Time

	// Class is the job's criticality (shedding order under overload).
	Class Class

	// Kernels is the sampled kernel chain, reused verbatim on re-dispatch
	// so a failed-over job is byte-identical to the original.
	Kernels []*gpu.KernelDesc

	// Est is the serial device-time estimate fed to the router.
	Est sim.Time

	// TraceID is the gateway-minted W3C trace ID, propagated to whichever
	// node runs the job (traceparent header for remote nodes) so the job's
	// spans stitch across processes. Re-dispatches reuse it.
	TraceID string
}

// TraceSource is the optional Backend extension behind the gateway's
// stitched trace endpoint: given the node-local job ID and the trace ID, it
// returns the node's recorded timeline. Backends without tracing simply
// don't implement it.
type TraceSource interface {
	// JobTrace fetches the node-side trace of one dispatched job.
	JobTrace(remoteID int64, traceID string) (obs.WireTrace, bool)
}

// Backend is one serving node as the gateway sees it. Implementations:
// InprocBackend (a serve.Driver in this process), RemoteBackend (a laxd
// daemon over HTTP) and ChaosBackend (either of those behind a fault plan).
//
// Submit and Probe may block; the gateway never calls them while holding
// its own lock. done fires on the backend's own goroutine — at most once
// per accepted Submit — and may call back into the gateway.
type Backend interface {
	// Name identifies the node in journals, metrics and logs.
	Name() string

	// Probe returns the node's live headroom, or an error when the node is
	// unreachable. A probe doubles as the gateway's heartbeat.
	Probe(now sim.Time) (Headroom, error)

	// Submit offers the job to the node. The error path means the node
	// never saw the job (safe to re-dispatch); a Verdict means the node
	// decided. done fires when an accepted job reaches a terminal state.
	Submit(now sim.Time, job *Job, done func(Outcome)) (Verdict, error)
}

// InprocBackend runs one serve.Node behind its Driver inside the gateway
// process — the fleet-in-a-box configuration laxgw uses by default, and the
// deterministic substrate of the chaos tests.
type InprocBackend struct {
	name   string
	node   *serve.Node
	driver *serve.Driver

	// tracer records per-job timelines when tracing is enabled; nil when
	// disabled (never wrapped as a typed-nil obs.Probe).
	tracer *obs.TraceRecorder

	// pending maps the node's dense local job IDs to done callbacks.
	// Touched only on the driver goroutine.
	pending map[int]pendingJob
}

type pendingJob struct {
	jr   *cp.JobRun
	done func(Outcome)
}

// InprocConfig configures one in-process backend node.
type InprocConfig struct {
	// Name identifies the node (default "nodeN" is chosen by the caller).
	Name string

	// Node configures the underlying serving device; the Probe field is
	// reserved for the backend's own completion recorder.
	Node serve.NodeConfig

	// Clock paces the driver (required; share one clock fleet-wide).
	Clock serve.Clock

	// AcceptQueue bounds the driver's command queue (default 64).
	AcceptQueue int

	// Registry optionally collects the node's scheduler metrics.
	Registry *obs.Registry

	// TraceDepth sizes the node's finished-trace ring (0 = default 256,
	// negative disables tracing entirely).
	TraceDepth int
}

// NewInprocBackend builds and starts one in-process node.
func NewInprocBackend(cfg InprocConfig) (*InprocBackend, error) {
	b := &InprocBackend{name: cfg.Name, pending: make(map[int]pendingJob)}
	nodeCfg := cfg.Node
	probe := obs.Probe((*inprocRecorder)(b))
	if cfg.Registry != nil {
		probe = obs.Multi(obs.NewMetricsWithRegistry(cfg.Registry), probe)
	}
	if cfg.TraceDepth >= 0 {
		b.tracer = obs.NewTraceRecorder(cfg.TraceDepth)
		probe = obs.Multi(probe, b.tracer)
	}
	nodeCfg.Probe = probe
	node, err := serve.NewNode(nodeCfg)
	if err != nil {
		return nil, err
	}
	b.node = node
	b.driver = serve.NewDriver(node, cfg.Clock, cfg.AcceptQueue)
	b.driver.Start()
	return b, nil
}

// Name implements Backend.
func (b *InprocBackend) Name() string { return b.name }

// JobTrace implements TraceSource: the node's recorded timeline for one
// dispatched job, keyed by the gateway-minted trace ID.
func (b *InprocBackend) JobTrace(remoteID int64, traceID string) (obs.WireTrace, bool) {
	if b.tracer == nil {
		return obs.WireTrace{}, false
	}
	t, ok := b.tracer.GetByID(traceID)
	if !ok {
		return obs.WireTrace{}, false
	}
	return t.Wire(b.name), true
}

// Driver exposes the backend's pacing driver (shutdown, tests).
func (b *InprocBackend) Driver() *serve.Driver { return b.driver }

// Probe implements Backend: the node's own drain estimate, read on the
// driver goroutine.
func (b *InprocBackend) Probe(now sim.Time) (Headroom, error) {
	var h Headroom
	if !b.driver.Call(func() {
		dev := b.node.System().Device()
		frac := 1.0
		if total := dev.ActiveCUs() + dev.RetiredCUsCount(); total > 0 {
			frac = float64(dev.ActiveCUs()) / float64(total)
		}
		h = Headroom{
			Drain:        b.node.EstimateDrain(),
			Unfinished:   len(b.node.Unfinished()),
			Capacity:     1,
			CapacityFrac: frac,
		}
	}) {
		return Headroom{}, ErrBackendUnavailable
	}
	return h, nil
}

// Submit implements Backend: the full host-side offload decision runs
// inline on the driver goroutine; done is registered before Submit returns,
// so no completion can slip between the verdict and the registration.
func (b *InprocBackend) Submit(now sim.Time, job *Job, done func(Outcome)) (Verdict, error) {
	var v Verdict
	if !b.driver.Call(func() {
		wj := &workload.Job{
			Benchmark: job.Benchmark,
			Deadline:  job.Deadline,
			Kernels:   job.Kernels,
		}
		jr := b.node.Submit(wj)
		if jr.Rejected() {
			v = Verdict{Accepted: false, Retry: b.node.EstimateDrain()}
			return
		}
		v = Verdict{Accepted: true, RemoteID: int64(wj.ID)}
		if b.tracer != nil && job.TraceID != "" {
			b.tracer.Assign(wj.ID, job.TraceID)
		}
		b.pending[wj.ID] = pendingJob{jr: jr, done: done}
	}) {
		return Verdict{}, ErrBackendUnavailable
	}
	return v, nil
}

// inprocRecorder is the backend's probe alias: terminal job events fire the
// registered done callbacks on the driver goroutine.
type inprocRecorder InprocBackend

// Job implements obs.Probe.
func (r *inprocRecorder) Job(e obs.JobEvent) {
	if e.Kind != obs.JobFinish && e.Kind != obs.JobCancel {
		return
	}
	p, ok := r.pending[e.Job]
	if !ok {
		return
	}
	delete(r.pending, e.Job)
	out := Outcome{Terminal: verify.FleetCancelled, Cause: metrics.ClassifyMiss(p.jr).String()}
	if e.Kind == obs.JobFinish {
		out = Outcome{
			Terminal: verify.FleetDone,
			Met:      e.Met,
			FellBack: p.jr.FellBack,
			Latency:  p.jr.Latency(),
		}
		if !e.Met {
			out.Cause = metrics.ClassifyMiss(p.jr).String()
		}
	}
	p.done(out)
}

// Admission implements obs.Probe.
func (r *inprocRecorder) Admission(obs.AdmissionDecision) {}

// Epoch implements obs.Probe.
func (r *inprocRecorder) Epoch(obs.EpochSnapshot) {}

// Sample implements obs.Probe.
func (r *inprocRecorder) Sample(obs.JobSample) {}

// TableRefresh implements obs.Probe.
func (r *inprocRecorder) TableRefresh(obs.TableRefresh) {}

// KernelStart implements obs.Probe.
func (r *inprocRecorder) KernelStart(obs.KernelStart) {}

// KernelDone implements obs.Probe.
func (r *inprocRecorder) KernelDone(obs.KernelDone) {}
