package gateway

import (
	"fmt"
	"testing"
	"time"

	"laxgpu/internal/serve"
	"laxgpu/internal/sim"
	"laxgpu/internal/workload"
)

// benchFleet builds an N-node in-process fleet on a manual clock, without
// the testing.T plumbing of the test helper.
func benchFleet(b *testing.B, nodes int) (*Gateway, *serve.ManualClock) {
	b.Helper()
	clock := serve.NewManualClock()
	var backends []Backend
	for g := 0; g < nodes; g++ {
		ib, err := NewInprocBackend(InprocConfig{
			Name:  fmt.Sprintf("node%d", g),
			Node:  serve.NodeConfig{Scheduler: "LAX"},
			Clock: clock,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { ib.Shutdown(time.Second) })
		backends = append(backends, ib)
	}
	gw, err := New(Options{Backends: backends, Clock: clock, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	gw.TickProbes(clock.Now())
	return gw, clock
}

// BenchmarkGatewaySubmitRoute measures the gateway's per-arrival hot path:
// kernel sampling, headroom routing, journaling, and the in-process node's
// admission decision. Completions are drained between iterations so the
// journal, not the backlog, is what's measured.
func BenchmarkGatewaySubmitRoute(b *testing.B) {
	gw, clock := benchFleet(b, 3)
	bench, err := workload.FindBenchmark("LSTM")
	if err != nil {
		b.Fatal(err)
	}
	now := sim.Time(0)
	// Within a batch, deadlines double so the cold profiling table (hold
	// estimate = deadline) admits every job regardless of routing; between
	// batches the clock jumps and a probe round drains the backlog.
	deadline := sim.Second
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, reason := gw.Submit(bench, deadline, Standard); reason != "" {
			b.Fatalf("submission %d refused: %s", i, reason)
		}
		deadline *= 2
		if (i+1)%16 == 0 {
			now += 50 * sim.Millisecond
			clock.Set(now)
			gw.TickProbes(now)
			deadline = sim.Second
		}
	}
	b.StopTimer()
	now += sim.Second
	clock.Set(now)
	gw.TickProbes(now)
	if got := gw.Inflight(); got != 0 {
		b.Fatalf("inflight = %d after drain", got)
	}
	jobs := gw.FleetJobs()
	b.ReportMetric(float64(len(jobs))/float64(b.N), "jobs/op")
}

// BenchmarkGatewayProbeRound measures one full health-probe round across
// the fleet: breaker bookkeeping, a driver round trip per node, and the
// router health/headroom updates.
func BenchmarkGatewayProbeRound(b *testing.B) {
	gw, clock := benchFleet(b, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gw.TickProbes(clock.Now())
	}
}
