package gateway

import "laxgpu/internal/sim"

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: the node is healthy; calls flow.
	BreakerClosed BreakerState = iota

	// BreakerHalfOpen: the backoff elapsed and one trial probe is in
	// flight; its outcome decides between Closed and Open.
	BreakerHalfOpen

	// BreakerOpen: the node is considered down; no work is routed to it
	// and probes are paced by capped exponential backoff.
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	default:
		return "unknown"
	}
}

// Breaker is the per-node health state machine: consecutive probe failures
// trip it open, capped exponential backoff paces recovery probes, and a
// single successful trial closes it again. Not safe for concurrent use —
// the gateway drives every breaker under its own lock.
type Breaker struct {
	failThreshold int
	baseBackoff   sim.Time
	maxBackoff    sim.Time

	state     BreakerState
	fails     int // consecutive failures while closed
	backoff   sim.Time
	nextProbe sim.Time // earliest instant an open breaker allows a trial
}

// NewBreaker builds a closed breaker. failThreshold consecutive failures
// open it (minimum 1); backoff doubles from base to max between failed
// trials.
func NewBreaker(failThreshold int, base, max sim.Time) *Breaker {
	if failThreshold < 1 {
		failThreshold = 1
	}
	if base <= 0 {
		base = 10 * sim.Millisecond
	}
	if max < base {
		max = base
	}
	return &Breaker{failThreshold: failThreshold, baseBackoff: base, maxBackoff: max}
}

// State returns the breaker's position.
func (b *Breaker) State() BreakerState { return b.state }

// Allow reports whether a probe should be sent at now. Closed breakers
// always probe; open ones only after the backoff; a half-open breaker has a
// trial outstanding and sends no second probe until it resolves.
func (b *Breaker) Allow(now sim.Time) bool {
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now >= b.nextProbe {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	default: // half-open: trial in flight
		return false
	}
}

// Success records a successful probe, closing the breaker.
func (b *Breaker) Success(now sim.Time) {
	b.state = BreakerClosed
	b.fails = 0
	b.backoff = 0
}

// Failure records a failed probe. It reports true when this failure tripped
// the breaker open (the caller's cue to fail over the node's jobs).
func (b *Breaker) Failure(now sim.Time) bool {
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails < b.failThreshold {
			return false
		}
		b.backoff = b.baseBackoff
		b.state = BreakerOpen
		b.nextProbe = now + b.backoff
		return true
	default: // half-open trial failed (or a straggling failure while open)
		b.backoff *= 2
		if b.backoff > b.maxBackoff {
			b.backoff = b.maxBackoff
		}
		if b.backoff == 0 {
			b.backoff = b.baseBackoff
		}
		b.state = BreakerOpen
		b.nextProbe = now + b.backoff
		return false
	}
}
