package gateway

import (
	"laxgpu/internal/faults"
	"laxgpu/internal/obs"
	"laxgpu/internal/serve"
	"laxgpu/internal/sim"
)

// ChaosBackend wraps another backend with a node-level fault plan, applied
// at exactly the boundary a real failure would hit: the call from the
// gateway to the node. A crashed node fails every call and loses every
// completion after the crash instant; a frozen node fails calls inside the
// window but resumes — and delivers its completions late, exercising the
// journal's duplicate-terminal dedup; netdrop loses individual calls with
// seeded per-call determinism.
type ChaosBackend struct {
	inner Backend
	plan  *faults.NodePlan
	clock serve.Clock
}

// NewChaosBackend wraps inner with the seeded plan. clock timestamps
// completion deliveries (a completion is lost iff the node is crashed at
// the instant it would arrive).
func NewChaosBackend(inner Backend, plan *faults.NodePlan, clock serve.Clock) *ChaosBackend {
	return &ChaosBackend{inner: inner, plan: plan, clock: clock}
}

// Name implements Backend.
func (c *ChaosBackend) Name() string { return c.inner.Name() }

// Plan exposes the fault plan (tests).
func (c *ChaosBackend) Plan() *faults.NodePlan { return c.plan }

// Probe implements Backend: the plan gates the call before it reaches the
// node.
func (c *ChaosBackend) Probe(now sim.Time) (Headroom, error) {
	if err := c.plan.Gate(now); err != nil {
		return Headroom{}, err
	}
	h, err := c.inner.Probe(now)
	if err != nil {
		return Headroom{}, err
	}
	h.Drain += c.plan.Delay()
	return h, nil
}

// JobTrace implements TraceSource when the wrapped backend does. A crashed
// node cannot answer a trace fetch — the gateway falls back to its own
// spans, exactly as it would against a dead daemon.
func (c *ChaosBackend) JobTrace(remoteID int64, traceID string) (obs.WireTrace, bool) {
	ts, ok := c.inner.(TraceSource)
	if !ok {
		return obs.WireTrace{}, false
	}
	if err := c.plan.Gate(c.clock.Now()); err != nil {
		return obs.WireTrace{}, false
	}
	return ts.JobTrace(remoteID, traceID)
}

// Submit implements Backend. The done callback is filtered: a completion
// arriving after the node's crash instant is lost, the way a dead node's
// response never reaches the caller — the exact loss failover exists to
// repair.
func (c *ChaosBackend) Submit(now sim.Time, job *Job, done func(Outcome)) (Verdict, error) {
	if err := c.plan.Gate(now); err != nil {
		return Verdict{}, err
	}
	filtered := func(o Outcome) {
		if c.plan.Crashed(c.clock.Now()) {
			return
		}
		done(o)
	}
	return c.inner.Submit(now, job, filtered)
}
