package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"laxgpu/internal/cluster"
	"laxgpu/internal/cp"
	"laxgpu/internal/gpu"
	"laxgpu/internal/metrics"
	"laxgpu/internal/obs"
	"laxgpu/internal/serve"
	"laxgpu/internal/sim"
	"laxgpu/internal/verify"
	"laxgpu/internal/workload"
)

// Class is a job's criticality: the order the gateway sheds under overload.
// Lower classes shed first.
type Class int

const (
	// BestEffort jobs shed as soon as the fleet's predicted wait exceeds
	// their own deadline.
	BestEffort Class = iota

	// Standard jobs (the default) tolerate a backlog of a few deadlines.
	Standard

	// Critical jobs shed last — only when the backlog is hopeless even
	// for them.
	Critical
)

// sheddingTolerance is the backlog multiple each class tolerates: a job is
// shed when every healthy node's predicted drain exceeds
// tolerance × deadline.
func (c Class) sheddingTolerance() sim.Time {
	switch c {
	case BestEffort:
		return 1
	case Critical:
		return 16
	default:
		return 4
	}
}

func (c Class) String() string {
	switch c {
	case BestEffort:
		return "best-effort"
	case Critical:
		return "critical"
	default:
		return "standard"
	}
}

// ParseClass parses a criticality name; the empty string is Standard.
func ParseClass(s string) (Class, error) {
	switch s {
	case "", "standard":
		return Standard, nil
	case "best-effort", "besteffort":
		return BestEffort, nil
	case "critical":
		return Critical, nil
	default:
		return Standard, fmt.Errorf("gateway: unknown criticality %q (want best-effort, standard or critical)", s)
	}
}

// Options configures a Gateway.
type Options struct {
	// Backends are the fleet's nodes, in routing-index order (required).
	Backends []Backend

	// Clock stamps submissions and probes (required; share it with
	// in-process backends).
	Clock serve.Clock

	// Registry collects the gateway's metrics (a fresh one if nil).
	Registry *obs.Registry

	// FailThreshold is the consecutive probe failures that open a node's
	// breaker (default 3).
	FailThreshold int

	// ProbeBackoff is the initial breaker backoff between recovery probes;
	// it doubles per failed trial up to MaxBackoff (defaults 10ms / 1s,
	// simulated).
	ProbeBackoff sim.Time
	MaxBackoff   sim.Time

	// MaxRecords bounds the journal; the oldest terminal entries are
	// evicted first (default 65536).
	MaxRecords int

	// Seed feeds the benchmark sampler.
	Seed int64

	// System configures the GPU model used for routing estimates; the zero
	// value means cp.DefaultSystemConfig.
	System cp.SystemConfig
}

// entry is one journal row: everything the gateway must remember to keep
// its no-lost-jobs promise for one submission.
type entry struct {
	job        *Job
	accepted   bool
	terminal   string
	met        bool
	fellBack   bool
	latencyUs  int64
	reason     string
	retryUs    int64
	cause      string // miss-cause verdict (metrics taxonomy); "" while open or met
	dispatches []string
	backend    int // routing index of the live dispatch; -1 when none
	remoteID   int64
	duplicates int
	submitAt   sim.Time
	spans      []obs.WireSpan // gateway-side events, times relative to submitAt
	done       chan struct{}
}

// spanLocked appends one gateway-side instant event to the entry's timeline.
// Caller holds gw.mu.
func (e *entry) spanLocked(now sim.Time, name, detail string) {
	at := float64(now-e.submitAt) / float64(sim.Microsecond)
	e.spans = append(e.spans, obs.WireSpan{
		Kind: obs.SpanEvent, Name: name, Node: "laxgw",
		StartUs: at, EndUs: at, Detail: detail,
	})
}

// node is one fleet member's row in the gateway's node table: the backend,
// its breaker, its last-probed headroom, its lifecycle flags and its labeled
// metrics. The table only grows — a drained node is marked retired rather
// than removed, so routing indexes stored in journal entries stay valid for
// the life of the gateway.
type node struct {
	be       Backend
	breaker  *Breaker
	headroom Headroom

	// draining: DrainBackend was called — the node finishes its admitted
	// work but is routed no new jobs. retired: the drain completed (or its
	// orphans were failed over) and the node has left the fleet.
	draining bool
	retired  bool

	// inflight counts accepted, non-terminal journal entries currently
	// assigned to this node — the drain-completion signal.
	inflight int

	cBreakerOpens  *obs.Counter
	cProbeFailures *obs.Counter
	gBreakerState  *obs.Gauge
}

// Gateway is the fleet front tier: it routes arrivals on live laxity
// headroom, health-checks nodes with per-node circuit breakers, journals
// every accepted job and re-dispatches the unfinished work of dead nodes —
// or falls it back to the CPU — so acceptance is a promise that survives
// node death. The fleet is dynamic: AddBackend grows it mid-run and
// DrainBackend retires a node journal-safely, which is what the autoscaler
// drives.
type Gateway struct {
	opt   Options
	clock serve.Clock
	reg   *obs.Registry
	lib   *workload.Library
	gpu   gpu.Config

	// mu guards the journal, router and the node table (breakers, headroom,
	// lifecycle flags). Invariant: no blocking backend call (Probe, Submit)
	// happens while mu is held — done callbacks fire on backend goroutines
	// and take mu.
	mu       sync.Mutex
	journal  map[int64]*entry
	order    []int64
	nextID   int64
	router   *cluster.Router
	nodes    []*node
	drained  []string // names of retired nodes, in retirement order
	rng      *sim.RNG
	inflight int

	// Cumulative traffic statistics the saturation analyzer differentiates:
	// totals only ever grow, so rate = Δ/Δt between two snapshots.
	statMissed     int64
	statEstUs      int64 // summed serial-time estimate of all journaled jobs
	statDeadlineUs int64 // summed relative deadline of all journaled jobs
	statTightestUs int64 // smallest relative deadline ever accepted (0 = none yet)
	statJournaled  int64 // journaled submissions (denominator for the sums)

	draining atomic.Bool

	cSubmitted, cAccepted, cRejected *obs.Counter
	cUnhealthy, cDuplicates          *obs.Counter
	cFailoverJobs, cFailoverFallback *obs.Counter
	gInflight, gFleetNodes           *obs.Gauge
	cShed                            map[Class]*obs.Counter
	hRedispatchUs                    *obs.Histogram

	// cMissCause is the per-class SLO burn breakdown: one counter per
	// (criticality class, miss cause) pair, pre-created so /metrics always
	// shows the full taxonomy.
	cMissCause map[Class]map[string]*obs.Counter

	// fleetEvents is the gateway-level instant-event log (breaker
	// transitions, failover re-dispatches, CPU fallbacks, scale events)
	// exported to Perfetto at shutdown. Guarded by mu; bounded by
	// MaxRecords.
	fleetEvents []obs.FleetEvent
}

// New builds a gateway over the given backends. Call TickProbes (or
// StartProber) to begin health checking.
func New(opt Options) (*Gateway, error) {
	if len(opt.Backends) == 0 {
		return nil, fmt.Errorf("gateway: no backends")
	}
	if opt.Clock == nil {
		return nil, fmt.Errorf("gateway: no clock")
	}
	if opt.FailThreshold < 1 {
		opt.FailThreshold = 3
	}
	if opt.ProbeBackoff <= 0 {
		opt.ProbeBackoff = 10 * sim.Millisecond
	}
	if opt.MaxBackoff < opt.ProbeBackoff {
		opt.MaxBackoff = sim.Second
	}
	if opt.MaxRecords < 1 {
		opt.MaxRecords = 65536
	}
	sysCfg := opt.System
	if sysCfg.NumQueues == 0 {
		sysCfg = cp.DefaultSystemConfig()
	}
	reg := opt.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	gw := &Gateway{
		opt:     opt,
		clock:   opt.Clock,
		reg:     reg,
		lib:     workload.NewLibrary(sysCfg.GPU),
		gpu:     sysCfg.GPU,
		journal: make(map[int64]*entry),
		router:  cluster.NewRouter(cluster.RouteHeadroom, len(opt.Backends)),
		rng:     sim.NewRNG(opt.Seed),

		cSubmitted: reg.Counter("laxgw_jobs_submitted_total", "Jobs received by the gateway (before routing)."),
		cAccepted:  reg.Counter("laxgw_jobs_accepted_total", "Jobs a node admitted (HTTP 202)."),
		cRejected:  reg.Counter("laxgw_jobs_rejected_total", "Jobs the routed node's admission control refused (HTTP 429)."),
		cUnhealthy: reg.Counter("laxgw_no_backend_total", "Submissions refused with every node unreachable (HTTP 503)."),
		cDuplicates: reg.Counter("laxgw_duplicate_terminals_total",
			"Late terminal reports from nodes already failed over (deduplicated by the journal)."),
		cFailoverJobs: reg.Counter("laxgw_failover_jobs_total",
			"Journaled jobs re-dispatched to a surviving node after their node died."),
		cFailoverFallback: reg.Counter("laxgw_failover_fallback_total",
			"Journaled jobs finished on the gateway's CPU fallback because no survivor could take them."),
		gInflight: reg.Gauge("laxgw_inflight_jobs", "Accepted jobs not yet in a terminal state."),
		gFleetNodes: reg.Gauge("laxgw_fleet_nodes",
			"Provisioned fleet members (active + draining, excluding retired)."),
		hRedispatchUs: reg.Histogram("laxgw_redispatch_latency_us",
			"Wall-clock latency from breaker trip to re-dispatch completion, per failed-over job (µs).",
			[]float64{10, 100, 1000, 10_000, 100_000, 1_000_000}),
	}
	gw.cShed = map[Class]*obs.Counter{}
	gw.cMissCause = map[Class]map[string]*obs.Counter{}
	for _, cl := range []Class{BestEffort, Standard, Critical} {
		gw.cShed[cl] = reg.CounterWith("laxgw_shed_total",
			"Submissions shed by criticality class under fleet overload (HTTP 429).",
			map[string]string{"class": cl.String()})
		gw.cMissCause[cl] = map[string]*obs.Counter{}
		for _, kind := range metrics.MissKinds() {
			gw.cMissCause[cl][kind.String()] = reg.CounterWith("laxgw_miss_cause_total",
				"Deadline misses by criticality class and dominant cause (SLO burn).",
				map[string]string{"class": cl.String(), "cause": kind.String()})
		}
	}
	for _, be := range opt.Backends {
		gw.addNodeLocked(be)
	}
	gw.gFleetNodes.Set(float64(len(gw.nodes)))
	return gw, nil
}

// addNodeLocked appends one backend to the node table with a fresh breaker
// and its labeled metrics, returning its routing index. Caller holds mu (or
// is the constructor).
func (gw *Gateway) addNodeLocked(be Backend) int {
	labels := map[string]string{"node": be.Name()}
	n := &node{
		be:      be,
		breaker: NewBreaker(gw.opt.FailThreshold, gw.opt.ProbeBackoff, gw.opt.MaxBackoff),
		cBreakerOpens: gw.reg.CounterWith("laxgw_breaker_opens_total",
			"Times a node's circuit breaker tripped open.", labels),
		cProbeFailures: gw.reg.CounterWith("laxgw_probe_failures_total",
			"Failed health probes per node.", labels),
		gBreakerState: gw.reg.GaugeWith("laxgw_breaker_state",
			"Circuit breaker position per node: 0 closed, 1 half-open, 2 open.", labels),
	}
	n.gBreakerState.Set(0)
	gw.nodes = append(gw.nodes, n)
	return len(gw.nodes) - 1
}

// AddBackend grows the fleet by one node mid-run and returns its routing
// index. The node joins healthy and idle: the router starts steering new
// arrivals at it immediately, and the next TickProbes round folds its real
// headroom in. This is the autoscaler's ScaleUp primitive.
func (gw *Gateway) AddBackend(be Backend) int {
	now := gw.clock.Now()
	gw.mu.Lock()
	defer gw.mu.Unlock()
	g := gw.addNodeLocked(be)
	if rg := gw.router.Add(); rg != g {
		panic(fmt.Sprintf("gateway: node table (%d) and router (%d) out of step", g, rg))
	}
	gw.eventLocked(now, obs.EventScaleUp, be.Name(), fmt.Sprintf("node %d joined the fleet", g))
	gw.gFleetNodes.Set(float64(gw.provisionedLocked()))
	return g
}

// DrainBackend begins a graceful scale-down of node g: no new work is routed
// to it, its admitted jobs run to completion, and once its last inflight job
// reaches a terminal state the node retires from the fleet. The returned
// count is the inflight work the drain is waiting on (0 means the node
// retired before DrainBackend returned). Journal safety: if the node dies
// mid-drain its breaker trips and failover re-dispatches the remainder
// exactly as for any crashed node. This is the autoscaler's Drain primitive.
func (gw *Gateway) DrainBackend(g int) (int, error) {
	now := gw.clock.Now()
	gw.mu.Lock()
	defer gw.mu.Unlock()
	if g < 0 || g >= len(gw.nodes) {
		return 0, fmt.Errorf("gateway: no node %d", g)
	}
	n := gw.nodes[g]
	if n.retired {
		return 0, fmt.Errorf("gateway: node %d (%s) already retired", g, n.be.Name())
	}
	if !n.draining {
		n.draining = true
		gw.router.SetHealth(g, 0)
		gw.eventLocked(now, obs.EventScaleDrain, n.be.Name(),
			fmt.Sprintf("draining with %d inflight", n.inflight))
	}
	gw.maybeRetireLocked(now, g)
	return n.inflight, nil
}

// maybeRetireLocked retires a draining node whose inflight count reached
// zero: it leaves the fleet and its name joins the drained ledger the
// fleet-drain-lossless verify rule checks against. Caller holds mu.
func (gw *Gateway) maybeRetireLocked(now sim.Time, g int) {
	n := gw.nodes[g]
	if !n.draining || n.retired || n.inflight > 0 {
		return
	}
	n.retired = true
	gw.drained = append(gw.drained, n.be.Name())
	gw.eventLocked(now, obs.EventRetire, n.be.Name(), fmt.Sprintf("node %d left the fleet", g))
	gw.gFleetNodes.Set(float64(gw.provisionedLocked()))
}

// provisionedLocked counts non-retired nodes (active + draining).
func (gw *Gateway) provisionedLocked() int {
	c := 0
	for _, n := range gw.nodes {
		if !n.retired {
			c++
		}
	}
	return c
}

// DrainedNodes returns the names of retired nodes in retirement order — the
// ledger verify's fleet-drain-lossless rule audits the journal against.
func (gw *Gateway) DrainedNodes() []string {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	return append([]string(nil), gw.drained...)
}

// Registry returns the gateway's metrics registry.
func (gw *Gateway) Registry() *obs.Registry { return gw.reg }

// eventLocked appends one gateway-level instant event (caller holds mu).
// The log is bounded by MaxRecords, dropping the oldest half when full.
func (gw *Gateway) eventLocked(now sim.Time, name, node, detail string) {
	if len(gw.fleetEvents) >= gw.opt.MaxRecords {
		gw.fleetEvents = append(gw.fleetEvents[:0], gw.fleetEvents[len(gw.fleetEvents)/2:]...)
	}
	gw.fleetEvents = append(gw.fleetEvents, obs.FleetEvent{
		AtUs: float64(now) / float64(sim.Microsecond), Name: name, Node: node, Detail: detail,
	})
}

// FleetEvents snapshots the gateway's instant-event log (breaker
// transitions, failover re-dispatches, CPU fallbacks) for export.
func (gw *Gateway) FleetEvents() []obs.FleetEvent {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	return append([]obs.FleetEvent(nil), gw.fleetEvents...)
}

// Clock returns the gateway's clock.
func (gw *Gateway) Clock() serve.Clock { return gw.clock }

// Draining reports whether Shutdown has begun.
func (gw *Gateway) Draining() bool { return gw.draining.Load() }

// TickProbes runs one synchronous health-check round at now: every node
// whose breaker allows a probe is probed, breakers and the router's health
// view are updated from the outcomes, and a breaker tripping open fails
// over the dead node's journaled jobs before the call returns. Tests drive
// it directly with a ManualClock; StartProber drives it on a wall ticker.
func (gw *Gateway) TickProbes(now sim.Time) {
	// Snapshot the probe targets: indexes are stable (the table only
	// grows), so holding mu across the blocking Probe is the only thing to
	// avoid. Nodes added mid-round are picked up next round.
	gw.mu.Lock()
	count := len(gw.nodes)
	gw.mu.Unlock()
	for g := 0; g < count; g++ {
		gw.mu.Lock()
		n := gw.nodes[g]
		if n.retired {
			gw.mu.Unlock()
			continue
		}
		be := n.be
		allowed := n.breaker.Allow(now)
		n.gBreakerState.Set(float64(n.breaker.State()))
		gw.mu.Unlock()
		if !allowed {
			continue
		}
		h, err := be.Probe(now) // never under mu: in-proc probes run completions
		gw.mu.Lock()
		if err != nil {
			n.cProbeFailures.Inc()
			tripped := n.breaker.Failure(now)
			gw.router.SetHealth(g, 0)
			n.gBreakerState.Set(float64(n.breaker.State()))
			if !tripped {
				gw.mu.Unlock()
				continue
			}
			n.cBreakerOpens.Inc()
			gw.eventLocked(now, obs.EventBreaker, be.Name(), "open")
			orphans := gw.orphansLocked(g)
			gw.mu.Unlock()
			gw.failover(now, orphans)
			continue
		}
		if n.breaker.State() != BreakerClosed {
			gw.eventLocked(now, obs.EventBreaker, be.Name(), "closed")
		}
		n.breaker.Success(now)
		n.headroom = h
		health := h.CapacityFrac
		if health <= 0 || health > 1 {
			health = 1 // unreported: assume full capacity
		}
		if h.Draining || n.draining {
			health = 0
		}
		gw.router.SetHealth(g, health)
		gw.router.SetHeadroom(g, h.Drain)
		n.gBreakerState.Set(float64(BreakerClosed))
		gw.mu.Unlock()
	}
}

// StartProber drives TickProbes on a wall-clock ticker until the returned
// stop function is called.
func (gw *Gateway) StartProber(every time.Duration) (stop func()) {
	if every <= 0 {
		every = 50 * time.Millisecond
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				gw.TickProbes(gw.clock.Now())
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// Backends snapshots the non-retired fleet in routing-index order.
func (gw *Gateway) Backends() []Backend {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	out := make([]Backend, 0, len(gw.nodes))
	for _, n := range gw.nodes {
		if !n.retired {
			out = append(out, n.be)
		}
	}
	return out
}

// routableLocked reports whether node g may receive new work: breaker not
// open, not draining, not retired.
func (gw *Gateway) routableLocked(g int) bool {
	n := gw.nodes[g]
	return !n.retired && !n.draining && n.breaker.State() != BreakerOpen
}

// healthyLocked counts nodes that may receive new work.
func (gw *Gateway) healthyLocked() int {
	c := 0
	for g := range gw.nodes {
		if gw.routableLocked(g) {
			c++
		}
	}
	return c
}

// minDrainLocked is the lowest predicted drain among routable nodes — the
// shedding signal: the soonest any node could start a new job.
func (gw *Gateway) minDrainLocked() sim.Time {
	best := sim.Time(-1)
	for g, n := range gw.nodes {
		if !gw.routableLocked(g) {
			continue
		}
		d := n.headroom.Drain
		if best < 0 || d < best {
			best = d
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// orphansLocked collects node g's journaled non-terminal jobs in ID order
// and detaches them from the node. A draining node whose work is orphaned
// away (it died mid-drain) retires here: failover now owns its jobs.
func (gw *Gateway) orphansLocked(g int) []*entry {
	var out []*entry
	for _, id := range gw.order {
		e := gw.journal[id]
		if e != nil && e.accepted && e.terminal == "" && e.backend == g {
			e.backend = -1
			out = append(out, e)
		}
	}
	gw.nodes[g].inflight -= len(out)
	gw.maybeRetireLocked(gw.clock.Now(), g)
	return out
}

// failover re-dispatches the orphans of a dead node in ID order: each goes
// to the healthiest survivor willing to take it, or to the gateway's CPU
// fallback when no survivor exists or every survivor's admission refuses it
// — either way the job reaches a terminal state. Deterministic given the
// same journal and probe history: placement uses the same headroom router
// as arrivals.
func (gw *Gateway) failover(now sim.Time, orphans []*entry) {
	start := time.Now()
	for _, e := range orphans {
		redispatched := false
		for attempt := 0; ; attempt++ {
			gw.mu.Lock()
			if attempt >= len(gw.nodes) || gw.healthyLocked() == 0 {
				gw.mu.Unlock()
				break
			}
			target := gw.router.Pick(now, e.job.Est, int(e.job.ID))
			be := gw.nodes[target].be
			gw.mu.Unlock()

			v, err := gw.submitTo(now, target, be, e)
			if err != nil {
				// The node never saw the job; strike it and try the next.
				gw.strike(now, target)
				continue
			}
			gw.mu.Lock()
			e.dispatches = append(e.dispatches, be.Name())
			e.spanLocked(now, obs.EventRedispatch,
				fmt.Sprintf("journal re-dispatch to %s (accepted=%v)", be.Name(), v.Accepted))
			if v.Accepted {
				e.backend = target
				e.remoteID = v.RemoteID
				redispatched = true
				if e.terminal == "" {
					gw.nodes[target].inflight++
				}
				gw.eventLocked(now, obs.EventRedispatch, be.Name(),
					fmt.Sprintf("job %d re-dispatched", e.job.ID))
			}
			gw.mu.Unlock()
			if v.Accepted {
				gw.cFailoverJobs.Inc()
				gw.hRedispatchUs.Observe(float64(time.Since(start).Microseconds()))
			}
			break
		}
		if !redispatched {
			gw.fallback(e)
		}
	}
}

// submitTo offers an orphan to one backend, wiring its completion back into
// the journal.
func (gw *Gateway) submitTo(now sim.Time, target int, be Backend, e *entry) (Verdict, error) {
	id := e.job.ID
	return be.Submit(now, e.job, func(o Outcome) { gw.complete(id, o) })
}

// strike records a failed non-probe call against a node's breaker, failing
// over its jobs if this strike tripped it.
func (gw *Gateway) strike(now sim.Time, g int) {
	gw.mu.Lock()
	n := gw.nodes[g]
	tripped := n.breaker.Failure(now)
	gw.router.SetHealth(g, 0)
	n.gBreakerState.Set(float64(n.breaker.State()))
	if !tripped {
		gw.mu.Unlock()
		return
	}
	n.cBreakerOpens.Inc()
	gw.eventLocked(now, obs.EventBreaker, n.be.Name(), "open")
	orphans := gw.orphansLocked(g)
	gw.mu.Unlock()
	gw.failover(now, orphans)
}

// fallback finishes an orphan on the gateway's CPU path: a terminal state
// ("fallback", deadline missed) rather than a silent loss.
func (gw *Gateway) fallback(e *entry) {
	gw.cFailoverFallback.Inc()
	now := gw.clock.Now()
	gw.mu.Lock()
	e.dispatches = append(e.dispatches, "cpu")
	e.spanLocked(now, obs.EventFallback, "no survivor took the job; finished on the gateway CPU path")
	gw.eventLocked(now, obs.EventFallback, "laxgw", fmt.Sprintf("job %d fell back", e.job.ID))
	gw.mu.Unlock()
	gw.complete(e.job.ID, Outcome{Terminal: verify.FleetFallback, FellBack: true})
}

// complete records one terminal report for a journaled job. The first
// report wins; later ones (a node declared dead delivering its completion
// anyway) only count as duplicates.
func (gw *Gateway) complete(id int64, o Outcome) {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	e := gw.journal[id]
	if e == nil {
		return
	}
	if e.terminal != "" {
		e.duplicates++
		gw.cDuplicates.Inc()
		return
	}
	e.terminal = o.Terminal
	e.met = o.Met
	e.fellBack = o.FellBack
	e.latencyUs = usOf(o.Latency)
	if !o.Met {
		gw.statMissed++
		e.cause = gw.missCauseLocked(e, o)
		if c := gw.cMissCause[e.job.Class][e.cause]; c != nil {
			c.Inc()
		}
	}
	if e.accepted {
		gw.inflight--
		gw.gInflight.Set(float64(gw.inflight))
		if g := e.backend; g >= 0 && g < len(gw.nodes) {
			gw.nodes[g].inflight--
			gw.maybeRetireLocked(gw.clock.Now(), g)
		}
	}
	close(e.done)
}

// missCauseLocked names the dominant cause of a missed deadline: the node's
// own ClassifyMiss verdict when it reported one, otherwise derived from the
// journal's terminal state (a gateway CPU fallback is a fault-path finish).
func (gw *Gateway) missCauseLocked(e *entry, o Outcome) string {
	if o.Cause != "" {
		return o.Cause
	}
	switch {
	case e.terminal == verify.FleetRejected:
		return metrics.MissRejected.String()
	case e.terminal == verify.FleetCancelled:
		return metrics.MissCancelled.String()
	case o.FellBack || e.terminal == verify.FleetFallback:
		return metrics.MissFaulted.String()
	default:
		return metrics.MissContended.String()
	}
}

// addLocked journals a new entry, evicting the oldest terminal entries past
// the cap. Non-terminal entries are never evicted — the journal is the
// no-lost-jobs ledger.
func (gw *Gateway) addLocked(e *entry) {
	gw.journal[e.job.ID] = e
	gw.order = append(gw.order, e.job.ID)
	for len(gw.order) > gw.opt.MaxRecords {
		evicted := false
		for i, id := range gw.order {
			old := gw.journal[id]
			if old == nil || old.terminal != "" {
				gw.order = append(gw.order[:i], gw.order[i+1:]...)
				delete(gw.journal, id)
				evicted = true
				break
			}
		}
		if !evicted {
			break
		}
	}
}

// Submit runs the gateway's full arrival path for one job: shed check,
// headroom routing, node admission, journaling. It returns the journaled
// ID, the verdict and the machine-readable reject reason ("" when
// accepted). Used by the HTTP handler and directly by tests.
func (gw *Gateway) Submit(bench *workload.Benchmark, deadline sim.Time, class Class) (int64, Verdict, string) {
	now := gw.clock.Now()
	gw.cSubmitted.Inc()

	gw.mu.Lock()
	sampled := bench.Sample(gw.lib, gw.rng, 0, 0)
	job := &Job{
		ID:        gw.nextID,
		Benchmark: bench.Name,
		Deadline:  deadline,
		Class:     class,
		Kernels:   sampled.Kernels,
	}
	job.Est = (&workload.Job{Kernels: job.Kernels}).SerialTime(gw.gpu)
	// The gateway mints the fleet-wide trace ID: every node the job ever
	// touches records spans under it, so the timeline stitches across
	// processes and across failover re-dispatches.
	job.TraceID = obs.TraceIDFrom(uint64(gw.opt.Seed)^0x6c61786777, uint64(gw.nextID))
	gw.nextID++
	e := &entry{job: job, backend: -1, submitAt: now, done: make(chan struct{})}
	gw.addLocked(e)
	gw.statJournaled++
	gw.statEstUs += usOf(job.Est)
	gw.statDeadlineUs += usOf(deadline)

	if gw.healthyLocked() == 0 {
		e.terminal = verify.FleetRejected
		e.reason = serve.ReasonUnhealthy
		e.retryUs = usOf(gw.opt.ProbeBackoff)
		gw.rejectCauseLocked(e)
		close(e.done)
		gw.mu.Unlock()
		gw.cUnhealthy.Inc()
		return job.ID, Verdict{Retry: gw.opt.ProbeBackoff}, serve.ReasonUnhealthy
	}
	if wait := gw.minDrainLocked(); wait > class.sheddingTolerance()*deadline {
		e.terminal = verify.FleetRejected
		e.reason = serve.ReasonShed
		e.retryUs = usOf(wait)
		gw.rejectCauseLocked(e)
		close(e.done)
		gw.mu.Unlock()
		gw.cShed[class].Inc()
		return job.ID, Verdict{Retry: wait}, serve.ReasonShed
	}
	gw.mu.Unlock()

	for attempt := 0; ; attempt++ {
		gw.mu.Lock()
		if attempt >= len(gw.nodes) || gw.healthyLocked() == 0 {
			gw.mu.Unlock()
			break
		}
		target := gw.router.Pick(now, job.Est, int(job.ID))
		be := gw.nodes[target].be
		gw.mu.Unlock()

		v, err := gw.submitTo(now, target, be, e)
		if err != nil {
			gw.strike(now, target)
			continue
		}
		gw.mu.Lock()
		e.dispatches = append(e.dispatches, be.Name())
		e.spanLocked(now, obs.EventRoute,
			fmt.Sprintf("routed to %s (drain=%dus, accepted=%v)",
				be.Name(), usOf(gw.nodes[target].headroom.Drain), v.Accepted))
		if v.Accepted {
			e.accepted = true
			e.backend = target
			e.remoteID = v.RemoteID
			// Only accepted jobs shape the tightest-deadline stat: a
			// hopeless deadline bounced at admission never ran, so it says
			// nothing about the mix the fleet must be sized for.
			if us := usOf(e.job.Deadline); gw.statTightestUs == 0 || us < gw.statTightestUs {
				gw.statTightestUs = us
			}
			// The completion may already have raced in (real clocks,
			// fast jobs): complete() saw accepted==false then and skipped
			// the decrement, so only count still-open entries.
			if e.terminal == "" {
				gw.inflight++
				gw.gInflight.Set(float64(gw.inflight))
				gw.nodes[target].inflight++
			}
		} else {
			e.terminal = verify.FleetRejected
			e.reason = serve.ReasonAdmission
			e.retryUs = usOf(v.Retry)
			gw.rejectCauseLocked(e)
			close(e.done)
		}
		gw.mu.Unlock()
		if v.Accepted {
			gw.cAccepted.Inc()
			return job.ID, v, ""
		}
		gw.cRejected.Inc()
		return job.ID, v, serve.ReasonAdmission
	}

	// Every route attempt hit a dead node.
	gw.mu.Lock()
	e.terminal = verify.FleetRejected
	e.reason = serve.ReasonUnhealthy
	e.retryUs = usOf(gw.opt.ProbeBackoff)
	gw.rejectCauseLocked(e)
	close(e.done)
	gw.mu.Unlock()
	gw.cUnhealthy.Inc()
	return job.ID, Verdict{Retry: gw.opt.ProbeBackoff}, serve.ReasonUnhealthy
}

// rejectCauseLocked stamps a rejected entry's miss cause and burns the
// class's SLO counter (caller holds mu and has set e.terminal).
func (gw *Gateway) rejectCauseLocked(e *entry) {
	e.cause = metrics.MissRejected.String()
	gw.statMissed++
	if c := gw.cMissCause[e.job.Class][e.cause]; c != nil {
		c.Inc()
	}
}

// FleetJobs snapshots the journal as verify.FleetJob rows.
func (gw *Gateway) FleetJobs() []verify.FleetJob {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	out := make([]verify.FleetJob, 0, len(gw.order))
	for _, id := range gw.order {
		e := gw.journal[id]
		if e == nil {
			continue
		}
		out = append(out, verify.FleetJob{
			ID:         id,
			Accepted:   e.accepted,
			Terminal:   e.terminal,
			Dispatches: append([]string(nil), e.dispatches...),
			Duplicates: e.duplicates,
			Spans:      append([]obs.WireSpan(nil), e.spans...),
		})
	}
	return out
}

// Check runs verify.CheckFleetScaled over the live journal — the
// no-lost-jobs invariant, extended across failover and scale-down churn.
func (gw *Gateway) Check(at sim.Time) []verify.Violation {
	jobs := gw.FleetJobs()
	return verify.CheckFleetScaled(at, jobs, gw.DrainedNodes())
}

// Inflight returns the number of accepted, non-terminal jobs.
func (gw *Gateway) Inflight() int {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	return gw.inflight
}

// NodeLoad is one node's live load/health snapshot — the saturation
// analyzer's per-node input.
type NodeLoad struct {
	// Index is the node's routing index (stable for the gateway's life).
	Index int

	// Name is the backend's name.
	Name string

	// Drain is the node's last-probed queue-drain estimate.
	Drain sim.Time

	// Unfinished is the node's last-probed admitted non-terminal job count.
	Unfinished int

	// CapacityFrac is the node's surviving compute fraction in (0, 1]
	// (CU-retirement shrink signal); 1 when the node never reported one.
	CapacityFrac float64

	// Breaker is the node's circuit-breaker position.
	Breaker BreakerState

	// Inflight is the gateway's own count of accepted jobs assigned here.
	Inflight int

	// Draining/Retired are the scale-down lifecycle flags.
	Draining bool
	Retired  bool
}

// Loads snapshots every node's load/health row, including draining and
// retired nodes (callers filter on the lifecycle flags).
func (gw *Gateway) Loads() []NodeLoad {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	out := make([]NodeLoad, len(gw.nodes))
	for g, n := range gw.nodes {
		frac := n.headroom.CapacityFrac
		if frac <= 0 || frac > 1 {
			frac = 1
		}
		out[g] = NodeLoad{
			Index:        g,
			Name:         n.be.Name(),
			Drain:        n.headroom.Drain,
			Unfinished:   n.headroom.Unfinished,
			CapacityFrac: frac,
			Breaker:      n.breaker.State(),
			Inflight:     n.inflight,
			Draining:     n.draining,
			Retired:      n.retired,
		}
	}
	return out
}

// ActiveNodes counts nodes that may receive new work (breaker not open, not
// draining, not retired).
func (gw *Gateway) ActiveNodes() int {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	return gw.healthyLocked()
}

// Stats is the gateway's cumulative traffic accounting. Every field is
// monotone, so a controller differentiates two snapshots to get rates.
type Stats struct {
	// Submitted/Accepted/Rejected/Shed/Unhealthy partition the arrival
	// stream's verdicts (Rejected is node admission; Shed is the gateway's
	// criticality shedding; Unhealthy is no-backend 503s).
	Submitted, Accepted, Rejected, Shed, Unhealthy int64

	// Missed counts terminal jobs that missed their deadline, rejects
	// included — the SLO-burn total the reactive policy watches.
	Missed int64

	// Inflight is the current accepted, non-terminal count (not monotone).
	Inflight int

	// EstUs / DeadlineUs / Journaled let the analyzer recover the offered
	// workload's mean service time and deadline: each journaled submission
	// adds its serial-time estimate and relative deadline. TightestUs is
	// the smallest relative deadline ever accepted (0 until the first
	// acceptance) — the deadline a capacity model must size for when the
	// mix spans criticality classes, since the mean hides the tight cohort.
	EstUs      int64
	DeadlineUs int64
	TightestUs int64
	Journaled  int64
}

// Stats snapshots the cumulative traffic statistics.
func (gw *Gateway) Stats() Stats {
	shed := int64(0)
	for _, c := range gw.cShed {
		shed += c.Value()
	}
	gw.mu.Lock()
	defer gw.mu.Unlock()
	return Stats{
		Submitted:  gw.cSubmitted.Value(),
		Accepted:   gw.cAccepted.Value(),
		Rejected:   gw.cRejected.Value(),
		Shed:       shed,
		Unhealthy:  gw.cUnhealthy.Value(),
		Missed:     gw.statMissed,
		Inflight:   gw.inflight,
		EstUs:      gw.statEstUs,
		DeadlineUs: gw.statDeadlineUs,
		TightestUs: gw.statTightestUs,
		Journaled:  gw.statJournaled,
	}
}

// RecordEvent appends one instant event to the gateway's fleet-event log
// (exported to Perfetto) — the autoscaler stamps its decisions here so scale
// actions line up with job waterfalls on one timeline.
func (gw *Gateway) RecordEvent(now sim.Time, name, node, detail string) {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	gw.eventLocked(now, name, node, detail)
}

// Status reads one journaled job.
func (gw *Gateway) Status(id int64) (JobStatus, bool) {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	e := gw.journal[id]
	if e == nil {
		return JobStatus{}, false
	}
	return gw.statusLocked(e), true
}

func (gw *Gateway) statusLocked(e *entry) JobStatus {
	state := e.terminal
	if state == "" {
		state = "admitted"
	}
	node := ""
	if n := len(e.dispatches); n > 0 {
		node = e.dispatches[n-1]
	}
	return JobStatus{
		ID:           e.job.ID,
		Benchmark:    e.job.Benchmark,
		Node:         node,
		State:        state,
		Class:        e.job.Class.String(),
		Accepted:     e.accepted,
		MetDeadline:  e.met,
		FellBack:     e.fellBack,
		DeadlineUs:   usOf(e.job.Deadline),
		LatencyUs:    e.latencyUs,
		Reason:       e.reason,
		RetryAfterUs: e.retryUs,
		Dispatches:   append([]string(nil), e.dispatches...),
		TraceID:      e.job.TraceID,
		MissCause:    e.cause,
	}
}

// Done returns the journaled job's completion channel (closed at its first
// terminal transition), or nil for unknown IDs.
func (gw *Gateway) Done(id int64) <-chan struct{} {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	if e := gw.journal[id]; e != nil {
		return e.done
	}
	return nil
}

// Shutdown drains the fleet: new submissions are refused, and every
// in-process backend drains its node (remote nodes drain themselves). It
// returns ctx.Err if the context expires first.
func (gw *Gateway) Shutdown(ctx context.Context, grace time.Duration) error {
	gw.draining.Store(true)
	type drainer interface{ Shutdown(time.Duration) int }
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for _, be := range gw.Backends() {
			if d, ok := unwrap(be).(drainer); ok {
				wg.Add(1)
				go func(d drainer) { defer wg.Done(); d.Shutdown(grace) }(d)
			}
		}
		wg.Wait()
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// unwrap peels chaos decorators off a backend.
func unwrap(be Backend) Backend {
	for {
		c, ok := be.(*ChaosBackend)
		if !ok {
			return be
		}
		be = c.inner
	}
}

// Shutdown drains the in-process node (Backend side of Gateway.Shutdown).
func (b *InprocBackend) Shutdown(grace time.Duration) int {
	return b.driver.Shutdown(grace)
}

// NodeStatus is one row of the GET /v1/fleet report.
type NodeStatus struct {
	Name       string `json:"name"`
	Breaker    string `json:"breaker"`
	DrainUs    int64  `json:"drain_us"`
	Unfinished int    `json:"unfinished"`

	// Phase is the scale-down lifecycle: "" (active), "draining" or
	// "retired".
	Phase string `json:"phase,omitempty"`
}

// FleetStatus is the GET /v1/fleet payload: per-node health plus the
// journal's accounting and the live no-lost-jobs verdict.
type FleetStatus struct {
	Nodes      []NodeStatus `json:"nodes"`
	Submitted  int64        `json:"submitted"`
	Accepted   int64        `json:"accepted"`
	Inflight   int          `json:"inflight"`
	Terminal   int          `json:"terminal"`
	Duplicates int64        `json:"duplicates"`
	Violations int          `json:"violations"`
}

// Fleet snapshots the fleet's health and the journal's invariant status.
func (gw *Gateway) Fleet() FleetStatus {
	// The no-lost-jobs rule is a quiescence invariant: an accepted job that
	// is simply still running is in flight, not lost. The live report
	// checks only closed entries; Inflight counts the open ones, so at
	// quiescence (inflight 0) this is the full checker verdict.
	closed := make([]verify.FleetJob, 0)
	for _, fj := range gw.FleetJobs() {
		if fj.Accepted && fj.Terminal == "" {
			continue
		}
		closed = append(closed, fj)
	}
	violations := len(verify.CheckFleet(gw.clock.Now(), closed))
	gw.mu.Lock()
	defer gw.mu.Unlock()
	fs := FleetStatus{
		Submitted:  gw.cSubmitted.Value(),
		Accepted:   gw.cAccepted.Value(),
		Inflight:   gw.inflight,
		Duplicates: gw.cDuplicates.Value(),
		Violations: violations,
	}
	for _, n := range gw.nodes {
		phase := ""
		switch {
		case n.retired:
			phase = "retired"
		case n.draining:
			phase = "draining"
		}
		fs.Nodes = append(fs.Nodes, NodeStatus{
			Name:       n.be.Name(),
			Breaker:    n.breaker.State().String(),
			DrainUs:    usOf(n.headroom.Drain),
			Unfinished: n.headroom.Unfinished,
			Phase:      phase,
		})
	}
	for _, id := range gw.order {
		if e := gw.journal[id]; e != nil && e.terminal != "" {
			fs.Terminal++
		}
	}
	return fs
}

// JobStatus is the gateway's per-job API record.
type JobStatus struct {
	ID           int64    `json:"id"`
	Benchmark    string   `json:"benchmark"`
	Node         string   `json:"node,omitempty"`
	State        string   `json:"state"`
	Class        string   `json:"class"`
	Accepted     bool     `json:"accepted"`
	MetDeadline  bool     `json:"met_deadline"`
	FellBack     bool     `json:"fell_back"`
	DeadlineUs   int64    `json:"deadline_us"`
	LatencyUs    int64    `json:"latency_us,omitempty"`
	Reason       string   `json:"reason,omitempty"`
	RetryAfterUs int64    `json:"retry_after_us,omitempty"`
	Dispatches   []string `json:"dispatches,omitempty"`
	TraceID      string   `json:"trace_id,omitempty"`
	MissCause    string   `json:"miss_cause,omitempty"`
}

// submitRequest is the POST /v1/jobs body the gateway accepts.
type submitRequest struct {
	Benchmark   string `json:"benchmark"`
	DeadlineUs  int64  `json:"deadline_us,omitempty"`
	Criticality string `json:"criticality,omitempty"`
}

// Handler returns the gateway's HTTP frontend.
func (gw *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", gw.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", gw.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", gw.handleJobTrace)
	mux.HandleFunc("GET /v1/traces", gw.handleTraces)
	mux.HandleFunc("GET /v1/fleet", gw.handleFleet)
	mux.HandleFunc("GET /metrics", gw.handleMetrics)
	mux.HandleFunc("GET /healthz", gw.handleHealthz)
	return mux
}

func (gw *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if gw.draining.Load() {
		serve.WriteReject(w, http.StatusServiceUnavailable, serve.ReasonDrain, "gateway is draining", 0)
		return
	}
	var req submitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	bench, err := workload.FindBenchmark(req.Benchmark)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	class, err := ParseClass(req.Criticality)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	deadline := bench.Deadline
	if req.DeadlineUs > 0 {
		deadline = sim.Time(req.DeadlineUs) * sim.Microsecond
	}

	id, v, reason := gw.Submit(bench, deadline, class)
	switch reason {
	case "":
	case serve.ReasonUnhealthy:
		serve.WriteReject(w, http.StatusServiceUnavailable, reason, "no healthy node", v.Retry)
		return
	default: // shed or node admission
		serve.WriteReject(w, http.StatusTooManyRequests, reason, "fleet cannot meet the deadline", v.Retry)
		return
	}

	if r.URL.Query().Get("wait") != "" {
		if ch := gw.Done(id); ch != nil {
			select {
			case <-ch:
			case <-r.Context().Done():
				return
			}
		}
		st, _ := gw.Status(id)
		httpJSON(w, http.StatusOK, st)
		return
	}
	st, _ := gw.Status(id)
	httpJSON(w, http.StatusAccepted, st)
}

func (gw *Gateway) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad job id")
		return
	}
	st, ok := gw.Status(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	httpJSON(w, http.StatusOK, st)
}

// StitchedTrace assembles one job's cross-process trace: the gateway's own
// routing/failover events plus the timeline recorded by whichever node
// finally ran the job, fetched from the backend (never under mu). The two
// halves share the gateway-minted trace ID; node spans carry the node's
// name, gateway spans carry "laxgw".
func (gw *Gateway) StitchedTrace(id int64) (obs.TraceDoc, bool) {
	gw.mu.Lock()
	e := gw.journal[id]
	if e == nil {
		gw.mu.Unlock()
		return obs.TraceDoc{}, false
	}
	st := gw.statusLocked(e)
	spans := append([]obs.WireSpan(nil), e.spans...)
	var src TraceSource
	if g := e.backend; g >= 0 && g < len(gw.nodes) {
		src, _ = gw.nodes[g].be.(TraceSource)
	}
	remoteID := e.remoteID
	deadlineUs := float64(e.job.Deadline) / float64(sim.Microsecond)
	gw.mu.Unlock()

	wire := obs.WireTrace{
		TraceID:   st.TraceID,
		Job:       strconv.FormatInt(id, 10),
		Benchmark: st.Benchmark,
		Node:      "laxgw",
		State:     st.State,
		Met:       st.MetDeadline,
		FellBack:  st.FellBack,
		SlackUs:   deadlineUs,
		LatencyUs: float64(st.LatencyUs),
		Spans:     spans,
	}
	if src != nil {
		if nt, ok := src.JobTrace(remoteID, st.TraceID); ok {
			wire.Spans = append(wire.Spans, nt.Spans...)
			// The node's latency is float-exact; the journal's is
			// truncated to whole microseconds. Prefer the exact one so
			// the phase partition sums to the latency precisely.
			if nt.LatencyUs > 0 {
				wire.LatencyUs = nt.LatencyUs
			}
		}
	}
	return obs.TraceDoc{Trace: wire, Attribution: obs.Attribute(wire)}, true
}

// handleJobTrace serves GET /v1/jobs/{id}/trace: the stitched cross-process
// trace plus its slack-budget attribution.
func (gw *Gateway) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad job id")
		return
	}
	doc, ok := gw.StitchedTrace(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	httpJSON(w, http.StatusOK, doc)
}

// handleTraces serves GET /v1/traces?n=K: stitched traces of the newest K
// terminal jobs, newest first (default 20).
func (gw *Gateway) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 20
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			httpError(w, http.StatusBadRequest, "bad n")
			return
		}
		n = v
	}
	gw.mu.Lock()
	var ids []int64
	for i := len(gw.order) - 1; i >= 0 && len(ids) < n; i-- {
		if e := gw.journal[gw.order[i]]; e != nil && e.terminal != "" {
			ids = append(ids, gw.order[i])
		}
	}
	gw.mu.Unlock()
	docs := make([]obs.TraceDoc, 0, len(ids))
	for _, id := range ids {
		if doc, ok := gw.StitchedTrace(id); ok {
			docs = append(docs, doc)
		}
	}
	httpJSON(w, http.StatusOK, docs)
}

func (gw *Gateway) handleFleet(w http.ResponseWriter, r *http.Request) {
	httpJSON(w, http.StatusOK, gw.Fleet())
}

func (gw *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	gw.reg.WritePrometheus(w)
}

func (gw *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if gw.draining.Load() {
		status = "draining"
	}
	gw.mu.Lock()
	healthy := gw.healthyLocked()
	nodes := gw.provisionedLocked()
	gw.mu.Unlock()
	httpJSON(w, http.StatusOK, map[string]any{
		"status":  status,
		"nodes":   nodes,
		"healthy": healthy,
	})
}

func httpJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	httpJSON(w, code, map[string]string{"error": msg})
}

func usOf(t sim.Time) int64 { return int64(t / sim.Microsecond) }
