package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"laxgpu/internal/faults"
	"laxgpu/internal/serve"
	"laxgpu/internal/sim"
	"laxgpu/internal/verify"
	"laxgpu/internal/workload"
)

func TestBreakerStateMachine(t *testing.T) {
	b := NewBreaker(2, 10*sim.Millisecond, 40*sim.Millisecond)
	if b.State() != BreakerClosed || !b.Allow(0) {
		t.Fatal("new breaker must be closed and probing")
	}
	if b.Failure(0) {
		t.Fatal("first failure below threshold must not trip")
	}
	if !b.Failure(sim.Millisecond) {
		t.Fatal("second consecutive failure must trip the breaker")
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	// Backoff pacing: no probe before 1ms+10ms.
	if b.Allow(5 * sim.Millisecond) {
		t.Fatal("open breaker probed before the backoff elapsed")
	}
	if !b.Allow(11 * sim.Millisecond) {
		t.Fatal("open breaker must allow a trial after the backoff")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow(12 * sim.Millisecond) {
		t.Fatal("half-open breaker must not send a second trial")
	}
	// Failed trial: backoff doubles (20ms), then caps at 40ms.
	b.Failure(11 * sim.Millisecond)
	if b.Allow(20 * sim.Millisecond) {
		t.Fatal("probe before the doubled backoff")
	}
	if !b.Allow(31 * sim.Millisecond) {
		t.Fatal("no probe after the doubled backoff")
	}
	b.Failure(31 * sim.Millisecond)
	if !b.Allow(71*sim.Millisecond) || b.State() != BreakerHalfOpen {
		t.Fatal("no probe after the capped backoff")
	}
	b.Success(71 * sim.Millisecond)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after a successful trial, want closed", b.State())
	}
	// Recovery resets the consecutive-failure count.
	if b.Failure(72 * sim.Millisecond) {
		t.Fatal("single failure after recovery must not trip")
	}
}

// fakeBackend is a scripted Backend for shedding and routing-edge tests.
type fakeBackend struct {
	name      string
	h         Headroom
	probeErr  error
	submitErr error
	verdict   Verdict
	submitted []*Job
	dones     []func(Outcome)
}

func (f *fakeBackend) Name() string { return f.name }
func (f *fakeBackend) Probe(now sim.Time) (Headroom, error) {
	if f.probeErr != nil {
		return Headroom{}, f.probeErr
	}
	return f.h, nil
}
func (f *fakeBackend) Submit(now sim.Time, job *Job, done func(Outcome)) (Verdict, error) {
	if f.submitErr != nil {
		return Verdict{}, f.submitErr
	}
	f.submitted = append(f.submitted, job)
	f.dones = append(f.dones, done)
	return f.verdict, nil
}

func TestGatewayShedsLowestCriticalityFirst(t *testing.T) {
	clock := serve.NewManualClock()
	fb := &fakeBackend{name: "node0", h: Headroom{Drain: 10 * sim.Second, Capacity: 1}, verdict: Verdict{Accepted: true}}
	gw, err := New(Options{Backends: []Backend{fb}, Clock: clock, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	gw.TickProbes(0)
	bench, err := workload.FindBenchmark("LSTM")
	if err != nil {
		t.Fatal(err)
	}

	// 10s predicted drain vs a 1s deadline: best-effort (1x) and standard
	// (4x) shed; critical (16x) rides through to the node.
	if _, v, reason := gw.Submit(bench, sim.Second, BestEffort); reason != serve.ReasonShed {
		t.Fatalf("best-effort: reason %q, want shed", reason)
	} else if v.Retry != 10*sim.Second {
		t.Errorf("best-effort retry = %v, want the honest 10s drain", v.Retry)
	}
	if _, _, reason := gw.Submit(bench, sim.Second, Standard); reason != serve.ReasonShed {
		t.Fatalf("standard: reason %q, want shed", reason)
	}
	if _, _, reason := gw.Submit(bench, sim.Second, Critical); reason != "" {
		t.Fatalf("critical: reason %q, want accepted", reason)
	}
	if len(fb.submitted) != 1 {
		t.Fatalf("node saw %d submissions, want only the critical one", len(fb.submitted))
	}
	if got := gw.cShed[BestEffort].Value() + gw.cShed[Standard].Value(); got != 2 {
		t.Errorf("shed counters = %d, want 2", got)
	}
	// A standard job with a 10s deadline tolerates a 40s backlog: accepted.
	if _, _, reason := gw.Submit(bench, 10*sim.Second, Standard); reason != "" {
		t.Fatalf("standard/10s: reason %q, want accepted", reason)
	}
}

func TestGatewayNoHealthyBackend(t *testing.T) {
	clock := serve.NewManualClock()
	fb := &fakeBackend{name: "node0", probeErr: faults.ErrNodeDown}
	gw, err := New(Options{Backends: []Backend{fb}, Clock: clock, FailThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	gw.TickProbes(0)
	bench, _ := workload.FindBenchmark("LSTM")
	_, v, reason := gw.Submit(bench, sim.Second, Standard)
	if reason != serve.ReasonUnhealthy {
		t.Fatalf("reason %q, want unhealthy", reason)
	}
	if v.Retry <= 0 {
		t.Error("unhealthy reject without a retry hint")
	}
	if vs := gw.Check(0); len(vs) != 0 {
		t.Errorf("journal violations for refused jobs: %v", vs)
	}
}

// fleet builds the 3-node in-process fleet for the chaos tests: one shared
// ManualClock, node g optionally wrapped in the chaos spec chaosBy[g].
func fleet(t *testing.T, nodes int, chaosBy map[int]string, seed int64, failThreshold int) (*Gateway, *serve.ManualClock) {
	t.Helper()
	clock := serve.NewManualClock()
	var backends []Backend
	for g := 0; g < nodes; g++ {
		ib, err := NewInprocBackend(InprocConfig{
			Name:  fmt.Sprintf("node%d", g),
			Node:  serve.NodeConfig{Scheduler: "LAX"},
			Clock: clock,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ib.Shutdown(time.Second) })
		be := Backend(ib)
		if spec, ok := chaosBy[g]; ok {
			ns, err := faults.ParseNodeSpec(spec)
			if err != nil {
				t.Fatal(err)
			}
			be = NewChaosBackend(ib, faults.NewNodePlan(ns, seed+int64(g)), clock)
		}
		backends = append(backends, be)
	}
	gw, err := New(Options{
		Backends:      backends,
		Clock:         clock,
		Seed:          seed,
		FailThreshold: failThreshold,
		ProbeBackoff:  10 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return gw, clock
}

// submitN submits n benchmark jobs with per-job exponentially growing
// deadlines, which keeps cold-table admission (hold estimate = deadline)
// accepting no matter how the router spreads them. Fails the test on any
// reject.
func submitN(t *testing.T, gw *Gateway, n int, base sim.Time) []int64 {
	t.Helper()
	bench, err := workload.FindBenchmark("LSTM")
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int64, 0, n)
	deadline := base
	for i := 0; i < n; i++ {
		id, _, reason := gw.Submit(bench, deadline, Standard)
		if reason != "" {
			t.Fatalf("submission %d refused: %s", i, reason)
		}
		ids = append(ids, id)
		deadline *= 2
	}
	return ids
}

// crashScenario runs the acceptance scenario once: 12 jobs across 3 nodes,
// node1 crashes mid-backlog, probes detect it, failover re-dispatches, the
// run drains to quiescence. Returns the final journal.
func crashScenario(t *testing.T) []verify.FleetJob {
	t.Helper()
	gw, clock := fleet(t, 3, map[int]string{1: "crash@5ms"}, 42, 1)
	gw.TickProbes(0)
	ids := submitN(t, gw, 12, sim.Second)

	// The crash instant passes; the next probe round must open node1's
	// breaker (FailThreshold 1: within one probe interval) and fail its
	// unfinished jobs over before TickProbes returns.
	clock.Set(6 * sim.Millisecond)
	gw.TickProbes(6 * sim.Millisecond)
	fs := gw.Fleet()
	if fs.Nodes[1].Breaker != "open" {
		t.Fatalf("node1 breaker = %s one probe after the crash, want open", fs.Nodes[1].Breaker)
	}
	if fs.Nodes[0].Breaker != "closed" || fs.Nodes[2].Breaker != "closed" {
		t.Fatalf("survivor breakers = %s/%s, want closed", fs.Nodes[0].Breaker, fs.Nodes[2].Breaker)
	}

	// Drain: drive the survivors far past every completion.
	clock.Set(10 * sim.Second)
	gw.TickProbes(10 * sim.Second)
	if n := gw.Inflight(); n != 0 {
		t.Fatalf("%d jobs still in flight after the drain", n)
	}
	for _, id := range ids {
		select {
		case <-gw.Done(id):
		default:
			t.Fatalf("job %d never reached a terminal state", id)
		}
	}
	if vs := gw.Check(10 * sim.Second); len(vs) != 0 {
		t.Fatalf("no-lost-jobs violations: %v", vs)
	}
	return gw.FleetJobs()
}

func TestGatewayCrashFailoverLossless(t *testing.T) {
	jobs := crashScenario(t)
	redispatched := 0
	for _, j := range jobs {
		if !j.Accepted {
			t.Fatalf("job %d was refused; the scenario expects full acceptance", j.ID)
		}
		if len(j.Dispatches) > 1 {
			redispatched++
			if j.Dispatches[0] != "node1" {
				t.Errorf("job %d failed over from %s, want node1", j.ID, j.Dispatches[0])
			}
			last := j.Dispatches[len(j.Dispatches)-1]
			if last == "node1" {
				t.Errorf("job %d re-dispatched back to the dead node", j.ID)
			}
		}
	}
	if redispatched == 0 {
		t.Fatal("the crash stranded no jobs — the scenario lost its teeth")
	}
}

func TestGatewayCrashFailoverDeterministic(t *testing.T) {
	a := crashScenario(t)
	b := crashScenario(t)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("reruns diverged:\n run A: %+v\n run B: %+v", a, b)
	}
}

func TestGatewayFreezeDuplicateTerminalAndRecovery(t *testing.T) {
	gw, clock := fleet(t, 2, map[int]string{0: "freeze@5ms+20ms"}, 7, 1)
	gw.TickProbes(0)
	bench, _ := workload.FindBenchmark("LSTM")
	id, _, reason := gw.Submit(bench, 60*sim.Second, Standard)
	if reason != "" {
		t.Fatalf("submission refused: %s", reason)
	}

	// Probe inside the freeze window: breaker opens, the job fails over to
	// node1 — but node0 still holds its copy.
	clock.Set(6 * sim.Millisecond)
	gw.TickProbes(6 * sim.Millisecond)
	if fs := gw.Fleet(); fs.Nodes[0].Breaker != "open" {
		t.Fatalf("node0 breaker = %s inside the freeze, want open", fs.Nodes[0].Breaker)
	}

	// Past the thaw and the backoff: the recovery probe closes the breaker,
	// node0 delivers its late completion (the first terminal), and node1's
	// copy lands as a deduplicated duplicate.
	clock.Set(100 * sim.Millisecond)
	gw.TickProbes(100 * sim.Millisecond)
	fs := gw.Fleet()
	if fs.Nodes[0].Breaker != "closed" {
		t.Fatalf("node0 breaker = %s after the thaw, want closed (recovery)", fs.Nodes[0].Breaker)
	}
	if fs.Duplicates != 1 {
		t.Fatalf("duplicates = %d, want exactly the late copy", fs.Duplicates)
	}
	select {
	case <-gw.Done(id):
	default:
		t.Fatal("job never reached a terminal state")
	}
	st, _ := gw.Status(id)
	if st.State != "done" || !reflect.DeepEqual(st.Dispatches, []string{"node0", "node1"}) {
		t.Fatalf("status = %+v, want done via node0 then node1", st)
	}
	if vs := gw.Check(sim.Second); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}

func TestGatewayHTTPAndMetrics(t *testing.T) {
	gw, clock := fleet(t, 2, nil, 3, 3)
	gw.TickProbes(0)
	hs := httptest.NewServer(gw.Handler())
	defer hs.Close()

	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"benchmark":"LSTM","deadline_us":60000000,"criticality":"critical"}`))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.State != "admitted" || st.Class != "critical" {
		t.Fatalf("status %d, body %+v", resp.StatusCode, st)
	}

	clock.Set(sim.Second)
	gw.TickProbes(sim.Second)

	r2, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d", hs.URL, st.ID))
	if err != nil {
		t.Fatal(err)
	}
	var done JobStatus
	json.NewDecoder(r2.Body).Decode(&done)
	r2.Body.Close()
	if done.State != "done" || done.Node != "node0" {
		t.Fatalf("final status = %+v", done)
	}

	r3, err := http.Get(hs.URL + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	var fs FleetStatus
	json.NewDecoder(r3.Body).Decode(&fs)
	r3.Body.Close()
	if fs.Violations != 0 || fs.Terminal != 1 || len(fs.Nodes) != 2 {
		t.Fatalf("fleet = %+v", fs)
	}

	r4, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := readAll(r4)
	for _, want := range []string{
		`laxgw_breaker_state{node="node0"} 0`,
		`laxgw_breaker_state{node="node1"} 0`,
		"laxgw_jobs_accepted_total 1",
		"laxgw_redispatch_latency_us_count 0",
	} {
		if !bytes.Contains(text, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func readAll(r *http.Response) ([]byte, error) {
	defer r.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(r.Body)
	return buf.Bytes(), err
}
