package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"laxgpu/internal/obs"
	"laxgpu/internal/serve"
	"laxgpu/internal/sim"
	"laxgpu/internal/verify"
)

// RemoteBackend fronts one laxd daemon over HTTP: probes hit GET
// /v1/headroom, submissions POST /v1/jobs without waiting, and a background
// poller follows each accepted job's GET /v1/jobs/{id} record to its
// terminal state. The gateway cannot tell it apart from an in-process node
// — which is the point: the chaos suite exercises failover in-process, and
// the same journal and breakers protect a real fleet.
type RemoteBackend struct {
	name   string
	base   string
	client *http.Client

	// Poll is the wall interval between job-status polls (default 25ms).
	Poll time.Duration

	mu      sync.Mutex
	stopped bool
	stop    chan struct{}
}

// NewRemoteBackend fronts the laxd daemon at base (e.g.
// "http://127.0.0.1:8080"). name identifies it in journals and metrics.
func NewRemoteBackend(name, base string, client *http.Client) *RemoteBackend {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	return &RemoteBackend{
		name:   name,
		base:   strings.TrimRight(base, "/"),
		client: client,
		Poll:   25 * time.Millisecond,
		stop:   make(chan struct{}),
	}
}

// Name implements Backend.
func (b *RemoteBackend) Name() string { return b.name }

// Close stops every outstanding completion poller.
func (b *RemoteBackend) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.stopped {
		b.stopped = true
		close(b.stop)
	}
}

// Probe implements Backend via GET /v1/headroom.
func (b *RemoteBackend) Probe(now sim.Time) (Headroom, error) {
	resp, err := b.client.Get(b.base + "/v1/headroom")
	if err != nil {
		return Headroom{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Headroom{}, fmt.Errorf("gateway: %s: headroom status %d", b.name, resp.StatusCode)
	}
	var hs serve.HeadroomStatus
	if err := json.NewDecoder(resp.Body).Decode(&hs); err != nil {
		return Headroom{}, err
	}
	return Headroom{
		Drain:      sim.Time(hs.DrainUs) * sim.Microsecond,
		Unfinished: hs.Unfinished,
		Capacity:   hs.Devices,
		Draining:   hs.Draining,
	}, nil
}

// remoteSubmit is the POST /v1/jobs body sent to the node. The gateway has
// already sampled the kernel chain for its routing estimate, but laxd
// samples its own — the node's admission decision is what matters, and the
// benchmark name pins the workload distribution.
type remoteSubmit struct {
	Benchmark  string `json:"benchmark"`
	DeadlineUs int64  `json:"deadline_us,omitempty"`
}

// Submit implements Backend: POST the job, interpret the verdict, and poll
// the job record to its terminal state in the background.
func (b *RemoteBackend) Submit(now sim.Time, job *Job, done func(Outcome)) (Verdict, error) {
	body, err := json.Marshal(remoteSubmit{
		Benchmark:  job.Benchmark,
		DeadlineUs: usOf(job.Deadline),
	})
	if err != nil {
		return Verdict{}, err
	}
	req, err := http.NewRequest(http.MethodPost, b.base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return Verdict{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	if job.TraceID != "" {
		// Propagate the gateway-minted trace ID so the node's spans stitch
		// with ours; the parent span ID is derived from the gateway job ID.
		req.Header.Set("traceparent", obs.FormatTraceparent(job.TraceID, obs.SpanIDFrom(0x6c617867, uint64(job.ID))))
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return Verdict{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return Verdict{}, err
	}
	var st serve.JobStatus
	switch resp.StatusCode {
	case http.StatusAccepted:
		if err := json.Unmarshal(raw, &st); err != nil {
			return Verdict{}, err
		}
		go b.follow(st.ID, done)
		return Verdict{Accepted: true, RemoteID: st.ID}, nil
	case http.StatusTooManyRequests:
		if err := json.Unmarshal(raw, &st); err != nil {
			return Verdict{}, err
		}
		return Verdict{Accepted: false, Retry: sim.Time(st.RetryAfterUs) * sim.Microsecond}, nil
	default:
		// 503 (drain, backpressure) and everything else: the node did not
		// take the job; the gateway may re-dispatch it.
		return Verdict{}, fmt.Errorf("gateway: %s: submit status %d: %s", b.name, resp.StatusCode, raw)
	}
}

// JobTrace implements TraceSource via GET /v1/jobs/{id}/trace on the node.
func (b *RemoteBackend) JobTrace(remoteID int64, traceID string) (obs.WireTrace, bool) {
	resp, err := b.client.Get(fmt.Sprintf("%s/v1/jobs/%d/trace", b.base, remoteID))
	if err != nil {
		return obs.WireTrace{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return obs.WireTrace{}, false
	}
	var doc obs.TraceDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return obs.WireTrace{}, false
	}
	if traceID != "" && doc.Trace.TraceID != traceID {
		return obs.WireTrace{}, false
	}
	return doc.Trace, true
}

// follow polls one accepted job's record until it turns terminal, then
// fires done. If the node dies, the poll errors forever and done never
// fires — exactly the lost completion the gateway's failover recovers.
func (b *RemoteBackend) follow(remoteID int64, done func(Outcome)) {
	url := fmt.Sprintf("%s/v1/jobs/%d", b.base, remoteID)
	t := time.NewTicker(b.Poll)
	defer t.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-t.C:
		}
		resp, err := b.client.Get(url)
		if err != nil {
			continue
		}
		var st serve.JobStatus
		decErr := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if decErr != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		switch st.State {
		case "done":
			done(Outcome{
				Terminal: verify.FleetDone,
				Met:      st.MetDeadline,
				FellBack: st.FellBack,
				Latency:  sim.Time(st.LatencyUs) * sim.Microsecond,
				Cause:    st.MissCause,
			})
			return
		case "cancelled":
			done(Outcome{Terminal: verify.FleetCancelled, Cause: st.MissCause})
			return
		case "rejected", "dropped":
			// Should not happen for an accepted job; treat as cancelled so
			// the journal still closes the entry.
			done(Outcome{Terminal: verify.FleetCancelled, Cause: st.MissCause})
			return
		}
	}
}
