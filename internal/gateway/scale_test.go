package gateway

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"laxgpu/internal/faults"
	"laxgpu/internal/serve"
	"laxgpu/internal/sim"
	"laxgpu/internal/verify"
	"laxgpu/internal/workload"
)

// addInproc builds one in-process node on the gateway's clock and joins it
// to the fleet mid-run.
func addInproc(t *testing.T, gw *Gateway, clock serve.Clock, name string) (*InprocBackend, int) {
	t.Helper()
	ib, err := NewInprocBackend(InprocConfig{
		Name:  name,
		Node:  serve.NodeConfig{Scheduler: "LAX"},
		Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ib.Shutdown(time.Second) })
	return ib, gw.AddBackend(ib)
}

func TestGatewayAddBackendRoutesNewWork(t *testing.T) {
	gw, clock := fleet(t, 1, nil, 11, 3)
	gw.TickProbes(0)
	submitN(t, gw, 4, sim.Second)

	_, g := addInproc(t, gw, clock, "late0")
	if g != 1 {
		t.Fatalf("AddBackend index = %d, want 1", g)
	}
	if n := gw.ActiveNodes(); n != 2 {
		t.Fatalf("ActiveNodes = %d after AddBackend, want 2", n)
	}

	// The new node joins idle; node0 carries a 4-job backlog. Headroom
	// routing must steer the next submissions at the newcomer.
	gw.TickProbes(0)
	submitN(t, gw, 2, 32*sim.Second)
	routed := 0
	for _, j := range gw.FleetJobs() {
		for _, d := range j.Dispatches {
			if d == "late0" {
				routed++
			}
		}
	}
	if routed == 0 {
		t.Fatal("no job routed to the node added mid-run")
	}

	clock.Set(10 * sim.Second)
	gw.TickProbes(10 * sim.Second)
	if n := gw.Inflight(); n != 0 {
		t.Fatalf("%d jobs in flight after drain", n)
	}
	if vs := gw.Check(10 * sim.Second); len(vs) != 0 {
		t.Fatalf("journal violations: %v", vs)
	}
}

func TestGatewayDrainBackendGraceful(t *testing.T) {
	gw, clock := fleet(t, 2, nil, 12, 3)
	gw.TickProbes(0)
	ids := submitN(t, gw, 6, sim.Second)

	// Find a node with inflight work and drain it.
	var target int
	for _, l := range gw.Loads() {
		if l.Inflight > 0 {
			target = l.Index
			break
		}
	}
	left, err := gw.DrainBackend(target)
	if err != nil {
		t.Fatal(err)
	}
	if left == 0 {
		t.Fatal("drained a node with no inflight work; the test wants a busy one")
	}
	name := gw.Loads()[target].Name

	// While draining: not retired, receives no new work.
	if got := gw.DrainedNodes(); len(got) != 0 {
		t.Fatalf("node retired with %d jobs inflight: %v", left, got)
	}
	beforeDispatches := countDispatches(gw, name)
	submitN(t, gw, 3, 64*sim.Second)
	if after := countDispatches(gw, name); after != beforeDispatches {
		t.Fatalf("draining node %s received new work (%d -> %d dispatches)", name, beforeDispatches, after)
	}

	// Completion of its admitted work retires it.
	clock.Set(10 * sim.Second)
	gw.TickProbes(10 * sim.Second)
	if got := gw.DrainedNodes(); len(got) != 1 || got[0] != name {
		t.Fatalf("DrainedNodes = %v, want [%s]", got, name)
	}
	if n := gw.Inflight(); n != 0 {
		t.Fatalf("%d jobs in flight after drain", n)
	}
	for _, id := range ids {
		select {
		case <-gw.Done(id):
		default:
			t.Fatalf("job %d never reached a terminal state", id)
		}
	}
	if vs := gw.Check(10 * sim.Second); len(vs) != 0 {
		t.Fatalf("scale-down violations: %v", vs)
	}
	// Double drain of a retired node errors.
	if _, err := gw.DrainBackend(target); err == nil {
		t.Fatal("DrainBackend on a retired node must error")
	}
}

// countDispatches counts journal dispatches naming the node.
func countDispatches(gw *Gateway, name string) int {
	n := 0
	for _, j := range gw.FleetJobs() {
		for _, d := range j.Dispatches {
			if d == name {
				n++
			}
		}
	}
	return n
}

// scaleChurnScenario drives a full grow/drain cycle with a crash landing on
// the draining node: the drain must hand its orphans to failover, every job
// must reach exactly one terminal state, and the retired ledger must hold.
func scaleChurnScenario(t *testing.T) ([]verify.FleetJob, []string) {
	t.Helper()
	gw, clock := fleet(t, 2, map[int]string{1: "crash@5ms"}, 21, 1)
	gw.TickProbes(0)
	submitN(t, gw, 8, sim.Second)

	// Drain node1 while it still holds work — then its crash instant hits
	// mid-drain and failover must pick up the remainder.
	if _, err := gw.DrainBackend(1); err != nil {
		t.Fatal(err)
	}
	_, g := addInproc(t, gw, clock, "grown0")
	clock.Set(6 * sim.Millisecond)
	gw.TickProbes(6 * sim.Millisecond)

	submitN(t, gw, 4, 128*sim.Second)
	clock.Set(10 * sim.Second)
	gw.TickProbes(10 * sim.Second)

	// Scale the grown node back down once idle.
	if left, err := gw.DrainBackend(g); err != nil || left != 0 {
		t.Fatalf("drain of idle grown node: left=%d err=%v", left, err)
	}
	if n := gw.Inflight(); n != 0 {
		t.Fatalf("%d jobs in flight at quiescence", n)
	}
	if vs := gw.Check(10 * sim.Second); len(vs) != 0 {
		t.Fatalf("violations after scale churn under chaos: %v", vs)
	}
	return gw.FleetJobs(), gw.DrainedNodes()
}

func TestGatewayScaleChurnUnderChaosLossless(t *testing.T) {
	jobs, drained := scaleChurnScenario(t)
	if len(drained) != 2 {
		t.Fatalf("drained = %v, want the crashed-draining node and the grown node", drained)
	}
	// The crashed draining node's stranded jobs moved somewhere that isn't
	// node1, and nothing terminal is missing.
	redispatched := 0
	for _, j := range jobs {
		if j.Terminal == "" {
			t.Fatalf("job %d has no terminal state", j.ID)
		}
		if len(j.Dispatches) > 1 && j.Dispatches[0] == "node1" {
			redispatched++
		}
	}
	if redispatched == 0 {
		t.Fatal("the mid-drain crash stranded no jobs — the scenario lost its teeth")
	}
}

func TestGatewayScaleChurnDeterministic(t *testing.T) {
	jobsA, drainedA := scaleChurnScenario(t)
	jobsB, drainedB := scaleChurnScenario(t)
	if !reflect.DeepEqual(jobsA, jobsB) || !reflect.DeepEqual(drainedA, drainedB) {
		t.Fatal("scale churn reruns diverged")
	}
}

func TestGatewayCapacityFracFeedsLoads(t *testing.T) {
	clock := serve.NewManualClock()
	degraded := &fakeBackend{name: "deg", h: Headroom{Drain: 0, Capacity: 1, CapacityFrac: 0.25},
		verdict: Verdict{Accepted: true}}
	healthy := &fakeBackend{name: "ok", h: Headroom{Drain: 0, Capacity: 1},
		verdict: Verdict{Accepted: true}}
	gw, err := New(Options{Backends: []Backend{degraded, healthy}, Clock: clock, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	gw.TickProbes(0)
	loads := gw.Loads()
	if loads[0].CapacityFrac != 0.25 {
		t.Fatalf("degraded CapacityFrac = %g, want 0.25", loads[0].CapacityFrac)
	}
	if loads[1].CapacityFrac != 1 {
		t.Fatalf("unreported CapacityFrac = %g, want the assumed 1", loads[1].CapacityFrac)
	}
	// Equal drains: the router must prefer the healthy node (load/capacity
	// scoring), so the first submission lands on "ok".
	bench, _ := workload.FindBenchmark("LSTM")
	if _, _, reason := gw.Submit(bench, sim.Second, Standard); reason != "" {
		t.Fatalf("submit refused: %s", reason)
	}
	if len(healthy.submitted) != 1 || len(degraded.submitted) != 0 {
		t.Fatalf("routing ignored capacity fraction: healthy=%d degraded=%d",
			len(healthy.submitted), len(degraded.submitted))
	}
}

func TestGatewayInprocCapacityFracTracksCURetirement(t *testing.T) {
	clock := serve.NewManualClock()
	ib, err := NewInprocBackend(InprocConfig{
		Name:  "cu0",
		Node:  serve.NodeConfig{Scheduler: "LAX"},
		Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ib.Shutdown(time.Second) })
	h, err := ib.Probe(0)
	if err != nil {
		t.Fatal(err)
	}
	if h.CapacityFrac != 1 {
		t.Fatalf("fresh node CapacityFrac = %g, want 1", h.CapacityFrac)
	}
	// Retire half the CUs through the node's own device and re-probe.
	var active, retired int
	if !ib.Driver().Call(func() {
		dev := ib.node.System().Device()
		dev.RetireCUs(dev.ActiveCUs() / 2)
		active, retired = dev.ActiveCUs(), dev.RetiredCUsCount()
	}) {
		t.Fatal("driver call failed")
	}
	h, err = ib.Probe(0)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(active) / float64(active+retired)
	if h.CapacityFrac != want {
		t.Fatalf("CapacityFrac = %g after retiring CUs, want %g", h.CapacityFrac, want)
	}
}

func TestCheckFleetScaledCatchesLostDrain(t *testing.T) {
	jobs := []verify.FleetJob{
		{ID: 1, Accepted: true, Terminal: verify.FleetDone, Dispatches: []string{"node0"}},
		{ID: 2, Accepted: true, Terminal: "", Dispatches: []string{"node1"}},
	}
	// Without the retired ledger job 2 is merely in flight...
	vs := verify.CheckFleetScaled(0, jobs, nil)
	found := false
	for _, v := range vs {
		if v.Rule == "fleet-drain-lossless" {
			found = true
		}
	}
	if found {
		t.Fatal("drain-lossless fired without any retired node")
	}
	// ...but once node1 retired, a live job it still owns is a loss.
	vs = verify.CheckFleetScaled(0, jobs, []string{"node1"})
	found = false
	for _, v := range vs {
		if v.Rule == "fleet-drain-lossless" && v.Job == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("drain-lossless missed the lost job: %v", vs)
	}
}

// TestGatewayChaosRetirementShrinksRouting wires the CU-retirement chaos
// plan through a real backend: after the fault fires, probes report a
// sub-1 capacity fraction and the router steers away from the degraded node.
func TestGatewayChaosRetirementShrinksRouting(t *testing.T) {
	// Build directly (not via fleet()) so only node0 carries the fault.
	clock := serve.NewManualClock()
	retire, err := faults.ParseSpec("retire=4@1ms")
	if err != nil {
		t.Fatal(err)
	}
	var backends []Backend
	for g := 0; g < 2; g++ {
		cfg := serve.NodeConfig{Scheduler: "LAX"}
		if g == 0 {
			cfg.Faults = retire
		}
		ib, err := NewInprocBackend(InprocConfig{
			Name:  fmt.Sprintf("node%d", g),
			Node:  cfg,
			Clock: clock,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ib.Shutdown(time.Second) })
		backends = append(backends, ib)
	}
	gw, err := New(Options{Backends: backends, Clock: clock, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	gw.TickProbes(0)
	// Trip the fault by advancing past its instant, then probe.
	clock.Set(2 * sim.Millisecond)
	gw.TickProbes(2 * sim.Millisecond)
	loads := gw.Loads()
	if loads[0].CapacityFrac >= 1 || loads[0].CapacityFrac <= 0 {
		t.Fatalf("degraded node frac = %g after retiring half the CUs, want in (0,1)", loads[0].CapacityFrac)
	}
	if loads[1].CapacityFrac != 1 {
		t.Fatalf("healthy node frac = %g, want 1", loads[1].CapacityFrac)
	}
}
