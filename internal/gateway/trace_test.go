package gateway

import (
	"testing"

	"laxgpu/internal/obs"
	"laxgpu/internal/sim"
	"laxgpu/internal/workload"
)

// TestGatewayStitchedTrace submits one job through the gateway to an
// in-process node and checks the stitched trace: the gateway's routing event
// and the node's phase partition under one trace ID, with the node phases
// summing to the job's latency.
func TestGatewayStitchedTrace(t *testing.T) {
	gw, clock := fleet(t, 2, nil, 11, 3)
	gw.TickProbes(0)
	bench, err := workload.FindBenchmark("LSTM")
	if err != nil {
		t.Fatal(err)
	}
	id, v, reason := gw.Submit(bench, 60*sim.Second, Standard)
	if reason != "" || !v.Accepted {
		t.Fatalf("submit refused: %q", reason)
	}
	clock.Set(10 * sim.Second)
	gw.TickProbes(10 * sim.Second)
	select {
	case <-gw.Done(id):
	default:
		t.Fatal("job never finished")
	}

	st, ok := gw.Status(id)
	if !ok || st.TraceID == "" {
		t.Fatalf("status = %+v, want a trace ID", st)
	}
	doc, ok := gw.StitchedTrace(id)
	if !ok {
		t.Fatal("no stitched trace")
	}
	tr := doc.Trace
	if tr.TraceID != st.TraceID {
		t.Errorf("trace ID %q != status trace ID %q", tr.TraceID, st.TraceID)
	}

	var routeNodes, phaseNodes []string
	var phaseSum float64
	for _, s := range tr.Spans {
		switch {
		case s.Name == obs.EventRoute:
			routeNodes = append(routeNodes, s.Node)
		case s.Kind == obs.SpanPhase:
			phaseNodes = append(phaseNodes, s.Node)
			phaseSum += s.EndUs - s.StartUs
		}
	}
	if len(routeNodes) != 1 || routeNodes[0] != "laxgw" {
		t.Errorf("route spans on %v, want exactly one on laxgw", routeNodes)
	}
	if len(phaseNodes) < 3 {
		t.Fatalf("phase spans on %v, want the node's parse/queue/exec", phaseNodes)
	}
	for _, n := range phaseNodes {
		if n != st.Node {
			t.Errorf("phase span from %q, want the dispatched node %q", n, st.Node)
		}
	}
	if diff := phaseSum - tr.LatencyUs; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("phase sum %vus != latency %vus", phaseSum, tr.LatencyUs)
	}
	if st.MetDeadline && doc.Attribution.Cause != "" {
		t.Errorf("met job attributed cause %q", doc.Attribution.Cause)
	}
}

// TestChaosTracePropagation is the kill-9 propagation scenario: node1 dies
// mid-backlog, failover re-dispatches its jobs, and every re-dispatched
// job's stitched trace must show the journal re-dispatch event, carry spans
// from exactly one surviving node (no orphan spans from the dead dispatch,
// no duplicated phases) and agree with the journal's dispatch ledger — the
// fleet-trace-consistency rule checked by crashScenario's gw.Check.
func TestChaosTracePropagation(t *testing.T) {
	gw, clock := fleet(t, 3, map[int]string{1: "crash@5ms"}, 42, 1)
	gw.TickProbes(0)
	ids := submitN(t, gw, 12, sim.Second)

	clock.Set(6 * sim.Millisecond)
	gw.TickProbes(6 * sim.Millisecond)
	clock.Set(10 * sim.Second)
	gw.TickProbes(10 * sim.Second)
	if vs := gw.Check(10 * sim.Second); len(vs) != 0 {
		t.Fatalf("fleet violations (incl. trace consistency): %v", vs)
	}

	redispatched := 0
	for _, id := range ids {
		st, ok := gw.Status(id)
		if !ok {
			t.Fatalf("job %d vanished", id)
		}
		doc, ok := gw.StitchedTrace(id)
		if !ok {
			t.Fatalf("job %d has no stitched trace", id)
		}
		execNodes := map[string]int{}
		redisp := 0
		for _, s := range doc.Trace.Spans {
			if s.Kind == obs.SpanPhase && s.Name == obs.PhaseExec {
				execNodes[s.Node]++
			}
			if s.Name == obs.EventRedispatch {
				redisp++
			}
		}
		if len(st.Dispatches) > 1 && st.Node != "cpu" {
			redispatched++
			if redisp == 0 {
				t.Errorf("job %d failed over (%v) but its trace has no redispatch event", id, st.Dispatches)
			}
			// The stitched trace carries the surviving dispatch's timeline
			// only: one exec phase, from the node that actually ran it.
			if len(execNodes) > 1 {
				t.Errorf("job %d has exec phases from %v — orphan spans from the dead dispatch", id, execNodes)
			}
			for n, c := range execNodes {
				if n != st.Node || c != 1 {
					t.Errorf("job %d exec phase %dx on %q, want 1x on %q", id, c, n, st.Node)
				}
			}
		}
		if st.State == "fallback" && doc.Attribution.Cause != "faulted" {
			t.Errorf("job %d fell back but attribution = %q", id, doc.Attribution.Cause)
		}
	}
	if redispatched == 0 {
		t.Fatal("the crash re-dispatched nothing — the scenario lost its teeth")
	}

	// The breaker trip and each re-dispatch surface as fleet events.
	evs := gw.FleetEvents()
	var opens, redispatches int
	for _, e := range evs {
		switch e.Name {
		case obs.EventBreaker:
			if e.Detail == "open" && e.Node == "node1" {
				opens++
			}
		case obs.EventRedispatch:
			redispatches++
		}
	}
	if opens == 0 {
		t.Error("no breaker-open fleet event for node1")
	}
	if redispatches != redispatched {
		t.Errorf("%d redispatch fleet events, want %d", redispatches, redispatched)
	}

	// Fleet events render as Perfetto instants without touching probe tracks.
	p := obs.NewPerfetto()
	before := p.Events()
	p.AddFleetEvents(evs)
	if p.Events() <= before {
		t.Error("AddFleetEvents emitted nothing")
	}
}

// TestGatewayMissCauseCounters checks the per-class SLO burn counters: a
// shed submission burns its class's "rejected" counter.
func TestGatewayMissCauseCounters(t *testing.T) {
	gw, _ := fleet(t, 1, nil, 3, 3)
	// No probe round has run: every breaker is closed but headroom is zero,
	// so submit a job with an impossible backlog by leaving the node
	// unprobed and using the no-healthy path instead: trip it via strike.
	bench, err := workload.FindBenchmark("LSTM")
	if err != nil {
		t.Fatal(err)
	}
	gw.strike(0, 0)
	gw.strike(0, 0)
	gw.strike(0, 0)
	_, _, reason := gw.Submit(bench, sim.Second, Critical)
	if reason == "" {
		t.Fatal("submission with every node dead was accepted")
	}
	if got := gw.cMissCause[Critical]["rejected"].Value(); got != 1 {
		t.Errorf("laxgw_miss_cause_total{class=critical,cause=rejected} = %d, want 1", got)
	}
	if got := gw.cMissCause[Standard]["rejected"].Value(); got != 0 {
		t.Errorf("standard-class rejected counter = %d, want 0", got)
	}
}
