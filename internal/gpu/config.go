package gpu

import "fmt"

// Config holds the device parameters. DefaultConfig matches Table 2 of the
// paper (the simulated system).
type Config struct {
	// NumCUs is the number of compute units (Table 2: 8).
	NumCUs int

	// ThreadsPerCU is the maximum concurrent thread contexts per CU
	// (GCN: 2560 = 4 SIMD units × 10 wavefronts × 64 lanes).
	ThreadsPerCU int

	// SIMDPerCU and WavefrontsPerSIMD bound wavefront slots (Table 2: 4 and
	// 10).
	SIMDPerCU         int
	WavefrontsPerSIMD int

	// WavefrontSize is the number of threads per wavefront (GCN: 64).
	WavefrontSize int

	// VGPRBytesPerCU is the vector register file size per CU (Table 2:
	// 256 KB).
	VGPRBytesPerCU int

	// LDSBytesPerCU is the local data store per CU (GCN: 64 KB).
	LDSBytesPerCU int

	// MemBandwidthDemand is the aggregate memory demand (in thread-demand
	// units: Σ active WGs of MemIntensity × ThreadsPerWG) the memory system
	// sustains without slowdown. Beyond it, the memory fraction of WG
	// latency stretches linearly — the contention signal LAX's profiling
	// table must track.
	MemBandwidthDemand float64

	// L2BandwidthDemand, when positive, enables the two-level memory
	// model: each kernel's L2HitFrac of its traffic contends for this
	// (larger) L2 bandwidth pool while the remainder contends for
	// MemBandwidthDemand (DRAM). Zero keeps the single-level model, under
	// which L2HitFrac is ignored — the default, and the configuration all
	// published results use.
	L2BandwidthDemand float64

	// EnergyPerInstPJ is the dynamic energy per executed instruction in
	// picojoules (per-instruction energy model, §5 / [6][81]).
	EnergyPerInstPJ float64

	// StaticPowerWatts is the constant leakage + idle power drawn for the
	// whole makespan.
	StaticPowerWatts float64

	// Placement selects how the WG scheduler picks a CU for each
	// workgroup. The default (FirstFit) matches a simple hardware
	// scanner; BestFit packs tightest and resists fragmentation;
	// RoundRobin spreads load (and heat) evenly.
	Placement PlacementPolicy
}

// PlacementPolicy selects the CU-selection strategy for WG dispatch.
type PlacementPolicy int

const (
	// FirstFit scans CUs in index order and places the WG on the first
	// with room.
	FirstFit PlacementPolicy = iota
	// BestFit places the WG on the CU with the least free threads that
	// still fits it, keeping large holes intact for wide workgroups.
	BestFit
	// RoundRobin starts each placement scan after the last CU used.
	RoundRobin
)

func (p PlacementPolicy) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case BestFit:
		return "best-fit"
	case RoundRobin:
		return "round-robin"
	default:
		return fmt.Sprintf("PlacementPolicy(%d)", int(p))
	}
}

// DefaultConfig returns the Table 2 machine.
func DefaultConfig() Config {
	return Config{
		NumCUs:            8,
		ThreadsPerCU:      2560,
		SIMDPerCU:         4,
		WavefrontsPerSIMD: 10,
		WavefrontSize:     64,
		VGPRBytesPerCU:    256 << 10,
		LDSBytesPerCU:     64 << 10,
		// 60% of full-device thread occupancy issuing memory traffic
		// saturates bandwidth: 8 × 2560 × 0.6 = 12288 demand units.
		MemBandwidthDemand: 12288,
		EnergyPerInstPJ:    10,
		StaticPowerWatts:   25,
	}
}

// WavefrontsPerCU returns the wavefront slot count per CU.
func (c Config) WavefrontsPerCU() int { return c.SIMDPerCU * c.WavefrontsPerSIMD }

// TotalThreads returns the device-wide thread context capacity.
func (c Config) TotalThreads() int { return c.NumCUs * c.ThreadsPerCU }

// Validate reports the first configuration error, or nil.
func (c Config) Validate() error {
	switch {
	case c.NumCUs <= 0:
		return fmt.Errorf("gpu: NumCUs = %d, must be positive", c.NumCUs)
	case c.ThreadsPerCU <= 0:
		return fmt.Errorf("gpu: ThreadsPerCU = %d, must be positive", c.ThreadsPerCU)
	case c.SIMDPerCU <= 0 || c.WavefrontsPerSIMD <= 0:
		return fmt.Errorf("gpu: SIMD/wavefront configuration must be positive")
	case c.WavefrontSize <= 0:
		return fmt.Errorf("gpu: WavefrontSize = %d, must be positive", c.WavefrontSize)
	case c.VGPRBytesPerCU < 0 || c.LDSBytesPerCU < 0:
		return fmt.Errorf("gpu: negative register/LDS capacity")
	case c.MemBandwidthDemand <= 0:
		return fmt.Errorf("gpu: MemBandwidthDemand = %v, must be positive", c.MemBandwidthDemand)
	case c.EnergyPerInstPJ < 0 || c.StaticPowerWatts < 0:
		return fmt.Errorf("gpu: negative energy parameters")
	case c.Placement != FirstFit && c.Placement != BestFit && c.Placement != RoundRobin:
		return fmt.Errorf("gpu: unknown placement policy %d", int(c.Placement))
	}
	return nil
}
