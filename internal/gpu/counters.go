package gpu

import "laxgpu/internal/sim"

// KernelCounter accumulates per-kernel-type dispatch/completion counts and
// the kernel's busy time (wall-clock with at least one WG of this type in
// flight). The command processor samples these to maintain the Kernel
// Profiling Table's WG completion rates (§4.2). Rates are computed against
// busy time, not wall time: a window in which the kernel never ran says
// nothing about how fast it completes when scheduled, only contention while
// running should move the rate.
type KernelCounter struct {
	Name           string
	WGsDispatched  uint64
	WGsCompleted   uint64
	WGsKilled      uint64
	LastCompletion sim.Time

	inFlight  int
	busyNs    sim.Time
	busySince sim.Time

	// latencySumNs accumulates the actual dispatch-to-completion latency of
	// every finished WG; windowed ΔlatencySum/Δcompletions is the exact
	// mean latency of the WGs that completed in the window.
	latencySumNs sim.Time

	// wgNs integrates (in-flight WGs × time): the denominator of the mean
	// WG latency estimate Δcompletions/ΔwgNs.
	wgNs      sim.Time
	lastEvent sim.Time

	// id is the counter's dense index in Counters.byID, cached on kernel
	// instances so the per-WG hot path is a slice access.
	id int
}

// BusyTime returns the cumulative time the kernel type had WGs in flight,
// up to now.
func (k *KernelCounter) BusyTime(now sim.Time) sim.Time {
	b := k.busyNs
	if k.inFlight > 0 {
		b += now - k.busySince
	}
	return b
}

// LatencySum returns the summed dispatch-to-completion latencies of this
// kernel type's finished WGs.
func (k *KernelCounter) LatencySum() sim.Time { return k.latencySumNs }

// WGTime returns the cumulative WG-time integral (Σ in-flight WGs over
// time) up to now. Completions divided by this integral give the inverse
// mean per-WG latency under the contention actually experienced.
func (k *KernelCounter) WGTime(now sim.Time) sim.Time {
	return k.wgNs + sim.Time(k.inFlight)*(now-k.lastEvent)
}

func (k *KernelCounter) accumulate(now sim.Time) {
	k.wgNs += sim.Time(k.inFlight) * (now - k.lastEvent)
	k.lastEvent = now
}

// Counters is the device's performance-counter block. Counter blocks are
// addressed two ways: by kernel name (the public query API) and by a dense
// kernel ID handed out on first dispatch (the device's hot path — a slice
// index instead of a map lookup per WG event).
type Counters struct {
	perKernel       map[string]*KernelCounter
	byID            []*KernelCounter
	totalWGs        uint64
	totalDispatched uint64
	totalKilled     uint64
}

func (c *Counters) noteDispatch(k *KernelCounter, now sim.Time) {
	k.accumulate(now)
	k.WGsDispatched++
	if k.inFlight == 0 {
		k.busySince = now
	}
	k.inFlight++
	c.totalDispatched++
}

func (c *Counters) noteComplete(k *KernelCounter, now, latency sim.Time) {
	k.accumulate(now)
	k.WGsCompleted++
	k.LastCompletion = now
	k.latencySumNs += latency
	k.inFlight--
	if k.inFlight == 0 {
		k.busyNs += now - k.busySince
	}
	c.totalWGs++
}

// noteKilled retires an in-flight WG without completing it: the dispatch
// happened, no completion ever will. Busy/WG-time integrals close as if the
// WG vanished now.
func (c *Counters) noteKilled(k *KernelCounter, now sim.Time) {
	k.accumulate(now)
	k.WGsKilled++
	k.inFlight--
	if k.inFlight == 0 {
		k.busyNs += now - k.busySince
	}
	c.totalKilled++
}

// idFor interns a kernel name, creating its counter block on first use, and
// returns its dense ID. IDs are stable for the life of the Counters and
// index the internal byID slice; kernel instances cache them so per-WG
// bookkeeping never touches the name map.
func (c *Counters) idFor(name string) int {
	if k := c.perKernel[name]; k != nil {
		return k.id
	}
	k := &KernelCounter{Name: name, id: len(c.byID)}
	c.perKernel[name] = k
	c.byID = append(c.byID, k)
	return k.id
}

func (c *Counters) kernel(name string) *KernelCounter {
	return c.byID[c.idFor(name)]
}

// Completed returns the cumulative WG completion count for the kernel type,
// or zero if the kernel has never run.
func (c *Counters) Completed(name string) uint64 {
	if k := c.perKernel[name]; k != nil {
		return k.WGsCompleted
	}
	return 0
}

// Busy returns the kernel type's cumulative busy time up to now, or zero if
// the kernel has never run.
func (c *Counters) Busy(name string, now sim.Time) sim.Time {
	if k := c.perKernel[name]; k != nil {
		return k.BusyTime(now)
	}
	return 0
}

// WGTime returns the kernel type's cumulative WG-time integral up to now,
// or zero if the kernel has never run.
func (c *Counters) WGTime(name string, now sim.Time) sim.Time {
	if k := c.perKernel[name]; k != nil {
		return k.WGTime(now)
	}
	return 0
}

// LatencySum returns the summed dispatch-to-completion latencies of the
// kernel type's finished WGs, or zero if the kernel has never run.
func (c *Counters) LatencySum(name string) sim.Time {
	if k := c.perKernel[name]; k != nil {
		return k.latencySumNs
	}
	return 0
}

// TotalCompleted returns the cumulative WG completions across all kernels.
func (c *Counters) TotalCompleted() uint64 { return c.totalWGs }

// TotalKilled returns the cumulative WGs killed mid-flight across all
// kernels (fault aborts and watchdog kills).
func (c *Counters) TotalKilled() uint64 { return c.totalKilled }

// TotalDispatched returns the cumulative WG dispatches across all kernels.
func (c *Counters) TotalDispatched() uint64 { return c.totalDispatched }

// All returns the counter blocks in dense-ID (first-dispatch) order. The
// slice is live — callers must not mutate it — and grows as new kernel
// types dispatch. Profiling-table refreshes iterate it instead of
// allocating a name list per epoch.
func (c *Counters) All() []*KernelCounter { return c.byID }

// KernelNames returns the set of kernel types the counters have observed.
func (c *Counters) KernelNames() []string {
	names := make([]string, 0, len(c.perKernel))
	for n := range c.perKernel {
		names = append(names, n)
	}
	return names
}
