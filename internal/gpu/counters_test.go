package gpu

import (
	"testing"

	"laxgpu/internal/sim"
)

// driveKernel runs one kernel instance to completion with CP-style refill.
func driveKernel(eng *sim.Engine, d *Device, inst *KernelInstance) {
	inst.MarkReady(eng.Now())
	d.OnWGComplete(func(*KernelInstance) { d.TryDispatch(inst, -1) })
	d.TryDispatch(inst, -1)
	eng.Run()
}

func TestBusyTimeTracksInFlightWindow(t *testing.T) {
	eng := sim.NewEngine()
	d := New(DefaultConfig(), eng)
	k := testKernel("k", 4, 64, 10*sim.Microsecond, 0)
	inst := NewKernelInstance(k, 0, 0, 0)
	driveKernel(eng, d, inst)
	// All 4 WGs run concurrently for exactly 10µs.
	if got := d.Counters().Busy("k", eng.Now()); got != 10*sim.Microsecond {
		t.Fatalf("busy time %v, want 10µs", got)
	}
	// Idle time after completion must not accrue.
	eng.Schedule(eng.Now()+100*sim.Microsecond, func() {})
	eng.Run()
	if got := d.Counters().Busy("k", eng.Now()); got != 10*sim.Microsecond {
		t.Fatalf("busy time grew while idle: %v", got)
	}
}

func TestBusyTimeSpansDisjointEpisodes(t *testing.T) {
	eng := sim.NewEngine()
	d := New(DefaultConfig(), eng)
	k := testKernel("k", 1, 64, 10*sim.Microsecond, 0)
	a := NewKernelInstance(k, 0, 0, 0)
	b := NewKernelInstance(k, 1, 1, 0)
	a.MarkReady(0)
	d.TryDispatch(a, -1) // busy 0-10µs
	eng.Schedule(50*sim.Microsecond, func() {
		b.MarkReady(eng.Now())
		d.TryDispatch(b, -1) // busy 50-60µs
	})
	eng.Run()
	if got := d.Counters().Busy("k", eng.Now()); got != 20*sim.Microsecond {
		t.Fatalf("busy time %v, want 20µs over two episodes", got)
	}
}

func TestBusyTimeIncludesOpenEpisode(t *testing.T) {
	eng := sim.NewEngine()
	d := New(DefaultConfig(), eng)
	k := testKernel("k", 1, 64, 100*sim.Microsecond, 0)
	inst := NewKernelInstance(k, 0, 0, 0)
	inst.MarkReady(0)
	d.TryDispatch(inst, -1)
	probed := false
	eng.Schedule(30*sim.Microsecond, func() {
		if got := d.Counters().Busy("k", eng.Now()); got != 30*sim.Microsecond {
			t.Errorf("mid-flight busy time %v, want 30µs", got)
		}
		probed = true
	})
	eng.Run()
	if !probed {
		t.Fatal("probe skipped")
	}
}

func TestWGTimeIntegral(t *testing.T) {
	eng := sim.NewEngine()
	d := New(DefaultConfig(), eng)
	// 4 concurrent WGs × 10µs each → integral 40 WG·µs.
	k := testKernel("k", 4, 64, 10*sim.Microsecond, 0)
	inst := NewKernelInstance(k, 0, 0, 0)
	driveKernel(eng, d, inst)
	if got := d.Counters().WGTime("k", eng.Now()); got != 40*sim.Microsecond {
		t.Fatalf("WG-time integral %v, want 40µs", got)
	}
	// Mean per-WG latency = integral / completions = 10µs.
	mean := d.Counters().WGTime("k", eng.Now()) / sim.Time(d.Counters().Completed("k"))
	if mean != 10*sim.Microsecond {
		t.Fatalf("mean WG latency %v, want 10µs", mean)
	}
}

func TestWGTimeIntegralStaggered(t *testing.T) {
	eng := sim.NewEngine()
	d := New(DefaultConfig(), eng)
	k := testKernel("k", 1, 64, 10*sim.Microsecond, 0)
	a := NewKernelInstance(k, 0, 0, 0)
	b := NewKernelInstance(k, 1, 1, 0)
	a.MarkReady(0)
	d.TryDispatch(a, -1) // 0-10µs
	eng.Schedule(5*sim.Microsecond, func() {
		b.MarkReady(eng.Now())
		d.TryDispatch(b, -1) // 5-15µs
	})
	eng.Run()
	// Integral: 1 WG for [0,5), 2 for [5,10), 1 for [10,15) = 5+10+5 = 20µs.
	if got := d.Counters().WGTime("k", eng.Now()); got != 20*sim.Microsecond {
		t.Fatalf("staggered WG-time integral %v, want 20µs", got)
	}
}

func TestCountersUnknownKernelZeroes(t *testing.T) {
	eng := sim.NewEngine()
	d := New(DefaultConfig(), eng)
	c := d.Counters()
	if c.Busy("ghost", 100) != 0 || c.WGTime("ghost", 100) != 0 || c.Completed("ghost") != 0 {
		t.Fatal("unknown kernel should report zeros")
	}
}
