package gpu

import "fmt"

// computeUnit tracks the occupancy of one CU. A workgroup occupies threads,
// wavefront slots, vector registers and LDS for its whole lifetime; a CU can
// host WGs from any mix of kernels, which is how WGs from kernels in
// different queues interleave execution (§2.1).
type computeUnit struct {
	id int

	threadsFree    int
	wavefrontsFree int
	vgprFree       int
	ldsFree        int

	threadsCap    int
	wavefrontsCap int
	vgprCap       int
	ldsCap        int

	activeWGs int

	// retired marks a CU lost to a fault: in-flight WGs drain, nothing new
	// is placed, and capacity estimates stop counting it.
	retired bool
}

func newComputeUnit(id int, cfg Config) *computeUnit {
	return &computeUnit{
		id:             id,
		threadsFree:    cfg.ThreadsPerCU,
		wavefrontsFree: cfg.WavefrontsPerCU(),
		vgprFree:       cfg.VGPRBytesPerCU,
		ldsFree:        cfg.LDSBytesPerCU,
		threadsCap:     cfg.ThreadsPerCU,
		wavefrontsCap:  cfg.WavefrontsPerCU(),
		vgprCap:        cfg.VGPRBytesPerCU,
		ldsCap:         cfg.LDSBytesPerCU,
	}
}

// wgFootprint is the resource cost of one WG of a kernel on a CU.
type wgFootprint struct {
	threads    int
	wavefronts int
	vgpr       int
	lds        int
}

func footprintOf(desc *KernelDesc, wavefrontSize int) wgFootprint {
	wf := (desc.ThreadsPerWG + wavefrontSize - 1) / wavefrontSize
	return wgFootprint{
		threads:    desc.ThreadsPerWG,
		wavefronts: wf,
		vgpr:       desc.VGPRBytesPerWG,
		lds:        desc.LDSBytesPerWG,
	}
}

// fits reports whether the CU currently has room for the footprint.
// Retired CUs never fit anything.
func (c *computeUnit) fits(f wgFootprint) bool {
	return !c.retired &&
		c.threadsFree >= f.threads &&
		c.wavefrontsFree >= f.wavefronts &&
		c.vgprFree >= f.vgpr &&
		c.ldsFree >= f.lds
}

// canEverFit reports whether an empty CU could host the footprint at all.
func (c *computeUnit) canEverFit(f wgFootprint) bool {
	return c.threadsCap >= f.threads &&
		c.wavefrontsCap >= f.wavefronts &&
		c.vgprCap >= f.vgpr &&
		c.ldsCap >= f.lds
}

func (c *computeUnit) reserve(f wgFootprint) {
	if !c.fits(f) {
		panic(fmt.Sprintf("gpu: CU%d reserve without room: %+v", c.id, f))
	}
	c.threadsFree -= f.threads
	c.wavefrontsFree -= f.wavefronts
	c.vgprFree -= f.vgpr
	c.ldsFree -= f.lds
	c.activeWGs++
}

func (c *computeUnit) release(f wgFootprint) {
	c.threadsFree += f.threads
	c.wavefrontsFree += f.wavefronts
	c.vgprFree += f.vgpr
	c.ldsFree += f.lds
	c.activeWGs--
	if c.threadsFree > c.threadsCap || c.wavefrontsFree > c.wavefrontsCap ||
		c.vgprFree > c.vgprCap || c.ldsFree > c.ldsCap || c.activeWGs < 0 {
		panic(fmt.Sprintf("gpu: CU%d release overflow", c.id))
	}
}

// utilization returns the fraction of thread contexts in use, in [0,1].
func (c *computeUnit) utilization() float64 {
	return float64(c.threadsCap-c.threadsFree) / float64(c.threadsCap)
}
