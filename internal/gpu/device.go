package gpu

import (
	"fmt"

	"laxgpu/internal/sim"
)

// Device is the workgroup-granular GPU model. The command processor decides
// *which* kernel instances may dispatch and in what order (that is the
// entire subject of the paper); the device decides *where* WGs fit and *how
// long* they take given current memory contention, and reports completions.
type Device struct {
	cfg Config
	eng *sim.Engine
	cus []*computeUnit

	// activeMemDemand is Σ over in-flight WGs of MemIntensity×ThreadsPerWG.
	// With the two-level model enabled it carries only the DRAM (L2-miss)
	// share, and activeL2Demand carries the L2-hit share.
	activeMemDemand float64
	activeL2Demand  float64

	// stallUntil blocks new WG dispatch until the given time; used to model
	// preemption context save/restore (PREMA) without tearing down state.
	stallUntil sim.Time

	// rrCursor is RoundRobin placement's scan start.
	rrCursor int

	counters Counters
	energy   EnergyMeter

	// onWGComplete is invoked after each WG completion (resources already
	// released), letting the command processor refill the device.
	onWGComplete func(*KernelInstance)

	// onKernelDone is invoked when an instance's last WG completes.
	onKernelDone func(*KernelInstance)

	// onKernelAbort is invoked when an attempt dies of an injected
	// transient fault (the device has already reclaimed its resources).
	onKernelAbort func(*KernelInstance)

	// injector, when set, decides the fate of every kernel attempt.
	injector FaultInjector

	// track enables per-instance in-flight WG bookkeeping so Kill can
	// reclaim resources. Off on the healthy fast path; turned on when an
	// injector is installed or the CP arms its watchdog.
	track    bool
	inflight map[*KernelInstance][]*wgInFlight

	// curBatch is the open WG-completion batch: consecutive WGs of one
	// instance that share a completion instant and between which no other
	// event was scheduled collapse into a single engine event. Only used on
	// the untracked fast path.
	curBatch *wgBatch
	// freeBatches is the batch free list (singly linked through next).
	freeBatches *wgBatch

	// retiredCUs counts CUs permanently removed by RetireCUs.
	retiredCUs int
}

// wgInFlight records one dispatched, uncompleted WG so a kill can cancel
// its completion and release what it holds. Only the tracked (fault /
// watchdog) path allocates these; the healthy path batches completions
// through pooled wgBatch structs instead.
type wgInFlight struct {
	ev       sim.Handle // zero for hung WGs (they never scheduled one)
	cu       *computeUnit
	f        wgFootprint
	demand   float64
	l2demand float64
}

// wgEntry is one WG's share of a completion batch.
type wgEntry struct {
	cu       *computeUnit
	f        wgFootprint
	demand   float64
	l2demand float64
}

// wgBatch is one pooled engine event carrying the completions of a
// contiguous run of same-instance WGs that were dispatched back to back for
// the same completion instant. Firing the batch replays each WG's
// completion in dispatch order, which is exactly the order the per-WG
// events would have fired in: the entries' would-be sequence numbers were
// consecutive (enforced via Engine.NextSeq at append time), so no foreign
// event could have interleaved.
type wgBatch struct {
	d    *Device
	inst *KernelInstance
	ctr  *KernelCounter
	at   sim.Time // completion instant
	lat  sim.Time // dispatch-to-completion latency (same for all entries)
	// seqAfter is the engine's next sequence number as of the last append;
	// a WG may join only while it still matches (no event scheduled since).
	seqAfter uint64
	entries  []wgEntry
	next     *wgBatch // free list link
}

// Act fires the batch (sim.Action).
func (b *wgBatch) Act() { b.d.completeBatch(b) }

// New constructs a device for the configuration. It panics on an invalid
// configuration: device construction happens once at experiment setup and a
// bad machine description is unrecoverable.
func New(cfg Config, eng *sim.Engine) *Device {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	d := &Device{cfg: cfg, eng: eng}
	d.cus = make([]*computeUnit, cfg.NumCUs)
	for i := range d.cus {
		d.cus[i] = newComputeUnit(i, cfg)
	}
	d.counters.perKernel = make(map[string]*KernelCounter)
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Counters exposes the performance counters the CP reads. The paper extends
// the GPU with "a new counter that tracks the WG completion rate" (§4.1.1);
// Counters is that hardware.
func (d *Device) Counters() *Counters { return &d.counters }

// Energy exposes the per-instruction energy meter.
func (d *Device) Energy() *EnergyMeter { return &d.energy }

// OnWGComplete registers the callback fired after every WG completion.
func (d *Device) OnWGComplete(fn func(*KernelInstance)) { d.onWGComplete = fn }

// OnKernelDone registers the callback fired when an instance finishes.
func (d *Device) OnKernelDone(fn func(*KernelInstance)) { d.onKernelDone = fn }

// OnKernelAbort registers the callback fired when an attempt dies of an
// injected transient fault. The device has already killed the attempt; the
// instance is ready for redispatch when the callback runs.
func (d *Device) OnKernelAbort(fn func(*KernelInstance)) { d.onKernelAbort = fn }

// SetFaultInjector installs a fault injector consulted at the start of
// every kernel execution attempt, and enables the WG tracking a kill
// needs. Pass before any dispatch.
func (d *Device) SetFaultInjector(fi FaultInjector) {
	d.injector = fi
	d.EnableWGTracking()
}

// EnableWGTracking turns on per-instance in-flight bookkeeping so Kill can
// reclaim a running attempt's resources. The CP enables it when its
// watchdog is armed; SetFaultInjector enables it implicitly.
func (d *Device) EnableWGTracking() {
	d.track = true
	if d.inflight == nil {
		d.inflight = make(map[*KernelInstance][]*wgInFlight)
	}
}

// Stall blocks new WG dispatch for the given duration from now. In-flight
// WGs are unaffected (they drain naturally). Overlapping stalls extend to
// the later deadline. Models preemption save/restore cost.
func (d *Device) Stall(duration sim.Time) {
	until := d.eng.Now() + duration
	if until > d.stallUntil {
		d.stallUntil = until
	}
}

// Stalled reports whether dispatch is currently blocked by a Stall.
func (d *Device) Stalled() bool { return d.eng.Now() < d.stallUntil }

// StallEndsAt returns the time at which the current stall expires (zero if
// none is pending).
func (d *Device) StallEndsAt() sim.Time { return d.stallUntil }

// TryDispatch places as many WGs of inst as currently fit (up to limit;
// limit < 0 means no limit) and returns the number placed. It panics if the
// kernel could never fit on an empty CU — a workload-definition bug.
func (d *Device) TryDispatch(inst *KernelInstance, limit int) int {
	if d.Stalled() || !inst.Dispatchable() {
		return 0
	}
	f := footprintOf(inst.Desc, d.cfg.WavefrontSize)
	if !d.cus[0].canEverFit(f) {
		panic(fmt.Sprintf("gpu: kernel %s WG footprint %+v exceeds CU capacity", inst.Desc.Name, f))
	}
	placed := 0
	for inst.RemainingWGs() > 0 && (limit < 0 || placed < limit) {
		cu := d.pickCU(f)
		if cu == nil {
			break
		}
		d.startWG(inst, cu, f)
		placed++
	}
	return placed
}

// pickCU selects a CU with room for the footprint per the configured
// placement policy, or nil when nothing fits.
func (d *Device) pickCU(f wgFootprint) *computeUnit {
	switch d.cfg.Placement {
	case BestFit:
		var best *computeUnit
		for _, cu := range d.cus {
			if !cu.fits(f) {
				continue
			}
			if best == nil || cu.threadsFree < best.threadsFree {
				best = cu
			}
		}
		return best
	case RoundRobin:
		n := len(d.cus)
		for i := 0; i < n; i++ {
			cu := d.cus[(d.rrCursor+i)%n]
			if cu.fits(f) {
				d.rrCursor = (d.rrCursor + i + 1) % n
				return cu
			}
		}
		return nil
	default: // FirstFit
		for _, cu := range d.cus {
			if cu.fits(f) {
				return cu
			}
		}
		return nil
	}
}

// startWG reserves resources and schedules the WG's completion. The latency
// is fixed at dispatch: base × ((1−m) + m×slowdown(now)), with slowdown the
// ratio of aggregate active memory demand (including this WG) to the memory
// system's no-slowdown capacity, floored at 1.
func (d *Device) startWG(inst *KernelInstance, cu *computeUnit, f wgFootprint) {
	now := d.eng.Now()
	cu.reserve(f)
	if inst.state == KernelReady && d.injector != nil {
		// First WG of a fresh attempt: draw its fate.
		inst.fault = d.injector.KernelLaunch(now, inst.JobID, inst.Seq, inst.Attempt)
	}
	inst.noteDispatch(now)

	demand := inst.Desc.MemIntensity * float64(inst.Desc.ThreadsPerWG)
	l2Demand := 0.0
	if d.cfg.L2BandwidthDemand > 0 {
		l2Demand = demand * inst.Desc.L2HitFrac
		demand -= l2Demand
	}
	d.activeMemDemand += demand
	d.activeL2Demand += l2Demand

	lat := d.wgLatency(inst.Desc)
	if inst.fault.Outcome == FaultSlow && inst.fault.SlowFactor > 1 {
		lat = sim.Time(float64(lat) * inst.fault.SlowFactor)
	}
	ctr := d.counterFor(inst)
	d.counters.noteDispatch(ctr, now)

	if !d.track {
		// Healthy fast path: no kill can ever target this WG, so no
		// per-WG bookkeeping — fold the completion into a batch event.
		d.batchWG(inst, ctr, now+lat, lat, wgEntry{cu: cu, f: f, demand: demand, l2demand: l2Demand})
		return
	}

	wg := &wgInFlight{cu: cu, f: f, demand: demand, l2demand: l2Demand}
	switch inst.fault.Outcome {
	case FaultHang:
		// The WG holds its CU and memory demand forever; only Kill (the
		// CP watchdog) releases it. No completion is scheduled.
		d.trackWG(inst, wg)
		return
	case FaultAbort:
		// The attempt dies with its first failing WG: everything in
		// flight is reclaimed and the CP is told it may retry.
		wg.ev = d.eng.Schedule(now+lat, func() {
			d.Kill(inst)
			if d.onKernelAbort != nil {
				d.onKernelAbort(inst)
			}
		})
		d.trackWG(inst, wg)
		return
	}
	wg.ev = d.eng.Schedule(now+lat, func() {
		d.untrackWG(inst, wg)
		d.completeWG(inst, ctr, lat, wgEntry{cu: cu, f: f, demand: demand, l2demand: l2Demand})
	})
	d.trackWG(inst, wg)
}

// counterFor resolves the instance's counter block, caching the dense
// counter ID on the instance so steady-state dispatch skips the name map.
func (d *Device) counterFor(inst *KernelInstance) *KernelCounter {
	if inst.cidPlus1 == 0 {
		inst.cidPlus1 = d.counters.idFor(inst.Desc.Name) + 1
	}
	return d.counters.byID[inst.cidPlus1-1]
}

// batchWG appends the WG to the open completion batch when it provably
// preserves event order — same instance, same completion instant, and no
// event scheduled since the batch's own (so the per-WG events' sequence
// numbers would have been consecutive) — and otherwise opens a new batch.
func (d *Device) batchWG(inst *KernelInstance, ctr *KernelCounter, at, lat sim.Time, en wgEntry) {
	b := d.curBatch
	if b == nil || b.inst != inst || b.at != at || d.eng.NextSeq() != b.seqAfter {
		b = d.getBatch()
		b.inst = inst
		b.ctr = ctr
		b.at = at
		b.lat = lat
		d.eng.ScheduleAct(at, b)
		b.seqAfter = d.eng.NextSeq()
		d.curBatch = b
	}
	b.entries = append(b.entries, en)
}

// completeBatch replays each batched WG completion in dispatch order and
// recycles the batch. New WGs dispatched by the completion callbacks open
// fresh batches (curBatch is cleared first), so the struct is never
// appended to while firing.
func (d *Device) completeBatch(b *wgBatch) {
	if d.curBatch == b {
		d.curBatch = nil
	}
	inst, ctr, lat := b.inst, b.ctr, b.lat
	for i := range b.entries {
		d.completeWG(inst, ctr, lat, b.entries[i])
	}
	d.putBatch(b)
}

// completeWG performs one WG completion: release resources, fold the
// latency into the counters, and notify the CP.
func (d *Device) completeWG(inst *KernelInstance, ctr *KernelCounter, lat sim.Time, en wgEntry) {
	en.cu.release(en.f)
	d.activeMemDemand -= en.demand
	d.activeL2Demand -= en.l2demand
	if d.activeMemDemand < 1e-9 {
		d.activeMemDemand = 0
	}
	if d.activeL2Demand < 1e-9 {
		d.activeL2Demand = 0
	}
	now := d.eng.Now()
	inst.noteComplete(now)
	d.counters.noteComplete(ctr, now, lat)
	d.energy.addWG(inst.Desc, d.cfg.EnergyPerInstPJ)
	if d.onWGComplete != nil {
		d.onWGComplete(inst)
	}
	if inst.Done() && d.onKernelDone != nil {
		d.onKernelDone(inst)
	}
}

// getBatch takes a batch struct off the free list (or allocates the first
// time).
func (d *Device) getBatch() *wgBatch {
	b := d.freeBatches
	if b == nil {
		return &wgBatch{d: d}
	}
	d.freeBatches = b.next
	b.next = nil
	return b
}

// putBatch recycles a fired batch: payload references are dropped so pooled
// structs never pin instances, but the entries backing array is kept.
func (d *Device) putBatch(b *wgBatch) {
	b.inst = nil
	b.ctr = nil
	b.entries = b.entries[:0]
	b.next = d.freeBatches
	d.freeBatches = b
}

func (d *Device) trackWG(inst *KernelInstance, wg *wgInFlight) {
	if !d.track {
		return
	}
	d.inflight[inst] = append(d.inflight[inst], wg)
}

func (d *Device) untrackWG(inst *KernelInstance, wg *wgInFlight) {
	if !d.track {
		return
	}
	list := d.inflight[inst]
	for i, w := range list {
		if w == wg {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(d.inflight, inst)
	} else {
		d.inflight[inst] = list
	}
}

// Kill aborts the instance's current execution attempt: every in-flight WG
// is cancelled and its resources reclaimed, dispatched-but-unfinished work
// is rolled back (completed WGs are kept), and the instance returns to
// ready under a new Attempt number. Returns the number of WGs reclaimed.
// Requires WG tracking (a fault injector or the CP watchdog).
func (d *Device) Kill(inst *KernelInstance) int {
	entries := d.inflight[inst]
	delete(d.inflight, inst)
	now := d.eng.Now()
	for _, wg := range entries {
		wg.ev.Cancel() // no-op for hung WGs (zero Handle) and fired events
		wg.cu.release(wg.f)
		d.activeMemDemand -= wg.demand
		d.activeL2Demand -= wg.l2demand
		d.counters.noteKilled(d.counterFor(inst), now)
	}
	if d.activeMemDemand < 1e-9 {
		d.activeMemDemand = 0
	}
	if d.activeL2Demand < 1e-9 {
		d.activeL2Demand = 0
	}
	inst.resetAttempt()
	return len(entries)
}

// RetireCUs permanently removes up to n CUs from WG placement, highest
// index first (in-flight WGs drain naturally). Returns the number actually
// retired.
func (d *Device) RetireCUs(n int) int {
	retired := 0
	for i := len(d.cus) - 1; i >= 0 && retired < n; i-- {
		if !d.cus[i].retired {
			d.cus[i].retired = true
			retired++
		}
	}
	d.retiredCUs += retired
	return retired
}

// ActiveCUs returns the number of CUs still accepting work.
func (d *Device) ActiveCUs() int { return len(d.cus) - d.retiredCUs }

// RetiredCUsCount returns the number of CUs lost to RetireCUs.
func (d *Device) RetiredCUsCount() int { return d.retiredCUs }

// wgLatency computes the contention-stretched latency of one WG of desc if
// it were dispatched now. Under the single-level model the whole memory
// fraction stretches with DRAM contention; under the two-level model the
// kernel's L2-hit share stretches with L2-pool contention and the miss
// share with DRAM contention.
func (d *Device) wgLatency(desc *KernelDesc) sim.Time {
	dramSlow := d.activeMemDemand / d.cfg.MemBandwidthDemand
	if dramSlow < 1 {
		dramSlow = 1
	}
	base := float64(desc.BaseWGTime)
	m := desc.MemIntensity
	if d.cfg.L2BandwidthDemand <= 0 {
		return sim.Time(base * ((1 - m) + m*dramSlow))
	}
	l2Slow := d.activeL2Demand / d.cfg.L2BandwidthDemand
	if l2Slow < 1 {
		l2Slow = 1
	}
	h := desc.L2HitFrac
	memStretch := h*l2Slow + (1-h)*dramSlow
	return sim.Time(base * ((1 - m) + m*memStretch))
}

// Slowdown returns the current memory contention factor (≥ 1).
func (d *Device) Slowdown() float64 {
	slow := d.activeMemDemand / d.cfg.MemBandwidthDemand
	if slow < 1 {
		return 1
	}
	return slow
}

// ActiveWGs returns the number of in-flight workgroups across all CUs.
func (d *Device) ActiveWGs() int {
	n := 0
	for _, cu := range d.cus {
		n += cu.activeWGs
	}
	return n
}

// Utilization returns the fraction of device thread contexts occupied.
func (d *Device) Utilization() float64 {
	var sum float64
	for _, cu := range d.cus {
		sum += cu.utilization()
	}
	return sum / float64(len(d.cus))
}

// FreeThreads returns the number of unoccupied thread contexts device-wide.
func (d *Device) FreeThreads() int {
	n := 0
	for _, cu := range d.cus {
		n += cu.threadsFree
	}
	return n
}

// CanFit reports whether the device could place one WG of desc right now:
// some non-retired CU has room for its footprint and the device is not
// stalled. It is a pure query — unlike TryDispatch it reserves nothing and
// does not advance the round-robin placement cursor — so observers (the
// verification checker's dispatch-order rule) can probe occupancy without
// perturbing the run.
func (d *Device) CanFit(desc *KernelDesc) bool {
	if d.Stalled() {
		return false
	}
	f := footprintOf(desc, d.cfg.WavefrontSize)
	for _, cu := range d.cus {
		if cu.fits(f) {
			return true
		}
	}
	return false
}

// MaxConcurrentWGs returns how many WGs of desc the device could host
// simultaneously if idle, counting only non-retired CUs — admission
// heuristics see the *current* capacity of a degraded device, not nominal.
func (d *Device) MaxConcurrentWGs(desc *KernelDesc) int {
	cfg := d.cfg
	cfg.NumCUs = d.ActiveCUs()
	return MaxConcurrentWGs(cfg, desc)
}

// MaxConcurrentWGs computes, for an idle device with the given config, the
// number of WGs of desc that fit simultaneously.
func MaxConcurrentWGs(cfg Config, desc *KernelDesc) int {
	f := footprintOf(desc, cfg.WavefrontSize)
	perCU := cfg.ThreadsPerCU / max(1, f.threads)
	if f.wavefronts > 0 {
		perCU = min(perCU, cfg.WavefrontsPerCU()/f.wavefronts)
	}
	if f.vgpr > 0 {
		perCU = min(perCU, cfg.VGPRBytesPerCU/f.vgpr)
	}
	if f.lds > 0 {
		perCU = min(perCU, cfg.LDSBytesPerCU/f.lds)
	}
	return perCU * cfg.NumCUs
}

// IsolatedKernelTime returns the time one launch of desc takes on an
// otherwise idle device: WGs run in ceil(NumWGs / maxConcurrent) waves of
// BaseWGTime each (memory slowdown from the kernel's own WGs included).
func IsolatedKernelTime(cfg Config, desc *KernelDesc) sim.Time {
	conc := MaxConcurrentWGs(cfg, desc)
	if conc <= 0 {
		return sim.Forever
	}
	if conc > desc.NumWGs {
		conc = desc.NumWGs
	}
	waves := (desc.NumWGs + conc - 1) / conc
	demand := float64(conc) * desc.MemIntensity * float64(desc.ThreadsPerWG)
	slow := demand / cfg.MemBandwidthDemand
	if slow < 1 {
		slow = 1
	}
	m := desc.MemIntensity
	perWave := sim.Time(float64(desc.BaseWGTime) * ((1 - m) + m*slow))
	return sim.Time(waves) * perWave
}
