package gpu

import (
	"math"
	"testing"
	"testing/quick"

	"laxgpu/internal/sim"
)

func testKernel(name string, wgs, threads int, base sim.Time, mem float64) *KernelDesc {
	return &KernelDesc{
		Name:           name,
		NumWGs:         wgs,
		ThreadsPerWG:   threads,
		VGPRBytesPerWG: 1024,
		LDSBytesPerWG:  256,
		BaseWGTime:     base,
		MemIntensity:   mem,
		InstPerThread:  100,
	}
}

func TestKernelDescValidate(t *testing.T) {
	good := testKernel("k", 4, 64, sim.Microsecond, 0.5)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid kernel rejected: %v", err)
	}
	bad := []*KernelDesc{
		{Name: "", NumWGs: 1, ThreadsPerWG: 1, BaseWGTime: 1},
		{Name: "k", NumWGs: 0, ThreadsPerWG: 1, BaseWGTime: 1},
		{Name: "k", NumWGs: 1, ThreadsPerWG: 0, BaseWGTime: 1},
		{Name: "k", NumWGs: 1, ThreadsPerWG: 1, BaseWGTime: 0},
		{Name: "k", NumWGs: 1, ThreadsPerWG: 1, BaseWGTime: 1, MemIntensity: 1.5},
		{Name: "k", NumWGs: 1, ThreadsPerWG: 1, BaseWGTime: 1, VGPRBytesPerWG: -1},
		{Name: "k", NumWGs: 1, ThreadsPerWG: 1, BaseWGTime: 1, InstPerThread: -1},
	}
	for i, k := range bad {
		if err := k.Validate(); err == nil {
			t.Errorf("bad kernel %d accepted", i)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	c := DefaultConfig()
	c.NumCUs = 0
	if err := c.Validate(); err == nil {
		t.Error("zero CUs accepted")
	}
	c = DefaultConfig()
	c.MemBandwidthDemand = 0
	if err := c.Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
	c = DefaultConfig()
	c.WavefrontSize = 0
	if err := c.Validate(); err == nil {
		t.Error("zero wavefront size accepted")
	}
}

func TestSingleWGKernelRunsForBaseTime(t *testing.T) {
	eng := sim.NewEngine()
	d := New(DefaultConfig(), eng)
	k := testKernel("k", 1, 64, 25*sim.Microsecond, 0) // no memory → no stretch
	inst := NewKernelInstance(k, 1, 1, 0)
	inst.MarkReady(0)

	done := sim.Time(-1)
	d.OnKernelDone(func(ki *KernelInstance) { done = eng.Now() })
	if n := d.TryDispatch(inst, -1); n != 1 {
		t.Fatalf("dispatched %d WGs, want 1", n)
	}
	eng.Run()
	if done != 25*sim.Microsecond {
		t.Fatalf("kernel finished at %v, want 25µs", done)
	}
	if !inst.Done() || inst.CompletedWGs() != 1 {
		t.Fatalf("instance state: %v", inst)
	}
}

func TestDispatchRespectsThreadCapacity(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	d := New(cfg, eng)
	// WG of 2560 threads fills an entire CU; only NumCUs fit at once.
	k := testKernel("big", 100, 2560, sim.Microsecond, 0)
	inst := NewKernelInstance(k, 1, 1, 0)
	inst.MarkReady(0)
	n := d.TryDispatch(inst, -1)
	if n != cfg.NumCUs {
		t.Fatalf("dispatched %d WGs, want %d (one per CU)", n, cfg.NumCUs)
	}
	if d.Utilization() != 1.0 {
		t.Fatalf("utilization %v, want 1.0", d.Utilization())
	}
	d.OnWGComplete(func(*KernelInstance) { d.TryDispatch(inst, -1) })
	eng.Run()
	if !inst.Done() {
		t.Fatalf("kernel did not finish: %v", inst)
	}
	// 100 WGs in waves of 8 → 13 waves.
	if got, want := eng.Now(), sim.Time(13)*sim.Microsecond; got != want {
		t.Fatalf("finished at %v, want %v", got, want)
	}
	if d.ActiveWGs() != 0 || d.Utilization() != 0 {
		t.Fatal("resources not released after completion")
	}
}

func TestDispatchRespectsLDSCapacity(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	d := New(cfg, eng)
	k := testKernel("lds", 64, 64, sim.Microsecond, 0)
	k.LDSBytesPerWG = cfg.LDSBytesPerCU / 2 // two WGs per CU by LDS
	inst := NewKernelInstance(k, 1, 1, 0)
	inst.MarkReady(0)
	if n := d.TryDispatch(inst, -1); n != 2*cfg.NumCUs {
		t.Fatalf("dispatched %d, want %d (LDS-bound)", n, 2*cfg.NumCUs)
	}
}

func TestDispatchRespectsWavefrontSlots(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	d := New(cfg, eng)
	// 640 threads = 10 wavefronts; 4 such WGs exhaust the 40 wavefront
	// slots while threads (2560) also cap at 4 — now shrink threads to test
	// the wavefront limit alone: 129 threads = 3 wavefronts → 13 by
	// wavefronts (40/3), 19 by threads (2560/129). Expect 13 per CU.
	k := testKernel("wf", 1000, 129, sim.Microsecond, 0)
	k.VGPRBytesPerWG = 0
	k.LDSBytesPerWG = 0
	inst := NewKernelInstance(k, 1, 1, 0)
	inst.MarkReady(0)
	if n := d.TryDispatch(inst, -1); n != 13*cfg.NumCUs {
		t.Fatalf("dispatched %d, want %d (wavefront-bound)", n, 13*cfg.NumCUs)
	}
}

func TestDispatchLimit(t *testing.T) {
	eng := sim.NewEngine()
	d := New(DefaultConfig(), eng)
	k := testKernel("k", 100, 64, sim.Microsecond, 0)
	inst := NewKernelInstance(k, 1, 1, 0)
	inst.MarkReady(0)
	if n := d.TryDispatch(inst, 5); n != 5 {
		t.Fatalf("dispatched %d, want 5 (limit)", n)
	}
	if inst.OutstandingWGs() != 5 || inst.RemainingWGs() != 95 {
		t.Fatalf("bookkeeping: outstanding=%d remaining=%d", inst.OutstandingWGs(), inst.RemainingWGs())
	}
}

func TestWaitingKernelNotDispatchable(t *testing.T) {
	eng := sim.NewEngine()
	d := New(DefaultConfig(), eng)
	k := testKernel("k", 4, 64, sim.Microsecond, 0)
	inst := NewKernelInstance(k, 1, 1, 0)
	if n := d.TryDispatch(inst, -1); n != 0 {
		t.Fatalf("waiting kernel dispatched %d WGs", n)
	}
	inst.MarkReady(0)
	if n := d.TryDispatch(inst, -1); n != 4 {
		t.Fatalf("ready kernel dispatched %d WGs, want 4", n)
	}
}

func TestPausedKernelNotDispatchable(t *testing.T) {
	eng := sim.NewEngine()
	d := New(DefaultConfig(), eng)
	k := testKernel("k", 4, 64, sim.Microsecond, 0)
	inst := NewKernelInstance(k, 1, 1, 0)
	inst.MarkReady(0)
	inst.Paused = true
	if n := d.TryDispatch(inst, -1); n != 0 {
		t.Fatalf("paused kernel dispatched %d WGs", n)
	}
	inst.Paused = false
	if n := d.TryDispatch(inst, -1); n != 4 {
		t.Fatalf("unpaused kernel dispatched %d WGs, want 4", n)
	}
}

func TestMemoryContentionStretchesLatency(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	d := New(cfg, eng)
	// Fully memory-bound WGs, each demanding 2048 units. Bandwidth 12288
	// units → 6 WGs at slowdown 1; 12 WGs → slowdown 2 for late arrivals.
	k := testKernel("mem", 12, 2048, 10*sim.Microsecond, 1.0)
	inst := NewKernelInstance(k, 1, 1, 0)
	inst.MarkReady(0)
	d.OnWGComplete(func(*KernelInstance) { d.TryDispatch(inst, -1) })
	d.TryDispatch(inst, -1)
	if d.ActiveWGs() != 8 { // thread-capacity bound: 2048 threads/WG → 1/CU
		t.Fatalf("active WGs = %d, want 8", d.ActiveWGs())
	}
	// 8 WGs × 2048 demand = 16384 > 12288 → slowdown 1.333…
	if got := d.Slowdown(); math.Abs(got-16384.0/12288.0) > 1e-9 {
		t.Fatalf("slowdown = %v, want %v", got, 16384.0/12288.0)
	}
	eng.Run()
	if !inst.Done() {
		t.Fatal("kernel did not finish")
	}
	if eng.Now() <= 20*sim.Microsecond {
		t.Fatalf("contended run finished at %v; should exceed 2 uncontended waves (20µs)", eng.Now())
	}
}

func TestComputeBoundKernelIgnoresContention(t *testing.T) {
	eng := sim.NewEngine()
	d := New(DefaultConfig(), eng)
	mem := testKernel("mem", 8, 2048, 10*sim.Microsecond, 1.0)
	cpu := testKernel("cpu", 1, 64, 10*sim.Microsecond, 0.0)
	mi := NewKernelInstance(mem, 1, 1, 0)
	ci := NewKernelInstance(cpu, 2, 2, 0)
	mi.MarkReady(0)
	ci.MarkReady(0)
	d.TryDispatch(mi, -1)
	done := sim.Time(-1)
	d.OnKernelDone(func(ki *KernelInstance) {
		if ki == ci {
			done = eng.Now()
		}
	})
	d.TryDispatch(ci, -1)
	eng.Run()
	if done != 10*sim.Microsecond {
		t.Fatalf("compute-bound WG took %v under memory contention, want exactly 10µs", done)
	}
}

func TestStallBlocksDispatch(t *testing.T) {
	eng := sim.NewEngine()
	d := New(DefaultConfig(), eng)
	k := testKernel("k", 1, 64, sim.Microsecond, 0)
	inst := NewKernelInstance(k, 1, 1, 0)
	inst.MarkReady(0)
	d.Stall(50 * sim.Microsecond)
	if !d.Stalled() {
		t.Fatal("device not stalled after Stall")
	}
	if n := d.TryDispatch(inst, -1); n != 0 {
		t.Fatalf("dispatched %d WGs during stall", n)
	}
	eng.Schedule(50*sim.Microsecond, func() {
		if d.Stalled() {
			t.Error("still stalled at expiry")
		}
		if n := d.TryDispatch(inst, -1); n != 1 {
			t.Errorf("dispatched %d after stall, want 1", n)
		}
	})
	eng.Run()
	if got := d.StallEndsAt(); got != 50*sim.Microsecond {
		t.Fatalf("StallEndsAt = %v", got)
	}
}

func TestStallExtends(t *testing.T) {
	eng := sim.NewEngine()
	d := New(DefaultConfig(), eng)
	d.Stall(50 * sim.Microsecond)
	d.Stall(20 * sim.Microsecond) // shorter stall must not shrink the window
	if d.StallEndsAt() != 50*sim.Microsecond {
		t.Fatalf("stall shrank to %v", d.StallEndsAt())
	}
	d.Stall(80 * sim.Microsecond)
	if d.StallEndsAt() != 80*sim.Microsecond {
		t.Fatalf("stall did not extend: %v", d.StallEndsAt())
	}
}

func TestCountersTrackPerKernelCompletions(t *testing.T) {
	eng := sim.NewEngine()
	d := New(DefaultConfig(), eng)
	a := NewKernelInstance(testKernel("a", 3, 64, sim.Microsecond, 0), 1, 1, 0)
	b := NewKernelInstance(testKernel("b", 5, 64, sim.Microsecond, 0), 2, 2, 0)
	a.MarkReady(0)
	b.MarkReady(0)
	d.TryDispatch(a, -1)
	d.TryDispatch(b, -1)
	eng.Run()
	c := d.Counters()
	if c.Completed("a") != 3 || c.Completed("b") != 5 {
		t.Fatalf("per-kernel counts a=%d b=%d", c.Completed("a"), c.Completed("b"))
	}
	if c.TotalCompleted() != 8 || c.TotalDispatched() != 8 {
		t.Fatalf("totals completed=%d dispatched=%d", c.TotalCompleted(), c.TotalDispatched())
	}
	if c.Completed("nonexistent") != 0 {
		t.Fatal("unknown kernel should count 0")
	}
	if len(c.KernelNames()) != 2 {
		t.Fatalf("KernelNames = %v", c.KernelNames())
	}
}

func TestEnergyMeterAccumulates(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	d := New(cfg, eng)
	k := testKernel("k", 2, 64, sim.Microsecond, 0) // pure compute
	inst := NewKernelInstance(k, 1, 1, 0)
	inst.MarkReady(0)
	d.TryDispatch(inst, -1)
	eng.Run()
	// 2 WGs × 64 threads × 100 inst × 10 pJ = 128000 pJ = 1.28e-7 J.
	want := 2.0 * 64 * 100 * 10 * 1e-12
	if got := d.Energy().DynamicJoules(); math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("dynamic energy %g, want %g", got, want)
	}
	tot := d.Energy().TotalJoules(sim.Second, 25)
	if math.Abs(tot-(want+25)) > 1e-6 {
		t.Fatalf("total energy %g, want ≈%g", tot, want+25)
	}
	if mj := d.Energy().TotalMillijoules(sim.Second, 25); math.Abs(mj-tot*1e3) > 1e-9 {
		t.Fatalf("mJ conversion mismatch: %g vs %g", mj, tot*1e3)
	}
}

func TestMemoryIntensityRaisesEnergy(t *testing.T) {
	eng := sim.NewEngine()
	d1 := New(DefaultConfig(), eng)
	kc := testKernel("c", 1, 64, sim.Microsecond, 0)
	ic := NewKernelInstance(kc, 1, 1, 0)
	ic.MarkReady(0)
	d1.TryDispatch(ic, -1)
	eng.Run()

	eng2 := sim.NewEngine()
	d2 := New(DefaultConfig(), eng2)
	km := testKernel("m", 1, 64, sim.Microsecond, 1.0)
	im := NewKernelInstance(km, 1, 1, 0)
	im.MarkReady(0)
	d2.TryDispatch(im, -1)
	eng2.Run()

	if d2.Energy().DynamicJoules() <= d1.Energy().DynamicJoules() {
		t.Fatal("memory-bound kernel should consume more energy per instruction")
	}
}

func TestIsolatedKernelTimeMatchesSimulation(t *testing.T) {
	cfg := DefaultConfig()
	for _, k := range []*KernelDesc{
		testKernel("small", 1, 64, 5*sim.Microsecond, 0.3),
		testKernel("wide", 32, 256, 25*sim.Microsecond, 0.6),
		testKernel("huge", 100, 2560, sim.Microsecond, 0.0),
	} {
		eng := sim.NewEngine()
		d := New(cfg, eng)
		inst := NewKernelInstance(k, 1, 1, 0)
		inst.MarkReady(0)
		// Refill after completions like a CP would.
		d.OnWGComplete(func(*KernelInstance) { d.TryDispatch(inst, -1) })
		d.TryDispatch(inst, -1)
		eng.Run()
		analytic := IsolatedKernelTime(cfg, k)
		ratio := float64(eng.Now()) / float64(analytic)
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("%s: simulated %v vs analytic %v (ratio %.2f)", k.Name, eng.Now(), analytic, ratio)
		}
	}
}

func TestMaxConcurrentWGs(t *testing.T) {
	cfg := DefaultConfig()
	k := testKernel("k", 1000, 256, sim.Microsecond, 0)
	k.VGPRBytesPerWG = 0
	k.LDSBytesPerWG = 0
	// 256 threads = 4 wavefronts → 10 per CU by both threads and wavefronts.
	if got := MaxConcurrentWGs(cfg, k); got != 10*cfg.NumCUs {
		t.Fatalf("MaxConcurrentWGs = %d, want %d", got, 10*cfg.NumCUs)
	}
	k.VGPRBytesPerWG = cfg.VGPRBytesPerCU // one per CU by registers
	if got := MaxConcurrentWGs(cfg, k); got != cfg.NumCUs {
		t.Fatalf("register-bound MaxConcurrentWGs = %d, want %d", got, cfg.NumCUs)
	}
}

func TestOversizedWGPanics(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	d := New(cfg, eng)
	k := testKernel("toobig", 1, cfg.ThreadsPerCU+1, sim.Microsecond, 0)
	inst := NewKernelInstance(k, 1, 1, 0)
	inst.MarkReady(0)
	defer func() {
		if recover() == nil {
			t.Fatal("dispatching an impossible WG footprint did not panic")
		}
	}()
	d.TryDispatch(inst, -1)
}

func TestContextBytes(t *testing.T) {
	k := testKernel("k", 4, 64, sim.Microsecond, 0)
	if got, want := k.ContextBytes(), 4*(1024+256); got != want {
		t.Fatalf("ContextBytes = %d, want %d", got, want)
	}
	if k.TotalThreads() != 256 {
		t.Fatalf("TotalThreads = %d", k.TotalThreads())
	}
}

func TestKernelStateString(t *testing.T) {
	states := map[KernelState]string{
		KernelWaiting: "waiting", KernelReady: "ready",
		KernelRunning: "running", KernelDone: "done", KernelState(42): "KernelState(42)",
	}
	for s, want := range states {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

// Property: for any feasible mix of dispatches and completions, CU resource
// accounting returns exactly to the initial state after the queue drains.
func TestResourceConservationProperty(t *testing.T) {
	f := func(seed int64, nKernels uint8) bool {
		rng := sim.NewRNG(seed)
		eng := sim.NewEngine()
		cfg := DefaultConfig()
		d := New(cfg, eng)
		n := int(nKernels%8) + 1
		insts := make([]*KernelInstance, n)
		for i := range insts {
			k := testKernel("k", rng.Intn(20)+1, []int{64, 128, 256, 1024}[rng.Intn(4)],
				sim.Time(rng.Intn(5000)+100), rng.Float64())
			insts[i] = NewKernelInstance(k, i, i, 0)
			insts[i].MarkReady(0)
		}
		d.OnWGComplete(func(*KernelInstance) {
			for _, in := range insts {
				d.TryDispatch(in, -1)
			}
		})
		for _, in := range insts {
			d.TryDispatch(in, -1)
		}
		eng.Run()
		for _, in := range insts {
			if !in.Done() {
				return false
			}
		}
		return d.ActiveWGs() == 0 && d.Utilization() == 0 &&
			d.FreeThreads() == cfg.TotalThreads() && d.Slowdown() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
