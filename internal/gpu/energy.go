package gpu

import "laxgpu/internal/sim"

// EnergyMeter accumulates dynamic energy per completed workgroup using the
// per-instruction energy methodology the paper cites (§5, [6][81]): every
// executed instruction costs EnergyPerInstPJ picojoules, with memory-heavy
// instructions weighted by a DRAM access factor; static leakage accrues
// over the whole makespan.
type EnergyMeter struct {
	dynamicPJ float64
}

// memEnergyFactor multiplies the per-instruction energy of the memory
// fraction of a kernel: a DRAM access costs roughly an order of magnitude
// more than an ALU op in the per-instruction models the paper cites.
const memEnergyFactor = 10.0

func (m *EnergyMeter) addWG(desc *KernelDesc, perInstPJ float64) {
	inst := float64(desc.InstPerThread) * float64(desc.ThreadsPerWG)
	weighted := inst * ((1 - desc.MemIntensity) + desc.MemIntensity*memEnergyFactor)
	m.dynamicPJ += weighted * perInstPJ
}

// DynamicJoules returns the accumulated dynamic energy in joules.
func (m *EnergyMeter) DynamicJoules() float64 { return m.dynamicPJ * 1e-12 }

// TotalJoules returns dynamic plus static energy for a run of the given
// makespan under the given static power.
func (m *EnergyMeter) TotalJoules(makespan sim.Time, staticWatts float64) float64 {
	return m.DynamicJoules() + staticWatts*makespan.Seconds()
}

// TotalMillijoules is TotalJoules expressed in mJ (the unit of Table 5c).
func (m *EnergyMeter) TotalMillijoules(makespan sim.Time, staticWatts float64) float64 {
	return m.TotalJoules(makespan, staticWatts) * 1e3
}
