package gpu

import (
	"fmt"

	"laxgpu/internal/sim"
)

// FaultOutcome classifies what happens to one kernel execution attempt.
type FaultOutcome int

const (
	// FaultNone: the attempt executes normally.
	FaultNone FaultOutcome = iota
	// FaultSlow: every WG latency of the attempt is stretched by
	// KernelFault.SlowFactor (a degraded but functional device — thermal
	// throttling, a flaky memory channel).
	FaultSlow
	// FaultHang: dispatched WGs occupy their CUs and never complete. Only
	// Device.Kill (the CP watchdog) reclaims the resources.
	FaultHang
	// FaultAbort: the attempt dies when its first WG's latency elapses —
	// a detected transient failure (ECC error, page fault, aborted wave).
	// The device kills the attempt itself and reports it via OnKernelAbort.
	FaultAbort
)

func (o FaultOutcome) String() string {
	switch o {
	case FaultNone:
		return "none"
	case FaultSlow:
		return "slow"
	case FaultHang:
		return "hang"
	case FaultAbort:
		return "abort"
	default:
		return fmt.Sprintf("FaultOutcome(%d)", int(o))
	}
}

// KernelFault is the injected fate of one kernel execution attempt.
type KernelFault struct {
	Outcome FaultOutcome

	// SlowFactor is the WG-latency multiplier for FaultSlow (> 1).
	SlowFactor float64
}

// FaultInjector decides the fate of each kernel execution attempt. The
// device consults it exactly once per attempt, when the attempt's first WG
// dispatches; implementations must be deterministic in (jobID, seq,
// attempt) so replayed traces inject identical faults.
type FaultInjector interface {
	KernelLaunch(now sim.Time, jobID, seq, attempt int) KernelFault
}

// Retirement is a scheduled permanent loss of compute units (a CU fails
// ECC screening, a partition is reclaimed). In-flight WGs drain; the CUs
// accept no new work afterwards.
type Retirement struct {
	At  sim.Time
	CUs int
}
