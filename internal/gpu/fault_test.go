package gpu

import (
	"testing"

	"laxgpu/internal/sim"
)

// scriptedInjector returns a fixed fault per (jobID, seq, attempt) triple and
// FaultNone for everything else.
type scriptedInjector struct {
	faults map[[3]int]KernelFault
}

func (si *scriptedInjector) KernelLaunch(now sim.Time, jobID, seq, attempt int) KernelFault {
	return si.faults[[3]int{jobID, seq, attempt}]
}

func TestFaultSlowStretchesLatency(t *testing.T) {
	eng := sim.NewEngine()
	d := New(DefaultConfig(), eng)
	d.SetFaultInjector(&scriptedInjector{faults: map[[3]int]KernelFault{
		{1, 0, 0}: {Outcome: FaultSlow, SlowFactor: 3},
	}})
	k := testKernel("k", 1, 64, 10*sim.Microsecond, 0)
	inst := NewKernelInstance(k, 1, 1, 0)
	inst.MarkReady(0)

	done := sim.Time(-1)
	d.OnKernelDone(func(ki *KernelInstance) { done = eng.Now() })
	d.TryDispatch(inst, -1)
	eng.Run()
	if done != 30*sim.Microsecond {
		t.Fatalf("slowed kernel finished at %v, want 30µs", done)
	}
}

func TestFaultHangHoldsResourcesUntilKill(t *testing.T) {
	eng := sim.NewEngine()
	d := New(DefaultConfig(), eng)
	d.SetFaultInjector(&scriptedInjector{faults: map[[3]int]KernelFault{
		{1, 0, 0}: {Outcome: FaultHang},
	}})
	k := testKernel("k", 4, 64, 10*sim.Microsecond, 0.5)
	inst := NewKernelInstance(k, 1, 1, 0)
	inst.MarkReady(0)

	placed := d.TryDispatch(inst, -1)
	if placed != 4 {
		t.Fatalf("placed %d WGs, want 4", placed)
	}
	eng.Run() // nothing completes: hung WGs never schedule events
	if inst.CompletedWGs() != 0 {
		t.Fatalf("hung kernel completed %d WGs, want 0", inst.CompletedWGs())
	}
	if d.ActiveWGs() != 4 {
		t.Fatalf("device holds %d WGs, want 4", d.ActiveWGs())
	}

	killed := d.Kill(inst)
	if killed != 4 {
		t.Fatalf("Kill reclaimed %d WGs, want 4", killed)
	}
	if d.ActiveWGs() != 0 || d.activeMemDemand != 0 {
		t.Fatalf("after kill: %d WGs active, mem demand %v; want 0, 0",
			d.ActiveWGs(), d.activeMemDemand)
	}
	if inst.State() != KernelReady || inst.Attempt != 1 {
		t.Fatalf("after kill: state %v attempt %d, want ready attempt 1", inst.State(), inst.Attempt)
	}
	if got := d.Counters().TotalKilled(); got != 4 {
		t.Fatalf("TotalKilled = %d, want 4", got)
	}

	// The retry (attempt 1 draws FaultNone) completes normally.
	done := false
	d.OnKernelDone(func(*KernelInstance) { done = true })
	d.TryDispatch(inst, -1)
	eng.Run()
	if !done || !inst.Done() {
		t.Fatalf("retry did not complete: %v", inst)
	}
}

func TestFaultAbortKillsAttemptAndFiresCallback(t *testing.T) {
	eng := sim.NewEngine()
	d := New(DefaultConfig(), eng)
	d.SetFaultInjector(&scriptedInjector{faults: map[[3]int]KernelFault{
		{1, 0, 0}: {Outcome: FaultAbort},
	}})
	k := testKernel("k", 8, 64, 10*sim.Microsecond, 0)
	inst := NewKernelInstance(k, 1, 1, 0)
	inst.MarkReady(0)

	var aborted *KernelInstance
	abortAt := sim.Time(-1)
	d.OnKernelAbort(func(ki *KernelInstance) { aborted = ki; abortAt = eng.Now() })
	d.TryDispatch(inst, -1)
	eng.Run()

	if aborted != inst {
		t.Fatal("abort callback did not fire for the faulted instance")
	}
	if abortAt != 10*sim.Microsecond {
		t.Fatalf("abort at %v, want 10µs (first WG latency)", abortAt)
	}
	if inst.State() != KernelReady || inst.Attempt != 1 || inst.CompletedWGs() != 0 {
		t.Fatalf("after abort: %v attempt %d, want ready attempt 1 with 0 completed", inst, inst.Attempt)
	}
	if d.ActiveWGs() != 0 {
		t.Fatalf("device holds %d WGs after abort, want 0", d.ActiveWGs())
	}
}

func TestKillKeepsCompletedWGs(t *testing.T) {
	eng := sim.NewEngine()
	d := New(DefaultConfig(), eng)
	d.EnableWGTracking()
	// 4 WGs of staggered dispatch: run until 2 complete, then kill.
	k := testKernel("k", 4, 64, 10*sim.Microsecond, 0)
	inst := NewKernelInstance(k, 1, 1, 0)
	inst.MarkReady(0)
	d.TryDispatch(inst, 2) // two WGs now
	eng.RunUntil(10 * sim.Microsecond)
	if inst.CompletedWGs() != 2 {
		t.Fatalf("completed %d WGs, want 2", inst.CompletedWGs())
	}
	d.TryDispatch(inst, 2) // two more in flight
	if inst.OutstandingWGs() != 2 {
		t.Fatalf("outstanding %d, want 2", inst.OutstandingWGs())
	}
	if n := d.Kill(inst); n != 2 {
		t.Fatalf("Kill reclaimed %d, want 2", n)
	}
	if inst.CompletedWGs() != 2 || inst.RemainingWGs() != 2 {
		t.Fatalf("after kill: completed %d remaining %d, want 2/2", inst.CompletedWGs(), inst.RemainingWGs())
	}
	// Finish the rest.
	d.TryDispatch(inst, -1)
	eng.Run()
	if !inst.Done() {
		t.Fatalf("kernel never finished: %v", inst)
	}
}

func TestRetireCUsShrinksPlacementAndCapacity(t *testing.T) {
	cfg := DefaultConfig()
	eng := sim.NewEngine()
	d := New(cfg, eng)
	k := testKernel("k", 1, 64, 10*sim.Microsecond, 0)

	nominal := d.MaxConcurrentWGs(k)
	if got := d.RetireCUs(cfg.NumCUs / 2); got != cfg.NumCUs/2 {
		t.Fatalf("retired %d CUs, want %d", got, cfg.NumCUs/2)
	}
	if d.ActiveCUs() != cfg.NumCUs-cfg.NumCUs/2 {
		t.Fatalf("ActiveCUs = %d, want %d", d.ActiveCUs(), cfg.NumCUs-cfg.NumCUs/2)
	}
	degraded := d.MaxConcurrentWGs(k)
	if degraded >= nominal {
		t.Fatalf("degraded capacity %d not below nominal %d", degraded, nominal)
	}

	// Retiring more CUs than exist retires only what is left.
	if got := d.RetireCUs(2 * cfg.NumCUs); got != cfg.NumCUs-cfg.NumCUs/2 {
		t.Fatalf("second retire got %d, want %d", got, cfg.NumCUs-cfg.NumCUs/2)
	}
	if d.ActiveCUs() != 0 {
		t.Fatalf("ActiveCUs = %d after retiring all, want 0", d.ActiveCUs())
	}
	inst := NewKernelInstance(k, 1, 1, 0)
	inst.MarkReady(0)
	if n := d.TryDispatch(inst, -1); n != 0 {
		t.Fatalf("fully retired device placed %d WGs, want 0", n)
	}
}

func TestHealthyPathIdenticalWithNoneInjector(t *testing.T) {
	// A device with an injector that always returns FaultNone must produce
	// the same timing as a device with no injector at all.
	run := func(withInjector bool) sim.Time {
		eng := sim.NewEngine()
		d := New(DefaultConfig(), eng)
		if withInjector {
			d.SetFaultInjector(&scriptedInjector{})
		}
		k := testKernel("k", 64, 256, 10*sim.Microsecond, 0.7)
		inst := NewKernelInstance(k, 1, 1, 0)
		inst.MarkReady(0)
		done := sim.Time(-1)
		d.OnKernelDone(func(*KernelInstance) { done = eng.Now() })
		d.OnWGComplete(func(ki *KernelInstance) { d.TryDispatch(ki, -1) })
		d.TryDispatch(inst, -1)
		eng.Run()
		return done
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("injector-free run finished at %v, none-injector run at %v", a, b)
	}
}
