// Package gpu models a GPU device at workgroup (WG) granularity: compute
// units with thread/wavefront/register/LDS occupancy limits, a shared
// memory-bandwidth contention model that stretches WG latencies under load,
// per-kernel completion counters, and a per-instruction energy meter.
//
// This is the substitute for the paper's gem5 cycle-level GPU model. The
// schedulers under study never observe ISA-level state — only WG completion
// events and rates, queue occupancy, and resource availability — so a
// WG-granular timing model exercises exactly the signals they consume.
package gpu

import (
	"fmt"

	"laxgpu/internal/sim"
)

// KernelDesc is the static description of a kernel: the fields a GPU
// command-queue packet carries (thread dimensions, register usage, LDS
// size — §2.1 of the paper) plus the timing/energy parameters our device
// model needs.
type KernelDesc struct {
	// Name identifies the kernel *type*. The Kernel Profiling Table keys
	// completion rates by this name, so all invocations of (say) the LSTM
	// GEMM kernel share one profiled rate, as in the paper.
	Name string

	// NumWGs is the number of workgroups in one launch of this kernel.
	NumWGs int

	// ThreadsPerWG is the workgroup size in threads.
	ThreadsPerWG int

	// VGPRBytesPerWG is the vector-register footprint of one workgroup.
	VGPRBytesPerWG int

	// LDSBytesPerWG is the local-data-store footprint of one workgroup.
	LDSBytesPerWG int

	// BaseWGTime is the latency of one workgroup when the kernel runs alone
	// on the device (no memory contention). Calibrated so that the isolated
	// kernel execution time matches Table 1 of the paper.
	BaseWGTime sim.Time

	// MemIntensity in [0,1] is the fraction of BaseWGTime spent waiting on
	// memory. Only this fraction stretches under bandwidth contention.
	MemIntensity float64

	// L2HitFrac in [0,1] is the fraction of the kernel's memory traffic
	// served by the L2 cache. Only meaningful when the device's two-level
	// memory model is enabled (Config.L2BandwidthDemand > 0); ignored
	// otherwise.
	L2HitFrac float64

	// InstPerThread approximates the dynamic instruction count per thread,
	// used by the per-instruction energy model.
	InstPerThread int
}

// TotalThreads returns the total thread count of one launch.
func (k *KernelDesc) TotalThreads() int { return k.NumWGs * k.ThreadsPerWG }

// ContextBytes returns the aggregate register + LDS context footprint of a
// full launch — the state a preemption-based scheduler must save/restore
// (Table 1's "Context size" column).
func (k *KernelDesc) ContextBytes() int {
	return k.NumWGs * (k.VGPRBytesPerWG + k.LDSBytesPerWG)
}

// Validate reports an error describing the first ill-formed field, or nil.
func (k *KernelDesc) Validate() error {
	switch {
	case k.Name == "":
		return fmt.Errorf("gpu: kernel has empty name")
	case k.NumWGs <= 0:
		return fmt.Errorf("gpu: kernel %s: NumWGs = %d, must be positive", k.Name, k.NumWGs)
	case k.ThreadsPerWG <= 0:
		return fmt.Errorf("gpu: kernel %s: ThreadsPerWG = %d, must be positive", k.Name, k.ThreadsPerWG)
	case k.BaseWGTime <= 0:
		return fmt.Errorf("gpu: kernel %s: BaseWGTime = %v, must be positive", k.Name, k.BaseWGTime)
	case k.MemIntensity < 0 || k.MemIntensity > 1:
		return fmt.Errorf("gpu: kernel %s: MemIntensity = %v, must be in [0,1]", k.Name, k.MemIntensity)
	case k.L2HitFrac < 0 || k.L2HitFrac > 1:
		return fmt.Errorf("gpu: kernel %s: L2HitFrac = %v, must be in [0,1]", k.Name, k.L2HitFrac)
	case k.VGPRBytesPerWG < 0 || k.LDSBytesPerWG < 0:
		return fmt.Errorf("gpu: kernel %s: negative resource footprint", k.Name)
	case k.InstPerThread < 0:
		return fmt.Errorf("gpu: kernel %s: negative InstPerThread", k.Name)
	}
	return nil
}

// KernelState is the lifecycle of a launched kernel instance.
type KernelState int

const (
	// KernelWaiting: enqueued but not yet ready (a predecessor kernel in
	// the same stream has not finished).
	KernelWaiting KernelState = iota
	// KernelReady: dependencies satisfied; eligible for WG dispatch.
	KernelReady
	// KernelRunning: at least one WG has been dispatched.
	KernelRunning
	// KernelDone: every WG has completed.
	KernelDone
)

func (s KernelState) String() string {
	switch s {
	case KernelWaiting:
		return "waiting"
	case KernelReady:
		return "ready"
	case KernelRunning:
		return "running"
	case KernelDone:
		return "done"
	default:
		return fmt.Sprintf("KernelState(%d)", int(s))
	}
}

// KernelInstance is one launch of a kernel, owned by a job's compute queue.
type KernelInstance struct {
	Desc *KernelDesc

	// JobID and QueueID identify the owning job/stream; Seq is the kernel's
	// position in the job's dependency chain.
	JobID   int
	QueueID int
	Seq     int

	// Paused, when set, excludes the instance from WG dispatch without
	// losing completed work. Used by preemption-based policies (PREMA).
	Paused bool

	// Attempt counts execution attempts of this instance: it starts at 0
	// and increments every time a fault or the CP watchdog kills the
	// in-flight attempt (Device.Kill). Fault draws key on it so a retried
	// kernel rolls fresh dice.
	Attempt int

	// fault is the injected outcome of the current attempt, drawn when the
	// attempt's first WG dispatches.
	fault KernelFault

	state      KernelState
	dispatched int // WGs handed to CUs
	completed  int // WGs finished

	// cidPlus1 caches the device counter ID for Desc.Name, plus one so the
	// zero value means "unresolved". Instances are per-run and per-device,
	// so the cache can never leak across counter blocks.
	cidPlus1 int

	ReadyAt    sim.Time // when dependencies were satisfied
	StartedAt  sim.Time // first WG dispatch
	FinishedAt sim.Time // last WG completion
}

// NewKernelInstance returns a waiting instance of desc for the given
// job/queue/sequence position.
func NewKernelInstance(desc *KernelDesc, jobID, queueID, seq int) *KernelInstance {
	return &KernelInstance{Desc: desc, JobID: jobID, QueueID: queueID, Seq: seq}
}

// State returns the instance's lifecycle state.
func (ki *KernelInstance) State() KernelState { return ki.state }

// MarkReady transitions a waiting instance to ready at time now.
func (ki *KernelInstance) MarkReady(now sim.Time) {
	if ki.state == KernelWaiting {
		ki.state = KernelReady
		ki.ReadyAt = now
	}
}

// RemainingWGs returns the number of WGs not yet dispatched.
func (ki *KernelInstance) RemainingWGs() int { return ki.Desc.NumWGs - ki.dispatched }

// OutstandingWGs returns the number of WGs dispatched but not yet complete.
func (ki *KernelInstance) OutstandingWGs() int { return ki.dispatched - ki.completed }

// CompletedWGs returns the number of WGs that have finished.
func (ki *KernelInstance) CompletedWGs() int { return ki.completed }

// UncompletedWGs returns the number of WGs that have not finished — the
// quantity the Job Table's WGList tracks for remaining-time estimation.
func (ki *KernelInstance) UncompletedWGs() int { return ki.Desc.NumWGs - ki.completed }

// Done reports whether all WGs have completed.
func (ki *KernelInstance) Done() bool { return ki.state == KernelDone }

// Dispatchable reports whether the device may start WGs from this instance.
func (ki *KernelInstance) Dispatchable() bool {
	return !ki.Paused &&
		(ki.state == KernelReady || ki.state == KernelRunning) &&
		ki.RemainingWGs() > 0
}

func (ki *KernelInstance) noteDispatch(now sim.Time) {
	if ki.state == KernelReady {
		ki.state = KernelRunning
		ki.StartedAt = now
	}
	ki.dispatched++
}

// resetAttempt rolls the instance back to the last completed WG after a
// kill: in-flight work is lost, finished WGs are kept, and the instance is
// ready for redispatch under a fresh Attempt number.
func (ki *KernelInstance) resetAttempt() {
	ki.dispatched = ki.completed
	if ki.state == KernelRunning {
		ki.state = KernelReady
	}
	ki.Attempt++
	ki.fault = KernelFault{}
}

func (ki *KernelInstance) noteComplete(now sim.Time) {
	ki.completed++
	if ki.completed == ki.Desc.NumWGs {
		ki.state = KernelDone
		ki.FinishedAt = now
	}
}

// String summarizes the instance for logs and test failures.
func (ki *KernelInstance) String() string {
	return fmt.Sprintf("J%d:K%d(%s %d/%d/%d %s)",
		ki.JobID, ki.Seq, ki.Desc.Name, ki.completed, ki.dispatched, ki.Desc.NumWGs, ki.state)
}
