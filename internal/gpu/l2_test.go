package gpu

import (
	"testing"

	"laxgpu/internal/sim"
)

// l2Config enables the two-level memory model with a 4x-wider L2 pool.
func l2Config() Config {
	cfg := DefaultConfig()
	cfg.L2BandwidthDemand = 4 * cfg.MemBandwidthDemand
	return cfg
}

func TestL2DisabledMatchesSingleLevel(t *testing.T) {
	// With L2 disabled, a kernel carrying an L2HitFrac must behave exactly
	// as the single-level model.
	k := testKernel("k", 8, 2048, 10*sim.Microsecond, 1.0)
	k.L2HitFrac = 0.9

	run := func(cfg Config) sim.Time {
		eng := sim.NewEngine()
		d := New(cfg, eng)
		inst := NewKernelInstance(k, 0, 0, 0)
		inst.MarkReady(0)
		d.OnWGComplete(func(*KernelInstance) { d.TryDispatch(inst, -1) })
		d.TryDispatch(inst, -1)
		eng.Run()
		return eng.Now()
	}
	base := DefaultConfig()
	noHit := *k
	noHit.L2HitFrac = 0
	if run(base) != run(base) {
		t.Fatal("nondeterministic run")
	}
	// Same kernel, same config, hit frac irrelevant when L2 disabled: the
	// kernel with and without a hit fraction must take identical time.
	k2 := noHit
	eng := sim.NewEngine()
	d := New(base, eng)
	inst := NewKernelInstance(&k2, 0, 0, 0)
	inst.MarkReady(0)
	d.OnWGComplete(func(*KernelInstance) { d.TryDispatch(inst, -1) })
	d.TryDispatch(inst, -1)
	eng.Run()
	if got := eng.Now(); got != run(base) {
		t.Fatalf("L2HitFrac changed single-level timing: %v vs %v", got, run(base))
	}
}

func TestL2HitsReduceDRAMContention(t *testing.T) {
	// Memory-saturating kernel: with 90% L2 hits under the two-level
	// model, only 10% of demand hits DRAM, so the slowdown collapses.
	mk := func(hit float64) *KernelDesc {
		k := testKernel("k", 8, 2048, 10*sim.Microsecond, 1.0)
		k.L2HitFrac = hit
		return k
	}
	run := func(cfg Config, k *KernelDesc) sim.Time {
		eng := sim.NewEngine()
		d := New(cfg, eng)
		inst := NewKernelInstance(k, 0, 0, 0)
		inst.MarkReady(0)
		d.OnWGComplete(func(*KernelInstance) { d.TryDispatch(inst, -1) })
		d.TryDispatch(inst, -1)
		eng.Run()
		return eng.Now()
	}
	cfg := l2Config()
	cold := run(cfg, mk(0))   // all traffic to DRAM
	warm := run(cfg, mk(0.9)) // 90% absorbed by the wide L2
	if warm >= cold {
		t.Fatalf("L2 hits did not reduce contention: warm %v >= cold %v", warm, cold)
	}
}

func TestL2PoolItselfSaturates(t *testing.T) {
	// A narrow L2 pool must stretch hit traffic too.
	cfg := DefaultConfig()
	cfg.L2BandwidthDemand = cfg.MemBandwidthDemand / 4 // narrower than DRAM
	k := testKernel("k", 8, 2048, 10*sim.Microsecond, 1.0)
	k.L2HitFrac = 1.0

	eng := sim.NewEngine()
	d := New(cfg, eng)
	inst := NewKernelInstance(k, 0, 0, 0)
	inst.MarkReady(0)
	d.OnWGComplete(func(*KernelInstance) { d.TryDispatch(inst, -1) })
	d.TryDispatch(inst, -1)
	eng.Run()
	// 8 WGs × 2048 demand = 16384 over an L2 pool of 3072 → slowdown 5.3×;
	// 8 WGs fit at once, so one wave ≥ 50µs.
	if eng.Now() < 50*sim.Microsecond {
		t.Fatalf("narrow L2 pool did not stretch latency: %v", eng.Now())
	}
}

func TestL2HitFracValidation(t *testing.T) {
	k := testKernel("k", 1, 64, sim.Microsecond, 0.5)
	k.L2HitFrac = 1.5
	if err := k.Validate(); err == nil {
		t.Fatal("hit fraction > 1 accepted")
	}
	k.L2HitFrac = -0.1
	if err := k.Validate(); err == nil {
		t.Fatal("negative hit fraction accepted")
	}
	k.L2HitFrac = 0.5
	if err := k.Validate(); err != nil {
		t.Fatalf("valid hit fraction rejected: %v", err)
	}
}

func TestL2DemandConservation(t *testing.T) {
	// After a mixed run under the two-level model, both demand pools must
	// return to zero.
	cfg := l2Config()
	eng := sim.NewEngine()
	d := New(cfg, eng)
	a := testKernel("a", 16, 1024, 20*sim.Microsecond, 0.8)
	a.L2HitFrac = 0.7
	b := testKernel("b", 8, 256, 5*sim.Microsecond, 0.4)
	b.L2HitFrac = 0.2
	ia := NewKernelInstance(a, 0, 0, 0)
	ib := NewKernelInstance(b, 1, 1, 0)
	ia.MarkReady(0)
	ib.MarkReady(0)
	d.OnWGComplete(func(*KernelInstance) {
		d.TryDispatch(ia, -1)
		d.TryDispatch(ib, -1)
	})
	d.TryDispatch(ia, -1)
	d.TryDispatch(ib, -1)
	eng.Run()
	if !ia.Done() || !ib.Done() {
		t.Fatal("kernels did not finish")
	}
	if d.Slowdown() != 1 {
		t.Fatalf("DRAM demand did not drain: slowdown %v", d.Slowdown())
	}
	if d.activeL2Demand != 0 {
		t.Fatalf("L2 demand did not drain: %v", d.activeL2Demand)
	}
}
