package gpu

import (
	"testing"

	"laxgpu/internal/sim"
)

func TestPlacementPolicyString(t *testing.T) {
	if FirstFit.String() != "first-fit" || BestFit.String() != "best-fit" ||
		RoundRobin.String() != "round-robin" {
		t.Fatal("placement names wrong")
	}
	if PlacementPolicy(9).String() != "PlacementPolicy(9)" {
		t.Fatal("unknown placement name wrong")
	}
	cfg := DefaultConfig()
	cfg.Placement = PlacementPolicy(9)
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown placement accepted")
	}
}

// occupancyByCU dispatches n WGs of warm under the placement policy and
// reports per-CU active WGs.
func occupancyByCU(t *testing.T, placement PlacementPolicy, warm *KernelDesc, n int) []int {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Placement = placement
	eng := sim.NewEngine()
	d := New(cfg, eng)

	wi := NewKernelInstance(warm, 0, 0, 0)
	wi.MarkReady(0)
	if got := d.TryDispatch(wi, n); got != n {
		t.Fatalf("warm dispatch placed %d, want %d", got, n)
	}
	counts := make([]int, cfg.NumCUs)
	for i, cu := range d.cus {
		counts[i] = cu.activeWGs
	}
	return counts
}

func TestFirstFitPacksLowCUs(t *testing.T) {
	small := testKernel("s", 64, 256, sim.Millisecond, 0)
	counts := occupancyByCU(t, FirstFit, small, 10)
	// 10 small WGs of 256 threads fill CU0 (capacity 10) entirely.
	if counts[0] != 10 {
		t.Fatalf("first-fit spread: %v", counts)
	}
}

func TestRoundRobinSpreads(t *testing.T) {
	small := testKernel("s", 64, 256, sim.Millisecond, 0)
	counts := occupancyByCU(t, RoundRobin, small, 8)
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("round-robin did not spread: CU%d has %d (%v)", i, c, counts)
		}
	}
}

func TestBestFitPreservesHolesForWideWGs(t *testing.T) {
	cfg := DefaultConfig()
	eng := sim.NewEngine()
	cfg.Placement = BestFit
	d := New(cfg, eng)

	// Pre-fill CU0 with 2048 threads (one fat WG): 512 threads left there.
	fat := testKernel("fat", 1, 2048, sim.Millisecond, 0)
	fi := NewKernelInstance(fat, 0, 0, 0)
	fi.MarkReady(0)
	d.TryDispatch(fi, -1)

	// A 256-thread filler should go to CU0 (tightest fit), leaving the
	// other CUs' full 2560-thread holes intact for a second fat WG.
	small := testKernel("s", 1, 256, sim.Millisecond, 0)
	si := NewKernelInstance(small, 1, 1, 0)
	si.MarkReady(0)
	d.TryDispatch(si, -1)
	if d.cus[0].activeWGs != 2 {
		t.Fatalf("best-fit did not pack the fragmented CU: CU0 has %d WGs", d.cus[0].activeWGs)
	}

	// First-fit would have done the same here (CU0 is first); the real
	// distinction: pre-fragment CU1 *less* than CU0 and best-fit must still
	// pick the tighter CU0.
	eng2 := sim.NewEngine()
	d2 := New(cfg, eng2)
	half := testKernel("half", 1, 1280, sim.Millisecond, 0)
	f2 := NewKernelInstance(fat, 0, 0, 0) // 2048 on some CU
	h2 := NewKernelInstance(half, 1, 1, 0)
	f2.MarkReady(0)
	h2.MarkReady(0)
	d2.TryDispatch(h2, -1) // 1280 free = 1280 on its CU
	d2.TryDispatch(f2, -1) // 512 free on its CU
	s2 := NewKernelInstance(small, 2, 2, 0)
	s2.MarkReady(0)
	d2.TryDispatch(s2, -1)
	// The small WG must share the fat WG's CU (512 free, tightest).
	for i, cu := range d2.cus {
		if cu.activeWGs == 2 {
			if cu.threadsFree != 2560-2048-256 {
				t.Fatalf("small WG packed onto the wrong CU %d (free %d)", i, cu.threadsFree)
			}
			return
		}
	}
	t.Fatal("small WG did not share a CU")
}

func TestPlacementPoliciesAllComplete(t *testing.T) {
	// Whatever the placement, all work completes and resources drain.
	for _, p := range []PlacementPolicy{FirstFit, BestFit, RoundRobin} {
		cfg := DefaultConfig()
		cfg.Placement = p
		eng := sim.NewEngine()
		d := New(cfg, eng)
		a := NewKernelInstance(testKernel("a", 40, 1024, 50*sim.Microsecond, 0.5), 0, 0, 0)
		b := NewKernelInstance(testKernel("b", 20, 2048, 80*sim.Microsecond, 0.3), 1, 1, 0)
		a.MarkReady(0)
		b.MarkReady(0)
		d.OnWGComplete(func(*KernelInstance) {
			d.TryDispatch(a, -1)
			d.TryDispatch(b, -1)
		})
		d.TryDispatch(a, -1)
		d.TryDispatch(b, -1)
		eng.Run()
		if !a.Done() || !b.Done() {
			t.Fatalf("%v: kernels did not finish", p)
		}
		if d.ActiveWGs() != 0 || d.FreeThreads() != cfg.TotalThreads() {
			t.Fatalf("%v: resources not conserved", p)
		}
	}
}
