package harness

import (
	"context"
	"fmt"

	"laxgpu/internal/cp"
	"laxgpu/internal/metrics"
	"laxgpu/internal/sched"
	"laxgpu/internal/sim"
	"laxgpu/internal/workload"
)

// ablationConfig is one row of the ablation study: a LAX configuration and
// the design question it answers.
type ablationConfig struct {
	label string
	why   string
	cfg   sched.LAXConfig
}

// ablations enumerates the paper's stated design choices:
//
//   - footnote 2: initial job priority (highest vs lowest vs initial
//     laxity estimate — the paper measured −10% and −1% for the
//     alternatives);
//   - §4.2/§4.4: the empirically chosen 100 µs update interval;
//   - the two algorithmic halves (Algorithm 1 admission, Algorithm 2
//     laxity), ablated independently;
//   - profiling smoothness (EWMA weight).
var ablations = []ablationConfig{
	{"LAX (paper)", "baseline configuration", sched.LAXConfig{}},
	{"init=lowest", "footnote 2: park new jobs at the lowest priority", sched.LAXConfig{InitialPriority: sched.InitLowest}},
	{"init=laxity", "footnote 2: initial laxity estimate on arrival", sched.LAXConfig{InitialPriority: sched.InitLaxity}},
	{"no-admission", "Algorithm 1 off: laxity priorities only", sched.LAXConfig{DisableAdmission: true}},
	{"no-laxity", "Algorithm 2 off: admission control only (FIFO)", sched.LAXConfig{DisableLaxity: true}},
	{"interval=50µs", "2x faster reprioritization", sched.LAXConfig{UpdateInterval: 50 * sim.Microsecond}},
	{"interval=500µs", "5x slower reprioritization", sched.LAXConfig{UpdateInterval: 500 * sim.Microsecond}},
	{"ewma=0.5", "smoothed completion rates", sched.LAXConfig{Alpha: 0.5}},
}

// ablationCell simulates one (LAX configuration, benchmark) cell at the
// high rate and returns its deadline-met count. priorityLevels > 0
// additionally quantizes the CP's priority registers to that many hardware
// levels (§2.2's contemporary-API limitation).
func ablationCell(ctx context.Context, r *Runner, cfg sched.LAXConfig, priorityLevels int, bench string) (int, error) {
	sysCfg := r.Cfg
	sysCfg.PriorityLevels = priorityLevels
	set, err := r.JobSet(bench, workload.HighRate)
	if err != nil {
		return 0, err
	}
	sys := cp.NewSystem(sysCfg, set, sched.NewLAXWithConfig(cfg))
	if err := sys.RunContext(ctx); err != nil {
		return 0, err
	}
	met := 0
	for _, j := range sys.Jobs() {
		if j.MetDeadline() {
			met++
		}
	}
	return met, nil
}

// Ablation regenerates the design-choice study DESIGN.md calls out: each
// LAX knob flipped in isolation, scored as geomean deadline-met relative to
// the paper's configuration, plus the future-work LAX+PREMA hybrid. Every
// (configuration, benchmark) pair is an independent cell submitted to the
// worker pool; the table assembles from the indexed count matrix.
func Ablation(ctx context.Context, r *Runner) *Report {
	t := &Table{
		Title:  "LAX design ablations (high rate, geomean jobs-met normalized to paper LAX)",
		Header: append(append([]string{"Config"}, workload.BenchmarkNames()...), "GMEAN", "Why"),
	}

	// Row specs: the config ablations, then the hardware priority-level
	// quantizations (§2.2: what LAX loses when the CP can only order queues
	// by 2 or 8 priority levels instead of full laxity values). Row 0 is
	// the paper baseline every other row normalizes against.
	type rowSpec struct {
		label  string
		why    string
		cfg    sched.LAXConfig
		levels int
	}
	var specs []rowSpec
	for _, a := range ablations {
		specs = append(specs, rowSpec{a.label, a.why, a.cfg, 0})
	}
	for _, levels := range []int{2, 8} {
		specs = append(specs, rowSpec{
			fmt.Sprintf("hw-levels=%d", levels),
			"§2.2: contemporary APIs expose only a few priority levels",
			sched.LAXConfig{}, levels,
		})
	}

	benches := workload.BenchmarkNames()
	for _, bench := range benches {
		if _, err := r.JobSet(bench, workload.HighRate); err != nil {
			panic(err)
		}
	}
	counts := make([][]int, len(specs))
	for i := range counts {
		counts[i] = make([]int, len(benches))
	}
	mustDo(ctx, r, len(specs)*len(benches), func(ctx context.Context, i int) error {
		s, b := i/len(benches), i%len(benches)
		met, err := ablationCell(ctx, r, specs[s].cfg, specs[s].levels, benches[b])
		if err != nil {
			return err
		}
		counts[s][b] = met
		return nil
	})

	base := counts[0] // "LAX (paper)": the zero LAXConfig at full priority resolution
	for s, spec := range specs {
		row := []string{spec.label}
		var ratios []float64
		for b := range benches {
			ratio := metrics.Ratio(float64(counts[s][b]), float64(base[b]))
			ratios = append(ratios, ratio)
			row = append(row, f2(ratio))
		}
		row = append(row, f2(metrics.Geomean(ratios)), spec.why)
		t.AddRow(row...)
	}

	// The future-work hybrid, same normalization.
	mustSweep(ctx, r, GridCells([]string{"LAX-PREMA"}, workload.HighRate))
	hybridRow := []string{"LAX-PREMA"}
	var hratios []float64
	for b, bench := range benches {
		sum := r.MustRun("LAX-PREMA", bench, workload.HighRate)
		ratio := metrics.Ratio(float64(sum.MetDeadline), float64(base[b]))
		hratios = append(hratios, ratio)
		hybridRow = append(hybridRow, f2(ratio))
	}
	hybridRow = append(hybridRow, f2(metrics.Geomean(hratios)),
		"future work (§6.1.2): preempt expired jobs when laxity is tight")
	t.AddRow(hybridRow...)

	return &Report{
		ID:     "ablation",
		Title:  "Which pieces of LAX matter (extension beyond the paper's figures)",
		Tables: []*Table{t},
		Notes: []string{
			"Footnote 2 of the paper reports init=lowest costing ~10% and init=laxity ~1% versus init=highest.",
			"Removing admission (Algorithm 1) or laxity (Algorithm 2) shows each half's contribution; the paper argues both are required.",
			fmt.Sprintf("All cells share arrival traces (seed %d), so differences are attributable to the configuration alone.", r.Seed),
		},
	}
}
