package harness

import (
	"fmt"

	"laxgpu/internal/cp"
	"laxgpu/internal/metrics"
	"laxgpu/internal/sched"
	"laxgpu/internal/sim"
	"laxgpu/internal/workload"
)

// ablationConfig is one row of the ablation study: a LAX configuration and
// the design question it answers.
type ablationConfig struct {
	label string
	why   string
	cfg   sched.LAXConfig
}

// ablations enumerates the paper's stated design choices:
//
//   - footnote 2: initial job priority (highest vs lowest vs initial
//     laxity estimate — the paper measured −10% and −1% for the
//     alternatives);
//   - §4.2/§4.4: the empirically chosen 100 µs update interval;
//   - the two algorithmic halves (Algorithm 1 admission, Algorithm 2
//     laxity), ablated independently;
//   - profiling smoothness (EWMA weight).
var ablations = []ablationConfig{
	{"LAX (paper)", "baseline configuration", sched.LAXConfig{}},
	{"init=lowest", "footnote 2: park new jobs at the lowest priority", sched.LAXConfig{InitialPriority: sched.InitLowest}},
	{"init=laxity", "footnote 2: initial laxity estimate on arrival", sched.LAXConfig{InitialPriority: sched.InitLaxity}},
	{"no-admission", "Algorithm 1 off: laxity priorities only", sched.LAXConfig{DisableAdmission: true}},
	{"no-laxity", "Algorithm 2 off: admission control only (FIFO)", sched.LAXConfig{DisableLaxity: true}},
	{"interval=50µs", "2x faster reprioritization", sched.LAXConfig{UpdateInterval: 50 * sim.Microsecond}},
	{"interval=500µs", "5x slower reprioritization", sched.LAXConfig{UpdateInterval: 500 * sim.Microsecond}},
	{"ewma=0.5", "smoothed completion rates", sched.LAXConfig{Alpha: 0.5}},
}

// runAblation executes one configuration over all benchmarks at the high
// rate and returns per-benchmark deadline-met counts. priorityLevels > 0
// additionally quantizes the CP's priority registers to that many hardware
// levels (§2.2's contemporary-API limitation).
func runAblation(r *Runner, cfg sched.LAXConfig, priorityLevels int) (map[string]int, error) {
	sysCfg := r.Cfg
	sysCfg.PriorityLevels = priorityLevels
	out := make(map[string]int, len(workload.BenchmarkNames()))
	for _, bench := range workload.BenchmarkNames() {
		set, err := r.JobSet(bench, workload.HighRate)
		if err != nil {
			return nil, err
		}
		sys := cp.NewSystem(sysCfg, set, sched.NewLAXWithConfig(cfg))
		sys.Run()
		met := 0
		for _, j := range sys.Jobs() {
			if j.MetDeadline() {
				met++
			}
		}
		out[bench] = met
	}
	return out, nil
}

// Ablation regenerates the design-choice study DESIGN.md calls out: each
// LAX knob flipped in isolation, scored as geomean deadline-met relative to
// the paper's configuration, plus the future-work LAX+PREMA hybrid.
func Ablation(r *Runner) *Report {
	t := &Table{
		Title:  "LAX design ablations (high rate, geomean jobs-met normalized to paper LAX)",
		Header: append(append([]string{"Config"}, workload.BenchmarkNames()...), "GMEAN", "Why"),
	}

	base, err := runAblation(r, sched.LAXConfig{}, 0)
	if err != nil {
		panic(err)
	}
	for _, a := range ablations {
		counts, err := runAblation(r, a.cfg, 0)
		if err != nil {
			panic(err)
		}
		row := []string{a.label}
		var ratios []float64
		for _, b := range workload.BenchmarkNames() {
			ratio := metrics.Ratio(float64(counts[b]), float64(base[b]))
			ratios = append(ratios, ratio)
			row = append(row, f2(ratio))
		}
		row = append(row, f2(metrics.Geomean(ratios)), a.why)
		t.AddRow(row...)
	}

	// Hardware priority-level quantization (§2.2): what LAX loses when the
	// CP can only order queues by 2 or 8 priority levels instead of full
	// laxity values.
	for _, levels := range []int{2, 8} {
		counts, err := runAblation(r, sched.LAXConfig{}, levels)
		if err != nil {
			panic(err)
		}
		row := []string{fmt.Sprintf("hw-levels=%d", levels)}
		var ratios []float64
		for _, b := range workload.BenchmarkNames() {
			ratio := metrics.Ratio(float64(counts[b]), float64(base[b]))
			ratios = append(ratios, ratio)
			row = append(row, f2(ratio))
		}
		row = append(row, f2(metrics.Geomean(ratios)),
			"§2.2: contemporary APIs expose only a few priority levels")
		t.AddRow(row...)
	}

	// The future-work hybrid, same normalization.
	hybridRow := []string{"LAX-PREMA"}
	var hratios []float64
	for _, b := range workload.BenchmarkNames() {
		sum := r.MustRun("LAX-PREMA", b, workload.HighRate)
		ratio := metrics.Ratio(float64(sum.MetDeadline), float64(base[b]))
		hratios = append(hratios, ratio)
		hybridRow = append(hybridRow, f2(ratio))
	}
	hybridRow = append(hybridRow, f2(metrics.Geomean(hratios)),
		"future work (§6.1.2): preempt expired jobs when laxity is tight")
	t.AddRow(hybridRow...)

	return &Report{
		ID:     "ablation",
		Title:  "Which pieces of LAX matter (extension beyond the paper's figures)",
		Tables: []*Table{t},
		Notes: []string{
			"Footnote 2 of the paper reports init=lowest costing ~10% and init=laxity ~1% versus init=highest.",
			"Removing admission (Algorithm 1) or laxity (Algorithm 2) shows each half's contribution; the paper argues both are required.",
			fmt.Sprintf("All cells share arrival traces (seed %d), so differences are attributable to the configuration alone.", r.Seed),
		},
	}
}
