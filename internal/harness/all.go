package harness

import (
	"fmt"
	"sort"
)

// Experiments maps experiment IDs (the paper's table/figure numbers) to
// their generator functions.
var Experiments = map[string]func(*Runner) *Report{
	"table1":   Table1,
	"figure1":  Figure1,
	"figure3":  func(*Runner) *Report { return Figure3() },
	"figure4":  Figure4,
	"figure6":  Figure6,
	"figure7":  Figure7,
	"figure8":  Figure8,
	"figure9":  Figure9,
	"figure10": Figure10,
	"table5":   Table5,
	"ablation": Ablation,
	"analysis": Sensitivity,
	"seeds":    Seeds,
	"scaling":  Scaling,
	"faults":   FaultSweep,
}

// experimentOrder is the rendering order (paper order).
var experimentOrder = []string{
	"table1", "figure1", "figure3", "figure4",
	"figure6", "figure7", "figure8", "figure9", "figure10", "table5",
	"ablation", "analysis", "seeds", "scaling", "faults",
}

// ExperimentIDs returns the known experiment IDs in paper order.
func ExperimentIDs() []string {
	out := make([]string, len(experimentOrder))
	copy(out, experimentOrder)
	return out
}

// RunExperiment generates the report for one experiment ID.
func RunExperiment(r *Runner, id string) (*Report, error) {
	f, ok := Experiments[id]
	if !ok {
		valid := ExperimentIDs()
		sort.Strings(valid)
		return nil, fmt.Errorf("harness: unknown experiment %q (valid: %v)", id, valid)
	}
	return f(r), nil
}

// All generates every report in paper order.
func All(r *Runner) []*Report {
	out := make([]*Report, 0, len(experimentOrder))
	for _, id := range experimentOrder {
		out = append(out, Experiments[id](r))
	}
	return out
}
