package harness

import (
	"context"
	"errors"
	"fmt"
	"sort"
)

// Experiments maps experiment IDs (the paper's table/figure numbers) to
// their generator functions. Generators submit their independent simulation
// cells to the runner's worker pool and assemble the report only after the
// sweep completes, so the rendered bytes do not depend on pool width. On
// simulation errors (including context cancellation) they panic; use
// RunExperiment, which converts cancellation panics back into errors.
var Experiments = map[string]func(context.Context, *Runner) *Report{
	"table1":    Table1,
	"figure1":   Figure1,
	"figure3":   func(ctx context.Context, _ *Runner) *Report { return Figure3(ctx) },
	"figure4":   Figure4,
	"figure6":   Figure6,
	"figure7":   Figure7,
	"figure8":   Figure8,
	"figure9":   Figure9,
	"figure10":  Figure10,
	"table5":    Table5,
	"ablation":  Ablation,
	"analysis":  Sensitivity,
	"seeds":     Seeds,
	"scaling":   Scaling,
	"faults":    FaultSweep,
	"estimates": Estimates,
	"autoscale": Autoscale,
}

// experimentOrder is the rendering order (paper order).
var experimentOrder = []string{
	"table1", "figure1", "figure3", "figure4",
	"figure6", "figure7", "figure8", "figure9", "figure10", "table5",
	"ablation", "analysis", "seeds", "scaling", "faults", "estimates",
	"autoscale",
}

// ExperimentIDs returns the known experiment IDs in paper order.
func ExperimentIDs() []string {
	out := make([]string, len(experimentOrder))
	copy(out, experimentOrder)
	return out
}

// RunExperiment generates the report for one experiment ID. A cancelled
// context aborts the experiment mid-cell and surfaces the context's error;
// any other generator panic propagates unchanged.
func RunExperiment(ctx context.Context, r *Runner, id string) (rep *Report, err error) {
	f, ok := Experiments[id]
	if !ok {
		valid := ExperimentIDs()
		sort.Strings(valid)
		return nil, fmt.Errorf("harness: unknown experiment %q (valid: %v)", id, valid)
	}
	defer func() {
		if p := recover(); p != nil {
			if e, ok := p.(error); ok && (errors.Is(e, context.Canceled) || errors.Is(e, context.DeadlineExceeded)) {
				rep, err = nil, e
				return
			}
			panic(p)
		}
	}()
	return f(ctx, r), nil
}

// All generates every report in paper order, stopping early when the
// context is cancelled.
func All(ctx context.Context, r *Runner) ([]*Report, error) {
	out := make([]*Report, 0, len(experimentOrder))
	for _, id := range experimentOrder {
		rep, err := RunExperiment(ctx, r, id)
		if err != nil {
			return out, err
		}
		out = append(out, rep)
	}
	return out, nil
}
