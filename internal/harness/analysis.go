package harness

import (
	"fmt"
	"sort"

	"laxgpu/internal/cp"
	"laxgpu/internal/metrics"
	"laxgpu/internal/queueing"
	"laxgpu/internal/sched"
	"laxgpu/internal/sim"
	"laxgpu/internal/workload"
)

// sensitivityFactors scale each benchmark's high arrival rate to trace the
// capacity curve from light load to 4x oversubscription.
var sensitivityFactors = []float64{0.25, 0.5, 1, 2, 4}

// sensitivitySchedulers are the policies whose load response the sweep
// contrasts: the blind baseline, the best simple heuristic, LAX, and the
// perfect-information upper bound.
var sensitivitySchedulers = []string{"RR", "SJF", "LAX", "ORACLE"}

// sensitivityBenchmarks keeps the sweep focused on one many-kernel and one
// few-kernel workload.
var sensitivityBenchmarks = []string{"LSTM", "STEM"}

// runAtRate simulates one scheduler on a custom-rate trace and returns its
// summary.
func runAtRate(r *Runner, schedName, benchName string, jobsPerSec int, seed int64) (metrics.Summary, error) {
	b, err := workload.FindBenchmark(benchName)
	if err != nil {
		return metrics.Summary{}, err
	}
	pol, err := sched.New(schedName)
	if err != nil {
		return metrics.Summary{}, err
	}
	set := b.GenerateCustom(r.Lib, jobsPerSec, r.JobCount, seed)
	sys := cp.NewSystem(r.Cfg, set, pol)
	sys.Run()
	return metrics.Summarize(sys, schedName, benchName, fmt.Sprintf("%djobs/s", jobsPerSec)), nil
}

// Sensitivity builds the offered-load sweep: deadline-met fraction versus
// arrival rate. The paper sweeps three levels (Table 4); this extension
// traces the whole capacity curve and adds the perfect-information ORACLE,
// isolating how much of LAX's headroom is estimation error.
func Sensitivity(r *Runner) *Report {
	rep := &Report{
		ID:    "analysis",
		Title: "Load sensitivity, oracle gap, and device utilization (extensions beyond the paper's figures)",
	}

	for _, bench := range sensitivityBenchmarks {
		b, err := workload.FindBenchmark(bench)
		if err != nil {
			panic(err)
		}
		high := b.JobsPerSecond(workload.HighRate)
		t := &Table{
			Title:  fmt.Sprintf("%s: %% of jobs meeting deadline vs offered load (high rate = %d jobs/s)", bench, high),
			Header: []string{"Scheduler"},
		}
		for _, f := range sensitivityFactors {
			t.Header = append(t.Header, fmt.Sprintf("%.2gx", f))
		}
		for _, s := range sensitivitySchedulers {
			row := []string{s}
			for _, f := range sensitivityFactors {
				rate := int(float64(high) * f)
				sum, err := runAtRate(r, s, bench, rate, r.Seed)
				if err != nil {
					panic(err)
				}
				row = append(row, f1(100*sum.DeadlineFrac()))
			}
			t.AddRow(row...)
		}
		rep.Tables = append(rep.Tables, t)
	}

	rep.Tables = append(rep.Tables, theoryTable(r))
	rep.Tables = append(rep.Tables, oracleGapTable(r))
	rep.Tables = append(rep.Tables, utilizationTable(r))
	rep.Tables = append(rep.Tables, burstinessTable(r))
	rep.Tables = append(rep.Tables, missTaxonomyTable(r))
	rep.Tables = append(rep.Tables, latencyCDFTable(r))
	rep.Notes = append(rep.Notes,
		"ORACLE runs LAX's algorithms with exact isolated execution times — the gap to LAX is pure estimation error.",
		"At light load every scheduler meets everything; the curves separate exactly where contention begins, and LAX tracks ORACLE.",
	)
	return rep
}

// theoryTable validates the substrate against closed-form queueing theory:
// each single-kernel benchmark at a stable load is approximately an M/M/k
// queue, whose FCFS deadline-met fraction is known analytically. Simulated
// FCFS must land near the prediction (exactly matching is impossible: the
// kernels have deterministic service, making M/M/k conservative).
func theoryTable(r *Runner) *Table {
	t := &Table{
		Title:  "Substrate validation: analytical M/M/k vs simulated FCFS deadline-met % (stable loads)",
		Header: []string{"Benchmark", "rate (jobs/s)", "rho", "theory %", "simulated %"},
	}
	for _, name := range []string{"IPV6", "CUCKOO", "GMM", "STEM"} {
		bench, err := workload.FindBenchmark(name)
		if err != nil {
			panic(err)
		}
		desc := bench.Generate(r.Lib, workload.LowRate, 1, 1).Jobs[0].Kernels[0]
		rate := bench.JobsPerSecond(workload.LowRate) / 2
		model := queueing.ForKernel(r.Cfg.GPU, desc, rate)
		if !model.Stable() {
			t.AddRow(name, fint(rate), f2(model.Utilization()), "unstable", "-")
			continue
		}
		predicted, err := model.DeadlineMetFrac(bench.Deadline)
		if err != nil {
			panic(err)
		}
		sum, err := runAtRate(r, "FCFS", name, rate, r.Seed)
		if err != nil {
			panic(err)
		}
		t.AddRow(name, fint(rate), f2(model.Utilization()),
			f1(100*predicted), f1(100*sum.DeadlineFrac()))
	}
	return t
}

// oracleGapTable compares FCFS, LAX and ORACLE at the high rate.
func oracleGapTable(r *Runner) *Table {
	t := &Table{
		Title:  "Oracle gap at the high rate (jobs met)",
		Header: append([]string{"Scheduler"}, append(workload.BenchmarkNames(), "TOTAL")...),
	}
	for _, s := range []string{"FCFS", "LAX", "ORACLE"} {
		row := []string{s}
		total := 0
		for _, b := range workload.BenchmarkNames() {
			met := r.MustRun(s, b, workload.HighRate).MetDeadline
			total += met
			row = append(row, fint(met))
		}
		row = append(row, fint(total))
		t.AddRow(row...)
	}
	return t
}

// burstinessTable stresses the schedulers with interrupted-Poisson
// arrivals at the same mean load: bursts are what separate a queue model
// that adapts (LAX's live completion rates) from static heuristics.
func burstinessTable(r *Runner) *Table {
	t := &Table{
		Title:  "Burstiness sensitivity: STEM at the high mean rate, % of jobs meeting deadline",
		Header: []string{"Scheduler", "poisson", "burst=2x", "burst=4x", "burst=8x"},
	}
	bench, err := workload.FindBenchmark("STEM")
	if err != nil {
		panic(err)
	}
	rate := bench.JobsPerSecond(workload.HighRate)
	for _, schedName := range []string{"RR", "SJF", "LAX"} {
		row := []string{schedName}
		for _, burst := range []float64{1, 2, 4, 8} {
			set := bench.GenerateBursty(r.Lib, rate, burst, 12, r.JobCount, r.Seed)
			pol, err := sched.New(schedName)
			if err != nil {
				panic(err)
			}
			sys := cp.NewSystem(r.Cfg, set, pol)
			sys.Run()
			met := 0
			for _, j := range sys.Jobs() {
				if j.MetDeadline() {
					met++
				}
			}
			row = append(row, f1(100*float64(met)/float64(len(sys.Jobs()))))
		}
		t.AddRow(row...)
	}
	return t
}

// missTaxonomyTable breaks down WHY jobs miss under each scheduler: the
// diagnostic behind the aggregate counts. Deadline-blind schedulers bleed
// through queueing; LAX converts would-be misses into explicit rejections.
func missTaxonomyTable(r *Runner) *Table {
	t := &Table{
		Title:  "Miss taxonomy on LSTM @ high rate (misses by cause)",
		Header: []string{"Scheduler", "met"},
	}
	for _, k := range metrics.MissKinds() {
		t.Header = append(t.Header, k.String())
	}
	for _, schedName := range []string{"RR", "SJF", "PREMA", "LAX", "LAX-PREMA"} {
		sys, _, err := r.RunSystem(schedName, "LSTM", workload.HighRate)
		if err != nil {
			panic(err)
		}
		met := 0
		for _, j := range sys.Jobs() {
			if j.MetDeadline() {
				met++
			}
		}
		breakdown := metrics.MissBreakdown(sys)
		row := []string{schedName, fint(met)}
		for _, k := range metrics.MissKinds() {
			row = append(row, fint(breakdown[k]))
		}
		t.AddRow(row...)
	}
	return t
}

// latencyCDFTable shows the full completed-job latency distribution behind
// Table 5b's single p99 number.
func latencyCDFTable(r *Runner) *Table {
	t := &Table{
		Title:  "Completed-job latency distribution on STEM @ high rate (ms)",
		Header: []string{"Scheduler", "p50", "p90", "p99", "max", "p99/p50"},
	}
	for _, schedName := range []string{"RR", "PREMA", "LAX"} {
		sys, _, err := r.RunSystem(schedName, "STEM", workload.HighRate)
		if err != nil {
			panic(err)
		}
		var lats []float64
		for _, j := range sys.Jobs() {
			if j.Done() {
				lats = append(lats, j.Latency().Milliseconds())
			}
		}
		q := metrics.CDF(lats, []float64{0.5, 0.9, 0.99, 1})
		t.AddRow(schedName, f3(q[0]), f3(q[1]), f3(q[2]), f3(q[3]), f1(metrics.TailRatio(lats)))
	}
	return t
}

// utilizationTable samples device thread occupancy every 100 µs during
// LSTM-high runs: deadline-aware scheduling should not pay for its wins
// with an idle device.
func utilizationTable(r *Runner) *Table {
	t := &Table{
		Title:  "Device thread occupancy during LSTM @ high rate (sampled every 100µs over the first 20ms)",
		Header: []string{"Scheduler", "mean%", "median%", "p95%", "useful-work%"},
	}
	for _, schedName := range []string{"RR", "SJF", "LAX"} {
		pol, err := sched.New(schedName)
		if err != nil {
			panic(err)
		}
		set, err := r.JobSet("LSTM", workload.HighRate)
		if err != nil {
			panic(err)
		}
		sys := cp.NewSystem(r.Cfg, set, pol)
		var samples []float64
		for at := sim.Time(0); at < 20*sim.Millisecond; at += 100 * sim.Microsecond {
			at := at
			sys.Engine().Schedule(at, func() {
				samples = append(samples, 100*sys.Device().Utilization())
			})
		}
		sys.Run()
		sum := metrics.Summarize(sys, schedName, "LSTM", "high")
		sorted := append([]float64(nil), samples...)
		sort.Float64s(sorted)
		t.AddRow(schedName,
			f1(metrics.Mean(samples)),
			f1(metrics.Percentile(samples, 50)),
			f1(metrics.Percentile(samples, 95)),
			f1(100*sum.UsefulWorkFrac))
	}
	return t
}
