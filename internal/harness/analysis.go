package harness

import (
	"context"
	"fmt"
	"sort"

	"laxgpu/internal/cp"
	"laxgpu/internal/metrics"
	"laxgpu/internal/queueing"
	"laxgpu/internal/sched"
	"laxgpu/internal/sim"
	"laxgpu/internal/workload"
)

// sensitivityFactors scale each benchmark's high arrival rate to trace the
// capacity curve from light load to 4x oversubscription.
var sensitivityFactors = []float64{0.25, 0.5, 1, 2, 4}

// sensitivitySchedulers are the policies whose load response the sweep
// contrasts: the blind baseline, the best simple heuristic, LAX, and the
// perfect-information upper bound.
var sensitivitySchedulers = []string{"RR", "SJF", "LAX", "ORACLE"}

// sensitivityBenchmarks keeps the sweep focused on one many-kernel and one
// few-kernel workload.
var sensitivityBenchmarks = []string{"LSTM", "STEM"}

// runAtRate simulates one scheduler on a custom-rate trace and returns its
// summary. Traces at custom rates are not memoized: each call generates its
// own set, so concurrent calls never share mutable state.
func runAtRate(ctx context.Context, r *Runner, schedName, benchName string, jobsPerSec int, seed int64) (metrics.Summary, error) {
	b, err := workload.FindBenchmark(benchName)
	if err != nil {
		return metrics.Summary{}, err
	}
	pol, err := sched.New(schedName)
	if err != nil {
		return metrics.Summary{}, err
	}
	set := b.GenerateCustom(r.Lib, jobsPerSec, r.JobCount, seed)
	sys := cp.NewSystem(r.Cfg, set, pol)
	if err := sys.RunContext(ctx); err != nil {
		return metrics.Summary{}, err
	}
	return metrics.Summarize(sys, schedName, benchName, fmt.Sprintf("%djobs/s", jobsPerSec)), nil
}

// Sensitivity builds the offered-load sweep: deadline-met fraction versus
// arrival rate. The paper sweeps three levels (Table 4); this extension
// traces the whole capacity curve and adds the perfect-information ORACLE,
// isolating how much of LAX's headroom is estimation error. The full
// benchmark x scheduler x load-factor grid is flattened into independent
// tasks on the worker pool; tables assemble from the indexed result cube.
func Sensitivity(ctx context.Context, r *Runner) *Report {
	rep := &Report{
		ID:    "analysis",
		Title: "Load sensitivity, oracle gap, and device utilization (extensions beyond the paper's figures)",
	}

	nB, nS, nF := len(sensitivityBenchmarks), len(sensitivitySchedulers), len(sensitivityFactors)
	highs := make([]int, nB)
	for i, bench := range sensitivityBenchmarks {
		b, err := workload.FindBenchmark(bench)
		if err != nil {
			panic(err)
		}
		highs[i] = b.JobsPerSecond(workload.HighRate)
	}
	fracs := make([]float64, nB*nS*nF)
	mustDo(ctx, r, len(fracs), func(ctx context.Context, i int) error {
		b, s, f := i/(nS*nF), (i/nF)%nS, i%nF
		rate := int(float64(highs[b]) * sensitivityFactors[f])
		sum, err := runAtRate(ctx, r, sensitivitySchedulers[s], sensitivityBenchmarks[b], rate, r.Seed)
		if err != nil {
			return err
		}
		fracs[i] = sum.DeadlineFrac()
		return nil
	})
	for b, bench := range sensitivityBenchmarks {
		t := &Table{
			Title:  fmt.Sprintf("%s: %% of jobs meeting deadline vs offered load (high rate = %d jobs/s)", bench, highs[b]),
			Header: []string{"Scheduler"},
		}
		for _, f := range sensitivityFactors {
			t.Header = append(t.Header, fmt.Sprintf("%.2gx", f))
		}
		for s, schedName := range sensitivitySchedulers {
			row := []string{schedName}
			for f := range sensitivityFactors {
				row = append(row, f1(100*fracs[(b*nS+s)*nF+f]))
			}
			t.AddRow(row...)
		}
		rep.Tables = append(rep.Tables, t)
	}

	rep.Tables = append(rep.Tables, theoryTable(ctx, r))
	rep.Tables = append(rep.Tables, oracleGapTable(ctx, r))
	rep.Tables = append(rep.Tables, utilizationTable(ctx, r))
	rep.Tables = append(rep.Tables, burstinessTable(ctx, r))
	rep.Tables = append(rep.Tables, missTaxonomyTable(ctx, r))
	rep.Tables = append(rep.Tables, latencyCDFTable(ctx, r))
	rep.Notes = append(rep.Notes,
		"ORACLE runs LAX's algorithms with exact isolated execution times — the gap to LAX is pure estimation error.",
		"At light load every scheduler meets everything; the curves separate exactly where contention begins, and LAX tracks ORACLE.",
	)
	return rep
}

// theoryTable validates the substrate against closed-form queueing theory:
// each single-kernel benchmark at a stable load is approximately an M/M/k
// queue, whose FCFS deadline-met fraction is known analytically. Simulated
// FCFS must land near the prediction (exactly matching is impossible: the
// kernels have deterministic service, making M/M/k conservative).
func theoryTable(ctx context.Context, r *Runner) *Table {
	t := &Table{
		Title:  "Substrate validation: analytical M/M/k vs simulated FCFS deadline-met % (stable loads)",
		Header: []string{"Benchmark", "rate (jobs/s)", "rho", "theory %", "simulated %"},
	}
	names := []string{"IPV6", "CUCKOO", "GMM", "STEM"}
	rows := make([][]string, len(names))
	mustDo(ctx, r, len(names), func(ctx context.Context, i int) error {
		name := names[i]
		bench, err := workload.FindBenchmark(name)
		if err != nil {
			return err
		}
		desc := bench.Generate(r.Lib, workload.LowRate, 1, 1).Jobs[0].Kernels[0]
		rate := bench.JobsPerSecond(workload.LowRate) / 2
		model := queueing.ForKernel(r.Cfg.GPU, desc, rate)
		if !model.Stable() {
			rows[i] = []string{name, fint(rate), f2(model.Utilization()), "unstable", "-"}
			return nil
		}
		predicted, err := model.DeadlineMetFrac(bench.Deadline)
		if err != nil {
			return err
		}
		sum, err := runAtRate(ctx, r, "FCFS", name, rate, r.Seed)
		if err != nil {
			return err
		}
		rows[i] = []string{name, fint(rate), f2(model.Utilization()),
			f1(100 * predicted), f1(100 * sum.DeadlineFrac())}
		return nil
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t
}

// oracleGapTable compares FCFS, LAX and ORACLE at the high rate. The cells
// go through the runner's sweep (and its cache), so reads during assembly
// are warm hits in deterministic order.
func oracleGapTable(ctx context.Context, r *Runner) *Table {
	scheds := []string{"FCFS", "LAX", "ORACLE"}
	mustSweep(ctx, r, GridCells(scheds, workload.HighRate))
	t := &Table{
		Title:  "Oracle gap at the high rate (jobs met)",
		Header: append([]string{"Scheduler"}, append(workload.BenchmarkNames(), "TOTAL")...),
	}
	for _, s := range scheds {
		row := []string{s}
		total := 0
		for _, b := range workload.BenchmarkNames() {
			met := r.MustRun(s, b, workload.HighRate).MetDeadline
			total += met
			row = append(row, fint(met))
		}
		row = append(row, fint(total))
		t.AddRow(row...)
	}
	return t
}

// burstinessTable stresses the schedulers with interrupted-Poisson
// arrivals at the same mean load: bursts are what separate a queue model
// that adapts (LAX's live completion rates) from static heuristics. Each
// (scheduler, burst factor) run is an independent pooled task.
func burstinessTable(ctx context.Context, r *Runner) *Table {
	t := &Table{
		Title:  "Burstiness sensitivity: STEM at the high mean rate, % of jobs meeting deadline",
		Header: []string{"Scheduler", "poisson", "burst=2x", "burst=4x", "burst=8x"},
	}
	bench, err := workload.FindBenchmark("STEM")
	if err != nil {
		panic(err)
	}
	rate := bench.JobsPerSecond(workload.HighRate)
	scheds := []string{"RR", "SJF", "LAX"}
	bursts := []float64{1, 2, 4, 8}
	pct := make([][]float64, len(scheds))
	for i := range pct {
		pct[i] = make([]float64, len(bursts))
	}
	mustDo(ctx, r, len(scheds)*len(bursts), func(ctx context.Context, i int) error {
		s, bu := i/len(bursts), i%len(bursts)
		set := bench.GenerateBursty(r.Lib, rate, bursts[bu], 12, r.JobCount, r.Seed)
		pol, err := sched.New(scheds[s])
		if err != nil {
			return err
		}
		sys := cp.NewSystem(r.Cfg, set, pol)
		if err := sys.RunContext(ctx); err != nil {
			return err
		}
		met := 0
		for _, j := range sys.Jobs() {
			if j.MetDeadline() {
				met++
			}
		}
		pct[s][bu] = 100 * float64(met) / float64(len(sys.Jobs()))
		return nil
	})
	for s, schedName := range scheds {
		row := []string{schedName}
		for bu := range bursts {
			row = append(row, f1(pct[s][bu]))
		}
		t.AddRow(row...)
	}
	return t
}

// missTaxonomyTable breaks down WHY jobs miss under each scheduler: the
// diagnostic behind the aggregate counts. Deadline-blind schedulers bleed
// through queueing; LAX converts would-be misses into explicit rejections.
func missTaxonomyTable(ctx context.Context, r *Runner) *Table {
	t := &Table{
		Title:  "Miss taxonomy on LSTM @ high rate (misses by cause)",
		Header: []string{"Scheduler", "met"},
	}
	for _, k := range metrics.MissKinds() {
		t.Header = append(t.Header, k.String())
	}
	scheds := []string{"RR", "SJF", "PREMA", "LAX", "LAX-PREMA"}
	type taxonomy struct {
		met       int
		breakdown map[metrics.MissKind]int
	}
	rows := make([]taxonomy, len(scheds))
	mustDo(ctx, r, len(scheds), func(ctx context.Context, i int) error {
		sys, _, err := r.RunSystemContext(ctx, scheds[i], "LSTM", workload.HighRate)
		if err != nil {
			return err
		}
		met := 0
		for _, j := range sys.Jobs() {
			if j.MetDeadline() {
				met++
			}
		}
		rows[i] = taxonomy{met: met, breakdown: metrics.MissBreakdown(sys)}
		return nil
	})
	for i, schedName := range scheds {
		row := []string{schedName, fint(rows[i].met)}
		for _, k := range metrics.MissKinds() {
			row = append(row, fint(rows[i].breakdown[k]))
		}
		t.AddRow(row...)
	}
	return t
}

// latencyCDFTable shows the full completed-job latency distribution behind
// Table 5b's single p99 number.
func latencyCDFTable(ctx context.Context, r *Runner) *Table {
	t := &Table{
		Title:  "Completed-job latency distribution on STEM @ high rate (ms)",
		Header: []string{"Scheduler", "p50", "p90", "p99", "max", "p99/p50"},
	}
	scheds := []string{"RR", "PREMA", "LAX"}
	lats := make([][]float64, len(scheds))
	mustDo(ctx, r, len(scheds), func(ctx context.Context, i int) error {
		sys, _, err := r.RunSystemContext(ctx, scheds[i], "STEM", workload.HighRate)
		if err != nil {
			return err
		}
		for _, j := range sys.Jobs() {
			if j.Done() {
				lats[i] = append(lats[i], j.Latency().Milliseconds())
			}
		}
		return nil
	})
	for i, schedName := range scheds {
		q := metrics.CDF(lats[i], []float64{0.5, 0.9, 0.99, 1})
		t.AddRow(schedName, f3(q[0]), f3(q[1]), f3(q[2]), f3(q[3]), f1(metrics.TailRatio(lats[i])))
	}
	return t
}

// utilizationTable samples device thread occupancy every 100 µs during
// LSTM-high runs: deadline-aware scheduling should not pay for its wins
// with an idle device. Each scheduler's sampled run is one pooled task
// (the sampling callbacks live inside that task's private system).
func utilizationTable(ctx context.Context, r *Runner) *Table {
	t := &Table{
		Title:  "Device thread occupancy during LSTM @ high rate (sampled every 100µs over the first 20ms)",
		Header: []string{"Scheduler", "mean%", "median%", "p95%", "useful-work%"},
	}
	scheds := []string{"RR", "SJF", "LAX"}
	type utilRow struct {
		samples []float64
		useful  float64
	}
	rows := make([]utilRow, len(scheds))
	mustDo(ctx, r, len(scheds), func(ctx context.Context, i int) error {
		pol, err := sched.New(scheds[i])
		if err != nil {
			return err
		}
		set, err := r.JobSet("LSTM", workload.HighRate)
		if err != nil {
			return err
		}
		sys := cp.NewSystem(r.Cfg, set, pol)
		var samples []float64
		for at := sim.Time(0); at < 20*sim.Millisecond; at += 100 * sim.Microsecond {
			at := at
			sys.Engine().Schedule(at, func() {
				samples = append(samples, 100*sys.Device().Utilization())
			})
		}
		if err := sys.RunContext(ctx); err != nil {
			return err
		}
		sum := metrics.Summarize(sys, scheds[i], "LSTM", "high")
		rows[i] = utilRow{samples: samples, useful: sum.UsefulWorkFrac}
		return nil
	})
	for i, schedName := range scheds {
		samples := rows[i].samples
		sorted := append([]float64(nil), samples...)
		sort.Float64s(sorted)
		t.AddRow(schedName,
			f1(metrics.Mean(samples)),
			f1(metrics.Percentile(samples, 50)),
			f1(metrics.Percentile(samples, 95)),
			f1(100*rows[i].useful))
	}
	return t
}
