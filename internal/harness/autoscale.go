package harness

import (
	"context"
	"fmt"
	"sort"
	"time"

	"laxgpu/internal/autoscale"
	"laxgpu/internal/cp"
	"laxgpu/internal/gateway"
	"laxgpu/internal/serve"
	"laxgpu/internal/sim"
	"laxgpu/internal/workload"
	"laxgpu/internal/workload/scenario"
)

// autoscaleScenarios are the committed scenario files the experiment replays
// (the builtin copies are pinned byte-equal to examples/scenarios/).
var autoscaleScenarios = []string{"diurnal", "burst-storm", "three-tenant"}

// autoscalePolicies is the comparison set in presentation order: the fixed
// minimum fleet, damage-driven scaling, and schedule-driven scaling.
var autoscalePolicies = []string{"static-min", "reactive", "predictive"}

// AutoscaleSettings parameterize one fleet replay. The zero value is not
// useful; DefaultAutoscaleSettings is the experiment's configuration.
type AutoscaleSettings struct {
	// NodeRate is the calibrated per-node sustainable throughput handed to
	// the saturation analyzer (jobs/s).
	NodeRate float64

	// Lag is the modeled provisioning delay.
	Lag sim.Time

	// Tick is the control-loop interval.
	Tick sim.Time

	// MinNodes/MaxNodes bound the fleet; static-min runs MinNodes forever.
	MinNodes, MaxNodes int

	// Patience is the drain patience in ticks.
	Patience int

	// NodeCUs shrinks each fleet node to this many compute units (memory
	// bandwidth scaled proportionally), so the committed scenarios — sized
	// for the paper's single 8-CU device — genuinely saturate one node and
	// fleet size becomes the capacity lever. 0 keeps the default device.
	NodeCUs int
}

// nodeSystem returns the per-node simulated system for the replay fleet.
func (s AutoscaleSettings) nodeSystem() cp.SystemConfig {
	cfg := cp.DefaultSystemConfig()
	if s.NodeCUs > 0 {
		scale := float64(s.NodeCUs) / float64(cfg.GPU.NumCUs)
		cfg.GPU.NumCUs = s.NodeCUs
		cfg.GPU.MemBandwidthDemand *= scale
	}
	return cfg
}

// DefaultAutoscaleSettings is the experiment configuration: a 10ms
// provisioning lag against scenarios whose phases are 20ms+, so a
// forecast-driven policy can be ready for a step exactly when it lands
// while a damage-driven one is late by one lag.
func DefaultAutoscaleSettings() AutoscaleSettings {
	return AutoscaleSettings{
		NodeRate: 7000,
		Lag:      10 * sim.Millisecond,
		Tick:     sim.Millisecond,
		MinNodes: 1,
		MaxNodes: 6,
		Patience: 3,
		NodeCUs:  2,
	}
}

// AutoscaleResult is one (scenario, policy) fleet replay's outcome.
type AutoscaleResult struct {
	Scenario, Policy string

	// Jobs is the offered job count; Met of them finished inside their
	// deadline, Missed is everything else (late completions plus rejects).
	Jobs, Met, Missed int64

	// NodeSeconds is the provisioned-capacity cost in simulated seconds.
	NodeSeconds float64

	// ScaleUps/Drains count applied decisions; PeakNodes is the largest
	// routable fleet the run reached.
	ScaleUps, Drains, PeakNodes int
}

// MetFrac is the deadline-met fraction.
func (a AutoscaleResult) MetFrac() float64 {
	if a.Jobs == 0 {
		return 0
	}
	return float64(a.Met) / float64(a.Jobs)
}

// RunAutoscale replays one scenario through a gateway fleet under one
// scaling policy, entirely in simulated time on a manual clock: arrivals
// submit at their generated instants, probes and the control loop tick
// every Settings.Tick, scale-ups activate one provisioning lag after their
// decision, and the run then quiesces. Deterministic for a fixed (spec,
// seed, settings) triple. The fleet journal is checked (including the
// fleet-drain-lossless rule) and any violation is returned as an error.
func RunAutoscale(r *Runner, spec *scenario.Spec, policy string, s AutoscaleSettings) (AutoscaleResult, error) {
	set, err := spec.Generate(r.Lib, 0)
	if err != nil {
		return AutoscaleResult{}, err
	}

	clock := serve.NewManualClock()
	nodeSys := s.nodeSystem()
	var owned []*gateway.InprocBackend
	mkNode := func(name string) (*gateway.InprocBackend, error) {
		ib, err := gateway.NewInprocBackend(gateway.InprocConfig{
			Name:       name,
			Node:       serve.NodeConfig{System: nodeSys, Scheduler: "LAX"},
			Clock:      clock,
			TraceDepth: -1,
		})
		if err != nil {
			return nil, err
		}
		owned = append(owned, ib)
		return ib, nil
	}
	defer func() {
		for _, ib := range owned {
			ib.Shutdown(time.Second)
		}
	}()

	// Every policy starts from the minimum fleet; static-min just never
	// leaves it.
	var backends []gateway.Backend
	for i := 0; i < s.MinNodes; i++ {
		ib, err := mkNode(fmt.Sprintf("node%d", i))
		if err != nil {
			return AutoscaleResult{}, err
		}
		backends = append(backends, ib)
	}
	gw, err := gateway.New(gateway.Options{
		Backends:      backends,
		Clock:         clock,
		Seed:          r.Seed,
		FailThreshold: 3,
		ProbeBackoff:  s.Tick,
		System:        nodeSys,
	})
	if err != nil {
		return AutoscaleResult{}, err
	}

	var pol autoscale.Policy
	var fc autoscale.Forecast
	switch policy {
	case "static-min":
		pol = autoscale.Static{}
	case "reactive":
		pol = &autoscale.Reactive{Patience: s.Patience}
	case "predictive":
		pol = &autoscale.Predictive{Patience: s.Patience}
		fc = spec
	default:
		return AutoscaleResult{}, fmt.Errorf("harness: unknown autoscale policy %q", policy)
	}
	ctrl, err := autoscale.New(autoscale.Options{
		Gateway:  gw,
		Policy:   pol,
		Forecast: fc,
		Config: autoscale.Config{
			NodeRate:      s.NodeRate,
			Lag:           s.Lag,
			MinNodes:      s.MinNodes,
			MaxNodes:      s.MaxNodes,
			DrainPatience: s.Patience,
		},
		Factory: func(name string) (gateway.Backend, error) { return mkNode(name) },
	})
	if err != nil {
		return AutoscaleResult{}, err
	}

	// Replay: arrivals submit at their own instants; the probe and control
	// loops run every tick. Class/benchmark lookups are cached per cohort.
	benches := map[string]*workload.Benchmark{}
	classes := map[string]gateway.Class{}
	horizon := sim.Time(spec.DurationUs) * sim.Microsecond
	peakNodes := 0
	ji := 0
	tickAll := func(t sim.Time) {
		clock.Set(t)
		gw.TickProbes(t)
		ctrl.Tick(t)
		if n := gw.ActiveNodes(); n > peakNodes {
			peakNodes = n
		}
	}
	tickAll(0)
	for t := s.Tick; ; t += s.Tick {
		for ji < len(set.Jobs) && set.Jobs[ji].Arrival <= t {
			j := set.Jobs[ji]
			bench := benches[j.Benchmark]
			if bench == nil {
				if bench, err = workload.FindBenchmark(j.Benchmark); err != nil {
					return AutoscaleResult{}, err
				}
				benches[j.Benchmark] = bench
			}
			class, ok := classes[j.Criticality]
			if !ok {
				if class, err = gateway.ParseClass(j.Criticality); err != nil {
					return AutoscaleResult{}, err
				}
				classes[j.Criticality] = class
			}
			clock.Set(j.Arrival)
			gw.Submit(bench, j.Deadline, class)
			ji++
		}
		tickAll(t)
		if t >= horizon && ji == len(set.Jobs) {
			break
		}
	}

	// Quiesce: keep ticking until the fleet finishes every accepted job
	// (bounded — a wedged run is a bug, not a longer wait).
	end := horizon
	for i := 0; gw.Inflight() > 0 && i < 1000; i++ {
		end += s.Tick
		tickAll(end)
	}
	if n := gw.Inflight(); n != 0 {
		return AutoscaleResult{}, fmt.Errorf("harness: autoscale replay wedged with %d jobs in flight", n)
	}
	if vs := gw.Check(end); len(vs) != 0 {
		return AutoscaleResult{}, fmt.Errorf("harness: fleet journal violation under %s/%s: %v",
			spec.Name, policy, vs[0])
	}

	st := gw.Stats()
	return AutoscaleResult{
		Scenario:    spec.Name,
		Policy:      policy,
		Jobs:        st.Submitted,
		Met:         st.Submitted - st.Missed,
		Missed:      st.Missed,
		NodeSeconds: ctrl.NodeSeconds(),
		ScaleUps:    ctrl.ScaleUps(),
		Drains:      ctrl.Drains(),
		PeakNodes:   peakNodes,
	}, nil
}

// Autoscale is the fleet-elasticity experiment: every committed scenario
// replayed under static-min, reactive and predictive scaling, comparing
// deadline misses against provisioned node-seconds. The predictive policy
// reads the scenario's own rate schedule one provisioning lag ahead; the
// reactive one sees only damage, so its scale-ups land one lag late and the
// misses accumulated inside that window are visible in the table.
func Autoscale(ctx context.Context, r *Runner) *Report {
	s := DefaultAutoscaleSettings()
	type cell struct {
		scn, pol string
	}
	var cells []cell
	for _, scn := range autoscaleScenarios {
		for _, pol := range autoscalePolicies {
			cells = append(cells, cell{scn, pol})
		}
	}
	results := make([]AutoscaleResult, len(cells))
	mustDo(ctx, r, len(cells), func(ctx context.Context, i int) error {
		spec, err := scenario.Builtin(cells[i].scn)
		if err != nil {
			return err
		}
		res, err := RunAutoscale(r, spec, cells[i].pol, s)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	sort.SliceStable(results, func(a, b int) bool {
		if results[a].Scenario != results[b].Scenario {
			return results[a].Scenario < results[b].Scenario
		}
		return results[a].Policy < results[b].Policy
	})

	rep := &Report{
		ID:    "autoscale",
		Title: "Deadline misses vs provisioned node-seconds under fleet autoscaling",
		Notes: []string{
			fmt.Sprintf("Provisioning lag %v, control tick %v, fleet %d..%d nodes, analyzer NodeRate %g jobs/s.",
				s.Lag, s.Tick, s.MinNodes, s.MaxNodes, s.NodeRate),
			"Expected shape: predictive ≥ reactive on deadlines met at similar or lower node-seconds (its scale-ups are ready when a schedule step lands); both beat the static minimum fleet; static-min spends the fewest node-seconds and misses the most.",
		},
	}
	for _, scn := range autoscaleScenarios {
		t := &Table{
			Title:  fmt.Sprintf("scenario %s", scn),
			Header: []string{"Policy", "Jobs", "Met", "Missed", "Met%", "Node-seconds", "Scale-ups", "Drains", "Peak nodes"},
		}
		for _, res := range results {
			if res.Scenario != scn {
				continue
			}
			t.AddRow(res.Policy, fint(int(res.Jobs)), fint(int(res.Met)), fint(int(res.Missed)),
				f1(100*res.MetFrac()), f3(res.NodeSeconds), fint(res.ScaleUps), fint(res.Drains),
				fint(res.PeakNodes))
		}
		rep.Tables = append(rep.Tables, t)
	}
	return rep
}
