package harness

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"laxgpu/internal/workload/scenario"
)

// runDiurnal replays the committed diurnal scenario under one policy with
// the experiment's default settings.
func runDiurnal(t *testing.T, policy string) AutoscaleResult {
	t.Helper()
	spec, err := scenario.Builtin("diurnal")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAutoscale(NewRunner(), spec, policy, DefaultAutoscaleSettings())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestAutoscaleDiurnalOrdering pins the experiment's headline claim on the
// committed diurnal scenario, fully deterministically (manual clock, fixed
// seeds): the predictive policy meets strictly more deadlines than the
// reactive one at equal or fewer node-seconds, and both meet strictly more
// than the static minimum fleet.
func TestAutoscaleDiurnalOrdering(t *testing.T) {
	static := runDiurnal(t, "static-min")
	reactive := runDiurnal(t, "reactive")
	predictive := runDiurnal(t, "predictive")

	if predictive.Met <= reactive.Met {
		t.Errorf("predictive met %d <= reactive met %d — the forecast bought nothing",
			predictive.Met, reactive.Met)
	}
	if predictive.NodeSeconds > reactive.NodeSeconds {
		t.Errorf("predictive spent %.4f node-seconds > reactive %.4f — foresight must not cost more capacity",
			predictive.NodeSeconds, reactive.NodeSeconds)
	}
	if reactive.Met <= static.Met {
		t.Errorf("reactive met %d <= static-min met %d", reactive.Met, static.Met)
	}
	if predictive.Met <= static.Met {
		t.Errorf("predictive met %d <= static-min met %d", predictive.Met, static.Met)
	}
	// The scaling policies actually scaled; the baseline never did.
	if static.ScaleUps != 0 || static.Drains != 0 || static.PeakNodes != 1 {
		t.Errorf("static-min scaled: %+v", static)
	}
	for _, r := range []AutoscaleResult{reactive, predictive} {
		if r.ScaleUps == 0 || r.Drains == 0 {
			t.Errorf("%s never scaled both ways: ups=%d drains=%d", r.Policy, r.ScaleUps, r.Drains)
		}
		if r.PeakNodes <= 1 {
			t.Errorf("%s peak fleet = %d, want > 1", r.Policy, r.PeakNodes)
		}
	}
}

// TestAutoscaleReplayDeterministic re-runs one cell and requires identical
// results — the property the pinned ordering test rests on.
func TestAutoscaleReplayDeterministic(t *testing.T) {
	a := runDiurnal(t, "predictive")
	b := runDiurnal(t, "predictive")
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two replays diverged:\n%+v\n%+v", a, b)
	}
}

// TestAutoscaleExperimentReport runs the registered experiment end to end
// (it is cheap: nine sub-second simulated replays) and checks the report
// shape.
func TestAutoscaleExperimentReport(t *testing.T) {
	rep, err := RunExperiment(context.Background(), NewRunner(), "autoscale")
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "autoscale" || len(rep.Tables) != 3 {
		t.Fatalf("report = %s with %d tables, want autoscale with 3", rep.ID, len(rep.Tables))
	}
	for i, scn := range autoscaleScenarios {
		tab := rep.Tables[i]
		if !strings.Contains(tab.Title, scn) {
			t.Errorf("table %d title %q does not name scenario %s", i, tab.Title, scn)
		}
		if len(tab.Rows) != len(autoscalePolicies) {
			t.Errorf("table %d has %d rows, want %d", i, len(tab.Rows), len(autoscalePolicies))
		}
	}
}

// TestRunAutoscaleRejectsUnknownPolicy covers the error path.
func TestRunAutoscaleRejectsUnknownPolicy(t *testing.T) {
	spec, err := scenario.Builtin("diurnal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunAutoscale(NewRunner(), spec, "chaotic", DefaultAutoscaleSettings()); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
