package harness

import (
	"hash/fnv"
	"sync"

	"laxgpu/internal/metrics"
)

// cacheShards is the shard count of the run cache. Sixteen keeps lock
// contention negligible at any realistic pool width (a full paper grid is
// 13×8×3 = 312 cells spread over the shards) without bloating the zero
// state.
const cacheShards = 16

// runCache is a sharded, concurrency-safe memo of simulation summaries
// with in-flight deduplication: concurrent requests for the same cell share
// one simulation instead of racing to run it twice. Entries are immutable
// once their done channel closes, so readers never hold a lock while a
// simulation runs. Failed runs (including context cancellations) are
// evicted rather than cached, so a cancelled sweep never poisons a later
// one.
type runCache struct {
	shards [cacheShards]cacheShard
}

type cacheShard struct {
	mu sync.Mutex
	m  map[runKey]*cacheEntry
}

// cacheEntry is one memoized (or in-flight) simulation. sum and err are
// written exactly once, before done closes; waiters read them only after
// <-done.
type cacheEntry struct {
	done chan struct{}
	sum  metrics.Summary
	err  error
}

func newRunCache() *runCache {
	c := &runCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[runKey]*cacheEntry)
	}
	return c
}

func (k runKey) shard() uint32 {
	h := fnv.New32a()
	h.Write([]byte(k.sched))
	h.Write([]byte{0})
	h.Write([]byte(k.bench))
	h.Write([]byte{0, byte(k.rate)})
	return h.Sum32() % cacheShards
}

// do returns the memoized summary for k, running fn to produce it if no
// run is cached or in flight. Exactly one caller executes fn per missing
// key; the rest block until it finishes and share the result.
func (c *runCache) do(k runKey, fn func() (metrics.Summary, error)) (metrics.Summary, error) {
	sh := &c.shards[k.shard()]
	sh.mu.Lock()
	if e, ok := sh.m[k]; ok {
		sh.mu.Unlock()
		<-e.done
		return e.sum, e.err
	}
	e := &cacheEntry{done: make(chan struct{})}
	sh.m[k] = e
	sh.mu.Unlock()

	e.sum, e.err = fn()
	if e.err != nil {
		sh.mu.Lock()
		delete(sh.m, k)
		sh.mu.Unlock()
	}
	close(e.done)
	return e.sum, e.err
}

// cached reports whether k has a completed, successful run in the cache.
func (c *runCache) cached(k runKey) bool {
	sh := &c.shards[k.shard()]
	sh.mu.Lock()
	e, ok := sh.m[k]
	sh.mu.Unlock()
	if !ok {
		return false
	}
	select {
	case <-e.done:
		return e.err == nil
	default:
		return false
	}
}
