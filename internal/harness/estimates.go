package harness

import (
	"context"
	"fmt"

	"laxgpu/internal/cp"
	"laxgpu/internal/faults"
	"laxgpu/internal/metrics"
	"laxgpu/internal/obs"
	"laxgpu/internal/sched"
	"laxgpu/internal/verify"
	"laxgpu/internal/workload"
)

// ProbedRun is one uncached simulation with the telemetry probe attached:
// the usual Summary plus the run's metric registry and estimate-accuracy
// tracker.
type ProbedRun struct {
	Summary metrics.Summary
	Metrics *obs.Metrics
}

// RunProbed executes a fresh simulation of (scheduler, benchmark, rate) with
// an obs.Metrics probe attached. Probed runs bypass the memoization cache —
// the probe accumulates per-run state — but replay the same memoized job
// trace as cached runs, so the Summary is identical to Run's (the probe is a
// pure observer; internal/harness tests pin this equivalence).
func (r *Runner) RunProbed(schedName, benchName string, rate workload.Rate) (ProbedRun, error) {
	return r.RunProbedContext(context.Background(), schedName, benchName, rate)
}

// RunProbedContext is RunProbed with cooperative cancellation.
func (r *Runner) RunProbedContext(ctx context.Context, schedName, benchName string, rate workload.Rate) (ProbedRun, error) {
	return r.RunProbedInto(ctx, obs.NewMetrics(), schedName, benchName, rate)
}

// RunProbedInto is RunProbedContext feeding a caller-supplied Metrics probe,
// so several runs can aggregate into one registry (a shared scrape target).
func (r *Runner) RunProbedInto(ctx context.Context, m *obs.Metrics, schedName, benchName string, rate workload.Rate) (ProbedRun, error) {
	sum, err := r.RunObserved(ctx, m, schedName, benchName, rate)
	if err != nil {
		return ProbedRun{}, err
	}
	return ProbedRun{Summary: sum, Metrics: m}, nil
}

// RunObserved executes a fresh, uncached simulation with an arbitrary probe
// attached (obs.Multi combines several). Like every probed path it replays
// the memoized job trace, the runner's Verify flag rides along, and the
// probe is a pure observer, so the Summary is identical to a cached Run's.
func (r *Runner) RunObserved(ctx context.Context, p obs.Probe, schedName, benchName string, rate workload.Rate) (metrics.Summary, error) {
	pol, err := sched.New(schedName)
	if err != nil {
		return metrics.Summary{}, err
	}
	set, err := r.JobSet(benchName, rate)
	if err != nil {
		return metrics.Summary{}, err
	}
	spec, err := faults.ParseSpec(r.Faults)
	if err != nil {
		return metrics.Summary{}, err
	}
	cfg := r.Cfg
	if !spec.Zero() && spec.Recover {
		cfg.Recovery = cp.DefaultRecoveryConfig()
	}
	sys := cp.NewSystem(cfg, set, pol)
	if !spec.Zero() {
		sys.InstallFaults(faults.NewPlan(spec, r.cellSeed(benchName, rate)), spec.Retirements)
	}
	var ck *verify.Checker
	probe := p
	if r.Verify {
		ck = verify.New(verify.OptionsFor(schedName, pol, cfg, !spec.Zero()))
		ck.Attach(sys)
		probe = obs.Multi(p, ck)
	}
	sys.SetProbe(probe)
	if err := sys.RunContext(ctx); err != nil {
		return metrics.Summary{}, err
	}
	if ck != nil {
		if err := ck.Finalize(); err != nil {
			return metrics.Summary{}, fmt.Errorf("%s/%s/%s: invariant violation: %w", schedName, benchName, rate, err)
		}
	}
	return metrics.Summarize(sys, schedName, benchName, rate.String()), nil
}

// estimateSchedulers are the policies with a prediction mechanism to score:
// the profiled estimators (LAX, SRF), the offline-model CPU-side scheduler
// (BAY), and ORACLE, whose isolated-time estimates are exact for a job
// running alone (under load all four pay the same contention penalty; see
// the report note).
var estimateSchedulers = []string{"LAX", "SRF", "BAY", "ORACLE"}

// estimateBenchmarks span a long sequential chain (LSTM) and a short
// single-kernel job (CUCKOO) so both estimator regimes appear.
var estimateBenchmarks = []string{"LSTM", "CUCKOO"}

// Estimates reports each scheduler's estimate accuracy: per-kernel predicted
// launch time versus actual completion, and whole-chain predicted remaining
// time at the last reprioritization sample versus the job's actual finish.
// This generalizes Figure 10's single-job MAE to every kernel and job of a
// cell, using the same telemetry the laxsim -metrics flag exports.
func Estimates(ctx context.Context, r *Runner) *Report {
	rep := &Report{
		ID:    "Estimates",
		Title: "Estimate accuracy: predicted vs actual kernel and chain times (high rate)",
	}
	type cellResult struct {
		sched, bench string
		kernel       obs.EstimateStats
		chain        obs.EstimateStats
		accepted     int64
		rejected     int64
	}
	var cells []cellResult
	for _, s := range estimateSchedulers {
		for _, b := range estimateBenchmarks {
			cells = append(cells, cellResult{sched: s, bench: b})
		}
	}
	// Materialize shared traces before fanning out.
	for _, b := range estimateBenchmarks {
		if _, err := r.JobSet(b, workload.HighRate); err != nil {
			panic(err)
		}
	}
	mustDo(ctx, r, len(cells), func(ctx context.Context, i int) error {
		pr, err := r.RunProbedContext(ctx, cells[i].sched, cells[i].bench, workload.HighRate)
		if err != nil {
			return err
		}
		cells[i].kernel = pr.Metrics.KernelEstimates()
		cells[i].chain = pr.Metrics.ChainEstimates()
		cells[i].accepted = pr.Metrics.Accepted()
		cells[i].rejected = pr.Metrics.Rejected()
		return nil
	})

	t := &Table{
		Title: "Per-cell estimate error (MAE% = mean |err| / mean actual)",
		Header: []string{"sched", "bench", "kernels", "kMAE%", "kP50|err|", "kP99|err|",
			"chains", "cMAE%", "accepted", "rejected"},
	}
	for _, c := range cells {
		t.AddRow(c.sched, c.bench,
			fint(c.kernel.Count), f1(c.kernel.MAEPct),
			fmt.Sprintf("%.0fµs", c.kernel.P50AbsUs), fmt.Sprintf("%.0fµs", c.kernel.P99AbsUs),
			fint(c.chain.Count), f1(c.chain.MAEPct),
			fint(int(c.accepted)), fint(int(c.rejected)))
	}
	rep.Tables = append(rep.Tables, t)
	rep.Notes = append(rep.Notes,
		"Every estimator here predicts contention-free times (LAX/SRF from profiled rates, BAY/ORACLE from exact isolated kernel times), so under the high rate the error is dominated by co-runner contention none of them model: ORACLE matches LAX rather than hitting zero, and is exactly right only when a job runs alone (pinned by TestOracleKernelEstimatesAreExact). Relative shape is what matters: schedulers admitting fewer jobs (BAY on LSTM) see less contention and lower MAE.")
	return rep
}
