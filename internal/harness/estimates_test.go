package harness

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"laxgpu/internal/cp"
	"laxgpu/internal/metrics"
	"laxgpu/internal/obs"
	"laxgpu/internal/sched"
	"laxgpu/internal/workload"
)

// TestGoldenEquivalenceWithProbes is the tentpole observer-effect guarantee:
// running the identical cell with the full telemetry stack attached
// (metrics + Perfetto probes) must produce a byte-identical JSONL schedule
// trace and an identical Summary. The trace records every admission,
// dispatch, and completion with nanosecond timestamps, so byte equality
// means the probes changed nothing.
func TestGoldenEquivalenceWithProbes(t *testing.T) {
	r := NewRunner()
	r.JobCount = 48
	set, err := r.JobSet("LSTM", workload.HighRate)
	if err != nil {
		t.Fatal(err)
	}

	run := func(probe obs.Probe) (string, metrics.Summary) {
		var buf bytes.Buffer
		sys := cp.NewSystem(r.Cfg, set, sched.NewLAX())
		sys.SetTracer(cp.NewTracer(&buf))
		if probe != nil {
			sys.SetProbe(probe)
		}
		sys.Run()
		return buf.String(), metrics.Summarize(sys, "LAX", "LSTM", "high")
	}

	goldenTrace, goldenSummary := run(nil)
	if goldenTrace == "" {
		t.Fatal("golden run produced an empty trace")
	}
	probedTrace, probedSummary := run(obs.Multi(obs.NewMetrics(), obs.NewPerfetto()))

	if goldenTrace != probedTrace {
		t.Fatal("probed run's schedule trace diverged from the golden run")
	}
	if !reflect.DeepEqual(goldenSummary, probedSummary) {
		t.Fatalf("probed summary diverged:\n golden %+v\n probed %+v", goldenSummary, probedSummary)
	}
}

// TestRunProbedMatchesRun pins RunProbed's contract: same trace, same
// Summary as the unprobed cached path, plus populated telemetry.
func TestRunProbedMatchesRun(t *testing.T) {
	r := NewRunner()
	r.JobCount = 32
	plain, err := r.Run("LAX", "LSTM", workload.HighRate)
	if err != nil {
		t.Fatal(err)
	}
	probed, err := r.RunProbed("LAX", "LSTM", workload.HighRate)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, probed.Summary) {
		t.Fatalf("probed summary diverged:\n plain  %+v\n probed %+v", plain, probed.Summary)
	}
	if probed.Metrics.KernelEstimates().Count == 0 {
		t.Fatal("probed run recorded no kernel estimate pairs")
	}
	var prom strings.Builder
	if err := probed.Metrics.Registry().WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"laxsim_estimate_kernel_error_us_count",
		"laxsim_estimate_chain_error_us_count",
		"laxsim_admissions_accepted_total",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Fatalf("Prometheus exposition missing %s", want)
		}
	}
}

// TestEstimatesExperiment smoke-tests the report: every prediction-capable
// scheduler cell produces kernel pairs, and ORACLE's error is ~0.
func TestEstimatesExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell sweep")
	}
	r := NewRunner()
	r.JobCount = 32
	rep, err := RunExperiment(context.Background(), r, "estimates")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 1 {
		t.Fatalf("tables = %d, want 1", len(rep.Tables))
	}
	rows := rep.Tables[0].Rows
	if len(rows) != len(estimateSchedulers)*len(estimateBenchmarks) {
		t.Fatalf("rows = %d, want %d", len(rows), len(estimateSchedulers)*len(estimateBenchmarks))
	}
	var sb strings.Builder
	rep.Render(&sb)
	if !strings.Contains(sb.String(), "ORACLE") {
		t.Fatal("report missing ORACLE row")
	}
}
