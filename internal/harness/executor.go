package harness

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// Pool executes independent simulation tasks on a bounded worker pool. The
// zero value is unusable; build one with NewPool. Pools are cheap values —
// they hold no goroutines between Do calls — so every sweep spins its
// workers up and tears them down, which is what makes cancellation
// leak-free: a worker always exits once the index channel drains.
type Pool struct {
	workers int
}

// NewPool returns a pool of the given width. Zero or negative means
// GOMAXPROCS; width 1 degenerates to serial in-caller execution, the
// reference path parallel runs must match byte for byte.
func NewPool(workers int) Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return Pool{workers: workers}
}

// Workers returns the pool width.
func (p Pool) Workers() int { return p.workers }

// Do runs task(ctx, i) for every i in [0, n) across the pool and waits for
// all of them. Tasks must be independent: they may run in any order and
// concurrently, so each task writes only to its own index of any shared
// result slice. The first task error cancels the context handed to the
// remaining tasks; Do then returns the lowest-index non-cancellation error
// (the root cause rather than collateral context noise), falling back to
// the first cancellation error when that is all there is.
func (p Pool) Do(ctx context.Context, n int, task func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if p.workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := task(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	idx := make(chan int, n)
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)

	workers := p.workers
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := cctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				if err := task(cctx, i); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
	wg.Wait()

	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return first
}
