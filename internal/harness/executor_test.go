package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"laxgpu/internal/metrics"
)

func TestPoolWidth(t *testing.T) {
	if got := NewPool(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("width 0 resolved to %d, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	if got := NewPool(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("negative width resolved to %d", got)
	}
	if got := NewPool(5).Workers(); got != 5 {
		t.Fatalf("width 5 resolved to %d", got)
	}
}

func TestPoolDoRunsEveryTask(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		var ran [100]int32
		err := NewPool(workers).Do(context.Background(), len(ran), func(_ context.Context, i int) error {
			atomic.AddInt32(&ran[i], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, n := range ran {
			if n != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, n)
			}
		}
	}
	// Zero tasks is a no-op.
	if err := NewPool(4).Do(context.Background(), 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPoolDoReportsLowestIndexError(t *testing.T) {
	boom3 := errors.New("task 3 failed")
	boom7 := errors.New("task 7 failed")
	err := NewPool(4).Do(context.Background(), 10, func(_ context.Context, i int) error {
		switch i {
		case 3:
			return boom3
		case 7:
			return boom7
		}
		return nil
	})
	if !errors.Is(err, boom3) {
		t.Fatalf("err = %v, want the lowest-index failure", err)
	}
}

func TestPoolDoCancelsRemainingOnError(t *testing.T) {
	var started int32
	err := NewPool(2).Do(context.Background(), 64, func(ctx context.Context, i int) error {
		atomic.AddInt32(&started, 1)
		if i == 0 {
			return fmt.Errorf("early failure")
		}
		// Later tasks observe the derived context cancelled.
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
			return nil
		}
	})
	if err == nil || err.Error() != "early failure" {
		t.Fatalf("err = %v", err)
	}
	if n := atomic.LoadInt32(&started); n == 64 {
		t.Log("all tasks started before cancellation propagated (possible on a fast machine, not a failure)")
	}
}

func TestPoolDoContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	before := runtime.NumGoroutine()
	err := NewPool(4).Do(ctx, 200, func(ctx context.Context, i int) error {
		once.Do(cancel)
		return ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Workers must drain: no goroutine leak after Do returns.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

func TestPoolSerialPathChecksContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	err := NewPool(1).Do(ctx, 10, func(_ context.Context, i int) error {
		ran++
		if i == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran != 3 {
		t.Fatalf("serial path ran %d tasks after cancellation at task 2", ran)
	}
}

func TestRunCacheSingleflight(t *testing.T) {
	c := newRunCache()
	k := runKey{"LAX", "LSTM", 0}
	var computes int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.do(k, func() (s metrics.Summary, err error) {
				atomic.AddInt32(&computes, 1)
				time.Sleep(5 * time.Millisecond)
				return s, nil
			})
		}()
	}
	wg.Wait()
	if n := atomic.LoadInt32(&computes); n != 1 {
		t.Fatalf("cell computed %d times, want 1 (singleflight)", n)
	}
	if !c.cached(k) {
		t.Fatal("completed run not cached")
	}
}

func TestRunCacheDoesNotCacheErrors(t *testing.T) {
	c := newRunCache()
	k := runKey{"LAX", "LSTM", 0}
	boom := errors.New("cancelled mid-cell")
	if _, err := c.do(k, func() (s metrics.Summary, err error) { return s, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.cached(k) {
		t.Fatal("failed run poisoned the cache")
	}
	// A later attempt recomputes and succeeds.
	ran := false
	if _, err := c.do(k, func() (s metrics.Summary, err error) { ran = true; return s, nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("retry did not recompute after an error")
	}
	if !c.cached(k) {
		t.Fatal("successful retry not cached")
	}
}
