package harness

import (
	"context"
	"fmt"

	"laxgpu/internal/gpu"
	"laxgpu/internal/metrics"
	"laxgpu/internal/sched"
	"laxgpu/internal/workload"
)

// mustSweep submits the cells to the runner's worker pool and panics on
// error; RunExperiment converts cancellation panics back into errors.
// Experiments call it first with every cell they will read, then assemble
// their tables from the warm cache in deterministic order.
func mustSweep(ctx context.Context, r *Runner, cells []Cell) {
	if err := r.Sweep(ctx, cells); err != nil {
		panic(err)
	}
}

// mustDo fans n independent tasks out over the runner's pool, panicking on
// error — the submission path for experiment work that is not a plain
// (scheduler, benchmark, rate) cell.
func mustDo(ctx context.Context, r *Runner, n int, task func(ctx context.Context, i int) error) {
	if err := r.pool().Do(ctx, n, task); err != nil {
		panic(err)
	}
}

// Table1 reproduces the kernel characterization: for every kernel, the
// published isolated execution time versus the calibrated model's, plus the
// occupancy inputs.
func Table1(ctx context.Context, r *Runner) *Report {
	t := &Table{
		Title:  "Kernels in latency-sensitive benchmarks (paper vs model)",
		Header: []string{"Kernel", "Threads", "WGs", "CtxKB", "Paper exec", "Model exec", "Err%"},
	}
	for _, row := range workload.Table1Reference() {
		k := r.Lib.Kernel(row.Name)
		got := gpu.IsolatedKernelTime(r.Cfg.GPU, k)
		errPct := 100 * (float64(got) - float64(row.ExecTime)) / float64(row.ExecTime)
		t.AddRow(row.Name, fint(row.TotalThreads), fint(k.NumWGs), f1(row.ContextKB),
			row.ExecTime.String(), got.String(), f2(errPct))
	}
	return &Report{
		ID:     "Table1",
		Title:  "Summary of kernels in latency-sensitive benchmarks",
		Tables: []*Table{t},
		Notes: []string{
			"Model exec is the kernel run alone on the Table 2 device; calibration holds it within 2% of the published time.",
		},
	}
}

// Figure1 reproduces the many-kernel vs few-kernel characterization:
// kernels per job, deadline, and mean per-kernel duration per benchmark.
func Figure1(ctx context.Context, r *Runner) *Report {
	t := &Table{
		Title:  "Characteristics of many-kernel vs few-kernel jobs",
		Header: []string{"Benchmark", "Class", "Deadline", "Kernels/job(mean)", "WGs/job(mean)", "Mean kernel time", "Serial job time"},
	}
	for _, b := range workload.Benchmarks() {
		if err := ctx.Err(); err != nil {
			panic(err)
		}
		set, err := r.JobSet(b.Name, workload.HighRate)
		if err != nil {
			panic(err)
		}
		var kernels, wgs int
		var serial float64
		for _, j := range set.Jobs {
			kernels += len(j.Kernels)
			wgs += j.TotalWGs()
			serial += float64(j.SerialTime(r.Cfg.GPU))
		}
		n := float64(set.Len())
		meanKernels := float64(kernels) / n
		meanSerial := serial / n
		class := "few-kernel"
		if b.ManyKernel {
			class = "many-kernel"
		}
		t.AddRow(b.Name, class, b.Deadline.String(),
			f1(meanKernels), f1(float64(wgs)/n),
			fmt.Sprintf("%.1fµs", meanSerial/meanKernels/1000),
			fmt.Sprintf("%.1fµs", meanSerial/1000))
	}
	return &Report{
		ID:     "Figure1",
		Title:  "Many-kernel jobs have ms deadlines and many short kernels; few-kernel jobs have tighter deadlines",
		Tables: []*Table{t},
		Notes: []string{
			"Per-kernel scheduling decisions must land at microsecond scale in both classes (paper §1).",
		},
	}
}

// figure6Schedulers is the comparison set of Figure 6 (CPU-side schedulers
// plus the RR baseline and LAX).
var figure6Schedulers = []string{"RR", "BAT", "BAY", "PRO", "LAX"}

// figure6Rates is Figure 6's presentation order.
var figure6Rates = []workload.Rate{workload.HighRate, workload.MediumRate, workload.LowRate}

// Figure6 reproduces jobs-completed-by-deadline for CPU-side schedulers,
// RR, and LAX across the three arrival rates, normalized to RR. All three
// rates' grids are submitted as one sweep so the pool sees the full cell
// population at once.
func Figure6(ctx context.Context, r *Runner) *Report {
	var cells []Cell
	for _, rate := range figure6Rates {
		cells = append(cells, GridCells(figure6Schedulers, rate)...)
	}
	mustSweep(ctx, r, cells)
	rep := &Report{
		ID:    "Figure6",
		Title: "Jobs completed by their deadlines (CPU-side schedulers, RR, LAX), normalized to RR",
	}
	for _, rate := range figure6Rates {
		rep.Tables = append(rep.Tables, deadlineTable(r, figure6Schedulers, rate))
	}
	rep.Notes = append(rep.Notes,
		"Expected shape: BAT < RR; BAY completes 0 IPV6 jobs (50µs model cost > 40µs deadline); LAX highest geomean at every rate, gap widening with contention.")
	return rep
}

// figure7Schedulers is Figure 7's comparison set (schedulers that extend
// the command processor), with RR as the normalization baseline.
var figure7Schedulers = []string{"RR", "MLFQ", "EDF", "SJF", "SRF", "LJF", "PREMA", "LAX"}

// Figure7 reproduces jobs-completed-by-deadline for CP-extending schedulers
// at the high arrival rate, normalized to RR.
func Figure7(ctx context.Context, r *Runner) *Report {
	mustSweep(ctx, r, GridCells(figure7Schedulers, workload.HighRate))
	return &Report{
		ID:     "Figure7",
		Title:  "Jobs completed by deadline at the high arrival rate (CP schedulers), normalized to RR",
		Tables: []*Table{deadlineTable(r, figure7Schedulers, workload.HighRate)},
		Notes: []string{
			"Expected shape: SJF/SRF are the best non-LAX CP schedulers; MLFQ < RR; LAX beats all (1.7x over SJF/SRF in the paper).",
		},
	}
}

// Figure8 compares the three laxity-aware implementations, normalized to
// LAX-SW.
func Figure8(ctx context.Context, r *Runner) *Report {
	mustSweep(ctx, r, GridCells(append([]string{"LAX-SW"}, sched.LaxityVariants...), workload.HighRate))
	t := &Table{
		Title:  "Jobs completed by deadline (high rate), normalized to LAX-SW",
		Header: append([]string{"Scheduler"}, append(workload.BenchmarkNames(), "GMEAN")...),
	}
	base := map[string]float64{}
	for _, b := range workload.BenchmarkNames() {
		base[b] = float64(r.MustRun("LAX-SW", b, workload.HighRate).MetDeadline)
	}
	for _, s := range sched.LaxityVariants {
		row := []string{s}
		var ratios []float64
		for _, b := range workload.BenchmarkNames() {
			met := float64(r.MustRun(s, b, workload.HighRate).MetDeadline)
			ratio := metrics.Ratio(met, base[b])
			ratios = append(ratios, ratio)
			row = append(row, f2(ratio))
		}
		row = append(row, f2(metrics.Geomean(ratios)))
		t.AddRow(row...)
	}
	return &Report{
		ID:     "Figure8",
		Title:  "Is CPU-side LAX scheduling sufficient?",
		Tables: []*Table{t},
		Notes: []string{
			"Expected shape: LAX-SW < LAX-CPU < LAX (paper: 1x / 1.5x / 1.7x). API-level dynamic priorities recover most of the benefit; CP integration recovers the rest.",
		},
	}
}

// Figure9 reproduces scheduling effectiveness: the percentage of completed
// WGs belonging to jobs that met their deadline, at the high arrival rate.
func Figure9(ctx context.Context, r *Runner) *Report {
	scheds := sched.Table5Schedulers
	mustSweep(ctx, r, GridCells(scheds, workload.HighRate))
	t := &Table{
		Title:  "% of completed WGs in deadline-meeting jobs (high rate)",
		Header: append([]string{"Scheduler"}, append(workload.BenchmarkNames(), "GMEAN")...),
	}
	for _, s := range scheds {
		row := []string{s}
		var fracs []float64
		for _, b := range workload.BenchmarkNames() {
			sum := r.MustRun(s, b, workload.HighRate)
			fracs = append(fracs, sum.UsefulWorkFrac)
			row = append(row, f1(100*sum.UsefulWorkFrac))
		}
		g := metrics.Geomean(fracs)
		row = append(row, f1(100*g))
		t.AddRow(row...)
	}
	return &Report{
		ID:     "Figure9",
		Title:  "Scheduling effectiveness (useful work)",
		Tables: []*Table{t},
		Notes: []string{
			"Expected shape: deadline-blind RR/BAT waste the most work; LAX's admission control wastes the least (22% in the paper).",
		},
	}
}

// Table5 reproduces throughput (a), 99-percentile latency (b), and energy
// per successful job (c) for all schedulers at the high arrival rate.
func Table5(ctx context.Context, r *Runner) *Report {
	scheds := sched.Table5Schedulers
	mustSweep(ctx, r, GridCells(scheds, workload.HighRate))
	mk := func(title string, cell func(metrics.Summary) string) *Table {
		t := &Table{Title: title, Header: append([]string{"Benchmark"}, scheds...)}
		for _, b := range workload.BenchmarkNames() {
			row := []string{b}
			for _, s := range scheds {
				row = append(row, cell(r.MustRun(s, b, workload.HighRate)))
			}
			t.AddRow(row...)
		}
		return t
	}
	tput := mk("(a) Successful job throughput (successful jobs/s)", func(s metrics.Summary) string {
		return fint(int(s.ThroughputJobsPerSec))
	})
	lat := mk("(b) 99-percentile job latency (ms)", func(s metrics.Summary) string {
		return f3(s.P99LatencyMs)
	})
	energy := mk("(c) Energy per successful job (mJ)", func(s metrics.Summary) string {
		if s.MetDeadline == 0 {
			return "inf"
		}
		return f2(s.EnergyPerSuccessMJ)
	})
	return &Report{
		ID:     "Table5",
		Title:  "Job throughput, latency, and energy (high arrival rate)",
		Tables: []*Table{tput, lat, energy},
		Notes: []string{
			"Expected shape: LAX has the best or near-best successful-job throughput and tail latency; BAY/PRO are conservative (good latency, fewer completions).",
		},
	}
}

// deadlineTable builds one jobs-met table normalized to RR for the given
// schedulers and rate. Callers must have swept the cells already; every
// read here is a cache hit, which is what keeps the rendered bytes
// independent of pool width.
func deadlineTable(r *Runner, scheds []string, rate workload.Rate) *Table {
	t := &Table{
		Title:  fmt.Sprintf("%s job arrival rate (normalized jobs meeting deadline; RR = 1.0)", rate),
		Header: append([]string{"Scheduler"}, append(workload.BenchmarkNames(), "GMEAN")...),
	}
	base := map[string]float64{}
	for _, b := range workload.BenchmarkNames() {
		base[b] = float64(r.MustRun("RR", b, rate).MetDeadline)
	}
	for _, s := range scheds {
		row := []string{s}
		var ratios []float64
		for _, b := range workload.BenchmarkNames() {
			met := float64(r.MustRun(s, b, rate).MetDeadline)
			ratio := metrics.Ratio(met, base[b])
			ratios = append(ratios, ratio)
			row = append(row, f2(ratio))
		}
		row = append(row, f2(metrics.Geomean(ratios)))
		t.AddRow(row...)
	}
	return t
}

// DeadlineCounts returns the raw jobs-met counts (not normalized) for a
// scheduler set — used by tests asserting the paper's ordering claims.
func DeadlineCounts(r *Runner, scheds []string, rate workload.Rate) map[string]int {
	out := make(map[string]int, len(scheds))
	for _, s := range scheds {
		total := 0
		for _, b := range workload.BenchmarkNames() {
			total += r.MustRun(s, b, rate).MetDeadline
		}
		out[s] = total
	}
	return out
}
