package harness

import (
	"context"
	"fmt"

	"laxgpu/internal/metrics"
	"laxgpu/internal/workload"
)

// faultSweepSpecs are the fault intensities the sweep subjects the system
// to, from a rare transient hang up to a compound failure with permanent
// CU retirement. Each is run twice — recovery off, recovery on — over the
// identical trace and fault draws.
var faultSweepSpecs = []string{
	"hang=0.02",
	"hang=0.10",
	"abort=0.10",
	"slow=0.15x6",
	"hang=0.05,abort=0.05,slow=0.05x6",
	"hang=0.05,retire=4@2ms",
}

// faultRunner clones the base runner's configuration with a fault spec
// attached. Fresh runner, fresh cache: the memoization key does not include
// the spec.
func faultRunner(base *Runner, spec string) *Runner {
	r := NewRunner()
	r.Cfg = base.Cfg
	r.JobCount = base.JobCount
	r.Seed = base.Seed
	r.Faults = spec
	return r
}

// FaultSweep measures what the recovery machinery buys: for each fault
// intensity the same trace and fault draws run with recovery disabled
// (hangs strand jobs, aborts cancel them) and enabled (watchdog kill +
// retry + CPU fallback, admission tracking retired capacity), reporting
// deadline-met counts and the recovery counters. This is an extension
// beyond the paper's evaluation: the paper assumes a fault-free device.
// All 13 runs (6 specs x {off,on} + the healthy baseline) are independent
// pooled tasks, each on its own single-cell fault runner.
func FaultSweep(ctx context.Context, r *Runner) *Report {
	const bench = "LSTM"
	rate := workload.MediumRate
	t := &Table{
		Title: fmt.Sprintf("LAX on %s (%s rate): deadline-met jobs of %d under injected faults",
			bench, rate, r.JobCount),
		Header: []string{"Faults", "Met (rec off)", "Met (rec on)",
			"Kills", "Aborts", "Retries", "Fallbacks", "RetiredCUs"},
	}
	n := len(faultSweepSpecs)
	offs := make([]metrics.Summary, n)
	ons := make([]metrics.Summary, n)
	var healthy metrics.Summary
	mustDo(ctx, r, 2*n+1, func(ctx context.Context, i int) error {
		var fr *Runner
		switch {
		case i == 2*n:
			fr = faultRunner(r, "")
		case i%2 == 0:
			fr = faultRunner(r, faultSweepSpecs[i/2]+",recover=off")
		default:
			fr = faultRunner(r, faultSweepSpecs[i/2]+",recover=on")
		}
		sum, err := fr.RunContext(ctx, "LAX", bench, rate)
		if err != nil {
			return err
		}
		switch {
		case i == 2*n:
			healthy = sum
		case i%2 == 0:
			offs[i/2] = sum
		default:
			ons[i/2] = sum
		}
		return nil
	})
	totOff, totOn := 0, 0
	for i, spec := range faultSweepSpecs {
		off, on := offs[i], ons[i]
		totOff += off.MetDeadline
		totOn += on.MetDeadline
		t.AddRow(spec, fint(off.MetDeadline), fint(on.MetDeadline),
			fint(on.WatchdogKills), fint(on.Aborts), fint(on.Retries),
			fint(on.Fallbacks), fint(on.RetiredCUs))
	}
	return &Report{
		ID:     "faults",
		Title:  "Fault injection and degraded-mode recovery (extension beyond the paper's figures)",
		Tables: []*Table{t},
		Notes: []string{
			fmt.Sprintf("Healthy baseline (no faults): %d/%d met.", healthy.MetDeadline, healthy.TotalJobs),
			fmt.Sprintf("Across the sweep recovery meets %d deadlines vs %d undefended (a hang-struck job without recovery is stranded forever).", totOn, totOff),
			"Both columns replay the identical trace and per-attempt fault draws; only the CP's watchdog/retry/fallback machinery differs.",
			"Counter columns are from the recovery-on run; with recovery off the CP never kills, retries, or falls back.",
		},
	}
}
