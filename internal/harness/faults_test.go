package harness

import (
	"testing"

	"laxgpu/internal/workload"
)

// faultTestRunner is smallRunner with a fault spec attached.
func faultTestRunner(spec string) *Runner {
	r := smallRunner()
	r.Faults = spec
	return r
}

func TestFaultRecoveryBeatsNoRecovery(t *testing.T) {
	// Hang-heavy injection: with recovery off every hung kernel strands its
	// job forever; with recovery on the watchdog kills and retries it, so
	// strictly more jobs must meet their deadline over the identical trace
	// and fault draws.
	const spec = "hang=0.15,abort=0.1"
	off := faultTestRunner(spec+",recover=off").MustRun("LAX", "LSTM", workload.MediumRate)
	on := faultTestRunner(spec+",recover=on").MustRun("LAX", "LSTM", workload.MediumRate)
	if on.MetDeadline <= off.MetDeadline {
		t.Fatalf("recovery on met %d <= recovery off met %d", on.MetDeadline, off.MetDeadline)
	}
	if on.WatchdogKills == 0 || on.Retries == 0 {
		t.Errorf("recovery-on run shows no watchdog activity: kills=%d retries=%d",
			on.WatchdogKills, on.Retries)
	}
	if off.WatchdogKills != 0 || off.Retries != 0 || off.Fallbacks != 0 {
		t.Errorf("recovery-off run has recovery counters: kills=%d retries=%d fallbacks=%d",
			off.WatchdogKills, off.Retries, off.Fallbacks)
	}
}

func TestFaultRunsDeterministic(t *testing.T) {
	const spec = "hang=0.1,slow=0.1x6"
	a := faultTestRunner(spec).MustRun("LAX", "LSTM", workload.MediumRate)
	b := faultTestRunner(spec).MustRun("LAX", "LSTM", workload.MediumRate)
	if a != b {
		t.Fatalf("identical fault runs differ:\n%+v\n%+v", a, b)
	}
}

func TestRunSystemRejectsBadFaultSpec(t *testing.T) {
	r := faultTestRunner("hang=2")
	if _, err := r.Run("LAX", "LSTM", workload.MediumRate); err == nil {
		t.Fatal("invalid fault spec accepted")
	}
}

func TestFaultPlanSharedAcrossSchedulers(t *testing.T) {
	// The plan seed must not depend on the scheduler, so paired comparisons
	// see identical fault draws: the retirement schedule (purely
	// spec-driven) shows up identically for both.
	r := faultTestRunner("retire=2@1ms")
	for _, s := range []string{"RR", "LAX"} {
		sum := r.MustRun(s, "LSTM", workload.LowRate)
		if sum.RetiredCUs != 2 {
			t.Errorf("%s: retired CUs %d, want 2", s, sum.RetiredCUs)
		}
	}
}
