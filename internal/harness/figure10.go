package harness

import (
	"context"
	"fmt"
	"math"

	"laxgpu/internal/cp"
	"laxgpu/internal/sched"
	"laxgpu/internal/sim"
	"laxgpu/internal/workload"
)

// Figure10Trace is the reproduction of one Figure 10 panel: LAX's predicted
// execution time and priority for a sample job over that job's lifetime,
// plus the job's actual times for comparison.
type Figure10Trace struct {
	Benchmark string
	JobID     int
	Points    []sched.TracePoint

	SubmitTime sim.Time
	FinishTime sim.Time
	Deadline   sim.Time // relative
	Met        bool

	// MeanAbsErrPct is the mean absolute error of LAX's predicted total
	// completion time (durTime + predictedRemaining at each tick) versus
	// the job's actual completion time. The paper reports 8%.
	MeanAbsErrPct float64
}

// RunFigure10 traces LAX's prediction for a sample job of the benchmark at
// the high arrival rate. Like the paper's plots, the sample is a job LAX
// admitted and completed: a scout run picks the longest-lived admitted
// steady-state job (admission control rejects much of the offered load at
// this rate, so a fixed ID could land on a rejected job), then a second run
// traces it.
func RunFigure10(ctx context.Context, r *Runner, bench string) (Figure10Trace, error) {
	set, err := r.JobSet(bench, workload.HighRate)
	if err != nil {
		return Figure10Trace{}, err
	}

	scout := cp.NewSystem(r.Cfg, set, sched.NewLAX())
	if err := scout.RunContext(ctx); err != nil {
		return Figure10Trace{}, err
	}
	sample := -1
	var best sim.Time
	for _, jr := range scout.Jobs() {
		// Prefer mid-trace (steady-state) jobs that met their deadline and
		// lived long enough to cross several 100 µs ticks.
		if jr.Job.ID < len(scout.Jobs())/4 || !jr.MetDeadline() {
			continue
		}
		if life := jr.FinishTime - jr.SubmitTime; life > best {
			best = life
			sample = jr.Job.ID
		}
	}
	if sample < 0 {
		// Fall back to any completed job.
		for _, jr := range scout.Jobs() {
			if jr.Done() {
				sample = jr.Job.ID
				break
			}
		}
	}

	pol := sched.NewLAX()
	pol.EnableTrace(sample)
	sys := cp.NewSystem(r.Cfg, set, pol)
	if err := sys.RunContext(ctx); err != nil {
		return Figure10Trace{}, err
	}

	j := sys.Job(sample)
	tr := Figure10Trace{
		Benchmark:  bench,
		JobID:      sample,
		Points:     pol.TracePoints(),
		SubmitTime: j.SubmitTime,
		FinishTime: j.FinishTime,
		Deadline:   j.Job.Deadline,
		Met:        j.MetDeadline(),
	}
	if j.Done() && len(tr.Points) > 0 {
		actual := float64(j.FinishTime - j.SubmitTime)
		var sumErr float64
		n := 0
		for _, p := range tr.Points {
			pred := float64(p.DurTime + p.PredictedRem)
			if pred <= 0 {
				continue
			}
			sumErr += math.Abs(pred-actual) / actual
			n++
		}
		if n > 0 {
			tr.MeanAbsErrPct = 100 * sumErr / float64(n)
		}
	}
	return tr, nil
}

// figure10Benchmarks are the four RNN panels of the figure.
var figure10Benchmarks = []string{"LSTM", "GRU", "VAN", "HYBRID"}

// Figure10 renders the prediction/priority-over-time traces for the four
// RNN benchmarks. Each benchmark's scout+trace pair is one task on the
// worker pool; panels assemble in paper order from the indexed results.
func Figure10(ctx context.Context, r *Runner) *Report {
	rep := &Report{
		ID:    "Figure10",
		Title: "LAX's job time and priority prediction over a sample job's lifetime",
	}
	// Materialize the shared traces before fanning out.
	for _, bench := range figure10Benchmarks {
		if _, err := r.JobSet(bench, workload.HighRate); err != nil {
			panic(err)
		}
	}
	traces := make([]Figure10Trace, len(figure10Benchmarks))
	mustDo(ctx, r, len(figure10Benchmarks), func(ctx context.Context, i int) error {
		tr, err := RunFigure10(ctx, r, figure10Benchmarks[i])
		if err != nil {
			return err
		}
		traces[i] = tr
		return nil
	})
	for _, tr := range traces {
		t := &Table{
			Title:  fmt.Sprintf("%s sample job %d (deadline %v, met=%v, pred MAE %.1f%%)", tr.Benchmark, tr.JobID, tr.Deadline, tr.Met, tr.MeanAbsErrPct),
			Header: []string{"durTime", "predicted total", "actual total", "priority", "state"},
		}
		actual := tr.FinishTime - tr.SubmitTime
		// Subsample to at most 12 rows to keep the report readable.
		step := len(tr.Points)/12 + 1
		for i := 0; i < len(tr.Points); i += step {
			p := tr.Points[i]
			prio := "INF"
			if p.Priority != math.MaxInt64 {
				prio = sim.Time(p.Priority).String()
			}
			t.AddRow(p.DurTime.String(), (p.DurTime + p.PredictedRem).String(),
				actual.String(), prio, p.State.String())
		}
		rep.Tables = append(rep.Tables, t)
	}
	rep.Notes = append(rep.Notes,
		"Expected shape: the predicted total tracks the actual completion time (paper MAE 8%), and priority decreases (more urgent) as laxity shrinks toward the deadline.")
	return rep
}
