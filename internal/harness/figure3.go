package harness

import (
	"context"

	"laxgpu/internal/cp"
	"laxgpu/internal/gpu"
	"laxgpu/internal/sched"
	"laxgpu/internal/sim"
	"laxgpu/internal/workload"
)

// Figure3Result carries the worked example's outcome for tests. The met
// counts cover the three primary jobs of the paper's figure (the background
// arrivals only exist to keep RR's cycle busy).
type Figure3Result struct {
	RRMet  int
	LAXMet int
	RR     []*cp.JobRun
	LAX    []*cp.JobRun
}

// RunFigure3 executes the paper's Figure 3 worked example: three jobs on a
// GPU that can execute two kernels simultaneously. J1 and J2 arrive first;
// J3 arrives slightly later and is the longest. Deadline-blind RR services
// J1/J2's second kernels before J3, so J3 misses; LAX sees J3's small
// laxity and prioritizes it, and all three jobs meet their deadlines.
func RunFigure3(ctx context.Context) Figure3Result {
	// A device with two single-WG kernel slots: 2 CUs, each kernel one
	// CU-filling WG.
	cfg := cp.DefaultSystemConfig()
	cfg.GPU.NumCUs = 2

	mkKernel := func(name string, dur sim.Time) *gpu.KernelDesc {
		return &gpu.KernelDesc{
			Name: name, NumWGs: 1, ThreadsPerWG: cfg.GPU.ThreadsPerCU,
			BaseWGTime: dur, MemIntensity: 0, InstPerThread: 100,
		}
	}
	short := mkKernel("shortK", 200*sim.Microsecond)
	long := mkKernel("longK", 400*sim.Microsecond)

	// J1 and J2 arrive first with short kernel chains; J3 arrives slightly
	// later, is the longest, and has the tightest absolute deadline —
	// the Figure 3 setup. As in the paper's datacenter setting, further
	// short jobs keep arriving while J3 runs: deadline-blind RR cycles
	// those newcomers' kernels through the slots between J3's two kernels,
	// so J3 misses; LAX keeps J3's near-zero laxity at the highest
	// priority and it finishes in time.
	build := func() *workload.JobSet {
		set := &workload.JobSet{
			Benchmark: "figure3",
			Jobs: []*workload.Job{
				{ID: 0, Benchmark: "figure3", Arrival: 0,
					Deadline: 4 * sim.Millisecond, Kernels: []*gpu.KernelDesc{short, short}},
				{ID: 1, Benchmark: "figure3", Arrival: 0,
					Deadline: 4 * sim.Millisecond, Kernels: []*gpu.KernelDesc{short, short}},
				{ID: 2, Benchmark: "figure3", Arrival: 100 * sim.Microsecond,
					Deadline: 1300 * sim.Microsecond, Kernels: []*gpu.KernelDesc{long, long}},
			},
		}
		for i := 0; i < 12; i++ {
			set.Jobs = append(set.Jobs, &workload.Job{
				ID: 3 + i, Benchmark: "figure3",
				Arrival:  sim.Time(150+50*i) * sim.Microsecond,
				Deadline: 4 * sim.Millisecond,
				Kernels:  []*gpu.KernelDesc{short},
			})
		}
		return set
	}

	res := Figure3Result{}

	rr := sched.NewRR()
	rrSys := cp.NewSystem(cfg, build(), rr)
	if err := rrSys.RunContext(ctx); err != nil {
		panic(err)
	}
	res.RR = rrSys.Jobs()
	for _, j := range res.RR[:3] {
		if j.MetDeadline() {
			res.RRMet++
		}
	}

	lax := sched.NewLAX()
	laxSys := cp.NewSystem(cfg, build(), lax)
	// Seed the Kernel Profiling Table with the device-aggregate rates the
	// example assumes ("with reasonably accurate execution time estimates",
	// §2.2). Rates are device-aggregate (as the live profiler would
	// measure them): two slots complete shortK WGs at 2 per 200µs and
	// longK WGs at 2 per 400µs.
	lax.ProfilingTable().ObserveRate("shortK", 2.0/float64(200*sim.Microsecond))
	lax.ProfilingTable().ObserveRate("longK", 2.0/float64(400*sim.Microsecond))
	if err := laxSys.RunContext(ctx); err != nil {
		panic(err)
	}
	res.LAX = laxSys.Jobs()
	for _, j := range res.LAX[:3] {
		if j.MetDeadline() {
			res.LAXMet++
		}
	}
	return res
}

// Figure3 renders the worked example.
func Figure3(ctx context.Context) *Report {
	res := RunFigure3(ctx)
	t := &Table{
		Title:  "Primary jobs, two concurrent kernel slots (12 further short jobs keep arriving)",
		Header: []string{"Job", "Arrival", "Abs deadline", "RR finish", "RR met", "LAX finish", "LAX met"},
	}
	for i := range res.RR[:3] {
		rj, lj := res.RR[i], res.LAX[i]
		t.AddRow(
			rj.String()[:4],
			rj.Job.Arrival.String(),
			rj.Job.AbsoluteDeadline().String(),
			rj.FinishTime.String(), boolMark(rj.MetDeadline()),
			lj.FinishTime.String(), boolMark(lj.MetDeadline()),
		)
	}
	return &Report{
		ID:     "Figure3",
		Title:  "Round Robin vs laxity-aware scheduling worked example",
		Tables: []*Table{t},
		Notes: []string{
			"RR is deadline-blind and services the earlier-arrived jobs' second kernels before the long job J3, which misses.",
			"LAX computes J3's laxity as the smallest and prioritizes it; all three jobs meet their deadlines.",
		},
	}
}

func boolMark(b bool) string {
	if b {
		return "yes"
	}
	return "MISS"
}
