package harness

import (
	"context"
	"fmt"

	"laxgpu/internal/cp"
	"laxgpu/internal/gpu"
	"laxgpu/internal/metrics"
	"laxgpu/internal/sched"
	"laxgpu/internal/workload"
)

// figure4BatchSizes are the batch sizes swept (the paper sweeps 1..128; we
// keep the endpoints and a midpoint).
var figure4BatchSizes = []int{1, 32, 128}

// BatchJobSet transforms a per-request trace into a batched trace: jobs are
// grouped B at a time (in arrival order); the batch launches when its last
// member arrives ("we add padding and additional waiting time for the
// arrival of all jobs in a batch", §3.3), and each of its kernels carries
// B× the workgroups. The returned member index maps batch job ID → member
// arrival times, so response time is measured per original request.
func BatchJobSet(set *workload.JobSet, batch int) (*workload.JobSet, [][]int64) {
	if batch <= 1 {
		members := make([][]int64, len(set.Jobs))
		for i, j := range set.Jobs {
			members[i] = []int64{int64(j.Arrival)}
		}
		return set, members
	}
	out := &workload.JobSet{Benchmark: set.Benchmark, Rate: set.Rate, Seed: set.Seed}
	var members [][]int64
	descCache := map[*gpu.KernelDesc]*gpu.KernelDesc{}
	for start := 0; start < len(set.Jobs); start += batch {
		end := start + batch
		if end > len(set.Jobs) {
			end = len(set.Jobs)
		}
		group := set.Jobs[start:end]
		last := group[len(group)-1]
		// The batched job reuses the *longest* member's kernel chain with
		// WG counts scaled by the group size (jobs in one batch run the
		// same model; sequence lengths are padded to the longest, §3.3).
		proto := group[0]
		for _, j := range group {
			if len(j.Kernels) > len(proto.Kernels) {
				proto = j
			}
		}
		kernels := make([]*gpu.KernelDesc, len(proto.Kernels))
		for i, k := range proto.Kernels {
			b, ok := descCache[k]
			if !ok {
				clone := *k
				clone.Name = fmt.Sprintf("%s@b%d", k.Name, batch)
				clone.NumWGs = k.NumWGs * len(group)
				b = &clone
				descCache[k] = b
			}
			kernels[i] = b
		}
		arrivals := make([]int64, len(group))
		for i, j := range group {
			arrivals[i] = int64(j.Arrival)
		}
		out.Jobs = append(out.Jobs, &workload.Job{
			ID:        len(out.Jobs),
			Benchmark: set.Benchmark,
			Arrival:   last.Arrival,
			Deadline:  proto.Deadline,
			Kernels:   kernels,
			SeqLen:    proto.SeqLen,
		})
		members = append(members, arrivals)
	}
	return out, members
}

// batchResponse runs the batched trace under contemporary (RR) scheduling
// and returns the mean response time per original request: batch completion
// minus the request's own arrival.
func batchResponse(ctx context.Context, cfg cp.SystemConfig, set *workload.JobSet, batch int) (float64, error) {
	batched, members := BatchJobSet(set, batch)
	// Batched descriptors can exceed per-batch WG counts but each WG must
	// still fit a CU; that holds since footprints are per-WG.
	sys := cp.NewSystem(cfg, batched, sched.NewRR())
	if err := sys.RunContext(ctx); err != nil {
		return 0, err
	}
	var responses []float64
	for i, j := range sys.Jobs() {
		if !j.Done() {
			continue
		}
		for _, arr := range members[i] {
			responses = append(responses, float64(int64(j.FinishTime)-arr))
		}
	}
	return metrics.Mean(responses), nil
}

// Figure4 reproduces the batching-vs-streams response-time comparison:
// response time normalized to batch size 1, per benchmark. Streams (one
// job per stream, batch 1) is the baseline; large batches pay both the
// wait-for-arrivals padding and the contention of wide launches. Every
// (benchmark, batch size) run is an independent cell submitted to the
// worker pool; the table assembles from the indexed results afterwards.
func Figure4(ctx context.Context, r *Runner) *Report {
	header := []string{"Benchmark"}
	for _, b := range figure4BatchSizes {
		if b == 1 {
			header = append(header, "streams(b=1)")
		} else {
			header = append(header, fmt.Sprintf("batch=%d", b))
		}
	}
	t := &Table{
		Title:  "Mean response time normalized to batch size 1 (medium arrival rate)",
		Header: header,
	}
	benches := workload.BenchmarkNames()
	sets := make([]*workload.JobSet, len(benches))
	for i, bench := range benches {
		set, err := r.JobSet(bench, workload.MediumRate)
		if err != nil {
			panic(err)
		}
		sets[i] = set
	}
	resp := make([][]float64, len(benches))
	for i := range resp {
		resp[i] = make([]float64, len(figure4BatchSizes))
	}
	mustDo(ctx, r, len(benches)*len(figure4BatchSizes), func(ctx context.Context, i int) error {
		b, s := i/len(figure4BatchSizes), i%len(figure4BatchSizes)
		v, err := batchResponse(ctx, r.Cfg, sets[b], figure4BatchSizes[s])
		if err != nil {
			return err
		}
		resp[b][s] = v
		return nil
	})
	for i, bench := range benches {
		base := resp[i][0] // figure4BatchSizes[0] == 1, the streams baseline
		row := []string{bench}
		for s := range figure4BatchSizes {
			row = append(row, f1(metrics.Ratio(resp[i][s], base)))
		}
		t.AddRow(row...)
	}
	return &Report{
		ID:     "Figure4",
		Title:  "Response times with varying batch size vs streams",
		Tables: []*Table{t},
		Notes: []string{
			"Expected shape: response time grows steeply with batch size (20-293x at b=128 in the paper) because requests wait for the whole batch to arrive; streams start work immediately.",
		},
	}
}
