package harness

import (
	"bytes"
	"context"
	"os"
	"strings"
	"testing"

	"laxgpu/internal/metrics"
	"laxgpu/internal/workload"
)

// smallRunner keeps shape tests fast: 48 jobs still produces contention at
// the high rate.
func smallRunner() *Runner {
	r := NewRunner()
	r.JobCount = 48
	return r
}

func TestRunnerMemoizesRuns(t *testing.T) {
	r := smallRunner()
	a, err := r.Run("RR", "IPV6", workload.HighRate)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run("RR", "IPV6", workload.HighRate)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("memoized run differs")
	}
}

func TestRunnerSharesTracesAcrossSchedulers(t *testing.T) {
	r := smallRunner()
	s1, err := r.JobSet("CUCKOO", workload.HighRate)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r.JobSet("CUCKOO", workload.HighRate)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("job set regenerated for same cell")
	}
	s3, err := r.JobSet("CUCKOO", workload.LowRate)
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s1 {
		t.Fatal("different rates share a job set")
	}
}

func TestRunnerErrors(t *testing.T) {
	r := smallRunner()
	if _, err := r.Run("NOPE", "IPV6", workload.HighRate); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	if _, err := r.Run("RR", "NOPE", workload.HighRate); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, _, err := r.RunSystem("RR", "NOPE", workload.HighRate); err == nil {
		t.Fatal("RunSystem with unknown benchmark accepted")
	}
}

func TestRunnerProgressLogging(t *testing.T) {
	r := smallRunner()
	var buf bytes.Buffer
	r.Progress = &buf
	if _, err := r.Run("RR", "STEM", workload.LowRate); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "RR") || !strings.Contains(buf.String(), "STEM") {
		t.Fatalf("progress log missing run info: %q", buf.String())
	}
}

// The paper's Figure 3 contract: LAX saves all three primary jobs, RR loses
// at least the long one.
func TestFigure3Shape(t *testing.T) {
	res := RunFigure3(context.Background())
	if res.LAXMet != 3 {
		t.Fatalf("LAX met %d/3 primary jobs, want 3", res.LAXMet)
	}
	if res.RRMet >= 3 {
		t.Fatalf("RR met %d/3 primary jobs; the worked example requires a miss", res.RRMet)
	}
	// Specifically the long job J3 is the one RR loses.
	if res.RR[2].MetDeadline() {
		t.Fatal("RR met J3's deadline; the example should show it missing")
	}
	if !res.LAX[2].MetDeadline() {
		t.Fatal("LAX missed J3's deadline")
	}
}

func TestFigure3ReportRenders(t *testing.T) {
	rep := Figure3(context.Background())
	var buf bytes.Buffer
	rep.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Figure3", "RR finish", "LAX met", "MISS"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestTable1ReportCalibration(t *testing.T) {
	rep := Table1(context.Background(), NewRunner())
	if len(rep.Tables) != 1 {
		t.Fatal("Table1 should have one table")
	}
	tbl := rep.Tables[0]
	if len(tbl.Rows) != len(workload.Table1Reference()) {
		t.Fatalf("%d rows, want %d", len(tbl.Rows), len(workload.Table1Reference()))
	}
	// Every row's calibration error column must parse as small (|err|<2%).
	for _, row := range tbl.Rows {
		errCol := row[len(row)-1]
		if strings.HasPrefix(errCol, "-") {
			errCol = errCol[1:]
		}
		if errCol > "2" && !strings.HasPrefix(errCol, "0") && !strings.HasPrefix(errCol, "1") && !strings.HasPrefix(errCol, "2.00") {
			t.Errorf("calibration error %s%% for %s exceeds 2%%", row[len(row)-1], row[0])
		}
	}
}

func TestFigure1Characterization(t *testing.T) {
	rep := Figure1(context.Background(), smallRunner())
	tbl := rep.Tables[0]
	if len(tbl.Rows) != 8 {
		t.Fatalf("%d rows, want 8 benchmarks", len(tbl.Rows))
	}
	classes := map[string]string{}
	for _, row := range tbl.Rows {
		classes[row[0]] = row[1]
	}
	if classes["LSTM"] != "many-kernel" || classes["IPV6"] != "few-kernel" {
		t.Fatalf("classification wrong: %v", classes)
	}
}

func TestBatchJobSetGrouping(t *testing.T) {
	r := smallRunner()
	set, err := r.JobSet("STEM", workload.MediumRate)
	if err != nil {
		t.Fatal(err)
	}
	batched, members := BatchJobSet(set, 8)
	if batched.Len() != (set.Len()+7)/8 {
		t.Fatalf("batched length %d, want %d", batched.Len(), (set.Len()+7)/8)
	}
	totalMembers := 0
	for i, arrivals := range members {
		totalMembers += len(arrivals)
		// Batch launches when its last member arrives.
		for _, a := range arrivals {
			if a > int64(batched.Jobs[i].Arrival) {
				t.Fatalf("batch %d launches before member arrival", i)
			}
		}
		// Batched kernels carry the group's combined WGs.
		base := set.Jobs[0].Kernels[0].NumWGs
		if got := batched.Jobs[i].Kernels[0].NumWGs; got != base*len(arrivals) {
			t.Fatalf("batch %d has %d WGs, want %d", i, got, base*len(arrivals))
		}
	}
	if totalMembers != set.Len() {
		t.Fatalf("members cover %d jobs, want %d", totalMembers, set.Len())
	}
	// Batch size 1 passes through untouched.
	same, m1 := BatchJobSet(set, 1)
	if same != set || len(m1) != set.Len() {
		t.Fatal("batch=1 must be the identity")
	}
}

func TestBatchingIncreasesResponseTime(t *testing.T) {
	r := smallRunner()
	set, err := r.JobSet("STEM", workload.MediumRate)
	if err != nil {
		t.Fatal(err)
	}
	single, err := batchResponse(context.Background(), r.Cfg, set, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := batchResponse(context.Background(), r.Cfg, set, 16)
	if err != nil {
		t.Fatal(err)
	}
	if big <= single {
		t.Fatalf("batch=16 response %.0f <= batch=1 response %.0f; batching must add waiting",
			big, single)
	}
}

// The headline shape at reduced scale, using the paper's metric: the
// geometric mean over benchmarks of deadline-met counts normalized to RR.
// LAX must clearly beat the RR baseline and the deadline-blind field.
func TestLAXLeadsAtHighRate(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scheduler sweep")
	}
	r := smallRunner()
	geomeanVsRR := func(s string) float64 {
		var ratios []float64
		for _, b := range workload.BenchmarkNames() {
			rr := float64(r.MustRun("RR", b, workload.HighRate).MetDeadline)
			met := float64(r.MustRun(s, b, workload.HighRate).MetDeadline)
			ratios = append(ratios, metrics.Ratio(met, rr))
		}
		return metrics.Geomean(ratios)
	}
	lax := geomeanVsRR("LAX")
	mlfq := geomeanVsRR("MLFQ")
	t.Logf("geomean vs RR: LAX=%.2f MLFQ=%.2f", lax, mlfq)
	if lax < 1.5 {
		t.Fatalf("LAX geomean vs RR = %.2f, want a clear win (paper: 1.7x-5.0x)", lax)
	}
	if lax <= mlfq {
		t.Fatalf("LAX (%.2f) did not beat MLFQ (%.2f)", lax, mlfq)
	}
}

func TestFigure10TraceQuality(t *testing.T) {
	r := NewRunner() // needs the full 128-job trace (sampled job is #64)
	tr, err := RunFigure10(context.Background(), r, "LSTM")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Points) == 0 {
		t.Skip("sample job rejected in this trace")
	}
	if tr.MeanAbsErrPct <= 0 || tr.MeanAbsErrPct > 60 {
		t.Fatalf("prediction MAE %.1f%% implausible (paper: 8%%)", tr.MeanAbsErrPct)
	}
	for i := 1; i < len(tr.Points); i++ {
		if tr.Points[i].DurTime <= tr.Points[i-1].DurTime {
			t.Fatal("trace durTime not increasing")
		}
	}
}

func TestRunExperimentRegistry(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 17 {
		t.Fatalf("%d experiments, want 17", len(ids))
	}
	for _, id := range ids {
		if Experiments[id] == nil {
			t.Errorf("experiment %s has no generator", id)
		}
	}
	if _, err := RunExperiment(context.Background(), NewRunner(), "figure0"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:  "t",
		Header: []string{"a", "long-header", "c"},
	}
	tbl.AddRow("1", "2", "3")
	tbl.AddRow("wide-cell", "x", "y")
	var buf bytes.Buffer
	tbl.Render(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("rendered %d lines, want 5:\n%s", len(lines), buf.String())
	}
	// Columns align: the second column starts at the same offset everywhere.
	idx := strings.Index(lines[1], "long-header")
	if strings.Index(lines[3], "2") != idx {
		t.Errorf("columns misaligned:\n%s", buf.String())
	}
}

func TestDeadlineCountsConsistency(t *testing.T) {
	r := smallRunner()
	counts := DeadlineCounts(r, []string{"RR"}, workload.LowRate)
	sum := 0
	for _, b := range workload.BenchmarkNames() {
		sum += r.MustRun("RR", b, workload.LowRate).MetDeadline
	}
	if counts["RR"] != sum {
		t.Fatalf("DeadlineCounts %d != manual sum %d", counts["RR"], sum)
	}
}

func TestSummaryInvariants(t *testing.T) {
	r := smallRunner()
	for _, s := range []string{"RR", "LAX", "BAY"} {
		sum, err := r.Run(s, "CUCKOO", workload.HighRate)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Completed+sum.Rejected+sum.Cancelled != sum.TotalJobs {
			t.Errorf("%s: completed %d + rejected %d + cancelled %d != total %d",
				s, sum.Completed, sum.Rejected, sum.Cancelled, sum.TotalJobs)
		}
		if sum.MetDeadline > sum.Completed {
			t.Errorf("%s: met > completed", s)
		}
		if sum.UsefulWorkFrac < 0 || sum.UsefulWorkFrac > 1 {
			t.Errorf("%s: useful frac %v", s, sum.UsefulWorkFrac)
		}
		if f := metrics.Ratio(float64(sum.MetDeadline), float64(sum.TotalJobs)); f != sum.DeadlineFrac() {
			t.Errorf("%s: deadline frac mismatch", s)
		}
	}
}

func TestSweepMatchesSerialRuns(t *testing.T) {
	serial := smallRunner()
	parallel := smallRunner()
	parallel.Workers = 4
	cells := GridCells([]string{"RR", "LAX"}, workload.LowRate)
	if err := parallel.Sweep(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		a, err := serial.Run(c.Sched, c.Bench, c.Rate)
		if err != nil {
			t.Fatal(err)
		}
		b, err := parallel.Run(c.Sched, c.Bench, c.Rate)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("%v: parallel result differs from serial", c)
		}
	}
	// Sweeping an unknown cell errors.
	if err := parallel.Sweep(context.Background(), []Cell{{"NOPE", "LSTM", workload.LowRate}}); err == nil {
		t.Fatal("unknown scheduler swept")
	}
	if err := parallel.Sweep(context.Background(), []Cell{{"RR", "NOPE", workload.LowRate}}); err == nil {
		t.Fatal("unknown benchmark swept")
	}
}

func TestMultiSeedStats(t *testing.T) {
	r := smallRunner()
	st, err := MultiSeed(context.Background(), r, "RR", "STEM", workload.HighRate, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Mets) != 3 {
		t.Fatalf("%d seed results", len(st.Mets))
	}
	if st.MetMean <= 0 {
		t.Fatalf("mean %v", st.MetMean)
	}
	if st.MetStd < 0 {
		t.Fatalf("stdev %v", st.MetStd)
	}
	// Different seeds should (almost surely) differ somewhere; equal seeds
	// must not.
	same, err := MultiSeed(context.Background(), r, "RR", "STEM", workload.HighRate, []int64{7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if same.MetStd != 0 {
		t.Fatalf("identical seeds produced variance %v", same.MetStd)
	}
	if same.RelStd() != 0 {
		t.Fatal("RelStd of zero-variance sample")
	}
	if (SeedStats{}).RelStd() != 0 {
		t.Fatal("RelStd of empty stats")
	}
}

func TestRenderMarkdown(t *testing.T) {
	rep := Figure3(context.Background())
	var buf bytes.Buffer
	rep.RenderMarkdown(&buf)
	out := buf.String()
	if !strings.HasPrefix(out, "## Figure3:") {
		t.Fatalf("markdown header wrong:\n%s", out)
	}
	if !strings.Contains(out, "| Job ") || !strings.Contains(out, "| --- |") {
		t.Fatalf("markdown table structure missing:\n%s", out)
	}
	if !strings.Contains(out, "> RR is deadline-blind") {
		t.Fatalf("markdown notes missing:\n%s", out)
	}
	// Pipes in cells must be escaped.
	tbl := &Table{Header: []string{"a|b"}}
	tbl.AddRow("x|y")
	buf.Reset()
	tbl.RenderMarkdown(&buf)
	if !strings.Contains(buf.String(), `a\|b`) || !strings.Contains(buf.String(), `x\|y`) {
		t.Fatalf("pipe escaping missing:\n%s", buf.String())
	}
}

// Golden regression tests: the two cheap fully-deterministic reports must
// match their checked-in renderings byte for byte. A diff means model
// behavior changed — rerun `go run ./cmd/laxsim -experiment <id> >
// internal/harness/testdata/<id>.golden` deliberately after verifying the
// change in EXPERIMENTS.md.
func TestGoldenReports(t *testing.T) {
	for _, id := range []string{"table1", "figure3"} {
		rep, err := RunExperiment(context.Background(), NewRunner(), id)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		rep.Render(&buf)
		want, err := os.ReadFile("testdata/" + id + ".golden")
		if err != nil {
			t.Fatal(err)
		}
		if buf.String() != string(want) {
			t.Errorf("%s report drifted from golden file;\n--- got ---\n%s\n--- want ---\n%s",
				id, buf.String(), want)
		}
	}
}

// TestAllExperimentsSmoke runs every registered experiment at reduced scale
// and checks structural validity — the cheap guarantee that `laxsim` cannot
// crash on any ID and every report carries data.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	r := NewRunner()
	r.JobCount = 24
	for _, id := range ExperimentIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			rep, err := RunExperiment(context.Background(), r, id)
			if err != nil {
				t.Fatal(err)
			}
			if rep.ID == "" || rep.Title == "" {
				t.Fatal("report missing identity")
			}
			if len(rep.Tables) == 0 {
				t.Fatal("report has no tables")
			}
			for ti, tbl := range rep.Tables {
				if len(tbl.Header) == 0 {
					t.Fatalf("table %d has no header", ti)
				}
				if len(tbl.Rows) == 0 {
					t.Fatalf("table %d has no rows", ti)
				}
				for ri, row := range tbl.Rows {
					if len(row) > len(tbl.Header) {
						t.Fatalf("table %d row %d wider than header", ti, ri)
					}
				}
			}
			var text, md bytes.Buffer
			rep.Render(&text)
			rep.RenderMarkdown(&md)
			if text.Len() == 0 || md.Len() == 0 {
				t.Fatal("render produced nothing")
			}
		})
	}
}
