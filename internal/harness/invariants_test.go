package harness

import (
	"context"
	"testing"

	"laxgpu/internal/cp"
	"laxgpu/internal/gpu"
	"laxgpu/internal/metrics"
	"laxgpu/internal/sched"
	"laxgpu/internal/sim"
	"laxgpu/internal/workload"
)

// TestEverySchedulerSatisfiesSystemInvariants runs every registered policy
// (including extensions) against every benchmark at a reduced scale and
// checks the invariants any correct scheduler implementation must uphold.
func TestEverySchedulerSatisfiesSystemInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("full scheduler x benchmark sweep")
	}
	lib := workload.NewLibrary(gpu.DefaultConfig())
	cfg := cp.DefaultSystemConfig()
	for _, schedName := range sched.Names() {
		for _, bench := range workload.Benchmarks() {
			set := bench.Generate(lib, workload.HighRate, 24, 5)
			pol, err := sched.New(schedName)
			if err != nil {
				t.Fatal(err)
			}
			sys := cp.NewSystem(cfg, set, pol)
			sys.Run()
			checkInvariants(t, schedName, bench.Name, sys)
		}
	}
}

func checkInvariants(t *testing.T, schedName, bench string, sys *cp.System) {
	t.Helper()
	id := schedName + "/" + bench

	var done, rejected, cancelled int
	for _, j := range sys.Jobs() {
		switch {
		case j.Done():
			done++
			// Every kernel of a completed job ran exactly once.
			for i, inst := range j.Instances {
				if !inst.Done() {
					t.Fatalf("%s: job %d done but kernel %d is %v", id, j.Job.ID, i, inst.State())
				}
				if inst.CompletedWGs() != inst.Desc.NumWGs {
					t.Fatalf("%s: job %d kernel %d completed %d/%d WGs",
						id, j.Job.ID, i, inst.CompletedWGs(), inst.Desc.NumWGs)
				}
			}
			// Kernels executed in dependency order.
			for i := 1; i < len(j.Instances); i++ {
				if j.Instances[i].StartedAt < j.Instances[i-1].FinishedAt {
					t.Fatalf("%s: job %d kernel %d overlapped its predecessor", id, j.Job.ID, i)
				}
			}
			if j.FinishTime < j.Job.Arrival {
				t.Fatalf("%s: job %d finished before arriving", id, j.Job.ID)
			}
			if j.MetDeadline() != (j.FinishTime <= j.Job.AbsoluteDeadline()) {
				t.Fatalf("%s: job %d deadline accounting inconsistent", id, j.Job.ID)
			}
		case j.Rejected():
			rejected++
			if j.WGsCompleted() != 0 {
				t.Fatalf("%s: rejected job %d executed %d WGs", id, j.Job.ID, j.WGsCompleted())
			}
		case j.Cancelled():
			cancelled++
		default:
			t.Fatalf("%s: job %d stranded in state %v", id, j.Job.ID, j.State())
		}
	}
	if done+rejected+cancelled != len(sys.Jobs()) {
		t.Fatalf("%s: %d+%d+%d != %d jobs", id, done, rejected, cancelled, len(sys.Jobs()))
	}
	// The device must have drained completely.
	if sys.Device().ActiveWGs() != 0 || sys.Device().Utilization() != 0 {
		t.Fatalf("%s: device not drained", id)
	}
	if len(sys.Active()) != 0 || sys.HostQueueLen() != 0 {
		t.Fatalf("%s: system queues not drained", id)
	}
}

// TestSchedulersAreDeterministic replays the same trace twice under each of
// a representative set of policies and requires identical outcomes.
func TestSchedulersAreDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated runs")
	}
	lib := workload.NewLibrary(gpu.DefaultConfig())
	cfg := cp.DefaultSystemConfig()
	bench, _ := workload.FindBenchmark("HYBRID")
	set := bench.Generate(lib, workload.HighRate, 32, 11)
	for _, schedName := range []string{"RR", "MLFQ", "BAT", "BAY", "PREMA", "LAX", "LAX-PREMA"} {
		fingerprint := func() [3]int64 {
			pol, err := sched.New(schedName)
			if err != nil {
				t.Fatal(err)
			}
			sys := cp.NewSystem(cfg, set, pol)
			sys.Run()
			var met, finishSum int64
			for _, j := range sys.Jobs() {
				if j.MetDeadline() {
					met++
				}
				finishSum += int64(j.FinishTime)
			}
			return [3]int64{met, int64(sys.RejectedCount()), finishSum}
		}
		a, b := fingerprint(), fingerprint()
		if a != b {
			t.Errorf("%s: nondeterministic results %v vs %v", schedName, a, b)
		}
	}
}

// TestDeadlineMonotonicInLoad: offering less load can only help (or leave
// unchanged) the *fraction* of feasible traces — at the extremes it must
// hold: a trivially light trace meets everything, a crushing one cannot
// meet more jobs than a light one under any admission-capable scheduler.
func TestDeadlineMonotonicInLoad(t *testing.T) {
	r := NewRunner()
	r.JobCount = 32
	bench, _ := workload.FindBenchmark("CUCKOO")
	light, err := runAtRate(context.Background(), r, "LAX", "CUCKOO", bench.JobsPerSecond(workload.HighRate)/8, 3)
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := runAtRate(context.Background(), r, "LAX", "CUCKOO", bench.JobsPerSecond(workload.HighRate)*8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if light.DeadlineFrac() < 0.9 {
		t.Fatalf("light load met only %.0f%%", 100*light.DeadlineFrac())
	}
	if heavy.MetDeadline > light.MetDeadline {
		t.Fatalf("heavier load met more deadlines (%d vs %d)", heavy.MetDeadline, light.MetDeadline)
	}
}

// TestOracleDominatesOnAggregate: the perfect-information oracle should not
// lose to profiled LAX by a meaningful margin on total jobs met (small
// per-benchmark inversions are possible — greedy laxity is not optimal —
// but the aggregate must favor or match the oracle).
func TestOracleDominatesOnAggregate(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-benchmark sweep")
	}
	r := NewRunner()
	r.JobCount = 48
	counts := DeadlineCounts(r, []string{"LAX", "ORACLE"}, workload.HighRate)
	if counts["ORACLE"] < counts["LAX"]*9/10 {
		t.Fatalf("oracle (%d) far below LAX (%d); estimator or oracle broken",
			counts["ORACLE"], counts["LAX"])
	}
}

// TestGenerateCustomMatchesGenerate: the Table 4 path is a special case of
// the custom-rate path.
func TestGenerateCustomMatchesGenerate(t *testing.T) {
	lib := workload.NewLibrary(gpu.DefaultConfig())
	bench, _ := workload.FindBenchmark("GMM")
	a := bench.Generate(lib, workload.HighRate, 16, 9)
	b := bench.GenerateCustom(lib, bench.JobsPerSecond(workload.HighRate), 16, 9)
	for i := range a.Jobs {
		if a.Jobs[i].Arrival != b.Jobs[i].Arrival {
			t.Fatal("custom-rate generation diverges from Table 4 path")
		}
	}
}

// TestUtilizationSamplesBounded sanity-checks the utilization sampler used
// by the analysis experiment.
func TestUtilizationSamplesBounded(t *testing.T) {
	lib := workload.NewLibrary(gpu.DefaultConfig())
	cfg := cp.DefaultSystemConfig()
	bench, _ := workload.FindBenchmark("IPV6")
	set := bench.Generate(lib, workload.HighRate, 16, 2)
	sys := cp.NewSystem(cfg, set, sched.NewRR())
	var samples []float64
	for at := sim.Time(0); at < 2*sim.Millisecond; at += 50 * sim.Microsecond {
		at := at
		sys.Engine().Schedule(at, func() { samples = append(samples, sys.Device().Utilization()) })
	}
	sys.Run()
	var nonZero bool
	for _, s := range samples {
		if s < 0 || s > 1 {
			t.Fatalf("utilization sample %v out of [0,1]", s)
		}
		if s > 0 {
			nonZero = true
		}
	}
	if !nonZero {
		t.Fatal("device never utilized during a busy trace")
	}
	if metrics.Mean(samples) <= 0 {
		t.Fatal("mean utilization zero")
	}
}
