package harness

import (
	"fmt"
	"io"
	"strings"
)

// RenderMarkdown writes the table as GitHub-flavored markdown, for pasting
// results into issues, papers and EXPERIMENTS.md.
func (t *Table) RenderMarkdown(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "**%s**\n\n", t.Title)
	}
	esc := func(c string) string { return strings.ReplaceAll(c, "|", "\\|") }
	cells := make([]string, len(t.Header))
	for i, h := range t.Header {
		cells[i] = esc(h)
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
	}
}

// RenderMarkdown writes the full report as markdown.
func (r *Report) RenderMarkdown(w io.Writer) {
	fmt.Fprintf(w, "## %s: %s\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		t.RenderMarkdown(w)
		fmt.Fprintln(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "> %s\n", n)
	}
	if len(r.Notes) > 0 {
		fmt.Fprintln(w)
	}
}
