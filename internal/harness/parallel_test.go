package harness

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"laxgpu/internal/workload"
)

// renderExperiment regenerates one experiment on a fresh runner at the given
// pool width and returns the rendered report bytes.
func renderExperiment(t *testing.T, id string, jobs, workers int) []byte {
	t.Helper()
	r := NewRunner()
	r.JobCount = jobs
	r.Workers = workers
	rep, err := RunExperiment(context.Background(), r, id)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	return buf.Bytes()
}

// TestParallelSerialGoldenEquivalence is the determinism acceptance test:
// the table5 report (the densest cell grid) rendered from a parallel sweep
// must be byte-for-byte identical to the serial reference path. Reduced
// job count keeps the grid cheap; the cell population is unchanged.
func TestParallelSerialGoldenEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the table5 grid twice")
	}
	serial := renderExperiment(t, "table5", 24, 1)
	parallel := renderExperiment(t, "table5", 24, 4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("parallel table5 report differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestFigure6ParallelSerialEquivalence covers the multi-rate sweep path the
// same way at a second experiment.
func TestFigure6ParallelSerialEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the figure6 grid twice")
	}
	serial := renderExperiment(t, "figure6", 16, 1)
	parallel := renderExperiment(t, "figure6", 16, 8)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("parallel figure6 report differs from serial")
	}
}

// TestParallelSweepScales pins the point of the worker pool: on a machine
// with real parallelism, a multi-worker sweep must beat the serial reference
// by wall clock, not just match it byte for byte. The threshold is loose
// (0.6× serial ≈ 1.7× speedup at width ≥ 4) so scheduler jitter never flakes
// it, but tight enough to catch the historical failure mode this test
// encodes: a sweep that silently runs serially — e.g. a pool built at width
// GOMAXPROCS inside a 1-CPU cgroup, where Pool.Do degenerates to in-caller
// execution — shows 1.0× and fails immediately. On machines without enough
// cores to demonstrate scaling the test skips, naming the width it resolved,
// rather than asserting a speedup physics forbids.
func TestParallelSweepScales(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a sweep grid twice")
	}
	width := NewPool(0).Workers()
	if width < 4 {
		t.Skipf("GOMAXPROCS resolves the pool to width %d; speedup is only measurable at width >= 4", width)
	}
	cells := GridCells([]string{"RR", "LAX", "SJF", "EDF"}, workload.HighRate)
	sweep := func(workers int) time.Duration {
		r := NewRunner()
		r.JobCount = 32
		r.Workers = workers
		start := time.Now()
		if err := r.Sweep(context.Background(), cells); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	serial := sweep(1)
	parallel := sweep(0)
	if parallel >= serial*6/10 {
		t.Fatalf("parallel sweep (width %d) took %v vs serial %v; want < 0.6x serial",
			width, parallel, serial)
	}
}

// TestSweepCancellation: cancelling mid-sweep aborts in-flight simulations,
// surfaces context.Canceled, leaks no goroutines, and leaves no poisoned
// cache entries behind — a re-sweep with a live context succeeds.
func TestSweepCancellation(t *testing.T) {
	r := NewRunner()
	r.JobCount = 48
	r.Workers = 4
	cells := GridCells([]string{"RR", "LAX", "SJF"}, workload.HighRate)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: every cell must abort mid-event-loop
	if err := r.Sweep(ctx, cells); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines leaked after cancelled sweep: %d -> %d", before, after)
	}

	// Aborted cells were not cached; a live-context sweep completes them.
	if err := r.Sweep(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if sum := r.MustRun(c.Sched, c.Bench, c.Rate); sum.TotalJobs != 48 {
			t.Fatalf("%v: cached summary has %d jobs", c, sum.TotalJobs)
		}
	}
}

// TestRunExperimentCancellation: a cancelled context surfaces as an error
// from RunExperiment (the generator's panic is recovered), for both sweep-
// based and task-based experiments.
func TestRunExperimentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, id := range []string{"table5", "figure4", "faults"} {
		r := NewRunner()
		r.JobCount = 16
		rep, err := RunExperiment(ctx, r, id)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", id, err)
		}
		if rep != nil {
			t.Fatalf("%s: cancelled experiment returned a report", id)
		}
	}
}

// TestRunnerConcurrentRuns hammers one runner from many goroutines (run
// under -race): every goroutine asks for the same small cell set and every
// result must match the serial reference.
func TestRunnerConcurrentRuns(t *testing.T) {
	ref := NewRunner()
	ref.JobCount = 24
	want, err := ref.Run("LAX", "IPV6", workload.LowRate)
	if err != nil {
		t.Fatal(err)
	}

	r := NewRunner()
	r.JobCount = 24
	const goroutines = 16
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			got, err := r.Run("LAX", "IPV6", workload.LowRate)
			if err == nil && got != want {
				err = errors.New("concurrent result differs from serial reference")
			}
			errs <- err
		}()
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
