package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment artifact: one table or one figure's data
// series.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len([]rune(c))
			}
			parts[i] = c + strings.Repeat(" ", pad)
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// Report is one reproduced experiment: an ID (the paper's table/figure
// number), a title, data tables, and free-form observations.
type Report struct {
	ID     string
	Title  string
	Tables []*Table
	Notes  []string
}

// Render writes the full report.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "=== %s: %s ===\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		t.Render(w)
		fmt.Fprintln(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	if len(r.Notes) > 0 {
		fmt.Fprintln(w)
	}
}

// f2 formats a float with two decimals; f1/f3 with one/three.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// fint formats an int.
func fint(v int) string { return fmt.Sprintf("%d", v) }
