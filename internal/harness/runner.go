// Package harness assembles device + command processor + policy + workload
// into runnable experiments and regenerates every table and figure of the
// paper's evaluation (the per-experiment index lives in DESIGN.md).
package harness

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"laxgpu/internal/cp"
	"laxgpu/internal/faults"
	"laxgpu/internal/metrics"
	"laxgpu/internal/sched"
	"laxgpu/internal/workload"
)

// Runner executes and memoizes simulation runs so experiments sharing a
// (scheduler, benchmark, rate) cell — e.g. Figure 7 and Table 5 — pay for
// it once. Job traces are generated deterministically from Seed, and the
// same trace is replayed under every scheduler (paired comparison, §5.3).
type Runner struct {
	// Cfg is the simulated system (defaults to the paper's Table 2).
	Cfg cp.SystemConfig

	// Lib holds kernel descriptors calibrated for Cfg.GPU.
	Lib *workload.Library

	// Seed makes every trace reproducible.
	Seed int64

	// JobCount is the number of jobs per trace (§5.3: 128).
	JobCount int

	// Faults optionally subjects every run to a deterministic
	// fault-injection plan (faults.ParseSpec syntax). recover=on also
	// enables the CP's watchdog/retry/fallback machinery. The plan seed is
	// derived from (Seed, benchmark, rate) — never the scheduler — so
	// paired scheduler comparisons see identical fault draws.
	Faults string

	// Progress, when non-nil, receives one line per fresh simulation run.
	Progress io.Writer

	mu    sync.Mutex
	cache map[runKey]metrics.Summary
	sets  map[setKey]*workload.JobSet
}

// Cell names one simulation: (scheduler, benchmark, rate).
type Cell struct {
	Sched string
	Bench string
	Rate  workload.Rate
}

type runKey struct {
	sched string
	bench string
	rate  workload.Rate
}

type setKey struct {
	bench string
	rate  workload.Rate
}

// NewRunner returns a Runner with the paper's defaults.
func NewRunner() *Runner {
	return &Runner{
		Cfg:      cp.DefaultSystemConfig(),
		Lib:      workload.NewLibrary(cp.DefaultSystemConfig().GPU),
		Seed:     1,
		JobCount: workload.DefaultJobCount,
		cache:    make(map[runKey]metrics.Summary),
		sets:     make(map[setKey]*workload.JobSet),
	}
}

// JobSet returns the memoized trace for (benchmark, rate).
func (r *Runner) JobSet(benchName string, rate workload.Rate) (*workload.JobSet, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.jobSetLocked(benchName, rate)
}

func (r *Runner) jobSetLocked(benchName string, rate workload.Rate) (*workload.JobSet, error) {
	k := setKey{benchName, rate}
	if s, ok := r.sets[k]; ok {
		return s, nil
	}
	b, err := workload.FindBenchmark(benchName)
	if err != nil {
		return nil, err
	}
	set := b.Generate(r.Lib, rate, r.JobCount, r.cellSeed(benchName, rate))
	r.sets[k] = set
	return set, nil
}

// cellSeed mixes the benchmark and rate into the seed so traces (and fault
// plans) differ across cells but are stable across schedulers.
func (r *Runner) cellSeed(benchName string, rate workload.Rate) int64 {
	seed := r.Seed
	for _, c := range benchName {
		seed = seed*31 + int64(c)
	}
	return seed*31 + int64(rate)
}

// Run simulates (scheduler, benchmark, rate) and returns its Summary,
// memoized.
func (r *Runner) Run(schedName, benchName string, rate workload.Rate) (metrics.Summary, error) {
	k := runKey{schedName, benchName, rate}
	r.mu.Lock()
	if s, ok := r.cache[k]; ok {
		r.mu.Unlock()
		return s, nil
	}
	r.mu.Unlock()
	sys, _, err := r.RunSystem(schedName, benchName, rate)
	if err != nil {
		return metrics.Summary{}, err
	}
	s := metrics.Summarize(sys, schedName, benchName, rate.String())
	r.mu.Lock()
	r.cache[k] = s
	r.mu.Unlock()
	return s, nil
}

// Prefetch simulates the given cells concurrently (bounded by GOMAXPROCS)
// and fills the memoization cache, so subsequent Run calls are instant.
// Simulations are independent — job sets are read-only while replayed — so
// this is safe parallelism; results are identical to serial execution.
func (r *Runner) Prefetch(cells []Cell) error {
	// Materialize all job sets up front (shared map writes).
	var todo []Cell
	r.mu.Lock()
	for _, c := range cells {
		if _, ok := r.cache[runKey{c.Sched, c.Bench, c.Rate}]; ok {
			continue
		}
		if _, err := r.jobSetLocked(c.Bench, c.Rate); err != nil {
			r.mu.Unlock()
			return err
		}
		todo = append(todo, c)
	}
	r.mu.Unlock()

	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	for _, c := range todo {
		c := c
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if _, err := r.Run(c.Sched, c.Bench, c.Rate); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// GridCells enumerates schedulers x benchmarks at one rate.
func GridCells(scheds []string, rate workload.Rate) []Cell {
	var cells []Cell
	for _, s := range scheds {
		for _, b := range workload.BenchmarkNames() {
			cells = append(cells, Cell{s, b, rate})
		}
	}
	return cells
}

// MustRun is Run for callers with static scheduler/benchmark names.
func (r *Runner) MustRun(schedName, benchName string, rate workload.Rate) metrics.Summary {
	s, err := r.Run(schedName, benchName, rate)
	if err != nil {
		panic(err)
	}
	return s
}

// RunSystem executes a fresh, uncached simulation and returns the system
// and policy for experiments that need more than the Summary (Figure 10's
// traces).
func (r *Runner) RunSystem(schedName, benchName string, rate workload.Rate) (*cp.System, cp.Policy, error) {
	pol, err := sched.New(schedName)
	if err != nil {
		return nil, nil, err
	}
	set, err := r.JobSet(benchName, rate)
	if err != nil {
		return nil, nil, err
	}
	spec, err := faults.ParseSpec(r.Faults)
	if err != nil {
		return nil, nil, err
	}
	cfg := r.Cfg
	if !spec.Zero() && spec.Recover {
		cfg.Recovery = cp.DefaultRecoveryConfig()
	}
	sys := cp.NewSystem(cfg, set, pol)
	if !spec.Zero() {
		sys.InstallFaults(faults.NewPlan(spec, r.cellSeed(benchName, rate)), spec.Retirements)
	}
	sys.Run()
	if r.Progress != nil {
		fmt.Fprintf(r.Progress, "ran %-8s %-7s %-6s: %3d/%d met, %d rejected\n",
			schedName, benchName, rate, countMet(sys), len(sys.Jobs()), sys.RejectedCount())
	}
	return sys, pol, nil
}

func countMet(sys *cp.System) int {
	n := 0
	for _, j := range sys.Jobs() {
		if j.MetDeadline() {
			n++
		}
	}
	return n
}
