// Package harness assembles device + command processor + policy + workload
// into runnable experiments and regenerates every table and figure of the
// paper's evaluation (the per-experiment index lives in DESIGN.md).
//
// The harness is built around two concurrency guarantees:
//
//   - every individual simulation is single-threaded (the discrete-event
//     engine never crosses goroutines), and
//   - independent (scheduler, benchmark, rate) cells fan out across a
//     bounded worker pool, sharing read-only job traces and a sharded,
//     in-flight-deduplicating run cache.
//
// Because traces are generated deterministically per (benchmark, rate,
// seed) and each cell's simulation is a pure function of its inputs,
// parallel sweeps produce byte-identical reports to serial ones.
package harness

import (
	"context"
	"fmt"
	"io"
	"sync"

	"laxgpu/internal/cp"
	"laxgpu/internal/faults"
	"laxgpu/internal/metrics"
	"laxgpu/internal/sched"
	"laxgpu/internal/verify"
	"laxgpu/internal/workload"
	"laxgpu/internal/workload/scenario"
)

// Runner executes and memoizes simulation runs so experiments sharing a
// (scheduler, benchmark, rate) cell — e.g. Figure 7 and Table 5 — pay for
// it once. Job traces are generated deterministically from Seed, and the
// same trace is replayed under every scheduler (paired comparison, §5.3).
//
// A Runner is safe for concurrent use: the run cache is sharded with
// in-flight deduplication, job sets are generated once and replayed
// read-only, and each simulation runs single-threaded on the goroutine
// that missed the cache.
type Runner struct {
	// Cfg is the simulated system (defaults to the paper's Table 2).
	Cfg cp.SystemConfig

	// Lib holds kernel descriptors calibrated for Cfg.GPU.
	Lib *workload.Library

	// Seed makes every trace reproducible.
	Seed int64

	// JobCount is the number of jobs per trace (§5.3: 128).
	JobCount int

	// Faults optionally subjects every run to a deterministic
	// fault-injection plan (faults.ParseSpec syntax). recover=on also
	// enables the CP's watchdog/retry/fallback machinery. The plan seed is
	// derived from (Seed, benchmark, rate) — never the scheduler — so
	// paired scheduler comparisons see identical fault draws.
	Faults string

	// Workers bounds the sweep worker pool: 0 means GOMAXPROCS, 1 forces
	// the serial reference path. Results are identical at every width.
	Workers int

	// Verify attaches the internal/verify invariant checker to every fresh
	// simulation: a run that violates a scheduler invariant fails with the
	// first violation instead of returning results. Probes are pure
	// observers, so checked runs produce byte-identical summaries.
	Verify bool

	// Progress, when non-nil, receives one line per fresh simulation run.
	// Writes are serialized; line order under a parallel sweep follows
	// completion order.
	Progress io.Writer

	progressMu sync.Mutex

	setMu sync.Mutex
	sets  map[setKey]*workload.JobSet

	cache *runCache
}

// Cell names one simulation: (scheduler, benchmark, rate).
type Cell struct {
	Sched string
	Bench string
	Rate  workload.Rate
}

type runKey struct {
	sched string
	bench string
	rate  workload.Rate
}

type setKey struct {
	bench string
	rate  workload.Rate
}

// NewRunner returns a Runner with the paper's defaults.
func NewRunner() *Runner {
	return &Runner{
		Cfg:      cp.DefaultSystemConfig(),
		Lib:      workload.NewLibrary(cp.DefaultSystemConfig().GPU),
		Seed:     1,
		JobCount: workload.DefaultJobCount,
		cache:    newRunCache(),
		sets:     make(map[setKey]*workload.JobSet),
	}
}

// pool returns the runner's worker pool at its configured width.
func (r *Runner) pool() Pool { return NewPool(r.Workers) }

// JobSet returns the memoized trace for (benchmark, rate), generating it on
// first use. Generation is serialized so exactly one trace exists per cell;
// the returned set is replayed read-only and may be shared across
// concurrent simulations.
func (r *Runner) JobSet(benchName string, rate workload.Rate) (*workload.JobSet, error) {
	r.setMu.Lock()
	defer r.setMu.Unlock()
	k := setKey{benchName, rate}
	if s, ok := r.sets[k]; ok {
		return s, nil
	}
	b, err := workload.FindBenchmark(benchName)
	if err != nil {
		return nil, err
	}
	set := b.Generate(r.Lib, rate, r.JobCount, r.cellSeed(benchName, rate))
	r.sets[k] = set
	return set, nil
}

// InstallScenario expands a scenario document into a job trace and
// registers it in the runner's trace memo under (spec.Label(),
// workload.ScenarioRate), so every existing entry point — Run, Sweep,
// RunSystem, Verify, fault injection — works on the scenario cell exactly
// as on a Table 4 benchmark cell: memoized per scheduler, fanned out across
// the worker pool, byte-identical at any pool width. seed overrides the
// file's own seed when non-zero. It returns the benchmark label to address
// the cell with.
func (r *Runner) InstallScenario(spec *scenario.Spec, seed int64) (string, error) {
	set, err := spec.Generate(r.Lib, seed)
	if err != nil {
		return "", err
	}
	r.setMu.Lock()
	defer r.setMu.Unlock()
	r.sets[setKey{spec.Label(), workload.ScenarioRate}] = set
	return spec.Label(), nil
}

// cellSeed mixes the benchmark and rate into the seed so traces (and fault
// plans) differ across cells but are stable across schedulers.
func (r *Runner) cellSeed(benchName string, rate workload.Rate) int64 {
	seed := r.Seed
	for _, c := range benchName {
		seed = seed*31 + int64(c)
	}
	return seed*31 + int64(rate)
}

// Run simulates (scheduler, benchmark, rate) and returns its Summary,
// memoized.
func (r *Runner) Run(schedName, benchName string, rate workload.Rate) (metrics.Summary, error) {
	return r.RunContext(context.Background(), schedName, benchName, rate)
}

// RunContext is Run with cooperative cancellation: a cancelled context
// stops the simulation mid-cell and the aborted run is not cached.
// Concurrent calls for the same cell share one simulation.
func (r *Runner) RunContext(ctx context.Context, schedName, benchName string, rate workload.Rate) (metrics.Summary, error) {
	k := runKey{schedName, benchName, rate}
	return r.cache.do(k, func() (metrics.Summary, error) {
		sys, _, err := r.RunSystemContext(ctx, schedName, benchName, rate)
		if err != nil {
			return metrics.Summary{}, err
		}
		return metrics.Summarize(sys, schedName, benchName, rate.String()), nil
	})
}

// Sweep simulates the given cells across the worker pool (width Workers)
// and fills the memoization cache, so subsequent Run calls are instant.
// Job sets are materialized up front on the calling goroutine, then the
// independent cells fan out; per-cell simulations stay single-threaded, so
// results are byte-identical to serial execution. Duplicate cells cost one
// simulation. Cancelling the context stops in-flight cells mid-simulation
// and returns its error.
func (r *Runner) Sweep(ctx context.Context, cells []Cell) error {
	// Materialize all job sets first: deterministic generation order, and
	// workers then share the traces read-only.
	var todo []Cell
	for _, c := range cells {
		if r.cache.cached(runKey{c.Sched, c.Bench, c.Rate}) {
			continue
		}
		if _, err := r.JobSet(c.Bench, c.Rate); err != nil {
			return err
		}
		todo = append(todo, c)
	}
	return r.pool().Do(ctx, len(todo), func(ctx context.Context, i int) error {
		c := todo[i]
		_, err := r.RunContext(ctx, c.Sched, c.Bench, c.Rate)
		return err
	})
}

// GridCells enumerates schedulers x benchmarks at one rate.
func GridCells(scheds []string, rate workload.Rate) []Cell {
	var cells []Cell
	for _, s := range scheds {
		for _, b := range workload.BenchmarkNames() {
			cells = append(cells, Cell{s, b, rate})
		}
	}
	return cells
}

// MustRun is Run for callers with static scheduler/benchmark names.
func (r *Runner) MustRun(schedName, benchName string, rate workload.Rate) metrics.Summary {
	s, err := r.Run(schedName, benchName, rate)
	if err != nil {
		panic(err)
	}
	return s
}

// RunSystem executes a fresh, uncached simulation and returns the system
// and policy for experiments that need more than the Summary (Figure 10's
// traces).
func (r *Runner) RunSystem(schedName, benchName string, rate workload.Rate) (*cp.System, cp.Policy, error) {
	return r.RunSystemContext(context.Background(), schedName, benchName, rate)
}

// RunSystemContext is RunSystem with cooperative cancellation.
func (r *Runner) RunSystemContext(ctx context.Context, schedName, benchName string, rate workload.Rate) (*cp.System, cp.Policy, error) {
	pol, err := sched.New(schedName)
	if err != nil {
		return nil, nil, err
	}
	set, err := r.JobSet(benchName, rate)
	if err != nil {
		return nil, nil, err
	}
	spec, err := faults.ParseSpec(r.Faults)
	if err != nil {
		return nil, nil, err
	}
	cfg := r.Cfg
	if !spec.Zero() && spec.Recover {
		cfg.Recovery = cp.DefaultRecoveryConfig()
	}
	sys := cp.NewSystem(cfg, set, pol)
	if !spec.Zero() {
		sys.InstallFaults(faults.NewPlan(spec, r.cellSeed(benchName, rate)), spec.Retirements)
	}
	var ck *verify.Checker
	if r.Verify {
		ck = verify.New(verify.OptionsFor(schedName, pol, cfg, !spec.Zero()))
		ck.Attach(sys)
		sys.SetProbe(ck)
	}
	if err := sys.RunContext(ctx); err != nil {
		return nil, nil, err
	}
	if ck != nil {
		if err := ck.Finalize(); err != nil {
			return nil, nil, fmt.Errorf("%s/%s/%s: invariant violation: %w", schedName, benchName, rate, err)
		}
	}
	if r.Progress != nil {
		r.progressMu.Lock()
		fmt.Fprintf(r.Progress, "ran %-8s %-7s %-6s: %3d/%d met, %d rejected\n",
			schedName, benchName, rate, countMet(sys), len(sys.Jobs()), sys.RejectedCount())
		r.progressMu.Unlock()
	}
	return sys, pol, nil
}

func countMet(sys *cp.System) int {
	n := 0
	for _, j := range sys.Jobs() {
		if j.MetDeadline() {
			n++
		}
	}
	return n
}
