package harness

import (
	"fmt"
	"sort"

	"laxgpu/internal/cluster"
	"laxgpu/internal/cp"
	"laxgpu/internal/metrics"
	"laxgpu/internal/sched"
	"laxgpu/internal/workload"
)

// scalingCUCounts sweeps machine sizes around the paper's two reference
// points: the simulated 8-CU system (Table 2) and the 36-CU RX 580 the
// kernels were characterized on (Table 1).
var scalingCUCounts = []int{4, 8, 16, 36}

// Scaling regenerates two extension studies:
//
//  1. device-size sweep — does LAX's advantage survive on bigger machines,
//     with kernel libraries recalibrated per configuration so every device
//     still matches Table 1's isolated times?
//  2. multi-tenant mix — all eight benchmarks sharing one GPU (the paper
//     simulates one job type at a time, §5.3; real servers mix).
func Scaling(r *Runner) *Report {
	return &Report{
		ID:    "scaling",
		Title: "Device-size sweep and multi-tenant mix (extensions beyond the paper's figures)",
		Tables: []*Table{
			deviceSweepTable(r),
			fleetTable(r),
			multiTenantTable(r),
		},
		Notes: []string{
			"Each device size gets a recalibrated kernel library (isolated times still match Table 1), and bandwidth scales with CU count.",
			"The multi-tenant trace interleaves all 8 benchmarks at 1/8 of their high rates; per-class deadlines are unchanged.",
			"Finding: LAX's aggregate drops below RR under the mix — Algorithm 2's deprioritize-on-predicted-miss rule compares completion times against *per-job* deadlines, and the paper itself notes the resulting ordering guarantee only holds for uniform deadlines (§4.4); the paper's evaluation therefore runs one job type at a time (§5.3). Heterogeneous-deadline laxity scheduling is genuine future work.",
		},
	}
}

// deviceSweepTable scales the machine and reports LAX vs RR deadline-met
// fractions on LSTM at an offered load proportional to machine size.
func deviceSweepTable(r *Runner) *Table {
	t := &Table{
		Title:  "LSTM deadline-met % vs device size (offered load scaled with CUs; 8 CUs = Table 2 = 8000 jobs/s)",
		Header: []string{"CUs", "RR", "SJF", "LAX", "LAX/RR"},
	}
	bench, err := workload.FindBenchmark("LSTM")
	if err != nil {
		panic(err)
	}
	for _, cus := range scalingCUCounts {
		cfg := r.Cfg
		cfg.GPU.NumCUs = cus
		// Bandwidth scales with the memory system, which grows with the
		// chip: keep the per-CU ratio of the Table 2 machine.
		cfg.GPU.MemBandwidthDemand = r.Cfg.GPU.MemBandwidthDemand * float64(cus) / 8
		lib := workload.NewLibrary(cfg.GPU)
		rate := bench.JobsPerSecond(workload.HighRate) * cus / 8
		set := bench.GenerateCustom(lib, rate, r.JobCount, r.Seed)

		met := map[string]int{}
		for _, schedName := range []string{"RR", "SJF", "LAX"} {
			pol, err := sched.New(schedName)
			if err != nil {
				panic(err)
			}
			sys := cp.NewSystem(cfg, set, pol)
			sys.Run()
			for _, j := range sys.Jobs() {
				if j.MetDeadline() {
					met[schedName]++
				}
			}
		}
		n := float64(r.JobCount)
		t.AddRow(fint(cus),
			f1(100*float64(met["RR"])/n),
			f1(100*float64(met["SJF"])/n),
			f1(100*float64(met["LAX"])/n),
			f2(metrics.Ratio(float64(met["LAX"]), float64(met["RR"]))))
	}
	return t
}

// fleetTable scales out instead of up: the same overloaded LSTM trace
// routed across 1-4 Table 2 GPUs by a least-loaded front end.
func fleetTable(r *Runner) *Table {
	t := &Table{
		Title:  "Fleet scale-out: LSTM at 4x the high rate, least-loaded routing (% of jobs meeting deadline)",
		Header: []string{"Scheduler", "1 GPU", "2 GPUs", "4 GPUs"},
	}
	bench, err := workload.FindBenchmark("LSTM")
	if err != nil {
		panic(err)
	}
	set := bench.GenerateCustom(r.Lib, 4*bench.JobsPerSecond(workload.HighRate), r.JobCount, r.Seed)
	for _, schedName := range []string{"RR", "LAX"} {
		row := []string{schedName}
		for _, gpus := range []int{1, 2, 4} {
			res, err := cluster.Run(cluster.Config{
				GPUs:      gpus,
				System:    r.Cfg,
				Routing:   cluster.RouteLeastLoaded,
				Scheduler: schedName,
			}, set)
			if err != nil {
				panic(err)
			}
			row = append(row, f1(100*res.DeadlineFrac()))
		}
		t.AddRow(row...)
	}
	return t
}

// multiTenantTable interleaves every benchmark into one shared-GPU trace.
func multiTenantTable(r *Runner) *Table {
	t := &Table{
		Title:  "Multi-tenant: all 8 benchmarks sharing the GPU (per-class deadline-met)",
		Header: append([]string{"Scheduler"}, append(workload.BenchmarkNames(), "TOTAL")...),
	}
	set := buildMultiTenantTrace(r)
	for _, schedName := range []string{"RR", "EDF", "PREMA", "LAX"} {
		pol, err := sched.New(schedName)
		if err != nil {
			panic(err)
		}
		sys := cp.NewSystem(r.Cfg, set, pol)
		sys.Run()
		met := map[string]int{}
		count := map[string]int{}
		total := 0
		for _, j := range sys.Jobs() {
			count[j.Job.Benchmark]++
			if j.MetDeadline() {
				met[j.Job.Benchmark]++
				total++
			}
		}
		row := []string{schedName}
		for _, b := range workload.BenchmarkNames() {
			row = append(row, fmt.Sprintf("%d/%d", met[b], count[b]))
		}
		row = append(row, fint(total))
		t.AddRow(row...)
	}
	return t
}

// buildMultiTenantTrace merges per-benchmark Poisson streams, each at 1/8
// of its high rate, into one arrival-sorted trace of JobCount jobs.
func buildMultiTenantTrace(r *Runner) *workload.JobSet {
	perClass := r.JobCount / len(workload.Benchmarks())
	var jobs []*workload.Job
	for i, b := range workload.Benchmarks() {
		rate := b.JobsPerSecond(workload.HighRate) / 8
		if rate < 1 {
			rate = 1
		}
		sub := b.GenerateCustom(r.Lib, rate, perClass, r.Seed+int64(i))
		jobs = append(jobs, sub.Jobs...)
	}
	sort.SliceStable(jobs, func(a, b int) bool { return jobs[a].Arrival < jobs[b].Arrival })
	for i, j := range jobs {
		j.ID = i
	}
	return &workload.JobSet{Benchmark: "multi-tenant", Seed: r.Seed, Jobs: jobs}
}
