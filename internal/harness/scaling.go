package harness

import (
	"context"
	"fmt"
	"sort"

	"laxgpu/internal/cluster"
	"laxgpu/internal/cp"
	"laxgpu/internal/metrics"
	"laxgpu/internal/sched"
	"laxgpu/internal/workload"
)

// scalingCUCounts sweeps machine sizes around the paper's two reference
// points: the simulated 8-CU system (Table 2) and the 36-CU RX 580 the
// kernels were characterized on (Table 1).
var scalingCUCounts = []int{4, 8, 16, 36}

// Scaling regenerates two extension studies:
//
//  1. device-size sweep — does LAX's advantage survive on bigger machines,
//     with kernel libraries recalibrated per configuration so every device
//     still matches Table 1's isolated times?
//  2. multi-tenant mix — all eight benchmarks sharing one GPU (the paper
//     simulates one job type at a time, §5.3; real servers mix).
func Scaling(ctx context.Context, r *Runner) *Report {
	return &Report{
		ID:    "scaling",
		Title: "Device-size sweep and multi-tenant mix (extensions beyond the paper's figures)",
		Tables: []*Table{
			deviceSweepTable(ctx, r),
			fleetTable(ctx, r),
			multiTenantTable(ctx, r),
		},
		Notes: []string{
			"Each device size gets a recalibrated kernel library (isolated times still match Table 1), and bandwidth scales with CU count.",
			"The multi-tenant trace interleaves all 8 benchmarks at 1/8 of their high rates; per-class deadlines are unchanged.",
			"Finding: LAX's aggregate drops below RR under the mix — Algorithm 2's deprioritize-on-predicted-miss rule compares completion times against *per-job* deadlines, and the paper itself notes the resulting ordering guarantee only holds for uniform deadlines (§4.4); the paper's evaluation therefore runs one job type at a time (§5.3). Heterogeneous-deadline laxity scheduling is genuine future work.",
		},
	}
}

// deviceSweepSchedulers are the policies contrasted at each machine size.
var deviceSweepSchedulers = []string{"RR", "SJF", "LAX"}

// deviceSweepTable scales the machine and reports LAX vs RR deadline-met
// fractions on LSTM at an offered load proportional to machine size. The
// per-size configs, recalibrated libraries, and traces are materialized up
// front on the calling goroutine; the (size, scheduler) simulations then
// fan out as independent pooled tasks.
func deviceSweepTable(ctx context.Context, r *Runner) *Table {
	t := &Table{
		Title:  "LSTM deadline-met % vs device size (offered load scaled with CUs; 8 CUs = Table 2 = 8000 jobs/s)",
		Header: []string{"CUs", "RR", "SJF", "LAX", "LAX/RR"},
	}
	bench, err := workload.FindBenchmark("LSTM")
	if err != nil {
		panic(err)
	}
	cfgs := make([]cp.SystemConfig, len(scalingCUCounts))
	sets := make([]*workload.JobSet, len(scalingCUCounts))
	for i, cus := range scalingCUCounts {
		cfg := r.Cfg
		cfg.GPU.NumCUs = cus
		// Bandwidth scales with the memory system, which grows with the
		// chip: keep the per-CU ratio of the Table 2 machine.
		cfg.GPU.MemBandwidthDemand = r.Cfg.GPU.MemBandwidthDemand * float64(cus) / 8
		lib := workload.NewLibrary(cfg.GPU)
		rate := bench.JobsPerSecond(workload.HighRate) * cus / 8
		cfgs[i] = cfg
		sets[i] = bench.GenerateCustom(lib, rate, r.JobCount, r.Seed)
	}
	met := make([][]int, len(scalingCUCounts))
	for i := range met {
		met[i] = make([]int, len(deviceSweepSchedulers))
	}
	mustDo(ctx, r, len(scalingCUCounts)*len(deviceSweepSchedulers), func(ctx context.Context, i int) error {
		c, s := i/len(deviceSweepSchedulers), i%len(deviceSweepSchedulers)
		pol, err := sched.New(deviceSweepSchedulers[s])
		if err != nil {
			return err
		}
		sys := cp.NewSystem(cfgs[c], sets[c], pol)
		if err := sys.RunContext(ctx); err != nil {
			return err
		}
		for _, j := range sys.Jobs() {
			if j.MetDeadline() {
				met[c][s]++
			}
		}
		return nil
	})
	n := float64(r.JobCount)
	for c, cus := range scalingCUCounts {
		t.AddRow(fint(cus),
			f1(100*float64(met[c][0])/n),
			f1(100*float64(met[c][1])/n),
			f1(100*float64(met[c][2])/n),
			f2(metrics.Ratio(float64(met[c][2]), float64(met[c][0]))))
	}
	return t
}

// fleetGPUCounts are the scale-out points of the fleet study.
var fleetGPUCounts = []int{1, 2, 4}

// fleetTable scales out instead of up: the same overloaded LSTM trace
// routed across 1-4 Table 2 GPUs by a least-loaded front end. Each
// (scheduler, fleet size) cluster run is one pooled task over the shared
// trace.
func fleetTable(ctx context.Context, r *Runner) *Table {
	t := &Table{
		Title:  "Fleet scale-out: LSTM at 4x the high rate, least-loaded routing (% of jobs meeting deadline)",
		Header: []string{"Scheduler", "1 GPU", "2 GPUs", "4 GPUs"},
	}
	bench, err := workload.FindBenchmark("LSTM")
	if err != nil {
		panic(err)
	}
	set := bench.GenerateCustom(r.Lib, 4*bench.JobsPerSecond(workload.HighRate), r.JobCount, r.Seed)
	scheds := []string{"RR", "LAX"}
	fracs := make([][]float64, len(scheds))
	for i := range fracs {
		fracs[i] = make([]float64, len(fleetGPUCounts))
	}
	mustDo(ctx, r, len(scheds)*len(fleetGPUCounts), func(ctx context.Context, i int) error {
		s, g := i/len(fleetGPUCounts), i%len(fleetGPUCounts)
		if err := ctx.Err(); err != nil {
			return err
		}
		res, err := cluster.Run(cluster.Config{
			GPUs:      fleetGPUCounts[g],
			System:    r.Cfg,
			Routing:   cluster.RouteLeastLoaded,
			Scheduler: scheds[s],
		}, set)
		if err != nil {
			return err
		}
		fracs[s][g] = res.DeadlineFrac()
		return nil
	})
	for s, schedName := range scheds {
		row := []string{schedName}
		for g := range fleetGPUCounts {
			row = append(row, f1(100*fracs[s][g]))
		}
		t.AddRow(row...)
	}
	return t
}

// multiTenantSchedulers are the policies contrasted on the shared-GPU mix.
var multiTenantSchedulers = []string{"RR", "EDF", "PREMA", "LAX"}

// multiTenantTable interleaves every benchmark into one shared-GPU trace;
// each scheduler replays the same trace as an independent pooled task.
func multiTenantTable(ctx context.Context, r *Runner) *Table {
	t := &Table{
		Title:  "Multi-tenant: all 8 benchmarks sharing the GPU (per-class deadline-met)",
		Header: append([]string{"Scheduler"}, append(workload.BenchmarkNames(), "TOTAL")...),
	}
	set := buildMultiTenantTrace(r)
	type tenantRow struct {
		met   map[string]int
		count map[string]int
		total int
	}
	rows := make([]tenantRow, len(multiTenantSchedulers))
	mustDo(ctx, r, len(multiTenantSchedulers), func(ctx context.Context, i int) error {
		pol, err := sched.New(multiTenantSchedulers[i])
		if err != nil {
			return err
		}
		sys := cp.NewSystem(r.Cfg, set, pol)
		if err := sys.RunContext(ctx); err != nil {
			return err
		}
		row := tenantRow{met: map[string]int{}, count: map[string]int{}}
		for _, j := range sys.Jobs() {
			row.count[j.Job.Benchmark]++
			if j.MetDeadline() {
				row.met[j.Job.Benchmark]++
				row.total++
			}
		}
		rows[i] = row
		return nil
	})
	for i, schedName := range multiTenantSchedulers {
		row := []string{schedName}
		for _, b := range workload.BenchmarkNames() {
			row = append(row, fmt.Sprintf("%d/%d", rows[i].met[b], rows[i].count[b]))
		}
		row = append(row, fint(rows[i].total))
		t.AddRow(row...)
	}
	return t
}

// buildMultiTenantTrace merges per-benchmark Poisson streams, each at 1/8
// of its high rate, into one arrival-sorted trace of JobCount jobs.
func buildMultiTenantTrace(r *Runner) *workload.JobSet {
	perClass := r.JobCount / len(workload.Benchmarks())
	var jobs []*workload.Job
	for i, b := range workload.Benchmarks() {
		rate := b.JobsPerSecond(workload.HighRate) / 8
		if rate < 1 {
			rate = 1
		}
		sub := b.GenerateCustom(r.Lib, rate, perClass, r.Seed+int64(i))
		jobs = append(jobs, sub.Jobs...)
	}
	sort.SliceStable(jobs, func(a, b int) bool { return jobs[a].Arrival < jobs[b].Arrival })
	for i, j := range jobs {
		j.ID = i
	}
	return &workload.JobSet{Benchmark: "multi-tenant", Seed: r.Seed, Jobs: jobs}
}
