package harness

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"laxgpu/internal/workload"
	"laxgpu/internal/workload/scenario"
)

const harnessScenarioJSON = `{
  "format": "laxgpu-scenario",
  "version": 1,
  "name": "harness-test",
  "duration_us": 8000,
  "cohorts": [
    {"name": "a", "benchmark": "STEM", "deadline_us": 300,
     "phases": [{"duration_us": 8000, "rate": 5000}]},
    {"name": "b", "benchmark": "CUCKOO",
     "phases": [{"duration_us": 8000, "rate": 2000}]}
  ]
}
`

// TestInstallScenarioSweep: an installed scenario cell flows through the
// sweep engine like a benchmark cell, and parallel execution is
// byte-identical to serial.
func TestInstallScenarioSweep(t *testing.T) {
	ctx := context.Background()
	scheds := []string{"RR", "EDF", "LAX"}

	runAll := func(workers int) []string {
		r := NewRunner()
		r.Workers = workers
		r.Verify = true // checked runs must not change results either
		spec, err := scenario.Parse(strings.NewReader(harnessScenarioJSON))
		if err != nil {
			t.Fatal(err)
		}
		label, err := r.InstallScenario(spec, 0)
		if err != nil {
			t.Fatal(err)
		}
		var cells []Cell
		for _, s := range scheds {
			cells = append(cells, Cell{s, label, workload.ScenarioRate})
		}
		if err := r.Sweep(ctx, cells); err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, s := range scheds {
			sum, err := r.Run(s, label, workload.ScenarioRate)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, fmt.Sprintf("%+v", sum))
		}
		return out
	}

	serial := runAll(1)
	parallel := runAll(4)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("%s: parallel sweep diverged from serial:\n%s\nvs\n%s",
				scheds[i], serial[i], parallel[i])
		}
	}
}

// TestInstallScenarioSeedOverride: the override changes the installed trace;
// zero keeps the file's seed.
func TestInstallScenarioSeedOverride(t *testing.T) {
	r := NewRunner()
	spec, err := scenario.Parse(strings.NewReader(harnessScenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	label, err := r.InstallScenario(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	base, err := r.JobSet(label, workload.ScenarioRate)
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRunner()
	if _, err := r2.InstallScenario(spec, 77); err != nil {
		t.Fatal(err)
	}
	over, err := r2.JobSet(label, workload.ScenarioRate)
	if err != nil {
		t.Fatal(err)
	}
	if scenario.Fingerprint(base) == scenario.Fingerprint(over) {
		t.Fatal("seed override left the trace unchanged")
	}
	if base.Seed != spec.SeedOrDefault() || over.Seed != 77 {
		t.Fatalf("recorded seeds %d/%d", base.Seed, over.Seed)
	}
}
