package harness

import (
	"fmt"
	"math"

	"laxgpu/internal/metrics"
	"laxgpu/internal/workload"
)

// SeedStats aggregates one (scheduler, benchmark, rate) cell across
// independent arrival-trace seeds: the paper reports single-trace numbers;
// this extension quantifies how much of each result is trace luck.
type SeedStats struct {
	Scheduler string
	Benchmark string
	Rate      workload.Rate

	Seeds []int64

	// MetMean and MetStd summarize the deadline-met counts across seeds.
	MetMean float64
	MetStd  float64

	// Mets holds the per-seed counts, parallel to Seeds.
	Mets []int
}

// RelStd returns the coefficient of variation (σ/µ), 0 when the mean is 0.
func (s SeedStats) RelStd() float64 {
	if s.MetMean == 0 {
		return 0
	}
	return s.MetStd / s.MetMean
}

// MultiSeed runs the cell once per seed (fresh runners, so traces differ)
// and returns the cross-seed statistics.
func MultiSeed(base *Runner, schedName, benchName string, rate workload.Rate, seeds []int64) (SeedStats, error) {
	st := SeedStats{Scheduler: schedName, Benchmark: benchName, Rate: rate, Seeds: seeds}
	for _, seed := range seeds {
		r := NewRunner()
		r.Cfg = base.Cfg
		r.JobCount = base.JobCount
		r.Seed = seed
		sum, err := r.Run(schedName, benchName, rate)
		if err != nil {
			return SeedStats{}, err
		}
		st.Mets = append(st.Mets, sum.MetDeadline)
	}
	var sum, sq float64
	for _, m := range st.Mets {
		sum += float64(m)
	}
	st.MetMean = sum / float64(len(st.Mets))
	for _, m := range st.Mets {
		d := float64(m) - st.MetMean
		sq += d * d
	}
	if len(st.Mets) > 1 {
		st.MetStd = math.Sqrt(sq / float64(len(st.Mets)-1))
	}
	return st, nil
}

// defaultSeeds are the seeds the robustness experiment averages over.
var defaultSeeds = []int64{1, 2, 3, 4, 5}

// Seeds regenerates the headline comparison across independent arrival
// traces: geomean-normalized LAX advantage with cross-seed variation, so
// the reproduction's conclusions are demonstrably not one lucky trace.
func Seeds(r *Runner) *Report {
	t := &Table{
		Title: fmt.Sprintf("Deadline-met counts across %d arrival-trace seeds (high rate): mean ± stdev",
			len(defaultSeeds)),
		Header: append([]string{"Benchmark"}, "RR", "SJF", "LAX", "LAX/RR"),
	}
	var ratios []float64
	for _, bench := range workload.BenchmarkNames() {
		row := []string{bench}
		var means [3]float64
		for i, s := range []string{"RR", "SJF", "LAX"} {
			st, err := MultiSeed(r, s, bench, workload.HighRate, defaultSeeds)
			if err != nil {
				panic(err)
			}
			means[i] = st.MetMean
			row = append(row, fmt.Sprintf("%.1f±%.1f", st.MetMean, st.MetStd))
		}
		ratio := metrics.Ratio(means[2], means[0])
		ratios = append(ratios, ratio)
		row = append(row, f2(ratio))
		t.AddRow(row...)
	}
	return &Report{
		ID:     "seeds",
		Title:  "Cross-seed robustness of the headline result (extension beyond the paper's figures)",
		Tables: []*Table{t},
		Notes: []string{
			fmt.Sprintf("Geomean LAX/RR across benchmarks and %d seeds: %.2fx.", len(defaultSeeds), metrics.Geomean(ratios)),
			"Each seed draws fresh Poisson arrivals and sequence lengths; schedulers always share a seed's trace (paired).",
		},
	}
}
