package harness

import (
	"context"
	"fmt"
	"math"

	"laxgpu/internal/metrics"
	"laxgpu/internal/workload"
)

// SeedStats aggregates one (scheduler, benchmark, rate) cell across
// independent arrival-trace seeds: the paper reports single-trace numbers;
// this extension quantifies how much of each result is trace luck.
type SeedStats struct {
	Scheduler string
	Benchmark string
	Rate      workload.Rate

	Seeds []int64

	// MetMean and MetStd summarize the deadline-met counts across seeds.
	MetMean float64
	MetStd  float64

	// Mets holds the per-seed counts, parallel to Seeds.
	Mets []int
}

// RelStd returns the coefficient of variation (σ/µ), 0 when the mean is 0.
func (s SeedStats) RelStd() float64 {
	if s.MetMean == 0 {
		return 0
	}
	return s.MetStd / s.MetMean
}

// newSeedStats assembles the cross-seed statistics from per-seed counts.
func newSeedStats(schedName, benchName string, rate workload.Rate, seeds []int64, mets []int) SeedStats {
	st := SeedStats{Scheduler: schedName, Benchmark: benchName, Rate: rate, Seeds: seeds, Mets: mets}
	var sum, sq float64
	for _, m := range st.Mets {
		sum += float64(m)
	}
	st.MetMean = sum / float64(len(st.Mets))
	for _, m := range st.Mets {
		d := float64(m) - st.MetMean
		sq += d * d
	}
	if len(st.Mets) > 1 {
		st.MetStd = math.Sqrt(sq / float64(len(st.Mets)-1))
	}
	return st
}

// seedRunner clones the base runner's configuration at a different trace
// seed. Fresh runner, fresh cache: the memoization key does not include the
// seed.
func seedRunner(base *Runner, seed int64) *Runner {
	r := NewRunner()
	r.Cfg = base.Cfg
	r.JobCount = base.JobCount
	r.Seed = seed
	return r
}

// MultiSeed runs the cell once per seed (fresh runners, so traces differ)
// across the base runner's worker pool and returns the cross-seed
// statistics.
func MultiSeed(ctx context.Context, base *Runner, schedName, benchName string, rate workload.Rate, seeds []int64) (SeedStats, error) {
	mets := make([]int, len(seeds))
	err := base.pool().Do(ctx, len(seeds), func(ctx context.Context, i int) error {
		sum, err := seedRunner(base, seeds[i]).RunContext(ctx, schedName, benchName, rate)
		if err != nil {
			return err
		}
		mets[i] = sum.MetDeadline
		return nil
	})
	if err != nil {
		return SeedStats{}, err
	}
	return newSeedStats(schedName, benchName, rate, seeds, mets), nil
}

// defaultSeeds are the seeds the robustness experiment averages over.
var defaultSeeds = []int64{1, 2, 3, 4, 5}

// seedsSchedulers are the policies contrasted across seeds.
var seedsSchedulers = []string{"RR", "SJF", "LAX"}

// Seeds regenerates the headline comparison across independent arrival
// traces: geomean-normalized LAX advantage with cross-seed variation, so
// the reproduction's conclusions are demonstrably not one lucky trace. The
// whole benchmark x scheduler x seed cube fans out as one flat task set;
// statistics assemble from the indexed counts.
func Seeds(ctx context.Context, r *Runner) *Report {
	t := &Table{
		Title: fmt.Sprintf("Deadline-met counts across %d arrival-trace seeds (high rate): mean ± stdev",
			len(defaultSeeds)),
		Header: append([]string{"Benchmark"}, "RR", "SJF", "LAX", "LAX/RR"),
	}
	benches := workload.BenchmarkNames()
	nS, nK := len(seedsSchedulers), len(defaultSeeds)
	mets := make([]int, len(benches)*nS*nK)
	mustDo(ctx, r, len(mets), func(ctx context.Context, i int) error {
		b, s, k := i/(nS*nK), (i/nK)%nS, i%nK
		sum, err := seedRunner(r, defaultSeeds[k]).RunContext(ctx, seedsSchedulers[s], benches[b], workload.HighRate)
		if err != nil {
			return err
		}
		mets[i] = sum.MetDeadline
		return nil
	})
	var ratios []float64
	for b, bench := range benches {
		row := []string{bench}
		var means [3]float64
		for s, schedName := range seedsSchedulers {
			st := newSeedStats(schedName, bench, workload.HighRate, defaultSeeds,
				mets[(b*nS+s)*nK:(b*nS+s+1)*nK])
			means[s] = st.MetMean
			row = append(row, fmt.Sprintf("%.1f±%.1f", st.MetMean, st.MetStd))
		}
		ratio := metrics.Ratio(means[2], means[0])
		ratios = append(ratios, ratio)
		row = append(row, f2(ratio))
		t.AddRow(row...)
	}
	return &Report{
		ID:     "seeds",
		Title:  "Cross-seed robustness of the headline result (extension beyond the paper's figures)",
		Tables: []*Table{t},
		Notes: []string{
			fmt.Sprintf("Geomean LAX/RR across benchmarks and %d seeds: %.2fx.", len(defaultSeeds), metrics.Geomean(ratios)),
			"Each seed draws fresh Poisson arrivals and sequence lengths; schedulers always share a seed's trace (paired).",
		},
	}
}
