package harness

import (
	"strings"
	"testing"

	"laxgpu/internal/sched"
	"laxgpu/internal/workload"
)

// TestCheckedGridAllSchedulers runs every scheduler × benchmark × rate cell
// with the runtime invariant checker attached (Runner.Verify). Any violation
// of the verified invariants — workgroup conservation, monotone time,
// admission sums, laxity arithmetic, dispatch order, job accounting — fails
// the cell. This is the full-grid acceptance gate for internal/verify.
func TestCheckedGridAllSchedulers(t *testing.T) {
	for _, rate := range []workload.Rate{workload.LowRate, workload.MediumRate, workload.HighRate} {
		r := NewRunner()
		r.JobCount = 24
		r.Seed = 5
		r.Verify = true
		for _, s := range sched.Names() {
			for _, b := range workload.BenchmarkNames() {
				if _, err := r.Run(s, b, rate); err != nil {
					t.Errorf("%s/%s/%s: %v", s, b, rate, err)
				}
			}
		}
	}
}

// TestCheckedGridFaults runs the fault-injected path under the checker. The
// checker switches to its fault profile (stranded jobs legal, dispatch order
// unchecked) but still validates conservation and accounting — this grid is
// what caught the CPU-fallback probe omission in internal/cp/recovery.go.
func TestCheckedGridFaults(t *testing.T) {
	r := NewRunner()
	r.JobCount = 24
	r.Seed = 5
	r.Verify = true
	r.Faults = "hang=0.05,abort=0.05,retire=4@2ms,recover=on"
	for _, s := range []string{"LAX", "EDF", "RR", "BAY"} {
		for _, b := range workload.BenchmarkNames() {
			if _, err := r.Run(s, b, workload.HighRate); err != nil {
				t.Errorf("%s/%s: %v", s, b, err)
			}
		}
	}
}

// TestVerifyViolationSurfacesAsError pins the failure path: a run whose
// probe stream breaks an invariant must surface through Runner.Run as an
// error naming the violated rule, not silently return results.
func TestVerifyViolationSurfacesAsError(t *testing.T) {
	// There is no way to make a correct simulator violate its invariants on
	// demand, so this exercises the plumbing contract indirectly: the error
	// string produced by the checker wiring is "<cell>: invariant violation".
	// A clean run must NOT produce it.
	r := NewRunner()
	r.JobCount = 8
	r.Verify = true
	res, err := r.Run("LAX", "CUCKOO", workload.HighRate)
	if err != nil {
		if !strings.Contains(err.Error(), "invariant violation") {
			t.Fatalf("unexpected error shape: %v", err)
		}
		t.Fatalf("clean run violated an invariant: %v", err)
	}
	if res.TotalJobs == 0 {
		t.Fatal("verified run returned no results")
	}
}
