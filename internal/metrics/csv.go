package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// csvHeader is the column layout of WriteCSV.
var csvHeader = []string{
	"scheduler", "benchmark", "rate",
	"total_jobs", "met_deadline", "completed", "rejected", "cancelled",
	"deadline_frac", "throughput_jobs_per_s",
	"p99_latency_ms", "mean_latency_ms",
	"energy_per_success_mj", "useful_work_frac",
	"makespan_ms", "wgs_completed",
	"watchdog_kills", "aborts", "retries", "fallbacks", "retired_cus",
}

// WriteCSV renders summaries as CSV with a header row — the raw data behind
// every figure, for external plotting.
func WriteCSV(w io.Writer, summaries []Summary) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("metrics: csv header: %w", err)
	}
	for _, s := range summaries {
		row := []string{
			s.Scheduler, s.Benchmark, s.Rate,
			strconv.Itoa(s.TotalJobs), strconv.Itoa(s.MetDeadline),
			strconv.Itoa(s.Completed), strconv.Itoa(s.Rejected), strconv.Itoa(s.Cancelled),
			fmtFloat(s.DeadlineFrac()), fmtFloat(s.ThroughputJobsPerSec),
			fmtFloat(s.P99LatencyMs), fmtFloat(s.MeanLatencyMs),
			fmtFloat(s.EnergyPerSuccessMJ), fmtFloat(s.UsefulWorkFrac),
			fmtFloat(s.Makespan.Milliseconds()), strconv.Itoa(s.WGsCompleted),
			strconv.Itoa(s.WatchdogKills), strconv.Itoa(s.Aborts),
			strconv.Itoa(s.Retries), strconv.Itoa(s.Fallbacks), strconv.Itoa(s.RetiredCUs),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("metrics: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
