package metrics

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"laxgpu/internal/sim"
)

func TestWriteCSV(t *testing.T) {
	summaries := []Summary{
		{
			Scheduler: "LAX", Benchmark: "LSTM", Rate: "high",
			TotalJobs: 128, MetDeadline: 57, Completed: 59, Rejected: 69,
			Makespan: 30 * sim.Millisecond, ThroughputJobsPerSec: 1900,
			P99LatencyMs: 6.8, MeanLatencyMs: 4.2,
			EnergyPerSuccessMJ: 93.8, UsefulWorkFrac: 0.96, WGsCompleted: 20000,
		},
		{
			Scheduler: "RR", Benchmark: "IPV6", Rate: "low",
			TotalJobs: 128, MetDeadline: 120, Completed: 128,
			Makespan: 8 * sim.Millisecond,
		},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, summaries); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want header + 2", len(rows))
	}
	header := rows[0]
	if header[0] != "scheduler" || header[len(header)-1] != "retired_cus" {
		t.Fatalf("header wrong: %v", header)
	}
	for _, row := range rows[1:] {
		if len(row) != len(header) {
			t.Fatalf("row width %d != header %d", len(row), len(header))
		}
	}
	if rows[1][0] != "LAX" || rows[1][1] != "LSTM" {
		t.Fatalf("first row wrong: %v", rows[1])
	}
	if !strings.Contains(rows[1][8], "0.445") { // 57/128
		t.Fatalf("deadline_frac cell %q", rows[1][8])
	}
	if rows[2][4] != "120" {
		t.Fatalf("met_deadline cell %q", rows[2][4])
	}
}

func TestWriteCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimRight(buf.String(), "\n"), "\n") + 1
	if lines != 1 {
		t.Fatalf("empty CSV should be header only, got %d lines", lines)
	}
}
