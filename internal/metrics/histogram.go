package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-bin distribution summary used for latency analysis:
// the full shape behind Table 5's single p99 number.
type Histogram struct {
	// Edges are the bin boundaries (len = bins+1); bin i covers
	// [Edges[i], Edges[i+1]).
	Edges []float64

	// Counts holds the per-bin sample counts.
	Counts []int

	// N is the total sample count (including clamped outliers).
	N int

	Min, Max, MeanV float64
}

// NewHistogram builds a histogram with the given number of equal-width bins
// spanning the data. Values outside [min,max] cannot occur by construction;
// an empty input yields an empty histogram.
func NewHistogram(values []float64, bins int) *Histogram {
	if bins <= 0 {
		bins = 10
	}
	h := &Histogram{}
	if len(values) == 0 {
		return h
	}
	h.N = len(values)
	h.Min, h.Max = values[0], values[0]
	var sum float64
	for _, v := range values {
		if v < h.Min {
			h.Min = v
		}
		if v > h.Max {
			h.Max = v
		}
		sum += v
	}
	h.MeanV = sum / float64(len(values))

	span := h.Max - h.Min
	if span == 0 {
		span = 1
	}
	h.Edges = make([]float64, bins+1)
	for i := range h.Edges {
		h.Edges[i] = h.Min + span*float64(i)/float64(bins)
	}
	h.Counts = make([]int, bins)
	for _, v := range values {
		idx := int((v - h.Min) / span * float64(bins))
		if idx >= bins {
			idx = bins - 1
		}
		if idx < 0 {
			idx = 0
		}
		h.Counts[idx]++
	}
	return h
}

// Render writes an ASCII bar chart of the distribution.
func (h *Histogram) Render(w io.Writer, width int) {
	if width <= 0 {
		width = 50
	}
	if h.N == 0 {
		fmt.Fprintln(w, "(no samples)")
		return
	}
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range h.Counts {
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		fmt.Fprintf(w, "%10.3f–%-10.3f %6d %s\n",
			h.Edges[i], h.Edges[i+1], c, strings.Repeat("#", bar))
	}
	fmt.Fprintf(w, "n=%d min=%.3f mean=%.3f max=%.3f\n", h.N, h.Min, h.MeanV, h.Max)
}

// CDF computes the empirical cumulative distribution at the requested
// quantile points, returning the value at each quantile. Quantiles are in
// [0,1].
func CDF(values []float64, quantiles []float64) []float64 {
	out := make([]float64, len(quantiles))
	for i, q := range quantiles {
		out[i] = Percentile(values, q*100)
	}
	return out
}

// TailRatio returns p99/p50 — a standard dispersion measure for service
// latency (1.0 = perfectly uniform service; large values = heavy tail).
func TailRatio(values []float64) float64 {
	p50 := Percentile(values, 50)
	if p50 == 0 {
		return 0
	}
	return Percentile(values, 99) / p50
}

// Summary statistics helpers for cross-run aggregation.

// Stdev returns the sample standard deviation (0 for fewer than 2 values).
func Stdev(values []float64) float64 {
	if len(values) < 2 {
		return 0
	}
	m := Mean(values)
	var sq float64
	for _, v := range values {
		d := v - m
		sq += d * d
	}
	return math.Sqrt(sq / float64(len(values)-1))
}

// Median returns the 50th percentile.
func Median(values []float64) float64 { return Percentile(values, 50) }

// MinMax returns the extrema (zeros for empty input).
func MinMax(values []float64) (min, max float64) {
	if len(values) == 0 {
		return 0, 0
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	return sorted[0], sorted[len(sorted)-1]
}
