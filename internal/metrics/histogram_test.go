package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	values := []float64{1, 2, 2, 3, 3, 3, 4, 4, 4, 4}
	h := NewHistogram(values, 3)
	if h.N != 10 {
		t.Fatalf("N = %d", h.N)
	}
	if h.Min != 1 || h.Max != 4 {
		t.Fatalf("range [%v,%v]", h.Min, h.Max)
	}
	if math.Abs(h.MeanV-3.0) > 1e-9 {
		t.Fatalf("mean %v", h.MeanV)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 10 {
		t.Fatalf("bin counts sum to %d", total)
	}
	if len(h.Edges) != 4 {
		t.Fatalf("%d edges for 3 bins", len(h.Edges))
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	if h := NewHistogram(nil, 5); h.N != 0 {
		t.Fatal("empty histogram has samples")
	}
	// Constant data: everything in one bin, no division by zero.
	h := NewHistogram([]float64{7, 7, 7}, 4)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("constant data lost samples: %d", total)
	}
	// Non-positive bin count falls back to a sane default.
	if h := NewHistogram([]float64{1, 2}, 0); len(h.Counts) == 0 {
		t.Fatal("zero-bin request produced no bins")
	}
}

// Property: every sample lands in exactly one bin.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				vals = append(vals, v)
			}
		}
		h := NewHistogram(vals, 7)
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		return total == len(vals) && h.N == len(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramRender(t *testing.T) {
	var buf bytes.Buffer
	NewHistogram([]float64{1, 1, 2, 5}, 2).Render(&buf, 20)
	out := buf.String()
	if !strings.Contains(out, "#") || !strings.Contains(out, "n=4") {
		t.Fatalf("render output wrong:\n%s", out)
	}
	buf.Reset()
	NewHistogram(nil, 2).Render(&buf, 20)
	if !strings.Contains(buf.String(), "no samples") {
		t.Fatal("empty render wrong")
	}
}

func TestCDF(t *testing.T) {
	values := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	got := CDF(values, []float64{0, 0.5, 1})
	if got[0] != 1 || got[2] != 10 {
		t.Fatalf("CDF extremes: %v", got)
	}
	if got[1] < 5 || got[1] > 6 {
		t.Fatalf("CDF median: %v", got[1])
	}
}

func TestTailRatio(t *testing.T) {
	uniform := []float64{5, 5, 5, 5}
	if r := TailRatio(uniform); r != 1 {
		t.Fatalf("uniform tail ratio %v", r)
	}
	var heavy []float64
	for i := 0; i < 95; i++ {
		heavy = append(heavy, 1)
	}
	for i := 0; i < 5; i++ {
		heavy = append(heavy, 100)
	}
	if r := TailRatio(heavy); r < 10 {
		t.Fatalf("heavy tail ratio %v, want large", r)
	}
	if TailRatio([]float64{0, 0}) != 0 {
		t.Fatal("zero-median tail ratio should be 0")
	}
}

func TestStdevMedianMinMax(t *testing.T) {
	values := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if s := Stdev(values); math.Abs(s-2.138) > 0.01 {
		t.Fatalf("stdev %v", s)
	}
	if Stdev([]float64{1}) != 0 {
		t.Fatal("single-sample stdev")
	}
	if m := Median(values); m < 4 || m > 5 {
		t.Fatalf("median %v", m)
	}
	min, max := MinMax(values)
	if min != 2 || max != 9 {
		t.Fatalf("minmax %v %v", min, max)
	}
	if a, b := MinMax(nil); a != 0 || b != 0 {
		t.Fatal("empty minmax")
	}
	// MinMax must not mutate input.
	in := []float64{3, 1, 2}
	MinMax(in)
	if in[0] != 3 {
		t.Fatal("MinMax mutated input")
	}
}
