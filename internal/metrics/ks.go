package metrics

import (
	"math"
	"sort"
)

// KSStatistic computes the one-sample Kolmogorov–Smirnov statistic: the
// maximum absolute difference between the empirical CDF of the samples and
// the reference CDF. Used to validate that generated arrival processes
// actually follow their nominal distributions (the paper's evaluation
// hinges on Poisson arrivals, §5.3).
func KSStatistic(samples []float64, cdf func(float64) float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var d float64
	for i, x := range sorted {
		f := cdf(x)
		lo := float64(i) / n
		hi := float64(i+1) / n
		if diff := math.Abs(f - lo); diff > d {
			d = diff
		}
		if diff := math.Abs(f - hi); diff > d {
			d = diff
		}
	}
	return d
}

// KSCriticalValue returns the approximate critical KS statistic at the 1%
// significance level for n samples (asymptotic formula, valid for n ≳ 35):
// samples with a statistic above it are inconsistent with the reference
// distribution.
func KSCriticalValue(n int) float64 {
	if n <= 0 {
		return 1
	}
	return 1.63 / math.Sqrt(float64(n))
}

// ExpCDF returns the CDF of the exponential distribution with the given
// mean.
func ExpCDF(mean float64) func(float64) float64 {
	return func(x float64) float64 {
		if x <= 0 || mean <= 0 {
			return 0
		}
		return 1 - math.Exp(-x/mean)
	}
}

// UniformCDF returns the CDF of the uniform distribution on [0, max].
func UniformCDF(max float64) func(float64) float64 {
	return func(x float64) float64 {
		switch {
		case x <= 0 || max <= 0:
			return 0
		case x >= max:
			return 1
		default:
			return x / max
		}
	}
}
