package metrics

import (
	"testing"

	"laxgpu/internal/gpu"
	"laxgpu/internal/sim"
	"laxgpu/internal/workload"
)

func TestKSAcceptsMatchingDistribution(t *testing.T) {
	rng := sim.NewRNG(3)
	const n = 5000
	mean := 125000.0 // ns
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = float64(rng.Exp(sim.Time(mean)))
	}
	d := KSStatistic(samples, ExpCDF(mean))
	if crit := KSCriticalValue(n); d > crit {
		t.Fatalf("exponential samples rejected: D=%.4f > %.4f", d, crit)
	}
}

func TestKSRejectsWrongDistribution(t *testing.T) {
	rng := sim.NewRNG(4)
	const n = 5000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = rng.Float64() * 1000 // uniform, not exponential
	}
	d := KSStatistic(samples, ExpCDF(500))
	if crit := KSCriticalValue(n); d <= crit {
		t.Fatalf("uniform samples accepted as exponential: D=%.4f <= %.4f", d, crit)
	}
	// And accepted against their true distribution.
	if d := KSStatistic(samples, UniformCDF(1000)); d > KSCriticalValue(n) {
		t.Fatalf("uniform samples rejected as uniform: D=%.4f", d)
	}
}

// The arrival processes the whole evaluation rests on really are Poisson:
// inter-arrival gaps pass a KS test against the exponential distribution at
// the configured rate.
func TestGeneratedArrivalsAreExponential(t *testing.T) {
	lib := workload.NewLibrary(gpu.DefaultConfig())
	bench, err := workload.FindBenchmark("STEM")
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	set := bench.Generate(lib, workload.HighRate, n, 9)
	var gaps []float64
	for i := 1; i < set.Len(); i++ {
		gaps = append(gaps, float64(set.Jobs[i].Arrival-set.Jobs[i-1].Arrival))
	}
	mean := float64(sim.Second) / float64(bench.JobsPerSecond(workload.HighRate))
	d := KSStatistic(gaps, ExpCDF(mean))
	if crit := KSCriticalValue(len(gaps)); d > crit {
		t.Fatalf("arrival gaps not exponential: D=%.4f > %.4f", d, crit)
	}
	// Bursty arrivals at the same mean must FAIL the same test (that is
	// their entire point).
	bursty := bench.GenerateBursty(lib, bench.JobsPerSecond(workload.HighRate), 8, 12, n, 9)
	gaps = gaps[:0]
	for i := 1; i < bursty.Len(); i++ {
		gaps = append(gaps, float64(bursty.Jobs[i].Arrival-bursty.Jobs[i-1].Arrival))
	}
	if d := KSStatistic(gaps, ExpCDF(mean)); d <= KSCriticalValue(len(gaps)) {
		t.Fatalf("bursty gaps indistinguishable from Poisson: D=%.4f", d)
	}
}

func TestKSEdgeCases(t *testing.T) {
	if KSStatistic(nil, ExpCDF(1)) != 0 {
		t.Fatal("empty sample KS should be 0")
	}
	if KSCriticalValue(0) != 1 {
		t.Fatal("degenerate critical value")
	}
	if ExpCDF(1)(-5) != 0 || ExpCDF(0)(5) != 0 {
		t.Fatal("ExpCDF edge cases")
	}
	if UniformCDF(10)(-1) != 0 || UniformCDF(10)(20) != 1 || UniformCDF(0)(1) != 0 {
		t.Fatal("UniformCDF edge cases")
	}
}
