// Package metrics computes the evaluation statistics the paper reports:
// jobs completed by deadline, successful-job throughput, 99-percentile
// latency, energy per successful job, and the wasted-work fraction of
// Figure 9 — plus the generic aggregates (percentile, geometric mean) used
// across figures.
package metrics

import (
	"math"
	"sort"
)

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of values using
// nearest-rank interpolation. It returns 0 for an empty slice. The input is
// not modified.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Geomean returns the geometric mean of strictly positive values. Zeros and
// negatives are clamped to a small epsilon so a single zero (e.g. BAY
// completing no IPV6 jobs) does not annihilate the aggregate — the paper's
// geomean columns behave the same way.
func Geomean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	const eps = 1e-3
	var sum float64
	for _, v := range values {
		if v < eps {
			v = eps
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(values)))
}

// Ratio returns a/b, or 0 when b is 0 (used when normalizing to a baseline
// that completed nothing).
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
