package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"laxgpu/internal/cp"
	"laxgpu/internal/gpu"
	"laxgpu/internal/sim"
	"laxgpu/internal/workload"
)

func TestPercentile(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := Percentile(vals, c.p); got != c.want {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{0, 10}, 99); math.Abs(got-9.9) > 1e-9 {
		t.Errorf("P99 of {0,10} = %v, want 9.9", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile must be 0")
	}
	if Percentile([]float64{7}, 99) != 7 {
		t.Error("single value percentile must be the value")
	}
	// Out-of-range p clamps.
	if Percentile(vals, -5) != 1 || Percentile(vals, 150) != 5 {
		t.Error("p clamping failed")
	}
	// Input must not be mutated.
	in := []float64{3, 1, 2}
	Percentile(in, 50)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

// Property: percentile is monotonic in p and bounded by min/max.
func TestPercentileProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		pa, pb := float64(a%101), float64(b%101)
		va, vb := Percentile(raw, pa), Percentile(raw, pb)
		if pa <= pb && va > vb+1e-9 {
			return false
		}
		sorted := make([]float64, len(raw))
		copy(sorted, raw)
		sort.Float64s(sorted)
		return va >= sorted[0]-1e-9 && va <= sorted[len(sorted)-1]+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("empty mean must be 0")
	}
}

func TestGeomean(t *testing.T) {
	if got := Geomean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("geomean(2,8) = %v, want 4", got)
	}
	if Geomean(nil) != 0 {
		t.Error("empty geomean must be 0")
	}
	// Zeros are clamped, not annihilating.
	if got := Geomean([]float64{0, 4}); got <= 0 {
		t.Errorf("geomean with zero = %v, want positive", got)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Error("ratio wrong")
	}
	if Ratio(5, 0) != 0 {
		t.Error("zero denominator must yield 0")
	}
}

// acceptAll is a minimal policy for Summarize tests.
type acceptAll struct{ reject map[int]bool }

func (p *acceptAll) Name() string            { return "test" }
func (p *acceptAll) Attach(*cp.System)       {}
func (p *acceptAll) Admit(j *cp.JobRun) bool { return !p.reject[j.Job.ID] }
func (p *acceptAll) Reprioritize()           {}
func (p *acceptAll) Interval() sim.Time      { return 0 }
func (p *acceptAll) Overheads() cp.Overheads { return cp.Overheads{} }

func TestSummarize(t *testing.T) {
	desc := &gpu.KernelDesc{Name: "k", NumWGs: 2, ThreadsPerWG: 64,
		BaseWGTime: 10 * sim.Microsecond, InstPerThread: 10}
	set := &workload.JobSet{Benchmark: "syn"}
	// Job 0 meets its deadline, job 1 misses (tight deadline), job 2 is
	// rejected.
	set.Jobs = []*workload.Job{
		{ID: 0, Arrival: 0, Deadline: sim.Millisecond, Kernels: []*gpu.KernelDesc{desc}},
		{ID: 1, Arrival: 0, Deadline: 5 * sim.Microsecond, Kernels: []*gpu.KernelDesc{desc}},
		{ID: 2, Arrival: 0, Deadline: sim.Millisecond, Kernels: []*gpu.KernelDesc{desc}},
	}
	sys := cp.NewSystem(cp.DefaultSystemConfig(), set, &acceptAll{reject: map[int]bool{2: true}})
	sys.Run()
	s := Summarize(sys, "test", "syn", "high")

	if s.TotalJobs != 3 || s.Completed != 2 || s.Rejected != 1 || s.Cancelled != 0 {
		t.Fatalf("counts: %+v", s)
	}
	if s.MetDeadline != 1 {
		t.Fatalf("met = %d, want 1", s.MetDeadline)
	}
	if s.WGsCompleted != 4 {
		t.Fatalf("WGs = %d, want 4", s.WGsCompleted)
	}
	if s.UsefulWorkFrac != 0.5 {
		t.Fatalf("useful frac = %v, want 0.5", s.UsefulWorkFrac)
	}
	if s.WastedWorkFrac() != 0.5 {
		t.Fatalf("wasted frac = %v", s.WastedWorkFrac())
	}
	if s.Makespan <= 0 || s.ThroughputJobsPerSec <= 0 {
		t.Fatalf("makespan/throughput: %+v", s)
	}
	if s.P99LatencyMs <= 0 || s.MeanLatencyMs <= 0 {
		t.Fatalf("latency: %+v", s)
	}
	if math.IsInf(s.EnergyPerSuccessMJ, 1) || s.EnergyPerSuccessMJ <= 0 {
		t.Fatalf("energy: %v", s.EnergyPerSuccessMJ)
	}
	if got := s.DeadlineFrac(); math.Abs(got-1.0/3) > 1e-9 {
		t.Fatalf("deadline frac = %v", got)
	}
}

func TestSummarizeNoSuccess(t *testing.T) {
	desc := &gpu.KernelDesc{Name: "k", NumWGs: 1, ThreadsPerWG: 64,
		BaseWGTime: 100 * sim.Microsecond, InstPerThread: 10}
	set := &workload.JobSet{Benchmark: "syn"}
	set.Jobs = []*workload.Job{
		{ID: 0, Arrival: 0, Deadline: sim.Microsecond, Kernels: []*gpu.KernelDesc{desc}},
	}
	sys := cp.NewSystem(cp.DefaultSystemConfig(), set, &acceptAll{})
	sys.Run()
	s := Summarize(sys, "t", "syn", "low")
	if s.MetDeadline != 0 {
		t.Fatal("impossible deadline met")
	}
	if !math.IsInf(s.EnergyPerSuccessMJ, 1) {
		t.Fatalf("energy per success with zero successes = %v, want +Inf", s.EnergyPerSuccessMJ)
	}
	if s.ThroughputJobsPerSec != 0 {
		t.Fatalf("throughput = %v, want 0", s.ThroughputJobsPerSec)
	}
	if s.UsefulWorkFrac != 0 {
		t.Fatalf("useful frac = %v, want 0", s.UsefulWorkFrac)
	}
}

func TestSummaryZeroJobs(t *testing.T) {
	var s Summary
	if s.DeadlineFrac() != 0 {
		t.Fatal("zero-job deadline frac must be 0")
	}
}
