package metrics

import (
	"math"

	"laxgpu/internal/cp"
	"laxgpu/internal/sim"
)

// Summary aggregates one simulation run: the row a scheduler contributes to
// the paper's figures and to Table 5 for one (benchmark, rate) cell.
type Summary struct {
	Scheduler string
	Benchmark string
	Rate      string

	TotalJobs   int
	Completed   int // ran to completion (regardless of deadline)
	MetDeadline int // "successful" jobs
	Rejected    int // refused by admission control
	Cancelled   int // preempted and dropped mid-flight

	// Makespan is the completion time of the last finished job.
	Makespan sim.Time

	// ThroughputJobsPerSec is successful jobs per second of makespan
	// (Table 5a).
	ThroughputJobsPerSec float64

	// P99LatencyMs is the 99-percentile of completed-job latency in
	// milliseconds (Table 5b).
	P99LatencyMs float64

	// MeanLatencyMs is the mean completed-job latency.
	MeanLatencyMs float64

	// EnergyPerSuccessMJ is total energy over successful jobs in mJ
	// (Table 5c); +Inf when no job succeeded.
	EnergyPerSuccessMJ float64

	// UsefulWorkFrac is Figure 9's metric: the fraction of completed WGs
	// that belong to jobs that met their deadline.
	UsefulWorkFrac float64

	// WGsCompleted is the total workgroups executed.
	WGsCompleted int

	// Recovery counters (all zero on a healthy run without fault
	// injection): watchdog kills, transient aborts observed, kernel
	// retries issued, jobs completed on the CPU fallback path, and CUs
	// retired by the end of the run.
	WatchdogKills int
	Aborts        int
	Retries       int
	Fallbacks     int
	RetiredCUs    int
}

// WastedWorkFrac is the complement of UsefulWorkFrac.
func (s Summary) WastedWorkFrac() float64 { return 1 - s.UsefulWorkFrac }

// DeadlineFrac is the fraction of offered jobs that met their deadline.
func (s Summary) DeadlineFrac() float64 {
	if s.TotalJobs == 0 {
		return 0
	}
	return float64(s.MetDeadline) / float64(s.TotalJobs)
}

// Summarize computes the Summary for a finished run.
func Summarize(sys *cp.System, scheduler, benchmark, rate string) Summary {
	s := Summary{
		Scheduler: scheduler,
		Benchmark: benchmark,
		Rate:      rate,
		TotalJobs: len(sys.Jobs()),
	}
	var latencies []float64
	usefulWGs := 0
	for _, j := range sys.Jobs() {
		switch {
		case j.Rejected():
			s.Rejected++
			continue
		case j.Cancelled():
			// Dropped mid-flight: its executed WGs are pure waste.
			s.Cancelled++
			s.WGsCompleted += j.WGsCompleted()
			continue
		case !j.Done():
			continue
		}
		s.Completed++
		s.WGsCompleted += j.WGsCompleted()
		if j.FinishTime > s.Makespan {
			s.Makespan = j.FinishTime
		}
		latencies = append(latencies, j.Latency().Milliseconds())
		if j.MetDeadline() {
			s.MetDeadline++
			usefulWGs += j.WGsCompleted()
		}
	}

	if s.Makespan > 0 {
		s.ThroughputJobsPerSec = float64(s.MetDeadline) / s.Makespan.Seconds()
	}
	s.P99LatencyMs = Percentile(latencies, 99)
	s.MeanLatencyMs = Mean(latencies)
	if s.WGsCompleted > 0 {
		s.UsefulWorkFrac = float64(usefulWGs) / float64(s.WGsCompleted)
	}

	rec := sys.Recovery()
	s.WatchdogKills = rec.WatchdogKills
	s.Aborts = rec.Aborts
	s.Retries = rec.Retries
	s.Fallbacks = rec.Fallbacks
	s.RetiredCUs = rec.RetiredCUs

	cfg := sys.Device().Config()
	totalMJ := sys.Device().Energy().TotalMillijoules(s.Makespan, cfg.StaticPowerWatts)
	if s.MetDeadline > 0 {
		s.EnergyPerSuccessMJ = totalMJ / float64(s.MetDeadline)
	} else {
		s.EnergyPerSuccessMJ = math.Inf(1)
	}
	return s
}
