package metrics

import (
	"fmt"

	"laxgpu/internal/cp"
	"laxgpu/internal/sim"
)

// MissKind classifies why a job failed to meet its deadline — the
// diagnostic behind the schedulers' aggregate numbers. A queue-dominated
// miss indicts admission/ordering; a contention-dominated miss indicts
// co-scheduling; rejected and cancelled misses are deliberate policy
// decisions.
type MissKind int

const (
	// MissRejected: admission control refused the job.
	MissRejected MissKind = iota
	// MissCancelled: the job was preempted and dropped mid-flight.
	MissCancelled
	// MissFaulted: recovery gave up on the GPU and completed the job on
	// the CPU fallback path — it finished, but the fault chain (hangs,
	// aborts, watchdog kills) cost it the deadline.
	MissFaulted
	// MissStarved: the job completed (late) without ever being dispatched
	// before its deadline passed, or never ran at all before finishing
	// late — it waited out its entire budget.
	MissStarved
	// MissQueued: the job ran, but spent more of its budget waiting for
	// its first workgroup than executing.
	MissQueued
	// MissContended: the job started promptly but executed too slowly
	// (co-runner contention or sheer size).
	MissContended
)

func (k MissKind) String() string {
	switch k {
	case MissRejected:
		return "rejected"
	case MissCancelled:
		return "cancelled"
	case MissFaulted:
		return "faulted"
	case MissStarved:
		return "starved"
	case MissQueued:
		return "queued"
	case MissContended:
		return "contended"
	default:
		return "unknown"
	}
}

// ParseMissKind inverts String for the six taxonomy names (it never
// accepts "unknown": that is the display fallback for a corrupt value, not
// a member of the taxonomy).
func ParseMissKind(s string) (MissKind, error) {
	for _, k := range MissKinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("metrics: unknown miss kind %q", s)
}

// MarshalJSON encodes the kind as its taxonomy name, so exported
// breakdowns read "queued" rather than an opaque ordinal that would shift
// if the enumeration were ever reordered.
func (k MissKind) MarshalJSON() ([]byte, error) {
	s := k.String()
	if s == "unknown" {
		return nil, fmt.Errorf("metrics: cannot marshal invalid MissKind(%d)", int(k))
	}
	return []byte(`"` + s + `"`), nil
}

// UnmarshalJSON decodes a taxonomy name produced by MarshalJSON.
func (k *MissKind) UnmarshalJSON(data []byte) error {
	if len(data) < 2 || data[0] != '"' || data[len(data)-1] != '"' {
		return fmt.Errorf("metrics: miss kind must be a JSON string, got %s", data)
	}
	parsed, err := ParseMissKind(string(data[1 : len(data)-1]))
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// MissKinds enumerates the taxonomy in display order.
func MissKinds() []MissKind {
	return []MissKind{MissRejected, MissCancelled, MissFaulted, MissStarved, MissQueued, MissContended}
}

// ClassifyMiss returns the miss kind for a job that did not meet its
// deadline. It must only be called for such jobs (met-deadline jobs have no
// miss kind).
func ClassifyMiss(j *cp.JobRun) MissKind {
	switch {
	case j.Rejected():
		return MissRejected
	case j.Cancelled():
		return MissCancelled
	case j.FellBack:
		return MissFaulted
	case j.FirstDispatch < 0 || j.FirstDispatch > j.Job.AbsoluteDeadline():
		return MissStarved
	}
	wait := j.FirstDispatch - j.SubmitTime
	exec := j.FinishTime - j.FirstDispatch
	if wait > exec {
		return MissQueued
	}
	return MissContended
}

// MissBreakdown tallies the misses of a finished run by kind.
func MissBreakdown(sys *cp.System) map[MissKind]int {
	out := make(map[MissKind]int)
	for _, j := range sys.Jobs() {
		if j.MetDeadline() {
			continue
		}
		out[ClassifyMiss(j)]++
	}
	return out
}

// WaitAndExec returns a completed job's decomposed latency: time queued
// before its first workgroup and time from first workgroup to completion.
// Zeroes for jobs that never ran.
func WaitAndExec(j *cp.JobRun) (wait, exec sim.Time) {
	if j.FirstDispatch < 0 || !j.Done() {
		return 0, 0
	}
	return j.FirstDispatch - j.SubmitTime, j.FinishTime - j.FirstDispatch
}
