package metrics

import (
	"encoding/json"
	"testing"

	"laxgpu/internal/cp"
	"laxgpu/internal/gpu"
	"laxgpu/internal/sim"
	"laxgpu/internal/workload"
)

// rejectFirst rejects job 0, admits the rest.
type rejectFirst struct{}

func (rejectFirst) Name() string            { return "t" }
func (rejectFirst) Attach(*cp.System)       {}
func (rejectFirst) Admit(j *cp.JobRun) bool { return j.Job.ID != 0 }
func (rejectFirst) Reprioritize()           {}
func (rejectFirst) Interval() sim.Time      { return 0 }
func (rejectFirst) Overheads() cp.Overheads { return cp.Overheads{} }

func TestClassifyMissKinds(t *testing.T) {
	// One CU so jobs serialize: job 1 runs long (contended/size miss),
	// job 2 queues behind it (queued miss), job 0 is rejected.
	cfg := cp.DefaultSystemConfig()
	cfg.GPU.NumCUs = 1
	long := &gpu.KernelDesc{Name: "long", NumWGs: 1, ThreadsPerWG: 2560,
		BaseWGTime: 500 * sim.Microsecond, InstPerThread: 1}
	quick := &gpu.KernelDesc{Name: "quick", NumWGs: 1, ThreadsPerWG: 2560,
		BaseWGTime: 100 * sim.Microsecond, InstPerThread: 1}
	set := &workload.JobSet{Benchmark: "syn", Jobs: []*workload.Job{
		{ID: 0, Arrival: 0, Deadline: sim.Millisecond, Kernels: []*gpu.KernelDesc{quick}},
		// Starts immediately, executes past its own deadline.
		{ID: 1, Arrival: 0, Deadline: 300 * sim.Microsecond, Kernels: []*gpu.KernelDesc{long}},
		// Waits ~500µs behind job 1 (dispatching just before its 550µs
		// deadline), then runs 100µs: wait >> exec → queued miss.
		{ID: 2, Arrival: 0, Deadline: 550 * sim.Microsecond, Kernels: []*gpu.KernelDesc{quick}},
	}}
	sys := cp.NewSystem(cfg, set, rejectFirst{})
	sys.Run()

	if got := ClassifyMiss(sys.Job(0)); got != MissRejected {
		t.Fatalf("job 0: %v, want rejected", got)
	}
	if got := ClassifyMiss(sys.Job(1)); got != MissContended {
		t.Fatalf("job 1: %v, want contended", got)
	}
	if got := ClassifyMiss(sys.Job(2)); got != MissQueued {
		t.Fatalf("job 2: %v, want queued", got)
	}

	breakdown := MissBreakdown(sys)
	total := 0
	for _, n := range breakdown {
		total += n
	}
	if total != 3 {
		t.Fatalf("breakdown counts %d misses, want 3: %v", total, breakdown)
	}

	wait, exec := WaitAndExec(sys.Job(2))
	if wait <= exec {
		t.Fatalf("job 2 wait %v <= exec %v", wait, exec)
	}
	if w, e := WaitAndExec(sys.Job(0)); w != 0 || e != 0 {
		t.Fatal("rejected job has wait/exec")
	}
}

func TestClassifyMissStarved(t *testing.T) {
	// Job 1's first dispatch lands after its deadline entirely.
	cfg := cp.DefaultSystemConfig()
	cfg.GPU.NumCUs = 1
	long := &gpu.KernelDesc{Name: "long", NumWGs: 1, ThreadsPerWG: 2560,
		BaseWGTime: sim.Millisecond, InstPerThread: 1}
	quick := &gpu.KernelDesc{Name: "quick", NumWGs: 1, ThreadsPerWG: 2560,
		BaseWGTime: 10 * sim.Microsecond, InstPerThread: 1}
	set := &workload.JobSet{Benchmark: "syn", Jobs: []*workload.Job{
		{ID: 0, Arrival: 0, Deadline: 10 * sim.Millisecond, Kernels: []*gpu.KernelDesc{long}},
		{ID: 1, Arrival: 0, Deadline: 200 * sim.Microsecond, Kernels: []*gpu.KernelDesc{quick}},
	}}
	sys := cp.NewSystem(cfg, set, rejectFirst{})
	// rejectFirst rejects ID 0? No — we want job 0 admitted here. Use a
	// fresh accept-all policy instead.
	sys = cp.NewSystem(cfg, set, acceptAllPolicy{})
	sys.Run()
	if got := ClassifyMiss(sys.Job(1)); got != MissStarved {
		t.Fatalf("job 1: %v, want starved (first dispatch at %v, deadline %v)",
			got, sys.Job(1).FirstDispatch, sys.Job(1).Job.AbsoluteDeadline())
	}
}

type acceptAllPolicy struct{}

func (acceptAllPolicy) Name() string            { return "t" }
func (acceptAllPolicy) Attach(*cp.System)       {}
func (acceptAllPolicy) Admit(*cp.JobRun) bool   { return true }
func (acceptAllPolicy) Reprioritize()           {}
func (acceptAllPolicy) Interval() sim.Time      { return 0 }
func (acceptAllPolicy) Overheads() cp.Overheads { return cp.Overheads{} }

func TestMissKindStrings(t *testing.T) {
	want := map[MissKind]string{
		MissRejected: "rejected", MissCancelled: "cancelled", MissFaulted: "faulted",
		MissStarved: "starved", MissQueued: "queued", MissContended: "contended",
		MissKind(99): "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d: %q", int(k), k.String())
		}
	}
	if len(MissKinds()) != 6 {
		t.Fatal("MissKinds enumeration wrong")
	}
}

// TestMissKindJSONRoundTrip pins the JSON wire form of every taxonomy
// member: marshal → name string → unmarshal must be the identity, and both
// ParseMissKind and UnmarshalJSON must reject names outside the taxonomy.
func TestMissKindJSONRoundTrip(t *testing.T) {
	for _, k := range MissKinds() {
		data, err := json.Marshal(k)
		if err != nil {
			t.Fatalf("%v: marshal: %v", k, err)
		}
		if want := `"` + k.String() + `"`; string(data) != want {
			t.Errorf("%v marshals to %s, want %s", k, data, want)
		}
		var back MissKind
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%v: unmarshal: %v", k, err)
		}
		if back != k {
			t.Errorf("round trip %v -> %s -> %v", k, data, back)
		}
		parsed, err := ParseMissKind(k.String())
		if err != nil || parsed != k {
			t.Errorf("ParseMissKind(%q) = %v, %v", k.String(), parsed, err)
		}
	}
	if _, err := json.Marshal(MissKind(99)); err == nil {
		t.Error("marshalling an invalid MissKind should fail")
	}
	var k MissKind
	if err := json.Unmarshal([]byte(`"unknown"`), &k); err == nil {
		t.Error(`"unknown" should not unmarshal: it is the display fallback, not a member`)
	}
	if err := json.Unmarshal([]byte(`3`), &k); err == nil {
		t.Error("ordinal JSON numbers should not unmarshal")
	}
	if _, err := ParseMissKind("nope"); err == nil {
		t.Error("ParseMissKind should reject names outside the taxonomy")
	}
}

// TestMissKindTaxonomyIsClosed guards the enumeration: if a new MissKind
// constant is added after MissContended, this fails until it is given a
// String() name, wired into MissKinds(), and therefore into the JSON
// round trip above.
func TestMissKindTaxonomyIsClosed(t *testing.T) {
	seen := make(map[string]bool)
	for i, k := range MissKinds() {
		if int(k) != i {
			t.Errorf("MissKinds()[%d] = MissKind(%d); enumeration must stay in ordinal order", i, int(k))
		}
		if k.String() == "unknown" {
			t.Errorf("MissKind(%d) in MissKinds() lacks a taxonomy string", int(k))
		}
		if seen[k.String()] {
			t.Errorf("duplicate taxonomy name %q", k.String())
		}
		seen[k.String()] = true
	}
	if next := MissKind(len(MissKinds())); next.String() != "unknown" {
		t.Errorf("MissKind(%d) has a name %q but is missing from MissKinds(); extend MissKinds and the JSON round trip", int(next), next.String())
	}
}
