package obs

import (
	"fmt"
	"strings"
)

// PhaseShare is one phase of a job's slack budget: its measured duration
// and the fraction of the job's slack (deadline − arrival) it consumed.
type PhaseShare struct {
	Name       string  `json:"name"`
	DurUs      float64 `json:"dur_us"`
	PctOfSlack float64 `json:"pct_of_slack"`
}

// Attribution is the slack-budget decomposition of one finished trace: the
// phase shares in timeline order and, when the job missed its deadline, a
// dominant-cause verdict with a human-readable explanation.
type Attribution struct {
	Phases []PhaseShare `json:"phases"`
	Cause  string       `json:"cause,omitempty"`  // miss-kind taxonomy name; "" when met
	Detail string       `json:"detail,omitempty"` // e.g. "queued 71% of slack behind 3 admitted jobs"
}

// Attribute decomposes a finished trace's latency into its phase spans and,
// for misses, names the dominant cause. The verdict reproduces the
// metrics.ClassifyMiss decision tree from measured span data alone:
// rejected and cancelled are deliberate policy outcomes; faulted means the
// CPU fallback path ran; starved means the job never dispatched before its
// deadline; otherwise queued when wait (parse+queue) exceeded exec, else
// contended. The two agree because for admitted jobs wait is firstDispatch −
// arrival on both sides (online submission stamps SubmitTime at arrival).
func Attribute(t WireTrace) Attribution {
	var a Attribution
	var execStart, execEnd, waitEnd float64
	hasExec := false
	behind := ""
	for _, s := range t.Spans {
		if s.Kind != SpanPhase {
			continue
		}
		dur := s.EndUs - s.StartUs
		share := PhaseShare{Name: s.Name, DurUs: dur}
		if t.SlackUs > 0 {
			share.PctOfSlack = 100 * dur / t.SlackUs
		}
		a.Phases = append(a.Phases, share)
		switch s.Name {
		case PhaseExec:
			execStart, execEnd, hasExec = s.StartUs, s.EndUs, true
		case PhaseQueue:
			waitEnd = s.EndUs
			behind = s.Detail
		case PhaseParse:
			if s.EndUs > waitEnd {
				waitEnd = s.EndUs
			}
		}
	}
	if t.Met {
		return a
	}
	switch {
	case t.State == "rejected":
		a.Cause = "rejected"
		a.Detail = "admission control refused the job"
	case t.State == "cancelled":
		a.Cause = "cancelled"
		a.Detail = "preempted and dropped mid-flight"
	case t.FellBack:
		a.Cause = "faulted"
		a.Detail = fmt.Sprintf("fault recovery moved the job to the CPU path; finished at %.0f%% of slack",
			pctOf(t.LatencyUs, t.SlackUs))
	case !hasExec || execStart > t.SlackUs:
		a.Cause = "starved"
		a.Detail = fmt.Sprintf("never dispatched before the deadline (slack %.0fus)", t.SlackUs)
	case waitEnd > execEnd-execStart:
		a.Cause = "queued"
		a.Detail = fmt.Sprintf("queued %.0f%% of slack%s", pctOf(waitEnd, t.SlackUs), suffixBehind(behind))
	default:
		a.Cause = "contended"
		a.Detail = fmt.Sprintf("dispatched at %.0f%% of slack but executed for %.0fus",
			pctOf(execStart, t.SlackUs), execEnd-execStart)
	}
	return a
}

func pctOf(v, total float64) float64 {
	if total <= 0 {
		return 0
	}
	return 100 * v / total
}

func suffixBehind(detail string) string {
	if detail == "" {
		return ""
	}
	return " " + detail
}

// W3C traceparent propagation (version 00): laxgw stamps each outbound
// dispatch with "00-<32 hex trace-id>-<16 hex span-id>-01" and laxd adopts
// the trace-id, so one job's spans stitch across processes.

// FormatTraceparent renders a version-00 traceparent header value.
func FormatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// ParseTraceparent extracts the trace-id and parent span-id from a
// version-00 traceparent header. Malformed values are rejected.
func ParseTraceparent(h string) (traceID, spanID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) != 4 || parts[0] != "00" ||
		!isHex(parts[1], 32) || !isHex(parts[2], 16) || !isHex(parts[3], 2) {
		return "", "", false
	}
	if parts[1] == strings.Repeat("0", 32) || parts[2] == strings.Repeat("0", 16) {
		return "", "", false
	}
	return parts[1], parts[2], true
}

func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// TraceIDFrom derives a deterministic 32-hex-char trace ID from a seed and
// a job identifier (splitmix64 finalizers, the same generator the chaos
// plans use). Deterministic IDs keep failover reruns byte-reproducible.
func TraceIDFrom(seed, id uint64) string {
	hi := mix64(seed ^ mix64(id))
	lo := mix64(id ^ mix64(seed+0x9e3779b97f4a7c15))
	if hi == 0 && lo == 0 {
		lo = 1 // all-zero trace IDs are invalid per W3C
	}
	return fmt.Sprintf("%016x%016x", hi, lo)
}

// SpanIDFrom derives a deterministic 16-hex-char span ID.
func SpanIDFrom(seed, id uint64) string {
	v := mix64(seed + mix64(id^0xbf58476d1ce4e5b9))
	if v == 0 {
		v = 1
	}
	return fmt.Sprintf("%016x", v)
}

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
