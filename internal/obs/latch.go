package obs

// ErrorLatch records the first error a best-effort consumer hits and counts
// everything it subsequently refuses to process. Both the trace writer
// (cp.Tracer) and the verification checker share the pattern: after the
// first failure they stop acting but keep accounting, so a truncated or
// partially-checked run is detectable — the stream is complete iff Err()
// is nil, and Dropped() says how much was lost either way.
//
// A nil *ErrorLatch is inert: every method is safe to call and reports the
// zero state, so embedding call sites need no guards.
type ErrorLatch struct {
	err     error
	dropped int
}

// Latch records err as the latched error if none is latched yet. A nil err
// is ignored. It reports whether the latch now holds an error (so callers
// can write `if l.Latch(err) { return }`).
func (l *ErrorLatch) Latch(err error) bool {
	if l == nil {
		return false
	}
	if l.err == nil && err != nil {
		l.err = err
	}
	return l.err != nil
}

// Failed reports whether an error has been latched.
func (l *ErrorLatch) Failed() bool {
	return l != nil && l.err != nil
}

// Err returns the first latched error, if any.
func (l *ErrorLatch) Err() error {
	if l == nil {
		return nil
	}
	return l.err
}

// CountDropped records one unit of work skipped because the latch already
// holds an error. Call it on the paths that bail out after Failed().
func (l *ErrorLatch) CountDropped() {
	if l != nil {
		l.dropped++
	}
}

// Dropped returns how many units of work were skipped after the first
// latched error.
func (l *ErrorLatch) Dropped() int {
	if l == nil {
		return 0
	}
	return l.dropped
}
