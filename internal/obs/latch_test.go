package obs

import (
	"errors"
	"testing"
)

func TestErrorLatchHoldsFirstError(t *testing.T) {
	var l ErrorLatch
	if l.Failed() || l.Err() != nil || l.Dropped() != 0 {
		t.Fatalf("zero latch not clean: %v %v %d", l.Failed(), l.Err(), l.Dropped())
	}
	if l.Latch(nil) {
		t.Fatal("Latch(nil) reported failure")
	}
	first := errors.New("first")
	if !l.Latch(first) {
		t.Fatal("Latch(first) did not report failure")
	}
	if !l.Latch(errors.New("second")) {
		t.Fatal("latched latch must keep reporting failure")
	}
	if l.Err() != first {
		t.Fatalf("Err() = %v, want first", l.Err())
	}
	l.CountDropped()
	l.CountDropped()
	if l.Dropped() != 2 {
		t.Fatalf("Dropped() = %d, want 2", l.Dropped())
	}
}

func TestErrorLatchNilSafe(t *testing.T) {
	var l *ErrorLatch
	if l.Latch(errors.New("x")) || l.Failed() || l.Err() != nil {
		t.Fatal("nil latch must be inert")
	}
	l.CountDropped()
	if l.Dropped() != 0 {
		t.Fatal("nil latch counted a drop")
	}
}
