package obs

import (
	"math"
	"sort"

	"laxgpu/internal/sim"
)

// Default histogram bounds, in microseconds. Laxity and queue delay span
// the paper's deadline range (tens of µs to tens of ms); estimate errors
// are signed (negative = underestimate) and centered on zero.
var (
	// LatencyBoundsUs covers non-negative durations.
	LatencyBoundsUs = []float64{10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 50000}

	// SignedErrorBoundsUs covers signed prediction errors.
	SignedErrorBoundsUs = []float64{-10000, -2000, -500, -100, -20, 0, 20, 100, 500, 2000, 10000}
)

// kernelKey identifies one kernel launch within a run.
type kernelKey struct {
	job int
	seq int
}

// pendingPrediction is a kernel-time estimate awaiting its completion.
type pendingPrediction struct {
	predicted sim.Time
}

// chainSample is the newest remaining-time prediction for a job's whole
// kernel chain, awaiting the job's completion.
type chainSample struct {
	at        sim.Time
	predicted sim.Time
}

// EstimatePair couples one prediction with the actual outcome it targeted.
type EstimatePair struct {
	Predicted sim.Time
	Actual    sim.Time
}

// Err returns the signed prediction error (positive = overestimate).
func (p EstimatePair) Err() sim.Time { return p.Predicted - p.Actual }

// EstimateStats summarizes an estimate-error distribution.
type EstimateStats struct {
	Count     int
	MAEPct    float64 // mean |error| as a percentage of mean actual
	MeanErrUs float64 // signed mean error, µs (bias)
	P50AbsUs  float64 // median |error|, µs
	P99AbsUs  float64 // 99th-percentile |error|, µs
}

// Metrics is a Probe that aggregates scheduler decisions into a metrics
// Registry and tracks estimate accuracy: each kernel's predicted execution
// time is paired with its actual completion, and each job's predicted
// remaining chain time (from the newest reprioritization sample) is paired
// with its actual remaining time at finish. The error distributions are
// exported as Prometheus histograms and as EstimateStats for reports.
//
// Metrics is driven from the single-threaded simulation loop; the Registry
// it feeds may be scraped concurrently.
type Metrics struct {
	reg *Registry

	admAccepted  *Counter
	admRejected  *Counter
	epochs       *Counter
	refreshes    *Counter
	samples      *Counter
	kernelsStart *Counter
	kernelsDone  *Counter
	jobsFinished *Counter
	jobsMet      *Counter
	jobsCanceled *Counter

	activeJobs      *Gauge
	hostQueued      *Gauge
	profiledKernels *Gauge

	laxityUs     *Histogram
	queueDelayUs *Histogram
	kernelErrUs  *Histogram
	chainErrUs   *Histogram

	pendingKernels map[kernelKey]pendingPrediction
	lastChain      map[int]chainSample
	kernelPairs    []EstimatePair
	chainPairs     []EstimatePair
}

// NewMetrics returns a Metrics probe feeding a fresh Registry.
func NewMetrics() *Metrics { return NewMetricsWithRegistry(NewRegistry()) }

// NewMetricsWithRegistry returns a Metrics probe feeding reg (so several
// runs can aggregate into one scrape target).
func NewMetricsWithRegistry(reg *Registry) *Metrics {
	return &Metrics{
		reg: reg,

		admAccepted:  reg.Counter("laxsim_admissions_accepted_total", "Jobs accepted by admission control (Algorithm 1)."),
		admRejected:  reg.Counter("laxsim_admissions_rejected_total", "Jobs rejected by admission control (Algorithm 1)."),
		epochs:       reg.Counter("laxsim_epochs_total", "Reprioritization passes (Algorithm 2 epochs)."),
		refreshes:    reg.Counter("laxsim_table_refreshes_total", "Kernel Profiling Table refreshes from device counters."),
		samples:      reg.Counter("laxsim_job_samples_total", "Per-job decision samples across all epochs."),
		kernelsStart: reg.Counter("laxsim_kernels_started_total", "Kernel launches that received their first workgroup."),
		kernelsDone:  reg.Counter("laxsim_kernels_completed_total", "Kernel launches that completed every workgroup."),
		jobsFinished: reg.Counter("laxsim_jobs_finished_total", "Jobs that completed every kernel."),
		jobsMet:      reg.Counter("laxsim_jobs_met_deadline_total", "Finished jobs that met their deadline."),
		jobsCanceled: reg.Counter("laxsim_jobs_cancelled_total", "Jobs preempted and dropped mid-flight."),

		activeJobs:      reg.Gauge("laxsim_active_jobs", "Jobs holding a compute queue at the latest epoch."),
		hostQueued:      reg.Gauge("laxsim_host_queued_jobs", "Admitted jobs waiting for a free queue at the latest epoch."),
		profiledKernels: reg.Gauge("laxsim_profiled_kernel_types", "Kernel types with a profiled completion rate."),

		laxityUs:     reg.Histogram("laxsim_laxity_us", "Per-job laxity (Equation 1) at each epoch, microseconds.", SignedErrorBoundsUs),
		queueDelayUs: reg.Histogram("laxsim_admission_queue_delay_us", "Little's-Law queuing delay at each admission decision, microseconds.", LatencyBoundsUs),
		kernelErrUs:  reg.Histogram("laxsim_estimate_kernel_error_us", "Per-kernel predicted-minus-actual execution time, microseconds.", SignedErrorBoundsUs),
		chainErrUs:   reg.Histogram("laxsim_estimate_chain_error_us", "Per-job predicted-minus-actual remaining chain time, microseconds.", SignedErrorBoundsUs),

		pendingKernels: make(map[kernelKey]pendingPrediction),
		lastChain:      make(map[int]chainSample),
	}
}

// Registry returns the registry this probe feeds.
func (m *Metrics) Registry() *Registry { return m.reg }

func us(t sim.Time) float64 { return float64(t) / float64(sim.Microsecond) }

// Job implements Probe.
func (m *Metrics) Job(e JobEvent) {
	switch e.Kind {
	case JobFinish:
		m.jobsFinished.Inc()
		if e.Met {
			m.jobsMet.Inc()
		}
		// Resolve the chain-level estimate: the newest remaining-time
		// prediction vs. the time the job actually still needed.
		if s, ok := m.lastChain[e.Job]; ok {
			delete(m.lastChain, e.Job)
			pair := EstimatePair{Predicted: s.predicted, Actual: e.At - s.at}
			m.chainPairs = append(m.chainPairs, pair)
			m.chainErrUs.Observe(us(pair.Err()))
		}
	case JobCancel:
		m.jobsCanceled.Inc()
		delete(m.lastChain, e.Job)
		// Kernel predictions for a cancelled job will never resolve; drop
		// them so long-running servers don't accumulate dead entries.
		for k := range m.pendingKernels {
			if k.job == e.Job {
				delete(m.pendingKernels, k)
			}
		}
	}
}

// Admission implements Probe.
func (m *Metrics) Admission(e AdmissionDecision) {
	if e.Accepted {
		m.admAccepted.Inc()
	} else {
		m.admRejected.Inc()
	}
	if e.HasTerms {
		m.queueDelayUs.Observe(us(e.QueueDelay))
	}
}

// Epoch implements Probe.
func (m *Metrics) Epoch(e EpochSnapshot) {
	m.epochs.Inc()
	m.activeJobs.Set(float64(e.Active))
	m.hostQueued.Set(float64(e.HostQueued))
}

// Sample implements Probe.
func (m *Metrics) Sample(e JobSample) {
	m.samples.Inc()
	if e.HasLaxity {
		m.laxityUs.Observe(us(e.Laxity))
	}
	if e.HasPrediction {
		m.lastChain[e.Job] = chainSample{at: e.At, predicted: e.PredictedRem}
	}
}

// TableRefresh implements Probe.
func (m *Metrics) TableRefresh(e TableRefresh) {
	m.refreshes.Inc()
	m.profiledKernels.Set(float64(e.Kernels))
}

// KernelStart implements Probe.
func (m *Metrics) KernelStart(e KernelStart) {
	m.kernelsStart.Inc()
	if e.HasPrediction {
		m.pendingKernels[kernelKey{e.Job, e.Seq}] = pendingPrediction{predicted: e.Predicted}
	}
}

// KernelDone implements Probe.
func (m *Metrics) KernelDone(e KernelDone) {
	m.kernelsDone.Inc()
	key := kernelKey{e.Job, e.Seq}
	if p, ok := m.pendingKernels[key]; ok {
		delete(m.pendingKernels, key)
		pair := EstimatePair{Predicted: p.predicted, Actual: e.At - e.Start}
		m.kernelPairs = append(m.kernelPairs, pair)
		m.kernelErrUs.Observe(us(pair.Err()))
	}
}

// Accepted returns the number of admission accepts recorded.
func (m *Metrics) Accepted() int64 { return m.admAccepted.Value() }

// Rejected returns the number of admission rejects recorded.
func (m *Metrics) Rejected() int64 { return m.admRejected.Value() }

// KernelEstimates returns the accuracy summary for per-kernel execution-time
// predictions (one pair per kernel launch the policy predicted).
func (m *Metrics) KernelEstimates() EstimateStats { return summarizePairs(m.kernelPairs) }

// ChainEstimates returns the accuracy summary for per-job remaining-time
// predictions (the newest epoch sample before each job finished).
func (m *Metrics) ChainEstimates() EstimateStats { return summarizePairs(m.chainPairs) }

// KernelPairs returns the raw per-kernel (predicted, actual) pairs.
func (m *Metrics) KernelPairs() []EstimatePair { return m.kernelPairs }

// ChainPairs returns the raw per-chain (predicted, actual) pairs.
func (m *Metrics) ChainPairs() []EstimatePair { return m.chainPairs }

// summarizePairs reduces (predicted, actual) pairs to EstimateStats.
func summarizePairs(pairs []EstimatePair) EstimateStats {
	if len(pairs) == 0 {
		return EstimateStats{}
	}
	abs := make([]float64, len(pairs))
	var sumAbs, sumErr, sumActual float64
	for i, p := range pairs {
		e := us(p.Err())
		abs[i] = math.Abs(e)
		sumAbs += abs[i]
		sumErr += e
		sumActual += us(p.Actual)
	}
	sort.Float64s(abs)
	n := float64(len(pairs))
	st := EstimateStats{
		Count:     len(pairs),
		MeanErrUs: sumErr / n,
		P50AbsUs:  quantile(abs, 0.50),
		P99AbsUs:  quantile(abs, 0.99),
	}
	if sumActual > 0 {
		st.MAEPct = 100 * (sumAbs / n) / (sumActual / n)
	}
	return st
}

// quantile returns the q-quantile of sorted values (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
