package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Perfetto process IDs: one synthetic process groups the per-queue kernel
// tracks, another groups the per-job laxity counter tracks, so the two
// stay visually separate in ui.perfetto.dev.
const (
	pidQueues = 1
	pidLaxity = 2
)

// traceEvent is one Chrome trace-event JSON object (the subset Perfetto
// consumes): ph "M" metadata, "X" complete spans, "C" counters, "i"
// instants. Timestamps and durations are microseconds.
type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Cat   string         `json:"cat,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// perfettoTrace is the top-level JSON object ui.perfetto.dev loads.
type perfettoTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Perfetto is a Probe that records a run as Chrome trace-event JSON,
// loadable in ui.perfetto.dev (or chrome://tracing): one track per GPU
// compute queue carrying kernel execution spans, one counter track per job
// carrying its laxity over time, and instant markers for job lifecycle
// transitions. Events are buffered in memory; call Write after the run.
type Perfetto struct {
	events []traceEvent

	queuesSeen map[int]bool
	jobsSeen   map[int]bool
	headerDone bool

	// Export-time track state (AddFleetEvents / AddWireTrace); untouched by
	// probe callbacks, so probe-only runs stay byte-identical.
	fleetTids map[string]int
	traceTid  int
}

// NewPerfetto returns an empty Perfetto recorder.
func NewPerfetto() *Perfetto {
	return &Perfetto{
		queuesSeen: make(map[int]bool),
		jobsSeen:   make(map[int]bool),
	}
}

// header lazily emits the process-naming metadata once.
func (p *Perfetto) header() {
	if p.headerDone {
		return
	}
	p.headerDone = true
	p.events = append(p.events,
		traceEvent{Name: "process_name", Phase: "M", Pid: pidQueues, Args: map[string]any{"name": "GPU queues"}},
		traceEvent{Name: "process_name", Phase: "M", Pid: pidLaxity, Args: map[string]any{"name": "LAX laxity"}},
	)
}

// queueTrack names the queue's thread track on first sight.
func (p *Perfetto) queueTrack(queue int) {
	p.header()
	if queue < 0 || p.queuesSeen[queue] {
		return
	}
	p.queuesSeen[queue] = true
	p.events = append(p.events, traceEvent{
		Name: "thread_name", Phase: "M", Pid: pidQueues, Tid: queue,
		Args: map[string]any{"name": fmt.Sprintf("queue %d", queue)},
	})
}

// Job implements Probe: lifecycle transitions become instant markers on the
// job's queue track (global scope for queue-less events like reject).
func (p *Perfetto) Job(e JobEvent) {
	p.queueTrack(e.Queue)
	ev := traceEvent{
		Name:  fmt.Sprintf("job %d %s", e.Job, e.Kind),
		Phase: "i", Ts: us(e.At), Pid: pidQueues, Cat: "job",
		Args: map[string]any{"job": e.Job},
	}
	if e.Queue >= 0 {
		ev.Tid = e.Queue
		ev.Scope = "t"
	} else {
		ev.Scope = "g"
	}
	if e.Kind == JobArrive {
		ev.Args["deadline_us"] = us(e.Deadline)
	}
	if e.Kind == JobFinish {
		ev.Args["met"] = e.Met
	}
	p.events = append(p.events, ev)
}

// Admission implements Probe: rejected jobs with computed terms get a
// global instant carrying the Little's-Law verdict.
func (p *Perfetto) Admission(e AdmissionDecision) {
	if !e.HasTerms {
		return
	}
	p.header()
	verdict := "accept"
	if !e.Accepted {
		verdict = "reject"
	}
	p.events = append(p.events, traceEvent{
		Name:  fmt.Sprintf("admit job %d: %s", e.Job, verdict),
		Phase: "i", Ts: us(e.At), Pid: pidQueues, Scope: "g", Cat: "admission",
		Args: map[string]any{
			"queue_delay_us": us(e.QueueDelay),
			"hold_us":        us(e.HoldTime),
			"deadline_us":    us(e.Deadline),
		},
	})
}

// Epoch implements Probe (no events; epochs show through samples).
func (p *Perfetto) Epoch(EpochSnapshot) {}

// Sample implements Probe: laxity samples become one counter track per job.
func (p *Perfetto) Sample(e JobSample) {
	if !e.HasLaxity {
		return
	}
	p.header()
	if !p.jobsSeen[e.Job] {
		p.jobsSeen[e.Job] = true
		p.events = append(p.events, traceEvent{
			Name: "thread_name", Phase: "M", Pid: pidLaxity, Tid: e.Job,
			Args: map[string]any{"name": fmt.Sprintf("laxity job %d", e.Job)},
		})
	}
	p.events = append(p.events, traceEvent{
		Name:  fmt.Sprintf("laxity job %d", e.Job),
		Phase: "C", Ts: us(e.At), Pid: pidLaxity, Tid: e.Job,
		Args: map[string]any{"laxity_us": us(e.Laxity)},
	})
}

// TableRefresh implements Probe (aggregated by Metrics, not drawn).
func (p *Perfetto) TableRefresh(TableRefresh) {}

// KernelStart implements Probe: ensures the queue's track exists before its
// first span lands.
func (p *Perfetto) KernelStart(e KernelStart) { p.queueTrack(e.Queue) }

// KernelDone implements Probe: the kernel's full execution becomes a
// complete span ("X") on its queue's track.
func (p *Perfetto) KernelDone(e KernelDone) {
	p.queueTrack(e.Queue)
	p.events = append(p.events, traceEvent{
		Name:  e.Kernel,
		Phase: "X", Ts: us(e.Start), Dur: us(e.At - e.Start),
		Pid: pidQueues, Tid: e.Queue, Cat: "kernel",
		Args: map[string]any{"job": e.Job, "seq": e.Seq},
	})
}

// Events returns the number of buffered trace events.
func (p *Perfetto) Events() int { return len(p.events) }

// Write serializes the buffered trace as Chrome trace-event JSON. The
// output is deterministic: events appear in emission order and map keys are
// sorted by the JSON encoder.
func (p *Perfetto) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(perfettoTrace{
		TraceEvents:     p.events,
		DisplayTimeUnit: "ms",
	})
}
