package obs

import "fmt"

// Perfetto process IDs for export-time additions (probe-driven tracks use
// pidQueues/pidLaxity): fleet-level instant events on one process, stitched
// per-job trace waterfalls on another.
const (
	pidFleet = 3
	pidJobs  = 4
)

// FleetEvent is one gateway-level instant: a breaker transition, a failover
// re-dispatch or a CPU fallback. AtUs is microseconds on the gateway's own
// clock (sim time zero = process start).
type FleetEvent struct {
	AtUs   float64 `json:"at_us"`
	Name   string  `json:"name"` // EventBreaker, EventRedispatch, EventFallback
	Node   string  `json:"node"`
	Detail string  `json:"detail,omitempty"`
}

// fleetHeader lazily names the fleet-event process and one track per node.
func (p *Perfetto) fleetTrack(node string) int {
	if p.fleetTids == nil {
		p.fleetTids = make(map[string]int)
		p.events = append(p.events, traceEvent{
			Name: "process_name", Phase: "M", Pid: pidFleet,
			Args: map[string]any{"name": "fleet events"},
		})
	}
	tid, ok := p.fleetTids[node]
	if !ok {
		tid = len(p.fleetTids)
		p.fleetTids[node] = tid
		p.events = append(p.events, traceEvent{
			Name: "thread_name", Phase: "M", Pid: pidFleet, Tid: tid,
			Args: map[string]any{"name": node},
		})
	}
	return tid
}

// AddFleetEvents appends gateway-level instants (breaker trips and
// recoveries, failover re-dispatches, CPU fallbacks) as Perfetto instant
// events, one track per node. Export-time only: runs that never call it
// produce byte-identical output.
func (p *Perfetto) AddFleetEvents(evs []FleetEvent) {
	for _, e := range evs {
		tid := p.fleetTrack(e.Node)
		p.events = append(p.events, traceEvent{
			Name:  fmt.Sprintf("%s %s", e.Name, e.Detail),
			Phase: "i", Ts: e.AtUs, Pid: pidFleet, Tid: tid, Scope: "t", Cat: "fleet",
			Args: map[string]any{"node": e.Node, "event": e.Name},
		})
	}
}

// AddWireTrace appends one stitched per-job trace as a Perfetto waterfall:
// phase and kernel spans become complete ("X") slices, instants stay
// instants, on one track per trace. Span times are microseconds relative to
// the job's arrival, so each job's waterfall starts at ts 0 on its own
// track. Export-time only, like AddFleetEvents.
func (p *Perfetto) AddWireTrace(t WireTrace) {
	if p.traceTid == 0 {
		p.events = append(p.events, traceEvent{
			Name: "process_name", Phase: "M", Pid: pidJobs,
			Args: map[string]any{"name": "job traces"},
		})
	}
	p.traceTid++
	tid := p.traceTid
	p.events = append(p.events, traceEvent{
		Name: "thread_name", Phase: "M", Pid: pidJobs, Tid: tid,
		Args: map[string]any{"name": fmt.Sprintf("job %s (%s)", t.Job, t.Benchmark)},
	})
	for _, s := range t.Spans {
		args := map[string]any{"node": s.Node}
		if s.Detail != "" {
			args["detail"] = s.Detail
		}
		if s.EndUs > s.StartUs {
			p.events = append(p.events, traceEvent{
				Name:  s.Name,
				Phase: "X", Ts: s.StartUs, Dur: s.EndUs - s.StartUs,
				Pid: pidJobs, Tid: tid, Cat: s.Kind, Args: args,
			})
			continue
		}
		p.events = append(p.events, traceEvent{
			Name:  s.Name,
			Phase: "i", Ts: s.StartUs, Pid: pidJobs, Tid: tid, Scope: "t",
			Cat: s.Kind, Args: args,
		})
	}
}
