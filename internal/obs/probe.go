package obs

import "laxgpu/internal/sim"

// JobEventKind enumerates the job lifecycle transitions a Probe observes —
// the same transitions the cp JSON-lines tracer records.
type JobEventKind int

const (
	// JobArrive: the job reached the host-side offload decision.
	JobArrive JobEventKind = iota
	// JobReject: admission control refused the job.
	JobReject
	// JobReady: stream inspection finished; the first kernel is dispatchable.
	JobReady
	// JobFinish: every kernel completed.
	JobFinish
	// JobCancel: the job was preempted mid-flight and dropped.
	JobCancel
	// JobFallback: recovery (or graceful drain) gave up on the GPU and the
	// job's remaining kernels moved to the host CPU path. A JobFinish still
	// follows when the CPU work completes.
	JobFallback
)

// String returns the lifecycle transition's trace name.
func (k JobEventKind) String() string {
	switch k {
	case JobArrive:
		return "arrive"
	case JobReject:
		return "reject"
	case JobReady:
		return "ready"
	case JobFinish:
		return "finish"
	case JobCancel:
		return "cancel"
	case JobFallback:
		return "fallback"
	default:
		return "unknown"
	}
}

// JobEvent is one job lifecycle transition.
type JobEvent struct {
	At        sim.Time
	Kind      JobEventKind
	Job       int
	Queue     int
	Benchmark string
	Deadline  sim.Time // absolute deadline (arrive events)
	Met       bool     // deadline success (finish events)
}

// AdmissionDecision is one Algorithm 1 verdict (or its equivalent in a
// deadline-blind policy, which accepts unconditionally and has no terms).
type AdmissionDecision struct {
	At        sim.Time
	Scheduler string
	Job       int
	Accepted  bool

	// The Little's-Law terms of Algorithm 1 line 15, when the policy
	// computes them (HasTerms): queueDelay + holdTime < deadline.
	HasTerms   bool
	QueueDelay sim.Time // summed remaining-time of admitted jobs
	HoldTime   sim.Time // the candidate's own predicted execution time
	Deadline   sim.Time // the candidate's relative deadline
}

// EpochSnapshot marks one reprioritization pass (Algorithm 2 epoch):
// emitted once per Reprioritize tick before the per-job samples.
type EpochSnapshot struct {
	At         sim.Time
	Scheduler  string
	Active     int // jobs holding a compute queue
	HostQueued int // admitted jobs waiting for a free queue
}

// JobSample is one job's decision state at a reprioritization tick:
// priority always, laxity and the profiling-table remaining-time prediction
// when the policy computes them.
type JobSample struct {
	At       sim.Time
	Job      int
	Queue    int
	Priority int64

	HasLaxity bool
	Laxity    sim.Time // Equation 1: deadline − (remaining + elapsed)

	HasPrediction bool
	PredictedRem  sim.Time // profiling-table remaining-time estimate
}

// TableRefresh marks one Kernel Profiling Table update from device counters.
type TableRefresh struct {
	At        sim.Time
	Scheduler string
	Kernels   int // kernel types with a profiled rate after the refresh
}

// KernelStart is a kernel's first workgroup dispatch. When the policy can
// estimate kernel execution time (LAX's profiling table, SRF, the static
// offline profiles), Predicted carries the estimate made at this instant;
// pairing it with the matching KernelDone yields the estimate-error
// distribution — the paper's core mechanism, finally measurable.
type KernelStart struct {
	At     sim.Time
	Job    int
	Queue  int
	Seq    int
	Kernel string

	HasPrediction bool
	Predicted     sim.Time
}

// KernelDone is a kernel's last workgroup completion. Start is the kernel's
// first dispatch, so At − Start is the actual execution time.
type KernelDone struct {
	At     sim.Time
	Job    int
	Queue  int
	Seq    int
	Kernel string
	Start  sim.Time
}

// Probe observes scheduler decisions and kernel lifecycle events during a
// run. Implementations must be pure observers: they may record, aggregate
// and export, but must not mutate jobs, the policy or the engine — the
// simulation must be byte-identical with or without a probe attached
// (enforced by the harness golden-equivalence test).
//
// All methods are invoked from inside the single-threaded simulation loop;
// implementations need no locking unless they expose concurrent readers.
type Probe interface {
	// Job records a job lifecycle transition.
	Job(JobEvent)
	// Admission records an offload accept/reject decision.
	Admission(AdmissionDecision)
	// Epoch records the start of one reprioritization pass.
	Epoch(EpochSnapshot)
	// Sample records one job's state within a reprioritization pass.
	Sample(JobSample)
	// TableRefresh records a profiling-table update.
	TableRefresh(TableRefresh)
	// KernelStart records a kernel's first WG dispatch.
	KernelStart(KernelStart)
	// KernelDone records a kernel's last WG completion.
	KernelDone(KernelDone)
}

// multi fans every event out to each probe in order.
type multi []Probe

func (m multi) Job(e JobEvent) {
	for _, p := range m {
		p.Job(e)
	}
}
func (m multi) Admission(e AdmissionDecision) {
	for _, p := range m {
		p.Admission(e)
	}
}
func (m multi) Epoch(e EpochSnapshot) {
	for _, p := range m {
		p.Epoch(e)
	}
}
func (m multi) Sample(e JobSample) {
	for _, p := range m {
		p.Sample(e)
	}
}
func (m multi) TableRefresh(e TableRefresh) {
	for _, p := range m {
		p.TableRefresh(e)
	}
}
func (m multi) KernelStart(e KernelStart) {
	for _, p := range m {
		p.KernelStart(e)
	}
}
func (m multi) KernelDone(e KernelDone) {
	for _, p := range m {
		p.KernelDone(e)
	}
}

// Multi combines probes into one that fans events out in argument order.
// Nils are dropped; zero live probes collapse to nil (so call sites keep
// their cheap nil check) and a single live probe is returned directly.
func Multi(probes ...Probe) Probe {
	live := make(multi, 0, len(probes))
	for _, p := range probes {
		if p != nil {
			live = append(live, p)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}
