package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"laxgpu/internal/sim"
)

// countingProbe records how many times each hook fired.
type countingProbe struct {
	jobs, adm, epochs, samples, refreshes, starts, dones int
}

func (c *countingProbe) Job(JobEvent)                { c.jobs++ }
func (c *countingProbe) Admission(AdmissionDecision) { c.adm++ }
func (c *countingProbe) Epoch(EpochSnapshot)         { c.epochs++ }
func (c *countingProbe) Sample(JobSample)            { c.samples++ }
func (c *countingProbe) TableRefresh(TableRefresh)   { c.refreshes++ }
func (c *countingProbe) KernelStart(KernelStart)     { c.starts++ }
func (c *countingProbe) KernelDone(KernelDone)       { c.dones++ }

func TestMultiFanOutAndCollapse(t *testing.T) {
	if Multi() != nil {
		t.Fatal("Multi() must collapse to nil")
	}
	if Multi(nil, nil) != nil {
		t.Fatal("Multi(nil, nil) must collapse to nil")
	}
	a := &countingProbe{}
	if got := Multi(nil, a); got != Probe(a) {
		t.Fatal("Multi with one live probe must return it directly")
	}
	b := &countingProbe{}
	m := Multi(a, b)
	m.Job(JobEvent{})
	m.Admission(AdmissionDecision{})
	m.Epoch(EpochSnapshot{})
	m.Sample(JobSample{})
	m.TableRefresh(TableRefresh{})
	m.KernelStart(KernelStart{})
	m.KernelDone(KernelDone{})
	for _, p := range []*countingProbe{a, b} {
		if p.jobs != 1 || p.adm != 1 || p.epochs != 1 || p.samples != 1 ||
			p.refreshes != 1 || p.starts != 1 || p.dones != 1 {
			t.Fatalf("fan-out missed a hook: %+v", p)
		}
	}
}

func TestMetricsEstimatePairing(t *testing.T) {
	m := NewMetrics()

	// Kernel-level: predicted 100 µs, actual 80 µs → error +20 µs.
	m.KernelStart(KernelStart{At: 0, Job: 3, Seq: 0, Kernel: "k",
		HasPrediction: true, Predicted: 100 * sim.Microsecond})
	m.KernelDone(KernelDone{At: 80 * sim.Microsecond, Job: 3, Seq: 0, Kernel: "k", Start: 0})

	// A start without a prediction must not produce a pair.
	m.KernelStart(KernelStart{At: 0, Job: 3, Seq: 1, Kernel: "k2"})
	m.KernelDone(KernelDone{At: 10 * sim.Microsecond, Job: 3, Seq: 1, Kernel: "k2", Start: 0})

	ks := m.KernelEstimates()
	if ks.Count != 1 {
		t.Fatalf("kernel pairs = %d, want 1", ks.Count)
	}
	if ks.MeanErrUs != 20 {
		t.Errorf("kernel mean error = %v µs, want 20", ks.MeanErrUs)
	}
	if ks.MAEPct != 25 { // |20| / 80
		t.Errorf("kernel MAE%% = %v, want 25", ks.MAEPct)
	}

	// Chain-level: newest sample wins; resolved at finish.
	m.Sample(JobSample{At: 1 * sim.Millisecond, Job: 7,
		HasPrediction: true, PredictedRem: 500 * sim.Microsecond})
	m.Sample(JobSample{At: 2 * sim.Millisecond, Job: 7,
		HasPrediction: true, PredictedRem: 300 * sim.Microsecond})
	m.Job(JobEvent{At: 2400 * sim.Microsecond, Kind: JobFinish, Job: 7, Met: true})

	cs := m.ChainEstimates()
	if cs.Count != 1 {
		t.Fatalf("chain pairs = %d, want 1", cs.Count)
	}
	// predicted 300 µs vs actual 400 µs → error −100 µs.
	if cs.MeanErrUs != -100 {
		t.Errorf("chain mean error = %v µs, want -100", cs.MeanErrUs)
	}

	// A cancelled job's pending sample must not resolve.
	m.Sample(JobSample{At: 0, Job: 9, HasPrediction: true, PredictedRem: sim.Millisecond})
	m.Job(JobEvent{At: sim.Millisecond, Kind: JobCancel, Job: 9})
	m.Job(JobEvent{At: 2 * sim.Millisecond, Kind: JobFinish, Job: 9})
	if got := m.ChainEstimates().Count; got != 1 {
		t.Fatalf("cancelled job leaked a chain pair: %d", got)
	}

	// The error histograms must surface in the Prometheus exposition.
	var sb strings.Builder
	if err := m.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"laxsim_estimate_kernel_error_us_count 1",
		"laxsim_estimate_chain_error_us_count 1",
		"laxsim_jobs_met_deadline_total 1",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestMetricsCounters(t *testing.T) {
	m := NewMetrics()
	m.Admission(AdmissionDecision{Accepted: true, HasTerms: true, QueueDelay: sim.Millisecond})
	m.Admission(AdmissionDecision{Accepted: false})
	m.Epoch(EpochSnapshot{Active: 5, HostQueued: 2})
	m.TableRefresh(TableRefresh{Kernels: 3})
	m.Sample(JobSample{HasLaxity: true, Laxity: -sim.Microsecond})

	var sb strings.Builder
	if err := m.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"laxsim_admissions_accepted_total 1",
		"laxsim_admissions_rejected_total 1",
		"laxsim_epochs_total 1",
		"laxsim_active_jobs 5",
		"laxsim_host_queued_jobs 2",
		"laxsim_profiled_kernel_types 3",
		"laxsim_job_samples_total 1",
		"laxsim_laxity_us_count 1",
		"laxsim_admission_queue_delay_us_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestPerfettoTraceShape(t *testing.T) {
	p := NewPerfetto()
	p.Job(JobEvent{At: 0, Kind: JobArrive, Job: 0, Queue: -1, Deadline: sim.Millisecond})
	p.KernelStart(KernelStart{At: 10, Job: 0, Queue: 2, Seq: 0, Kernel: "gemm"})
	p.Sample(JobSample{At: 100 * sim.Microsecond, Job: 0, Queue: 2,
		HasLaxity: true, Laxity: 300 * sim.Microsecond})
	p.KernelDone(KernelDone{At: 200 * sim.Microsecond, Job: 0, Queue: 2, Seq: 0,
		Kernel: "gemm", Start: 10})
	p.Job(JobEvent{At: 210 * sim.Microsecond, Kind: JobFinish, Job: 0, Queue: 2, Met: true})

	var sb strings.Builder
	if err := p.Write(&sb); err != nil {
		t.Fatal(err)
	}

	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}

	var sawQueueTrack, sawSpan, sawCounter, sawLaxityTrack bool
	for _, ev := range trace.TraceEvents {
		for _, field := range []string{"ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event missing %q: %v", field, ev)
			}
		}
		name, _ := ev["name"].(string)
		switch ev["ph"] {
		case "M":
			if name == "thread_name" {
				args := ev["args"].(map[string]any)
				if args["name"] == "queue 2" {
					sawQueueTrack = true
				}
				if args["name"] == "laxity job 0" {
					sawLaxityTrack = true
				}
			}
		case "X":
			if name == "gemm" && ev["dur"].(float64) > 0 {
				sawSpan = true
			}
		case "C":
			if strings.HasPrefix(name, "laxity job") {
				sawCounter = true
			}
		}
	}
	if !sawQueueTrack {
		t.Error("missing per-queue track metadata")
	}
	if !sawLaxityTrack {
		t.Error("missing per-job laxity counter track metadata")
	}
	if !sawSpan {
		t.Error("missing kernel complete span")
	}
	if !sawCounter {
		t.Error("missing laxity counter event")
	}
}
