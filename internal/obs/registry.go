// Package obs is the simulator's zero-dependency telemetry layer: a metrics
// registry (counters, gauges, fixed-bucket histograms) with an
// allocation-free hot path and Prometheus text exposition, a scheduler
// Probe interface that records per-epoch decision snapshots without
// perturbing the simulation, estimate-accuracy tracking that pairs
// predicted remaining times with actual completions, and a Perfetto/Chrome
// trace-event exporter.
//
// obs sits below internal/cp in the import graph (it may import only
// internal/sim and the standard library), so every layer — core, cp, sched,
// harness, the public API — can emit into it without cycles.
//
// Observability must not perturb the schedule: probes are pure readers of
// event data the simulation already computes, they never touch the engine,
// and a nil Probe costs one pointer compare per call site (no allocation —
// see TestProbeHotPathAllocs and the golden-equivalence test in
// internal/harness).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use and allocation-free.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (negative deltas are ignored: counters only go up).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down, stored as float64 bits. All
// methods are safe for concurrent use and allocation-free.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (compare-and-swap loop).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution: observations are counted into
// the bucket whose upper bound is the smallest one >= the value, plus an
// implicit +Inf bucket. Bounds are fixed at registration, so Observe is
// allocation-free and safe for concurrent use.
type Histogram struct {
	bounds []float64      // sorted upper bounds; +Inf bucket is implicit
	counts []atomic.Int64 // len(bounds)+1
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS loop
}

// NewHistogram builds a standalone histogram with the given bucket upper
// bounds (sorted copies are taken; the registry's Histogram method is the
// usual entry point).
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Buckets returns the (upper bound, cumulative count) pairs, ending with the
// +Inf bucket. The snapshot is deterministic but not atomic across buckets.
func (h *Histogram) Buckets() ([]float64, []int64) {
	cum := make([]int64, len(h.counts))
	var running int64
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return h.bounds, cum
}

// metricKind distinguishes the registry's metric families for exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type metric struct {
	name   string
	labels string // rendered `{k="v",...}` suffix, "" for unlabeled metrics
	help   string
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// key is the registry map key: one series per (name, label set).
func (m *metric) key() string { return m.name + m.labels }

// Registry holds named metrics and renders deterministic snapshots in the
// Prometheus text exposition format. Registration is idempotent: asking for
// an existing name returns the existing metric, so independent components
// can share families. Registration takes a lock; the returned metrics' hot
// paths do not.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// renderLabels turns a label map into the canonical `{k="v",...}` suffix,
// sorted by key so the same set always yields the same series.
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%q", k, labels[k]))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// lookup returns the existing metric for key, verifying its kind, or nil.
func (r *Registry) lookup(key string, kind metricKind) *metric {
	if m, ok := r.metrics[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q registered twice with different kinds", key))
		}
		return m
	}
	return nil
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterWith(name, help, nil)
}

// CounterWith returns the counter series (name, labels), registering it on
// first use. All series of one name form a family sharing a single HELP/TYPE
// line in the exposition; the help text of the first-registered series wins.
func (r *Registry) CounterWith(name, help string, labels map[string]string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := &metric{name: name, labels: renderLabels(labels), help: help, kind: kindCounter, c: &Counter{}}
	if ex := r.lookup(m.key(), kindCounter); ex != nil {
		return ex.c
	}
	r.metrics[m.key()] = m
	return m.c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeWith(name, help, nil)
}

// GaugeWith returns the gauge series (name, labels), registering it on first
// use. See CounterWith for family semantics.
func (r *Registry) GaugeWith(name, help string, labels map[string]string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := &metric{name: name, labels: renderLabels(labels), help: help, kind: kindGauge, g: &Gauge{}}
	if ex := r.lookup(m.key(), kindGauge); ex != nil {
		return ex.g
	}
	r.metrics[m.key()] = m
	return m.g
}

// Histogram returns the named histogram, registering it on first use. The
// bounds of an already-registered histogram win; they are fixed for the
// registry's lifetime.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(name, kindHistogram); m != nil {
		return m.h
	}
	m := &metric{name: name, help: help, kind: kindHistogram, h: NewHistogram(bounds)}
	r.metrics[m.key()] = m
	return m.h
}

// Names returns the registered metric names in sorted order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), sorted by name so snapshots are deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ordered := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ordered = append(ordered, m)
	}
	r.mu.Unlock()
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].name != ordered[j].name {
			return ordered[i].name < ordered[j].name
		}
		return ordered[i].labels < ordered[j].labels
	})

	prevFamily := ""
	for _, m := range ordered {
		// HELP/TYPE are per family: labeled series of one name share them.
		if m.name != prevFamily {
			prevFamily = m.name
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
					return err
				}
			}
			kind := "counter"
			switch m.kind {
			case kindGauge:
				kind = "gauge"
			case kindHistogram:
				kind = "histogram"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, kind); err != nil {
				return err
			}
		}
		series := m.name + m.labels
		switch m.kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "%s %d\n", series, m.c.Value()); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "%s %s\n", series, formatFloat(m.g.Value())); err != nil {
				return err
			}
		case kindHistogram:
			bounds, cum := m.h.Buckets()
			for i, b := range bounds {
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.name, formatFloat(b), cum[i]); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum[len(cum)-1]); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", m.name, formatFloat(m.h.Sum()), m.name, m.h.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trippable decimal.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
