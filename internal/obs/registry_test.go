package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same", "help")
	b := r.Counter("same", "help")
	if a != b {
		t.Fatal("re-registering a name must return the same metric")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering the same name as a different kind must panic")
		}
	}()
	r.Gauge("same", "help")
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{10, 100})
	for _, v := range []float64{5, 10, 50, 1000} {
		h.Observe(v)
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 2 || bounds[0] != 10 || bounds[1] != 100 {
		t.Fatalf("bounds = %v", bounds)
	}
	// le=10 → {5, 10}; le=100 → +{50}; +Inf → +{1000}.
	if cum[0] != 2 || cum[1] != 3 || cum[2] != 4 {
		t.Fatalf("cumulative counts = %v, want [2 3 4]", cum)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 1065 {
		t.Fatalf("sum = %v, want 1065", h.Sum())
	}
}

func TestWritePrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("laxsim_b_total", "counts b").Inc()
	r.Gauge("laxsim_a", "gauges a").Set(3)
	h := r.Histogram("laxsim_h", "hist h", []float64{1, 2})
	h.Observe(1.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	// Deterministic name order: a before b before h.
	ia, ib := strings.Index(out, "laxsim_a"), strings.Index(out, "laxsim_b_total")
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("metrics not in sorted order:\n%s", out)
	}
	for _, want := range []string{
		"# HELP laxsim_a gauges a",
		"# TYPE laxsim_a gauge",
		"laxsim_a 3",
		"# TYPE laxsim_b_total counter",
		"laxsim_b_total 1",
		"# TYPE laxsim_h histogram",
		`laxsim_h_bucket{le="1"} 0`,
		`laxsim_h_bucket{le="2"} 1`,
		`laxsim_h_bucket{le="+Inf"} 1`,
		"laxsim_h_sum 1.5",
		"laxsim_h_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Two snapshots of an unchanged registry must be byte-identical.
	var sb2 strings.Builder
	if err := r.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Fatal("snapshots of an unchanged registry differ")
	}
}

// TestHotPathAllocs is the satellite guarantee: the metric hot paths
// allocate nothing, so probes can run inside the simulation loop without
// disturbing benchmark numbers.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 10, 100})
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(4.2) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(42) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v per op", n)
	}
}

func TestLabeledSeries(t *testing.T) {
	r := NewRegistry()
	a := r.GaugeWith("breaker_state", "Breaker state per node.", map[string]string{"node": "n0"})
	b := r.GaugeWith("breaker_state", "Breaker state per node.", map[string]string{"node": "n1"})
	if a == b {
		t.Fatal("distinct label sets returned the same gauge")
	}
	again := r.GaugeWith("breaker_state", "ignored", map[string]string{"node": "n0"})
	if again != a {
		t.Fatal("re-registering the same series returned a new gauge")
	}
	a.Set(2)
	b.Set(1)
	c := r.CounterWith("probe_failures_total", "Probe failures per node.", map[string]string{"node": "n1"})
	c.Inc()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE breaker_state gauge\n",
		"breaker_state{node=\"n0\"} 2\n",
		"breaker_state{node=\"n1\"} 1\n",
		"probe_failures_total{node=\"n1\"} 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One HELP/TYPE pair per family, not per series.
	if n := strings.Count(out, "# TYPE breaker_state gauge"); n != 1 {
		t.Errorf("got %d TYPE lines for breaker_state, want 1:\n%s", n, out)
	}
}

func TestLabeledSeriesLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.CounterWith("m_total", "", map[string]string{"b": "2", "a": "1"})
	b := r.CounterWith("m_total", "", map[string]string{"a": "1", "b": "2"})
	if a != b {
		t.Fatal("label map order created distinct series")
	}
}
