package obs

import (
	"fmt"
	"sync"

	"laxgpu/internal/sim"
)

// Span kinds. A phase span covers a contiguous slice of a job's lifetime
// (the parse/queue/exec partition that slack attribution sums); a kernel
// span covers one kernel execution; an event span is an instant (End ==
// Start) marking a decision or transition.
const (
	SpanPhase  = "phase"
	SpanKernel = "kernel"
	SpanEvent  = "event"
)

// Phase and event names used by the recorder and by gateway stitching. The
// phase names form a contiguous partition of [arrival, finish], so their
// durations sum exactly to the job's latency — the property the slack
// attribution layer and the trace smoke test both rely on.
const (
	PhaseParse    = "parse"    // arrival → stream inspection done
	PhaseQueue    = "queue"    // ready → first kernel dispatch
	PhaseExec     = "exec"     // first dispatch → finish
	PhaseFallback = "fallback" // ready → finish when the job never dispatched

	EventAdmit      = "admit"        // admission verdict
	EventFallback   = "cpu_fallback" // job switched to the host CPU path
	EventRoute      = "route"        // gateway routing decision
	EventRedispatch = "redispatch"   // gateway failover re-dispatch
	EventBreaker    = "breaker"      // gateway circuit-breaker transition
	EventScaleUp    = "scale-up"     // autoscaler added a node to the fleet
	EventScaleDrain = "scale-drain"  // autoscaler began draining a node
	EventRetire     = "retire"       // a drained node left the fleet
)

// Span is one element of a job's timeline, in the recording node's own
// simulated clock. End == Start marks an instant event.
type Span struct {
	Kind   string
	Name   string
	Start  sim.Time
	End    sim.Time
	Detail string
}

// JobTrace is one job's complete timeline on one node, assembled by a
// TraceRecorder from probe events. Times are node-local sim times; convert
// with Wire before crossing a process boundary.
type JobTrace struct {
	TraceID   string
	Job       int
	Benchmark string
	Arrival   sim.Time
	Deadline  sim.Time // absolute
	Finish    sim.Time // terminal instant (finish, reject or cancel)
	State     string   // "running", "done", "rejected", "cancelled"
	Met       bool
	FellBack  bool
	Spans     []Span

	firstDispatch sim.Time
	ready         sim.Time
	hasReady      bool
	hasDispatch   bool
}

// WireSpan is a Span flattened for transport: start/end are microseconds
// relative to the job's arrival on the recording node, so stitched traces
// need no cross-process clock agreement (every laxd anchors its sim clock
// at its own process start).
type WireSpan struct {
	Kind    string  `json:"kind"`
	Name    string  `json:"name"`
	Node    string  `json:"node"`
	StartUs float64 `json:"start_us"`
	EndUs   float64 `json:"end_us"`
	Detail  string  `json:"detail,omitempty"`
}

// WireTrace is the cross-process trace document served by
// GET /v1/jobs/{id}/trace on laxd and, stitched, on laxgw.
type WireTrace struct {
	TraceID   string     `json:"trace_id"`
	Job       string     `json:"job"`
	Benchmark string     `json:"benchmark"`
	Node      string     `json:"node"`
	State     string     `json:"state"`
	Met       bool       `json:"met"`
	FellBack  bool       `json:"fell_back"`
	SlackUs   float64    `json:"slack_us"`   // deadline − arrival
	LatencyUs float64    `json:"latency_us"` // finish − arrival
	Spans     []WireSpan `json:"spans"`
}

// TraceDoc is the document served by the trace endpoints and written by
// laxtrace -o: the (possibly stitched) timeline plus its slack attribution.
type TraceDoc struct {
	Trace       WireTrace   `json:"trace"`
	Attribution Attribution `json:"attribution"`
}

// Wire converts the trace for transport, stamping every span with node.
func (t *JobTrace) Wire(node string) WireTrace {
	w := WireTrace{
		TraceID:   t.TraceID,
		Job:       fmt.Sprintf("%d", t.Job),
		Benchmark: t.Benchmark,
		Node:      node,
		State:     t.State,
		Met:       t.Met,
		FellBack:  t.FellBack,
		SlackUs:   us(t.Deadline - t.Arrival),
		LatencyUs: us(t.Finish - t.Arrival),
		Spans:     make([]WireSpan, 0, len(t.Spans)),
	}
	for _, s := range t.Spans {
		w.Spans = append(w.Spans, WireSpan{
			Kind: s.Kind, Name: s.Name, Node: node,
			StartUs: us(s.Start - t.Arrival),
			EndUs:   us(s.End - t.Arrival),
			Detail:  s.Detail,
		})
	}
	return w
}

// TraceRecorder is a Probe that assembles one JobTrace per job: the
// admission verdict, the parse/queue/exec phase partition, every kernel
// execution, and the CPU-fallback transition. Finished traces are kept in a
// bounded ring (oldest evicted); live traces are keyed by the node-local
// job ID. Probe callbacks arrive on the driver goroutine; Get/Recent/Assign
// may be called concurrently from HTTP handlers, so every method locks.
//
// A nil *TraceRecorder is never attached (obs.Multi drops nils), so runs
// without tracing keep the plain nil-probe hot path and allocate nothing.
type TraceRecorder struct {
	mu       sync.Mutex
	depth    int
	live     map[int]*JobTrace
	done     []*JobTrace // ring, insertion order; done[next] is oldest
	next     int
	inflight int // admitted, not yet terminal — the "behind N jobs" count
}

// NewTraceRecorder returns a recorder retaining up to depth finished traces
// (depth <= 0 selects the default of 256).
func NewTraceRecorder(depth int) *TraceRecorder {
	if depth <= 0 {
		depth = 256
	}
	return &TraceRecorder{
		depth: depth,
		live:  make(map[int]*JobTrace),
	}
}

// Assign binds an externally propagated trace ID (from a traceparent
// header) to a job's trace, live or finished.
func (r *TraceRecorder) Assign(job int, traceID string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t := r.lookupLocked(job); t != nil {
		t.TraceID = traceID
	}
}

// Get returns a copy of the job's trace, or false if it was never recorded
// or already evicted.
func (r *TraceRecorder) Get(job int) (JobTrace, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t := r.lookupLocked(job); t != nil {
		return snapshot(t), true
	}
	return JobTrace{}, false
}

// GetByID returns a copy of the trace bound (via Assign) to traceID.
func (r *TraceRecorder) GetByID(traceID string) (JobTrace, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range r.live {
		if t.TraceID == traceID {
			return snapshot(t), true
		}
	}
	for _, t := range r.done {
		if t.TraceID == traceID {
			return snapshot(t), true
		}
	}
	return JobTrace{}, false
}

// Recent returns copies of up to n finished traces, newest first.
func (r *TraceRecorder) Recent(n int) []JobTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > len(r.done) {
		n = len(r.done)
	}
	out := make([]JobTrace, 0, n)
	for i := 0; i < n; i++ {
		// Newest is the slot just before next (ring insertion order).
		idx := (r.next - 1 - i + len(r.done)) % len(r.done)
		out = append(out, snapshot(r.done[idx]))
	}
	return out
}

func (r *TraceRecorder) lookupLocked(job int) *JobTrace {
	if t, ok := r.live[job]; ok {
		return t
	}
	for _, t := range r.done {
		if t.Job == job {
			return t
		}
	}
	return nil
}

func snapshot(t *JobTrace) JobTrace {
	c := *t
	c.Spans = append([]Span(nil), t.Spans...)
	return c
}

// finishLocked moves a live trace into the done ring.
func (r *TraceRecorder) finishLocked(t *JobTrace) {
	delete(r.live, t.Job)
	if len(r.done) < r.depth {
		r.done = append(r.done, t)
		r.next = len(r.done) % r.depth
		return
	}
	r.done[r.next] = t
	r.next = (r.next + 1) % r.depth
}

// Job implements Probe.
func (r *TraceRecorder) Job(e JobEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch e.Kind {
	case JobArrive:
		r.live[e.Job] = &JobTrace{
			Job: e.Job, Benchmark: e.Benchmark,
			Arrival: e.At, Deadline: e.Deadline, State: "running",
		}
	case JobReject:
		if t, ok := r.live[e.Job]; ok {
			t.State, t.Finish = "rejected", e.At
			r.finishLocked(t)
		}
	case JobReady:
		if t, ok := r.live[e.Job]; ok {
			t.ready, t.hasReady = e.At, true
			t.Spans = append(t.Spans, Span{
				Kind: SpanPhase, Name: PhaseParse, Start: t.Arrival, End: e.At,
			})
		}
	case JobFallback:
		if t, ok := r.live[e.Job]; ok {
			t.FellBack = true
			t.Spans = append(t.Spans, Span{
				Kind: SpanEvent, Name: EventFallback, Start: e.At, End: e.At,
				Detail: "remaining kernels moved to the host CPU",
			})
		}
	case JobFinish, JobCancel:
		t, ok := r.live[e.Job]
		if !ok {
			return
		}
		r.inflight-- // finished and cancelled jobs were both admitted
		t.Finish = e.At
		if e.Kind == JobCancel {
			t.State = "cancelled"
		} else {
			t.State, t.Met = "done", e.Met
		}
		r.closePhasesLocked(t)
		r.finishLocked(t)
	}
}

// closePhasesLocked appends the remaining phase spans so that the phase
// partition covers [arrival, finish] exactly:
//
//	dispatched:       parse | queue | exec
//	never dispatched: parse | fallback   (CPU-only completion)
func (r *TraceRecorder) closePhasesLocked(t *JobTrace) {
	switch {
	case t.hasDispatch:
		t.Spans = append(t.Spans, Span{
			Kind: SpanPhase, Name: PhaseExec, Start: t.firstDispatch, End: t.Finish,
		})
	case t.hasReady:
		t.Spans = append(t.Spans, Span{
			Kind: SpanPhase, Name: PhaseFallback, Start: t.ready, End: t.Finish,
			Detail: "completed without ever dispatching to the GPU",
		})
	default:
		// Terminal before stream inspection finished (e.g. cancelled while
		// host-queued): the whole lifetime is parse.
		t.Spans = append(t.Spans, Span{
			Kind: SpanPhase, Name: PhaseParse, Start: t.Arrival, End: t.Finish,
		})
	}
}

// Admission implements Probe.
func (r *TraceRecorder) Admission(e AdmissionDecision) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.live[e.Job]
	if !ok {
		return
	}
	verdict := "reject"
	if e.Accepted {
		verdict = "accept"
		r.inflight++
	}
	detail := verdict
	if e.HasTerms {
		detail = fmt.Sprintf("%s: queue_delay=%dus + hold=%dus vs deadline=%dus",
			verdict, int64(us(e.QueueDelay)), int64(us(e.HoldTime)), int64(us(e.Deadline)))
	}
	t.Spans = append(t.Spans, Span{
		Kind: SpanEvent, Name: EventAdmit, Start: e.At, End: e.At, Detail: detail,
	})
}

// Epoch implements Probe (epochs are fleet-wide, not per-job).
func (r *TraceRecorder) Epoch(EpochSnapshot) {}

// Sample implements Probe (laxity samples stay in Metrics/Perfetto).
func (r *TraceRecorder) Sample(JobSample) {}

// TableRefresh implements Probe.
func (r *TraceRecorder) TableRefresh(TableRefresh) {}

// KernelStart implements Probe: the first dispatch closes the queue phase
// and records where exec begins; every dispatch opens a kernel span.
func (r *TraceRecorder) KernelStart(e KernelStart) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.live[e.Job]
	if !ok {
		return
	}
	if !t.hasDispatch {
		t.firstDispatch, t.hasDispatch = e.At, true
		start := t.Arrival
		if t.hasReady {
			start = t.ready
		}
		behind := r.inflight - 1
		if behind < 0 {
			behind = 0
		}
		t.Spans = append(t.Spans, Span{
			Kind: SpanPhase, Name: PhaseQueue, Start: start, End: e.At,
			Detail: fmt.Sprintf("behind %d admitted jobs", behind),
		})
	}
}

// KernelDone implements Probe: each completed kernel becomes one span.
func (r *TraceRecorder) KernelDone(e KernelDone) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.live[e.Job]
	if !ok {
		return
	}
	t.Spans = append(t.Spans, Span{
		Kind: SpanKernel, Name: e.Kernel, Start: e.Start, End: e.At,
		Detail: fmt.Sprintf("seq %d", e.Seq),
	})
}
