package obs

import (
	"strings"
	"testing"

	"laxgpu/internal/sim"
)

const usT = sim.Microsecond

// feedJob drives one synthetic job lifecycle through the recorder:
// arrive → admit → ready → first dispatch → kernel done → finish.
func feedJob(r *TraceRecorder, id int, arrive, ready, dispatch, finish sim.Time, met bool) {
	r.Job(JobEvent{At: arrive, Kind: JobArrive, Job: id, Benchmark: "LSTM", Deadline: arrive + 1000*usT})
	r.Admission(AdmissionDecision{At: arrive, Job: id, Accepted: true, HasTerms: true,
		QueueDelay: 10 * usT, HoldTime: 50 * usT, Deadline: 1000 * usT})
	r.Job(JobEvent{At: ready, Kind: JobReady, Job: id})
	r.KernelStart(KernelStart{At: dispatch, Job: id, Seq: 0, Kernel: "gemm"})
	r.KernelDone(KernelDone{At: finish, Job: id, Seq: 0, Kernel: "gemm", Start: dispatch})
	r.Job(JobEvent{At: finish, Kind: JobFinish, Job: id, Met: met})
}

func TestTraceRecorderPhasePartition(t *testing.T) {
	r := NewTraceRecorder(8)
	feedJob(r, 0, 0, 5*usT, 30*usT, 130*usT, false)

	tr, ok := r.Get(0)
	if !ok {
		t.Fatal("trace not recorded")
	}
	if tr.State != "done" || tr.Met {
		t.Fatalf("state=%q met=%v, want done/false", tr.State, tr.Met)
	}

	// The phase spans must partition [arrival, finish] contiguously.
	var phases []Span
	for _, s := range tr.Spans {
		if s.Kind == SpanPhase {
			phases = append(phases, s)
		}
	}
	if len(phases) != 3 {
		t.Fatalf("got %d phases, want 3 (parse/queue/exec): %+v", len(phases), phases)
	}
	wantNames := []string{PhaseParse, PhaseQueue, PhaseExec}
	var sum sim.Time
	cursor := tr.Arrival
	for i, p := range phases {
		if p.Name != wantNames[i] {
			t.Errorf("phase %d = %q, want %q", i, p.Name, wantNames[i])
		}
		if p.Start != cursor {
			t.Errorf("phase %q starts at %v, want contiguous %v", p.Name, p.Start, cursor)
		}
		cursor = p.End
		sum += p.End - p.Start
	}
	if sum != tr.Finish-tr.Arrival {
		t.Errorf("phase durations sum to %v, want latency %v", sum, tr.Finish-tr.Arrival)
	}

	// Wire conversion keeps the sum property in relative microseconds.
	w := tr.Wire("node-0")
	var wsum float64
	for _, s := range w.Spans {
		if s.Kind == SpanPhase {
			wsum += s.EndUs - s.StartUs
		}
		if s.Node != "node-0" {
			t.Errorf("wire span %q node = %q", s.Name, s.Node)
		}
	}
	if wsum != w.LatencyUs {
		t.Errorf("wire phase sum %v != latency %v", wsum, w.LatencyUs)
	}
}

func TestTraceRecorderBehindCount(t *testing.T) {
	r := NewTraceRecorder(8)
	// Three jobs admitted before job 2 dispatches; none finished yet.
	for id := 0; id < 3; id++ {
		r.Job(JobEvent{At: 0, Kind: JobArrive, Job: id, Deadline: 1000 * usT})
		r.Admission(AdmissionDecision{At: 0, Job: id, Accepted: true})
		r.Job(JobEvent{At: usT, Kind: JobReady, Job: id})
	}
	r.KernelStart(KernelStart{At: 10 * usT, Job: 2, Seq: 0, Kernel: "k"})
	r.Job(JobEvent{At: 20 * usT, Kind: JobFinish, Job: 2, Met: true})

	tr, _ := r.Get(2)
	var queue *Span
	for i := range tr.Spans {
		if tr.Spans[i].Name == PhaseQueue {
			queue = &tr.Spans[i]
		}
	}
	if queue == nil || !strings.Contains(queue.Detail, "behind 2 admitted jobs") {
		t.Fatalf("queue span detail = %+v, want behind 2 admitted jobs", queue)
	}
}

func TestTraceRecorderRejectAndCancel(t *testing.T) {
	r := NewTraceRecorder(8)
	r.Job(JobEvent{At: 0, Kind: JobArrive, Job: 0, Deadline: 100 * usT})
	r.Admission(AdmissionDecision{At: 0, Job: 0, Accepted: false, HasTerms: true,
		QueueDelay: 500 * usT, HoldTime: 80 * usT, Deadline: 100 * usT})
	r.Job(JobEvent{At: 0, Kind: JobReject, Job: 0})

	tr, ok := r.Get(0)
	if !ok || tr.State != "rejected" {
		t.Fatalf("rejected trace = %+v ok=%v", tr, ok)
	}
	if got := Attribute(tr.Wire("n")); got.Cause != "rejected" {
		t.Errorf("cause = %q, want rejected", got.Cause)
	}

	r.Job(JobEvent{At: 0, Kind: JobArrive, Job: 1, Deadline: 100 * usT})
	r.Admission(AdmissionDecision{At: 0, Job: 1, Accepted: true})
	r.Job(JobEvent{At: 2 * usT, Kind: JobReady, Job: 1})
	r.Job(JobEvent{At: 40 * usT, Kind: JobCancel, Job: 1})
	tr, _ = r.Get(1)
	if tr.State != "cancelled" {
		t.Fatalf("state = %q, want cancelled", tr.State)
	}
	if got := Attribute(tr.Wire("n")); got.Cause != "cancelled" {
		t.Errorf("cause = %q, want cancelled", got.Cause)
	}
}

func TestTraceRecorderRingEviction(t *testing.T) {
	r := NewTraceRecorder(2)
	for id := 0; id < 5; id++ {
		at := sim.Time(id) * 10 * usT
		feedJob(r, id, at, at+usT, at+2*usT, at+5*usT, true)
	}
	if _, ok := r.Get(0); ok {
		t.Error("oldest trace should have been evicted")
	}
	recent := r.Recent(10)
	if len(recent) != 2 {
		t.Fatalf("Recent = %d traces, want 2", len(recent))
	}
	if recent[0].Job != 4 || recent[1].Job != 3 {
		t.Errorf("Recent order = %d,%d, want newest first 4,3", recent[0].Job, recent[1].Job)
	}
}

func TestAttributeVerdicts(t *testing.T) {
	// Build wire traces directly: the verdict must reproduce the
	// metrics.ClassifyMiss decision tree from span data alone.
	base := func() WireTrace {
		return WireTrace{State: "done", SlackUs: 1000, LatencyUs: 1200}
	}

	queued := base()
	queued.Spans = []WireSpan{
		{Kind: SpanPhase, Name: PhaseParse, StartUs: 0, EndUs: 10},
		{Kind: SpanPhase, Name: PhaseQueue, StartUs: 10, EndUs: 710, Detail: "behind 3 admitted jobs"},
		{Kind: SpanPhase, Name: PhaseExec, StartUs: 710, EndUs: 1200},
	}
	if a := Attribute(queued); a.Cause != "queued" ||
		!strings.Contains(a.Detail, "71% of slack") || !strings.Contains(a.Detail, "behind 3") {
		t.Errorf("queued verdict = %+v", Attribute(queued))
	}

	contended := base()
	contended.Spans = []WireSpan{
		{Kind: SpanPhase, Name: PhaseParse, StartUs: 0, EndUs: 10},
		{Kind: SpanPhase, Name: PhaseQueue, StartUs: 10, EndUs: 100},
		{Kind: SpanPhase, Name: PhaseExec, StartUs: 100, EndUs: 1200},
	}
	if a := Attribute(contended); a.Cause != "contended" {
		t.Errorf("contended verdict = %+v", a)
	}

	starved := base()
	starved.Spans = []WireSpan{
		{Kind: SpanPhase, Name: PhaseParse, StartUs: 0, EndUs: 10},
		{Kind: SpanPhase, Name: PhaseQueue, StartUs: 10, EndUs: 1100},
		{Kind: SpanPhase, Name: PhaseExec, StartUs: 1100, EndUs: 1200},
	}
	if a := Attribute(starved); a.Cause != "starved" {
		t.Errorf("starved (late dispatch) verdict = %+v", a)
	}

	faulted := base()
	faulted.FellBack = true
	if a := Attribute(faulted); a.Cause != "faulted" {
		t.Errorf("faulted verdict = %+v", a)
	}

	met := base()
	met.Met = true
	met.Spans = queued.Spans
	a := Attribute(met)
	if a.Cause != "" {
		t.Errorf("met job got cause %q", a.Cause)
	}
	if len(a.Phases) != 3 || a.Phases[1].PctOfSlack != 70 {
		t.Errorf("phase shares = %+v", a.Phases)
	}
}

func TestTraceRecorderFallbackPhases(t *testing.T) {
	r := NewTraceRecorder(4)
	r.Job(JobEvent{At: 0, Kind: JobArrive, Job: 0, Deadline: 100 * usT})
	r.Admission(AdmissionDecision{At: 0, Job: 0, Accepted: true})
	r.Job(JobEvent{At: 2 * usT, Kind: JobReady, Job: 0})
	r.Job(JobEvent{At: 50 * usT, Kind: JobFallback, Job: 0})
	r.Job(JobEvent{At: 400 * usT, Kind: JobFinish, Job: 0, Met: false})

	tr, _ := r.Get(0)
	if !tr.FellBack {
		t.Fatal("FellBack not set")
	}
	var sum sim.Time
	names := map[string]bool{}
	for _, s := range tr.Spans {
		if s.Kind == SpanPhase {
			sum += s.End - s.Start
			names[s.Name] = true
		}
	}
	if !names[PhaseFallback] {
		t.Errorf("expected a %q phase, got %v", PhaseFallback, names)
	}
	if sum != tr.Finish-tr.Arrival {
		t.Errorf("phase sum %v != latency %v", sum, tr.Finish-tr.Arrival)
	}
	if a := Attribute(tr.Wire("n")); a.Cause != "faulted" {
		t.Errorf("cause = %q, want faulted", a.Cause)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	id := TraceIDFrom(7, 42)
	sp := SpanIDFrom(7, 42)
	if len(id) != 32 || len(sp) != 16 {
		t.Fatalf("id lengths: %d %d", len(id), len(sp))
	}
	if id2 := TraceIDFrom(7, 42); id2 != id {
		t.Error("TraceIDFrom not deterministic")
	}
	if TraceIDFrom(7, 43) == id {
		t.Error("distinct jobs share a trace ID")
	}
	h := FormatTraceparent(id, sp)
	gotID, gotSpan, ok := ParseTraceparent(h)
	if !ok || gotID != id || gotSpan != sp {
		t.Fatalf("round trip %q -> %q %q %v", h, gotID, gotSpan, ok)
	}
	for _, bad := range []string{
		"", "00-zz-11-01", "01-" + id + "-" + sp + "-01",
		"00-" + strings.Repeat("0", 32) + "-" + sp + "-01",
		"00-" + id + "-" + strings.Repeat("0", 16) + "-01",
		"00-" + id + "-" + sp,
	} {
		if _, _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent accepted %q", bad)
		}
	}
}
