package queueing

import (
	"math"
	"testing"

	"laxgpu/internal/sim"
)

// erlangCRef is the textbook-stable reference: the Erlang-B recurrence
// B_n = a·B_{n-1}/(n + a·B_{n-1}) converted to Erlang C via
// C = B / (1 − ρ(1 − B)). Every step keeps values in [0, 1], so it cannot
// overflow regardless of k — the yardstick the iterative a^n/n! sum in
// ErlangC is checked against at large k.
func erlangCRef(a float64, k int) float64 {
	b := 1.0
	for n := 1; n <= k; n++ {
		b = a * b / (float64(n) + a*b)
	}
	rho := a / float64(k)
	return b / (1 - rho*(1-b))
}

// TestErlangCNearSaturation drives utilization toward 1 from below. The
// formula's top term carries a k/(k−a) factor that blows up as a → k; the
// probability itself must stay finite, in (0, 1], and grow monotonically
// toward 1 as the safety margin shrinks.
func TestErlangCNearSaturation(t *testing.T) {
	for _, k := range []int{1, 4, 16, 64} {
		prev := -1.0
		for _, eps := range []float64{1e-1, 1e-3, 1e-6, 1e-9} {
			a := float64(k) * (1 - eps)
			q := MMK{Lambda: a * 1000, ServiceTime: sim.Millisecond, K: k}
			c, err := q.ErlangC()
			if err != nil {
				t.Fatalf("k=%d eps=%g: unexpected instability: %v", k, eps, err)
			}
			if math.IsNaN(c) || math.IsInf(c, 0) {
				t.Fatalf("k=%d eps=%g: ErlangC = %v", k, eps, c)
			}
			if c <= 0 || c > 1 {
				t.Fatalf("k=%d eps=%g: ErlangC = %g outside (0, 1]", k, eps, c)
			}
			if c < prev {
				t.Fatalf("k=%d: ErlangC fell from %g to %g as rho rose", k, prev, c)
			}
			prev = c
		}
		if prev < 0.999 {
			t.Errorf("k=%d: ErlangC = %g at rho = 1−1e-9, want ≈ 1", k, prev)
		}
	}
}

// TestErlangCLargeK checks the iterative a^n/n! accumulation against the
// overflow-proof Erlang-B recurrence at server counts far past anything the
// fleet runs (a^k and k! separately overflow float64 near k ≈ 170; the
// ratio must not).
func TestErlangCLargeK(t *testing.T) {
	for _, k := range []int{64, 128, 256, 1024} {
		for _, rho := range []float64{0.3, 0.7, 0.95} {
			a := rho * float64(k)
			q := MMK{Lambda: a * 100, ServiceTime: 10 * sim.Millisecond, K: k}
			got, err := q.ErlangC()
			if err != nil {
				t.Fatalf("k=%d rho=%g: %v", k, rho, err)
			}
			want := erlangCRef(a, k)
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("k=%d rho=%g: ErlangC = %.12g, reference = %.12g", k, rho, got, want)
			}
		}
	}
}

// TestErlangCDecreasesWithServers pins the pooling effect at fixed
// utilization: a bigger fleet at the same per-server load queues less.
func TestErlangCDecreasesWithServers(t *testing.T) {
	const rho = 0.8
	prev := 2.0
	for _, k := range []int{1, 2, 8, 64, 512} {
		q := MMK{Lambda: rho * float64(k) * 100, ServiceTime: 10 * sim.Millisecond, K: k}
		c, err := q.ErlangC()
		if err != nil {
			t.Fatal(err)
		}
		if c >= prev {
			t.Fatalf("ErlangC(k=%d) = %g did not drop below %g at fixed rho", k, c, prev)
		}
		prev = c
	}
}

// TestDeadlineMetFracMonotoneInK grows the fleet under a fixed offered
// stream: each added server may only improve the predicted deadline-met
// fraction, and with enough servers it must approach 1. This is the
// monotonicity the autoscaler's knee search depends on.
func TestDeadlineMetFracMonotoneInK(t *testing.T) {
	const lambda = 900.0
	service := 5 * sim.Millisecond
	deadline := 12 * sim.Millisecond
	prev := -1.0
	checked := 0
	for k := 1; k <= 64; k++ {
		q := MMK{Lambda: lambda, ServiceTime: service, K: k}
		if !q.Stable() {
			continue
		}
		met, err := q.DeadlineMetFrac(deadline)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if met < prev-1e-12 {
			t.Fatalf("met(k=%d) = %.9g < met(k=%d) = %.9g — adding a server hurt", k, met, k-1, prev)
		}
		prev = met
		checked++
	}
	if checked < 50 {
		t.Fatalf("only %d stable configurations checked", checked)
	}
	if prev < 0.9999 {
		t.Errorf("met(k=64) = %g, want ≈ 1 for a lightly loaded fleet", prev)
	}
}

// TestWaitExceedsNearSaturation: with the drain rate Kµ−λ nearly zero the
// exponential decay flattens; P(wait > t) must degrade gracefully to the
// Erlang-C mass rather than produce NaN from a 0·∞ style mishap.
func TestWaitExceedsNearSaturation(t *testing.T) {
	k := 8
	a := float64(k) * (1 - 1e-12)
	q := MMK{Lambda: a * 100, ServiceTime: 10 * sim.Millisecond, K: k}
	c, err := q.ErlangC()
	if err != nil {
		t.Fatal(err)
	}
	for _, horizon := range []sim.Time{0, sim.Millisecond, 3600 * sim.Second} {
		p, err := q.WaitExceeds(horizon)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(p) || p < 0 || p > c+1e-15 {
			t.Fatalf("WaitExceeds(%v) = %g with C = %g", horizon, p, c)
		}
	}
}
