// Package queueing provides analytical M/M/k approximations for the
// single-kernel benchmarks, used to validate the simulator: a stream of
// identical jobs with Poisson arrivals on a device that fits k of them
// concurrently is (approximately) an M/M/k queue, for which waiting-time
// distributions are known in closed form. Where theory applies, the
// simulated FCFS deadline-met fraction must track the analytical
// prediction — a correctness check no amount of unit testing of parts can
// substitute for.
package queueing

import (
	"fmt"
	"math"

	"laxgpu/internal/gpu"
	"laxgpu/internal/sim"
)

// MMK is an M/M/k queue: Poisson arrivals at rate Lambda, exponential-ish
// service with mean ServiceTime, K parallel servers.
type MMK struct {
	// Lambda is the arrival rate (jobs per second).
	Lambda float64

	// ServiceTime is the mean service duration.
	ServiceTime sim.Time

	// K is the server count.
	K int
}

// Offered returns the offered load in Erlangs (λ/µ).
func (q MMK) Offered() float64 {
	return q.Lambda * q.ServiceTime.Seconds()
}

// Utilization returns the per-server utilization ρ = a/K.
func (q MMK) Utilization() float64 { return q.Offered() / float64(q.K) }

// Stable reports whether the queue has a steady state (ρ < 1).
func (q MMK) Stable() bool { return q.K >= 1 && q.Utilization() < 1 }

// ErlangC returns the probability an arriving job must wait (all K servers
// busy), the Erlang-C formula. It requires a stable queue.
func (q MMK) ErlangC() (float64, error) {
	if !q.Stable() {
		return 0, fmt.Errorf("queueing: unstable queue (rho=%.3f)", q.Utilization())
	}
	a := q.Offered()
	k := q.K

	// Compute a^n/n! iteratively to avoid overflow.
	term := 1.0 // a^0/0!
	sum := term
	for n := 1; n < k; n++ {
		term *= a / float64(n)
		sum += term
	}
	top := term * a / float64(k) // a^k/k!
	top *= float64(k) / (float64(k) - a)
	return top / (sum + top), nil
}

// WaitExceeds returns P(queueing wait > t): C · exp(−(Kµ−λ)t).
func (q MMK) WaitExceeds(t sim.Time) (float64, error) {
	c, err := q.ErlangC()
	if err != nil {
		return 0, err
	}
	if t <= 0 {
		return c, nil
	}
	mu := 1.0 / q.ServiceTime.Seconds()
	rate := float64(q.K)*mu - q.Lambda
	return c * math.Exp(-rate*t.Seconds()), nil
}

// DeadlineMetFrac returns the predicted fraction of jobs meeting a relative
// deadline d under FCFS: the job must wait at most d − s, then be served
// (service time treated as deterministic at the mean — our kernels have
// essentially fixed durations, making this an M/D/k-flavored approximation
// that is slightly conservative on waits).
func (q MMK) DeadlineMetFrac(d sim.Time) (float64, error) {
	slack := d - q.ServiceTime
	if slack < 0 {
		return 0, nil // even an unqueued job cannot finish in time
	}
	pLate, err := q.WaitExceeds(slack)
	if err != nil {
		return 0, err
	}
	return 1 - pLate, nil
}

// ForKernel builds the M/M/k model of a single-kernel benchmark on the
// given device: K is the number of whole jobs the device hosts at once and
// the service time is the kernel's isolated execution time stretched by
// the memory contention of K co-resident jobs.
func ForKernel(cfg gpu.Config, desc *gpu.KernelDesc, jobsPerSec int) MMK {
	k := gpu.MaxConcurrentWGs(cfg, desc) / desc.NumWGs
	if k < 1 {
		k = 1
	}
	// Memory slowdown with k jobs resident.
	demand := float64(k*desc.NumWGs) * desc.MemIntensity * float64(desc.ThreadsPerWG)
	slow := demand / cfg.MemBandwidthDemand
	if slow < 1 {
		slow = 1
	}
	m := desc.MemIntensity
	stretch := (1 - m) + m*slow
	service := sim.Time(float64(gpu.IsolatedKernelTime(cfg, desc)) * stretch)
	return MMK{Lambda: float64(jobsPerSec), ServiceTime: service, K: k}
}
