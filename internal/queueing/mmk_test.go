package queueing

import (
	"math"
	"testing"

	"laxgpu/internal/cp"
	"laxgpu/internal/gpu"
	"laxgpu/internal/sched"
	"laxgpu/internal/sim"
	"laxgpu/internal/workload"
)

func TestErlangCKnownValues(t *testing.T) {
	// M/M/1 with ρ = 0.5: P(wait) = ρ = 0.5.
	q := MMK{Lambda: 5, ServiceTime: 100 * sim.Millisecond, K: 1}
	c, err := q.ErlangC()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-0.5) > 1e-9 {
		t.Fatalf("M/M/1 rho=0.5 ErlangC = %v, want 0.5", c)
	}
	// Textbook value: M/M/2 with a = 1 Erlang → C = 1/3.
	q = MMK{Lambda: 10, ServiceTime: 100 * sim.Millisecond, K: 2}
	c, err = q.ErlangC()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-1.0/3) > 1e-9 {
		t.Fatalf("M/M/2 a=1 ErlangC = %v, want 1/3", c)
	}
}

func TestErlangCUnstable(t *testing.T) {
	q := MMK{Lambda: 100, ServiceTime: 100 * sim.Millisecond, K: 2} // a=10 > 2
	if _, err := q.ErlangC(); err == nil {
		t.Fatal("unstable queue accepted")
	}
	if q.Stable() {
		t.Fatal("Stable() wrong")
	}
	if math.Abs(q.Offered()-10) > 1e-9 || math.Abs(q.Utilization()-5) > 1e-9 {
		t.Fatalf("offered/utilization wrong: %v %v", q.Offered(), q.Utilization())
	}
}

func TestWaitExceedsDecays(t *testing.T) {
	q := MMK{Lambda: 8, ServiceTime: 100 * sim.Millisecond, K: 2}
	p0, _ := q.WaitExceeds(0)
	p1, _ := q.WaitExceeds(100 * sim.Millisecond)
	p2, _ := q.WaitExceeds(sim.Second)
	if !(p0 > p1 && p1 > p2) {
		t.Fatalf("wait tail not decaying: %v %v %v", p0, p1, p2)
	}
	c, _ := q.ErlangC()
	if p0 != c {
		t.Fatalf("P(W>0) = %v, want ErlangC %v", p0, c)
	}
}

func TestDeadlineMetFracBounds(t *testing.T) {
	q := MMK{Lambda: 8, ServiceTime: 100 * sim.Millisecond, K: 2}
	// Deadline below the service time: impossible.
	if f, _ := q.DeadlineMetFrac(50 * sim.Millisecond); f != 0 {
		t.Fatalf("sub-service deadline met frac %v", f)
	}
	// Generous deadline: nearly all.
	f, err := q.DeadlineMetFrac(10 * sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if f < 0.999 {
		t.Fatalf("generous deadline met frac %v", f)
	}
	// Monotone in deadline.
	f1, _ := q.DeadlineMetFrac(150 * sim.Millisecond)
	f2, _ := q.DeadlineMetFrac(300 * sim.Millisecond)
	if f2 < f1 {
		t.Fatal("met frac not monotone in deadline")
	}
}

// TestTheoryMatchesSimulation is the module's reason to exist: for a
// stable single-kernel queue under FCFS, the analytical deadline-met
// fraction must land near the simulated one.
func TestTheoryMatchesSimulation(t *testing.T) {
	cfg := cp.DefaultSystemConfig()
	lib := workload.NewLibrary(cfg.GPU)
	bench, err := workload.FindBenchmark("CUCKOO")
	if err != nil {
		t.Fatal(err)
	}
	desc := lib.Kernel("cuckooKernel")

	// Pick a clearly stable rate: half the benchmark's low rate.
	rate := bench.JobsPerSecond(workload.LowRate) / 2
	model := ForKernel(cfg.GPU, desc, rate)
	if !model.Stable() {
		t.Skipf("model unstable at %d jobs/s (rho=%.2f)", rate, model.Utilization())
	}
	predicted, err := model.DeadlineMetFrac(bench.Deadline)
	if err != nil {
		t.Fatal(err)
	}

	const jobs = 600
	set := bench.GenerateCustom(lib, rate, jobs, 11)
	pol, err := sched.New("FCFS")
	if err != nil {
		t.Fatal(err)
	}
	sys := cp.NewSystem(cfg, set, pol)
	sys.Run()
	met := 0
	for _, j := range sys.Jobs() {
		if j.MetDeadline() {
			met++
		}
	}
	simulated := float64(met) / jobs

	// M/M/k has exponential service; our kernels are deterministic, so
	// theory over-predicts waits (conservative). Accept a generous band
	// but demand the same ballpark.
	if diff := math.Abs(simulated - predicted); diff > 0.15 {
		t.Fatalf("simulated %.3f vs predicted %.3f (diff %.3f): substrate and theory disagree",
			simulated, predicted, diff)
	}
}

func TestForKernelShape(t *testing.T) {
	cfg := gpu.DefaultConfig()
	lib := workload.NewLibrary(cfg)
	m := ForKernel(cfg, lib.Kernel("IPV6Kernel"), 16000)
	if m.K < 1 {
		t.Fatalf("K = %d", m.K)
	}
	if m.ServiceTime < 25*sim.Microsecond {
		t.Fatalf("service %v below isolated time", m.ServiceTime)
	}
	if m.Lambda != 16000 {
		t.Fatalf("lambda %v", m.Lambda)
	}
}
