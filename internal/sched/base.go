// Package sched implements every queue-scheduling policy evaluated in the
// paper (Table 3): the contemporary round-robin baseline, three
// state-of-the-art CPU-side schedulers (BatchMaker, Baymax, Prophet), five
// advanced command-processor schedulers (MLFQ, EDF, SJF, SRF, LJF), the
// preemptive PREMA, and the three laxity-aware variants (LAX, LAX-SW,
// LAX-CPU) built on internal/core.
package sched

import (
	"laxgpu/internal/core"
	"laxgpu/internal/cp"
	"laxgpu/internal/gpu"
	"laxgpu/internal/obs"
	"laxgpu/internal/sim"
)

// Host-side communication costs from §5.1 of the paper.
const (
	// HostLaunchOverhead is the host↔device round trip CPU-side schedulers
	// pay per kernel in a job ("this adds 4 µs of host-device communication
	// overhead per kernel").
	HostLaunchOverhead = 4 * sim.Microsecond

	// BaymaxModelOverhead is Baymax's per-job regression-model cost ("we
	// add 50 µs of overhead to BAY for calls to its regression model").
	BaymaxModelOverhead = 50 * sim.Microsecond

	// MMIOWriteLatency is the cost of LAX-CPU's user-level priority write
	// to the queue's memory-mapped priority register.
	MMIOWriteLatency = 1 * sim.Microsecond
)

// staticJobTime is the offline-profiled prediction of a job's isolated
// execution time: the sum of its kernels' isolated times on the configured
// device. BAY's regression model, PRO's offline profiles, and the static
// SJF/LJF orderings all key off this quantity.
func staticJobTime(cfg gpu.Config, j *cp.JobRun) sim.Time {
	var t sim.Time
	for _, inst := range j.Instances {
		t += gpu.IsolatedKernelTime(cfg, inst.Desc)
	}
	return t
}

// staticRemainingTime is the offline prediction restricted to kernels that
// have not completed yet.
func staticRemainingTime(cfg gpu.Config, j *cp.JobRun) sim.Time {
	var t sim.Time
	for i := j.CurrentIndex(); i < len(j.Instances); i++ {
		t += gpu.IsolatedKernelTime(cfg, j.Instances[i].Desc)
	}
	return t
}

// clampPriority converts a signed time-like value to a priority, saturating
// instead of overflowing.
func clampPriority(v sim.Time) int64 {
	return int64(v)
}

// The probe helpers below route decision events to the system's attached
// obs.Probe. Each is a no-op when no probe is attached, and every event is
// built inside the nil guard, so unprobed runs pay one pointer compare and
// zero allocations per decision. Probe emission must stay a pure read of
// decisions the policy already made — never compute scheduling inputs here.

// probeAdmission records an accept/reject verdict for a policy with no
// Little's-Law terms (deadline-blind or heuristic admission).
func probeAdmission(sys *cp.System, name string, j *cp.JobRun, accepted bool) {
	if p := sys.Probe(); p != nil {
		p.Admission(obs.AdmissionDecision{
			At: sys.Now(), Scheduler: name, Job: j.Job.ID, Accepted: accepted,
		})
	}
}

// probeAdmissionTerms records an accept/reject verdict together with the
// Algorithm 1 terms that produced it: queueDelay + hold < deadline.
func probeAdmissionTerms(sys *cp.System, name string, j *cp.JobRun, accepted bool, queueDelay, hold sim.Time) {
	if p := sys.Probe(); p != nil {
		p.Admission(obs.AdmissionDecision{
			At: sys.Now(), Scheduler: name, Job: j.Job.ID, Accepted: accepted,
			HasTerms: true, QueueDelay: queueDelay, HoldTime: hold,
			Deadline: j.Job.Deadline,
		})
	}
}

// probeEpoch marks the start of one Reprioritize pass.
func probeEpoch(sys *cp.System, name string) {
	if p := sys.Probe(); p != nil {
		p.Epoch(obs.EpochSnapshot{
			At: sys.Now(), Scheduler: name,
			Active: len(sys.Active()), HostQueued: sys.HostQueueLen(),
		})
	}
}

// probeSamples emits one priority-only sample per active job, for policies
// without laxity or remaining-time machinery. Policies that compute richer
// quantities (LAX, SRF, ORACLE) emit their samples inline instead.
func probeSamples(sys *cp.System) {
	p := sys.Probe()
	if p == nil {
		return
	}
	now := sys.Now()
	for _, j := range sys.Active() {
		p.Sample(obs.JobSample{At: now, Job: j.Job.ID, Queue: j.QueueID, Priority: j.Priority})
	}
}

// probeTableRefresh marks one Kernel Profiling Table update.
func probeTableRefresh(sys *cp.System, name string, kernels int) {
	if p := sys.Probe(); p != nil {
		p.TableRefresh(obs.TableRefresh{At: sys.Now(), Scheduler: name, Kernels: kernels})
	}
}

// staticKernelEstimate is the offline-profile prediction of a job's current
// kernel: the KernelEstimator implementation shared by the statically
// profiled policies (SJF, LJF, BAY, PRO, ORACLE).
func staticKernelEstimate(sys *cp.System, j *cp.JobRun) (sim.Time, bool) {
	k := j.Current()
	if k == nil {
		return 0, false
	}
	return gpu.IsolatedKernelTime(sys.Device().Config(), k.Desc), true
}

// registerCapacities tells the profiling table how many WGs of each of the
// job's kernel types fit on the device at once. Stream inspection reads
// exactly these fields (thread dimensions, register usage, LDS size) from
// the queue packets (§2.1), so the CP has them for free. Capacities are
// read from the live device, not the nominal config, so admission and
// laxity estimates track the current capacity of a degraded (CU-retired)
// device.
func registerCapacities(pt *core.ProfilingTable, dev *gpu.Device, j *cp.JobRun) {
	for _, inst := range j.Instances {
		pt.SetCapacity(inst.Desc.Name, dev.MaxConcurrentWGs(inst.Desc))
	}
}
