package sched

import (
	"testing"

	"laxgpu/internal/cp"
	"laxgpu/internal/gpu"
	"laxgpu/internal/sim"
)

// TestBAYReprioritizesByHeadroom: among admitted jobs, the one closest to
// its deadline (least headroom) must carry the lowest priority value.
func TestBAYReprioritizesByHeadroom(t *testing.T) {
	k := kdesc("k", 4, 2560, 400*sim.Microsecond, 0)
	set := buildSet([]jobSpec{
		{0, 50 * sim.Millisecond, []*gpu.KernelDesc{k, k}}, // roomy
		{0, 5 * sim.Millisecond, []*gpu.KernelDesc{k, k}},  // tight
	})
	p := NewBAY()
	sys := cp.NewSystem(cp.DefaultSystemConfig(), set, p)
	probed := false
	sys.Engine().Schedule(500*sim.Microsecond, func() { // after a 200µs+4µs tick
		if len(sys.Active()) != 2 {
			return
		}
		j0, j1 := sys.Job(0), sys.Job(1)
		if j1.Priority >= j0.Priority {
			t.Errorf("tight-deadline job not prioritized: roomy=%d tight=%d",
				j0.Priority, j1.Priority)
		}
		probed = true
	})
	sys.Run()
	if !probed {
		t.Skip("jobs finished before probe")
	}
}

// TestBAYQueueEstimateGrowsWithAdmissions: each admitted job inflates the
// estimate the next admission sees, eventually rejecting.
func TestBAYQueueEstimateGrowsWithAdmissions(t *testing.T) {
	k := kdesc("k", 8, 2560, 2*sim.Millisecond, 0) // 2ms-per-wave kernel
	specs := make([]jobSpec, 12)
	for i := range specs {
		specs[i] = jobSpec{sim.Time(i) * sim.Microsecond, 4 * sim.Millisecond, []*gpu.KernelDesc{k}}
	}
	sys := runPolicy(t, NewBAY(), buildSet(specs))
	if sys.RejectedCount() == 0 {
		t.Fatal("BAY admitted an unbounded queue")
	}
	if sys.RejectedCount() == len(specs) {
		t.Fatal("BAY rejected everything, including the feasible head")
	}
}

// TestPROResumesHeldJobs: jobs held beyond the co-location budget must
// resume (FIFO) as earlier jobs finish.
func TestPROResumesHeldJobs(t *testing.T) {
	k := kdesc("k", 8, 2560, 300*sim.Microsecond, 0.5)
	specs := make([]jobSpec, 4)
	for i := range specs {
		specs[i] = jobSpec{0, 100 * sim.Millisecond, []*gpu.KernelDesc{k}}
	}
	sys := runPolicy(t, NewPRO(), buildSet(specs))
	var finishes []sim.Time
	for _, j := range sys.Jobs() {
		if !j.Done() {
			t.Fatalf("job %d starved under PRO", j.Job.ID)
		}
		finishes = append(finishes, j.FinishTime)
	}
	// FIFO hold/release: completion order follows arrival order.
	for i := 1; i < len(finishes); i++ {
		if finishes[i] < finishes[i-1] {
			t.Fatalf("PRO completion order not FIFO: %v", finishes)
		}
	}
}

// TestEDFOrderingUnderMixedDeadlines: with one slot and three queued jobs,
// EDF must service them in absolute-deadline order regardless of arrival.
func TestEDFOrderingUnderMixedDeadlines(t *testing.T) {
	cfg := cp.DefaultSystemConfig()
	cfg.GPU.NumCUs = 1
	k := kdesc("k", 1, 2560, 200*sim.Microsecond, 0)
	set := buildSet([]jobSpec{
		{0, 10 * sim.Millisecond, []*gpu.KernelDesc{k}},                   // busy first
		{10 * sim.Microsecond, 5 * sim.Millisecond, []*gpu.KernelDesc{k}}, // later deadline
		{20 * sim.Microsecond, 1 * sim.Millisecond, []*gpu.KernelDesc{k}}, // earliest deadline
		{30 * sim.Microsecond, 2 * sim.Millisecond, []*gpu.KernelDesc{k}}, // middle
	})
	sys := cp.NewSystem(cfg, set, NewEDF())
	sys.Run()
	// After job 0 (head start), the slot order must be 2, 3, 1.
	if !(sys.Job(2).FinishTime < sys.Job(3).FinishTime &&
		sys.Job(3).FinishTime < sys.Job(1).FinishTime) {
		t.Fatalf("EDF order wrong: j1=%v j2=%v j3=%v",
			sys.Job(1).FinishTime, sys.Job(2).FinishTime, sys.Job(3).FinishTime)
	}
}

// TestMLFQServedTracksHighQueue: the Served pointer only tracks high-queue
// grants, so low-priority service does not disturb the high-queue cycle.
func TestMLFQServedTracksHighQueue(t *testing.T) {
	p := NewMLFQ()
	hi1 := &cp.JobRun{Priority: mlfqHigh}
	hi2 := &cp.JobRun{Priority: mlfqHigh}
	lo := &cp.JobRun{Priority: mlfqLow}
	active := []*cp.JobRun{hi1, hi2, lo}

	p.Served(hi1)
	if got := p.Order(active)[0]; got != hi2 {
		t.Fatal("high-queue pointer did not advance")
	}
	p.Served(lo) // must not move the high-queue pointer
	if got := p.Order(active)[0]; got != hi2 {
		t.Fatal("low-queue grant disturbed the high-queue cycle")
	}
}

// TestFCFSIsArrivalOrder: one slot, three jobs with deliberately inverted
// "urgency"; FCFS must ignore it.
func TestFCFSIsArrivalOrder(t *testing.T) {
	cfg := cp.DefaultSystemConfig()
	cfg.GPU.NumCUs = 1
	k := kdesc("k", 1, 2560, 100*sim.Microsecond, 0)
	set := buildSet([]jobSpec{
		{0, 10 * sim.Millisecond, []*gpu.KernelDesc{k}},
		{sim.Microsecond, sim.Millisecond, []*gpu.KernelDesc{k}},
		{2 * sim.Microsecond, 500 * sim.Microsecond, []*gpu.KernelDesc{k}},
	})
	sys := cp.NewSystem(cfg, set, NewFCFS())
	sys.Run()
	if !(sys.Job(0).FinishTime < sys.Job(1).FinishTime &&
		sys.Job(1).FinishTime < sys.Job(2).FinishTime) {
		t.Fatal("FCFS did not serve in arrival order")
	}
}

// TestORACLEAdmissionUsesTrueTimes: with exact knowledge, the oracle
// rejects a job whose queue provably forecloses its deadline even with no
// profiling history (where LAX would optimistically admit).
func TestORACLEAdmissionUsesTrueTimes(t *testing.T) {
	k := kdesc("k", 8, 2560, 2*sim.Millisecond, 0)
	set := buildSet([]jobSpec{
		{0, 100 * sim.Millisecond, []*gpu.KernelDesc{k, k, k}}, // 6ms of device time
		{sim.Microsecond, 3 * sim.Millisecond, []*gpu.KernelDesc{k}},
	})
	sys := runPolicy(t, NewORACLE(), set)
	if !sys.Job(1).Rejected() {
		t.Fatalf("oracle admitted a provably doomed job (state %v)", sys.Job(1).State())
	}
	if sys.Job(0).Rejected() {
		t.Fatal("oracle rejected the feasible head job")
	}
}

// TestSJFStaticUnderProgress: SJF priorities must not change as the job
// runs (static policy), unlike SRF.
func TestSJFStaticUnderProgress(t *testing.T) {
	k := kdesc("k", 8, 2560, 500*sim.Microsecond, 0)
	set := buildSet([]jobSpec{{0, 100 * sim.Millisecond, []*gpu.KernelDesc{k, k, k}}})
	p := NewSJF()
	sys := cp.NewSystem(cp.DefaultSystemConfig(), set, p)
	var first int64 = -1
	probed := 0
	for _, at := range []sim.Time{10 * sim.Microsecond, sim.Millisecond, 2 * sim.Millisecond} {
		at := at
		sys.Engine().Schedule(at, func() {
			if len(sys.Active()) != 1 {
				return
			}
			pr := sys.Active()[0].Priority
			if first < 0 {
				first = pr
			} else if pr != first {
				t.Errorf("SJF priority changed mid-run: %d -> %d", first, pr)
			}
			probed++
		})
	}
	sys.Run()
	if probed < 2 {
		t.Skip("job finished before probes")
	}
}

// TestLAXAdmissionTracksRetiredCapacity: Algorithm 1 must estimate against
// the device's current capacity, not its nominal one. With 7 of 8 CUs
// retired before any job arrives, profiled rates reflect the shrunken
// device and admission must turn jobs away that the healthy device would
// happily absorb.
func TestLAXAdmissionTracksRetiredCapacity(t *testing.T) {
	k := &gpu.KernelDesc{Name: "adm", NumWGs: 64, ThreadsPerWG: 1024,
		BaseWGTime: 100 * sim.Microsecond, InstPerThread: 1}
	specs := make([]jobSpec, 10)
	for i := range specs {
		specs[i] = jobSpec{sim.Time(i) * 500 * sim.Microsecond, sim.Millisecond, []*gpu.KernelDesc{k}}
	}

	run := func(retire bool) *cp.System {
		cfg := cp.DefaultSystemConfig()
		sys := cp.NewSystem(cfg, buildSet(specs), NewLAX())
		if retire {
			sys.InstallFaults(nil, []gpu.Retirement{{At: 0, CUs: 7}})
		}
		sys.Run()
		return sys
	}

	healthy, degraded := run(false), run(true)
	if healthy.RejectedCount() > 2 {
		t.Fatalf("healthy device rejected %d jobs, expected ≤2", healthy.RejectedCount())
	}
	if degraded.RejectedCount() <= healthy.RejectedCount() {
		t.Fatalf("degraded device rejected %d jobs vs healthy %d; admission ignored lost capacity",
			degraded.RejectedCount(), healthy.RejectedCount())
	}
}
