package sched

import (
	"laxgpu/internal/cp"
	"laxgpu/internal/obs"
	"laxgpu/internal/sim"
)

// cpuSideInterval is the decision cadence of the host-resident schedulers:
// they cannot react at the CP's 100 µs granularity, and every decision
// additionally lands a host-device round trip late.
const cpuSideInterval = 200 * sim.Microsecond

// BAT is BatchMaker [28]: cellular batching on the host. Jobs executing the
// same kernel type are fused into a batch that advances in lock-step —
// efficient when requests arrive together, but deadline-blind, and the
// lock-step barrier makes fast jobs wait for slow batch-mates ("BAT
// executes these kernels in a lock-step manner and is not aware of the
// job's deadlines", §6.1.1).
type BAT struct {
	sys *cp.System

	// group maps a job to its current batch (the set is shared by all
	// members). Groups are re-formed every interval from jobs whose current
	// kernel types match.
	group map[*cp.JobRun][]*cp.JobRun
}

// NewBAT returns the BatchMaker scheduler.
func NewBAT() *BAT { return &BAT{} }

// Name implements cp.Policy.
func (p *BAT) Name() string { return "BAT" }

// Attach implements cp.Policy.
func (p *BAT) Attach(s *cp.System) {
	p.sys = s
	p.group = make(map[*cp.JobRun][]*cp.JobRun)
}

// Admit implements cp.Policy: BatchMaker is deadline-blind; everything is
// batched.
func (p *BAT) Admit(j *cp.JobRun) bool {
	j.Priority = 0
	probeAdmission(p.sys, p.Name(), j, true)
	return true
}

// Reprioritize implements cp.Policy: re-form batch groups. A cell is a
// (kernel type, position in chain) pair; jobs at the same cell are fused
// into one batch. Larger batches are prioritized (batching efficiency),
// which is exactly what ignores deadlines.
func (p *BAT) Reprioritize() {
	probeEpoch(p.sys, p.Name())
	type cell struct {
		kernel string
		index  int
	}
	groups := make(map[cell][]*cp.JobRun)
	for _, j := range p.sys.Active() {
		k := j.Current()
		if k == nil {
			continue
		}
		c := cell{k.Desc.Name, j.CurrentIndex()}
		groups[c] = append(groups[c], j)
	}
	p.group = make(map[*cp.JobRun][]*cp.JobRun, len(p.sys.Active()))
	for _, members := range groups {
		for _, j := range members {
			p.group[j] = members
			// Bigger batch → higher priority (lower value).
			j.Priority = -int64(len(members))
		}
	}
	probeSamples(p.sys)
}

// CanAdvance implements cp.AdvanceGate: lock-step cellular batching for
// many-kernel (RNN) jobs. A new job waits until a batching window assigns
// it a group (requests accumulate into cells), and may launch its next
// kernel only when every batch-mate has progressed at least as far
// (finished jobs drop out naturally). Single-kernel jobs have no cells to
// fuse and pass straight through.
func (p *BAT) CanAdvance(j *cp.JobRun) bool {
	if len(j.Instances) <= 1 {
		return true
	}
	if p.group[j] == nil {
		return false // not yet batched; wait for the next window
	}
	for _, m := range p.group[j] {
		if m == j || m.Done() {
			continue
		}
		if m.CurrentIndex() < j.CurrentIndex() {
			return false
		}
	}
	return true
}

// Interval implements cp.Policy.
func (p *BAT) Interval() sim.Time { return cpuSideInterval }

// Overheads implements cp.Policy: host-side launches.
func (p *BAT) Overheads() cp.Overheads {
	return cp.Overheads{
		PerKernelLaunch:       HostLaunchOverhead,
		PriorityUpdateLatency: HostLaunchOverhead,
	}
}

// bayConcurrency is Baymax's coarse assumption about how many jobs the
// accelerator overlaps; its queuing model divides outstanding work by this
// fixed factor rather than observing real completion rates — one of the
// inaccuracies that separate it from LAX.
const bayConcurrency = 4

// BAY is Baymax [54]: pre-trained regression models predict each job's
// execution time; jobs are admitted only when the predicted queuing delay
// leaves QoS headroom, and active jobs are re-ordered by that headroom.
// Every admission costs a 50 µs model invocation, which makes sub-50 µs
// deadlines (IPV6) unreachable (§6.1.1).
type BAY struct {
	sys *cp.System

	// outstanding is the predicted work (time) admitted but not yet
	// finished, the input to the queuing-delay heuristic.
	predicted map[*cp.JobRun]sim.Time
}

// NewBAY returns the Baymax scheduler.
func NewBAY() *BAY { return &BAY{} }

// Name implements cp.Policy.
func (p *BAY) Name() string { return "BAY" }

// Attach implements cp.Policy.
func (p *BAY) Attach(s *cp.System) {
	p.sys = s
	p.predicted = make(map[*cp.JobRun]sim.Time)
}

// queueEstimate predicts how long a new job waits behind admitted work:
// outstanding predicted time divided by an assumed concurrency.
func (p *BAY) queueEstimate() sim.Time {
	var sum sim.Time
	for j, t := range p.predicted {
		if j.Done() {
			delete(p.predicted, j)
			continue
		}
		sum += t
	}
	return sum / bayConcurrency
}

// Admit implements cp.Policy: accept only if model cost + predicted wait +
// predicted run time fit in the deadline (QoS headroom > 0).
func (p *BAY) Admit(j *cp.JobRun) bool {
	cfg := p.sys.Device().Config()
	jobTime := staticJobTime(cfg, j) +
		sim.Time(len(j.Instances))*HostLaunchOverhead
	queue := p.queueEstimate()
	need := BaymaxModelOverhead + queue + jobTime
	accepted := need < j.Job.Deadline
	// Baymax's test is need < deadline with the model cost folded into the
	// queuing term; report queueDelay = wait-before-run, hold = run time.
	probeAdmissionTerms(p.sys, p.Name(), j, accepted, BaymaxModelOverhead+queue, jobTime)
	if !accepted {
		return false
	}
	p.predicted[j] = jobTime
	j.Priority = clampPriority(j.Job.Deadline - need) // headroom
	return true
}

// Reprioritize implements cp.Policy: re-rank by remaining QoS headroom
// (absolute deadline minus now minus predicted remaining time). Smaller
// headroom → more urgent.
func (p *BAY) Reprioritize() {
	probeEpoch(p.sys, p.Name())
	cfg := p.sys.Device().Config()
	now := p.sys.Now()
	pr := p.sys.Probe()
	for _, j := range p.sys.Active() {
		rem := staticRemainingTime(cfg, j)
		headroom := j.Job.AbsoluteDeadline() - now - rem
		j.Priority = clampPriority(headroom)
		if pr != nil {
			pr.Sample(obs.JobSample{
				At: now, Job: j.Job.ID, Queue: j.QueueID, Priority: j.Priority,
				HasPrediction: true, PredictedRem: rem,
			})
		}
	}
}

// Interval implements cp.Policy.
func (p *BAY) Interval() sim.Time { return cpuSideInterval }

// Overheads implements cp.Policy: per-kernel host launches, a 50 µs
// regression-model call per job, and round-trip-delayed priority updates.
func (p *BAY) Overheads() cp.Overheads {
	return cp.Overheads{
		PerKernelLaunch:       HostLaunchOverhead,
		PerJobAdmission:       BaymaxModelOverhead,
		PriorityUpdateLatency: HostLaunchOverhead,
	}
}

// EstimateKernelTime implements cp.KernelEstimator from Baymax's regression
// model (the offline isolated-time profile in this reproduction).
func (p *BAY) EstimateKernelTime(j *cp.JobRun) (sim.Time, bool) {
	return staticKernelEstimate(p.sys, j)
}

// PRO is Prophet [53]: offline profiles predict kernel resource usage and
// interference, and the host co-schedules only job sets whose *summed*
// standalone demand fits the device — a conservative estimate that "does
// not consider overlapping kernels" (§6.2). Jobs beyond the co-location
// budget are held (paused), so under heavy load queuing delay grows and
// held jobs eventually run anyway and miss — the paper's observed waste.
type PRO struct {
	sys *cp.System
}

// NewPRO returns the Prophet scheduler.
func NewPRO() *PRO { return &PRO{} }

// Name implements cp.Policy.
func (p *PRO) Name() string { return "PRO" }

// Attach implements cp.Policy.
func (p *PRO) Attach(s *cp.System) { p.sys = s }

// Admit implements cp.Policy: Prophet improves utilization rather than
// rejecting latency-sensitive work.
func (p *PRO) Admit(j *cp.JobRun) bool {
	j.Priority = 0
	probeAdmission(p.sys, p.Name(), j, true)
	return true
}

// Reprioritize implements cp.Policy: choose the FIFO prefix of jobs whose
// summed thread and memory demand fits the device under the conservative
// no-overlap model; hold the rest.
func (p *PRO) Reprioritize() {
	probeEpoch(p.sys, p.Name())
	cfg := p.sys.Device().Config()
	threadBudget := cfg.TotalThreads()
	memBudget := cfg.MemBandwidthDemand

	threads := 0
	mem := 0.0
	for _, j := range p.sys.Active() {
		k := j.Current()
		if k == nil {
			continue
		}
		jobThreads := k.Desc.TotalThreads()
		jobMem := k.Desc.MemIntensity * float64(jobThreads)
		if threads+jobThreads <= threadBudget && mem+jobMem <= memBudget {
			threads += jobThreads
			mem += jobMem
			j.Resume()
			j.Priority = 0
		} else {
			j.Pause()
			j.Priority = 1
		}
	}
	probeSamples(p.sys)
}

// Interval implements cp.Policy.
func (p *PRO) Interval() sim.Time { return cpuSideInterval }

// Overheads implements cp.Policy: offline profiling avoids BAY's model
// cost, but launches still cross the host-device boundary.
func (p *PRO) Overheads() cp.Overheads {
	return cp.Overheads{
		PerKernelLaunch:       HostLaunchOverhead,
		PriorityUpdateLatency: HostLaunchOverhead,
	}
}

// EstimateKernelTime implements cp.KernelEstimator from Prophet's offline
// kernel profiles.
func (p *PRO) EstimateKernelTime(j *cp.JobRun) (sim.Time, bool) {
	return staticKernelEstimate(p.sys, j)
}
