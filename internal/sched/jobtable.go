package sched

import (
	"laxgpu/internal/core"
	"laxgpu/internal/cp"
	"laxgpu/internal/sim"
)

// jobTable is the incremental remaining-time estimator shared by the
// profiling-table-driven policies (LAX's CP variant and SRF). It is the
// dirty-set machinery behind Algorithm 2's 100 µs epoch: instead of walking
// every job's WGList and re-deriving each kernel's launch time per pass,
// the table caches one entry per job — addressed by Job.ID, a slice index,
// not a map — and revalidates it with three integer compares:
//
//   - the profiling-table version (did any rate or capacity move?),
//   - the job's current-kernel index (did a kernel finish?),
//   - the job's completed-WG count (the WG-completion delta).
//
// A job whose three stamps match is clean: its cached remaining/drain
// estimates are returned untouched. Any mismatch marks the job dirty and
// recomputes from per-(kernel, WG-count) launch-time slots that are
// themselves memoized per table version, so a chain of thirty GEMMs costs
// thirty slice reads and adds — the float divisions happen once per kernel
// shape per epoch, not once per job per kernel per epoch.
//
// Exactness: estimates are integer sums (sim.Time) of per-kernel launch
// times that depend only on (rate, capacity, WG count). The version stamp
// pins the first two and the cur/WG stamps pin the third, so a cache hit
// returns bit-identical values to a full recompute — pinned by the
// differential suite (TestIncrementalLAXDifferential, 500 random workloads
// against the DisableIncremental reference path).
type jobTable struct {
	pt *core.ProfilingTable

	// ents is indexed by Job.ID. cp.System itself keeps a []*JobRun by
	// Job.ID for the life of the system, so this parallels existing
	// per-job state rather than adding a new growth axis.
	ents []jobEntry

	// slots dedupe full-launch estimates by (kernel ID, WG count); slotIdx
	// interns them. Slot values are stamped with the pt version they were
	// computed at.
	slots   []fullSlot
	slotIdx map[slotKey]int32
}

// jobEntry caches one job's estimates and the stamps that validate them.
type jobEntry struct {
	chain      []int32 // per kernel: index into slots, resolved at admit
	registered bool
	valid      bool
	lastVer    uint64
	lastCur    int32
	lastWGs    int32
	rem        sim.Time // pt.RemainingTime(j.RemainingWGList())
	drain      sim.Time // pt.RemainingDrain(j.RemainingWGList())
}

type slotKey struct {
	ptID int32
	wgs  int32
}

// fullSlot memoizes the launch-time/drain-time of one kernel shape (dense
// profiling-table ID × WG count), recomputed at most once per table
// version.
type fullSlot struct {
	ptID    int32
	wgs     int32
	stamp   uint64 // pt version kt/dt were computed at
	stamped bool
	kt      sim.Time
	dt      sim.Time
}

func newJobTable(pt *core.ProfilingTable) *jobTable {
	return &jobTable{pt: pt, slotIdx: make(map[slotKey]int32)}
}

// entry returns the job's table entry, growing the ID-indexed slice on
// demand.
func (t *jobTable) entry(j *cp.JobRun) *jobEntry {
	id := j.Job.ID
	for id >= len(t.ents) {
		t.ents = append(t.ents, jobEntry{})
	}
	return &t.ents[id]
}

// register resolves the job's kernel chain to slot indices. Called at
// admission (stream inspection already walks the chain there); idempotent.
func (t *jobTable) register(j *cp.JobRun) {
	e := t.entry(j)
	if e.registered {
		return
	}
	e.chain = e.chain[:0]
	for _, inst := range j.Instances {
		e.chain = append(e.chain, t.slotFor(int32(t.pt.IDFor(inst.Desc.Name)), int32(inst.Desc.NumWGs)))
	}
	e.registered = true
	e.valid = false
}

func (t *jobTable) slotFor(ptID, wgs int32) int32 {
	k := slotKey{ptID, wgs}
	if i, ok := t.slotIdx[k]; ok {
		return i
	}
	i := int32(len(t.slots))
	t.slots = append(t.slots, fullSlot{ptID: ptID, wgs: wgs})
	t.slotIdx[k] = i
	return i
}

// slotTimes returns the memoized (KernelTime, DrainTime) of a full launch
// of the slot's kernel shape at the current table version.
func (t *jobTable) slotTimes(si int32, ver uint64) (sim.Time, sim.Time) {
	s := &t.slots[si]
	if !s.stamped || s.stamp != ver {
		s.kt = t.pt.KernelTimeID(int(s.ptID), int(s.wgs))
		s.dt = t.pt.DrainTimeID(int(s.ptID), int(s.wgs))
		s.stamp = ver
		s.stamped = true
	}
	return s.kt, s.dt
}

// estimates returns the job's remaining-time and drain estimates, exactly
// equal to pt.RemainingTime/RemainingDrain over j.RemainingWGList(). Clean
// jobs return cached values; dirty jobs recompute incrementally.
func (t *jobTable) estimates(j *cp.JobRun) (rem, drain sim.Time) {
	e := t.entry(j)
	if !e.registered {
		t.register(j)
		e = t.entry(j) // register may have grown ents
	}
	ver := t.pt.Version()
	cur := int32(j.CurrentIndex())
	wgs := int32(j.WGsCompleted())
	if e.valid && e.lastVer == ver && e.lastCur == cur && e.lastWGs == wgs {
		return e.rem, e.drain
	}
	rem, drain = 0, 0
	chain := e.chain
	if int(cur) < len(chain) {
		// Head kernel: partially complete, so its WG count is live state,
		// not a shared slot.
		n := j.Instances[cur].UncompletedWGs()
		ptID := int(t.slots[chain[cur]].ptID)
		rem += t.pt.KernelTimeID(ptID, n)
		drain += t.pt.DrainTimeID(ptID, n)
		// Tail kernels have not started (chains are sequential), so each is
		// a full launch of a shared shape.
		for _, si := range chain[cur+1:] {
			kt, dt := t.slotTimes(si, ver)
			rem += kt
			drain += dt
		}
	}
	e.lastVer = ver
	e.lastCur = cur
	e.lastWGs = wgs
	e.rem = rem
	e.drain = drain
	e.valid = true
	return rem, drain
}
