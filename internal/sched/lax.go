package sched

import (
	"laxgpu/internal/core"
	"laxgpu/internal/cp"
	"laxgpu/internal/obs"
	"laxgpu/internal/sim"
)

// LAXVariant selects where the laxity-aware scheduler runs (§5.1, Table 3).
type LAXVariant int

const (
	// VariantCP is full LAX: the laxity algorithm runs inside the GPU's
	// command processor with direct access to fresh WG-completion counters
	// and zero host communication.
	VariantCP LAXVariant = iota

	// VariantSW is LAX-SW: the identical algorithm on the host CPU. Every
	// kernel launch pays the host-device round trip, priority updates land
	// late, and the profiling data the algorithm sees is one update window
	// stale.
	VariantSW

	// VariantCPU is LAX-CPU: host-side scheduling, but the API is extended
	// so kernels are pre-enqueued on streams and priorities are written
	// directly to memory-mapped queue registers — no per-kernel launch
	// cost, only slightly stale data and an MMIO write.
	VariantCPU
)

// TracePoint is one Figure 10 sample: LAX's view of a job at a
// reprioritization tick.
type TracePoint struct {
	At             sim.Time // absolute simulation time
	DurTime        sim.Time // time since the job was enqueued
	PredictedRem   sim.Time // profiling-table remaining-time estimate
	Priority       int64    // Algorithm 2 output (0 = highest)
	State          cp.JobState
	WGsOutstanding int
}

// InitialPriorityMode selects how a newly admitted job's priority is
// initialized — the design point of the paper's footnote 2, which found
// "initializing each job with the lowest priority or running an initial
// laxity estimate upon each job's arrival degraded performance by 10% and
// 1% on average, respectively, compared to initializing with the highest
// priority".
type InitialPriorityMode int

const (
	// InitHighest gives new jobs priority 0 (the paper's choice).
	InitHighest InitialPriorityMode = iota
	// InitLowest parks new jobs behind every live job until the next
	// Algorithm 2 pass.
	InitLowest
	// InitLaxity runs an immediate laxity estimate on arrival.
	InitLaxity
)

// initLowestPriority is worse than any laxity or complTime a live job can
// hold, but better than PriorityINF so parked jobs still outrank expired
// ones.
const initLowestPriority = int64(1) << 40

// LAXConfig tunes the laxity scheduler; the zero value plus NewLAX's
// defaults reproduce the paper's configuration. The non-default settings
// exist for the ablation study (harness.Ablation).
type LAXConfig struct {
	// Name overrides the reported scheduler name (used by ablated
	// configurations so results are labeled unambiguously).
	Name string

	// Variant places the scheduler (CP, host software, host+priority API).
	Variant LAXVariant

	// UpdateInterval overrides the CP variant's reprioritization period
	// (default core.DefaultUpdateInterval = 100 µs, the paper's empirical
	// choice). Host variants scale their coarser cadence from it.
	UpdateInterval sim.Time

	// InitialPriority selects the footnote 2 design point.
	InitialPriority InitialPriorityMode

	// DisableAdmission ablates Algorithm 1: every job is offloaded.
	DisableAdmission bool

	// DisableLaxity ablates Algorithm 2: priorities stay at their initial
	// values (FIFO among equals), isolating the admission controller.
	DisableLaxity bool

	// Alpha is the profiling table's EWMA weight in (0,1]; 0 means the
	// default (1 — use the newest window only).
	Alpha float64

	// DisableIncremental forces the CP variant onto the full-recompute
	// reference path (walk every job's WGList each epoch) instead of the
	// dirty-set job table. Results are bit-identical either way — the
	// differential suite pins it — so this exists only to provide the
	// reference side of that comparison.
	DisableIncremental bool
}

// LAX is the paper's laxity-aware scheduler (§4): stream inspection builds
// per-job WGLists, a Kernel Profiling Table tracks per-kernel WG completion
// rates under live contention, Algorithm 1 rejects jobs whose Little's-Law
// queuing delay forecloses their deadline, and Algorithm 2 re-ranks every
// job by laxity each 100 µs.
type LAX struct {
	cfg     LAXConfig
	variant LAXVariant
	sys     *cp.System

	// pt is the live Kernel Profiling Table; stale is the snapshot a
	// host-side variant actually schedules from (one window old).
	pt    *core.ProfilingTable
	stale *core.ProfilingTable

	// jt caches per-job remaining-time/drain estimates for the CP variant
	// (the dirty-set incremental path; see jobtable.go). Host variants
	// schedule from snapshots with kernel-granular WGLists and keep the
	// legacy walk.
	jt *jobTable

	traceJob int // job ID to trace for Figure 10 (-1 = off)
	tracePts []TracePoint

	// seenRetiredCUs detects device degradation between ticks so per-kernel
	// capacities can be re-registered against the shrunken device.
	seenRetiredCUs int
}

// NewLAX returns the CP-integrated laxity scheduler with the paper's
// configuration.
func NewLAX() *LAX { return NewLAXWithConfig(LAXConfig{Variant: VariantCP}) }

// NewLAXSW returns the CPU-side software variant (LAX-SW).
func NewLAXSW() *LAX { return NewLAXWithConfig(LAXConfig{Variant: VariantSW}) }

// NewLAXCPU returns the CPU-side variant with the dynamic-priority API
// (LAX-CPU).
func NewLAXCPU() *LAX { return NewLAXWithConfig(LAXConfig{Variant: VariantCPU}) }

// NewLAXWithConfig returns a laxity scheduler with explicit knobs (used by
// the ablation study).
func NewLAXWithConfig(cfg LAXConfig) *LAX {
	if cfg.UpdateInterval <= 0 {
		cfg.UpdateInterval = core.DefaultUpdateInterval
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = 1
	}
	return &LAX{cfg: cfg, variant: cfg.Variant, traceJob: -1}
}

// Name implements cp.Policy.
func (p *LAX) Name() string {
	if p.cfg.Name != "" {
		return p.cfg.Name
	}
	switch p.variant {
	case VariantSW:
		return "LAX-SW"
	case VariantCPU:
		return "LAX-CPU"
	default:
		return "LAX"
	}
}

// Attach implements cp.Policy.
func (p *LAX) Attach(s *cp.System) {
	p.sys = s
	p.pt = core.NewProfilingTable(p.cfg.Alpha)
	p.stale = p.pt.Snapshot()
	p.jt = newJobTable(p.pt)
}

// incremental reports whether the dirty-set job table serves this variant's
// estimates.
func (p *LAX) incremental() bool {
	return p.variant == VariantCP && !p.cfg.DisableIncremental
}

// table returns the profiling view the variant schedules from: the live
// table for CP-integrated LAX, the previous window's snapshot for the
// host-side variants (their counter reads cross the bus).
func (p *LAX) table() *core.ProfilingTable {
	if p.variant == VariantCP {
		return p.pt
	}
	return p.stale
}

// remaining returns the job's uncompleted work as the variant sees it. The
// CP reads the live WGList, decremented per WG completion. The host-side
// variants have no access to the WG-completion counter (it is the paper's
// proposed hardware extension, §4.1.1) — they observe kernel completions
// only, so a kernel in flight still counts in full.
func (p *LAX) remaining(j *cp.JobRun) []core.WGEntry {
	if p.variant == VariantCP {
		return j.RemainingWGList()
	}
	var out []core.WGEntry
	for i := j.CurrentIndex(); i < len(j.Instances); i++ {
		d := j.Instances[i].Desc
		out = append(out, core.WGEntry{Kernel: d.Name, WGs: d.NumWGs})
	}
	return out
}

// Admit implements cp.Policy — Algorithm 1. The queuing delay is the
// summed remaining-time estimate of every admitted unfinished job
// ("including jobs that are ready but not running"); the job's own holdTime
// comes from stream inspection of its full WGList. Unknown kernels estimate
// zero for the candidate (optimism, §4.3); for jobs already in the system
// whose kernels have produced no profiling signal yet, the remaining
// deadline budget stands in ("before enough WGs complete ... we use the
// programmer-provided deadline", Algorithm 1 footnote).
func (p *LAX) Admit(j *cp.JobRun) bool {
	registerCapacities(p.pt, p.sys.Device(), j)
	if p.incremental() {
		p.jt.register(j)
	}
	queueDelay := p.EstimateDrain()
	hold := p.table().RemainingTime(j.TotalWGList())
	accepted := p.cfg.DisableAdmission || core.Admit(queueDelay, hold, 0, j.Job.Deadline)
	probeAdmissionTerms(p.sys, p.Name(), j, accepted, queueDelay, hold)
	if !accepted {
		return false
	}
	switch p.cfg.InitialPriority {
	case InitLowest:
		j.Priority = initLowestPriority
	case InitLaxity:
		j.Priority = core.Priority(j.Job.Deadline, hold, 0)
	default:
		// "New-invoked job's priority is the highest" (Algorithm 1 line 17).
		j.Priority = core.HighestPriority
	}
	return true
}

// EstimateDrain implements cp.DrainEstimator: the queueDelay term of
// Algorithm 1 — the summed remaining-time estimate of every admitted
// unfinished job, with the remaining deadline budget standing in for jobs
// whose kernels have produced no profiling signal yet.
func (p *LAX) EstimateDrain() sim.Time {
	t := p.table()
	now := p.sys.Now()
	inc := p.incremental()
	var queueDelay sim.Time
	for _, a := range p.sys.Active() {
		var rem sim.Time
		if inc {
			_, rem = p.jt.estimates(a)
		} else {
			rem = t.RemainingDrain(p.remaining(a))
		}
		if rem == 0 && !a.Done() {
			if budget := a.Job.AbsoluteDeadline() - now; budget > 0 {
				rem = budget
			}
		}
		queueDelay += rem
	}
	return queueDelay
}

// Reprioritize implements cp.Policy — Algorithm 2 over all active jobs,
// every 100 µs.
func (p *LAX) Reprioritize() {
	probeEpoch(p.sys, p.Name())

	// Host-side variants schedule from the previous window's rates.
	if p.variant != VariantCP {
		p.stale = p.pt.Snapshot()
	}
	p.pt.Update(p.sys.Device().Counters(), p.sys.Now())
	probeTableRefresh(p.sys, p.Name(), p.pt.Len())

	// A CU retirement since the last tick shrinks every kernel's concurrent
	// capacity; re-register so Algorithm 1 stops admitting against the
	// nominal device.
	if r := p.sys.Device().RetiredCUsCount(); r != p.seenRetiredCUs {
		p.seenRetiredCUs = r
		for _, j := range p.sys.Active() {
			registerCapacities(p.pt, p.sys.Device(), j)
		}
	}

	t := p.table()
	now := p.sys.Now()
	pr := p.sys.Probe()
	inc := p.incremental()
	for _, j := range p.sys.Active() {
		var rem sim.Time
		if inc {
			rem, _ = p.jt.estimates(j)
		} else {
			rem = t.RemainingTime(p.remaining(j))
		}
		dur := now - j.SubmitTime
		if !p.cfg.DisableLaxity {
			j.Priority = core.Priority(j.Job.Deadline, rem, dur)
		}
		if pr != nil {
			pr.Sample(obs.JobSample{
				At: now, Job: j.Job.ID, Queue: j.QueueID, Priority: j.Priority,
				HasLaxity: true, Laxity: core.Laxity(j.Job.Deadline, rem, dur),
				HasPrediction: true, PredictedRem: rem,
			})
		}
		if j.Job.ID == p.traceJob {
			out := 0
			if k := j.Current(); k != nil {
				out = k.OutstandingWGs()
			}
			p.tracePts = append(p.tracePts, TracePoint{
				At: now, DurTime: dur, PredictedRem: rem,
				Priority: j.Priority, State: j.State(), WGsOutstanding: out,
			})
		}
	}
}

// Interval implements cp.Policy. The CP-integrated variant runs at the
// empirically chosen 100 µs cadence. The host-side variants cannot sample
// device counters and push decisions through the driver stack that fast:
// LAX-SW's whole loop (read counters over the bus, recompute, relaunch)
// runs at BAY/PRO-like host cadence, while LAX-CPU's memory-mapped priority
// registers let it close the loop faster, though still behind the CP.
func (p *LAX) Interval() sim.Time {
	switch p.variant {
	case VariantSW:
		return 5 * p.cfg.UpdateInterval
	case VariantCPU:
		return 2 * p.cfg.UpdateInterval
	default:
		return p.cfg.UpdateInterval
	}
}

// Overheads implements cp.Policy, encoding the variant's placement.
func (p *LAX) Overheads() cp.Overheads {
	switch p.variant {
	case VariantSW:
		return cp.Overheads{
			PerKernelLaunch:       HostLaunchOverhead,
			PriorityUpdateLatency: HostLaunchOverhead,
		}
	case VariantCPU:
		return cp.Overheads{PriorityUpdateLatency: MMIOWriteLatency}
	default:
		return cp.Overheads{}
	}
}

// EstimateKernelTime implements cp.KernelEstimator: the profiling table's
// launch-time estimate for the job's current kernel, used by the telemetry
// layer to pair predictions with actual completions. An unprofiled kernel
// estimates zero (§4.3 optimism), which is still a prediction worth scoring.
func (p *LAX) EstimateKernelTime(j *cp.JobRun) (sim.Time, bool) {
	k := j.Current()
	if k == nil {
		return 0, false
	}
	return p.table().KernelTime(k.Desc.Name, k.Desc.NumWGs), true
}

// EnableTrace records a Figure 10 trace for the given job ID.
func (p *LAX) EnableTrace(jobID int) { p.traceJob = jobID }

// TracePoints returns the recorded Figure 10 samples.
func (p *LAX) TracePoints() []TracePoint { return p.tracePts }

// ProfilingTable exposes the live Kernel Profiling Table (for tests and
// the prediction-accuracy experiment).
func (p *LAX) ProfilingTable() *core.ProfilingTable { return p.pt }
