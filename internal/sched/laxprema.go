package sched

import (
	"laxgpu/internal/core"
	"laxgpu/internal/cp"
	"laxgpu/internal/sim"
)

// LAXPREMA is the hybrid the paper sketches as future work (§6.1.2: "a
// hybrid solution which combines elements of LAX and PREMA could be
// interesting future work"). It keeps LAX's full machinery — stream
// inspection, profiled completion rates, Little's-Law admission and laxity
// priorities — and adds PREMA's one capability LAX forgoes: preemption.
// Jobs that Algorithm 2 has already written off (PriorityINF — past their
// deadline) are preempted and *dropped* while feasible work is present,
// rather than merely deprioritized: LAX would still burn device capacity
// finishing them (the wasted work of Figure 9), whereas there is no
// deadline left to save. Preemption pays the PREMA context-save cost for
// work in flight.
type LAXPREMA struct {
	*LAX
}

// NewLAXPREMA returns the hybrid scheduler.
func NewLAXPREMA() *LAXPREMA {
	return &LAXPREMA{LAX: NewLAX()}
}

// Name implements cp.Policy.
func (p *LAXPREMA) Name() string { return "LAX-PREMA" }

// Reprioritize runs Algorithm 2, then applies the PREMA element: while any
// live (non-expired) job is present, expired jobs are preempted and
// dropped, reclaiming every WG slot and all the memory bandwidth their
// remaining kernels would have consumed. With no live work the expired jobs
// are left to drain in the background (work conserving: the device would
// otherwise idle).
func (p *LAXPREMA) Reprioritize() {
	p.LAX.Reprioritize()

	live := false
	for _, j := range p.sys.Active() {
		if j.Priority != core.PriorityINF {
			live = true
			break
		}
	}
	if !live {
		return
	}

	var preemptBytes int
	// Collect first: Cancel mutates the active list.
	var doomed []*cp.JobRun
	for _, j := range p.sys.Active() {
		if j.Priority == core.PriorityINF {
			doomed = append(doomed, j)
		}
	}
	for _, j := range doomed {
		if k := j.Current(); k != nil && k.OutstandingWGs() > 0 {
			preemptBytes += k.Desc.ContextBytes()
		}
		p.sys.Cancel(j)
	}
	if preemptBytes > 0 {
		stall := sim.Time(preemptBytes / premaSaveRestoreBytesPerNs)
		if stall > 0 {
			p.sys.Device().Stall(stall)
		}
	}
}

// compile-time interface check.
var _ cp.Policy = (*LAXPREMA)(nil)
