package sched

import (
	"testing"

	"laxgpu/internal/core"
	"laxgpu/internal/cp"
	"laxgpu/internal/gpu"
	"laxgpu/internal/sim"
)

// TestLAXPREMAPreemptsExpiredForUrgent builds the situation the hybrid
// targets: an already-expired memory-hungry job keeps issuing waves of WGs
// that slow down a co-resident job with tight laxity. Plain LAX only
// deprioritizes the expired job — its waves keep competing for bandwidth;
// LAX-PREMA pauses it, so the urgent job's workgroups run uncontended and
// it finishes strictly earlier.
func TestLAXPREMAPreemptsExpiredForUrgent(t *testing.T) {
	cfg := cp.DefaultSystemConfig()

	// Expired hog: long chain of memory-saturating wave kernels, hopeless
	// deadline (admitted thanks to cold-start optimism, expired almost
	// immediately).
	hog := &gpu.KernelDesc{Name: "hog", NumWGs: 64, ThreadsPerWG: 1024,
		BaseWGTime: 2 * sim.Millisecond, MemIntensity: 1.0, InstPerThread: 1}
	// Urgent job class: memory-sensitive, tight deadline.
	quick := &gpu.KernelDesc{Name: "quick", NumWGs: 8, ThreadsPerWG: 1024,
		BaseWGTime: sim.Millisecond, MemIntensity: 0.8, InstPerThread: 1}

	// Job 1 is a warm-up of the urgent class (so the profiling table knows
	// its rate by the time it matters); job 2 is the urgent arrival.
	set := buildSet([]jobSpec{
		{0, 10 * sim.Microsecond, []*gpu.KernelDesc{hog, hog, hog}},
		{0, 50 * sim.Millisecond, []*gpu.KernelDesc{quick}},
		{5 * sim.Millisecond, 2 * sim.Millisecond, []*gpu.KernelDesc{quick}},
	})

	run := func(pol cp.Policy) *cp.System {
		sys := cp.NewSystem(cfg, set, pol)
		sys.Run()
		return sys
	}

	// Admission stays off in both configurations: the point under test is
	// the preemption delta, not Algorithm 1 (which would never have let the
	// hog in with warm estimates).
	laxSys := run(NewLAXWithConfig(LAXConfig{DisableAdmission: true}))
	hybSys := run(&LAXPREMA{LAX: NewLAXWithConfig(LAXConfig{
		Name: "LAX-PREMA", DisableAdmission: true,
	})})

	// The hybrid must strictly accelerate the urgent job by cancelling the
	// expired hog's remaining waves while the urgent job runs.
	if hybSys.Job(2).FinishTime >= laxSys.Job(2).FinishTime {
		t.Fatalf("hybrid did not accelerate the urgent job: hybrid=%v lax=%v",
			hybSys.Job(2).FinishTime, laxSys.Job(2).FinishTime)
	}
	if !hybSys.Job(0).Cancelled() {
		t.Fatalf("expired hog not cancelled under the hybrid (state %v)", hybSys.Job(0).State())
	}
	// Under plain LAX the hog runs to (useless) completion.
	if !laxSys.Job(0).Done() {
		t.Fatalf("hog did not finish under plain LAX (state %v)", laxSys.Job(0).State())
	}
}

func TestLAXPREMAName(t *testing.T) {
	p := NewLAXPREMA()
	if p.Name() != "LAX-PREMA" {
		t.Fatalf("Name() = %q", p.Name())
	}
	if p.Interval() != core.DefaultUpdateInterval {
		t.Fatalf("Interval() = %v", p.Interval())
	}
}

func TestLAXConfigDefaults(t *testing.T) {
	p := NewLAXWithConfig(LAXConfig{})
	if p.Interval() != core.DefaultUpdateInterval {
		t.Fatalf("default interval %v", p.Interval())
	}
	p = NewLAXWithConfig(LAXConfig{UpdateInterval: 50 * sim.Microsecond})
	if p.Interval() != 50*sim.Microsecond {
		t.Fatalf("custom interval %v", p.Interval())
	}
	p = NewLAXWithConfig(LAXConfig{Name: "X"})
	if p.Name() != "X" {
		t.Fatalf("name override %q", p.Name())
	}
	// Invalid alpha falls back to 1 (constructor must not panic).
	NewLAXWithConfig(LAXConfig{Alpha: -3}).Attach(
		cp.NewSystem(cp.DefaultSystemConfig(), buildSet([]jobSpec{}), NewRR()))
}

func TestLAXNoAdmissionAdmitsEverything(t *testing.T) {
	k := kdesc("k", 64, 2560, 500*sim.Microsecond, 0)
	specs := make([]jobSpec, 10)
	for i := range specs {
		specs[i] = jobSpec{0, sim.Millisecond, []*gpu.KernelDesc{k}}
	}
	pol := NewLAXWithConfig(LAXConfig{Name: "LAX-NOADMIT", DisableAdmission: true})
	sys := runPolicy(t, pol, buildSet(specs))
	if sys.RejectedCount() != 0 {
		t.Fatalf("no-admission variant rejected %d jobs", sys.RejectedCount())
	}
}

func TestLAXFIFOKeepsInitialPriorities(t *testing.T) {
	k := kdesc("k", 16, 2560, 200*sim.Microsecond, 0)
	set := buildSet([]jobSpec{
		{0, 100 * sim.Millisecond, []*gpu.KernelDesc{k, k, k}},
		{0, 100 * sim.Millisecond, []*gpu.KernelDesc{k}},
	})
	pol := NewLAXWithConfig(LAXConfig{Name: "LAX-FIFO", DisableLaxity: true})
	sys := cp.NewSystem(cp.DefaultSystemConfig(), set, pol)
	probed := false
	sys.Engine().Schedule(500*sim.Microsecond, func() {
		for _, j := range sys.Active() {
			if j.Priority != core.HighestPriority {
				t.Errorf("job %d priority %d; laxity-disabled variant must not reprioritize",
					j.Job.ID, j.Priority)
			}
		}
		probed = true
	})
	sys.Run()
	if !probed {
		t.Skip("jobs finished before probe")
	}
}

func TestLAXInitialPriorityModes(t *testing.T) {
	k := kdesc("k", 1, 64, 10*sim.Microsecond, 0)
	set := buildSet([]jobSpec{{0, sim.Millisecond, []*gpu.KernelDesc{k}}})

	for _, tc := range []struct {
		mode InitialPriorityMode
		want func(int64) bool
		desc string
	}{
		{InitHighest, func(p int64) bool { return p == core.HighestPriority }, "highest"},
		{InitLowest, func(p int64) bool { return p == initLowestPriority }, "lowest"},
		// With no profiling data, the initial laxity estimate is
		// deadline − 0 − 0 = the full deadline.
		{InitLaxity, func(p int64) bool { return p == int64(sim.Millisecond) }, "laxity"},
	} {
		pol := NewLAXWithConfig(LAXConfig{InitialPriority: tc.mode})
		sys := cp.NewSystem(cp.DefaultSystemConfig(), set, pol)
		var got int64 = -999
		sys.Engine().Schedule(sim.Microsecond, func() {
			if len(sys.Active()) == 1 {
				got = sys.Active()[0].Priority
			}
		})
		sys.Run()
		if !tc.want(got) {
			t.Errorf("init=%s: priority %d", tc.desc, got)
		}
	}
}
