package sched

import (
	"laxgpu/internal/core"
	"laxgpu/internal/cp"
	"laxgpu/internal/sim"
)

// Priority levels for MLFQ's two queues.
const (
	mlfqHigh = int64(0)
	mlfqLow  = int64(1)
)

// MLFQ is the two-level multi-level feedback queue of Table 3 [64], tuned
// as in §5.1: a job is demoted to the low-priority queue once its runtime
// exceeds 1/3 of its deadline and promoted back once runtime exceeds 2/3 of
// its deadline. The paper notes the resulting pathology: long-running jobs
// promoted back "take up high priority resources even after their
// deadline" — which this implementation reproduces.
type MLFQ struct {
	sys     *cp.System
	current *cp.JobRun // high-queue entry in service
}

// NewMLFQ returns the multi-level feedback queue scheduler.
func NewMLFQ() *MLFQ { return &MLFQ{} }

// Name implements cp.Policy.
func (p *MLFQ) Name() string { return "MLFQ" }

// Attach implements cp.Policy.
func (p *MLFQ) Attach(s *cp.System) { p.sys = s }

// Admit implements cp.Policy: jobs enter the high-priority queue.
func (p *MLFQ) Admit(j *cp.JobRun) bool {
	j.Priority = mlfqHigh
	probeAdmission(p.sys, p.Name(), j, true)
	return true
}

// Reprioritize implements cp.Policy: apply the runtime-threshold demotion
// and promotion rules.
func (p *MLFQ) Reprioritize() {
	probeEpoch(p.sys, p.Name())
	now := p.sys.Now()
	for _, j := range p.sys.Active() {
		runtime := now - j.SubmitTime
		d := j.Job.Deadline
		switch {
		case runtime > 2*d/3:
			j.Priority = mlfqHigh // promoted back near (or past) the deadline
		case runtime > d/3:
			j.Priority = mlfqLow
		default:
			j.Priority = mlfqHigh
		}
	}
	probeSamples(p.sys)
}

// Interval implements cp.Policy.
func (p *MLFQ) Interval() sim.Time { return core.DefaultUpdateInterval }

// Overheads implements cp.Policy: MLFQ extends the CP.
func (p *MLFQ) Overheads() cp.Overheads { return cp.Overheads{} }

// Order implements cp.Orderer: high queue before low queue, cyclic service
// within the high queue ("uses RR to schedule jobs in the high priority
// queue", Table 3) with the same keep-until-issued pointer as RR.
func (p *MLFQ) Order(active []*cp.JobRun) []*cp.JobRun {
	var high, low []*cp.JobRun
	for _, j := range active {
		if j.Priority == mlfqHigh {
			high = append(high, j)
		} else {
			low = append(low, j)
		}
	}
	if len(high) > 1 && p.current != nil {
		for i, j := range high {
			if j != p.current {
				continue
			}
			s := i
			if k := j.Current(); k == nil || k.RemainingWGs() == 0 || j.Paused() {
				s = (i + 1) % len(high)
			}
			rotated := make([]*cp.JobRun, 0, len(high))
			rotated = append(rotated, high[s:]...)
			rotated = append(rotated, high[:s]...)
			high = rotated
			break
		}
	}
	return append(high, low...)
}

// Served implements cp.ServeObserver.
func (p *MLFQ) Served(j *cp.JobRun) {
	if j.Priority == mlfqHigh {
		p.current = j
	}
}
