package sched

import (
	"laxgpu/internal/core"
	"laxgpu/internal/cp"
	"laxgpu/internal/gpu"
	"laxgpu/internal/obs"
	"laxgpu/internal/sim"
)

// FCFS is a plain first-come-first-served baseline (single priority level,
// arrival-order tie-break). The paper notes that SJF/SRF "default to
// first-come-first-serve order" on equal-size jobs; FCFS makes that
// degenerate behavior directly measurable.
type FCFS struct{ sys *cp.System }

// NewFCFS returns the first-come-first-served baseline.
func NewFCFS() *FCFS { return &FCFS{} }

// Name implements cp.Policy.
func (p *FCFS) Name() string { return "FCFS" }

// Attach implements cp.Policy.
func (p *FCFS) Attach(s *cp.System) { p.sys = s }

// Admit implements cp.Policy: everything, one priority level.
func (p *FCFS) Admit(j *cp.JobRun) bool {
	j.Priority = 0
	probeAdmission(p.sys, p.Name(), j, true)
	return true
}

// Reprioritize implements cp.Policy.
func (p *FCFS) Reprioritize() {}

// Interval implements cp.Policy.
func (p *FCFS) Interval() sim.Time { return 0 }

// Overheads implements cp.Policy.
func (p *FCFS) Overheads() cp.Overheads { return cp.Overheads{} }

// ORACLE is an analysis upper bound, not a realizable scheduler: laxity
// scheduling and Little's-Law admission exactly as LAX, but fed *perfect*
// isolated execution-time knowledge instead of profiled completion rates.
// The gap between ORACLE and LAX measures how much LAX loses to estimation
// error; the gap between ORACLE and clairvoyant optimal is the residual
// cost of the greedy laxity heuristic itself.
type ORACLE struct {
	sys *cp.System
}

// NewORACLE returns the perfect-information laxity scheduler.
func NewORACLE() *ORACLE { return &ORACLE{} }

// Name implements cp.Policy.
func (p *ORACLE) Name() string { return "ORACLE" }

// Attach implements cp.Policy.
func (p *ORACLE) Attach(s *cp.System) { p.sys = s }

// drain is the perfect-information analogue of the profiling table's
// RemainingDrain: WGs over exact device delivery capacity.
func (p *ORACLE) drain(j *cp.JobRun) sim.Time {
	cfg := p.sys.Device().Config()
	var total float64
	for i := j.CurrentIndex(); i < len(j.Instances); i++ {
		inst := j.Instances[i]
		wgs := inst.UncompletedWGs()
		if wgs == 0 {
			continue
		}
		cap := gpu.MaxConcurrentWGs(cfg, inst.Desc)
		if cap < 1 {
			cap = 1
		}
		perWG := float64(gpu.IsolatedKernelTime(cfg, inst.Desc)) /
			float64((inst.Desc.NumWGs+cap-1)/cap)
		total += float64(wgs) * perWG / float64(cap)
	}
	return sim.Time(total)
}

// EstimateDrain implements cp.DrainEstimator: the summed perfect-information
// drain time of every active job.
func (p *ORACLE) EstimateDrain() sim.Time {
	var queueDelay sim.Time
	for _, a := range p.sys.Active() {
		queueDelay += p.drain(a)
	}
	return queueDelay
}

// Admit implements cp.Policy — Algorithm 1 with exact estimates.
func (p *ORACLE) Admit(j *cp.JobRun) bool {
	queueDelay := p.EstimateDrain()
	hold := staticJobTime(p.sys.Device().Config(), j)
	accepted := core.Admit(queueDelay, hold, 0, j.Job.Deadline)
	probeAdmissionTerms(p.sys, p.Name(), j, accepted, queueDelay, hold)
	if !accepted {
		return false
	}
	j.Priority = core.HighestPriority
	return true
}

// Reprioritize implements cp.Policy — Algorithm 2 with exact remaining
// times.
func (p *ORACLE) Reprioritize() {
	probeEpoch(p.sys, p.Name())
	cfg := p.sys.Device().Config()
	now := p.sys.Now()
	pr := p.sys.Probe()
	for _, j := range p.sys.Active() {
		rem := staticRemainingTime(cfg, j)
		dur := now - j.SubmitTime
		j.Priority = core.Priority(j.Job.Deadline, rem, dur)
		if pr != nil {
			pr.Sample(obs.JobSample{
				At: now, Job: j.Job.ID, Queue: j.QueueID, Priority: j.Priority,
				HasLaxity: true, Laxity: core.Laxity(j.Job.Deadline, rem, dur),
				HasPrediction: true, PredictedRem: rem,
			})
		}
	}
}

// Interval implements cp.Policy.
func (p *ORACLE) Interval() sim.Time { return core.DefaultUpdateInterval }

// Overheads implements cp.Policy: the oracle lives in the CP.
func (p *ORACLE) Overheads() cp.Overheads { return cp.Overheads{} }

// EstimateKernelTime implements cp.KernelEstimator with the oracle's exact
// isolated kernel time — the zero-error reference for the accuracy tracker.
func (p *ORACLE) EstimateKernelTime(j *cp.JobRun) (sim.Time, bool) {
	return staticKernelEstimate(p.sys, j)
}
