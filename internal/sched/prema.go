package sched

import (
	"sort"

	"laxgpu/internal/cp"
	"laxgpu/internal/sim"
)

// premaInterval is PREMA's scheduling epoch ("Like the authors, we use a
// 250 µs preemption interval", §5.1).
const premaInterval = 250 * sim.Microsecond

// premaSaveRestoreBytesPerNs is the context save/restore bandwidth used to
// charge preemption cost: ~100 GB/s of on-package bandwidth moving the
// preempted kernel's register/LDS context (Table 1 context sizes).
const premaSaveRestoreBytesPerNs = 100

// PREMA is the predictive multi-task preemptive scheduler of [79], adapted
// as in §5.1: originally designed for an NPU running one large job, it is
// extended here to run multiple concurrent jobs (our workloads underfill
// the GPU). Every 250 µs it computes a token per job — the product of its
// (uniform) user priority and its predicted slowdown — and grants the
// device to the highest-token jobs, preempting the rest at a context
// save/restore cost.
type PREMA struct {
	sys *cp.System
}

// NewPREMA returns the PREMA scheduler.
func NewPREMA() *PREMA { return &PREMA{} }

// Name implements cp.Policy.
func (p *PREMA) Name() string { return "PREMA" }

// Attach implements cp.Policy.
func (p *PREMA) Attach(s *cp.System) { p.sys = s }

// Admit implements cp.Policy: PREMA has no deadline-based admission.
func (p *PREMA) Admit(j *cp.JobRun) bool {
	j.Priority = 0
	probeAdmission(p.sys, p.Name(), j, true)
	return true
}

// token computes PREMA's scheduling token: slowdown = elapsed / predicted
// isolated time. Jobs that have waited long relative to their size
// accumulate tokens and win the next epoch (PREMA "reactively predicts
// based on feedback from running jobs", §6.1.2).
func (p *PREMA) token(j *cp.JobRun) float64 {
	ideal := staticJobTime(p.sys.Device().Config(), j)
	if ideal <= 0 {
		ideal = 1
	}
	elapsed := p.sys.Now() - j.SubmitTime
	if elapsed < 0 {
		elapsed = 0
	}
	return float64(elapsed) / float64(ideal)
}

// Reprioritize implements cp.Policy: one PREMA epoch. Rank jobs by token,
// grant the device to the top jobs until the device's thread capacity is
// covered, pause the rest, and charge a stall for every preempted job that
// had work in flight.
func (p *PREMA) Reprioritize() {
	probeEpoch(p.sys, p.Name())
	active := p.sys.Active()
	if len(active) == 0 {
		return
	}
	ranked := make([]*cp.JobRun, len(active))
	copy(ranked, active)
	sort.SliceStable(ranked, func(a, b int) bool {
		ta, tb := p.token(ranked[a]), p.token(ranked[b])
		if ta != tb {
			return ta > tb
		}
		return ranked[a].SubmitTime < ranked[b].SubmitTime
	})

	capacity := p.sys.Device().Config().TotalThreads()
	granted := make(map[*cp.JobRun]bool, len(ranked))
	demand := 0
	for _, j := range ranked {
		if demand >= capacity {
			break
		}
		granted[j] = true
		if k := j.Current(); k != nil {
			demand += k.Desc.TotalThreads()
		}
	}

	// Preempt jobs losing the device; a job descheduled while it has WGs
	// in flight pays for saving its kernel context (newly paused only —
	// an already-parked job costs nothing more).
	var preemptBytes int
	for _, j := range active {
		if granted[j] {
			continue
		}
		if !j.Paused() {
			if k := j.Current(); k != nil && k.OutstandingWGs() > 0 {
				preemptBytes += k.Desc.ContextBytes()
			}
		}
		j.Pause()
	}
	for rank, j := range ranked {
		if granted[j] {
			j.Resume()
			j.Priority = int64(rank)
		} else {
			j.Priority = int64(len(ranked) + 1)
		}
	}

	if preemptBytes > 0 {
		stall := sim.Time(preemptBytes / premaSaveRestoreBytesPerNs)
		if stall > 0 {
			p.sys.Device().Stall(stall)
		}
	}
	probeSamples(p.sys)
}

// Interval implements cp.Policy: the 250 µs preemption epoch.
func (p *PREMA) Interval() sim.Time { return premaInterval }

// Overheads implements cp.Policy: PREMA extends the accelerator's
// scheduler; no host communication per kernel.
func (p *PREMA) Overheads() cp.Overheads { return cp.Overheads{} }
