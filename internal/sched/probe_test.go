package sched

import (
	"strings"
	"testing"

	"laxgpu/internal/cp"
	"laxgpu/internal/gpu"
	"laxgpu/internal/obs"
	"laxgpu/internal/sim"
	"laxgpu/internal/workload"
)

// probeSet builds a workload with enough jobs and kernels that every policy
// exercises its admission and reprioritization paths under contention.
func probeSet(n int) *workload.JobSet {
	specs := make([]jobSpec, n)
	for i := range specs {
		specs[i] = jobSpec{
			arrival:  sim.Time(i) * 50 * sim.Microsecond,
			deadline: 2 * sim.Millisecond,
			kernels: []*gpu.KernelDesc{
				kdesc("pa", 64, 128, 30*sim.Microsecond, 0.3),
				kdesc("pb", 32, 128, 20*sim.Microsecond, 0.3),
			},
		}
	}
	return buildSet(specs)
}

// TestEveryPolicyEmitsAdmissionDecisions runs each registered scheduler with
// a Metrics probe attached and checks that every arriving job produced an
// admission decision and every finishing job a completion count.
func TestEveryPolicyEmitsAdmissionDecisions(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			pol, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			set := probeSet(6)
			m := obs.NewMetrics()
			sys := cp.NewSystem(cp.DefaultSystemConfig(), set, pol)
			sys.SetProbe(m)
			sys.Run()

			snap := counterValues(t, m)
			if got := snap["laxsim_admissions_accepted_total"] + snap["laxsim_admissions_rejected_total"]; got != 6 {
				t.Fatalf("%s: %d admission decisions recorded, want 6", name, got)
			}
			if snap["laxsim_admissions_rejected_total"] != int64(sys.RejectedCount()) {
				t.Fatalf("%s: probe saw %d rejects, system counted %d",
					name, snap["laxsim_admissions_rejected_total"], sys.RejectedCount())
			}
			finished := snap["laxsim_jobs_finished_total"] + snap["laxsim_jobs_cancelled_total"] +
				snap["laxsim_admissions_rejected_total"]
			if finished != 6 {
				t.Fatalf("%s: job terminations %d, want 6", name, finished)
			}
		})
	}
}

func counterValues(t *testing.T, m *obs.Metrics) map[string]int64 {
	t.Helper()
	out := make(map[string]int64)
	reg := m.Registry()
	for _, name := range reg.Names() {
		// Counter() on an existing name returns the registered counter;
		// histograms/gauges are skipped by recovering from the kind panic.
		func() {
			defer func() { recover() }()
			out[name] = reg.Counter(name, "").Value()
		}()
	}
	return out
}

// TestLAXProbeEmitsRichTelemetry pins the LAX-specific event stream: epochs,
// profiling-table refreshes, laxity samples with predictions, and kernel
// estimate pairs flowing into the accuracy tracker.
func TestLAXProbeEmitsRichTelemetry(t *testing.T) {
	m := obs.NewMetrics()
	sys := cp.NewSystem(cp.DefaultSystemConfig(), probeSet(8), NewLAX())
	sys.SetProbe(m)
	sys.Run()

	snap := counterValues(t, m)
	if snap["laxsim_epochs_total"] == 0 {
		t.Fatal("LAX recorded no reprioritization epochs")
	}
	if snap["laxsim_table_refreshes_total"] == 0 {
		t.Fatal("LAX recorded no profiling-table refreshes")
	}
	if snap["laxsim_job_samples_total"] == 0 {
		t.Fatal("LAX recorded no job samples")
	}
	ks := m.KernelEstimates()
	if ks.Count == 0 {
		t.Fatal("no kernel estimate pairs recorded")
	}
	cs := m.ChainEstimates()
	if cs.Count == 0 {
		t.Fatal("no chain estimate pairs recorded")
	}
}

// TestOracleKernelEstimatesAreExact pins the accuracy-tracking contract end
// to end: ORACLE predicts each kernel's isolated time exactly, so in an
// uncontended single-job run the paired error must be zero.
func TestOracleKernelEstimatesAreExact(t *testing.T) {
	set := buildSet([]jobSpec{{
		arrival:  0,
		deadline: 10 * sim.Millisecond,
		kernels:  []*gpu.KernelDesc{kdesc("solo", 16, 64, 50*sim.Microsecond, 0.2)},
	}})
	m := obs.NewMetrics()
	sys := cp.NewSystem(cp.DefaultSystemConfig(), set, NewORACLE())
	sys.SetProbe(m)
	sys.Run()

	pairs := m.KernelPairs()
	if len(pairs) != 1 {
		t.Fatalf("kernel pairs = %d, want 1", len(pairs))
	}
	if pairs[0].Err() != 0 {
		t.Fatalf("oracle kernel estimate error = %v, want 0 (predicted %v, actual %v)",
			pairs[0].Err(), pairs[0].Predicted, pairs[0].Actual)
	}
}

// TestProbedRunIsByteIdenticalPerPolicy is the observer-effect guard at the
// scheduler layer: attaching the full telemetry stack (metrics + Perfetto)
// must not change a single scheduling decision for any policy. The JSONL
// trace captures the complete schedule, so byte equality is equivalence.
func TestProbedRunIsByteIdenticalPerPolicy(t *testing.T) {
	for _, name := range []string{"RR", "LAX", "PREMA", "BAY", "MLFQ", "SRF", "ORACLE"} {
		t.Run(name, func(t *testing.T) {
			run := func(probed bool) string {
				pol, err := New(name)
				if err != nil {
					t.Fatal(err)
				}
				var buf strings.Builder
				sys := cp.NewSystem(cp.DefaultSystemConfig(), probeSet(8), pol)
				sys.SetTracer(cp.NewTracer(&buf))
				if probed {
					sys.SetProbe(obs.Multi(obs.NewMetrics(), obs.NewPerfetto()))
				}
				sys.Run()
				return buf.String()
			}
			plain, probed := run(false), run(true)
			if plain != probed {
				t.Fatalf("%s: probed run diverged from unprobed run", name)
			}
			if plain == "" {
				t.Fatalf("%s: empty trace", name)
			}
		})
	}
}
