package sched

import (
	"fmt"
	"sort"

	"laxgpu/internal/cp"
)

// Factory constructs a fresh policy instance. Policies hold run state, so
// every simulation gets its own instance.
type Factory func() cp.Policy

var registry = map[string]Factory{
	"RR":      func() cp.Policy { return NewRR() },
	"BAT":     func() cp.Policy { return NewBAT() },
	"BAY":     func() cp.Policy { return NewBAY() },
	"PRO":     func() cp.Policy { return NewPRO() },
	"MLFQ":    func() cp.Policy { return NewMLFQ() },
	"EDF":     func() cp.Policy { return NewEDF() },
	"SJF":     func() cp.Policy { return NewSJF() },
	"SRF":     func() cp.Policy { return NewSRF() },
	"LJF":     func() cp.Policy { return NewLJF() },
	"PREMA":   func() cp.Policy { return NewPREMA() },
	"LAX":     func() cp.Policy { return NewLAX() },
	"LAX-SW":  func() cp.Policy { return NewLAXSW() },
	"LAX-CPU": func() cp.Policy { return NewLAXCPU() },

	// Extensions beyond the paper's Table 3: baselines for analysis (FCFS,
	// the perfect-information ORACLE), the future-work hybrid (§6.1.2), and
	// the ablated LAX variants used by the ablation study.
	"FCFS":      func() cp.Policy { return NewFCFS() },
	"ORACLE":    func() cp.Policy { return NewORACLE() },
	"LAX-PREMA": func() cp.Policy { return NewLAXPREMA() },
	"LAX-NOADMIT": func() cp.Policy {
		return NewLAXWithConfig(LAXConfig{Name: "LAX-NOADMIT", DisableAdmission: true})
	},
	"LAX-FIFO": func() cp.Policy {
		return NewLAXWithConfig(LAXConfig{Name: "LAX-FIFO", DisableLaxity: true})
	},
}

// New constructs the named policy.
func New(name string) (cp.Policy, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("sched: unknown scheduler %q (valid: %v)", name, Names())
	}
	return f(), nil
}

// Names returns every registered scheduler name, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Scheduler groups used by the paper's figures.
var (
	// CPUSideSchedulers are the prior host-resident schedulers of Figure 6
	// (compared there against RR and LAX).
	CPUSideSchedulers = []string{"BAT", "BAY", "PRO"}

	// CPSchedulers are the command-processor-extending schedulers of
	// Figure 7 (compared against RR, normalized to RR).
	CPSchedulers = []string{"MLFQ", "EDF", "SJF", "SRF", "LJF", "PREMA"}

	// LaxityVariants are Figure 8's implementations.
	LaxityVariants = []string{"LAX-SW", "LAX-CPU", "LAX"}

	// Table5Schedulers is the column order of Table 5.
	Table5Schedulers = []string{"RR", "MLFQ", "BAT", "BAY", "PRO", "LJF", "SJF", "SRF", "PREMA", "EDF", "LAX"}
)
