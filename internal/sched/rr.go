package sched

import (
	"laxgpu/internal/cp"
	"laxgpu/internal/sim"
)

// RR is the contemporary GPU baseline: the CP "schedules kernels within
// these queues in a round robin manner" (§2.1). It is deadline-blind,
// admits everything, and services queues with a persistent cyclic pointer.
// Following §2.1 ("GPU WG schedulers issue all WGs from one kernel before
// switching to WGs from another kernel"), the pointer stays on a queue
// until its current kernel has no workgroups left to issue, then moves on.
type RR struct {
	sys     *cp.System
	current *cp.JobRun // queue in service (last granted WG slots)
}

// NewRR returns the round-robin baseline scheduler.
func NewRR() *RR { return &RR{} }

// Name implements cp.Policy.
func (p *RR) Name() string { return "RR" }

// Attach implements cp.Policy.
func (p *RR) Attach(s *cp.System) { p.sys = s }

// Admit implements cp.Policy: contemporary GPUs offload unconditionally.
func (p *RR) Admit(j *cp.JobRun) bool {
	probeAdmission(p.sys, p.Name(), j, true)
	return true
}

// Reprioritize implements cp.Policy: RR never changes priorities.
func (p *RR) Reprioritize() {}

// Interval implements cp.Policy: no periodic work.
func (p *RR) Interval() sim.Time { return 0 }

// Overheads implements cp.Policy: the CP pays no host communication.
func (p *RR) Overheads() cp.Overheads { return cp.Overheads{} }

// Order implements cp.Orderer: cyclic service. The in-service queue stays
// at the front while its kernel still has WGs to issue; otherwise the cycle
// continues from the queue after it. A job added behind the pointer can be
// reached quickly, reproducing the paper's observation that "a new job will
// sometimes be chosen to run soon if RR is near the end of the queue when
// the job is added".
func (p *RR) Order(active []*cp.JobRun) []*cp.JobRun {
	n := len(active)
	if n == 0 {
		return nil
	}
	start := 0
	if p.current != nil {
		for i, j := range active {
			if j != p.current {
				continue
			}
			if k := j.Current(); k != nil && k.RemainingWGs() > 0 && !j.Paused() {
				start = i // keep servicing the current kernel
			} else {
				start = (i + 1) % n
			}
			break
		}
	}
	out := make([]*cp.JobRun, 0, n)
	out = append(out, active[start:]...)
	out = append(out, active[:start]...)
	return out
}

// Served implements cp.ServeObserver: remember which queue received slots.
func (p *RR) Served(j *cp.JobRun) { p.current = j }
