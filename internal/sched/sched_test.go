package sched

import (
	"testing"

	"laxgpu/internal/cp"
	"laxgpu/internal/gpu"
	"laxgpu/internal/sim"
	"laxgpu/internal/workload"
)

func kdesc(name string, wgs, threads int, base sim.Time, mem float64) *gpu.KernelDesc {
	return &gpu.KernelDesc{
		Name: name, NumWGs: wgs, ThreadsPerWG: threads,
		BaseWGTime: base, MemIntensity: mem, InstPerThread: 10,
	}
}

type jobSpec struct {
	arrival  sim.Time
	deadline sim.Time
	kernels  []*gpu.KernelDesc
}

func buildSet(specs []jobSpec) *workload.JobSet {
	set := &workload.JobSet{Benchmark: "synthetic"}
	for i, s := range specs {
		set.Jobs = append(set.Jobs, &workload.Job{
			ID: i, Benchmark: "synthetic",
			Arrival: s.arrival, Deadline: s.deadline, Kernels: s.kernels,
		})
	}
	return set
}

func runPolicy(t *testing.T, pol cp.Policy, set *workload.JobSet) *cp.System {
	t.Helper()
	sys := cp.NewSystem(cp.DefaultSystemConfig(), set, pol)
	sys.Run()
	return sys
}

func metCount(sys *cp.System) int {
	n := 0
	for _, j := range sys.Jobs() {
		if j.MetDeadline() {
			n++
		}
	}
	return n
}

func TestRegistryConstructsEverything(t *testing.T) {
	names := Names()
	// 13 Table 3 schedulers plus 5 extensions (FCFS, ORACLE, hybrid, 2
	// ablated LAX configurations).
	if len(names) != 18 {
		t.Fatalf("registry has %d schedulers, want 18", len(names))
	}
	for _, n := range names {
		p, err := New(n)
		if err != nil {
			t.Fatalf("New(%q): %v", n, err)
		}
		if p.Name() != n {
			t.Errorf("New(%q).Name() = %q", n, p.Name())
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	// Group lists reference registered names only.
	for _, group := range [][]string{CPUSideSchedulers, CPSchedulers, LaxityVariants, Table5Schedulers} {
		for _, n := range group {
			if _, err := New(n); err != nil {
				t.Errorf("group references unregistered %q", n)
			}
		}
	}
}

func TestRROrderRotates(t *testing.T) {
	p := NewRR()
	set := buildSet([]jobSpec{
		{0, sim.Millisecond, []*gpu.KernelDesc{kdesc("k", 1, 64, sim.Microsecond, 0)}},
	})
	sys := cp.NewSystem(cp.DefaultSystemConfig(), set, p)
	_ = sys
	a := &cp.JobRun{}
	b := &cp.JobRun{}
	c := &cp.JobRun{}
	active := []*cp.JobRun{a, b, c}
	// The grant pointer starts at the front and advances past whoever was
	// served.
	if got := p.Order(active)[0]; got != a {
		t.Fatal("fresh RR should start at the first queue")
	}
	p.Served(a)
	if got := p.Order(active)[0]; got != b {
		t.Fatal("RR did not advance past the served queue")
	}
	p.Served(c)
	if got := p.Order(active)[0]; got != a {
		t.Fatal("RR did not wrap around")
	}
	// A served job that left the active set resets the cycle gracefully.
	p.Served(b)
	if got := p.Order([]*cp.JobRun{a, c})[0]; got != a {
		t.Fatal("RR did not handle a departed queue")
	}
	if got := p.Order(nil); got != nil {
		t.Fatal("empty active list should return nil")
	}
	// Every returned order must be a permutation (no drops/dupes).
	out := p.Order(active)
	seen := map[*cp.JobRun]bool{}
	for _, j := range out {
		seen[j] = true
	}
	if len(out) != 3 || !seen[a] || !seen[b] || !seen[c] {
		t.Fatal("RR order is not a permutation")
	}
}

func TestEDFPriorityIsAbsoluteDeadline(t *testing.T) {
	long := kdesc("k", 1, 2560, 100*sim.Microsecond, 0)
	set := buildSet([]jobSpec{
		{0, 5 * sim.Millisecond, []*gpu.KernelDesc{long}},
		{0, 1 * sim.Millisecond, []*gpu.KernelDesc{long}},
	})
	sys := runPolicy(t, NewEDF(), set)
	if sys.Job(0).Priority <= sys.Job(1).Priority {
		t.Fatalf("EDF priorities wrong: %d vs %d", sys.Job(0).Priority, sys.Job(1).Priority)
	}
}

func TestSJFPrefersShortJobs(t *testing.T) {
	// One CU, so ordering is visible. Short job arrives *after* long ones
	// but must run before the later-queued long work.
	cfg := cp.DefaultSystemConfig()
	cfg.GPU.NumCUs = 1
	long := kdesc("long", 4, 2560, 200*sim.Microsecond, 0)
	short := kdesc("short", 1, 2560, 10*sim.Microsecond, 0)
	set := buildSet([]jobSpec{
		{0, 10 * sim.Millisecond, []*gpu.KernelDesc{long}},
		{0, 10 * sim.Millisecond, []*gpu.KernelDesc{long}},
		{sim.Microsecond, 10 * sim.Millisecond, []*gpu.KernelDesc{short}},
	})
	sys := cp.NewSystem(cfg, set, NewSJF())
	sys.Run()
	if sys.Job(2).FinishTime >= sys.Job(1).FinishTime {
		t.Fatalf("SJF did not prefer the short job: short at %v, long at %v",
			sys.Job(2).FinishTime, sys.Job(1).FinishTime)
	}
}

func TestLJFPrefersLongJobs(t *testing.T) {
	cfg := cp.DefaultSystemConfig()
	cfg.GPU.NumCUs = 1
	long := kdesc("long", 4, 2560, 200*sim.Microsecond, 0)
	short := kdesc("short", 1, 2560, 10*sim.Microsecond, 0)
	set := buildSet([]jobSpec{
		{0, 10 * sim.Millisecond, []*gpu.KernelDesc{short}},
		{0, 10 * sim.Millisecond, []*gpu.KernelDesc{short}},
		{sim.Microsecond, 10 * sim.Millisecond, []*gpu.KernelDesc{long}},
	})
	sys := cp.NewSystem(cfg, set, NewLJF())
	sys.Run()
	if sys.Job(2).FinishTime >= sys.Job(1).FinishTime {
		t.Fatalf("LJF did not prefer the long job: long at %v, short at %v",
			sys.Job(2).FinishTime, sys.Job(1).FinishTime)
	}
}

func TestSRFAdaptsAsWorkCompletes(t *testing.T) {
	// Two identical long jobs; after one makes progress, its remaining
	// estimate (and so its priority value) must drop below the other's.
	cfg := cp.DefaultSystemConfig()
	cfg.GPU.NumCUs = 1
	k := kdesc("k", 40, 2560, 50*sim.Microsecond, 0)
	set := buildSet([]jobSpec{
		{0, 50 * sim.Millisecond, []*gpu.KernelDesc{k, k}},
		{200 * sim.Microsecond, 50 * sim.Millisecond, []*gpu.KernelDesc{k, k}},
	})
	p := NewSRF()
	sys := cp.NewSystem(cfg, set, p)
	checked := false
	sys.Engine().Schedule(2*sim.Millisecond, func() {
		j0, j1 := sys.Job(0), sys.Job(1)
		if j0.Done() || j1.Done() {
			return
		}
		if j0.Priority >= j1.Priority {
			t.Errorf("SRF priorities not tracking remaining work: %d vs %d", j0.Priority, j1.Priority)
		}
		checked = true
	})
	sys.Run()
	if !checked {
		t.Skip("jobs finished before probe; adjust sizes")
	}
}

func TestMLFQDemotesAndPromotes(t *testing.T) {
	k := kdesc("k", 1, 64, 3*sim.Millisecond, 0)
	set := buildSet([]jobSpec{{0, 6 * sim.Millisecond, []*gpu.KernelDesc{k}}})
	p := NewMLFQ()
	sys := cp.NewSystem(cp.DefaultSystemConfig(), set, p)
	probes := map[sim.Time]int64{}
	for _, at := range []sim.Time{sim.Millisecond, 3 * sim.Millisecond, 5 * sim.Millisecond} {
		at := at
		sys.Engine().Schedule(at, func() {
			if len(sys.Active()) == 1 {
				probes[at] = sys.Active()[0].Priority
			}
		})
	}
	sys.Run()
	// At 1ms (runtime < 2ms = d/3): high. At 3ms (between d/3 and 2d/3):
	// low. At 5ms (> 2d/3 = 4ms): promoted back to high.
	if probes[sim.Millisecond] != mlfqHigh {
		t.Errorf("at 1ms priority %d, want high", probes[sim.Millisecond])
	}
	if probes[3*sim.Millisecond] != mlfqLow {
		t.Errorf("at 3ms priority %d, want low (demoted)", probes[3*sim.Millisecond])
	}
	if probes[5*sim.Millisecond] != mlfqHigh {
		t.Errorf("at 5ms priority %d, want high (promoted back)", probes[5*sim.Millisecond])
	}
}

func TestMLFQOrderSeparatesQueues(t *testing.T) {
	p := NewMLFQ()
	hi := &cp.JobRun{Priority: mlfqHigh}
	lo := &cp.JobRun{Priority: mlfqLow}
	hi2 := &cp.JobRun{Priority: mlfqHigh}
	out := p.Order([]*cp.JobRun{lo, hi, hi2})
	if len(out) != 3 || out[2] != lo {
		t.Fatalf("low-priority job not last: %v", out)
	}
}

func TestPREMAPausesLowTokenJobs(t *testing.T) {
	// Fill the device with job 0's huge kernel; job 1 arrives later (lower
	// slowdown → lower token) and must be paused at the first epoch.
	big := kdesc("big", 64, 2560, sim.Millisecond, 0)
	set := buildSet([]jobSpec{
		{0, 100 * sim.Millisecond, []*gpu.KernelDesc{big}},
		{50 * sim.Microsecond, 100 * sim.Millisecond, []*gpu.KernelDesc{big}},
	})
	p := NewPREMA()
	sys := cp.NewSystem(cp.DefaultSystemConfig(), set, p)
	probed := false
	sys.Engine().Schedule(300*sim.Microsecond, func() { // after first epoch (250µs)
		j0, j1 := sys.Job(0), sys.Job(1)
		if j0.Done() || j1.Done() {
			return
		}
		if j1.Paused() == j0.Paused() {
			t.Errorf("PREMA did not discriminate: j0 paused=%v j1 paused=%v", j0.Paused(), j1.Paused())
		}
		probed = true
	})
	sys.Run()
	if !probed {
		t.Fatal("probe skipped")
	}
	for _, j := range sys.Jobs() {
		if !j.Done() {
			t.Fatalf("job %d never finished (preemption deadlock?)", j.Job.ID)
		}
	}
}

func TestPREMAChargesPreemptionStall(t *testing.T) {
	// Job 0 is huge (large ideal time → token grows slowly); job 1 is small
	// and arrives while job 0 is mid-flight. Job 1's token overtakes and it
	// fills the device, forcing a preemption of running job 0.
	big := kdesc("big", 64, 2560, sim.Millisecond, 0)
	big.VGPRBytesPerWG = 64 << 10 // large context → measurable stall
	small := kdesc("small", 8, 2560, sim.Millisecond, 0)
	set := buildSet([]jobSpec{
		{0, 200 * sim.Millisecond, []*gpu.KernelDesc{big}},
		{50 * sim.Microsecond, 200 * sim.Millisecond, []*gpu.KernelDesc{small}},
	})
	p := NewPREMA()
	sys := cp.NewSystem(cp.DefaultSystemConfig(), set, p)
	stalled := false
	// Poll for stalls over the run.
	var poll func()
	poll = func() {
		if sys.Device().Stalled() {
			stalled = true
			return
		}
		if len(sys.Active()) > 0 || sys.Completed() < 2 {
			sys.Engine().After(50*sim.Microsecond, poll)
		}
	}
	sys.Engine().Schedule(0, poll)
	sys.Run()
	if !stalled {
		t.Fatal("PREMA never charged a preemption stall despite displacing a running job")
	}
}

func TestBATLockStepBatching(t *testing.T) {
	// Two jobs of the same kernel chain spanning several batching windows;
	// job 0 gets a 150µs head start but the lock-step gate must drag its
	// completion to its batch-mate's pace.
	k := kdesc("cell", 1, 64, 300*sim.Microsecond, 0)
	set := buildSet([]jobSpec{
		{0, 50 * sim.Millisecond, []*gpu.KernelDesc{k, k, k, k}},
		{150 * sim.Microsecond, 50 * sim.Millisecond, []*gpu.KernelDesc{k, k, k, k}},
	})
	p := NewBAT()
	sys := cp.NewSystem(cp.DefaultSystemConfig(), set, p)
	sys.Run()
	j0, j1 := sys.Job(0), sys.Job(1)
	if !j0.Done() || !j1.Done() {
		t.Fatal("BAT deadlocked")
	}
	// Isolated, job 0 would finish at ≈2µs parse + 4×(4µs+300µs) = 1218µs.
	// Lock-step forces it to wait for job 1 (offset 150µs) at every step.
	if j0.FinishTime <= 1300*sim.Microsecond {
		t.Fatalf("job 0 finished at %v — lock-step never engaged", j0.FinishTime)
	}
	gap := j1.FinishTime - j0.FinishTime
	if gap < 0 {
		gap = -gap
	}
	if gap > 400*sim.Microsecond {
		t.Fatalf("batch mates finished %v apart; lock-step should keep them close", gap)
	}
}

func TestBAYRejectsInfeasibleDeadlines(t *testing.T) {
	// IPV6-style: 40µs deadline < 50µs model overhead → BAY must reject
	// every job (it completes zero IPV6 jobs in the paper).
	k := kdesc("ipv6", 32, 256, sim.Microsecond, 0)
	specs := make([]jobSpec, 8)
	for i := range specs {
		specs[i] = jobSpec{sim.Time(i) * 20 * sim.Microsecond, 40 * sim.Microsecond, []*gpu.KernelDesc{k}}
	}
	sys := runPolicy(t, NewBAY(), buildSet(specs))
	if sys.RejectedCount() != 8 {
		t.Fatalf("BAY rejected %d/8 jobs with sub-overhead deadlines", sys.RejectedCount())
	}
	if metCount(sys) != 0 {
		t.Fatal("BAY met deadlines it cannot meet")
	}
}

func TestBAYAdmitsFeasibleJobs(t *testing.T) {
	k := kdesc("k", 1, 64, 10*sim.Microsecond, 0)
	set := buildSet([]jobSpec{{0, 10 * sim.Millisecond, []*gpu.KernelDesc{k}}})
	sys := runPolicy(t, NewBAY(), set)
	if sys.RejectedCount() != 0 {
		t.Fatal("BAY rejected a trivially feasible job")
	}
	if metCount(sys) != 1 {
		t.Fatal("feasible job missed deadline under BAY")
	}
}

func TestPROHoldsJobsBeyondBudget(t *testing.T) {
	// Each kernel fills the whole device (20480 threads): PRO's
	// conservative model allows only one at a time.
	k := kdesc("k", 8, 2560, 500*sim.Microsecond, 0.5)
	set := buildSet([]jobSpec{
		{0, 100 * sim.Millisecond, []*gpu.KernelDesc{k}},
		{0, 100 * sim.Millisecond, []*gpu.KernelDesc{k}},
		{0, 100 * sim.Millisecond, []*gpu.KernelDesc{k}},
	})
	p := NewPRO()
	sys := cp.NewSystem(cp.DefaultSystemConfig(), set, p)
	probed := false
	sys.Engine().Schedule(400*sim.Microsecond, func() { // after first 200µs tick
		paused := 0
		for _, j := range sys.Active() {
			if j.Paused() {
				paused++
			}
		}
		if paused == 0 {
			t.Error("PRO paused no jobs despite 3× oversubscription")
		}
		probed = true
	})
	sys.Run()
	if !probed {
		t.Fatal("probe skipped")
	}
	for _, j := range sys.Jobs() {
		if !j.Done() {
			t.Fatalf("job %d starved under PRO", j.Job.ID)
		}
	}
}

func TestLAXAdmissionRejectsOversubscription(t *testing.T) {
	// Saturate the device with long kernels, then offer a job whose
	// deadline the queue forecloses. The profiling table must have data, so
	// let earlier jobs run past a few 100µs ticks first.
	k := kdesc("k", 64, 2560, 500*sim.Microsecond, 0)
	specs := []jobSpec{}
	for i := 0; i < 6; i++ {
		specs = append(specs, jobSpec{0, room, []*gpu.KernelDesc{k}})
	}
	// Late job with a tight deadline: by its arrival the queue delay is
	// several ms.
	specs = append(specs, jobSpec{2 * sim.Millisecond, 1 * sim.Millisecond, []*gpu.KernelDesc{k}})
	sys := runPolicy(t, NewLAX(), buildSet(specs))
	last := sys.Job(len(specs) - 1)
	if !last.Rejected() {
		t.Fatalf("LAX admitted a foreclosed job (state %v)", last.State())
	}
}

// room is a deadline large enough that early jobs are feasible.
const room = 200 * sim.Millisecond

func TestLAXAdmitsWhenUnknown(t *testing.T) {
	// First-ever job: no profiling data → optimistic admission (§4.3).
	k := kdesc("fresh", 1, 64, 10*sim.Microsecond, 0)
	set := buildSet([]jobSpec{{0, 100 * sim.Microsecond, []*gpu.KernelDesc{k}}})
	sys := runPolicy(t, NewLAX(), set)
	if sys.RejectedCount() != 0 {
		t.Fatal("LAX rejected with no profiling data; must be optimistic")
	}
}

func TestLAXPriorityTracksLaxity(t *testing.T) {
	// Two jobs, same deadline, different lengths: the longer job must get
	// the lower (more urgent) priority value once profiled.
	cfg := cp.DefaultSystemConfig()
	long := kdesc("L", 8, 2560, 400*sim.Microsecond, 0)
	short := kdesc("S", 8, 2560, 50*sim.Microsecond, 0)
	set := buildSet([]jobSpec{
		{0, 50 * sim.Millisecond, []*gpu.KernelDesc{long, long, long, long}},
		{0, 50 * sim.Millisecond, []*gpu.KernelDesc{short}},
	})
	p := NewLAX()
	sys := cp.NewSystem(cfg, set, p)
	// Pre-seed profiled rates (as a warm system would have) so both jobs
	// pass admission and get laxity priorities immediately.
	p.ProfilingTable().ObserveRate("L", 8.0/float64(400*sim.Microsecond))
	p.ProfilingTable().ObserveRate("S", 8.0/float64(50*sim.Microsecond))
	checked := false
	sys.Engine().Schedule(500*sim.Microsecond, func() {
		j0, j1 := sys.Job(0), sys.Job(1)
		if j0.Done() || j1.Done() {
			return
		}
		if j0.Priority >= j1.Priority {
			t.Errorf("longer job not prioritized: long=%d short=%d", j0.Priority, j1.Priority)
		}
		checked = true
	})
	sys.Run()
	if !checked {
		t.Skip("short job finished before probe")
	}
}

func TestLAXVariantsOverheads(t *testing.T) {
	if ov := NewLAX().Overheads(); ov != (cp.Overheads{}) {
		t.Errorf("LAX overheads %+v, want zero", ov)
	}
	sw := NewLAXSW().Overheads()
	if sw.PerKernelLaunch != HostLaunchOverhead || sw.PriorityUpdateLatency != HostLaunchOverhead {
		t.Errorf("LAX-SW overheads %+v", sw)
	}
	cpu := NewLAXCPU().Overheads()
	if cpu.PerKernelLaunch != 0 || cpu.PriorityUpdateLatency != MMIOWriteLatency {
		t.Errorf("LAX-CPU overheads %+v", cpu)
	}
}

func TestLAXTraceRecordsFigure10Data(t *testing.T) {
	k := kdesc("k", 16, 2560, 300*sim.Microsecond, 0)
	set := buildSet([]jobSpec{{0, 50 * sim.Millisecond, []*gpu.KernelDesc{k, k}}})
	p := NewLAX()
	p.EnableTrace(0)
	sys := cp.NewSystem(cp.DefaultSystemConfig(), set, p)
	sys.Run()
	pts := p.TracePoints()
	if len(pts) < 3 {
		t.Fatalf("trace has %d points, want several ticks", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].At <= pts[i-1].At {
			t.Fatal("trace times not increasing")
		}
		if pts[i].DurTime != pts[i].At-sys.Job(0).SubmitTime {
			t.Fatal("DurTime inconsistent")
		}
	}
	// The estimate starts at zero (no profile), grows once rates are
	// learned, then shrinks as work completes: the final sample must be
	// below the peak.
	var peak sim.Time
	for _, p := range pts {
		if p.PredictedRem > peak {
			peak = p.PredictedRem
		}
	}
	if peak == 0 {
		t.Fatal("predicted remaining never became positive; profiling broken")
	}
	if last := pts[len(pts)-1].PredictedRem; last >= peak {
		t.Fatalf("predicted remaining did not shrink: peak=%v last=%v", peak, last)
	}
}

// End-to-end shape check on a synthetic contended workload: LAX must meet
// at least as many deadlines as blind RR.
func TestLAXBeatsRRUnderContention(t *testing.T) {
	k := kdesc("w", 16, 2560, 100*sim.Microsecond, 0.5)
	rng := sim.NewRNG(3)
	var specs []jobSpec
	var at sim.Time
	for i := 0; i < 40; i++ {
		at += rng.Exp(150 * sim.Microsecond)
		n := 1 + rng.Intn(4)
		ks := make([]*gpu.KernelDesc, n)
		for j := range ks {
			ks[j] = k
		}
		specs = append(specs, jobSpec{at, 3 * sim.Millisecond, ks})
	}
	rr := runPolicy(t, NewRR(), buildSet(specs))
	lax := runPolicy(t, NewLAX(), buildSet(specs))
	if metCount(lax) < metCount(rr) {
		t.Fatalf("LAX met %d < RR met %d on contended trace", metCount(lax), metCount(rr))
	}
}
