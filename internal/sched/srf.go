package sched

import (
	"laxgpu/internal/core"
	"laxgpu/internal/cp"
	"laxgpu/internal/sim"
)

// SRF (shortest remaining-time job first) is the dynamic counterpart of
// SJF: it "uses LAX's remaining execution time estimator to assign job
// priorities" (Table 3) — the profiling-table-driven estimate — but ignores
// deadlines, laxity and queuing delay.
type SRF struct {
	sys *cp.System
	pt  *core.ProfilingTable

	// seenRetiredCUs detects device degradation between ticks (see LAX).
	seenRetiredCUs int
}

// NewSRF returns the shortest-remaining-time-first scheduler.
func NewSRF() *SRF { return &SRF{} }

// Name implements cp.Policy.
func (p *SRF) Name() string { return "SRF" }

// Attach implements cp.Policy.
func (p *SRF) Attach(s *cp.System) {
	p.sys = s
	p.pt = core.NewProfilingTable(1)
}

// Admit implements cp.Policy: no admission control; the initial priority is
// the current remaining-time estimate (zero for never-profiled kernels,
// which the first Reprioritize corrects).
func (p *SRF) Admit(j *cp.JobRun) bool {
	registerCapacities(p.pt, p.sys.Device(), j)
	j.Priority = clampPriority(p.pt.RemainingTime(j.TotalWGList()))
	return true
}

// Reprioritize implements cp.Policy: refresh the profiling table from
// device counters and re-rank every active job by its estimated remaining
// time.
func (p *SRF) Reprioritize() {
	p.pt.Update(p.sys.Device().Counters(), p.sys.Now())
	if r := p.sys.Device().RetiredCUsCount(); r != p.seenRetiredCUs {
		p.seenRetiredCUs = r
		for _, j := range p.sys.Active() {
			registerCapacities(p.pt, p.sys.Device(), j)
		}
	}
	for _, j := range p.sys.Active() {
		j.Priority = clampPriority(p.pt.RemainingTime(j.RemainingWGList()))
	}
}

// Interval implements cp.Policy: the same 100 µs cadence as LAX.
func (p *SRF) Interval() sim.Time { return core.DefaultUpdateInterval }

// Overheads implements cp.Policy: SRF extends the CP.
func (p *SRF) Overheads() cp.Overheads { return cp.Overheads{} }
