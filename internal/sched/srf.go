package sched

import (
	"laxgpu/internal/core"
	"laxgpu/internal/cp"
	"laxgpu/internal/obs"
	"laxgpu/internal/sim"
)

// SRF (shortest remaining-time job first) is the dynamic counterpart of
// SJF: it "uses LAX's remaining execution time estimator to assign job
// priorities" (Table 3) — the profiling-table-driven estimate — but ignores
// deadlines, laxity and queuing delay.
type SRF struct {
	sys *cp.System
	pt  *core.ProfilingTable

	// jt is the shared dirty-set estimate cache (see jobtable.go): SRF uses
	// LAX's estimator, so it gets the same incremental path.
	jt *jobTable

	// seenRetiredCUs detects device degradation between ticks (see LAX).
	seenRetiredCUs int
}

// NewSRF returns the shortest-remaining-time-first scheduler.
func NewSRF() *SRF { return &SRF{} }

// Name implements cp.Policy.
func (p *SRF) Name() string { return "SRF" }

// Attach implements cp.Policy.
func (p *SRF) Attach(s *cp.System) {
	p.sys = s
	p.pt = core.NewProfilingTable(1)
	p.jt = newJobTable(p.pt)
}

// Admit implements cp.Policy: no admission control; the initial priority is
// the current remaining-time estimate (zero for never-profiled kernels,
// which the first Reprioritize corrects).
func (p *SRF) Admit(j *cp.JobRun) bool {
	registerCapacities(p.pt, p.sys.Device(), j)
	p.jt.register(j)
	j.Priority = clampPriority(p.pt.RemainingTime(j.TotalWGList()))
	probeAdmission(p.sys, p.Name(), j, true)
	return true
}

// Reprioritize implements cp.Policy: refresh the profiling table from
// device counters and re-rank every active job by its estimated remaining
// time.
func (p *SRF) Reprioritize() {
	probeEpoch(p.sys, p.Name())
	p.pt.Update(p.sys.Device().Counters(), p.sys.Now())
	probeTableRefresh(p.sys, p.Name(), p.pt.Len())
	if r := p.sys.Device().RetiredCUsCount(); r != p.seenRetiredCUs {
		p.seenRetiredCUs = r
		for _, j := range p.sys.Active() {
			registerCapacities(p.pt, p.sys.Device(), j)
		}
	}
	pr := p.sys.Probe()
	now := p.sys.Now()
	for _, j := range p.sys.Active() {
		rem, _ := p.jt.estimates(j)
		j.Priority = clampPriority(rem)
		if pr != nil {
			pr.Sample(obs.JobSample{
				At: now, Job: j.Job.ID, Queue: j.QueueID, Priority: j.Priority,
				HasPrediction: true, PredictedRem: rem,
			})
		}
	}
}

// Interval implements cp.Policy: the same 100 µs cadence as LAX.
func (p *SRF) Interval() sim.Time { return core.DefaultUpdateInterval }

// Overheads implements cp.Policy: SRF extends the CP.
func (p *SRF) Overheads() cp.Overheads { return cp.Overheads{} }

// EstimateKernelTime implements cp.KernelEstimator from SRF's own profiling
// table (it shares LAX's estimator machinery, Table 3).
func (p *SRF) EstimateKernelTime(j *cp.JobRun) (sim.Time, bool) {
	k := j.Current()
	if k == nil {
		return 0, false
	}
	return p.pt.KernelTime(k.Desc.Name, k.Desc.NumWGs), true
}
