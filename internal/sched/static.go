package sched

import (
	"laxgpu/internal/cp"
	"laxgpu/internal/sim"
)

// EDF prioritizes the job with the earliest absolute deadline (Table 3,
// [91]). Because preemption overhead would exceed many of the studied
// deadlines, the paper implements EDF "by prioritizing jobs with the
// earliest deadlines first, without preemption" — exactly what setting the
// queue priority to the absolute deadline does.
type EDF struct{ sys *cp.System }

// NewEDF returns the earliest-deadline-first scheduler.
func NewEDF() *EDF { return &EDF{} }

// Name implements cp.Policy.
func (p *EDF) Name() string { return "EDF" }

// Attach implements cp.Policy.
func (p *EDF) Attach(s *cp.System) { p.sys = s }

// Admit implements cp.Policy: EDF has no admission control; the deadline
// becomes the job's static priority.
func (p *EDF) Admit(j *cp.JobRun) bool {
	j.Priority = clampPriority(j.Job.AbsoluteDeadline())
	probeAdmission(p.sys, p.Name(), j, true)
	return true
}

// Reprioritize implements cp.Policy: deadlines never change.
func (p *EDF) Reprioritize() {}

// Interval implements cp.Policy.
func (p *EDF) Interval() sim.Time { return 0 }

// Overheads implements cp.Policy.
func (p *EDF) Overheads() cp.Overheads { return cp.Overheads{} }

// SJF schedules kernels from the shortest job first (Table 3): a static
// policy keyed on the offline-predicted total job time.
type SJF struct{ sys *cp.System }

// NewSJF returns the shortest-job-first scheduler.
func NewSJF() *SJF { return &SJF{} }

// Name implements cp.Policy.
func (p *SJF) Name() string { return "SJF" }

// Attach implements cp.Policy.
func (p *SJF) Attach(s *cp.System) { p.sys = s }

// Admit implements cp.Policy: priority is the predicted total time, fixed
// for the job's lifetime.
func (p *SJF) Admit(j *cp.JobRun) bool {
	j.Priority = clampPriority(staticJobTime(p.sys.Device().Config(), j))
	probeAdmission(p.sys, p.Name(), j, true)
	return true
}

// Reprioritize implements cp.Policy: static policy.
func (p *SJF) Reprioritize() {}

// Interval implements cp.Policy.
func (p *SJF) Interval() sim.Time { return 0 }

// Overheads implements cp.Policy.
func (p *SJF) Overheads() cp.Overheads { return cp.Overheads{} }

// EstimateKernelTime implements cp.KernelEstimator from the same offline
// profile SJF's static ordering keys on.
func (p *SJF) EstimateKernelTime(j *cp.JobRun) (sim.Time, bool) {
	return staticKernelEstimate(p.sys, j)
}

// LJF schedules kernels from the longest job first (Table 3) — the mirror
// image of SJF. It helps long RNN jobs at the cost of sacrificing short
// ones (§6.1.2).
type LJF struct{ sys *cp.System }

// NewLJF returns the longest-job-first scheduler.
func NewLJF() *LJF { return &LJF{} }

// Name implements cp.Policy.
func (p *LJF) Name() string { return "LJF" }

// Attach implements cp.Policy.
func (p *LJF) Attach(s *cp.System) { p.sys = s }

// Admit implements cp.Policy.
func (p *LJF) Admit(j *cp.JobRun) bool {
	j.Priority = -clampPriority(staticJobTime(p.sys.Device().Config(), j))
	probeAdmission(p.sys, p.Name(), j, true)
	return true
}

// Reprioritize implements cp.Policy.
func (p *LJF) Reprioritize() {}

// Interval implements cp.Policy.
func (p *LJF) Interval() sim.Time { return 0 }

// Overheads implements cp.Policy.
func (p *LJF) Overheads() cp.Overheads { return cp.Overheads{} }

// EstimateKernelTime implements cp.KernelEstimator from the same offline
// profile LJF's static ordering keys on.
func (p *LJF) EstimateKernelTime(j *cp.JobRun) (sim.Time, bool) {
	return staticKernelEstimate(p.sys, j)
}
