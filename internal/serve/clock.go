// Package serve runs the paper's admission controller (Algorithm 1) and
// laxity scheduler (Algorithm 2) as an online service: the same cp.System
// and sched policies that power the simulator, driven by a wall clock
// instead of a pre-scheduled trace, fronted by an HTTP API.
//
// The layering is deliberate:
//
//   - Clock abstracts "what simulated time is it" away from "how long do I
//     wait": WallClock maps real time onto the simulation timeline at a
//     configurable speed factor.
//   - Node owns one cp.System in online mode and is clock-free — it only
//     ever sees simulated instants, so tests drive it deterministically and
//     the equivalence suite proves a replayed trace matches sim mode
//     job-for-job.
//   - Driver is the single goroutine that paces a Node against a Clock and
//     serializes every touch of the (single-threaded) simulation.
//   - Server is the HTTP frontend: admission verdicts as status codes,
//     per-job records, server-sent events, Prometheus metrics, graceful
//     drain.
package serve

import (
	"sync"
	"time"

	"laxgpu/internal/sim"
)

// Clock maps between simulated time and the caller's real timeline. Now is
// monotonically non-decreasing. Implementations must be safe for concurrent
// use.
type Clock interface {
	// Now returns the current simulated instant.
	Now() sim.Time

	// Until returns how long the caller must really wait for the simulated
	// instant t to arrive (zero if it already passed).
	Until(t sim.Time) time.Duration
}

// WallClock maps wall-clock time onto the simulation timeline: simulated
// time zero is the moment the clock was created, and simulated time advances
// speed× as fast as real time. Speed 1 is real time; larger factors compress
// wall time (a speed-100 clock fits 1 s of simulated load into 10 ms of
// wall time), which is how the test suite exercises seconds of traffic in
// milliseconds.
type WallClock struct {
	start time.Time
	speed float64
}

// NewWallClock returns a wall clock starting at simulated time zero, with
// the given speed factor (values <= 0 mean real time).
func NewWallClock(speed float64) *WallClock {
	if speed <= 0 {
		speed = 1
	}
	return &WallClock{start: time.Now(), speed: speed}
}

// Now implements Clock.
func (c *WallClock) Now() sim.Time {
	return sim.Time(float64(time.Since(c.start)) * c.speed)
}

// Until implements Clock.
func (c *WallClock) Until(t sim.Time) time.Duration {
	d := time.Duration(float64(t-c.Now()) / c.speed)
	if d < 0 {
		return 0
	}
	return d
}

// ManualClock is a Clock that only moves when told to — the deterministic
// replacement for WallClock in tests: drivers paced by it advance their
// nodes exactly to the instants the test sets, and Until reports an hour
// for any future instant so a pacing loop parks instead of busy-waiting
// (commands still wake it immediately).
type ManualClock struct {
	mu  sync.Mutex
	now sim.Time
}

// NewManualClock returns a manual clock at simulated time zero.
func NewManualClock() *ManualClock { return &ManualClock{} }

// Now implements Clock.
func (c *ManualClock) Now() sim.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Set moves the clock to t. Time never goes backwards: earlier instants are
// ignored, matching the Clock contract.
func (c *ManualClock) Set(t sim.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
}

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d sim.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
}

// Until implements Clock: one hour for any future instant (a parked pacing
// loop re-checks whenever a command arrives or the hour elapses), zero for
// instants already reached.
func (c *ManualClock) Until(t sim.Time) time.Duration {
	if t <= c.Now() {
		return 0
	}
	return time.Hour
}
