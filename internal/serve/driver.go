package serve

import (
	"sync/atomic"
	"time"
)

// Driver paces one Node against a Clock from a single goroutine — the only
// goroutine that ever touches the node's simulation. HTTP handlers reach the
// node by enqueuing closures on a bounded command channel; the channel's
// capacity is the server's accept queue, and a full channel is backpressure
// the frontend surfaces as 503.
//
// The loop alternates between advancing the simulation to "now" on the
// clock, executing queued commands at that instant, and sleeping until
// whichever comes first: the next simulated event's wall time or a new
// command.
type Driver struct {
	node  *Node
	clock Clock

	cmds    chan func()
	stop    chan struct{} // closed by the drain command; loop exits
	done    chan struct{} // closed when the loop has exited
	stopped atomic.Bool   // guards double-close of stop
}

// NewDriver wraps node with a command loop paced by clock. queue bounds the
// accept queue (commands pending execution); values < 1 default to 64.
func NewDriver(node *Node, clock Clock, queue int) *Driver {
	if queue < 1 {
		queue = 64
	}
	return &Driver{
		node:  node,
		clock: clock,
		cmds:  make(chan func(), queue),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Node returns the driven node. Only the driver goroutine (inside a Do/Call
// closure) may touch it.
func (d *Driver) Node() *Node { return d.node }

// Start launches the pacing loop.
func (d *Driver) Start() { go d.loop() }

// Do enqueues fn for the driver goroutine, which runs it with the
// simulation advanced to the current clock instant. It reports false — and
// does not enqueue — when the accept queue is full or the driver has
// stopped: the caller's backpressure signal.
func (d *Driver) Do(fn func()) bool {
	select {
	case <-d.done:
		return false
	default:
	}
	select {
	case d.cmds <- fn:
		return true
	default:
		return false
	}
}

// Call runs fn on the driver goroutine and waits for it to finish. It
// reports false if the command could not be enqueued or the driver stopped
// before executing it.
func (d *Driver) Call(fn func()) bool {
	ran := make(chan struct{})
	if !d.Do(func() { fn(); close(ran) }) {
		return false
	}
	select {
	case <-ran:
		return true
	case <-d.done:
		// The loop exited with the command still queued.
		select {
		case <-ran:
			return true
		default:
			return false
		}
	}
}

// Done returns a channel closed when the pacing loop has exited.
func (d *Driver) Done() <-chan struct{} { return d.done }

// Shutdown gracefully drains the node: commands already queued execute
// first, then the node keeps pacing until every in-flight job reaches a
// terminal state or grace expires, at which point the remainder is forced
// off the GPU via the CPU-fallback path and the simulation runs to
// quiescence. It returns the number of jobs forced off. Callers must stop
// producing new work first. Safe to call once; repeat calls just wait.
func (d *Driver) Shutdown(grace time.Duration) int {
	forced := 0
	if d.stopped.CompareAndSwap(false, true) {
		deadline := time.Now().Add(grace)
		// Block (not Do) so the drain command cannot be lost to a full
		// queue; commands ahead of it drain quickly.
		select {
		case d.cmds <- func() {
			forced = d.drain(deadline)
			close(d.stop)
		}:
		case <-d.done:
			return 0
		}
	}
	<-d.done
	return forced
}

func (d *Driver) loop() {
	defer close(d.done)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		d.node.AdvanceTo(d.clock.Now())

		// Execute everything already queued at this instant.
	queued:
		for {
			select {
			case fn := <-d.cmds:
				d.node.AdvanceTo(d.clock.Now())
				fn()
				select {
				case <-d.stop:
					return
				default:
				}
			default:
				break queued
			}
		}

		// Sleep until the next simulated event is due — or indefinitely
		// when the node is idle — interruptible by new commands.
		var wake <-chan time.Time
		if te, ok := d.node.NextEvent(); ok {
			dur := d.clock.Until(te)
			if dur <= 0 {
				// Due exactly now: AdvanceTo's strictly-before semantics
				// would leave it pending forever on a clock that is not
				// moving, so run events at this instant inclusively.
				d.node.CatchUp(d.clock.Now())
				continue
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(dur)
			wake = timer.C
		}
		select {
		case fn := <-d.cmds:
			d.node.AdvanceTo(d.clock.Now())
			fn()
			select {
			case <-d.stop:
				return
			default:
			}
		case <-wake:
		case <-d.stop:
			return
		}
	}
}

// drain runs on the driver goroutine: paced execution until the node
// quiesces naturally or the wall deadline passes, then forced CPU fallback
// for whatever is left. Returns the number of jobs forced off the GPU.
func (d *Driver) drain(deadline time.Time) int {
	for {
		d.node.AdvanceTo(d.clock.Now())
		if len(d.node.Unfinished()) == 0 {
			return 0
		}
		te, ok := d.node.NextEvent()
		if !ok {
			break // in-flight jobs but no events: only fallback can finish them
		}
		dur := d.clock.Until(te)
		if time.Now().Add(dur).After(deadline) {
			break // the next completion lands past the grace period
		}
		if dur > 0 {
			time.Sleep(dur)
		} else {
			d.node.CatchUp(d.clock.Now())
		}
	}
	d.node.AdvanceTo(d.clock.Now())
	return d.node.ForceDrain()
}
