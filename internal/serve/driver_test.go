package serve

import (
	"testing"
	"time"

	"laxgpu/internal/cp"
	"laxgpu/internal/sim"
	"laxgpu/internal/workload"
)

func testLibAndConfig() (*workload.Library, cp.SystemConfig) {
	cfg := cp.DefaultSystemConfig()
	return workload.NewLibrary(cfg.GPU), cfg
}

// sampleJob draws one job from the named benchmark; ID and arrival are
// stamped by Node.Submit.
func sampleJob(t *testing.T, lib *workload.Library, name string) *workload.Job {
	t.Helper()
	b, err := workload.FindBenchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	return b.Sample(lib, sim.NewRNG(9), 0, 0)
}

func TestWallClock(t *testing.T) {
	c := NewWallClock(100)
	a := c.Now()
	time.Sleep(2 * time.Millisecond)
	b := c.Now()
	if b <= a {
		t.Fatalf("clock did not advance: %v then %v", a, b)
	}
	// 2ms of wall time at speed 100 is at least 200ms simulated.
	if b-a < 200*sim.Millisecond {
		t.Errorf("speed-100 clock advanced only %v over 2ms wall", b-a)
	}
	if d := c.Until(c.Now() - sim.Second); d != 0 {
		t.Errorf("Until(past) = %v, want 0", d)
	}
	// A simulated second ahead at speed 100 is ~10ms of wall time.
	d := c.Until(c.Now() + sim.Second)
	if d <= 0 || d > 11*time.Millisecond {
		t.Errorf("Until(+1s) = %v, want ~10ms", d)
	}
	if NewWallClock(0).speed != 1 {
		t.Error("non-positive speed should default to real time")
	}
}

func TestDriverBackpressure(t *testing.T) {
	node, err := NewNode(NodeConfig{Scheduler: "LAX"})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDriver(node, NewWallClock(1), 1)
	// Not started yet: the queue holds exactly one command.
	if !d.Do(func() {}) {
		t.Fatal("first Do should enqueue")
	}
	if d.Do(func() {}) {
		t.Fatal("second Do should report a full accept queue")
	}
	d.Start()
	// The loop needs a moment to drain the queued command before a new one
	// fits in the size-1 queue.
	ran := false
	for i := 0; i < 1000 && !ran; i++ {
		if !d.Call(func() { ran = true }) {
			time.Sleep(time.Millisecond)
		}
	}
	if !ran {
		t.Fatal("Call on a running driver never succeeded")
	}
	if forced := d.Shutdown(10 * time.Millisecond); forced != 0 {
		t.Errorf("idle shutdown forced %d jobs, want 0", forced)
	}
	select {
	case <-d.Done():
	default:
		t.Error("Done not closed after Shutdown")
	}
	if d.Do(func() {}) {
		t.Error("Do after shutdown should refuse")
	}
	if d.Call(func() {}) {
		t.Error("Call after shutdown should refuse")
	}
	// Repeat shutdown is a no-op wait.
	if forced := d.Shutdown(time.Millisecond); forced != 0 {
		t.Errorf("repeat shutdown forced %d", forced)
	}
}

func TestDriverPacesSubmittedJob(t *testing.T) {
	node, err := NewNode(NodeConfig{Scheduler: "LAX"})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDriver(node, NewWallClock(1000), 8)
	d.Start()
	defer d.Shutdown(time.Second)

	lib, cfg := testLibAndConfig()
	job := sampleJob(t, lib, "STEM")
	_ = cfg
	var submitted bool
	if !d.Call(func() { submitted = !node.Submit(job).Rejected() }) {
		t.Fatal("submit command did not run")
	}
	if !submitted {
		t.Fatal("single job on an idle node should be admitted")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var left int
		if !d.Call(func() { left = len(node.Unfinished()) }) {
			t.Fatal("driver stopped while polling")
		}
		if left == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish under real-time pacing")
		}
		time.Sleep(time.Millisecond)
	}
}
