package serve

import (
	"fmt"
	"testing"

	"laxgpu/internal/cp"
	"laxgpu/internal/sched"
	"laxgpu/internal/sim"
	"laxgpu/internal/workload"
)

// cloneSet deep-copies the job structs (kernel descriptors are immutable and
// shared) so a sim-mode run and an online replay never see each other's
// mutations.
func cloneSet(set *workload.JobSet) *workload.JobSet {
	out := &workload.JobSet{Benchmark: set.Benchmark, Rate: set.Rate, Seed: set.Seed}
	for _, j := range set.Jobs {
		c := *j
		out.Jobs = append(out.Jobs, &c)
	}
	return out
}

// runSim replays the trace through the offline simulator, the reference the
// online path must match.
func runSim(t *testing.T, policy string, set *workload.JobSet) []*cp.JobRun {
	t.Helper()
	pol, err := sched.New(policy)
	if err != nil {
		t.Fatal(err)
	}
	sys := cp.NewSystem(cp.DefaultSystemConfig(), set, pol)
	sys.Run()
	return sys.Jobs()
}

// replayOnline pushes the same trace through a Node exactly as the serving
// frontend does — advance to the arrival instant, submit, read the verdict —
// then runs the remaining events to quiescence.
func replayOnline(t *testing.T, policy string, set *workload.JobSet) []*cp.JobRun {
	t.Helper()
	node, err := NewNode(NodeConfig{Scheduler: policy})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range set.Jobs {
		node.AdvanceTo(j.Arrival)
		jr := node.Submit(j)
		if jr.Job.ID != j.ID {
			t.Fatalf("online replay renumbered job %d to %d", j.ID, jr.Job.ID)
		}
	}
	node.System().Engine().Run()
	return node.System().Jobs()
}

// compareRuns asserts per-job outcome identity between the two modes.
func compareRuns(t *testing.T, simJobs, onlJobs []*cp.JobRun) {
	t.Helper()
	if len(simJobs) != len(onlJobs) {
		t.Fatalf("job count: sim %d, online %d", len(simJobs), len(onlJobs))
	}
	for i := range simJobs {
		s, o := simJobs[i], onlJobs[i]
		if s.State() != o.State() {
			t.Errorf("job %d state: sim %v, online %v", i, s.State(), o.State())
		}
		if s.FinishTime != o.FinishTime {
			t.Errorf("job %d finish: sim %v, online %v", i, s.FinishTime, o.FinishTime)
		}
		if s.MetDeadline() != o.MetDeadline() {
			t.Errorf("job %d met-deadline: sim %v, online %v", i, s.MetDeadline(), o.MetDeadline())
		}
		if s.FellBack != o.FellBack {
			t.Errorf("job %d fell-back: sim %v, online %v", i, s.FellBack, o.FellBack)
		}
	}
}

// TestOnlineMatchesSimMode is the clock-abstraction equivalence pin: for a
// spread of policies and workloads at the paper's high contention rate, the
// online submission path (AdvanceTo + SubmitNow) must agree with a sim-mode
// Run of the identical trace on every job's verdict, finish time and
// deadline outcome.
func TestOnlineMatchesSimMode(t *testing.T) {
	cfg := cp.DefaultSystemConfig()
	lib := workload.NewLibrary(cfg.GPU)
	policies := []string{"LAX", "LAX-SW", "EDF", "SRF", "RR", "ORACLE"}
	benches := []string{"LSTM", "STEM", "CUCKOO"}
	for _, policy := range policies {
		for _, name := range benches {
			t.Run(fmt.Sprintf("%s/%s", policy, name), func(t *testing.T) {
				b, err := workload.FindBenchmark(name)
				if err != nil {
					t.Fatal(err)
				}
				set := b.Generate(lib, workload.HighRate, 96, 7)
				simJobs := runSim(t, policy, cloneSet(set))
				onlJobs := replayOnline(t, policy, cloneSet(set))
				compareRuns(t, simJobs, onlJobs)
			})
		}
	}
}

// TestOnlineMatchesSimModeOnGridArrivals stresses the lazily armed online
// reprioritization timer: arrivals pinned exactly to multiples of the
// policy's update interval hit the catch-up path (sim mode would tick at
// that very instant; online mode must replicate the tick it slept through).
func TestOnlineMatchesSimModeOnGridArrivals(t *testing.T) {
	cfg := cp.DefaultSystemConfig()
	lib := workload.NewLibrary(cfg.GPU)
	pol, err := sched.New("LAX")
	if err != nil {
		t.Fatal(err)
	}
	iv := pol.Interval()
	if iv <= 0 {
		t.Fatalf("LAX interval = %v, want > 0", iv)
	}
	b, err := workload.FindBenchmark("STEM")
	if err != nil {
		t.Fatal(err)
	}
	arrivals := []sim.Time{
		0, iv, iv, 2 * iv, 2*iv + iv/3, 5 * iv, 5 * iv, 5*iv + 1, 9 * iv,
	}
	rng := sim.NewRNG(3)
	set := &workload.JobSet{Benchmark: "STEM"}
	for i, at := range arrivals {
		set.Jobs = append(set.Jobs, b.Sample(lib, rng, i, at))
	}
	simJobs := runSim(t, "LAX", cloneSet(set))
	onlJobs := replayOnline(t, "LAX", cloneSet(set))
	compareRuns(t, simJobs, onlJobs)
}

// TestNodeOverloadVerdicts checks Algorithm 1 behaves sanely against offered
// load: a trace at twice the device's sustainable rate must see rejections,
// and a trace at a fifth of it must see none.
func TestNodeOverloadVerdicts(t *testing.T) {
	cfg := cp.DefaultSystemConfig()
	lib := workload.NewLibrary(cfg.GPU)
	b, err := workload.FindBenchmark("STEM")
	if err != nil {
		t.Fatal(err)
	}
	const samples = 32
	rng := sim.NewRNG(1)
	var total sim.Time
	for i := 0; i < samples; i++ {
		total += b.Sample(lib, rng, i, 0).SerialTime(cfg.GPU)
	}
	capacity := samples * float64(sim.Second) / float64(total) // jobs/second

	run := func(mult float64) (rejected int) {
		set := b.GenerateCustom(lib, int(mult*capacity), 200, 11)
		node, err := NewNode(NodeConfig{Scheduler: "LAX"})
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range set.Jobs {
			node.AdvanceTo(j.Arrival)
			if node.Submit(j).Rejected() {
				rejected++
			}
		}
		node.System().Engine().Run()
		for _, jr := range node.Unfinished() {
			t.Errorf("job %d not terminal after quiescence", jr.Job.ID)
		}
		return rejected
	}

	if r := run(2.0); r == 0 {
		t.Error("expected rejections at 2x capacity, got none")
	}
	if r := run(0.2); r != 0 {
		t.Errorf("got %d rejections at 0.2x capacity, want 0", r)
	}
}
