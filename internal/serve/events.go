package serve

import (
	"encoding/json"
	"sync"

	"laxgpu/internal/obs"
)

// broker fans job lifecycle events out to server-sent-event subscribers.
// Publishing never blocks: a subscriber that cannot keep up loses events
// (counted) rather than stalling the driver goroutine.
type broker struct {
	mu      sync.Mutex
	subs    map[chan []byte]struct{}
	closed  bool
	dropped *obs.Counter
}

func newBroker(dropped *obs.Counter) *broker {
	return &broker{subs: make(map[chan []byte]struct{}), dropped: dropped}
}

// subscribe registers a new listener; the returned cancel must be called
// when the listener goes away.
func (b *broker) subscribe() (ch chan []byte, cancel func()) {
	ch = make(chan []byte, 64)
	b.mu.Lock()
	if b.closed {
		close(ch)
	} else {
		b.subs[ch] = struct{}{}
	}
	b.mu.Unlock()
	return ch, func() {
		b.mu.Lock()
		if _, ok := b.subs[ch]; ok {
			delete(b.subs, ch)
			close(ch)
		}
		b.mu.Unlock()
	}
}

// publish marshals the status once and offers it to every subscriber.
func (b *broker) publish(event string, st JobStatus) {
	payload, err := json.Marshal(struct {
		Event string `json:"event"`
		JobStatus
	}{Event: event, JobStatus: st})
	if err != nil {
		return
	}
	b.mu.Lock()
	for ch := range b.subs {
		select {
		case ch <- payload:
		default:
			b.dropped.Inc()
		}
	}
	b.mu.Unlock()
}

// close disconnects every subscriber.
func (b *broker) close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		for ch := range b.subs {
			delete(b.subs, ch)
			close(ch)
		}
	}
	b.mu.Unlock()
}
