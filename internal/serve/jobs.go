package serve

import (
	"sync"
	"time"

	"laxgpu/internal/cp"
	"laxgpu/internal/sim"
)

// JobStatus is a snapshot of one submitted job, as served on
// GET /v1/jobs/{id} and on the event stream.
type JobStatus struct {
	// ID is the server-wide job identifier.
	ID int64 `json:"id"`

	// Benchmark names the workload the job belongs to.
	Benchmark string `json:"benchmark"`

	// Device is the index of the GPU the router placed the job on.
	Device int `json:"device"`

	// State is the job's pipeline state: "admitted" until a terminal
	// transition, then "done", "cancelled" or "rejected".
	State string `json:"state"`

	// Admitted reports the Algorithm 1 verdict.
	Admitted bool `json:"admitted"`

	// MetDeadline reports whether a finished job completed by its deadline.
	MetDeadline bool `json:"met_deadline"`

	// FellBack reports that the job completed on the CPU fallback path
	// (recovery or forced drain), not the GPU.
	FellBack bool `json:"fell_back"`

	// DeadlineUs is the job's relative deadline in microseconds.
	DeadlineUs int64 `json:"deadline_us"`

	// LatencyUs is arrival-to-finish in simulated microseconds (finished
	// jobs only).
	LatencyUs int64 `json:"latency_us,omitempty"`

	// RetryAfterUs is the predicted queue-drain time handed to rejected
	// jobs, in simulated microseconds.
	RetryAfterUs int64 `json:"retry_after_us,omitempty"`

	// Reason is the machine-readable reject reason (the Reason* constants)
	// for jobs that never ran; empty for accepted jobs.
	Reason string `json:"reason,omitempty"`

	// TraceID is the job's W3C trace ID: adopted from the submitter's
	// traceparent header when present, minted otherwise. The full timeline
	// is served on GET /v1/jobs/{id}/trace.
	TraceID string `json:"trace_id,omitempty"`

	// MissCause is the dominant-cause verdict for jobs that missed their
	// deadline (the metrics.ClassifyMiss taxonomy); empty while running and
	// for jobs that met it.
	MissCause string `json:"miss_cause,omitempty"`
}

// record is the server-side state behind a JobStatus. Mutable fields are
// guarded by the owning recordTable's mutex; run is only dereferenced on the
// driver goroutine of the owning device.
type record struct {
	status    JobStatus
	client    string
	submitted time.Time
	run       *cp.JobRun
	done      chan struct{} // closed at the first terminal transition
	terminal  bool
}

// recordTable is the bounded registry of submitted jobs. Eviction is FIFO
// once max is exceeded — long-running servers keep memory flat and clients
// are expected to read outcomes promptly (or listen on the event stream).
type recordTable struct {
	mu    sync.Mutex
	max   int
	byID  map[int64]*record
	order []int64
}

func newRecordTable(max int) *recordTable {
	if max < 1 {
		max = 65536
	}
	return &recordTable{max: max, byID: make(map[int64]*record)}
}

// add registers a record, evicting the oldest entries beyond the cap.
func (t *recordTable) add(r *record) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.byID[r.status.ID] = r
	t.order = append(t.order, r.status.ID)
	for len(t.order) > t.max {
		evict := t.order[0]
		t.order = t.order[1:]
		delete(t.byID, evict)
	}
}

// get returns a snapshot of the record's status.
func (t *recordTable) get(id int64) (JobStatus, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.byID[id]
	if !ok {
		return JobStatus{}, false
	}
	return r.status, true
}

// update mutates a record's status under the table lock and reports whether
// this call made it terminal (closing the record's done channel exactly
// once).
func (t *recordTable) update(r *record, fn func(*JobStatus), terminal bool) (JobStatus, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fn(&r.status)
	first := false
	if terminal && !r.terminal {
		r.terminal = true
		first = true
		close(r.done)
	}
	return r.status, first
}

func usOf(t sim.Time) int64 { return int64(t / sim.Microsecond) }
