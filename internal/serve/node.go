package serve

import (
	"laxgpu/internal/cp"
	"laxgpu/internal/faults"
	"laxgpu/internal/gpu"
	"laxgpu/internal/obs"
	"laxgpu/internal/sched"
	"laxgpu/internal/sim"
	"laxgpu/internal/workload"
)

// NodeConfig configures one serving device.
type NodeConfig struct {
	// System configures the simulated GPU and command processor; the zero
	// value means cp.DefaultSystemConfig (the paper's Table 2 system).
	System cp.SystemConfig

	// Scheduler names the queue-scheduling policy (sched registry name).
	Scheduler string

	// Probe optionally observes every scheduler decision (metrics,
	// recording). Attached before the system starts.
	Probe obs.Probe

	// Faults optionally degrades the device with the given fault plan.
	// When the spec asks for recovery, the watchdog/retry/CPU-fallback
	// machinery is armed exactly as in sim mode.
	Faults faults.Spec

	// Seed derives the fault plan's deterministic injection stream.
	Seed int64
}

// Node is one serving device: a cp.System in online mode plus the dense
// job-ID allocation SubmitNow requires. A Node never reads a real clock —
// callers advance it to explicit simulated instants — so the identical
// machinery runs under the real-time Driver and under the deterministic
// equivalence tests.
//
// Node is not safe for concurrent use; a single goroutine (the Driver, or a
// test) owns it.
type Node struct {
	sys  *cp.System
	pol  cp.Policy
	next int
}

// NewNode builds the device, attaches the named policy and probe, installs
// the fault plan, and starts the system in online mode.
func NewNode(cfg NodeConfig) (*Node, error) {
	pol, err := sched.New(cfg.Scheduler)
	if err != nil {
		return nil, err
	}
	sysCfg := cfg.System
	if sysCfg.NumQueues == 0 {
		sysCfg = cp.DefaultSystemConfig()
	}
	if !cfg.Faults.Zero() && cfg.Faults.Recover {
		sysCfg.Recovery = cp.DefaultRecoveryConfig()
	}
	sys := cp.NewSystem(sysCfg, &workload.JobSet{}, pol)
	if !cfg.Faults.Zero() {
		plan := faults.NewPlan(cfg.Faults, cfg.Seed)
		sys.InstallFaults(plan, plan.Retirements())
	}
	if cfg.Probe != nil {
		sys.SetProbe(cfg.Probe)
	}
	sys.StartOnline()
	return &Node{sys: sys, pol: pol}, nil
}

// System exposes the underlying command-processor system.
func (n *Node) System() *cp.System { return n.sys }

// Now returns the node's current simulated time.
func (n *Node) Now() sim.Time { return n.sys.Now() }

// AdvanceTo runs every simulated event strictly before t and moves the
// clock to t, so a job submitted next arrives at exactly t — ordered after
// all earlier work and before any device event scheduled at the same
// instant, matching sim mode's arrival ordering.
func (n *Node) AdvanceTo(t sim.Time) {
	if t > n.sys.Engine().Now() {
		n.sys.Engine().RunBefore(t)
	}
}

// NextEvent returns the simulated time of the earliest pending event, if
// any — what a pacing loop sleeps toward.
func (n *Node) NextEvent() (sim.Time, bool) {
	return n.sys.Engine().PeekTime()
}

// CatchUp runs every event due at or before t, inclusively. AdvanceTo keeps
// strictly-before semantics so a command at instant t still executes ahead
// of events scheduled at t; the pacing loop calls CatchUp when the next
// event is due exactly now and the clock may not move on its own.
func (n *Node) CatchUp(t sim.Time) {
	if t >= n.sys.Engine().Now() {
		n.sys.Engine().RunUntil(t)
	}
}

// Submit stamps the job with the node's next dense ID and the current
// simulated time, then runs the full host-side offload decision inline.
// The returned JobRun carries the admission verdict.
func (n *Node) Submit(j *workload.Job) *cp.JobRun {
	j.ID = n.next
	j.Arrival = n.sys.Now()
	n.next++
	return n.sys.SubmitNow(j)
}

// Submitted returns the number of jobs submitted so far.
func (n *Node) Submitted() int { return n.next }

// Unfinished returns the node's non-terminal jobs in submission order.
func (n *Node) Unfinished() []*cp.JobRun {
	return n.sys.Unfinished()
}

// EstimateDrain predicts how long the device needs to finish every admitted
// unfinished job — the Retry-After hint handed to rejected clients. Policies
// implementing cp.DrainEstimator (LAX and its variants, ORACLE) answer with
// their own Algorithm 1 queue-delay estimate; for the rest the node falls
// back to the serial isolated-time sum of remaining kernels, the estimate a
// front end could compute from static profiles.
func (n *Node) EstimateDrain() sim.Time {
	if de, ok := n.pol.(cp.DrainEstimator); ok {
		return de.EstimateDrain()
	}
	cfg := n.sys.Device().Config()
	var total sim.Time
	for _, a := range n.sys.Active() {
		for i := a.CurrentIndex(); i < len(a.Instances); i++ {
			total += gpu.IsolatedKernelTime(cfg, a.Instances[i].Desc)
		}
	}
	return total
}

// ForceDrain falls back every unfinished job to the CPU and runs the
// simulation to quiescence without pacing — the last step of a graceful
// shutdown, after the natural-completion grace period expired. Every job
// reaches a terminal state. It returns the number of jobs forced off the
// GPU.
func (n *Node) ForceDrain() int {
	forced := 0
	for _, jr := range n.sys.Unfinished() {
		n.sys.FallBackToCPU(jr)
		forced++
	}
	n.sys.Engine().Run()
	return forced
}
