package serve

import (
	"net/http"
	"strconv"

	"laxgpu/internal/sim"
)

// Reject reasons, as carried in every non-2xx submission response's JSON
// body. Load generators and the gateway tier key their reject-breakdown
// accounting off these strings, so they are part of the API surface.
const (
	// ReasonAdmission is an Algorithm 1 rejection: the live queue state
	// cannot meet the job's deadline (HTTP 429).
	ReasonAdmission = "admission"

	// ReasonClientLimit is the per-client in-flight cap (HTTP 429).
	ReasonClientLimit = "client-limit"

	// ReasonBackpressure is a full accept queue (HTTP 503).
	ReasonBackpressure = "backpressure"

	// ReasonDrain is a server refusing new work during graceful shutdown
	// (HTTP 503).
	ReasonDrain = "drain"

	// ReasonShed is a gateway-tier criticality shed: the shrunken fleet's
	// predicted wait exceeds what the job's class tolerates (HTTP 429).
	ReasonShed = "shed"

	// ReasonUnhealthy is a gateway with no healthy backend to dispatch to
	// (HTTP 503).
	ReasonUnhealthy = "unhealthy"
)

// rejectBody is the uniform JSON payload of every rejected submission:
// machine-readable reason, human-readable error, and a retry hint that
// matches the Retry-After header. Every reject is machine-retryable.
type rejectBody struct {
	Error        string `json:"error"`
	Reason       string `json:"reason"`
	RetryAfterUs int64  `json:"retry_after_us"`
}

// WriteReject renders the uniform rejection response: the Retry-After header
// in (ceiled) seconds plus a JSON body carrying the same hint in simulated
// microseconds and the machine-readable reason. retry hints below one
// microsecond are floored to 1s — "try again soon" — so every reject is
// honestly retryable.
func WriteReject(w http.ResponseWriter, code int, reason, msg string, retry sim.Time) {
	if retry < sim.Microsecond {
		retry = sim.Second
	}
	secs := int64(retry / sim.Second)
	if retry%sim.Second != 0 {
		secs++
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSON(w, code, rejectBody{Error: msg, Reason: reason, RetryAfterUs: usOf(retry)})
}
